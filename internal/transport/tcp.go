package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"

	"repro/internal/wire"
)

// TCPLink is a link endpoint over a TCP connection. Frames are
// length-prefixed (4-byte big-endian) wire-codec messages. A handshake
// exchanges broker identities so each side knows which Hop its inbound
// messages belong to.
//
// Writes go through a buffered writer flushed at message or batch
// boundaries: a single Send costs one syscall instead of two (header +
// payload), and SendBatch writes a whole burst with one flush.
type TCPLink struct {
	conn    net.Conn
	peerHop wire.Hop

	writeMu sync.Mutex
	w       *bufio.Writer // guarded by writeMu
	enc     *[]byte       // pooled encode scratch for non-preencoded messages; guarded by writeMu
	closeMu sync.Mutex
	closed  bool
	done    chan struct{}
}

var _ Link = (*TCPLink)(nil)
var _ BatchSender = (*TCPLink)(nil)
var _ Flusher = (*TCPLink)(nil)
var _ FrameEncoder = (*TCPLink)(nil)

const maxFrameSize = 16 << 20 // 16 MiB; far above any legitimate message

// clientHandshakePrefix marks a handshake identity as a client rather
// than a broker, so the accepting side attaches the peer as a client.
const clientHandshakePrefix = "client/"

// DialTCP connects to a peer broker, performs the identity handshake, and
// starts a reader goroutine delivering inbound messages to recv tagged
// with the peer's identity.
func DialTCP(addr string, self wire.BrokerID, recv Receiver) (*TCPLink, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return newTCPLink(conn, string(self), recv)
}

// DialTCPClient connects a *client* to a broker over TCP: the handshake
// identifies the peer as a client so the broker attaches it instead of
// linking it into the overlay.
func DialTCPClient(addr string, self wire.ClientID, recv Receiver) (*TCPLink, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return newTCPLink(conn, clientHandshakePrefix+string(self), recv)
}

// AcceptTCP wraps an accepted connection, performs the handshake, and
// starts the reader goroutine. Use Peer().IsClient() to tell whether the
// remote end is a client or a broker.
func AcceptTCP(conn net.Conn, self wire.BrokerID, recv Receiver) (*TCPLink, error) {
	return newTCPLink(conn, string(self), recv)
}

func newTCPLink(conn net.Conn, self string, recv Receiver) (*TCPLink, error) {
	if err := writeFrame(conn, []byte(self)); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("transport: handshake send: %w", err)
	}
	peerID, err := readFrame(conn)
	if err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("transport: handshake recv: %w", err)
	}
	hop := wire.BrokerHop(wire.BrokerID(peerID))
	if rest, ok := strings.CutPrefix(string(peerID), clientHandshakePrefix); ok {
		hop = wire.ClientHop(wire.ClientID(rest))
	}
	l := &TCPLink{
		conn:    conn,
		peerHop: hop,
		w:       bufio.NewWriter(conn),
		done:    make(chan struct{}),
	}
	go l.readLoop(recv)
	return l, nil
}

// Peer returns the remote broker's identity as learned in the handshake.
func (l *TCPLink) Peer() wire.Hop { return l.peerHop }

// Send implements Link. Frames are written under a mutex, preserving FIFO
// order across concurrent senders, and flushed immediately.
func (l *TCPLink) Send(m wire.Message) error {
	l.writeMu.Lock()
	defer l.writeMu.Unlock()
	if err := l.writeMsgLocked(m); err != nil {
		return err
	}
	return l.flushLocked()
}

// SendBatch implements BatchSender: the burst is buffered in full and
// flushed once, replacing a syscall per message with one per batch.
func (l *TCPLink) SendBatch(ms []wire.Message) error {
	l.writeMu.Lock()
	defer l.writeMu.Unlock()
	for _, m := range ms {
		if err := l.writeMsgLocked(m); err != nil {
			return err
		}
	}
	return l.flushLocked()
}

// Flush implements Flusher.
func (l *TCPLink) Flush() error {
	l.writeMu.Lock()
	defer l.writeMu.Unlock()
	l.closeMu.Lock()
	closed := l.closed
	l.closeMu.Unlock()
	if closed {
		return ErrLinkClosed
	}
	return l.flushLocked()
}

// EncodesFrames implements FrameEncoder: senders that pre-encode fan-out
// messages (wire.Preencode) save this link a per-hop serialization.
func (l *TCPLink) EncodesFrames() {}

// writeMsgLocked buffers one message. Callers hold writeMu. Messages that
// carry a cached frame (pre-encoded fan-outs, decoded transit publishes)
// are written as-is; everything else is serialized into the link's pooled
// scratch buffer, which bufio copies, so the scratch is reused across the
// batch and handed back to the pool at flush.
func (l *TCPLink) writeMsgLocked(m wire.Message) error {
	l.closeMu.Lock()
	closed := l.closed
	l.closeMu.Unlock()
	if closed {
		return ErrLinkClosed
	}
	frame := m.Frame
	if frame == nil {
		if l.enc == nil {
			l.enc = wire.GetEncodeBuf()
		}
		f, err := wire.AppendEncode((*l.enc)[:0], m)
		if err != nil {
			return fmt.Errorf("transport: encode: %w", err)
		}
		*l.enc = f
		frame = f
	}
	if err := writeFrame(l.w, frame); err != nil {
		return fmt.Errorf("transport: send: %w", err)
	}
	return nil
}

func (l *TCPLink) flushLocked() error {
	if l.enc != nil {
		// Batch boundary: return the encode scratch. PutEncodeBuf drops
		// oversized buffers, mirroring the mailbox's recycle policy.
		wire.PutEncodeBuf(l.enc)
		l.enc = nil
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("transport: flush: %w", err)
	}
	return nil
}

// Close implements Link and waits for the reader goroutine to exit.
func (l *TCPLink) Close() error {
	l.closeMu.Lock()
	if l.closed {
		l.closeMu.Unlock()
		return nil
	}
	l.closed = true
	l.closeMu.Unlock()
	err := l.conn.Close()
	<-l.done
	return err
}

// Done returns a channel closed when the reader goroutine exits (peer
// closed or Close was called).
func (l *TCPLink) Done() <-chan struct{} { return l.done }

func (l *TCPLink) readLoop(recv Receiver) {
	defer close(l.done)
	for {
		frame, err := readFrame(l.conn)
		if err != nil {
			return // connection closed or broken; receiver stops hearing from us
		}
		m, err := wire.Decode(frame)
		if err != nil {
			continue // skip malformed frame; FIFO of valid frames preserved
		}
		recv.Receive(Inbound{From: l.peerHop, Msg: m})
	}
}

func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameSize {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
