package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/flow"
	"repro/internal/wire"
)

// TCPLink is a link endpoint over a TCP connection. Frames are
// length-prefixed (4-byte big-endian) wire-codec messages. A handshake
// exchanges broker identities so each side knows which Hop its inbound
// messages belong to.
//
// Sends do not write the socket directly: they encode (or reuse a cached
// frame) and enqueue onto a bounded frame ring — a flow.Queue — drained
// by a writer goroutine that flushes each drained batch with one vectored
// write (net.Buffers/writev), so a burst of N frames costs one syscall
// and a slow socket never stalls the sender's run loop until the ring's
// policy says so. The default ring Blocks at DefaultSendWindow frames,
// preserving the old blocking-write backpressure while decoupling
// syscalls from Send; WithSendWindow overrides capacity and policy.
// Frames are admitted by wire.Type.FlowClass: publishes take the full
// policy, deliveries are lossless (never dropped — that would skip
// client sequence numbers — but they fill the ring and stall the sender
// when it is full, so a stalled client pins at most a ring's worth of
// frames), and control frames bypass the policy entirely, so routing
// and relocation traffic is never shed by an overloaded ring.
type TCPLink struct {
	conn    net.Conn
	peerHop wire.Hop
	ring    *flow.Queue[tcpFrame]

	mu        sync.Mutex
	flushCond *sync.Cond // pending reaching 0, or a write error, or close
	pending   int        // frames accepted but not yet written (or discarded)
	werr      error      // first write error; poisons subsequent Sends
	closed    bool

	writerDone chan struct{}
	done       chan struct{}
}

var _ Link = (*TCPLink)(nil)
var _ BatchSender = (*TCPLink)(nil)
var _ Flusher = (*TCPLink)(nil)
var _ FrameEncoder = (*TCPLink)(nil)
var _ flow.Reporter = (*TCPLink)(nil)

// tcpFrame is one queued wire frame: the length prefix, the payload, and
// the pooled encode buffer to return once the frame is written (nil for
// cached frames, which are shared and immutable).
type tcpFrame struct {
	hdr     [4]byte
	payload []byte
	pooled  *[]byte
	cls     flow.Class // admission class of the message type
}

func frameClass(f tcpFrame) flow.Class { return f.cls }

const maxFrameSize = 16 << 20 // 16 MiB; far above any legitimate message

// DefaultSendWindow is the default frame-ring capacity: deep enough that
// batched fan-outs never stall on a healthy socket, small enough that a
// dead peer pins a bounded number of frames.
const DefaultSendWindow = 1024

// clientHandshakePrefix marks a handshake identity as a client rather
// than a broker, so the accepting side attaches the peer as a client.
const clientHandshakePrefix = "client/"

// TCPOption configures a TCPLink.
type TCPOption func(*tcpConfig)

type tcpConfig struct {
	ring    flow.Options
	ringSet bool
}

// WithSendWindow overrides the frame ring's capacity and overload policy
// (Capacity 0 = unbounded; MaxDrain is ignored). The default is
// {Capacity: DefaultSendWindow, Policy: Block}.
func WithSendWindow(o flow.Options) TCPOption {
	return func(c *tcpConfig) {
		c.ring = o
		c.ringSet = true
	}
}

// DialTCP connects to a peer broker, performs the identity handshake, and
// starts a reader goroutine delivering inbound messages to recv tagged
// with the peer's identity.
func DialTCP(addr string, self wire.BrokerID, recv Receiver, opts ...TCPOption) (*TCPLink, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return newTCPLink(conn, string(self), recv, opts)
}

// DialTCPClient connects a *client* to a broker over TCP: the handshake
// identifies the peer as a client so the broker attaches it instead of
// linking it into the overlay.
func DialTCPClient(addr string, self wire.ClientID, recv Receiver, opts ...TCPOption) (*TCPLink, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return newTCPLink(conn, clientHandshakePrefix+string(self), recv, opts)
}

// AcceptTCP wraps an accepted connection, performs the handshake, and
// starts the reader goroutine. Use Peer().IsClient() to tell whether the
// remote end is a client or a broker.
func AcceptTCP(conn net.Conn, self wire.BrokerID, recv Receiver, opts ...TCPOption) (*TCPLink, error) {
	return newTCPLink(conn, string(self), recv, opts)
}

func newTCPLink(conn net.Conn, self string, recv Receiver, opts []TCPOption) (*TCPLink, error) {
	cfg := tcpConfig{ring: flow.Options{Capacity: DefaultSendWindow, Policy: flow.Block}}
	for _, o := range opts {
		o(&cfg)
	}
	cfg.ring.MaxDrain = 0 // the writer always drains wholesale
	if err := writeFrame(conn, []byte(self)); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("transport: handshake send: %w", err)
	}
	peerID, err := readFrame(conn)
	if err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("transport: handshake recv: %w", err)
	}
	hop := wire.BrokerHop(wire.BrokerID(peerID))
	if rest, ok := strings.CutPrefix(string(peerID), clientHandshakePrefix); ok {
		hop = wire.ClientHop(wire.ClientID(rest))
	}
	l := &TCPLink{
		conn:       conn,
		peerHop:    hop,
		ring:       flow.NewQueue[tcpFrame](cfg.ring, frameClass),
		writerDone: make(chan struct{}),
		done:       make(chan struct{}),
	}
	l.flushCond = sync.NewCond(&l.mu)
	l.ring.OnEvict(l.frameEvicted)
	go l.writeLoop()
	go l.readLoop(recv)
	return l, nil
}

// frameEvicted releases a frame the ring's DropOldest policy discarded:
// its pooled encode buffer goes back to the pool and its flush slot is
// given back — the frame will never reach releaseBatch, and leaking the
// slot would wedge every later Flush. Called with the ring's lock held;
// l.mu nests under it (no path holds l.mu while calling into the ring).
func (l *TCPLink) frameEvicted(f tcpFrame) {
	if f.pooled != nil {
		wire.PutEncodeBuf(f.pooled)
	}
	l.unreserve()
}

// Peer returns the remote broker's identity as learned in the handshake.
func (l *TCPLink) Peer() wire.Hop { return l.peerHop }

// Send implements Link: encode (or reuse the cached frame) and enqueue
// for the writer goroutine. A full Block ring stalls here — the old
// blocking-write backpressure, now at the ring instead of the socket.
func (l *TCPLink) Send(m wire.Message) error {
	return l.enqueue(m)
}

// SendBatch implements BatchSender. Frames are enqueued one by one — the
// writer drains whatever has accumulated into a single vectored write, so
// batching happens at the syscall boundary regardless. FIFO holds per
// sending goroutine; concurrent senders' bursts may interleave, as their
// Sends always could.
func (l *TCPLink) SendBatch(ms []wire.Message) error {
	for i := range ms {
		if err := l.enqueue(ms[i]); err != nil {
			return err
		}
	}
	return nil
}

func (l *TCPLink) enqueue(m wire.Message) error {
	l.mu.Lock()
	if l.closed || l.werr != nil {
		err := l.werr
		l.mu.Unlock()
		if err == nil {
			err = ErrLinkClosed
		}
		return err
	}
	// Reserve the flush slot before pushing so a concurrent Flush cannot
	// observe pending == 0 between our push and its accounting.
	l.pending++
	l.mu.Unlock()

	fr := tcpFrame{cls: m.Type.FlowClass()}
	fr.payload = m.Frame
	if fr.payload == nil {
		buf := wire.GetEncodeBuf()
		f, err := wire.AppendEncode((*buf)[:0], m)
		if err != nil {
			wire.PutEncodeBuf(buf)
			l.unreserve()
			return fmt.Errorf("transport: encode: %w", err)
		}
		*buf = f
		fr.payload = f
		fr.pooled = buf
	}
	binary.BigEndian.PutUint32(fr.hdr[:], uint32(len(fr.payload)))

	switch err := l.ring.Push(fr); err {
	case nil:
		return nil
	case flow.ErrShed:
		// The ring's policy consumed the frame; the Send succeeded and
		// the drop is accounted in FlowStats.
		if fr.pooled != nil {
			wire.PutEncodeBuf(fr.pooled)
		}
		l.unreserve()
		return nil
	default: // flow.ErrClosed
		if fr.pooled != nil {
			wire.PutEncodeBuf(fr.pooled)
		}
		l.unreserve()
		l.mu.Lock()
		werr := l.werr
		l.mu.Unlock()
		if werr != nil {
			return werr
		}
		return ErrLinkClosed
	}
}

// unreserve gives back a flush slot for a frame that never reached the
// ring (encode failure, shed, closed ring).
func (l *TCPLink) unreserve() {
	l.mu.Lock()
	l.pending--
	if l.pending == 0 {
		l.flushCond.Broadcast()
	}
	l.mu.Unlock()
}

// Flush implements Flusher: it blocks until every frame accepted before
// the call is on the wire (or consumed by the ring's policy), returning
// the write error that stopped the writer, if any. A clean Close does
// not fail a Flush: Close drains the accepted frames (deadline-bounded),
// so the wait resolves to nil once they are written, or to the write
// error that discarded them. Safe for concurrent use — the broker's
// egress writer pool calls Send/SendBatch/Flush from a writer goroutine
// while Close can arrive from the owner at any time (pinned by
// TestTCPLinkConcurrentFlushClose).
func (l *TCPLink) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.pending > 0 && l.werr == nil {
		l.flushCond.Wait()
	}
	if l.werr != nil {
		return l.werr
	}
	return nil
}

// FlowStats implements flow.Reporter: the frame ring's counters, for
// slow-consumer detection (a peer that stops reading shows up as ring
// depth, credit stalls, or drops here).
func (l *TCPLink) FlowStats() flow.Stats { return l.ring.Stats() }

// EncodesFrames implements FrameEncoder: senders that pre-encode fan-out
// messages (wire.Preencode) save this link a per-hop serialization.
func (l *TCPLink) EncodesFrames() {}

// writeLoop drains the frame ring and writes each drained batch with one
// vectored write: N frames become one writev of 2N iovecs instead of N
// buffered writes plus a flush. Pooled encode buffers are returned after
// the write; a write error poisons the link (subsequent Sends fail) and
// the rest of the ring is discarded.
func (l *TCPLink) writeLoop() {
	defer close(l.writerDone)
	var scratch net.Buffers
	for {
		batch, ok := l.ring.PopBatch()
		if !ok {
			return
		}
		bufs := scratch[:0]
		for i := range batch {
			bufs = append(bufs, batch[i].hdr[:], batch[i].payload)
		}
		scratch = bufs // WriteTo consumes bufs; keep the backing array
		_, err := bufs.WriteTo(l.conn)
		l.releaseBatch(batch, err)
		if err != nil {
			// The stream may be torn mid-frame; no point keeping the
			// connection half-alive. Closing it unblocks the reader and
			// makes the failure visible to the peer.
			_ = l.conn.Close()
			l.ring.Close()
			l.discardRing()
			return
		}
	}
}

// releaseBatch returns pooled buffers, recycles the ring array, credits
// the flush accounting, and records the first write error.
func (l *TCPLink) releaseBatch(batch []tcpFrame, err error) {
	for i := range batch {
		if batch[i].pooled != nil {
			wire.PutEncodeBuf(batch[i].pooled)
		}
	}
	n := len(batch)
	l.ring.Recycle(batch)
	l.mu.Lock()
	l.pending -= n
	if err != nil && l.werr == nil {
		l.werr = fmt.Errorf("transport: write: %w", err)
	}
	l.flushCond.Broadcast()
	l.mu.Unlock()
}

// discardRing drains whatever is left after a write error, returning
// pooled buffers and releasing Flush waiters. The frames are lost — the
// connection is already torn, there is no wire to reach.
func (l *TCPLink) discardRing() {
	for {
		batch, ok := l.ring.PopBatch()
		if !ok {
			return
		}
		l.releaseBatch(batch, nil)
	}
}

// closeDrainTimeout bounds how long Close waits for the writer to put
// already-accepted frames on the wire before tearing the socket down.
const closeDrainTimeout = 5 * time.Second

// Close implements Link: it stops accepting frames, lets the writer
// drain what was already accepted (an accepted Send reaches the wire
// unless the connection fails — the pre-ring Send wrote synchronously,
// and callers rely on send-then-Close being durable), then closes the
// connection and waits for the reader to exit. A peer that has stopped
// reading cannot wedge teardown: the write deadline fails the drain and
// the remaining frames are discarded.
func (l *TCPLink) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.flushCond.Broadcast()
	l.mu.Unlock()
	l.ring.Close()
	_ = l.conn.SetWriteDeadline(time.Now().Add(closeDrainTimeout))
	<-l.writerDone
	err := l.conn.Close()
	<-l.done
	return err
}

// Done returns a channel closed when the reader goroutine exits (peer
// closed or Close was called).
func (l *TCPLink) Done() <-chan struct{} { return l.done }

func (l *TCPLink) readLoop(recv Receiver) {
	defer close(l.done)
	for {
		frame, err := readFrame(l.conn)
		if err != nil {
			return // connection closed or broken; receiver stops hearing from us
		}
		m, err := wire.Decode(frame)
		if err != nil {
			continue // skip malformed frame; FIFO of valid frames preserved
		}
		recv.Receive(Inbound{From: l.peerHop, Msg: m})
	}
}

func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameSize {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
