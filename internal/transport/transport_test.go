package transport

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/flow"
	"repro/internal/message"
	"repro/internal/metrics"
	"repro/internal/wire"
)

// sink records inbound messages.
type sink struct {
	mu  sync.Mutex
	got []Inbound
}

func (s *sink) Receive(in Inbound) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.got = append(s.got, in)
}

func (s *sink) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.got)
}

func (s *sink) at(i int) Inbound {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.got[i]
}

func pubMsg(i int64) wire.Message {
	return wire.NewPublish(message.New(map[string]message.Value{
		"i": message.Int(i),
	}))
}

func msgIndex(in Inbound) int64 {
	v, _ := in.Msg.Notif.Get("i")
	return v.IntVal()
}

func TestPipeDeliversWithHopIdentity(t *testing.T) {
	var a, b sink
	la, lb := Pipe(wire.BrokerHop("A"), wire.BrokerHop("B"), &a, &b)
	if err := la.Send(pubMsg(1)); err != nil {
		t.Fatal(err)
	}
	if err := lb.Send(pubMsg(2)); err != nil {
		t.Fatal(err)
	}
	if b.len() != 1 || b.at(0).From.Broker != "A" {
		t.Errorf("B got %d messages, from %v", b.len(), b.at(0).From)
	}
	if a.len() != 1 || a.at(0).From.Broker != "B" {
		t.Errorf("A got %d messages", a.len())
	}
}

func TestPipeFIFOWithLatency(t *testing.T) {
	var b sink
	la, _ := Pipe(wire.BrokerHop("A"), wire.BrokerHop("B"), &sink{}, &b,
		WithLatency(5*time.Millisecond))
	const n = 50
	start := time.Now()
	for i := int64(0); i < n; i++ {
		if err := la.Send(pubMsg(i)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for b.len() < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if b.len() != n {
		t.Fatalf("received %d of %d", b.len(), n)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Errorf("latency not applied: %v", elapsed)
	}
	for i := 0; i < n; i++ {
		if got := msgIndex(b.at(i)); got != int64(i) {
			t.Fatalf("FIFO violated at %d: got %d", i, got)
		}
	}
	if err := la.Close(); err != nil {
		t.Fatal(err)
	}
	if err := la.Send(pubMsg(99)); err != ErrLinkClosed {
		t.Errorf("send after close = %v, want ErrLinkClosed", err)
	}
	if err := la.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestPipeAsymmetricLatency(t *testing.T) {
	var a, b sink
	la, lb := Pipe(wire.BrokerHop("A"), wire.BrokerHop("B"), &a, &b,
		WithAsymmetricLatency(0, 10*time.Millisecond))
	// A→B instant.
	if err := la.Send(pubMsg(1)); err != nil {
		t.Fatal(err)
	}
	if b.len() != 1 {
		t.Error("A->B should be synchronous at zero latency")
	}
	// B→A delayed.
	start := time.Now()
	if err := lb.Send(pubMsg(2)); err != nil {
		t.Fatal(err)
	}
	for a.len() < 1 && time.Since(start) < time.Second {
		time.Sleep(time.Millisecond)
	}
	if a.len() != 1 || time.Since(start) < 10*time.Millisecond {
		t.Errorf("B->A latency not applied (%v)", time.Since(start))
	}
	_ = la.Close()
	_ = lb.Close()
}

func TestPipeCounterCategorization(t *testing.T) {
	var cnt metrics.Counter
	var b sink
	la, _ := Pipe(wire.BrokerHop("A"), wire.BrokerHop("B"), &sink{}, &b, WithCounter(&cnt))
	msgs := []wire.Message{
		pubMsg(1),
		wire.NewSubscribe(wire.Subscription{}),
		wire.NewUnsubscribe(wire.Subscription{}),
		wire.NewAdvertise(wire.Subscription{}),
		wire.NewFetch(wire.Fetch{}),
		wire.NewReplay(wire.Replay{}),
		wire.NewLocUpdate(wire.LocUpdate{}),
		wire.NewDeliver(wire.Deliver{}),
	}
	for _, m := range msgs {
		if err := la.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	if got := cnt.Get(metrics.CategoryNotification); got != 1 {
		t.Errorf("notifications = %d", got)
	}
	if got := cnt.Get(metrics.CategoryAdmin); got != 4 {
		t.Errorf("admin = %d", got)
	}
	if got := cnt.Get(metrics.CategoryControl); got != 2 {
		t.Errorf("control = %d", got)
	}
	if got := cnt.Get(metrics.CategoryDeliver); got != 1 {
		t.Errorf("deliver = %d", got)
	}
	if cnt.Total() != 8 {
		t.Errorf("total = %d", cnt.Total())
	}
}

// batchSink records inbound messages and how they were handed over.
type batchSink struct {
	sink
	bursts []int // size of each ReceiveBurst call
}

func (s *batchSink) ReceiveBurst(from wire.Hop, ms []wire.Message) {
	s.mu.Lock()
	s.bursts = append(s.bursts, len(ms))
	s.mu.Unlock()
	for _, m := range ms {
		s.Receive(Inbound{From: from, Msg: m})
	}
}

func TestChanLinkSendBatchFIFO(t *testing.T) {
	for _, latency := range []time.Duration{0, 2 * time.Millisecond} {
		var b batchSink
		la, _ := Pipe(wire.BrokerHop("A"), wire.BrokerHop("B"), &sink{}, &b,
			WithLatency(latency))
		// Interleave singles and bursts; order must hold across both.
		if err := la.Send(pubMsg(0)); err != nil {
			t.Fatal(err)
		}
		if err := la.SendBatch([]wire.Message{pubMsg(1), pubMsg(2), pubMsg(3)}); err != nil {
			t.Fatal(err)
		}
		if err := la.Send(pubMsg(4)); err != nil {
			t.Fatal(err)
		}
		if err := la.SendBatch(nil); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(3 * time.Second)
		for b.len() < 5 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if b.len() != 5 {
			t.Fatalf("latency=%v: received %d of 5", latency, b.len())
		}
		for i := 0; i < 5; i++ {
			if got := msgIndex(b.at(i)); got != int64(i) {
				t.Fatalf("latency=%v: FIFO violated at %d: got %d", latency, i, got)
			}
		}
		b.mu.Lock()
		bursts := append([]int(nil), b.bursts...)
		b.mu.Unlock()
		found := false
		for _, n := range bursts {
			if n == 3 {
				found = true
			}
		}
		if !found {
			t.Errorf("latency=%v: batch-aware receiver saw bursts %v, want one of size 3", latency, bursts)
		}
		_ = la.Close()
	}
}

// TestChanLinkCloseRace exercises the Send/Close race on a zero-latency
// link: once Close returns, no delivery may begin, and every Send either
// delivered before Close or reports ErrLinkClosed. Run with -race.
func TestChanLinkCloseRace(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		var mu sync.Mutex
		closed := false
		var lateDelivery bool
		recv := ReceiverFunc(func(Inbound) {
			mu.Lock()
			if closed {
				lateDelivery = true
			}
			mu.Unlock()
		})
		la, _ := Pipe(wire.BrokerHop("A"), wire.BrokerHop("B"), &sink{}, recv)
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 20; i++ {
					if err := la.Send(pubMsg(int64(i))); err == ErrLinkClosed {
						return
					}
				}
			}()
		}
		close(start)
		// Two concurrent Closes: both must wait for in-flight deliveries.
		closeDone := make(chan struct{})
		go func() { _ = la.Close(); close(closeDone) }()
		_ = la.Close()
		<-closeDone
		// Close has returned: any delivery from now on is the seed's race.
		mu.Lock()
		closed = true
		mu.Unlock()
		wg.Wait()
		mu.Lock()
		late := lateDelivery
		mu.Unlock()
		if late {
			t.Fatal("delivery began after Close returned")
		}
	}
}

func TestReceiverFunc(t *testing.T) {
	called := false
	ReceiverFunc(func(Inbound) { called = true }).Receive(Inbound{})
	if !called {
		t.Error("ReceiverFunc did not dispatch")
	}
}

func TestTCPLinkRoundTrip(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	var serverSink sink
	accepted := make(chan *TCPLink, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		l, err := AcceptTCP(conn, "server", &serverSink)
		if err != nil {
			return
		}
		accepted <- l
	}()

	var clientSink sink
	cl, err := DialTCP(ln.Addr().String(), "client", &clientSink)
	if err != nil {
		t.Fatal(err)
	}
	sv := <-accepted
	defer sv.Close()
	defer cl.Close()

	if cl.Peer().Broker != "server" || sv.Peer().Broker != "client" {
		t.Errorf("handshake identities: %v, %v", cl.Peer(), sv.Peer())
	}

	const n = 20
	for i := int64(0); i < n; i++ {
		if err := cl.Send(pubMsg(i)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for serverSink.len() < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if serverSink.len() != n {
		t.Fatalf("server got %d of %d", serverSink.len(), n)
	}
	for i := 0; i < n; i++ {
		in := serverSink.at(i)
		if in.From.Broker != "client" {
			t.Fatalf("wrong hop identity: %v", in.From)
		}
		if got := msgIndex(in); got != int64(i) {
			t.Fatalf("TCP FIFO violated at %d: got %d", i, got)
		}
	}

	// Reply direction.
	if err := sv.Send(pubMsg(100)); err != nil {
		t.Fatal(err)
	}
	for clientSink.len() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if clientSink.len() != 1 || msgIndex(clientSink.at(0)) != 100 {
		t.Error("reply not received")
	}
}

// TestTCPLinkSendBatch round-trips a burst through SendBatch, including a
// pre-encoded message (the encode-once fan-out path).
func TestTCPLinkSendBatch(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var serverSink sink
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		_, _ = AcceptTCP(conn, "server", &serverSink)
	}()
	cl, err := DialTCP(ln.Addr().String(), "client", &sink{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const n = 16
	ms := make([]wire.Message, n)
	for i := range ms {
		ms[i] = pubMsg(int64(i))
		if i%2 == 0 {
			if err := wire.Preencode(&ms[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := cl.SendBatch(ms); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for serverSink.len() < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if serverSink.len() != n {
		t.Fatalf("server got %d of %d", serverSink.len(), n)
	}
	for i := 0; i < n; i++ {
		if got := msgIndex(serverSink.at(i)); got != int64(i) {
			t.Fatalf("batch FIFO violated at %d: got %d", i, got)
		}
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestTCPLinkSendThenCloseDurable: an accepted Send must reach the wire
// even when the sender Closes immediately afterwards — the pattern of a
// fire-and-forget producer (rebeca-client publishes then exits). Close
// drains the ring before tearing the socket down.
func TestTCPLinkSendThenCloseDurable(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var serverSink sink
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		_, _ = AcceptTCP(conn, "server", &serverSink)
	}()
	cl, err := DialTCP(ln.Addr().String(), "client", &sink{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	for i := 0; i < n; i++ {
		if err := cl.Send(pubMsg(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for serverSink.len() < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if serverSink.len() != n {
		t.Fatalf("server got %d of %d frames sent before Close", serverSink.len(), n)
	}
	for i := 0; i < n; i++ {
		if got := msgIndex(serverSink.at(i)); got != int64(i) {
			t.Fatalf("FIFO violated at %d: got %d", i, got)
		}
	}
}

func TestTCPLinkCloseUnblocksReader(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		_, _ = AcceptTCP(conn, "server", &sink{})
	}()
	cl, err := DialTCP(ln.Addr().String(), "client", &sink{})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-cl.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("reader did not exit after Close")
	}
	if err := cl.Send(pubMsg(1)); err != ErrLinkClosed {
		t.Errorf("send after close = %v", err)
	}
}

// gatedSink blocks its first delivery until released, stalling the
// link's pump goroutine the way a slow consumer would.
type gatedSink struct {
	sink
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func newGatedSink() *gatedSink {
	return &gatedSink{started: make(chan struct{}), release: make(chan struct{})}
}

func (g *gatedSink) Receive(in Inbound) {
	g.once.Do(func() {
		close(g.started)
		<-g.release
	})
	g.sink.Receive(in)
}

func waitSinkLen(t *testing.T, s interface{ len() int }, n int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for s.len() < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := s.len(); got != n {
		t.Fatalf("received %d messages, want %d", got, n)
	}
}

// TestPipeWindowShedNewest: with the consumer stalled, a full window
// refuses newcomers (tail drop) and the survivors arrive in FIFO order.
func TestPipeWindowShedNewest(t *testing.T) {
	b := newGatedSink()
	la, _ := Pipe(wire.BrokerHop("A"), wire.BrokerHop("B"), &sink{}, b,
		WithWindow(flow.Options{Capacity: 2, Policy: flow.ShedNewest}))
	defer la.Close()
	if err := la.Send(pubMsg(0)); err != nil {
		t.Fatal(err)
	}
	<-b.started // the pump is now stalled inside delivery of msg 0
	for i := int64(1); i <= 5; i++ {
		if err := la.Send(pubMsg(i)); err != nil {
			t.Fatalf("shed Send must still return nil, got %v", err)
		}
	}
	close(b.release)
	waitSinkLen(t, b, 3)
	for i, want := range []int64{0, 1, 2} {
		if got := msgIndex(b.at(i)); got != want {
			t.Errorf("message %d = %d, want %d", i, got, want)
		}
	}
	s := la.FlowStats()
	if s.ShedNewest != 3 || s.HighWater > 2 {
		t.Errorf("flow stats = %+v, want shedNewest=3 highWater<=2", s)
	}
}

// TestPipeWindowDropOldest: head drop keeps the freshest window.
func TestPipeWindowDropOldest(t *testing.T) {
	b := newGatedSink()
	la, _ := Pipe(wire.BrokerHop("A"), wire.BrokerHop("B"), &sink{}, b,
		WithWindow(flow.Options{Capacity: 2, Policy: flow.DropOldest}))
	defer la.Close()
	if err := la.Send(pubMsg(0)); err != nil {
		t.Fatal(err)
	}
	<-b.started
	for i := int64(1); i <= 5; i++ {
		if err := la.Send(pubMsg(i)); err != nil {
			t.Fatal(err)
		}
	}
	close(b.release)
	waitSinkLen(t, b, 3)
	for i, want := range []int64{0, 4, 5} {
		if got := msgIndex(b.at(i)); got != want {
			t.Errorf("message %d = %d, want %d", i, got, want)
		}
	}
	if s := la.FlowStats(); s.DroppedOldest != 3 {
		t.Errorf("flow stats = %+v, want droppedOldest=3", s)
	}
}

// TestPipeWindowControlNeverShed: a control message (subscribe) crosses a
// full window that is shedding notifications.
func TestPipeWindowControlNeverShed(t *testing.T) {
	b := newGatedSink()
	la, _ := Pipe(wire.BrokerHop("A"), wire.BrokerHop("B"), &sink{}, b,
		WithWindow(flow.Options{Capacity: 1, Policy: flow.ShedNewest}))
	defer la.Close()
	if err := la.Send(pubMsg(0)); err != nil {
		t.Fatal(err)
	}
	<-b.started
	_ = la.Send(pubMsg(1)) // fills the window
	_ = la.Send(pubMsg(2)) // shed
	if err := la.Send(wire.NewSubscribe(wire.Subscription{Client: "c", ID: "s"})); err != nil {
		t.Fatal(err)
	}
	close(b.release)
	waitSinkLen(t, b, 3)
	if got := b.at(2).Msg.Type; got != wire.TypeSubscribe {
		t.Errorf("last message = %v, want subscribe", got)
	}
	if s := la.FlowStats(); s.ControlOverflow != 1 || s.ShedNewest != 1 {
		t.Errorf("flow stats = %+v, want controlOverflow=1 shedNewest=1", s)
	}
}

// TestPipeWindowBlockBackpressure: a Block window stalls the sender
// instead of dropping; everything arrives in order once the consumer
// resumes, and the stall is visible in the flow stats.
func TestPipeWindowBlockBackpressure(t *testing.T) {
	const total = 9
	b := newGatedSink()
	la, _ := Pipe(wire.BrokerHop("A"), wire.BrokerHop("B"), &sink{}, b,
		WithWindow(flow.Options{Capacity: 2, Policy: flow.Block}))
	defer la.Close()
	if err := la.Send(pubMsg(0)); err != nil {
		t.Fatal(err)
	}
	<-b.started
	go func() {
		for i := int64(1); i < total; i++ {
			if err := la.Send(pubMsg(i)); err != nil {
				return
			}
		}
	}()
	// Wait until the sender goroutine is provably stalled on credit.
	deadline := time.Now().Add(3 * time.Second)
	for la.FlowStats().CreditStalls == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if la.FlowStats().CreditStalls == 0 {
		t.Fatal("sender never stalled on a full Block window")
	}
	close(b.release)
	waitSinkLen(t, b, total)
	for i := 0; i < total; i++ {
		if got := msgIndex(b.at(i)); got != int64(i) {
			t.Fatalf("FIFO violated at %d: got %d", i, got)
		}
	}
	s := la.FlowStats()
	if s.HighWater > 2 || s.DroppedOldest != 0 || s.ShedNewest != 0 {
		t.Errorf("flow stats = %+v, want lossless with highWater<=2", s)
	}
}

// TestChanLinkFlowStatsWindowless: a plain pipe reports a zero snapshot.
func TestChanLinkFlowStatsWindowless(t *testing.T) {
	la, _ := Pipe(wire.BrokerHop("A"), wire.BrokerHop("B"), &sink{}, &sink{})
	defer la.Close()
	if s := la.FlowStats(); s != (flow.Stats{}) {
		t.Errorf("windowless link reports %+v", s)
	}
}

// TestTCPLinkFlushFailureMidBatch: the peer tears the connection down
// while the client is streaming batches; the writer's vectored write
// eventually fails, Flush surfaces the error, and the link stays
// poisoned for later Sends.
func TestTCPLinkFlushFailureMidBatch(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// Hand-rolled handshake, then an immediate close: the client
		// sees an established link whose peer dies mid-stream.
		_, _ = readFrame(conn)
		_ = writeFrame(conn, []byte("server"))
		_ = conn.Close()
	}()
	cl, err := DialTCP(ln.Addr().String(), "client", &sink{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	big := wire.NewPublish(message.New(map[string]message.Value{
		"pad": message.String(strings.Repeat("x", 1<<16)),
	}))
	batch := []wire.Message{big, big, big, big, big, big, big, big}
	var failure error
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err := cl.SendBatch(batch); err != nil {
			failure = err
			break
		}
		if err := cl.Flush(); err != nil {
			failure = err
			break
		}
	}
	if failure == nil {
		t.Fatal("no write failure surfaced after the peer closed")
	}
	if failure == ErrLinkClosed {
		t.Fatalf("failure = ErrLinkClosed, want the underlying write error")
	}
	if err := cl.Send(pubMsg(1)); err == nil {
		t.Error("Send after a write failure should report the poisoned link")
	}
}

// TestTCPLinkCloseRacesSend mirrors the ChanLink close-race test for TCP:
// senders race Close; afterwards Sends must fail, and each sender's
// received messages must form a gapless FIFO prefix of what it sent
// (frames discarded at Close are a suffix of the ring).
func TestTCPLinkCloseRacesSend(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		var serverSink sink
		serverUp := make(chan *TCPLink, 1)
		go func() {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			l, err := AcceptTCP(conn, "server", &serverSink)
			if err != nil {
				return
			}
			serverUp <- l
		}()
		cl, err := DialTCP(ln.Addr().String(), "client", &sink{})
		if err != nil {
			t.Fatal(err)
		}
		sv := <-serverUp

		const senders = 3
		var wg sync.WaitGroup
		for s := 0; s < senders; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				for i := int64(0); ; i++ {
					if err := cl.Send(pubMsg(int64(s)*1_000_000 + i)); err != nil {
						return
					}
				}
			}(s)
		}
		time.Sleep(time.Duration(trial) * 500 * time.Microsecond)
		if err := cl.Close(); err != nil {
			t.Fatal(err)
		}
		if err := cl.Send(pubMsg(0)); err == nil {
			t.Fatal("Send after Close returned nil")
		}
		wg.Wait()

		// Wait for the server to finish reading the torn stream.
		select {
		case <-sv.Done():
		case <-time.After(3 * time.Second):
			t.Fatal("server reader did not observe the close")
		}
		next := make([]int64, senders)
		for i := 0; i < serverSink.len(); i++ {
			v := msgIndex(serverSink.at(i))
			s, seq := v/1_000_000, v%1_000_000
			if seq != next[s] {
				t.Fatalf("trial %d: sender %d: received seq %d, want %d (reorder or gap)",
					trial, s, seq, next[s])
			}
			next[s]++
		}
		_ = sv.Close()
		_ = ln.Close()
		serverSink.mu.Lock()
		serverSink.got = nil
		serverSink.mu.Unlock()
	}
}

// TestTCPLinkSendWindowShed: with a peer that never reads, the socket and
// then the bounded ring fill up, and a ShedNewest ring starts refusing
// notifications instead of growing without limit.
func TestTCPLinkSendWindowShed(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	stopRead := make(chan struct{})
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		_, _ = readFrame(conn)
		_ = writeFrame(conn, []byte("server"))
		<-stopRead // never read frames; keep the connection open
		_ = conn.Close()
	}()
	defer close(stopRead)
	cl, err := DialTCP(ln.Addr().String(), "client", &sink{},
		WithSendWindow(flow.Options{Capacity: 4, Policy: flow.ShedNewest}))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	big := wire.NewPublish(message.New(map[string]message.Value{
		"pad": message.String(strings.Repeat("x", 1<<18)),
	}))
	deadline := time.Now().Add(10 * time.Second)
	for cl.FlowStats().ShedNewest == 0 && time.Now().Before(deadline) {
		if err := cl.Send(big); err != nil {
			t.Fatalf("Send failed before the ring shed: %v", err)
		}
	}
	s := cl.FlowStats()
	if s.ShedNewest == 0 {
		t.Fatal("ring never shed with an unread peer")
	}
	if s.HighWater > 4 {
		t.Errorf("ring high water %d exceeds capacity 4", s.HighWater)
	}
}

// TestTCPLinkDropOldestEvictionReleasesFlush: frames evicted by a
// DropOldest ring never reach the writer, so their flush slots (and
// pooled encode buffers) must be released at eviction time — leaking
// them would wedge every later Flush once the peer resumes.
func TestTCPLinkDropOldestEvictionReleasesFlush(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	resume := make(chan struct{})
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		_, _ = readFrame(conn)
		_ = writeFrame(conn, []byte("server"))
		<-resume // stall: no reads while the client fills socket + ring
		for {
			if _, err := readFrame(conn); err != nil {
				return
			}
		}
	}()
	cl, err := DialTCP(ln.Addr().String(), "client", &sink{},
		WithSendWindow(flow.Options{Capacity: 4, Policy: flow.DropOldest}))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	big := wire.NewPublish(message.New(map[string]message.Value{
		"pad": message.String(strings.Repeat("x", 1<<18)),
	}))
	deadline := time.Now().Add(10 * time.Second)
	for cl.FlowStats().DroppedOldest < 8 && time.Now().Before(deadline) {
		if err := cl.Send(big); err != nil {
			t.Fatalf("Send failed before the ring evicted: %v", err)
		}
	}
	if cl.FlowStats().DroppedOldest < 8 {
		t.Fatal("ring never evicted with an unread peer")
	}
	close(resume)
	flushErr := make(chan error, 1)
	go func() { flushErr <- cl.Flush() }()
	select {
	case err := <-flushErr:
		if err != nil {
			t.Fatalf("Flush after evictions = %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Flush deadlocked: evicted frames leaked pending flush slots")
	}
}

// TestTCPLinkFlushAfterCleanClose: a Flush racing (or following) a clean
// Close must not report an error when every accepted frame made it to
// the wire — send/flush/close is a durable sequence.
func TestTCPLinkFlushAfterCleanClose(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var serverSink sink
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		_, _ = AcceptTCP(conn, "server", &serverSink)
	}()
	cl, err := DialTCP(ln.Addr().String(), "client", &sink{})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 32; i++ {
		if err := cl.Send(pubMsg(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(); err != nil {
		t.Errorf("Flush after clean Close = %v, want nil (all frames written)", err)
	}
	waitSinkLen(t, &serverSink, 32)
}

// TestTCPLinkDeliverLosslessBounded: Deliver frames on a broker→client
// link must not bypass the send window (the old control classification
// let a dead client grow the ring without bound) and must not be dropped
// (a gap would skip client sequence numbers): with a stalled peer and a
// DropOldest ring, the sender stalls on credit, the ring depth stays at
// capacity, and after the peer resumes every delivery arrives in order.
func TestTCPLinkDeliverLosslessBounded(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	resume := make(chan struct{})
	seqs := make(chan uint64, 64)
	go func() {
		defer close(seqs)
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		_ = conn.(*net.TCPConn).SetReadBuffer(8 << 10)
		_, _ = readFrame(conn)
		_ = writeFrame(conn, []byte("server"))
		<-resume
		for {
			frame, err := readFrame(conn)
			if err != nil {
				return
			}
			m, err := wire.Decode(frame)
			if err != nil || m.Type != wire.TypeDeliver {
				continue
			}
			seqs <- m.Deliver.Item.Seq
		}
	}()
	const capacity, total = 2, 16
	cl, err := DialTCP(ln.Addr().String(), "client", &sink{},
		WithSendWindow(flow.Options{Capacity: capacity, Policy: flow.DropOldest}))
	if err != nil {
		t.Fatal(err)
	}
	_ = cl.conn.(*net.TCPConn).SetWriteBuffer(8 << 10)

	pad := message.New(map[string]message.Value{
		"pad": message.String(strings.Repeat("x", 1<<16)),
	})
	sendDone := make(chan error, 1)
	go func() {
		for i := uint64(1); i <= total; i++ {
			d := wire.NewDeliver(wire.Deliver{
				Client: "c", ID: "s",
				Item: wire.SeqNotification{Seq: i, Notif: pad},
			})
			if err := cl.Send(d); err != nil {
				sendDone <- err
				return
			}
		}
		sendDone <- nil
	}()

	// The sender must stall on ring credit, not sail through an exempt
	// control class.
	deadline := time.Now().Add(10 * time.Second)
	for cl.FlowStats().CreditStalls == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s := cl.FlowStats()
	if s.CreditStalls == 0 {
		t.Fatal("Deliver sender never stalled: deliveries bypassed the send window")
	}
	if s.ControlOverflow != 0 {
		t.Errorf("deliveries admitted over capacity as control: %+v", s)
	}
	if s.HighWater > capacity {
		t.Errorf("ring high water %d exceeds capacity %d", s.HighWater, capacity)
	}

	close(resume)
	if err := <-sendDone; err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	var got []uint64
	for seq := range seqs {
		got = append(got, seq)
	}
	if len(got) != total {
		t.Fatalf("peer received %d deliveries, want %d (lossless class must not drop)", len(got), total)
	}
	for i, seq := range got {
		if seq != uint64(i+1) {
			t.Fatalf("delivery %d has seq %d, want %d (sequence gap)", i, seq, i+1)
		}
	}
	if s := cl.FlowStats(); s.DroppedOldest != 0 || s.ShedNewest != 0 {
		t.Errorf("deliveries were dropped: %+v", s)
	}
}

// TestChanLinkWaitIdleExact: WaitIdle must not return while a message
// accepted before the call is still undelivered — even when concurrent
// window evictions keep the drop counters moving — and must return once
// everything pre-call has been delivered or evicted.
func TestChanLinkWaitIdleExact(t *testing.T) {
	b := newGatedSink()
	la, _ := Pipe(wire.BrokerHop("A"), wire.BrokerHop("B"), &sink{}, b,
		WithWindow(flow.Options{Capacity: 2, Policy: flow.DropOldest}))
	if err := la.Send(pubMsg(0)); err != nil {
		t.Fatal(err)
	}
	<-b.started // pump stalled inside delivery of msg 0
	for i := int64(1); i <= 5; i++ {
		if err := la.Send(pubMsg(i)); err != nil {
			t.Fatal(err)
		}
	}
	idle := make(chan struct{})
	go func() { la.WaitIdle(); close(idle) }()
	select {
	case <-idle:
		t.Fatal("WaitIdle returned while accepted messages were undelivered")
	case <-time.After(50 * time.Millisecond):
	}
	close(b.release)
	select {
	case <-idle:
	case <-time.After(3 * time.Second):
		t.Fatal("WaitIdle did not return after the pump drained")
	}
	// Everything accepted before WaitIdle is now accounted: delivered
	// {0, 4, 5}, evicted {1, 2, 3}.
	if got := b.len(); got != 3 {
		t.Fatalf("delivered %d messages, want 3", got)
	}
	for i, want := range []int64{0, 4, 5} {
		if got := msgIndex(b.at(i)); got != want {
			t.Errorf("message %d = %d, want %d", i, got, want)
		}
	}
	if s := la.FlowStats(); s.DroppedOldest != 3 {
		t.Errorf("flow stats = %+v, want droppedOldest=3", s)
	}
	if err := la.Close(); err != nil {
		t.Fatal(err)
	}
	la.WaitIdle() // closed pump: must return, not hang
}

// TestTCPLinkConcurrentFlushClose pins the usage pattern of the broker's
// egress writer pool: Send/SendBatch/Flush arrive from a writer goroutine
// while other goroutines Flush and a third Closes the link. Run under
// -race, the test asserts the link's mutex/cond flush accounting is safe
// for concurrent use and that nobody wedges — every Flush returns (nil or
// the close-time write error) and Close tears the link down while flushes
// are in flight.
func TestTCPLinkConcurrentFlushClose(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	var serverSink sink
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		_, _ = AcceptTCP(conn, "server", &serverSink)
	}()
	cl, err := DialTCP(ln.Addr().String(), "client", &sink{})
	if err != nil {
		t.Fatal(err)
	}

	start := make(chan struct{})
	var wg sync.WaitGroup
	// Writer: the egress-pool role — batches followed by a Flush.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		batch := []wire.Message{pubMsg(1), pubMsg(2), pubMsg(3)}
		for i := 0; i < 500; i++ {
			if err := cl.SendBatch(batch); err != nil {
				return // closed under us: expected
			}
			_ = cl.Flush()
		}
	}()
	// Two competing flushers (a Barrier-style waiter and a stats poller).
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 500; i++ {
				_ = cl.Flush()
				_ = cl.FlowStats()
			}
		}()
	}
	// Closer: tear the link down mid-flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		time.Sleep(2 * time.Millisecond)
		_ = cl.Close()
	}()

	close(start)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("concurrent Flush/Close wedged")
	}
	// The link must be fully closed and further sends must fail.
	if err := cl.Send(pubMsg(99)); err == nil {
		t.Error("Send after Close succeeded")
	}
}
