// Package transport provides the point-to-point, FIFO-ordered,
// error-free communication links the paper's system model assumes
// (Section 2.1): in-process channel links with configurable latency for
// tests and experiments, and TCP links for distributed deployment.
package transport

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/flow"
	"repro/internal/metrics"
	"repro/internal/wire"
)

// Inbound is a message as it arrives at a broker, tagged with the hop it
// came from.
type Inbound struct {
	From wire.Hop
	Msg  wire.Message
}

// Receiver consumes inbound messages. Implementations must be safe for
// concurrent use; per-link FIFO order is preserved by the links.
type Receiver interface {
	Receive(in Inbound)
}

// ReceiverFunc adapts a function to the Receiver interface.
type ReceiverFunc func(Inbound)

// Receive implements Receiver.
func (f ReceiverFunc) Receive(in Inbound) { f(in) }

var _ Receiver = ReceiverFunc(nil)

// Link is one endpoint of a bidirectional broker-to-broker or
// client-to-broker connection.
type Link interface {
	// Send transmits a message to the peer, preserving FIFO order with
	// respect to prior Sends on this link. A Send consumed by the link's
	// overload policy (send-window shedding) still returns nil: the
	// message was accepted and disposed of, and the loss is accounted in
	// the link's flow stats.
	Send(m wire.Message) error
	// Close tears the link down; subsequent Sends fail.
	Close() error
}

// BatchSender is an optional Link capability: transmit a slice of messages
// as one FIFO burst, amortizing per-message handoff costs (lock
// acquisitions, syscalls). The burst is ordered with respect to Send calls
// on the same link. Implementations must not retain ms past the call.
type BatchSender interface {
	SendBatch(ms []wire.Message) error
}

// Flusher is an optional Link capability for transports that buffer or
// queue writes (TCP): Flush blocks until everything accepted so far is on
// the wire, or returns the write error that stopped it.
type Flusher interface {
	Flush() error
}

// FrameEncoder marks links that serialize messages to bytes (TCP).
// Brokers pre-encode a fan-out message once (wire.Preencode) when at
// least one attached link has this capability.
type FrameEncoder interface {
	EncodesFrames()
}

// BatchReceiver is an optional Receiver capability: accept a FIFO burst of
// messages from a single hop with one handoff (e.g. one mailbox lock
// acquisition). Implementations must not retain the slice past the call.
type BatchReceiver interface {
	Receiver
	ReceiveBurst(from wire.Hop, ms []wire.Message)
}

// ErrLinkClosed is returned by Send after Close.
var ErrLinkClosed = errors.New("transport: link closed")

// ChanLink is an in-process link endpoint. Messages are handed to the
// remote receiver either synchronously (no latency, no window) or through
// a pump: a flow-controlled queue drained by one goroutine that models
// link latency and — when a send window is configured — bounds how far a
// slow receiver can fall behind before the window's overload policy
// engages. Messages are admitted by wire.Type.FlowClass: publishes take
// the full policy, deliveries are lossless (never shed, but they stall
// the sender on a full window), and control messages are exempt, so
// routing and relocation traffic is never shed.
//
// Close semantics: once Close returns, no further synchronous delivery
// begins — Close waits for in-flight Sends to finish handing off, so a
// racing Send either completes before Close returns or fails with
// ErrLinkClosed. Messages already inside the pump still drain (the link
// models error-free FIFO delivery; bytes on the wire arrive). Close must
// not be called from the delivery path of its own link.
type ChanLink struct {
	localHop wire.Hop // how the remote side sees us
	remote   Receiver
	latency  time.Duration
	counter  *metrics.Counter
	pump     *linkPump

	mu       sync.Mutex
	cond     *sync.Cond // signals inflight reaching zero after close
	closed   bool
	inflight int
}

var _ Link = (*ChanLink)(nil)
var _ BatchSender = (*ChanLink)(nil)
var _ flow.Reporter = (*ChanLink)(nil)

// PipeOption configures a Pipe.
type PipeOption func(*pipeConfig)

type pipeConfig struct {
	latencyAB time.Duration
	latencyBA time.Duration
	counter   *metrics.Counter
	window    *flow.Options
}

// WithLatency sets a symmetric one-way latency for both directions.
func WithLatency(d time.Duration) PipeOption {
	return func(c *pipeConfig) {
		c.latencyAB = d
		c.latencyBA = d
	}
}

// WithAsymmetricLatency sets distinct latencies for the two directions.
func WithAsymmetricLatency(ab, ba time.Duration) PipeOption {
	return func(c *pipeConfig) {
		c.latencyAB = ab
		c.latencyBA = ba
	}
}

// WithCounter counts every message crossing the pipe (in either direction)
// into the given counter, categorized by message type.
func WithCounter(cnt *metrics.Counter) PipeOption {
	return func(c *pipeConfig) { c.counter = cnt }
}

// WithWindow gives both directions of the pipe a bounded send window with
// the given capacity and overload policy: a sender gets at most Capacity
// notifications of headroom before the policy engages (Block stalls the
// sender, DropOldest/ShedNewest shed). Deliveries decouple from Send onto
// the pump goroutine, like a latency pipe's. MaxDrain is ignored.
func WithWindow(o flow.Options) PipeOption {
	return func(c *pipeConfig) { c.window = &o }
}

// Pipe connects two receivers with a pair of link endpoints. aHop is the
// identity under which A's messages arrive at B, and vice versa.
func Pipe(aHop, bHop wire.Hop, a, b Receiver, opts ...PipeOption) (fromA, fromB *ChanLink) {
	var cfg pipeConfig
	for _, o := range opts {
		o(&cfg)
	}
	la := &ChanLink{localHop: aHop, remote: b, latency: cfg.latencyAB, counter: cfg.counter}
	lb := &ChanLink{localHop: bHop, remote: a, latency: cfg.latencyBA, counter: cfg.counter}
	la.cond = sync.NewCond(&la.mu)
	lb.cond = sync.NewCond(&lb.mu)
	if cfg.latencyAB > 0 || cfg.window != nil {
		la.pump = newLinkPump(cfg.window)
		go la.pumpRun()
	}
	if cfg.latencyBA > 0 || cfg.window != nil {
		lb.pump = newLinkPump(cfg.window)
		go lb.pumpRun()
	}
	return la, lb
}

// beginSend registers an in-flight delivery; it fails once the link is
// closed. Holding delivery inside the begin/end window is what closes the
// seed's race where a Send that passed the closed check could still
// deliver after Close returned.
func (l *ChanLink) beginSend() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrLinkClosed
	}
	l.inflight++
	return nil
}

func (l *ChanLink) endSend() {
	l.mu.Lock()
	l.inflight--
	if l.inflight == 0 && l.closed {
		l.cond.Broadcast()
	}
	l.mu.Unlock()
}

// Send implements Link.
func (l *ChanLink) Send(m wire.Message) error {
	if err := l.beginSend(); err != nil {
		return err
	}
	defer l.endSend()
	if l.counter != nil {
		l.counter.Inc(categorize(m))
	}
	if l.pump == nil {
		l.remote.Receive(Inbound{From: l.localHop, Msg: m})
		return nil
	}
	err := l.pump.q.Push(timedMsg{due: l.due(), burst: l.pump.nextBurst(), m: m})
	if err == flow.ErrClosed {
		return ErrLinkClosed
	}
	// flow.ErrShed means the window's policy consumed the message; the
	// Send succeeded and the drop is visible in FlowStats.
	return nil
}

// SendBatch implements BatchSender: the messages cross the link as one
// FIFO burst — a single receiver handoff on the synchronous path, a
// single pump enqueue otherwise. The window policy applies per message,
// so control inside a burst survives shedding around it.
func (l *ChanLink) SendBatch(ms []wire.Message) error {
	if len(ms) == 0 {
		return nil
	}
	if err := l.beginSend(); err != nil {
		return err
	}
	defer l.endSend()
	if l.counter != nil {
		for _, m := range ms {
			l.counter.Inc(categorize(m))
		}
	}
	if l.pump == nil {
		deliverBurst(l.remote, l.localHop, ms)
		return nil
	}
	// The pump queue copies each message, so the caller is free to reuse
	// ms once SendBatch returns.
	due, burst := l.due(), l.pump.nextBurst()
	err := l.pump.q.PushBurst(len(ms), func(i int) timedMsg {
		return timedMsg{due: due, burst: burst, m: ms[i]}
	})
	if err == flow.ErrClosed {
		return ErrLinkClosed
	}
	return nil
}

func (l *ChanLink) due() time.Time {
	if l.latency <= 0 {
		return time.Time{} // deliver as soon as the pump gets to it
	}
	return time.Now().Add(l.latency)
}

// FlowStats implements flow.Reporter: the send window's counters, or a
// zero snapshot for a synchronous (pump-less) link.
func (l *ChanLink) FlowStats() flow.Stats {
	if l.pump == nil {
		return flow.Stats{}
	}
	return l.pump.q.Stats()
}

// WaitIdle blocks until every message the link had accepted before the
// call has been handed to the receiver (or evicted by the window
// policy). Synchronous links deliver inside Send, so it returns
// immediately. Meant for tests and graceful shutdown sequencing; it does
// not stop new sends from arriving while it waits.
//
// It works by pushing a control-class sentinel through the pump queue:
// control is never shed, evicted, or stalled, and delivery is FIFO, so
// by the time the pump reaches the sentinel every earlier message has
// been delivered or evicted — exact even while concurrent sends (and
// concurrent window evictions) keep the counters moving.
func (l *ChanLink) WaitIdle() {
	if l.pump == nil {
		return
	}
	marker := make(chan struct{})
	err := l.pump.q.Push(timedMsg{burst: l.pump.nextBurst(), sentinel: marker})
	if err != nil {
		// Closed queue: the pump is draining its remainder; idle when it
		// exits.
		<-l.pump.done
		return
	}
	select {
	case <-marker:
	case <-l.pump.done:
	}
}

// deliverBurst hands a burst to the receiver, collapsing it into one
// handoff when the receiver is batch-aware.
func deliverBurst(r Receiver, from wire.Hop, ms []wire.Message) {
	if br, ok := r.(BatchReceiver); ok {
		br.ReceiveBurst(from, ms)
		return
	}
	for _, m := range ms {
		r.Receive(Inbound{From: from, Msg: m})
	}
}

// Close implements Link. It waits for in-flight Sends to complete their
// handoff, so no synchronous delivery begins after Close returns — every
// Close call waits, so concurrent closers all get the guarantee. Messages
// already accepted by the pump still drain before its goroutine exits
// (stopping it early would turn modeled latency into loss mid-test).
func (l *ChanLink) Close() error {
	l.mu.Lock()
	l.closed = true
	for l.inflight > 0 {
		l.cond.Wait()
	}
	l.mu.Unlock()
	if l.pump != nil {
		l.pump.q.Close()
		<-l.pump.done
	}
	return nil
}

func categorize(m wire.Message) metrics.Category {
	switch {
	case m.Type == wire.TypePublish:
		return metrics.CategoryNotification
	case m.Type == wire.TypeDeliver:
		return metrics.CategoryDeliver
	case m.Type == wire.TypeFetch || m.Type == wire.TypeReplay:
		return metrics.CategoryControl
	default:
		return metrics.CategoryAdmin
	}
}

// linkPump is the asynchronous delivery half of a ChanLink: a flow queue
// of messages stamped with their due time, drained in order by one
// goroutine. It subsumes the old delayLine (whose head-popping
// `queue = queue[1:]` stranded the backing array head; the flow queue's
// drain-batch swap reuses it) and adds the send window: with a bounded
// queue, a receiver that stops consuming exerts backpressure — or sheds —
// at this link instead of growing RAM without limit.
type linkPump struct {
	q        *flow.Queue[timedMsg]
	done     chan struct{}
	burstSeq atomic.Uint64
}

// nextBurst stamps one Send or SendBatch: the pump delivers messages
// sharing a stamp as one burst and never merges across stamps, so the
// receiver sees the same burst boundaries the sender produced.
func (p *linkPump) nextBurst() uint64 { return p.burstSeq.Add(1) }

// timedMsg is one queued message with its delivery due time (zero: as
// soon as the pump reaches it) and the burst it belongs to. A timedMsg
// with sentinel set carries no message: the pump closes the channel when
// it reaches it instead of delivering (WaitIdle's quiesce marker).
type timedMsg struct {
	due      time.Time
	burst    uint64
	m        wire.Message
	sentinel chan struct{}
}

func timedClass(tm timedMsg) flow.Class {
	if tm.sentinel != nil {
		return flow.Control
	}
	return tm.m.Type.FlowClass()
}

func newLinkPump(window *flow.Options) *linkPump {
	var o flow.Options
	if window != nil {
		o = *window
		o.MaxDrain = 0 // the pump always drains wholesale
	}
	return &linkPump{
		q:    flow.NewQueue[timedMsg](o, timedClass),
		done: make(chan struct{}),
	}
}

// pumpRun drains the pump queue: it sleeps until the head message is due,
// then delivers it together with the rest of its burst, preserving both
// FIFO order and the sender's burst boundaries (a SendBatch arrives as
// one ReceiveBurst, exactly as on the synchronous path).
func (l *ChanLink) pumpRun() {
	defer close(l.pump.done)
	var burst []wire.Message
	for {
		batch, ok := l.pump.q.PopBatch()
		if !ok {
			return
		}
		for i := 0; i < len(batch); {
			if batch[i].sentinel != nil {
				close(batch[i].sentinel)
				i++
				continue
			}
			if wait := time.Until(batch[i].due); wait > 0 {
				time.Sleep(wait)
			}
			j := i + 1
			for j < len(batch) && batch[j].burst == batch[i].burst {
				j++
			}
			burst = burst[:0]
			for k := i; k < j; k++ {
				burst = append(burst, batch[k].m)
			}
			deliverBurst(l.remote, l.localHop, burst)
			i = j
		}
		l.pump.q.Recycle(batch)
		if cap(burst) > flow.MaxRecycledCap {
			burst = nil
		}
	}
}
