// Package transport provides the point-to-point, FIFO-ordered,
// error-free communication links the paper's system model assumes
// (Section 2.1): in-process channel links with configurable latency for
// tests and experiments, and TCP links for distributed deployment.
package transport

import (
	"errors"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/wire"
)

// Inbound is a message as it arrives at a broker, tagged with the hop it
// came from.
type Inbound struct {
	From wire.Hop
	Msg  wire.Message
}

// Receiver consumes inbound messages. Implementations must be safe for
// concurrent use; per-link FIFO order is preserved by the links.
type Receiver interface {
	Receive(in Inbound)
}

// ReceiverFunc adapts a function to the Receiver interface.
type ReceiverFunc func(Inbound)

// Receive implements Receiver.
func (f ReceiverFunc) Receive(in Inbound) { f(in) }

var _ Receiver = ReceiverFunc(nil)

// Link is one endpoint of a bidirectional broker-to-broker or
// client-to-broker connection.
type Link interface {
	// Send transmits a message to the peer, preserving FIFO order with
	// respect to prior Sends on this link.
	Send(m wire.Message) error
	// Close tears the link down; subsequent Sends fail.
	Close() error
}

// ErrLinkClosed is returned by Send after Close.
var ErrLinkClosed = errors.New("transport: link closed")

// ChanLink is an in-process link endpoint. Messages are handed to the
// remote receiver either synchronously (zero latency) or through a delay
// line that models link latency while preserving FIFO order.
type ChanLink struct {
	localHop  wire.Hop // how the remote side sees us
	remote    Receiver
	latency   time.Duration
	counter   *metrics.Counter
	delayLine *delayLine

	mu     sync.Mutex
	closed bool
}

var _ Link = (*ChanLink)(nil)

// PipeOption configures a Pipe.
type PipeOption func(*pipeConfig)

type pipeConfig struct {
	latencyAB time.Duration
	latencyBA time.Duration
	counter   *metrics.Counter
}

// WithLatency sets a symmetric one-way latency for both directions.
func WithLatency(d time.Duration) PipeOption {
	return func(c *pipeConfig) {
		c.latencyAB = d
		c.latencyBA = d
	}
}

// WithAsymmetricLatency sets distinct latencies for the two directions.
func WithAsymmetricLatency(ab, ba time.Duration) PipeOption {
	return func(c *pipeConfig) {
		c.latencyAB = ab
		c.latencyBA = ba
	}
}

// WithCounter counts every message crossing the pipe (in either direction)
// into the given counter, categorized by message type.
func WithCounter(cnt *metrics.Counter) PipeOption {
	return func(c *pipeConfig) { c.counter = cnt }
}

// Pipe connects two receivers with a pair of link endpoints. aHop is the
// identity under which A's messages arrive at B, and vice versa.
func Pipe(aHop, bHop wire.Hop, a, b Receiver, opts ...PipeOption) (fromA, fromB *ChanLink) {
	var cfg pipeConfig
	for _, o := range opts {
		o(&cfg)
	}
	la := &ChanLink{localHop: aHop, remote: b, latency: cfg.latencyAB, counter: cfg.counter}
	lb := &ChanLink{localHop: bHop, remote: a, latency: cfg.latencyBA, counter: cfg.counter}
	if cfg.latencyAB > 0 {
		la.delayLine = newDelayLine()
	}
	if cfg.latencyBA > 0 {
		lb.delayLine = newDelayLine()
	}
	return la, lb
}

// Send implements Link.
func (l *ChanLink) Send(m wire.Message) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrLinkClosed
	}
	l.mu.Unlock()

	if l.counter != nil {
		l.counter.Inc(categorize(m))
	}
	in := Inbound{From: l.localHop, Msg: m}
	if l.delayLine == nil {
		l.remote.Receive(in)
		return nil
	}
	l.delayLine.enqueue(time.Now().Add(l.latency), func() { l.remote.Receive(in) })
	return nil
}

// Close implements Link.
func (l *ChanLink) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	if l.delayLine != nil {
		l.delayLine.stop()
	}
	return nil
}

func categorize(m wire.Message) metrics.Category {
	switch {
	case m.Type == wire.TypePublish:
		return metrics.CategoryNotification
	case m.Type == wire.TypeDeliver:
		return metrics.CategoryDeliver
	case m.Type == wire.TypeFetch || m.Type == wire.TypeReplay:
		return metrics.CategoryControl
	default:
		return metrics.CategoryAdmin
	}
}

// delayLine delivers enqueued actions in order after their due time,
// modeling a FIFO link with latency. A single goroutine drains the queue;
// stop terminates it after the queue empties or immediately when idle.
type delayLine struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []delayed
	stopped bool
	done    chan struct{}
}

type delayed struct {
	due time.Time
	fn  func()
}

func newDelayLine() *delayLine {
	d := &delayLine{done: make(chan struct{})}
	d.cond = sync.NewCond(&d.mu)
	go d.run()
	return d
}

func (d *delayLine) enqueue(due time.Time, fn func()) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stopped {
		return
	}
	d.queue = append(d.queue, delayed{due: due, fn: fn})
	d.cond.Signal()
}

func (d *delayLine) run() {
	defer close(d.done)
	for {
		d.mu.Lock()
		for len(d.queue) == 0 && !d.stopped {
			d.cond.Wait()
		}
		if d.stopped && len(d.queue) == 0 {
			d.mu.Unlock()
			return
		}
		item := d.queue[0]
		d.queue = d.queue[1:]
		d.mu.Unlock()

		if wait := time.Until(item.due); wait > 0 {
			time.Sleep(wait)
		}
		item.fn()
	}
}

// stop drains remaining items (delivering them without further delay would
// break FIFO timing guarantees mid-test, so it lets the queue finish) and
// terminates the goroutine.
func (d *delayLine) stop() {
	d.mu.Lock()
	d.stopped = true
	d.cond.Signal()
	d.mu.Unlock()
	<-d.done
}
