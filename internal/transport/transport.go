// Package transport provides the point-to-point, FIFO-ordered,
// error-free communication links the paper's system model assumes
// (Section 2.1): in-process channel links with configurable latency for
// tests and experiments, and TCP links for distributed deployment.
package transport

import (
	"errors"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/wire"
)

// Inbound is a message as it arrives at a broker, tagged with the hop it
// came from.
type Inbound struct {
	From wire.Hop
	Msg  wire.Message
}

// Receiver consumes inbound messages. Implementations must be safe for
// concurrent use; per-link FIFO order is preserved by the links.
type Receiver interface {
	Receive(in Inbound)
}

// ReceiverFunc adapts a function to the Receiver interface.
type ReceiverFunc func(Inbound)

// Receive implements Receiver.
func (f ReceiverFunc) Receive(in Inbound) { f(in) }

var _ Receiver = ReceiverFunc(nil)

// Link is one endpoint of a bidirectional broker-to-broker or
// client-to-broker connection.
type Link interface {
	// Send transmits a message to the peer, preserving FIFO order with
	// respect to prior Sends on this link.
	Send(m wire.Message) error
	// Close tears the link down; subsequent Sends fail.
	Close() error
}

// BatchSender is an optional Link capability: transmit a slice of messages
// as one FIFO burst, amortizing per-message handoff costs (lock
// acquisitions, syscalls). The burst is ordered with respect to Send calls
// on the same link. Implementations must not retain ms past the call.
type BatchSender interface {
	SendBatch(ms []wire.Message) error
}

// Flusher is an optional Link capability for transports that buffer writes
// (TCP): Flush pushes everything buffered onto the wire. Send and
// SendBatch flush implicitly, so Flush is a safety net for callers that
// bypass them.
type Flusher interface {
	Flush() error
}

// FrameEncoder marks links that serialize messages to bytes (TCP).
// Brokers pre-encode a fan-out message once (wire.Preencode) when at
// least one attached link has this capability.
type FrameEncoder interface {
	EncodesFrames()
}

// BatchReceiver is an optional Receiver capability: accept a FIFO burst of
// messages from a single hop with one handoff (e.g. one mailbox lock
// acquisition). Implementations must not retain the slice past the call.
type BatchReceiver interface {
	Receiver
	ReceiveBurst(from wire.Hop, ms []wire.Message)
}

// ErrLinkClosed is returned by Send after Close.
var ErrLinkClosed = errors.New("transport: link closed")

// ChanLink is an in-process link endpoint. Messages are handed to the
// remote receiver either synchronously (zero latency) or through a delay
// line that models link latency while preserving FIFO order.
//
// Close semantics: once Close returns, no further synchronous delivery
// begins — Close waits for in-flight Sends to finish handing off, so a
// racing Send either completes before Close returns or fails with
// ErrLinkClosed. Messages already inside the delay line still drain (the
// link models error-free FIFO delivery; bytes on the wire arrive). Close
// must not be called from the delivery path of its own link.
type ChanLink struct {
	localHop  wire.Hop // how the remote side sees us
	remote    Receiver
	latency   time.Duration
	counter   *metrics.Counter
	delayLine *delayLine

	mu       sync.Mutex
	cond     *sync.Cond // signals inflight reaching zero after close
	closed   bool
	inflight int
}

var _ Link = (*ChanLink)(nil)
var _ BatchSender = (*ChanLink)(nil)

// PipeOption configures a Pipe.
type PipeOption func(*pipeConfig)

type pipeConfig struct {
	latencyAB time.Duration
	latencyBA time.Duration
	counter   *metrics.Counter
}

// WithLatency sets a symmetric one-way latency for both directions.
func WithLatency(d time.Duration) PipeOption {
	return func(c *pipeConfig) {
		c.latencyAB = d
		c.latencyBA = d
	}
}

// WithAsymmetricLatency sets distinct latencies for the two directions.
func WithAsymmetricLatency(ab, ba time.Duration) PipeOption {
	return func(c *pipeConfig) {
		c.latencyAB = ab
		c.latencyBA = ba
	}
}

// WithCounter counts every message crossing the pipe (in either direction)
// into the given counter, categorized by message type.
func WithCounter(cnt *metrics.Counter) PipeOption {
	return func(c *pipeConfig) { c.counter = cnt }
}

// Pipe connects two receivers with a pair of link endpoints. aHop is the
// identity under which A's messages arrive at B, and vice versa.
func Pipe(aHop, bHop wire.Hop, a, b Receiver, opts ...PipeOption) (fromA, fromB *ChanLink) {
	var cfg pipeConfig
	for _, o := range opts {
		o(&cfg)
	}
	la := &ChanLink{localHop: aHop, remote: b, latency: cfg.latencyAB, counter: cfg.counter}
	lb := &ChanLink{localHop: bHop, remote: a, latency: cfg.latencyBA, counter: cfg.counter}
	la.cond = sync.NewCond(&la.mu)
	lb.cond = sync.NewCond(&lb.mu)
	if cfg.latencyAB > 0 {
		la.delayLine = newDelayLine()
	}
	if cfg.latencyBA > 0 {
		lb.delayLine = newDelayLine()
	}
	return la, lb
}

// beginSend registers an in-flight delivery; it fails once the link is
// closed. Holding delivery inside the begin/end window is what closes the
// seed's race where a Send that passed the closed check could still
// deliver after Close returned.
func (l *ChanLink) beginSend() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrLinkClosed
	}
	l.inflight++
	return nil
}

func (l *ChanLink) endSend() {
	l.mu.Lock()
	l.inflight--
	if l.inflight == 0 && l.closed {
		l.cond.Broadcast()
	}
	l.mu.Unlock()
}

// Send implements Link.
func (l *ChanLink) Send(m wire.Message) error {
	if err := l.beginSend(); err != nil {
		return err
	}
	defer l.endSend()
	if l.counter != nil {
		l.counter.Inc(categorize(m))
	}
	in := Inbound{From: l.localHop, Msg: m}
	if l.delayLine == nil {
		l.remote.Receive(in)
		return nil
	}
	l.delayLine.enqueue(time.Now().Add(l.latency), func() { l.remote.Receive(in) })
	return nil
}

// SendBatch implements BatchSender: the messages cross the link as one
// FIFO burst — a single receiver handoff at zero latency, a single delay
// line entry otherwise.
func (l *ChanLink) SendBatch(ms []wire.Message) error {
	if len(ms) == 0 {
		return nil
	}
	if err := l.beginSend(); err != nil {
		return err
	}
	defer l.endSend()
	if l.counter != nil {
		for _, m := range ms {
			l.counter.Inc(categorize(m))
		}
	}
	if l.delayLine == nil {
		deliverBurst(l.remote, l.localHop, ms)
		return nil
	}
	// The caller may reuse ms once SendBatch returns; the delayed delivery
	// needs its own copy.
	cp := make([]wire.Message, len(ms))
	copy(cp, ms)
	l.delayLine.enqueue(time.Now().Add(l.latency), func() { deliverBurst(l.remote, l.localHop, cp) })
	return nil
}

// deliverBurst hands a burst to the receiver, collapsing it into one
// handoff when the receiver is batch-aware.
func deliverBurst(r Receiver, from wire.Hop, ms []wire.Message) {
	if br, ok := r.(BatchReceiver); ok {
		br.ReceiveBurst(from, ms)
		return
	}
	for _, m := range ms {
		r.Receive(Inbound{From: from, Msg: m})
	}
}

// Close implements Link. It waits for in-flight Sends to complete their
// handoff, so no synchronous delivery begins after Close returns — every
// Close call waits, so concurrent closers all get the guarantee
// (delayLine.stop is likewise idempotent).
func (l *ChanLink) Close() error {
	l.mu.Lock()
	l.closed = true
	for l.inflight > 0 {
		l.cond.Wait()
	}
	l.mu.Unlock()
	if l.delayLine != nil {
		l.delayLine.stop()
	}
	return nil
}

func categorize(m wire.Message) metrics.Category {
	switch {
	case m.Type == wire.TypePublish:
		return metrics.CategoryNotification
	case m.Type == wire.TypeDeliver:
		return metrics.CategoryDeliver
	case m.Type == wire.TypeFetch || m.Type == wire.TypeReplay:
		return metrics.CategoryControl
	default:
		return metrics.CategoryAdmin
	}
}

// delayLine delivers enqueued actions in order after their due time,
// modeling a FIFO link with latency. A single goroutine drains the queue;
// stop terminates it after the queue empties or immediately when idle.
type delayLine struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []delayed
	stopped bool
	done    chan struct{}
}

type delayed struct {
	due time.Time
	fn  func()
}

func newDelayLine() *delayLine {
	d := &delayLine{done: make(chan struct{})}
	d.cond = sync.NewCond(&d.mu)
	go d.run()
	return d
}

func (d *delayLine) enqueue(due time.Time, fn func()) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stopped {
		return
	}
	d.queue = append(d.queue, delayed{due: due, fn: fn})
	d.cond.Signal()
}

func (d *delayLine) run() {
	defer close(d.done)
	for {
		d.mu.Lock()
		for len(d.queue) == 0 && !d.stopped {
			d.cond.Wait()
		}
		if d.stopped && len(d.queue) == 0 {
			d.mu.Unlock()
			return
		}
		item := d.queue[0]
		d.queue = d.queue[1:]
		d.mu.Unlock()

		if wait := time.Until(item.due); wait > 0 {
			time.Sleep(wait)
		}
		item.fn()
	}
}

// stop drains remaining items (delivering them without further delay would
// break FIFO timing guarantees mid-test, so it lets the queue finish) and
// terminates the goroutine.
func (d *delayLine) stop() {
	d.mu.Lock()
	d.stopped = true
	d.cond.Signal()
	d.mu.Unlock()
	<-d.done
}
