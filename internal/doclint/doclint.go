// Package doclint enforces godoc conventions as an ordinary test
// dependency: every exported identifier of a checked package must carry a
// doc comment that starts with the identifier's name, and the package
// itself must have a package comment. The rules mirror staticcheck's
// ST1000/ST1020/ST1021/ST1022 so the CheckPackage tests and the CI
// staticcheck step agree on what "documented" means, but unlike
// staticcheck they run with a bare `go test` — no tool installation.
package doclint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
)

// Problem is one missing or malformed doc comment.
type Problem struct {
	Pos  string // file:line of the offending declaration
	Name string // exported identifier (empty for a package-comment problem)
	Msg  string
}

// String renders the problem as "file:line: name: message".
func (p Problem) String() string {
	if p.Name == "" {
		return fmt.Sprintf("%s: %s", p.Pos, p.Msg)
	}
	return fmt.Sprintf("%s: %s: %s", p.Pos, p.Name, p.Msg)
}

// CheckPackage parses the non-test Go files of the package in dir and
// returns every doc-comment violation: a missing package comment, or an
// exported type, function, method, or grouped var/const declaration whose
// doc comment is absent or does not start with the identifier's name.
func CheckPackage(dir string) ([]Problem, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var problems []Problem
	for _, pkg := range pkgs {
		problems = append(problems, checkPackageComment(fset, pkg)...)
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				problems = append(problems, checkDecl(fset, decl)...)
			}
		}
	}
	return problems, nil
}

// checkPackageComment requires at least one file of the package to carry
// a package doc comment (ST1000).
func checkPackageComment(fset *token.FileSet, pkg *ast.Package) []Problem {
	for _, file := range pkg.Files {
		if file.Doc != nil && strings.TrimSpace(file.Doc.Text()) != "" {
			return nil
		}
	}
	// Report against an arbitrary-but-deterministic file position.
	pos := "?"
	for _, file := range pkg.Files {
		p := fset.Position(file.Package).String()
		if pos == "?" || p < pos {
			pos = p
		}
	}
	return []Problem{{Pos: pos, Msg: "package has no package comment"}}
}

func checkDecl(fset *token.FileSet, decl ast.Decl) []Problem {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return nil
		}
		if d.Recv != nil && !receiverExported(d.Recv) {
			// Methods on unexported types are not part of the godoc
			// surface unless the type leaks through an exported API;
			// keep the check scoped to what godoc renders.
			return nil
		}
		return checkDoc(fset.Position(d.Pos()).String(), d.Name.Name, d.Doc)
	case *ast.GenDecl:
		return checkGenDecl(fset, d)
	}
	return nil
}

// checkGenDecl handles type, var, and const declarations. A grouped
// declaration may document the group on the GenDecl; individual specs then
// only need their own comment when the group has none.
func checkGenDecl(fset *token.FileSet, d *ast.GenDecl) []Problem {
	var problems []Problem
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			doc := s.Doc
			if doc == nil && len(d.Specs) == 1 {
				doc = d.Doc
			}
			problems = append(problems, checkDoc(fset.Position(s.Pos()).String(), s.Name.Name, doc)...)
		case *ast.ValueSpec:
			name := firstExported(s.Names)
			if name == "" {
				continue
			}
			// A const/var group is fine if either the group or the spec
			// is documented; the name-prefix rule only applies to
			// single-identifier specs (ST1022's shape).
			if groupDocumented(d) || specDocumented(s) {
				if len(s.Names) == 1 && s.Doc != nil {
					problems = append(problems, checkDoc(fset.Position(s.Pos()).String(), name, s.Doc)...)
				}
				continue
			}
			problems = append(problems, Problem{
				Pos:  fset.Position(s.Pos()).String(),
				Name: name,
				Msg:  "exported value has no doc comment (on the group or the spec)",
			})
		}
	}
	return problems
}

// checkDoc requires a non-empty comment whose first word is the
// identifier's name (allowing the standard "A Name ..."/"The Name ..."
// article prefixes that godoc also renders cleanly).
func checkDoc(pos, name string, doc *ast.CommentGroup) []Problem {
	if doc == nil || strings.TrimSpace(doc.Text()) == "" {
		return []Problem{{Pos: pos, Name: name, Msg: "exported identifier has no doc comment"}}
	}
	words := strings.Fields(doc.Text())
	first := words[0]
	if first == "A" || first == "An" || first == "The" {
		if len(words) > 1 {
			first = words[1]
		}
	}
	if first != name {
		return []Problem{{Pos: pos, Name: name, Msg: fmt.Sprintf("doc comment should start with %q, got %q", name, words[0])}}
	}
	return nil
}

func receiverExported(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

func firstExported(names []*ast.Ident) string {
	for _, n := range names {
		if n.IsExported() {
			return n.Name
		}
	}
	return ""
}

func groupDocumented(d *ast.GenDecl) bool {
	return d.Doc != nil && strings.TrimSpace(d.Doc.Text()) != ""
}

func specDocumented(s *ast.ValueSpec) bool {
	return (s.Doc != nil && strings.TrimSpace(s.Doc.Text()) != "") ||
		(s.Comment != nil && strings.TrimSpace(s.Comment.Text()) != "")
}
