package doclint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write drops one Go source file into a fresh package dir and returns the
// dir.
func write(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func check(t *testing.T, src string) []Problem {
	t.Helper()
	problems, err := CheckPackage(write(t, src))
	if err != nil {
		t.Fatal(err)
	}
	return problems
}

// TestCleanPackagePasses: a fully documented surface yields no problems.
func TestCleanPackagePasses(t *testing.T) {
	problems := check(t, `// Package x is documented.
package x

// Exported is a documented function.
func Exported() {}

// Thing is a documented type.
type Thing struct{}

// Do is a documented method.
func (Thing) Do() {}

// Limit is a documented constant.
const Limit = 3

// Modes of operation.
const (
	ModeA = iota
	ModeB
)

func unexported() {}
`)
	if len(problems) != 0 {
		t.Fatalf("clean package flagged: %v", problems)
	}
}

// TestViolationsAreFlagged covers each rule: missing package comment,
// undocumented function/type/const, and a doc comment that does not start
// with the identifier's name.
func TestViolationsAreFlagged(t *testing.T) {
	problems := check(t, `package x

func Exported() {}

type Thing struct{}

// Wrong prefix on this one.
func (Thing) Do() {}

const Limit = 3
`)
	wants := []string{
		"package has no package comment",
		"Exported",
		"Thing",
		"Do",
		"Limit",
	}
	joined := ""
	for _, p := range problems {
		joined += p.String() + "\n"
	}
	for _, want := range wants {
		if !strings.Contains(joined, want) {
			t.Errorf("missing complaint about %q in:\n%s", want, joined)
		}
	}
	if len(problems) != len(wants) {
		t.Errorf("want %d problems, got %d:\n%s", len(wants), len(problems), joined)
	}
}

// TestArticlePrefixAllowed: "A Name ..." and "The Name ..." are godoc
// idiom and must pass.
func TestArticlePrefixAllowed(t *testing.T) {
	problems := check(t, `// Package x is documented.
package x

// A Widget is something.
type Widget struct{}

// The Registry holds widgets.
type Registry struct{}
`)
	if len(problems) != 0 {
		t.Fatalf("article-prefixed docs flagged: %v", problems)
	}
}

// TestMethodsOnUnexportedTypesIgnored: an exported method on an
// unexported receiver is not part of the rendered godoc surface.
func TestMethodsOnUnexportedTypesIgnored(t *testing.T) {
	problems := check(t, `// Package x is documented.
package x

type hidden struct{}

func (hidden) Visible() {}
`)
	if len(problems) != 0 {
		t.Fatalf("unexported receiver flagged: %v", problems)
	}
}
