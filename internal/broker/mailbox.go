package broker

import (
	"sync"

	"repro/internal/wire"
)

// mailbox is an unbounded FIFO queue of broker tasks. Brokers consume
// their mailbox from a single goroutine, which makes every routing
// decision atomic (the paper's "routing decision is assumed to be an
// atomic operation", Section 2.2) and lets links push without ever
// blocking — avoiding send/receive deadlock cycles between neighboring
// brokers.
//
// The queue is a two-list drain-batch design: producers append to the
// pending list under the lock, and the consumer swaps the whole list out
// with one popBatch acquisition, iterating it lock-free. recycle returns a
// drained batch's backing array, so in steady state the two slices
// ping-pong between producer and consumer with no allocation.
//
// Unboundedness is deliberate: the system model assumes error-free FIFO
// links, so backpressure would have to be modeled as latency, not loss.
// The experiment harness bounds total load instead.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []task // pending tasks; swapped out wholesale by popBatch
	spare  []task // recycled backing array for the next queue
	max    int    // cap on tasks per drain; 0 = unlimited
	closed bool
}

// task is either an inbound wire message or a control closure to execute
// on the broker goroutine. Exactly one of fn and in is meaningful: a task
// with fn == nil carries an inbound message.
type task struct {
	in inbound
	fn func()
}

// newMailbox creates a mailbox. maxBatch caps how many tasks one popBatch
// drains; 0 means unlimited, 1 reproduces the seed's one-message-per-lock
// behavior (used by the parity tests and the fan-out benchmark baseline).
func newMailbox(maxBatch int) *mailbox {
	m := &mailbox{max: maxBatch}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// push enqueues a task. Pushing to a closed mailbox is a silent no-op
// (late messages during shutdown are dropped, mirroring a closed link).
func (m *mailbox) push(t task) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	if m.queue == nil {
		m.queue, m.spare = m.spare, nil
	}
	m.queue = append(m.queue, t)
	m.cond.Signal()
}

// pushBurst enqueues a burst of messages from one hop under one lock
// acquisition (the receiving half of a link-level batch send).
func (m *mailbox) pushBurst(from wire.Hop, ms []wire.Message) {
	if len(ms) == 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	if m.queue == nil {
		m.queue, m.spare = m.spare, nil
	}
	for _, msg := range ms {
		m.queue = append(m.queue, task{in: inbound{From: from, Msg: msg}})
	}
	m.cond.Signal()
}

// popBatch blocks until tasks are available or the mailbox is closed and
// drained; ok is false in the latter case. On success it returns the
// entire pending queue (up to max tasks) in FIFO order; the caller owns
// the slice and should hand it back via recycle when done.
func (m *mailbox) popBatch() ([]task, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.queue) == 0 {
		return nil, false
	}
	if m.max > 0 && len(m.queue) > m.max {
		// Split drain: the batch and the live remainder share one array,
		// but the 3-index slice caps the batch at max, so a recycled
		// batch can never append into the remainder's cells.
		batch := m.queue[:m.max:m.max]
		m.queue = m.queue[m.max:]
		return batch, true
	}
	batch := m.queue
	m.queue = nil
	return batch, true
}

// maxRecycledBatchCap caps the backing array recycle retains: a transient
// load spike must not pin its high-water batch allocation for the
// broker's lifetime.
const maxRecycledBatchCap = 1 << 16

// recycle keeps a drained batch's backing array for future pushes, so the
// run loop's steady state allocates nothing. Kept arrays are cleared
// first, dropping task references (closures, notification payloads) for
// the GC; discarded arrays go to the GC whole and skip the clearing.
func (m *mailbox) recycle(batch []task) {
	if cap(batch) == 0 || cap(batch) > maxRecycledBatchCap {
		return
	}
	m.mu.Lock()
	keep := m.spare == nil || cap(batch) > cap(m.spare)
	m.mu.Unlock()
	if !keep {
		return
	}
	for i := range batch {
		batch[i] = task{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.spare == nil || cap(batch) > cap(m.spare) {
		m.spare = batch[:0]
	}
}

// close stops accepting tasks; popBatch drains the remainder then reports
// done.
func (m *mailbox) close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.cond.Broadcast()
}

// len returns the number of queued tasks (diagnostics only).
func (m *mailbox) len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue)
}
