package broker

import (
	"repro/internal/flow"
	"repro/internal/wire"
)

// mailbox is the broker's task queue: a flow.Queue of tasks consumed by
// the run goroutine, which makes every routing decision atomic (the
// paper's "routing decision is assumed to be an atomic operation",
// Section 2.2). It keeps the two-list drain-batch design — producers
// append under the lock, the consumer swaps the whole pending list out
// with one popBatch acquisition and iterates it lock-free, recycle
// ping-pongs the backing arrays so the steady state allocates nothing —
// and adds the shared flow-control semantics: an optional capacity with
// an overload policy from broker.Options.
//
// The default stays unbounded: the system model assumes error-free FIFO
// links, so out of the box backpressure is modeled as latency, not loss,
// and links can push without ever blocking. A bounded mailbox makes the
// overload behavior explicit instead: Block stalls link readers and
// publishers at the mailbox (lossless backpressure, deadlock-free on
// feed-forward flows), DropOldest/ShedNewest trade notification loss for
// bounded memory. Control tasks — closures and admin messages — are
// always admitted, whatever the policy: shedding them would corrupt
// routing state, and blocking them would deadlock exec/Barrier.
// Deliveries (which a broker mailbox essentially never sees — they
// terminate at clients) are lossless: never shed, but they stall the
// pusher when the mailbox is full.
type mailbox struct {
	q *flow.Queue[task]
}

// task is either an inbound wire message or a control closure to execute
// on the broker goroutine. Exactly one of fn and in is meaningful: a task
// with fn == nil carries an inbound message.
type task struct {
	in inbound
	fn func()
}

// taskClass classifies tasks for the flow queue: closures are control by
// definition; messages take their wire admission class (publishes data,
// deliveries lossless, the rest control).
func taskClass(t task) flow.Class {
	if t.fn != nil {
		return flow.Control
	}
	return t.in.Msg.Type.FlowClass()
}

// newMailbox creates a mailbox. maxBatch caps how many tasks one popBatch
// drains (0 = unlimited; 1 reproduces the seed's one-message-per-lock
// behavior, used by the parity tests and the fan-out benchmark baseline).
// capacity bounds the queue (0 = unbounded) under the given overload
// policy.
func newMailbox(maxBatch, capacity int, policy flow.Policy) *mailbox {
	return &mailbox{q: flow.NewQueue[task](flow.Options{
		Capacity: capacity,
		Policy:   policy,
		MaxDrain: maxBatch,
	}, taskClass)}
}

// push enqueues a task. Pushing to a closed mailbox is a silent no-op
// (late messages during shutdown are dropped, mirroring a closed link),
// as is a push shed by the overload policy (the drop is counted in the
// queue's flow stats).
func (m *mailbox) push(t task) {
	_ = m.q.Push(t)
}

// pushBurst enqueues a burst of messages from one hop under one lock
// acquisition (the receiving half of a link-level batch send). The
// overload policy applies per message, so control messages inside a
// burst are admitted even when notifications around them are shed.
func (m *mailbox) pushBurst(from wire.Hop, ms []wire.Message) {
	if len(ms) == 0 {
		return
	}
	_ = m.q.PushBurst(len(ms), func(i int) task {
		return task{in: inbound{From: from, Msg: ms[i]}}
	})
}

// popBatch blocks until tasks are available or the mailbox is closed and
// drained; ok is false in the latter case. On success it returns the
// entire pending queue (up to maxBatch tasks) in FIFO order; the caller
// owns the slice and should hand it back via recycle when done.
func (m *mailbox) popBatch() ([]task, bool) { return m.q.PopBatch() }

// recycle keeps a drained batch's backing array for future pushes.
func (m *mailbox) recycle(batch []task) { m.q.Recycle(batch) }

// close stops accepting tasks; popBatch drains the remainder then reports
// done.
func (m *mailbox) close() { m.q.Close() }

// len returns the number of queued tasks (diagnostics only).
func (m *mailbox) len() int { return m.q.Len() }

// flowStats snapshots the queue's flow-control counters.
func (m *mailbox) flowStats() flow.Stats { return m.q.Stats() }
