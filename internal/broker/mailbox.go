package broker

import "sync"

// mailbox is an unbounded FIFO queue of broker tasks. Brokers consume
// their mailbox from a single goroutine, which makes every routing
// decision atomic (the paper's "routing decision is assumed to be an
// atomic operation", Section 2.2) and lets links push without ever
// blocking — avoiding send/receive deadlock cycles between neighboring
// brokers.
//
// Unboundedness is deliberate: the system model assumes error-free FIFO
// links, so backpressure would have to be modeled as latency, not loss.
// The experiment harness bounds total load instead.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []task
	closed bool
}

// task is either an inbound wire message or a control closure to execute
// on the broker goroutine.
type task struct {
	in *inbound
	fn func()
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// push enqueues a task. Pushing to a closed mailbox is a silent no-op
// (late messages during shutdown are dropped, mirroring a closed link).
func (m *mailbox) push(t task) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.queue = append(m.queue, t)
	m.cond.Signal()
}

// pop blocks until a task is available or the mailbox is closed and
// drained; ok is false in the latter case.
func (m *mailbox) pop() (task, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.queue) == 0 {
		return task{}, false
	}
	t := m.queue[0]
	m.queue = m.queue[1:]
	return t, true
}

// close stops accepting tasks; pop drains the remainder then reports done.
func (m *mailbox) close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.cond.Broadcast()
}

// len returns the number of queued tasks (diagnostics only).
func (m *mailbox) len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue)
}
