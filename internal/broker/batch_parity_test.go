package broker

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/filter"
	"repro/internal/flow"
	"repro/internal/message"
	"repro/internal/transport"
	"repro/internal/wire"
)

// TestBatchedDeliveryParity is the randomized parity test for the batched
// and parallel pipelines: the same multi-broker publish workload runs
// through the unbatched one-message-per-lock path (MaxBatch 1), the
// batched path (MaxBatch 0), and the parallel path (Workers 4), and every
// subscription's delivery sequence — payloads and sequence numbers — must
// be byte-identical across all three.
//
// Each subscription is pinned to a single producer (an equality constraint
// on the producer attribute), so its delivery sequence is determined by
// that producer's FIFO publish order alone: the overlay is a tree, links
// are FIFO, and brokers process in arrival order, which makes the
// per-subscription sequence independent of how publishes from different
// producers interleave into batches.
func TestBatchedDeliveryParity(t *testing.T) {
	const trials = 4
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			cfg := genParityWorkload(rand.New(rand.NewSource(0xba7c4 + int64(trial))))
			runs := map[string]map[string][]string{
				"unbatched": runParityWorkload(t, cfg, Options{MaxBatch: 1}),
				"batched":   runParityWorkload(t, cfg, Options{}),
				"parallel":  runParityWorkload(t, cfg, Options{Workers: 4}),
				// Sharded egress writers at every pool size the shard
				// pinning can exercise (1 = all links on one writer,
				// 4 > links on most trials); the per-link sequences must
				// not change when writes leave the run goroutine.
				"egress1":          runParityWorkload(t, cfg, Options{EgressWriters: 1}),
				"egress2":          runParityWorkload(t, cfg, Options{EgressWriters: 2}),
				"egress4-parallel": runParityWorkload(t, cfg, Options{EgressWriters: 4, Workers: 4}),
			}
			want := runs["unbatched"]
			for mode, got := range runs {
				assertParity(t, mode, got, want)
			}
		})
	}
}

// assertParity fails the test unless got and want contain the same
// subscription keys with byte-identical delivery sequences.
func assertParity(t *testing.T, mode string, got, want map[string][]string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: subscription sets differ: %d vs %d", mode, len(got), len(want))
	}
	for key, ws := range want {
		gs := got[key]
		if len(gs) != len(ws) {
			t.Fatalf("%s: %s: %d deliveries, want %d", mode, key, len(gs), len(ws))
		}
		for i := range ws {
			if gs[i] != ws[i] {
				t.Fatalf("%s: %s: delivery %d differs\ngot:  %s\nwant: %s",
					mode, key, i, gs[i], ws[i])
			}
		}
	}
}

// TestBoundedDeliveryParity extends the parity property to bounded Block
// mailboxes and Block link windows: with a lossless policy, capacity
// changes scheduling but not content, so every subscription's delivery
// sequence must stay byte-identical to the unbatched unbounded reference
// for any capacity.
//
// The workload is feed-forward — every producer is homed at the tree
// root, so notification flow is strictly root-to-leaves while the
// acyclicity of the wait-for graph keeps Block deadlock-free (control
// traffic flowing up is exempt from capacity). Bidirectional data flows
// under Block can deadlock by design; see Options.MailboxPolicy.
func TestBoundedDeliveryParity(t *testing.T) {
	const trials = 3
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			cfg := genParityWorkload(rand.New(rand.NewSource(0xb0b0 + int64(trial))))
			for p := range cfg.pubHome {
				cfg.pubHome[p] = 0 // feed-forward: all producers at the root
			}
			want := runParityWorkload(t, cfg, Options{MaxBatch: 1})
			window := transport.WithWindow(flow.Options{Capacity: 4, Policy: flow.Block})
			runs := map[string]map[string][]string{
				"cap1": runParityWorkload(t, cfg,
					Options{MailboxCapacity: 1, MailboxPolicy: flow.Block}),
				"cap2-smallbatch": runParityWorkload(t, cfg,
					Options{MailboxCapacity: 2, MailboxPolicy: flow.Block, MaxBatch: 2}),
				"cap16": runParityWorkload(t, cfg,
					Options{MailboxCapacity: 16, MailboxPolicy: flow.Block}),
				"cap8-parallel": runParityWorkload(t, cfg,
					Options{MailboxCapacity: 8, MailboxPolicy: flow.Block, Workers: 4}),
				"cap8-windowed": runParityWorkload(t, cfg,
					Options{MailboxCapacity: 8, MailboxPolicy: flow.Block}, window),
				// A tiny Block egress window on top of a bounded mailbox:
				// the handoff queue stalls the run loop instead of losing
				// notifications, so content parity must survive the extra
				// backpressure stage too.
				"cap8-egress2-window2": runParityWorkload(t, cfg,
					Options{MailboxCapacity: 8, MailboxPolicy: flow.Block,
						EgressWriters: 2, EgressWindow: 2, EgressPolicy: flow.Block}),
			}
			for mode, got := range runs {
				assertParity(t, mode, got, want)
			}
		})
	}
}

type parityWorkload struct {
	edges   [][2]int    // tree edges (child, parent)
	subs    []paritySub // consumer subscriptions
	pubHome []int       // producer index -> home broker
	pubVals [][]int64   // producer index -> published values, in order
}

type paritySub struct {
	home     int // broker index
	producer int // the single producer this subscription listens to
	lo, hi   int64
}

func genParityWorkload(rng *rand.Rand) parityWorkload {
	var w parityWorkload
	brokers := 3 + rng.Intn(5)
	for i := 1; i < brokers; i++ {
		w.edges = append(w.edges, [2]int{i, rng.Intn(i)})
	}
	producers := 2 + rng.Intn(3)
	for p := 0; p < producers; p++ {
		w.pubHome = append(w.pubHome, rng.Intn(brokers))
		vals := make([]int64, 150+rng.Intn(100))
		for i := range vals {
			vals[i] = int64(rng.Intn(100))
		}
		w.pubVals = append(w.pubVals, vals)
	}
	subsN := 4 + rng.Intn(6)
	for s := 0; s < subsN; s++ {
		lo := int64(rng.Intn(80))
		w.subs = append(w.subs, paritySub{
			home:     rng.Intn(brokers),
			producer: rng.Intn(producers),
			lo:       lo,
			hi:       lo + 10 + int64(rng.Intn(40)),
		})
	}
	return w
}

// runParityWorkload builds the overlay, runs the workload, and returns the
// rendered delivery sequence per subscription key.
func runParityWorkload(t *testing.T, w parityWorkload, opts Options, pipeOpts ...transport.PipeOption) map[string][]string {
	t.Helper()
	brokers := make([]*Broker, 0)
	ensure := func(i int) *Broker {
		for len(brokers) <= i {
			b := New(wire.BrokerID(fmt.Sprintf("b%d", len(brokers))), opts)
			b.Start()
			t.Cleanup(b.Close)
			brokers = append(brokers, b)
		}
		return brokers[i]
	}
	ensure(0)
	links := make([]*transport.ChanLink, 0)
	for _, e := range w.edges {
		a, b := ensure(e[0]), ensure(e[1])
		la, lb := transport.Pipe(wire.BrokerHop(a.ID()), wire.BrokerHop(b.ID()), a, b, pipeOpts...)
		links = append(links, la, lb)
		if err := a.AddLink(b.ID(), la); err != nil {
			t.Fatal(err)
		}
		if err := b.AddLink(a.ID(), lb); err != nil {
			t.Fatal(err)
		}
	}
	// Windowed pipes deliver asynchronously, so each settle round must
	// also wait for the pumps to quiesce — and a hop can cost two rounds
	// (one to flush into the pump, one to process after delivery), so the
	// loop runs twice as long as the synchronous bound.
	settle := func() {
		for i := 0; i < 2*len(brokers)+2; i++ {
			for _, b := range brokers {
				b.Barrier()
			}
			for _, l := range links {
				l.WaitIdle()
			}
		}
	}

	var mu sync.Mutex
	got := make(map[string][]string)
	record := func(d wire.Deliver) {
		mu.Lock()
		defer mu.Unlock()
		key := string(d.Client) + "/" + string(d.ID)
		got[key] = append(got[key], fmt.Sprintf("seq=%d notif=%s", d.Item.Seq, d.Item.Notif.String()))
	}

	for s, sub := range w.subs {
		client := wire.ClientID(fmt.Sprintf("c%d", s))
		if err := brokers[sub.home].AttachClient(client, record); err != nil {
			t.Fatal(err)
		}
		f := filter.MustNew(
			filter.EQ("prod", message.String(fmt.Sprintf("p%d", sub.producer))),
			filter.Range("val", message.Int(sub.lo), message.Int(sub.hi)),
		)
		err := brokers[sub.home].Subscribe(wire.Subscription{
			Filter: f, Client: client, ID: "s",
		})
		if err != nil {
			t.Fatal(err)
		}
		// Ensure every subscription key exists even with zero deliveries.
		got[string(client)+"/s"] = nil
	}
	settle()

	// Producers publish concurrently so the batched run actually builds
	// multi-message batches.
	var wg sync.WaitGroup
	for p, vals := range w.pubVals {
		p, vals := p, vals
		wg.Add(1)
		go func() {
			defer wg.Done()
			home := brokers[w.pubHome[p]]
			from := wire.ClientHop(wire.ClientID(fmt.Sprintf("p%d", p)))
			for i, v := range vals {
				n := message.New(map[string]message.Value{
					"prod": message.String(fmt.Sprintf("p%d", p)),
					"val":  message.Int(v),
					"i":    message.Int(int64(i)),
				})
				home.Receive(transport.Inbound{From: from, Msg: wire.NewPublish(n)})
			}
		}()
	}
	wg.Wait()
	settle()

	mu.Lock()
	defer mu.Unlock()
	return got
}
