package broker

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/filter"
	"repro/internal/flow"
	"repro/internal/message"
	"repro/internal/transport"
	"repro/internal/wire"
)

// TestBackpressureStalledLeaf is the adversarial flow-control scenario: a
// hub fans out to several leaves, every queue in the path is bounded, and
// one leaf stops consuming mid-stream. The healthy leaves sit behind
// lossless Block windows, so they must receive every notification; the
// stalled leaf sits behind a DropOldest window, so the hub must never
// block on it — its queue depth stays bounded by the window capacity and
// every overflowed notification is visible in the hub's flow stats. Once
// the leaf resumes, delivered plus dropped must account for exactly the
// published count.
func TestBackpressureStalledLeaf(t *testing.T) {
	const (
		leaves = 4
		pubN   = 1500
		window = 64
	)

	hub := New("hub", Options{MailboxCapacity: 64, MailboxPolicy: flow.Block, MaxBatch: 16})
	hub.Start()
	t.Cleanup(hub.Close)

	gate := make(chan struct{})
	var releaseOnce sync.Once
	release := func() { releaseOnce.Do(func() { close(gate) }) }

	var delivered [leaves]atomic.Int64
	leafBrokers := make([]*Broker, leaves)
	links := make([]*transport.ChanLink, 0, 2*leaves)
	for i := 0; i < leaves; i++ {
		i := i
		leaf := New(wire.BrokerID(fmt.Sprintf("l%d", i)), Options{
			MailboxCapacity: 64, MailboxPolicy: flow.Block,
		})
		leaf.Start()
		t.Cleanup(leaf.Close)
		leafBrokers[i] = leaf

		w := flow.Options{Capacity: window, Policy: flow.Block}
		if i == 0 {
			// The adversarial link: overflow sheds here instead of
			// wedging the hub.
			w.Policy = flow.DropOldest
		}
		lh, ll := transport.Pipe(
			wire.BrokerHop(hub.ID()), wire.BrokerHop(leaf.ID()),
			hub, leaf, transport.WithWindow(w))
		links = append(links, lh, ll)
		if err := hub.AddLink(leaf.ID(), lh); err != nil {
			t.Fatal(err)
		}
		if err := leaf.AddLink(hub.ID(), ll); err != nil {
			t.Fatal(err)
		}

		deliver := func(wire.Deliver) { delivered[i].Add(1) }
		if i == 0 {
			deliver = func(wire.Deliver) {
				<-gate
				delivered[i].Add(1)
			}
		}
		client := wire.ClientID(fmt.Sprintf("c%d", i))
		if err := leaf.AttachClient(client, deliver); err != nil {
			t.Fatal(err)
		}
		err := leaf.Subscribe(wire.Subscription{
			Filter: filter.MustNew(filter.Range("val", message.Int(0), message.Int(1<<30))),
			Client: client, ID: "s",
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	// Release the gate before the broker cleanups run (LIFO), or a failed
	// assertion would leave the stalled run loop parked and Close hanging.
	t.Cleanup(release)

	// Let the subscriptions propagate to the hub before publishing: the
	// windowed pipes deliver through pumps, so each barrier round also
	// waits for the links to quiesce.
	for i := 0; i < 4; i++ {
		hub.Barrier()
		for _, leaf := range leafBrokers {
			leaf.Barrier()
		}
		for _, l := range links {
			l.WaitIdle()
		}
	}

	go func() {
		from := wire.ClientHop("p")
		for i := 0; i < pubN; i++ {
			n := message.New(map[string]message.Value{
				"val": message.Int(int64(i)),
			})
			hub.Receive(transport.Inbound{From: from, Msg: wire.NewPublish(n)})
		}
	}()

	waitFor := func(desc string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				counts := make([]int64, leaves)
				for i := range counts {
					counts[i] = delivered[i].Load()
				}
				t.Fatalf("timeout waiting for %s\ndelivered=%v\nhub stats=%+v", desc, counts, hub.Stats())
			}
			time.Sleep(time.Millisecond)
		}
	}

	// The healthy leaves must see everything despite the stalled sibling.
	waitFor("healthy leaves to receive all publishes", func() bool {
		for i := 1; i < leaves; i++ {
			if delivered[i].Load() < pubN {
				return false
			}
		}
		return true
	})

	mid := hub.Stats()
	stalledID := leafBrokers[0].ID()
	if got := mid.LinkFlow[stalledID].DroppedOldest; got == 0 {
		t.Fatalf("stalled link dropped nothing; want DropOldest overflow (flow %+v)", mid.LinkFlow[stalledID])
	}
	if hw := mid.LinkQueueHighWater; hw > window+2 {
		t.Fatalf("link queue high water %d exceeds window %d", hw, window)
	}
	for i := 1; i < leaves; i++ {
		fs := mid.LinkFlow[leafBrokers[i].ID()]
		if fs.DroppedOldest != 0 || fs.ShedNewest != 0 {
			t.Fatalf("healthy leaf %d lost messages: %+v", i, fs)
		}
	}
	if mid.LinkDroppedOldest != mid.LinkFlow[stalledID].DroppedOldest {
		t.Fatalf("aggregate drops %d != stalled link drops %d",
			mid.LinkDroppedOldest, mid.LinkFlow[stalledID].DroppedOldest)
	}

	// Resume the leaf: every publish must now be accounted for as either
	// delivered or dropped at the stalled link — nothing lost elsewhere.
	release()
	waitFor("stalled leaf to drain", func() bool {
		s := hub.Stats()
		return delivered[0].Load()+int64(s.LinkFlow[stalledID].DroppedOldest) == pubN
	})

	final := hub.Stats()
	if final.Mailbox.HighWater > 64+2 {
		t.Fatalf("hub mailbox high water %d exceeds capacity", final.Mailbox.HighWater)
	}
	leafStats := leafBrokers[0].Stats()
	if leafStats.Mailbox.HighWater > 64+2 {
		t.Fatalf("stalled leaf mailbox high water %d exceeds capacity", leafStats.Mailbox.HighWater)
	}
	if delivered[0].Load() == 0 {
		t.Fatal("stalled leaf delivered nothing after resuming")
	}
	t.Logf("stalled leaf: delivered=%d dropped=%d highWater=%d creditStalls=%d",
		delivered[0].Load(), final.LinkFlow[stalledID].DroppedOldest,
		final.LinkQueueHighWater, final.LinkCreditStalls)
}
