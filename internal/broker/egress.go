package broker

import (
	"log"
	"sync"
	"time"

	"repro/internal/flow"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Parallel egress: when Options.EgressWriters > 0, flushOutbox stops
// performing link writes (and their syscalls) inline on the run goroutine
// and instead hands each neighbor's burst to a sharded writer pool. Every
// link is pinned to one shard by hashing its hop identity (the same
// FNV-1a sharding the matching pool uses), each shard is one bounded
// flow.Queue drained by one writer goroutine, and the writer performs the
// SendBatch/Flush calls — so a hub's links are written concurrently and a
// slow socket delays only the links sharing its shard, not the run loop.
//
// Per-link FIFO holds by construction: the pinning is a pure function of
// the hop (a link never migrates between shards), the run goroutine is
// the only producer (every egress push happens on it), the shard queue is
// FIFO, and each shard has exactly one drainer — so the per-link send
// order equals the run goroutine's handoff order, which is exactly the
// order the inline path writes (see DESIGN.md, "Parallel egress").
//
// Control messages that rely on "outbox flushed before a control closure
// runs" (the exec/Barrier contract behind AddLink/RemoveLink/relocation)
// are preserved by a drain barrier: before a closure executes, the run
// goroutine pushes a Control-class barrier op into every shard it has
// written to since the last barrier and waits until the writers have
// passed it — everything handed off earlier is then on the wire (or in
// the link's own send window, exactly as deep as the inline path pushes).

// egressOp is one unit of writer-shard work: a message bound for a link,
// or — when barrier is non-nil — a drain marker the writer acknowledges.
type egressOp struct {
	link transport.Link
	hop  wire.Hop
	msg  wire.Message
	// barrier, when non-nil, marks a drain barrier: the writer calls
	// Done() when every earlier op of the shard has been written.
	barrier *sync.WaitGroup
}

// egressClass classifies ops for the shard queue's admission control:
// barriers are Control (never shed, admitted over capacity, so a barrier
// push cannot deadlock against a full window), messages keep their wire
// class — publishes shed per policy, deliveries and control traffic are
// lossless.
func egressClass(op egressOp) flow.Class {
	if op.barrier != nil {
		return flow.Control
	}
	return op.msg.Type.FlowClass()
}

// egressPool is the sharded writer pool. Created at New when
// Options.EgressWriters > 0; goroutines run from Start until the run
// goroutine exits.
type egressPool struct {
	b      *Broker
	shards []*flow.Queue[egressOp]
	// dirty marks shards written to since the last drain barrier, so a
	// barrier skips idle shards. Owned by the run goroutine.
	dirty []bool
	// wg is the reusable drain-barrier waiter. Only the run goroutine
	// Adds and Waits; writers Done.
	wg   sync.WaitGroup
	done sync.WaitGroup // writer goroutine exits
}

func newEgressPool(b *Broker, writers int, window flow.Options) *egressPool {
	e := &egressPool{
		b:      b,
		shards: make([]*flow.Queue[egressOp], writers),
		dirty:  make([]bool, writers),
	}
	for i := range e.shards {
		q := flow.NewQueue[egressOp](window, egressClass)
		// Eviction can only hit Data ops (barriers are Control), but if
		// that invariant ever broke, losing a barrier acknowledgment
		// would wedge the run loop — fail safe and release it.
		q.OnEvict(func(op egressOp) {
			if op.barrier != nil {
				op.barrier.Done()
			}
		})
		e.shards[i] = q
	}
	return e
}

// start launches one writer goroutine per shard.
func (e *egressPool) start() {
	for _, q := range e.shards {
		e.done.Add(1)
		go e.writer(q)
	}
}

// stop closes the shard queues and waits for the writers to drain them
// and exit. Called by the run goroutine on its way out, before it closes
// the links, so every accepted op still reaches the wire.
func (e *egressPool) stop() {
	for _, q := range e.shards {
		q.Close()
	}
	e.done.Wait()
}

// shardOf returns the writer shard a hop is pinned to. A pure function
// of the hop identity: the pinning never changes for the life of the
// broker, which is what makes per-link FIFO a construction property.
func (e *egressPool) shardOf(hop wire.Hop) int {
	return hopShard(hop, len(e.shards))
}

// handoff transfers one neighbor's outbox burst to its shard. The queue
// copies the ops under its lock, so the caller's msgs slice is
// immediately reusable. Run goroutine only. A Block-policy window may
// stall here when the shard is full — that is the backpressure contract:
// the run loop pauses for exactly the producers of this shard's links.
func (e *egressPool) handoff(hop wire.Hop, l transport.Link, msgs []wire.Message) {
	sh := e.shardOf(hop)
	e.dirty[sh] = true
	// ErrClosed can only follow run-loop exit; ops are dropped like
	// writes to a closed link.
	_ = e.shards[sh].PushBurst(len(msgs), func(i int) egressOp {
		return egressOp{link: l, hop: hop, msg: msgs[i]}
	})
}

// handoffOne transfers a single message (remote-client deliveries, which
// bypass the outbox). Run goroutine only.
func (e *egressPool) handoffOne(hop wire.Hop, l transport.Link, m wire.Message) {
	sh := e.shardOf(hop)
	e.dirty[sh] = true
	_ = e.shards[sh].Push(egressOp{link: l, hop: hop, msg: m})
}

// drainBarrier blocks until every op handed off so far has been written.
// Run goroutine only; called before each control closure so the
// exec/Barrier contract ("earlier output is on the wire before the
// closure observes the broker") survives the asynchronous handoff.
func (e *egressPool) drainBarrier() {
	for sh, q := range e.shards {
		if !e.dirty[sh] {
			continue
		}
		e.dirty[sh] = false
		e.wg.Add(1)
		if q.Push(egressOp{barrier: &e.wg}) != nil {
			e.wg.Done() // closed: the writer has already drained out
		}
	}
	e.wg.Wait()
}

// writer drains one shard until its queue closes: barriers are
// acknowledged in place, and maximal runs of consecutive ops for the
// same link are regrouped into one SendBatch burst — the handoff is
// per-message so flow classes apply individually, but the wire sees the
// same per-link bursts the inline flushOutbox wrote.
func (e *egressPool) writer(q *flow.Queue[egressOp]) {
	defer e.done.Done()
	var burst []wire.Message
	for {
		batch, ok := q.PopBatch()
		if !ok {
			return
		}
		for i := 0; i < len(batch); {
			if batch[i].barrier != nil {
				batch[i].barrier.Done()
				i++
				continue
			}
			j := i + 1
			for j < len(batch) && batch[j].barrier == nil && batch[j].link == batch[i].link {
				j++
			}
			burst = burst[:0]
			for k := i; k < j; k++ {
				burst = append(burst, batch[k].msg)
			}
			e.flush(batch[i].hop, batch[i].link, burst)
			i = j
		}
		q.Recycle(batch)
		if cap(burst) > flow.MaxRecycledCap {
			burst = nil
		}
	}
}

// flush writes one regrouped burst to its link, timing the call into the
// broker's egress flush-latency distribution and recording any error.
// Runs on a writer goroutine; links are safe for concurrent use from one
// writer per link (the shard pinning guarantees exactly that).
func (e *egressPool) flush(hop wire.Hop, l transport.Link, msgs []wire.Message) {
	if e.b.killed.Load() {
		return // crash-stop: nothing reaches the wire
	}
	start := time.Now()
	err := sendBurst(l, msgs)
	e.b.egressFlushLat.Observe(uint64(time.Since(start)))
	if err != nil {
		e.b.sendErrs.record(e.b.id, hop, err)
	}
}

// shardStats snapshots every shard queue's flow counters.
func (e *egressPool) shardStats() []flow.Stats {
	out := make([]flow.Stats, len(e.shards))
	for i, q := range e.shards {
		out[i] = q.Stats()
	}
	return out
}

// sendBurst writes one per-link burst: batching transports get the whole
// slice, plain links a Send loop plus Flush. The first error is returned
// (later messages are still attempted — a transport that failed once
// fails them all cheaply). Shared by the inline flushOutbox path and the
// egress writers; safe from any goroutine, the links synchronize
// internally.
func sendBurst(l transport.Link, msgs []wire.Message) error {
	if bs, ok := l.(transport.BatchSender); ok {
		return bs.SendBatch(msgs)
	}
	var err error
	for _, m := range msgs {
		if e := l.Send(m); e != nil && err == nil {
			err = e
		}
	}
	if fl, ok := l.(transport.Flusher); ok {
		if e := fl.Flush(); e != nil && err == nil {
			err = e
		}
	}
	return err
}

// linkErrTracker counts failed link writes per hop and logs the first
// failure of each link transition, so a dying peer is visible without a
// log line per lost message. Written from the run goroutine (inline
// flushes) and the egress writers, hence the lock; reads go through
// Stats.
type linkErrTracker struct {
	mu     sync.Mutex
	counts map[wire.Hop]uint64
	logged map[wire.Hop]bool
}

// record counts one failed write and logs the link's first failure since
// the last reset.
func (t *linkErrTracker) record(broker wire.BrokerID, hop wire.Hop, err error) {
	t.mu.Lock()
	if t.counts == nil {
		t.counts = make(map[wire.Hop]uint64)
		t.logged = make(map[wire.Hop]bool)
	}
	t.counts[hop]++
	first := !t.logged[hop]
	t.logged[hop] = true
	n := t.counts[hop]
	t.mu.Unlock()
	if first {
		log.Printf("broker %s: send to %s failed: %v (error %d; further errors on this link are counted silently)",
			broker, hop, err, n)
	}
}

// reset re-arms the log-once latch for a hop — AddLink/RemoveLink call it
// so a replacement link's first failure is logged again. The error count
// is cumulative across link generations.
func (t *linkErrTracker) reset(hop wire.Hop) {
	t.mu.Lock()
	delete(t.logged, hop)
	t.mu.Unlock()
}

// snapshot copies the per-hop error counts (nil when clean).
func (t *linkErrTracker) snapshot() (m map[wire.Hop]uint64, total uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.counts) == 0 {
		return nil, 0
	}
	m = make(map[wire.Hop]uint64, len(t.counts))
	for h, n := range t.counts {
		m[h] = n
		total += n
	}
	return m, total
}
