package broker

import (
	"reflect"
	"testing"

	"repro/internal/filter"
	"repro/internal/message"
	"repro/internal/wire"
)

// Tests for the bounded relocation buffers (Options.RelocBufferCap), the
// fetched-map garbage collection, and the deterministic expiry/replay
// interleavings. These drive expireRelocation/completeRelocation directly
// on the broker goroutine via exec, so every ordering is explicit — no
// timers, no sleeps.

func fetchedLen(t *testing.T, b *Broker) int {
	t.Helper()
	var n int
	if err := b.exec(func() { n = len(b.fetched) }); err != nil {
		t.Fatal(err)
	}
	return n
}

func pendingLen(t *testing.T, b *Broker) int {
	t.Helper()
	var n int
	if err := b.exec(func() { n = len(b.pending) }); err != nil {
		t.Fatal(err)
	}
	return n
}

// TestRelocBufferCapBoundsPendingBuffer pins the pending-buffer bound: a
// relocation waiting for its replay parks live notifications, and the cap
// drops the oldest beyond RelocBufferCap — independently of the (larger)
// MaxBufferPerSub — counting each eviction.
func TestRelocBufferCapBoundsPendingBuffer(t *testing.T) {
	h := newHarness(t, Options{MaxBufferPerSub: 100, RelocBufferCap: 4, RelocTimeout: -1},
		[][2]wire.BrokerID{{"b1", "b2"}})
	b1 := h.brokers["b1"]
	var rec recorder
	if err := b1.AttachClient("c", rec.deliver); err != nil {
		t.Fatal(err)
	}
	if err := b1.Subscribe(wire.Subscription{
		Filter: filter.MustParse(`k = "v"`), Client: "c", ID: "s",
		Relocate: true, RelocEpoch: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if err := b1.AttachClient("p", nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := b1.Publish("p", message.New(map[string]message.Value{
			"k": message.String("v"),
		})); err != nil {
			t.Fatal(err)
		}
	}
	h.settle()
	s := b1.Stats()
	if s.RelocationPendingDrops != 6 || s.RelocBufferDrops != 6 {
		t.Errorf("drops = %d pending / %d total, want 6 / 6",
			s.RelocationPendingDrops, s.RelocBufferDrops)
	}
	if s.RelocationsStarted != 1 || s.RelocationsCompleted != 0 {
		t.Errorf("lifecycle = %d started / %d completed, want 1 / 0",
			s.RelocationsStarted, s.RelocationsCompleted)
	}
	// A (late, empty) replay completes the relocation: only the 4 newest
	// parked notifications survive the cap and deliver, with fresh seqs.
	if err := b1.exec(func() {
		b1.completeRelocation(wire.Replay{Client: "c", ID: "s", NextSeq: 1})
	}); err != nil {
		t.Fatal(err)
	}
	if got, want := rec.seqs(), []uint64{1, 2, 3, 4}; !reflect.DeepEqual(got, want) {
		t.Errorf("delivered seqs = %v, want %v", got, want)
	}
	if s := b1.Stats(); s.RelocationsCompleted != 1 {
		t.Errorf("RelocationsCompleted = %d, want 1", s.RelocationsCompleted)
	}
}

// TestRelocBufferCapBoundsReplayParking pins the completion-side bound:
// replay items arriving for a client that has disconnected again are
// parked drop-oldest under the same cap, and the survivors drain on the
// next reattach.
func TestRelocBufferCapBoundsReplayParking(t *testing.T) {
	h := newHarness(t, Options{RelocBufferCap: 4, RelocTimeout: -1},
		[][2]wire.BrokerID{{"b1", "b2"}})
	b1 := h.brokers["b1"]
	var rec recorder
	if err := b1.AttachClient("c", rec.deliver); err != nil {
		t.Fatal(err)
	}
	if err := b1.Subscribe(wire.Subscription{
		Filter: filter.MustParse(`k = "v"`), Client: "c", ID: "s",
		Relocate: true, RelocEpoch: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if err := b1.DetachClient("c"); err != nil {
		t.Fatal(err)
	}
	replay := wire.Replay{Client: "c", ID: "s", NextSeq: 11}
	for seq := uint64(1); seq <= 10; seq++ {
		replay.Items = append(replay.Items, wire.SeqNotification{
			Seq:   seq,
			Notif: message.New(map[string]message.Value{"k": message.String("v")}),
		})
	}
	if err := b1.exec(func() { b1.completeRelocation(replay) }); err != nil {
		t.Fatal(err)
	}
	if s := b1.Stats(); s.RelocBufferDrops != 6 {
		t.Errorf("RelocBufferDrops = %d, want 6", s.RelocBufferDrops)
	}
	// Reattaching at the same broker takes the local fast path and drains
	// the surviving tail of the buffer.
	if err := b1.AttachClient("c", rec.deliver); err != nil {
		t.Fatal(err)
	}
	if err := b1.Subscribe(wire.Subscription{
		Filter: filter.MustParse(`k = "v"`), Client: "c", ID: "s",
		Relocate: true, LastSeq: 0, RelocEpoch: 2,
	}); err != nil {
		t.Fatal(err)
	}
	h.settle()
	if got, want := rec.seqs(), []uint64{7, 8, 9, 10}; !reflect.DeepEqual(got, want) {
		t.Errorf("drained seqs = %v, want %v (newest survive drop-oldest)", got, want)
	}
}

// TestFetchedMapGC relocates a client twice along the chain and checks the
// fetch-dedup map returns to its pre-relocation size at each new border
// broker once the replay completes, and stays drained after unsubscribe —
// a roaming client must not grow broker state per relocation.
func TestFetchedMapGC(t *testing.T) {
	h, rec := relocHarness(t)
	if got := fetchedLen(t, h.brokers["b2"]); got != 0 {
		t.Fatalf("pre-relocation fetched size = %d, want 0", got)
	}
	// Hop 1: b4 -> b2, missing one notification.
	if err := h.brokers["b4"].DetachClient("C"); err != nil {
		t.Fatal(err)
	}
	pubV(t, h, 1)
	h.settle()
	if err := h.brokers["b2"].AttachClient("C", rec.deliver); err != nil {
		t.Fatal(err)
	}
	if err := h.brokers["b2"].Subscribe(wire.Subscription{
		Filter: filter.MustParse(`k = "v"`), Client: "C", ID: "s",
		Relocate: true, LastSeq: 0, RelocEpoch: 1,
	}); err != nil {
		t.Fatal(err)
	}
	h.settle()
	if rec.len() != 1 {
		t.Fatalf("first relocation delivered %d, want 1", rec.len())
	}
	if got := fetchedLen(t, h.brokers["b2"]); got != 0 {
		t.Errorf("b2 fetched size after completion = %d, want 0", got)
	}
	s2 := h.brokers["b2"].Stats()
	if s2.RelocationsStarted != 1 || s2.RelocationsCompleted != 1 || s2.RelocationsExpired != 0 {
		t.Errorf("b2 lifecycle = %d/%d/%d, want 1/1/0",
			s2.RelocationsStarted, s2.RelocationsCompleted, s2.RelocationsExpired)
	}
	// The old border broker observed one replay batch of one item.
	s4 := h.brokers["b4"].Stats()
	if s4.ReplayBatches != 1 || s4.ReplayMaxItems != 1 {
		t.Errorf("b4 replay distribution = %d batches / max %d, want 1 / 1",
			s4.ReplayBatches, s4.ReplayMaxItems)
	}

	// Hop 2: b2 -> b3, again missing one.
	if err := h.brokers["b2"].DetachClient("C"); err != nil {
		t.Fatal(err)
	}
	pubV(t, h, 2)
	h.settle()
	if err := h.brokers["b3"].AttachClient("C", rec.deliver); err != nil {
		t.Fatal(err)
	}
	if err := h.brokers["b3"].Subscribe(wire.Subscription{
		Filter: filter.MustParse(`k = "v"`), Client: "C", ID: "s",
		Relocate: true, LastSeq: 1, RelocEpoch: 2,
	}); err != nil {
		t.Fatal(err)
	}
	h.settle()
	if got, want := rec.seqs(), []uint64{1, 2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("seqs after second relocation = %v, want %v", got, want)
	}
	if got := fetchedLen(t, h.brokers["b3"]); got != 0 {
		t.Errorf("b3 fetched size after completion = %d, want 0", got)
	}
	// Unsubscribing releases the remaining relocation state at the border.
	if err := h.brokers["b3"].Unsubscribe("C", "s"); err != nil {
		t.Fatal(err)
	}
	h.settle()
	if got := fetchedLen(t, h.brokers["b3"]); got != 0 {
		t.Errorf("b3 fetched size after unsubscribe = %d, want 0", got)
	}
	if got := pendingLen(t, h.brokers["b3"]); got != 0 {
		t.Errorf("b3 pending size after unsubscribe = %d, want 0", got)
	}
}

// TestStaleFetchAfterCompletionDropped pins the live-border guard in
// handleFetch: once a relocation completes, its fetch-dedup entry is
// garbage collected, so a same-epoch straggler fetch (possible when the
// new subscription met the old path at several junctions) must be dropped
// by the connected-client epoch check instead — flipping the live client
// entry away would sever the subscriber.
func TestStaleFetchAfterCompletionDropped(t *testing.T) {
	h, rec := relocHarness(t)
	if err := h.brokers["b4"].DetachClient("C"); err != nil {
		t.Fatal(err)
	}
	pubV(t, h, 1)
	h.settle()
	if err := h.brokers["b2"].AttachClient("C", rec.deliver); err != nil {
		t.Fatal(err)
	}
	if err := h.brokers["b2"].Subscribe(wire.Subscription{
		Filter: filter.MustParse(`k = "v"`), Client: "C", ID: "s",
		Relocate: true, LastSeq: 0, RelocEpoch: 1,
	}); err != nil {
		t.Fatal(err)
	}
	h.settle()
	if rec.len() != 1 {
		t.Fatalf("relocation delivered %d, want 1", rec.len())
	}
	if got := fetchedLen(t, h.brokers["b2"]); got != 0 {
		t.Fatalf("fetched not GCed, straggler test would be vacuous")
	}
	b2 := h.brokers["b2"]
	before, _ := b2.TableSizes()
	b2.Receive(inbound{
		From: wire.BrokerHop("b3"),
		Msg: wire.NewFetch(wire.Fetch{
			Client: "C", ID: "s",
			Filter: filter.MustParse(`k = "v"`), LastSeq: 0, Junction: "b3", Epoch: 1,
		}),
	})
	h.settle()
	after, _ := b2.TableSizes()
	if before != after {
		t.Errorf("straggler fetch mutated b2: %d -> %d", before, after)
	}
	pubV(t, h, 2)
	h.settle()
	if got, want := rec.seqs(), []uint64{1, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("seqs after straggler fetch = %v, want %v", got, want)
	}
}

// TestExpireThenLateReplay drives the expiry/replay race deterministically:
// the timeout fires first (flushing the pending buffer as live traffic),
// then the replay lands late. Nothing may be lost or duplicated — the
// flushed notifications keep their fresh seqs, the late replay items
// deliver as replayed, and live numbering continues from the counterpart's.
func TestExpireThenLateReplay(t *testing.T) {
	h := newHarness(t, Options{RelocTimeout: -1}, [][2]wire.BrokerID{{"b1", "b2"}})
	b1 := h.brokers["b1"]
	var rec recorder
	if err := b1.AttachClient("c", rec.deliver); err != nil {
		t.Fatal(err)
	}
	if err := b1.Subscribe(wire.Subscription{
		Filter: filter.MustParse(`k = "v"`), Client: "c", ID: "s",
		Relocate: true, RelocEpoch: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if err := b1.AttachClient("p", nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := b1.Publish("p", message.New(map[string]message.Value{
			"k": message.String("v"),
		})); err != nil {
			t.Fatal(err)
		}
	}
	h.settle()
	if rec.len() != 0 {
		t.Fatalf("deliveries before expiry = %d, want 0 (parked)", rec.len())
	}
	if err := b1.exec(func() { b1.expireRelocation("c/s", 1) }); err != nil {
		t.Fatal(err)
	}
	if got, want := rec.seqs(), []uint64{1, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("flushed seqs = %v, want %v", got, want)
	}
	if s := b1.Stats(); s.RelocationsExpired != 1 {
		t.Errorf("RelocationsExpired = %d, want 1", s.RelocationsExpired)
	}
	// The replay arrives after the expiry already gave up on it.
	late := wire.Replay{Client: "c", ID: "s", NextSeq: 10}
	for _, seq := range []uint64{8, 9} {
		late.Items = append(late.Items, wire.SeqNotification{
			Seq:   seq,
			Notif: message.New(map[string]message.Value{"k": message.String("v")}),
		})
	}
	if err := b1.exec(func() { b1.completeRelocation(late) }); err != nil {
		t.Fatal(err)
	}
	// Live traffic continues from the counterpart's numbering.
	if err := b1.Publish("p", message.New(map[string]message.Value{
		"k": message.String("v"),
	})); err != nil {
		t.Fatal(err)
	}
	h.settle()
	if got, want := rec.seqs(), []uint64{1, 2, 3, 8, 9, 10}; !reflect.DeepEqual(got, want) {
		t.Errorf("final seqs = %v, want %v", got, want)
	}
	var replayed []bool
	for _, d := range rec.seqsDetail() {
		replayed = append(replayed, d.Replayed)
	}
	if want := []bool{false, false, false, true, true, false}; !reflect.DeepEqual(replayed, want) {
		t.Errorf("replayed flags = %v, want %v", replayed, want)
	}
}

// TestStaleEpochExpiryIsNoop pins the inverse race: a timer from an
// earlier relocation epoch fires while a newer epoch's relocation is
// pending. The stale expiry must not flush the newer pending buffer —
// that would hand out fresh seqs to notifications the imminent replay
// still orders — and the newer relocation must then complete normally.
func TestStaleEpochExpiryIsNoop(t *testing.T) {
	h := newHarness(t, Options{RelocTimeout: -1}, [][2]wire.BrokerID{{"b1", "b2"}})
	b1 := h.brokers["b1"]
	var rec recorder
	if err := b1.AttachClient("c", rec.deliver); err != nil {
		t.Fatal(err)
	}
	if err := b1.Subscribe(wire.Subscription{
		Filter: filter.MustParse(`k = "v"`), Client: "c", ID: "s",
		Relocate: true, RelocEpoch: 2,
	}); err != nil {
		t.Fatal(err)
	}
	if err := b1.AttachClient("p", nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := b1.Publish("p", message.New(map[string]message.Value{
			"k": message.String("v"),
		})); err != nil {
			t.Fatal(err)
		}
	}
	h.settle()
	// Epoch-1 timer fires against the epoch-2 pending entry: no-op.
	if err := b1.exec(func() { b1.expireRelocation("c/s", 1) }); err != nil {
		t.Fatal(err)
	}
	if rec.len() != 0 {
		t.Fatalf("stale expiry flushed %d notifications, want 0", rec.len())
	}
	if s := b1.Stats(); s.RelocationsExpired != 0 {
		t.Errorf("RelocationsExpired = %d, want 0", s.RelocationsExpired)
	}
	// The epoch-2 replay completes as if nothing happened.
	if err := b1.exec(func() {
		b1.completeRelocation(wire.Replay{Client: "c", ID: "s", NextSeq: 1})
	}); err != nil {
		t.Fatal(err)
	}
	if got, want := rec.seqs(), []uint64{1, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("seqs after completion = %v, want %v", got, want)
	}
	if s := b1.Stats(); s.RelocationsCompleted != 1 {
		t.Errorf("RelocationsCompleted = %d, want 1", s.RelocationsCompleted)
	}
}
