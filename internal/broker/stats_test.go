package broker

import (
	"testing"

	"repro/internal/filter"
	"repro/internal/message"
	"repro/internal/wire"
)

func TestBrokerStats(t *testing.T) {
	h := newHarness(t, Options{}, [][2]wire.BrokerID{{"b1", "b2"}})
	b1, b2 := h.brokers["b1"], h.brokers["b2"]
	var rec recorder
	if err := b1.AttachClient("c", rec.deliver); err != nil {
		t.Fatal(err)
	}
	if err := b1.Subscribe(wire.Subscription{
		Filter: filter.MustParse(`k = "v"`), Client: "c", ID: "s",
	}); err != nil {
		t.Fatal(err)
	}
	h.settle()
	if err := b2.AttachClient("p", nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := b2.Publish("p", message.New(map[string]message.Value{
			"k": message.String("v"),
		})); err != nil {
			t.Fatal(err)
		}
	}
	h.settle()

	s2 := b2.Stats()
	if s2.SubEntries != 1 {
		t.Errorf("b2 SubEntries = %d, want 1", s2.SubEntries)
	}
	if s2.SubIndex.Entries != 1 || s2.SubIndex.Attrs != 1 || s2.SubIndex.Postings != 1 {
		t.Errorf("b2 SubIndex = %+v, want 1 entry/attr/posting", s2.SubIndex)
	}
	if s2.Processed[wire.TypeSubscribe] != 1 {
		t.Errorf("b2 processed %d subscribes, want 1", s2.Processed[wire.TypeSubscribe])
	}
	s1 := b1.Stats()
	if s1.Processed[wire.TypePublish] != 3 {
		t.Errorf("b1 processed %d publishes, want 3", s1.Processed[wire.TypePublish])
	}
	if s1.MailboxDepth != 0 {
		t.Errorf("b1 mailbox depth = %d after settle", s1.MailboxDepth)
	}
	// The snapshot must be a copy.
	s1.Processed[wire.TypePublish] = 999
	if b1.Stats().Processed[wire.TypePublish] == 999 {
		t.Error("Stats aliases internal state")
	}

	// Batch-depth observability: the loop has drained batches, and every
	// batch holds at least one task.
	if s1.BatchesProcessed == 0 {
		t.Error("BatchesProcessed = 0 after traffic")
	}
	if s1.MaxBatchSize < 1 {
		t.Errorf("MaxBatchSize = %d, want >= 1", s1.MaxBatchSize)
	}
	if s1.MeanBatchSize <= 0 {
		t.Errorf("MeanBatchSize = %v, want > 0", s1.MeanBatchSize)
	}
}

// TestStatsRelocationPendingDrops checks that notifications dropped from a
// relocation-pending buffer (MaxBufferPerSub exceeded while the replay is
// outstanding) are surfaced in Stats, mirroring clientSub overflow.
func TestStatsRelocationPendingDrops(t *testing.T) {
	h := newHarness(t, Options{MaxBufferPerSub: 4}, [][2]wire.BrokerID{{"b1", "b2"}})
	b1 := h.brokers["b1"]
	var rec recorder
	if err := b1.AttachClient("c", rec.deliver); err != nil {
		t.Fatal(err)
	}
	// A relocation re-subscription with no old path parks deliveries in
	// the pending buffer until a replay arrives (which never does here).
	if err := b1.Subscribe(wire.Subscription{
		Filter: filter.MustParse(`k = "v"`), Client: "c", ID: "s",
		Relocate: true, RelocEpoch: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if err := b1.AttachClient("p", nil); err != nil {
		t.Fatal(err)
	}
	const published = 10
	for i := 0; i < published; i++ {
		if err := b1.Publish("p", message.New(map[string]message.Value{
			"k": message.String("v"),
		})); err != nil {
			t.Fatal(err)
		}
	}
	h.settle()
	s := b1.Stats()
	want := uint64(published - 4)
	if s.RelocationPendingDrops != want {
		t.Errorf("RelocationPendingDrops = %d, want %d", s.RelocationPendingDrops, want)
	}
	if got := rec.len(); got != 0 {
		t.Errorf("deliveries while relocation pending = %d, want 0", got)
	}
}
