package broker

import (
	"net"
	"testing"
	"time"

	"repro/internal/filter"
	"repro/internal/message"
	"repro/internal/transport"
	"repro/internal/wire"
)

// TestRemoteClientOverTCP drives a full remote-client session against a
// broker over a real TCP connection: advertise, subscribe, publish,
// deliver, unsubscribe.
func TestRemoteClientOverTCP(t *testing.T) {
	b := New("b1", Options{})
	b.Start()
	t.Cleanup(b.Close)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			link, err := transport.AcceptTCP(conn, "b1", b)
			if err != nil {
				continue
			}
			if link.Peer().IsClient() {
				_ = b.AttachRemoteClient(link.Peer().Client, link)
			}
		}
	}()

	// Consumer connects over TCP.
	deliveries := make(chan wire.Deliver, 16)
	consumerLink, err := transport.DialTCPClient(ln.Addr().String(), "alice",
		transport.ReceiverFunc(func(in transport.Inbound) {
			if in.Msg.Type == wire.TypeDeliver && in.Msg.Deliver != nil {
				deliveries <- *in.Msg.Deliver
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = consumerLink.Close() })

	// Producer connects over TCP too.
	producerLink, err := transport.DialTCPClient(ln.Addr().String(), "ticker",
		transport.ReceiverFunc(func(transport.Inbound) {}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = producerLink.Close() })

	f := filter.MustParse(`sym = "ACME"`)
	if err := producerLink.Send(wire.NewAdvertise(wire.Subscription{
		Filter: f, Client: "ticker", ID: "adv",
	})); err != nil {
		t.Fatal(err)
	}
	if err := consumerLink.Send(wire.NewSubscribe(wire.Subscription{
		Filter: f, Client: "alice", ID: "sub",
	})); err != nil {
		t.Fatal(err)
	}
	waitTCP(t, func() bool {
		subs, _ := b.TableSizes()
		return subs >= 1
	})

	for i := int64(1); i <= 3; i++ {
		n := message.New(map[string]message.Value{
			"sym":   message.String("ACME"),
			"price": message.Int(i),
		})
		if err := producerLink.Send(wire.NewPublish(n)); err != nil {
			t.Fatal(err)
		}
	}
	// Off-filter notification must not be delivered.
	if err := producerLink.Send(wire.NewPublish(message.New(map[string]message.Value{
		"sym": message.String("OTHER"),
	}))); err != nil {
		t.Fatal(err)
	}

	for want := uint64(1); want <= 3; want++ {
		select {
		case d := <-deliveries:
			if d.Item.Seq != want {
				t.Fatalf("remote delivery seq %d, want %d", d.Item.Seq, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timeout waiting for delivery %d", want)
		}
	}

	// Unsubscribe stops the stream.
	if err := consumerLink.Send(wire.NewUnsubscribe(wire.Subscription{
		Client: "alice", ID: "sub",
	})); err != nil {
		t.Fatal(err)
	}
	waitTCP(t, func() bool {
		subs, _ := b.TableSizes()
		return subs == 0
	})
	if err := producerLink.Send(wire.NewPublish(message.New(map[string]message.Value{
		"sym": message.String("ACME"),
	}))); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-deliveries:
		t.Fatalf("delivery after unsubscribe: %+v", d)
	case <-time.After(100 * time.Millisecond):
	}
}
