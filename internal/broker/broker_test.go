package broker

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/filter"
	"repro/internal/location"
	"repro/internal/locfilter"
	"repro/internal/message"
	"repro/internal/routing"
	"repro/internal/transport"
	"repro/internal/wire"
)

// harness wires a set of brokers into a tree and provides test clients.
type harness struct {
	t       *testing.T
	brokers map[wire.BrokerID]*Broker
}

func newHarness(t *testing.T, opts Options, edges [][2]wire.BrokerID) *harness {
	t.Helper()
	h := &harness{t: t, brokers: make(map[wire.BrokerID]*Broker)}
	ensure := func(id wire.BrokerID) *Broker {
		if b, ok := h.brokers[id]; ok {
			return b
		}
		b := New(id, opts)
		b.Start()
		h.brokers[id] = b
		t.Cleanup(b.Close)
		return b
	}
	for _, e := range edges {
		a, b := ensure(e[0]), ensure(e[1])
		la, lb := transport.Pipe(wire.BrokerHop(e[0]), wire.BrokerHop(e[1]), a, b)
		if err := a.AddLink(e[1], la); err != nil {
			t.Fatal(err)
		}
		if err := b.AddLink(e[0], lb); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func (h *harness) settle() {
	for i := 0; i < len(h.brokers)+2; i++ {
		for _, b := range h.brokers {
			b.Barrier()
		}
	}
}

// recorder collects deliveries for one client.
type recorder struct {
	mu    sync.Mutex
	items []wire.Deliver
}

func (r *recorder) deliver(d wire.Deliver) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.items = append(r.items, d)
}

func (r *recorder) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.items)
}

func (r *recorder) seqs() []uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]uint64, len(r.items))
	for i, d := range r.items {
		out[i] = d.Item.Seq
	}
	return out
}

func n1(sym string) message.Notification {
	return message.New(map[string]message.Value{"sym": message.String(sym)})
}

func TestAttachDetachErrors(t *testing.T) {
	h := newHarness(t, Options{}, [][2]wire.BrokerID{{"b1", "b2"}})
	b := h.brokers["b1"]
	var rec recorder
	if err := b.AttachClient("c", rec.deliver); err != nil {
		t.Fatal(err)
	}
	if err := b.AttachClient("c", rec.deliver); !errors.Is(err, ErrAlreadyAttached) {
		t.Errorf("double attach = %v", err)
	}
	if err := b.DetachClient("c"); err != nil {
		t.Fatal(err)
	}
	// Re-attach after detach is allowed.
	if err := b.AttachClient("c", rec.deliver); err != nil {
		t.Errorf("re-attach after detach: %v", err)
	}
	if err := b.DetachClient("ghost"); !errors.Is(err, ErrUnknownClient) {
		t.Errorf("detach unknown = %v", err)
	}
}

func TestSubscribeErrors(t *testing.T) {
	h := newHarness(t, Options{}, [][2]wire.BrokerID{{"b1", "b2"}})
	b := h.brokers["b1"]
	if err := b.Subscribe(wire.Subscription{Client: "ghost", ID: "s"}); !errors.Is(err, ErrUnknownClient) {
		t.Errorf("subscribe unknown client = %v", err)
	}
	var rec recorder
	if err := b.AttachClient("c", rec.deliver); err != nil {
		t.Fatal(err)
	}
	sub := wire.Subscription{Filter: filter.MustParse(`sym = A`), Client: "c", ID: "s"}
	if err := b.Subscribe(sub); err != nil {
		t.Fatal(err)
	}
	if err := b.Subscribe(sub); !errors.Is(err, ErrDuplicateSub) {
		t.Errorf("duplicate subscribe = %v", err)
	}
	if err := b.Unsubscribe("c", "nope"); !errors.Is(err, ErrUnknownSub) {
		t.Errorf("unsubscribe unknown = %v", err)
	}
	if err := b.Unsubscribe("ghost", "s"); !errors.Is(err, ErrUnknownClient) {
		t.Errorf("unsubscribe unknown client = %v", err)
	}
}

func TestFloodingStrategyDelivery(t *testing.T) {
	h := newHarness(t, Options{Strategy: routing.Flooding},
		[][2]wire.BrokerID{{"b1", "b2"}, {"b2", "b3"}})
	var rec recorder
	if err := h.brokers["b1"].AttachClient("c", rec.deliver); err != nil {
		t.Fatal(err)
	}
	err := h.brokers["b1"].Subscribe(wire.Subscription{
		Filter: filter.MustParse(`sym = A`), Client: "c", ID: "s",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.brokers["b3"].AttachClient("p", nil); err != nil {
		t.Fatal(err)
	}
	// No settle needed: flooding requires no subscription propagation.
	if err := h.brokers["b3"].Publish("p", n1("A")); err != nil {
		t.Fatal(err)
	}
	if err := h.brokers["b3"].Publish("p", n1("B")); err != nil {
		t.Fatal(err)
	}
	h.settle()
	if rec.len() != 1 {
		t.Fatalf("flooding delivered %d, want 1 (client-side filtering)", rec.len())
	}
}

func TestVirtualCounterpartBuffersAndDrains(t *testing.T) {
	h := newHarness(t, Options{}, [][2]wire.BrokerID{{"b1", "b2"}})
	b := h.brokers["b1"]
	var rec recorder
	if err := b.AttachClient("c", rec.deliver); err != nil {
		t.Fatal(err)
	}
	f := filter.MustParse(`sym = A`)
	if err := b.Subscribe(wire.Subscription{Filter: f, Client: "c", ID: "s", IsMobile: true}); err != nil {
		t.Fatal(err)
	}
	if err := b.AttachClient("p", nil); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish("p", n1("A")); err != nil {
		t.Fatal(err)
	}
	h.settle()
	if rec.len() != 1 {
		t.Fatalf("live delivery missing: %d", rec.len())
	}

	// Disconnect: the virtual counterpart buffers.
	if err := b.DetachClient("c"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := b.Publish("p", n1("A")); err != nil {
			t.Fatal(err)
		}
	}
	h.settle()
	if rec.len() != 1 {
		t.Fatalf("deliveries while detached: %d", rec.len())
	}

	// Reconnect at the same broker with a relocation re-subscription: the
	// local buffer drains, continuing the numbering.
	if err := b.AttachClient("c", rec.deliver); err != nil {
		t.Fatal(err)
	}
	err := b.Subscribe(wire.Subscription{
		Filter: f, Client: "c", ID: "s", Relocate: true, LastSeq: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.settle()
	seqs := rec.seqs()
	if len(seqs) != 4 {
		t.Fatalf("after drain: %d deliveries, want 4 (%v)", len(seqs), seqs)
	}
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("gap or duplicate in %v", seqs)
		}
	}
}

func TestBufferOverflowCapDropsOldest(t *testing.T) {
	h := newHarness(t, Options{MaxBufferPerSub: 5}, [][2]wire.BrokerID{{"b1", "b2"}})
	b := h.brokers["b1"]
	var rec recorder
	if err := b.AttachClient("c", rec.deliver); err != nil {
		t.Fatal(err)
	}
	f := filter.MustParse(`sym = A`)
	if err := b.Subscribe(wire.Subscription{Filter: f, Client: "c", ID: "s"}); err != nil {
		t.Fatal(err)
	}
	if err := b.DetachClient("c"); err != nil {
		t.Fatal(err)
	}
	if err := b.AttachClient("p", nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if err := b.Publish("p", n1("A")); err != nil {
			t.Fatal(err)
		}
	}
	h.settle()
	if err := b.AttachClient("c", rec.deliver); err != nil {
		t.Fatal(err)
	}
	if err := b.Unsubscribe("c", "s"); err != nil {
		t.Fatal(err)
	}
	// The buffer was capped at 5; with drainLocalBuffer unused here we
	// only verify the broker stayed healthy and the cap held internally.
	subs, _ := b.TableSizes()
	if subs != 0 {
		t.Errorf("table not cleaned after unsubscribe: %d", subs)
	}
}

func TestAdvertisementFlushForwardsLateSubscription(t *testing.T) {
	// Subscribe first, advertise later: the mobile subscription must still
	// travel toward the producer once the advertisement appears.
	h := newHarness(t, Options{}, [][2]wire.BrokerID{{"b1", "b2"}, {"b2", "b3"}})
	var rec recorder
	if err := h.brokers["b1"].AttachClient("c", rec.deliver); err != nil {
		t.Fatal(err)
	}
	f := filter.MustParse(`sym = A`)
	// First an unrelated advertisement exists, so the broker is in
	// advertisement-scoped mode and will NOT flood the subscription.
	if err := h.brokers["b3"].AttachClient("other", nil); err != nil {
		t.Fatal(err)
	}
	if err := h.brokers["b3"].Advertise("other", "x", filter.MustParse(`sym = ZZZ`)); err != nil {
		t.Fatal(err)
	}
	h.settle()
	err := h.brokers["b1"].Subscribe(wire.Subscription{
		Filter: f, Client: "c", ID: "s", IsMobile: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.settle()

	// Now the real producer advertises; the flush must forward the known
	// subscription toward it.
	if err := h.brokers["b3"].AttachClient("p", nil); err != nil {
		t.Fatal(err)
	}
	if err := h.brokers["b3"].Advertise("p", "adv", f); err != nil {
		t.Fatal(err)
	}
	h.settle()
	if err := h.brokers["b3"].Publish("p", n1("A")); err != nil {
		t.Fatal(err)
	}
	h.settle()
	if rec.len() != 1 {
		t.Fatalf("late advertisement: %d deliveries, want 1", rec.len())
	}
}

func TestUnadvertiseWithdraws(t *testing.T) {
	h := newHarness(t, Options{}, [][2]wire.BrokerID{{"b1", "b2"}})
	b1, b2 := h.brokers["b1"], h.brokers["b2"]
	if err := b2.AttachClient("p", nil); err != nil {
		t.Fatal(err)
	}
	f := filter.MustParse(`sym = A`)
	if err := b2.Advertise("p", "adv", f); err != nil {
		t.Fatal(err)
	}
	h.settle()
	if _, advs := b1.TableSizes(); advs != 1 {
		t.Fatalf("b1 advertisement table = %d, want 1", advs)
	}
	if err := b2.Unadvertise("p", "adv"); err != nil {
		t.Fatal(err)
	}
	h.settle()
	if _, advs := b1.TableSizes(); advs != 0 {
		t.Fatalf("b1 advertisement table after unadvertise = %d", advs)
	}
	// Unadvertising something unknown is a no-op.
	if err := b2.Unadvertise("p", "nope"); err != nil {
		t.Fatal(err)
	}
}

func TestAggregateUnsubscribeCleansRemoteTables(t *testing.T) {
	h := newHarness(t, Options{Strategy: routing.Covering},
		[][2]wire.BrokerID{{"b1", "b2"}, {"b2", "b3"}})
	b1 := h.brokers["b1"]
	var rec recorder
	if err := b1.AttachClient("c", rec.deliver); err != nil {
		t.Fatal(err)
	}
	if err := b1.Subscribe(wire.Subscription{
		Filter: filter.MustParse(`sym = A`), Client: "c", ID: "s",
	}); err != nil {
		t.Fatal(err)
	}
	h.settle()
	if subs, _ := h.brokers["b3"].TableSizes(); subs == 0 {
		t.Fatal("subscription did not propagate to b3")
	}
	if err := b1.Unsubscribe("c", "s"); err != nil {
		t.Fatal(err)
	}
	h.settle()
	for id, b := range h.brokers {
		if subs, _ := b.TableSizes(); subs != 0 {
			t.Errorf("broker %s still has %d entries after unsubscribe", id, subs)
		}
	}
}

func TestCoveringSuppressesRedundantForwarding(t *testing.T) {
	h := newHarness(t, Options{Strategy: routing.Covering},
		[][2]wire.BrokerID{{"b1", "b2"}})
	b1 := h.brokers["b1"]
	var rec recorder
	if err := b1.AttachClient("c", rec.deliver); err != nil {
		t.Fatal(err)
	}
	wide := filter.MustParse(`p in [0, 100]`)
	narrow := filter.MustParse(`p in [10, 20]`)
	if err := b1.Subscribe(wire.Subscription{Filter: wide, Client: "c", ID: "w"}); err != nil {
		t.Fatal(err)
	}
	if err := b1.Subscribe(wire.Subscription{Filter: narrow, Client: "c", ID: "n"}); err != nil {
		t.Fatal(err)
	}
	h.settle()
	// b2 must only hold the covering filter.
	if subs, _ := h.brokers["b2"].TableSizes(); subs != 1 {
		t.Errorf("covering should forward 1 filter, b2 has %d", subs)
	}
	// Matching notifications still reach both subscriptions.
	if err := h.brokers["b2"].AttachClient("p", nil); err != nil {
		t.Fatal(err)
	}
	if err := h.brokers["b2"].Publish("p", message.New(map[string]message.Value{
		"p": message.Int(15),
	})); err != nil {
		t.Fatal(err)
	}
	h.settle()
	if rec.len() != 2 {
		t.Errorf("deliveries = %d, want 2 (both subscriptions)", rec.len())
	}
}

func TestRemoveLinkCleansState(t *testing.T) {
	h := newHarness(t, Options{}, [][2]wire.BrokerID{{"b1", "b2"}})
	b1 := h.brokers["b1"]
	var rec recorder
	if err := b1.AttachClient("c", rec.deliver); err != nil {
		t.Fatal(err)
	}
	if err := b1.Subscribe(wire.Subscription{
		Filter: filter.MustParse(`sym = A`), Client: "c", ID: "s",
	}); err != nil {
		t.Fatal(err)
	}
	h.settle()
	b2 := h.brokers["b2"]
	if subs, _ := b2.TableSizes(); subs != 1 {
		t.Fatal("precondition: b2 has the entry")
	}
	if err := b2.RemoveLink("b1"); err != nil {
		t.Fatal(err)
	}
	if subs, _ := b2.TableSizes(); subs != 0 {
		t.Error("RemoveLink should clear entries from that hop")
	}
	if got := b2.Neighbors(); len(got) != 0 {
		t.Errorf("Neighbors = %v", got)
	}
}

func TestLocDepRequiresRegistry(t *testing.T) {
	h := newHarness(t, Options{}, [][2]wire.BrokerID{{"b1", "b2"}})
	b := h.brokers["b1"]
	if err := b.AttachClient("c", nil); err != nil {
		t.Fatal(err)
	}
	err := b.Subscribe(wire.Subscription{
		Filter:       filter.MustParse(`room = "$myloc"`),
		Client:       "c",
		ID:           "s",
		LocDependent: true,
		LocAttr:      "room",
		GraphName:    "missing",
		Loc:          "a",
	})
	if err == nil {
		t.Error("location-dependent subscribe without registry should fail")
	}
}

func TestLocDepInvalidStartLocation(t *testing.T) {
	reg := locfilter.NewRegistry()
	if err := reg.Register("fig7", location.FigureSeven()); err != nil {
		t.Fatal(err)
	}
	h := newHarness(t, Options{Registry: reg}, [][2]wire.BrokerID{{"b1", "b2"}})
	b := h.brokers["b1"]
	if err := b.AttachClient("c", nil); err != nil {
		t.Fatal(err)
	}
	sub := wire.Subscription{
		Filter:       filter.MustParse(`room = "$myloc"`),
		Client:       "c",
		ID:           "s",
		LocDependent: true,
		LocAttr:      "room",
		GraphName:    "fig7",
		Loc:          "mars",
	}
	if err := b.Subscribe(sub); err == nil {
		t.Error("unknown start location should fail")
	}
	sub.Loc = "a"
	if err := b.Subscribe(sub); err != nil {
		t.Fatal(err)
	}
	if err := b.SetLocation("c", "s", "d"); !errors.Is(err, ErrInvalidMove) {
		t.Errorf("a->d should be rejected, got %v", err)
	}
	if err := b.SetLocation("c", "nope", "b"); !errors.Is(err, ErrUnknownSub) {
		t.Errorf("unknown sub = %v", err)
	}
	if err := b.SetLocation("ghost", "s", "b"); !errors.Is(err, ErrUnknownClient) {
		t.Errorf("unknown client = %v", err)
	}
	// Same-location move is a no-op.
	if err := b.SetLocation("c", "s", "a"); err != nil {
		t.Errorf("no-op move: %v", err)
	}
}

func TestLocUpdateSkipsWhenSaturated(t *testing.T) {
	// On the Figure 7 graph, step 2 saturates ploc; upstream brokers must
	// not receive location updates once their delta is empty.
	reg := locfilter.NewRegistry()
	if err := reg.Register("fig7", location.FigureSeven()); err != nil {
		t.Fatal(err)
	}
	// Huge processing delay: every hop takes a widening step.
	h := newHarness(t, Options{Registry: reg, ProcDelay: time.Hour},
		[][2]wire.BrokerID{{"b1", "b2"}, {"b2", "b3"}, {"b3", "b4"}})
	b1 := h.brokers["b1"]
	var rec recorder
	if err := b1.AttachClient("c", rec.deliver); err != nil {
		t.Fatal(err)
	}
	err := b1.Subscribe(wire.Subscription{
		Filter:       filter.MustParse(`room = "$myloc"`),
		Client:       "c",
		ID:           "s",
		LocDependent: true,
		LocAttr:      "room",
		GraphName:    "fig7",
		Loc:          "a",
		Delta:        time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.settle()
	// b3's entry is ploc(a, 2) = the full universe; so is b4's. A move
	// a->b changes nothing there, and the update must stop at b3.
	// (Observable effect: tables stay consistent and no panic; the
	// restricted-flooding property itself is asserted via MoveDelta in
	// locfilter tests. Here we verify end-to-end delivery keeps working.)
	if err := b1.SetLocation("c", "s", "b"); err != nil {
		t.Fatal(err)
	}
	h.settle()
	if err := h.brokers["b4"].AttachClient("p", nil); err != nil {
		t.Fatal(err)
	}
	if err := h.brokers["b4"].Publish("p", message.New(map[string]message.Value{
		"room": message.String("b"),
	})); err != nil {
		t.Fatal(err)
	}
	h.settle()
	if rec.len() != 1 {
		t.Fatalf("delivery after move = %d, want 1", rec.len())
	}
}

func TestBrokerStringAndClose(t *testing.T) {
	b := New("bx", Options{})
	b.Start()
	if got := b.String(); got != "broker(bx)" {
		t.Errorf("String = %q", got)
	}
	b.Close()
	b.Close() // idempotent
	if err := b.AttachClient("c", nil); !errors.Is(err, ErrClosed) {
		t.Errorf("op after close = %v", err)
	}
}

func TestManyClientsManySubs(t *testing.T) {
	h := newHarness(t, Options{}, [][2]wire.BrokerID{{"b1", "b2"}, {"b2", "b3"}})
	var recs [8]recorder
	for i := range recs {
		id := wire.ClientID(fmt.Sprintf("c%d", i))
		if err := h.brokers["b1"].AttachClient(id, recs[i].deliver); err != nil {
			t.Fatal(err)
		}
		err := h.brokers["b1"].Subscribe(wire.Subscription{
			Filter: filter.MustParse(fmt.Sprintf(`group = g%d`, i%2)),
			Client: id,
			ID:     "s",
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	h.settle()
	if err := h.brokers["b3"].AttachClient("p", nil); err != nil {
		t.Fatal(err)
	}
	if err := h.brokers["b3"].Publish("p", message.New(map[string]message.Value{
		"group": message.String("g0"),
	})); err != nil {
		t.Fatal(err)
	}
	h.settle()
	for i := range recs {
		want := 0
		if i%2 == 0 {
			want = 1
		}
		if recs[i].len() != want {
			t.Errorf("client %d got %d deliveries, want %d", i, recs[i].len(), want)
		}
	}
}
