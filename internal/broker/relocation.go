package broker

import (
	"time"

	"repro/internal/metrics"
	"repro/internal/routing"
	"repro/internal/wire"
)

// This file implements the physical-mobility relocation protocol of
// Section 4. The moving parts:
//
//   - The old border broker keeps a "virtual counterpart" of the roaming
//     client: its subscriptions stay in the routing tables and matching
//     notifications are buffered with continuing sequence numbers.
//   - When the client reattaches at a new border broker it re-issues each
//     subscription together with the last sequence number it received
//     (e.g. (C, F, 123) in the paper). The new border broker buffers live
//     deliveries and propagates the relocation subscription.
//   - The junction broker — the first broker on the propagation path that
//     already has a routing entry for (C, F) pointing elsewhere — diverts
//     new notifications onto the new path and sends a fetch request
//     (C, F, seq, B) along the old path.
//   - Brokers along the old path flip their (C, F) entries to point back
//     toward the junction as the fetch passes (preserving the invariant
//     that every entry points toward the client's current location).
//   - The old border broker replays the buffered notifications with
//     sequence numbers greater than the client's last; the replay travels
//     along the flipped path. The new border broker delivers the replayed
//     messages first, then its own buffered ones, preserving order.
//
// All relocation traffic uses ordinary FIFO broker links, which is what
// makes the no-loss/no-duplicate argument go through: notifications in
// flight toward the old border broker are ahead of the fetch on every
// link, so they are buffered and replayed exactly once.

// localRelocateSubscribe handles a relocation re-subscription issued by a
// client that just attached to this broker. Runs on the broker goroutine.
func (b *Broker) localRelocateSubscribe(cs *clientState, sub wire.Subscription) error {
	key := subKey(sub.Client, sub.ID)
	clientHop := wire.ClientHop(sub.Client)

	if old, ok := cs.subs[sub.ID]; ok {
		// The client reappeared at the very broker it left: the virtual
		// counterpart is local. Deliver the buffered notifications beyond
		// LastSeq directly; no network protocol needed.
		b.drainLocalBuffer(cs, old, sub.LastSeq)
		return nil
	}

	state := &clientSub{sub: sub, exact: sub.Filter, nextSeq: sub.LastSeq + 1}
	cs.subs[sub.ID] = state
	b.knownSubs[key] = persistentForm(sub)

	olds := b.oldEntries(sub.Client, sub.ID, clientHop)
	b.subs.Add(routing.Entry{Filter: sub.Filter, Hop: clientHop, Client: sub.Client, SubID: sub.ID})
	p := &relocationPending{client: sub.Client, id: sub.ID, epoch: sub.RelocEpoch}
	b.pending[key] = p
	b.relocStarted++
	if timeout := b.relocTimeout(); timeout > 0 {
		epoch := sub.RelocEpoch
		p.timer = time.AfterFunc(timeout, func() {
			// Posted through the mailbox as a control task; a no-op if the
			// broker has shut down meanwhile (push to a closed mailbox is
			// silently dropped).
			b.box.push(task{fn: func() { b.expireRelocation(key, epoch) }})
		})
	}

	if len(olds) > 0 {
		// The new border broker itself lies on the old delivery path: it
		// is its own junction.
		b.fetched[key] = sub.RelocEpoch
		for _, old := range olds {
			b.subs.Remove(old)
			fetch := wire.Fetch{
				Client:   sub.Client,
				ID:       sub.ID,
				Filter:   sub.Filter,
				LastSeq:  sub.LastSeq,
				Junction: b.id,
				Epoch:    sub.RelocEpoch,
			}
			b.send(old.Hop, wire.NewFetch(fetch))
		}
		return nil
	}
	b.propagateClientSub(sub, clientHop)
	return nil
}

// relocTimeout resolves Options.RelocTimeout: zero means the default,
// negative disables the bound.
func (b *Broker) relocTimeout() time.Duration {
	switch {
	case b.opts.RelocTimeout < 0:
		return 0
	case b.opts.RelocTimeout == 0:
		return DefaultRelocTimeout
	}
	return b.opts.RelocTimeout
}

// expireRelocation gives up on an outstanding relocation replay: the
// pending buffer's notifications are delivered as live traffic with fresh
// sequence numbers. Without this, a subscriber failing over from a
// crashed border broker would buffer forever, since the crashed broker's
// virtual counterpart — and with it the replay — is gone. Notifications
// the crashed broker had buffered but not replayed are lost; the blackout
// experiment measures that loss. The expiry bound and the relocation
// buffer cap are the two deliberate loss points of the protocol —
// Section 4.1's "completeness within the boundaries of time and/or space
// limitations of buffering approaches": RelocTimeout bounds how long a
// relocation may buffer, RelocBufferCap bounds how much, and each drop is
// counted (RelocationsExpired measures nothing by itself, but the blackout
// experiment's loss column does; RelocBufferDrops counts the space side
// directly). Runs on the broker goroutine; the epoch check drops stale
// timers from an earlier relocation of the same subscription.
func (b *Broker) expireRelocation(key string, epoch uint64) {
	p, ok := b.pending[key]
	if !ok || p.epoch != epoch {
		return
	}
	delete(b.pending, key)
	delete(b.fetched, key) // relocation over; allow future epochs to refetch
	b.relocExpired++
	for _, n := range p.notifs {
		b.deliverTo(p.client, p.id, n, false)
	}
}

// persistentForm strips the one-shot relocation flags so the stored
// subscription can be re-forwarded later (e.g. toward new advertisers).
func persistentForm(sub wire.Subscription) wire.Subscription {
	sub.Relocate = false
	sub.LastSeq = 0
	sub.IsMobile = true
	return sub
}

// drainLocalBuffer delivers the virtual counterpart's buffered items with
// sequence numbers beyond lastSeq to the (re-)connected client.
func (b *Broker) drainLocalBuffer(cs *clientState, st *clientSub, lastSeq uint64) {
	items := st.buffer
	st.buffer = nil
	for _, it := range items {
		if it.Seq <= lastSeq {
			continue
		}
		if cs.connected && cs.deliver != nil {
			if b.opts.Counter != nil {
				b.opts.Counter.Inc(metrics.CategoryDeliver)
			}
			cs.deliver(wire.Deliver{Client: cs.id, ID: st.sub.ID, Item: it, Replayed: true})
		}
	}
}

// handleFetch processes a relocation fetch request traveling along the old
// delivery path (Section 4.1, step 5). At most one fetch is honored per
// relocation epoch at each broker; later fetches (possible when the new
// subscription met the old path at several junctions) are dropped, which
// keeps the flipped entries forming a tree pointing at the client.
func (b *Broker) handleFetch(from wire.Hop, f wire.Fetch) {
	key := subKey(f.Client, f.ID)
	if last, ok := b.fetched[key]; ok && last >= f.Epoch {
		return
	}
	// The fetched dedup entry is garbage collected when a relocation
	// completes, so it alone cannot drop a same-epoch duplicate that was
	// still in flight on a slow path. If the subscription's client is
	// connected HERE with a current-or-newer epoch, this broker is the
	// client's live border broker and the entry pointing at the client
	// hop must not be flipped away — drop the straggler.
	if cs, ok := b.clients[f.Client]; ok && cs.connected {
		if st, ok := cs.subs[f.ID]; ok && st.sub.RelocEpoch >= f.Epoch {
			return
		}
	}
	olds := b.subs.ClientEntries(f.Client, f.ID)
	var forward []routing.Entry
	for _, e := range olds {
		if e.Hop != from {
			forward = append(forward, e)
		}
	}
	if len(forward) == 0 {
		return // stale fetch; nothing to divert here
	}
	b.fetched[key] = f.Epoch
	for _, e := range forward {
		b.subs.Remove(e)
	}
	// Flip: the client is now reachable via the hop the fetch came from.
	b.subs.Add(routing.Entry{Filter: f.Filter, Hop: from, Client: f.Client, SubID: f.ID})
	for _, e := range forward {
		if e.Hop.IsClient() {
			// This broker is the old border broker: the virtual
			// counterpart lives here. Replay and garbage collect.
			b.replayFromCounterpart(f, from)
			continue
		}
		b.send(e.Hop, wire.NewFetch(f))
	}
}

// replayFromCounterpart sends the virtual counterpart's buffered
// notifications (those the roaming client has not seen) back toward the
// junction and garbage collects the client's local state (Section 4.1,
// step 6: "Replay & clean up").
func (b *Broker) replayFromCounterpart(f wire.Fetch, toward wire.Hop) {
	replay := wire.Replay{
		Client:  f.Client,
		ID:      f.ID,
		From:    b.id,
		NextSeq: f.LastSeq + 1,
	}
	if cs, ok := b.clients[f.Client]; ok {
		if st, ok := cs.subs[f.ID]; ok {
			for _, it := range st.buffer {
				if it.Seq > f.LastSeq {
					replay.Items = append(replay.Items, it)
				}
			}
			replay.NextSeq = st.nextSeq
			delete(cs.subs, f.ID)
		}
		if !cs.connected && len(cs.subs) == 0 && len(cs.advs) == 0 {
			delete(b.clients, f.Client)
		}
	}
	b.replaySizes.Observe(uint64(len(replay.Items)))
	b.send(toward, wire.NewReplay(replay))
}

// handleReplay routes a replay batch along the (already flipped) delivery
// path toward the client's new border broker, where it completes the
// relocation: replayed messages are delivered first, then the
// notifications buffered during the relocation, preserving FIFO order.
func (b *Broker) handleReplay(from wire.Hop, r wire.Replay) {
	entries := b.subs.ClientEntries(r.Client, r.ID)
	for _, e := range entries {
		if e.Hop.IsClient() {
			b.completeRelocation(r)
			return
		}
	}
	for _, e := range entries {
		if e.Hop != from {
			b.send(e.Hop, wire.NewReplay(r))
			return
		}
	}
}

// completeRelocation runs at the new border broker when the replay
// arrives.
func (b *Broker) completeRelocation(r wire.Replay) {
	key := subKey(r.Client, r.ID)
	// The relocation this replay belongs to is over either way: release
	// the fetch-dedup entry so a future epoch of the same subscription
	// can be fetched again (handleFetch separately guards the live
	// client entry against same-epoch stragglers).
	delete(b.fetched, key)
	cs, ok := b.clients[r.Client]
	if !ok {
		delete(b.pending, key)
		return
	}
	st, ok := cs.subs[r.ID]
	if !ok {
		delete(b.pending, key)
		return
	}
	p := b.pending[key]
	delete(b.pending, key)
	if p != nil && p.timer != nil {
		p.timer.Stop()
	}
	b.relocCompleted++

	// Adopt the old border broker's numbering.
	if r.NextSeq > st.nextSeq {
		st.nextSeq = r.NextSeq
	}
	// Old messages first …
	for _, it := range r.Items {
		if cs.connected && cs.deliver != nil {
			if b.opts.Counter != nil {
				b.opts.Counter.Inc(metrics.CategoryDeliver)
			}
			cs.deliver(wire.Deliver{Client: r.Client, ID: r.ID, Item: it, Replayed: true})
		} else {
			st.buffer = append(st.buffer, it)
			if len(st.buffer) > b.opts.RelocBufferCap {
				st.buffer = st.buffer[1:]
				st.overflow++
				b.relocReplayDrops++
			}
		}
	}
	// … then the ones that arrived over the new path meanwhile (the
	// pending entry is already deleted, so these deliver normally and get
	// fresh sequence numbers continuing the old broker's numbering).
	if p != nil {
		for _, n := range p.notifs {
			b.deliverTo(r.Client, r.ID, n, false)
		}
	}
}
