package broker

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/filter"
	"repro/internal/routing"
	"repro/internal/transport"
	"repro/internal/wire"
)

// TestControlPlaneStats checks the admin-traffic and cover-index counters
// a covering broker surfaces: forwarding a narrow-then-wide pair costs
// two subscribes and one retraction upstream.
func TestControlPlaneStats(t *testing.T) {
	h := newHarness(t, Options{Strategy: routing.Covering},
		[][2]wire.BrokerID{{"b1", "b2"}})
	b1 := h.brokers["b1"]
	if err := b1.AttachClient("c", nil); err != nil {
		t.Fatal(err)
	}
	subs := []struct {
		id  wire.SubID
		src string
	}{
		{"n", `p in [10, 20]`},
		{"w", `p in [0, 100]`},
	}
	for _, s := range subs {
		if err := b1.Subscribe(wire.Subscription{
			Filter: filter.MustParse(s.src), Client: "c", ID: s.id,
		}); err != nil {
			t.Fatal(err)
		}
	}
	h.settle()

	st := b1.Stats()
	if st.ControlSubsSent != 2 {
		t.Errorf("ControlSubsSent = %d, want 2 (narrow then wide)", st.ControlSubsSent)
	}
	if st.ControlUnsubsSent != 1 {
		t.Errorf("ControlUnsubsSent = %d, want 1 (narrow retracted)", st.ControlUnsubsSent)
	}
	fs := st.Forwarder
	if fs.Strategy != routing.Covering || !fs.Incremental {
		t.Errorf("Forwarder stats = %+v, want incremental covering", fs)
	}
	if fs.TrackedFilters != 2 || fs.ForwardedFilters != 1 {
		t.Errorf("tracked/forwarded = %d/%d, want 2/1", fs.TrackedFilters, fs.ForwardedFilters)
	}
	if fs.CoverChecks == 0 {
		t.Error("CoverChecks = 0; the wide add must have tested the narrow filter")
	}
	if err := b1.Unsubscribe("c", "w"); err != nil {
		t.Fatal(err)
	}
	h.settle()
	st = b1.Stats()
	if st.ControlUnsubsSent != 2 || st.ControlSubsSent != 3 {
		t.Errorf("after wide unsub: subs=%d unsubs=%d, want 3/2 (narrow re-forwarded)",
			st.ControlSubsSent, st.ControlUnsubsSent)
	}
}

// TestControlPlaneChurnMatchesBatchReduce drives randomized subscription
// churn through a live two-broker overlay for every strategy and asserts
// the neighbor's routing table always equals the batch Strategy.Reduce of
// the surviving subscriptions — the end-to-end version of the forwarder
// property test, crossing the real wire.
func TestControlPlaneChurnMatchesBatchReduce(t *testing.T) {
	for _, strat := range routing.Strategies() {
		if strat == routing.Flooding {
			continue // flooding propagates nothing to compare
		}
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			h := newHarness(t, Options{Strategy: strat},
				[][2]wire.BrokerID{{"b1", "b2"}})
			b1, b2 := h.brokers["b1"], h.brokers["b2"]
			if err := b1.AttachClient("c", nil); err != nil {
				t.Fatal(err)
			}
			pool := make([]filter.Filter, 0, 24)
			for lo := 0; lo < 30; lo += 5 {
				pool = append(pool,
					filter.MustParse(fmt.Sprintf(`p in [%d, %d]`, lo, lo+4)),
					filter.MustParse(fmt.Sprintf(`p in [%d, %d]`, lo, lo+15)))
			}
			for v := 0; v < 6; v++ {
				pool = append(pool,
					filter.MustParse(fmt.Sprintf(`svc = "s%d"`, v%3)),
					filter.MustParse(fmt.Sprintf(`svc = "s%d" && p < %d`, v%3, v+2)))
			}
			rng := rand.New(rand.NewSource(int64(strat) * 7919))
			live := make(map[wire.SubID]filter.Filter)
			next := 0
			for step := 0; step < 60; step++ {
				if len(live) == 0 || rng.Intn(2) == 0 {
					id := wire.SubID(fmt.Sprintf("s%d", next))
					next++
					f := pool[rng.Intn(len(pool))]
					live[id] = f
					if err := b1.Subscribe(wire.Subscription{Filter: f, Client: "c", ID: id}); err != nil {
						t.Fatal(err)
					}
				} else {
					for id := range live {
						delete(live, id)
						if err := b1.Unsubscribe("c", id); err != nil {
							t.Fatal(err)
						}
						break
					}
				}
			}
			h.settle()

			inputs := make([]filter.Filter, 0, len(live))
			for _, f := range live {
				inputs = append(inputs, f)
			}
			sort.Slice(inputs, func(i, j int) bool { return inputs[i].ID() < inputs[j].ID() })
			want := make([]string, 0)
			for _, f := range strat.Reduce(inputs) {
				want = append(want, f.ID())
			}
			sort.Strings(want)
			got := make([]string, 0)
			for _, e := range b2.SubEntries() {
				got = append(got, e.Filter.ID())
			}
			sort.Strings(got)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("b2 table after churn:\n got  %v\n want %v", got, want)
			}
		})
	}
}

// TestAddLinkSeedsNewNeighbor: a broker that gains a link after
// subscriptions exist must push the aggregate interest to the new
// neighbor immediately (the batch-oracle seed on link churn).
func TestAddLinkSeedsNewNeighbor(t *testing.T) {
	h := newHarness(t, Options{Strategy: routing.Covering},
		[][2]wire.BrokerID{{"b1", "b2"}})
	b2 := h.brokers["b2"]
	b1 := h.brokers["b1"]
	if err := b1.AttachClient("c", nil); err != nil {
		t.Fatal(err)
	}
	if err := b1.Subscribe(wire.Subscription{
		Filter: filter.MustParse(`k = "v"`), Client: "c", ID: "s",
	}); err != nil {
		t.Fatal(err)
	}
	h.settle()

	// Wire a third broker onto b2 after the fact.
	b3 := New("b3", Options{Strategy: routing.Covering})
	b3.Start()
	t.Cleanup(b3.Close)
	l2, l3 := transport.Pipe(wire.BrokerHop("b2"), wire.BrokerHop("b3"), b2, b3)
	if err := b2.AddLink("b3", l2); err != nil {
		t.Fatal(err)
	}
	if err := b3.AddLink("b2", l3); err != nil {
		t.Fatal(err)
	}
	h.brokers["b3"] = b3
	h.settle()
	if subs, _ := b3.TableSizes(); subs != 1 {
		t.Errorf("b3 table after late join = %d entries, want 1 (seeded)", subs)
	}
}

// TestRemoveLinkRetractsFromSurvivors: dropping the link that justified a
// forwarded aggregate must retract it from the remaining neighbors.
func TestRemoveLinkRetractsFromSurvivors(t *testing.T) {
	h := newHarness(t, Options{Strategy: routing.Covering},
		[][2]wire.BrokerID{{"b1", "hub"}, {"hub", "b3"}})
	hub, b1, b3 := h.brokers["hub"], h.brokers["b1"], h.brokers["b3"]
	if err := b1.AttachClient("c", nil); err != nil {
		t.Fatal(err)
	}
	if err := b1.Subscribe(wire.Subscription{
		Filter: filter.MustParse(`k = "v"`), Client: "c", ID: "s",
	}); err != nil {
		t.Fatal(err)
	}
	h.settle()
	if subs, _ := b3.TableSizes(); subs != 1 {
		t.Fatal("precondition: b3 learned the aggregate")
	}
	if err := hub.RemoveLink("b1"); err != nil {
		t.Fatal(err)
	}
	h.settle()
	if subs, _ := b3.TableSizes(); subs != 0 {
		t.Errorf("b3 table after hub dropped b1 = %d entries, want 0 (retracted)", subs)
	}
}
