package broker

import (
	"testing"
	"time"

	"repro/internal/filter"
	"repro/internal/location"
	"repro/internal/locfilter"
	"repro/internal/message"
	"repro/internal/wire"
)

func locHarness(t *testing.T, edges [][2]wire.BrokerID) *harness {
	t.Helper()
	reg := locfilter.NewRegistry()
	if err := reg.Register("fig7", location.FigureSeven()); err != nil {
		t.Fatal(err)
	}
	return newHarness(t, Options{Registry: reg, ProcDelay: 50 * time.Millisecond}, edges)
}

func locSub(client wire.ClientID, id wire.SubID, loc location.Location) wire.Subscription {
	return wire.Subscription{
		Filter: filter.MustNew(
			filter.EQ("svc", message.String("s")),
			filter.EQ("room", message.String(locfilter.MarkerMyloc)),
		),
		Client:       client,
		ID:           id,
		LocDependent: true,
		LocAttr:      "room",
		GraphName:    "fig7",
		Loc:          loc,
		Delta:        100 * time.Millisecond,
	}
}

// TestLocDepUnsubscribeTearsDownUpstream checks that withdrawing a
// location-dependent subscription removes every upstream entry.
func TestLocDepUnsubscribeTearsDownUpstream(t *testing.T) {
	h := locHarness(t, [][2]wire.BrokerID{{"b1", "b2"}, {"b2", "b3"}})
	b1 := h.brokers["b1"]
	var rec recorder
	if err := b1.AttachClient("c", rec.deliver); err != nil {
		t.Fatal(err)
	}
	if err := b1.Subscribe(locSub("c", "s", "a")); err != nil {
		t.Fatal(err)
	}
	h.settle()
	for _, id := range []wire.BrokerID{"b2", "b3"} {
		if subs, _ := h.brokers[id].TableSizes(); subs == 0 {
			t.Fatalf("precondition: %s has no entry", id)
		}
	}
	if err := b1.Unsubscribe("c", "s"); err != nil {
		t.Fatal(err)
	}
	h.settle()
	for id, b := range h.brokers {
		if subs, _ := b.TableSizes(); subs != 0 {
			t.Errorf("broker %s keeps %d entries after locdep unsubscribe", id, subs)
		}
	}
	// Publishing afterwards delivers nothing.
	if err := h.brokers["b3"].AttachClient("p", nil); err != nil {
		t.Fatal(err)
	}
	if err := h.brokers["b3"].Publish("p", message.New(map[string]message.Value{
		"svc":  message.String("s"),
		"room": message.String("a"),
	})); err != nil {
		t.Fatal(err)
	}
	h.settle()
	if rec.len() != 0 {
		t.Errorf("delivery after unsubscribe: %d", rec.len())
	}
}

// TestLocDepLateAdvertiserFlush registers the advertiser after the
// location-dependent subscription; the flush path must forward the
// widened subscription toward the new advertiser.
func TestLocDepLateAdvertiserFlush(t *testing.T) {
	h := locHarness(t, [][2]wire.BrokerID{{"b1", "b2"}, {"b2", "b3"}})
	b1 := h.brokers["b1"]
	var rec recorder
	if err := b1.AttachClient("c", rec.deliver); err != nil {
		t.Fatal(err)
	}
	// An unrelated advertisement puts the overlay into
	// advertisement-scoped mode first.
	if err := h.brokers["b2"].AttachClient("x", nil); err != nil {
		t.Fatal(err)
	}
	if err := h.brokers["b2"].Advertise("x", "noise", filter.MustParse(`svc = "zzz"`)); err != nil {
		t.Fatal(err)
	}
	h.settle()
	if err := b1.Subscribe(locSub("c", "s", "a")); err != nil {
		t.Fatal(err)
	}
	h.settle()

	// Now the real producer advertises from b3: the locdep subscription
	// must flush toward it.
	if err := h.brokers["b3"].AttachClient("p", nil); err != nil {
		t.Fatal(err)
	}
	if err := h.brokers["b3"].Advertise("p", "adv", filter.MustParse(`svc = "s"`)); err != nil {
		t.Fatal(err)
	}
	h.settle()
	if err := h.brokers["b3"].Publish("p", message.New(map[string]message.Value{
		"svc":  message.String("s"),
		"room": message.String("a"),
	})); err != nil {
		t.Fatal(err)
	}
	h.settle()
	if rec.len() != 1 {
		t.Fatalf("late-advertiser flush failed: %d deliveries", rec.len())
	}
}

// TestLocDepResubscriptionReplacesEntry re-issues a location-dependent
// subscription over a link (refresh) and checks the entry is replaced,
// not duplicated.
func TestLocDepResubscriptionReplacesEntry(t *testing.T) {
	h := locHarness(t, [][2]wire.BrokerID{{"b1", "b2"}})
	b2 := h.brokers["b2"]
	sub := locSub("c", "s", "a")
	sub.Steps = 1
	b2.Receive(inbound{From: wire.BrokerHop("b1"), Msg: wire.NewSubscribe(sub)})
	h.settle()
	subs1, _ := b2.TableSizes()
	// Refresh with a different location.
	sub2 := sub
	sub2.Loc = "b"
	b2.Receive(inbound{From: wire.BrokerHop("b1"), Msg: wire.NewSubscribe(sub2)})
	h.settle()
	subs2, _ := b2.TableSizes()
	if subs1 != 1 || subs2 != 1 {
		t.Errorf("entry counts = %d then %d, want 1 and 1", subs1, subs2)
	}
}

// TestLocUpdateForUnknownSubscriptionIgnored injects a location update for
// a subscription this broker never saw.
func TestLocUpdateForUnknownSubscriptionIgnored(t *testing.T) {
	h := locHarness(t, [][2]wire.BrokerID{{"b1", "b2"}})
	b2 := h.brokers["b2"]
	b2.Receive(inbound{From: wire.BrokerHop("b1"), Msg: wire.NewLocUpdate(wire.LocUpdate{
		Client: "ghost", ID: "s", OldLoc: "a", NewLoc: "b",
	})})
	h.settle()
	if subs, _ := b2.TableSizes(); subs != 0 {
		t.Errorf("ghost update created state: %d", subs)
	}
}

// TestLocDepDeliveryExactness publishes across every location while the
// client sits at "a": only "a" events arrive even though the upstream
// entry is widened to ploc(a, 1).
func TestLocDepDeliveryExactness(t *testing.T) {
	h := locHarness(t, [][2]wire.BrokerID{{"b1", "b2"}})
	b1 := h.brokers["b1"]
	var rec recorder
	if err := b1.AttachClient("c", rec.deliver); err != nil {
		t.Fatal(err)
	}
	if err := b1.Subscribe(locSub("c", "s", "a")); err != nil {
		t.Fatal(err)
	}
	h.settle()
	if err := h.brokers["b2"].AttachClient("p", nil); err != nil {
		t.Fatal(err)
	}
	for _, room := range []string{"a", "b", "c", "d"} {
		if err := h.brokers["b2"].Publish("p", message.New(map[string]message.Value{
			"svc":  message.String("s"),
			"room": message.String(room),
		})); err != nil {
			t.Fatal(err)
		}
	}
	h.settle()
	if rec.len() != 1 {
		t.Fatalf("client-side exactness violated: %d deliveries", rec.len())
	}
}
