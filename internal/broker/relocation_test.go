package broker

import (
	"testing"

	"repro/internal/filter"
	"repro/internal/message"
	"repro/internal/wire"
)

// These tests poke the relocation protocol's edge cases directly at the
// broker level; the end-to-end happy paths live in package core.

func relocHarness(t *testing.T) (*harness, *recorder) {
	t.Helper()
	h := newHarness(t, Options{}, [][2]wire.BrokerID{
		{"b1", "b2"}, {"b2", "b3"}, {"b3", "b4"},
	})
	var rec recorder
	if err := h.brokers["b4"].AttachClient("C", rec.deliver); err != nil {
		t.Fatal(err)
	}
	if err := h.brokers["b1"].AttachClient("P", nil); err != nil {
		t.Fatal(err)
	}
	f := filter.MustParse(`k = "v"`)
	if err := h.brokers["b1"].Advertise("P", "adv", f); err != nil {
		t.Fatal(err)
	}
	h.settle()
	if err := h.brokers["b4"].Subscribe(wire.Subscription{
		Filter: f, Client: "C", ID: "s", IsMobile: true,
	}); err != nil {
		t.Fatal(err)
	}
	h.settle()
	return h, &rec
}

func pubV(t *testing.T, h *harness, n int64) {
	t.Helper()
	if err := h.brokers["b1"].Publish("P", message.New(map[string]message.Value{
		"k": message.String("v"),
		"n": message.Int(n),
	})); err != nil {
		t.Fatal(err)
	}
}

// TestStaleFetchIsIgnored sends a fabricated fetch for a subscription that
// has no entries at the receiving broker; nothing must change.
func TestStaleFetchIsIgnored(t *testing.T) {
	h, _ := relocHarness(t)
	b2 := h.brokers["b2"]
	before, _ := b2.TableSizes()
	// Inject a fetch for an unknown subscription.
	b2.Receive(inbound{
		From: wire.BrokerHop("b3"),
		Msg: wire.NewFetch(wire.Fetch{
			Client: "ghost", ID: "nope",
			Filter: filter.MustParse(`k = "v"`), LastSeq: 3, Junction: "b3", Epoch: 1,
		}),
	})
	h.settle()
	after, _ := b2.TableSizes()
	if before != after {
		t.Errorf("stale fetch changed the table: %d -> %d", before, after)
	}
}

// TestDuplicateFetchSameEpochDropped verifies the fetch dedup: a second
// fetch of the same epoch must not re-flip entries.
func TestDuplicateFetchSameEpochDropped(t *testing.T) {
	h, rec := relocHarness(t)
	// Relocate C from b4 to b2 (real flow).
	if err := h.brokers["b4"].DetachClient("C"); err != nil {
		t.Fatal(err)
	}
	pubV(t, h, 1)
	h.settle()
	if err := h.brokers["b2"].AttachClient("C", rec.deliver); err != nil {
		t.Fatal(err)
	}
	if err := h.brokers["b2"].Subscribe(wire.Subscription{
		Filter: filter.MustParse(`k = "v"`), Client: "C", ID: "s",
		Relocate: true, LastSeq: 0, RelocEpoch: 1,
	}); err != nil {
		t.Fatal(err)
	}
	h.settle()
	if rec.len() != 1 {
		t.Fatalf("relocation delivered %d, want 1", rec.len())
	}
	// Replay a duplicate fetch of the same epoch at b3 (on the old path):
	// must be dropped, table unchanged.
	b3 := h.brokers["b3"]
	before, _ := b3.TableSizes()
	b3.Receive(inbound{
		From: wire.BrokerHop("b2"),
		Msg: wire.NewFetch(wire.Fetch{
			Client: "C", ID: "s",
			Filter: filter.MustParse(`k = "v"`), LastSeq: 0, Junction: "b2", Epoch: 1,
		}),
	})
	h.settle()
	after, _ := b3.TableSizes()
	if before != after {
		t.Errorf("duplicate fetch mutated b3: %d -> %d", before, after)
	}
	// Traffic still flows exactly once to the new location.
	pubV(t, h, 2)
	h.settle()
	if rec.len() != 2 {
		t.Errorf("post-duplicate-fetch delivery count = %d, want 2", rec.len())
	}
}

// TestReplayWithNoItems covers a relocation where nothing was missed: the
// replay is empty but must still unblock the pending buffer.
func TestReplayWithNoItems(t *testing.T) {
	h, rec := relocHarness(t)
	if err := h.brokers["b4"].DetachClient("C"); err != nil {
		t.Fatal(err)
	}
	// No traffic while away.
	if err := h.brokers["b2"].AttachClient("C", rec.deliver); err != nil {
		t.Fatal(err)
	}
	if err := h.brokers["b2"].Subscribe(wire.Subscription{
		Filter: filter.MustParse(`k = "v"`), Client: "C", ID: "s",
		Relocate: true, LastSeq: 0, RelocEpoch: 1,
	}); err != nil {
		t.Fatal(err)
	}
	h.settle()
	pubV(t, h, 1)
	h.settle()
	if rec.len() != 1 || rec.seqs()[0] != 1 {
		t.Fatalf("empty replay left the pipeline stuck: %v", rec.seqs())
	}
}

// TestUnsubscribeDuringRelocation withdraws the subscription while the
// relocation is pending; the overlay must clean up without delivering.
func TestUnsubscribeDuringRelocation(t *testing.T) {
	h, rec := relocHarness(t)
	if err := h.brokers["b4"].DetachClient("C"); err != nil {
		t.Fatal(err)
	}
	pubV(t, h, 1)
	h.settle()
	if err := h.brokers["b2"].AttachClient("C", rec.deliver); err != nil {
		t.Fatal(err)
	}
	if err := h.brokers["b2"].Subscribe(wire.Subscription{
		Filter: filter.MustParse(`k = "v"`), Client: "C", ID: "s",
		Relocate: true, LastSeq: 0, RelocEpoch: 1,
	}); err != nil {
		t.Fatal(err)
	}
	// Unsubscribe immediately (possibly before the replay lands — with
	// zero-latency links it already did, but the call must be safe either
	// way).
	if err := h.brokers["b2"].Unsubscribe("C", "s"); err != nil {
		t.Fatal(err)
	}
	h.settle()
	pubV(t, h, 2)
	h.settle()
	// No further deliveries after unsubscribe.
	for _, d := range rec.seqsDetail() {
		if d.Item.Seq > 1 {
			t.Errorf("delivery after unsubscribe: %+v", d)
		}
	}
}

// TestRelocationPreservesOtherClients makes sure flipping C's entries does
// not disturb an unrelated subscriber on the old path.
func TestRelocationPreservesOtherClients(t *testing.T) {
	h, rec := relocHarness(t)
	var other recorder
	if err := h.brokers["b3"].AttachClient("D", other.deliver); err != nil {
		t.Fatal(err)
	}
	f := filter.MustParse(`k = "v"`)
	if err := h.brokers["b3"].Subscribe(wire.Subscription{
		Filter: f, Client: "D", ID: "d",
	}); err != nil {
		t.Fatal(err)
	}
	h.settle()

	if err := h.brokers["b4"].DetachClient("C"); err != nil {
		t.Fatal(err)
	}
	pubV(t, h, 1)
	h.settle()
	if err := h.brokers["b2"].AttachClient("C", rec.deliver); err != nil {
		t.Fatal(err)
	}
	if err := h.brokers["b2"].Subscribe(wire.Subscription{
		Filter: f, Client: "C", ID: "s", Relocate: true, LastSeq: 0, RelocEpoch: 1,
	}); err != nil {
		t.Fatal(err)
	}
	h.settle()
	pubV(t, h, 2)
	h.settle()
	if other.len() != 2 {
		t.Errorf("bystander D received %d, want 2", other.len())
	}
	if rec.len() != 2 {
		t.Errorf("roamer C received %d, want 2", rec.len())
	}
}

// seqsDetail exposes the raw deliveries for edge-case assertions.
func (r *recorder) seqsDetail() []wire.Deliver {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]wire.Deliver, len(r.items))
	copy(out, r.items)
	return out
}
