package broker

import (
	"sync"

	"repro/internal/metrics"
	"repro/internal/routing"
	"repro/internal/wire"
)

// Parallel publish pipeline: when Options.Workers > 1, runs of consecutive
// publish tasks in a drained batch are matched on a pool of sharded worker
// goroutines instead of the run goroutine. Each worker matches against the
// same immutable routing-table snapshot (routing.Snapshot), so matching is
// lock-free and embarrassingly parallel; the run goroutine then applies
// the results — outbox writes and client deliveries — strictly in batch
// order, which makes the observable output byte-identical to the serial
// pipeline (see DESIGN.md, "Parallel publish pipeline").
//
// Jobs are sharded by publisher hop: all publishes of one publisher land
// on one worker and are matched in arrival order. With the ordered apply
// stage this is not needed for correctness — matching against an immutable
// snapshot is stateless — but it keeps each worker's cache hot on one
// publisher's stream and is the invariant a future out-of-order apply
// would rely on.

// minParallelRun is the smallest publish run worth dispatching to the
// pool; shorter runs are processed inline (identical output either way).
const minParallelRun = 4

// maxResultRetainCap bounds the per-slot hop/delivery slice capacity the
// pool keeps between runs; larger ones (grown by a pathological fan-out)
// are dropped and reallocated on demand.
const maxResultRetainCap = 1 << 12

// matchResult is one publish's routing decision, produced by a worker and
// consumed by the run goroutine's apply stage: the broker hops to forward
// to and the local subscriptions to deliver to, both deduplicated and in
// match (entry-key) order — exactly the order the serial path emits.
type matchResult struct {
	hops       []wire.Hop
	deliveries []subRef
}

// shardRun is the unit handed to one worker: the indices of this shard's
// jobs within the current run. snap/run/results are shared across shards;
// every worker writes only its own jobs' result slots.
type shardRun struct {
	snap    *routing.Snapshot
	run     []task
	results []matchResult
	idxs    []int32
	wg      *sync.WaitGroup
}

// workerPool owns the matching workers. It is created at New when
// Options.Workers > 1 and its goroutines run from Start until Close.
type workerPool struct {
	chans []chan *shardRun
	runs  []shardRun // one reusable shardRun per worker
	wg    sync.WaitGroup
	done  sync.WaitGroup

	results []matchResult // reusable per-run result slots

	// Observability, read by Stats through the broker. inflight covers a
	// whole dispatched run (raised before dispatch, dropped after the
	// barrier), so it is zero whenever the run goroutine is between runs —
	// including whenever a Stats closure observes it. It exists so an
	// asynchronous apply stage could be added without changing Stats, at
	// the cost of two atomic ops per run (not per job).
	inflight   metrics.Gauge        // jobs dispatched in the current run
	shardDepth metrics.Distribution // jobs per dispatched shard
	dispatches uint64               // parallel runs dispatched (run goroutine only)
	jobs       uint64               // publishes matched in parallel (run goroutine only)
}

func newWorkerPool(n int) *workerPool {
	p := &workerPool{
		chans: make([]chan *shardRun, n),
		runs:  make([]shardRun, n),
	}
	for i := range p.chans {
		p.chans[i] = make(chan *shardRun, 1)
	}
	return p
}

// start launches the worker goroutines.
func (p *workerPool) start() {
	for i := range p.chans {
		p.done.Add(1)
		go p.worker(p.chans[i])
	}
}

// stop shuts the workers down and waits for them to exit. Only called
// after the run goroutine has finished (no dispatch can be in flight).
func (p *workerPool) stop() {
	for _, c := range p.chans {
		close(c)
	}
	p.done.Wait()
}

// match dispatches one publish run to the pool and blocks until every
// job's result slot is filled. Called from the run goroutine only; the
// returned slice is owned by the pool and valid until the next call.
func (p *workerPool) match(snap *routing.Snapshot, run []task) []matchResult {
	if cap(p.results) < len(run) {
		p.results = make([]matchResult, len(run))
	}
	res := p.results[:len(run)]
	// Shed result slices a past run grew far beyond any plausible
	// fan-out — the worker-side counterpart of the serial path's scratch
	// shedding (the previous run's results are fully applied by now).
	for i := range res {
		if cap(res[i].hops) > maxResultRetainCap {
			res[i].hops = nil
		}
		if cap(res[i].deliveries) > maxResultRetainCap {
			res[i].deliveries = nil
		}
	}
	for i := range p.runs {
		p.runs[i].idxs = p.runs[i].idxs[:0]
	}
	for i := range run {
		sh := hopShard(run[i].in.From, len(p.runs))
		p.runs[sh].idxs = append(p.runs[sh].idxs, int32(i))
	}
	p.inflight.Add(int64(len(run)))
	p.dispatches++
	p.jobs += uint64(len(run))
	for i := range p.runs {
		if len(p.runs[i].idxs) == 0 {
			continue
		}
		p.wg.Add(1)
		p.runs[i].snap, p.runs[i].run, p.runs[i].results, p.runs[i].wg = snap, run, res, &p.wg
		p.shardDepth.Observe(uint64(len(p.runs[i].idxs)))
		p.chans[i] <- &p.runs[i]
	}
	p.wg.Wait()
	p.inflight.Add(-int64(len(run)))
	// Drop the run's references so the pool does not pin a superseded
	// snapshot or the drained batch's tasks between runs (idle shards
	// would otherwise keep them alive indefinitely). The result slots —
	// still being read by the caller — are shed at the top of the next
	// call instead.
	for i := range p.runs {
		p.runs[i].snap, p.runs[i].run, p.runs[i].results, p.runs[i].wg = nil, nil, nil, nil
	}
	return res
}

// worker is one matching goroutine: it consumes shard dispatches, matches
// each assigned publish against the run's snapshot, and fills the result
// slots. All state it touches is either immutable (snapshot, notification)
// or exclusively its own (scratch, its jobs' result slots).
func (p *workerPool) worker(ch chan *shardRun) {
	defer p.done.Done()
	var sc workerScratch
	sc.hops = make(map[wire.BrokerID]uint64)
	sc.subs = make(map[subRef]uint64)
	visit := sc.visitEntry // bind once: no per-job closure allocation
	for sr := range ch {
		for _, i := range sr.idxs {
			t := &sr.run[i]
			res := &sr.results[i]
			res.hops = res.hops[:0]
			res.deliveries = res.deliveries[:0]
			// Shed epoch-stamped dedup maps grown far beyond any live
			// fan-out, mirroring the serial path's pubScratch bound.
			if len(sc.subs) > pubScratchShedSize {
				clear(sc.subs)
			}
			if len(sc.hops) > pubScratchShedSize {
				clear(sc.hops)
			}
			sc.epoch++
			sc.res = res
			sr.snap.EachMatchingEntry(*t.in.Msg.Notif, t.in.From, visit)
		}
		sr.wg.Done()
	}
}

// workerScratch is one worker's per-publish dedup state: epoch-stamped
// maps, reused across every job the worker ever matches (the same trick as
// the serial path's pubScratch).
type workerScratch struct {
	epoch uint64
	hops  map[wire.BrokerID]uint64
	subs  map[subRef]uint64
	res   *matchResult
}

// visitEntry records one matching table row into the current result slot,
// preserving first-occurrence (entry-key) order per hop and subscription —
// the same dedup the serial visitPublishEntry applies.
func (sc *workerScratch) visitEntry(e *routing.Entry) {
	if e.Hop.IsClient() {
		ref := subRef{client: e.Client, id: e.SubID}
		if sc.subs[ref] == sc.epoch {
			return
		}
		sc.subs[ref] = sc.epoch
		sc.res.deliveries = append(sc.res.deliveries, ref)
		return
	}
	if sc.hops[e.Hop.Broker] == sc.epoch {
		return
	}
	sc.hops[e.Hop.Broker] = sc.epoch
	sc.res.hops = append(sc.res.hops, e.Hop)
}

// hopShard maps a hop onto a shard (FNV-1a over the hop identity). The
// matching pool shards publishers by their arrival hop; the egress pool
// reuses it to pin each outgoing link to one writer shard — in both
// cases the property that matters is that one hop always lands on the
// same shard.
func hopShard(h wire.Hop, n int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	hash := uint64(offset64)
	for i := 0; i < len(h.Client); i++ {
		hash ^= uint64(h.Client[i])
		hash *= prime64
	}
	hash ^= '/'
	hash *= prime64
	for i := 0; i < len(h.Broker); i++ {
		hash ^= uint64(h.Broker[i])
		hash *= prime64
	}
	return int(hash % uint64(n))
}
