package broker

import (
	"net"
	"testing"
	"time"

	"repro/internal/filter"
	"repro/internal/message"
	"repro/internal/transport"
	"repro/internal/wire"
)

// TestTCPOverlayEndToEnd runs two brokers connected over a real TCP link
// (handshake, framing, wire codec) and checks subscription propagation,
// publish routing, and the relocation protocol across the wire.
func TestTCPOverlayEndToEnd(t *testing.T) {
	b1 := New("b1", Options{})
	b1.Start()
	t.Cleanup(b1.Close)
	b2 := New("b2", Options{})
	b2.Start()
	t.Cleanup(b2.Close)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })

	acceptDone := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			acceptDone <- err
			return
		}
		link, err := transport.AcceptTCP(conn, "b1", b1)
		if err != nil {
			acceptDone <- err
			return
		}
		acceptDone <- b1.AddLink(link.Peer().Broker, link)
	}()
	link2, err := transport.DialTCP(ln.Addr().String(), "b2", b2)
	if err != nil {
		t.Fatal(err)
	}
	if err := b2.AddLink(link2.Peer().Broker, link2); err != nil {
		t.Fatal(err)
	}
	if err := <-acceptDone; err != nil {
		t.Fatal(err)
	}

	var rec recorder
	if err := b1.AttachClient("c", rec.deliver); err != nil {
		t.Fatal(err)
	}
	if err := b2.AttachClient("p", nil); err != nil {
		t.Fatal(err)
	}
	f := filter.MustParse(`svc = "tcp" && n >= 0`)
	if err := b2.Advertise("p", "adv", f); err != nil {
		t.Fatal(err)
	}
	if err := b1.Subscribe(wire.Subscription{Filter: f, Client: "c", ID: "s", IsMobile: true}); err != nil {
		t.Fatal(err)
	}

	// TCP delivery is asynchronous: wait for the subscription to land.
	waitTCP(t, func() bool {
		subs, _ := b2.TableSizes()
		return subs >= 1
	})

	for i := int64(0); i < 5; i++ {
		if err := b2.Publish("p", message.New(map[string]message.Value{
			"svc": message.String("tcp"),
			"n":   message.Int(i),
		})); err != nil {
			t.Fatal(err)
		}
	}
	waitTCP(t, func() bool { return rec.len() == 5 })
	for i, s := range rec.seqs() {
		if s != uint64(i+1) {
			t.Fatalf("TCP FIFO/seq violated: %v", rec.seqs())
		}
	}

	// Roam across the TCP link: detach at b1, buffer, relocate to b2.
	if err := b1.DetachClient("c"); err != nil {
		t.Fatal(err)
	}
	for i := int64(5); i < 8; i++ {
		if err := b2.Publish("p", message.New(map[string]message.Value{
			"svc": message.String("tcp"),
			"n":   message.Int(i),
		})); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond) // let the buffered traffic settle at b1
	if err := b2.AttachClient("c", rec.deliver); err != nil {
		t.Fatal(err)
	}
	if err := b2.Subscribe(wire.Subscription{
		Filter: f, Client: "c", ID: "s",
		Relocate: true, LastSeq: 5, RelocEpoch: 1,
	}); err != nil {
		t.Fatal(err)
	}
	waitTCP(t, func() bool { return rec.len() == 8 })
	for i, s := range rec.seqs() {
		if s != uint64(i+1) {
			t.Fatalf("relocation over TCP broke ordering: %v", rec.seqs())
		}
	}
}

func waitTCP(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("timeout waiting for TCP overlay condition")
}
