package broker

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/filter"
	"repro/internal/message"
	"repro/internal/transport"
	"repro/internal/wire"
)

// TestParallelControlDataInterleaving storms a Workers>1 broker with
// publishes from several publisher hops while the test churns
// subscriptions through the control path, and checks the snapshot
// freshness contract: once a Subscribe call has returned (the ack), every
// later matching publish is delivered — it cannot be matched against a
// routing snapshot from before the ack — and once an Unsubscribe has
// returned, no later publish is delivered. The background storm keeps the
// worker pool saturated so the control messages land between (and split)
// parallel runs. Run under -race this also exercises the
// snapshot-immutability guarantees end to end.
func TestParallelControlDataInterleaving(t *testing.T) {
	b := New("hub", Options{Workers: 4})
	b.Start()
	defer b.Close()

	var mu sync.Mutex
	delivered := make(map[int64]int) // marker id -> count
	client := wire.ClientID("c")
	if err := b.AttachClient(client, func(d wire.Deliver) {
		if v, ok := d.Item.Notif.Get("marker"); ok {
			mu.Lock()
			delivered[v.IntVal()]++
			mu.Unlock()
		}
	}); err != nil {
		t.Fatal(err)
	}

	// Background storm: several publisher hops push matching and
	// non-matching noise (no marker attribute) concurrently with the
	// control churn below.
	stop := make(chan struct{})
	var storm sync.WaitGroup
	for p := 0; p < 3; p++ {
		p := p
		storm.Add(1)
		go func() {
			defer storm.Done()
			from := wire.ClientHop(wire.ClientID(fmt.Sprintf("noise%d", p)))
			rng := rand.New(rand.NewSource(int64(p)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				n := message.New(map[string]message.Value{
					"topic": message.String(fmt.Sprintf("t%d", rng.Intn(4))),
					"i":     message.Int(int64(i)),
				})
				b.Receive(transport.Inbound{From: from, Msg: wire.NewPublish(n)})
			}
		}()
	}

	marker := int64(0)
	pubMarker := func(topic string, from wire.Hop) int64 {
		marker++
		n := message.New(map[string]message.Value{
			"topic":  message.String(topic),
			"marker": message.Int(marker),
		})
		b.Receive(transport.Inbound{From: from, Msg: wire.NewPublish(n)})
		return marker
	}

	const rounds = 40
	const markersPerRound = 25
	mainHop := wire.ClientHop("main-pub")
	for round := 0; round < rounds; round++ {
		topic := fmt.Sprintf("t%d", round%4)
		subID := wire.SubID(fmt.Sprintf("s%d", round))
		f := filter.MustNew(filter.EQ("topic", message.String(topic)))
		// Subscribe ack: the control message has been processed by the
		// run loop, so the next publish run's snapshot must include it.
		if err := b.Subscribe(wire.Subscription{Filter: f, Client: client, ID: subID}); err != nil {
			t.Fatal(err)
		}
		var expect []int64
		for k := 0; k < markersPerRound; k++ {
			expect = append(expect, pubMarker(topic, mainHop))
		}
		b.Barrier()
		mu.Lock()
		for _, m := range expect {
			if delivered[m] != 1 {
				mu.Unlock()
				t.Fatalf("round %d: marker %d delivered %d times (stale snapshot after sub ack?)",
					round, m, delivered[m])
			}
		}
		mu.Unlock()

		// Unsubscribe ack: markers published afterwards must never be
		// delivered, however the storm interleaves.
		if err := b.Unsubscribe(client, subID); err != nil {
			t.Fatal(err)
		}
		var ghosts []int64
		for k := 0; k < markersPerRound; k++ {
			ghosts = append(ghosts, pubMarker(topic, mainHop))
		}
		b.Barrier()
		mu.Lock()
		for _, m := range ghosts {
			if delivered[m] != 0 {
				mu.Unlock()
				t.Fatalf("round %d: marker %d delivered after unsub ack (snapshot older than ack)", round, m)
			}
		}
		mu.Unlock()
	}
	close(stop)
	storm.Wait()
	b.Barrier()

	st := b.Stats()
	if st.Workers != 4 {
		t.Fatalf("Workers = %d", st.Workers)
	}
	if st.WorkerRuns == 0 || st.WorkerJobs == 0 {
		t.Fatalf("storm never hit the parallel pipeline: %+v", st)
	}
	if st.SubSnapshots.Builds == 0 {
		t.Fatalf("no snapshots built: %+v", st.SubSnapshots)
	}
	if st.SubSnapshots.Gen < uint64(rounds) {
		t.Fatalf("snapshot generation %d below control churn %d", st.SubSnapshots.Gen, rounds)
	}
}

// TestStatsWorkerAggregation checks the Workers>1 Stats plumbing: the
// mailbox-depth aggregate stays non-negative under load, worker counters
// move, and shard-depth observability is populated.
func TestStatsWorkerAggregation(t *testing.T) {
	b := New("hub", Options{Workers: 3})
	b.Start()
	defer b.Close()

	client := wire.ClientID("c")
	var got atomic.Int64
	if err := b.AttachClient(client, func(wire.Deliver) { got.Add(1) }); err != nil {
		t.Fatal(err)
	}
	f := filter.MustParse(`k = "v"`)
	if err := b.Subscribe(wire.Subscription{Filter: f, Client: client, ID: "s"}); err != nil {
		t.Fatal(err)
	}

	n := message.New(map[string]message.Value{"k": message.String("v")})
	msg := wire.NewPublish(n)
	const total = 5000
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			from := wire.ClientHop(wire.ClientID(fmt.Sprintf("p%d", p)))
			for i := 0; i < total/4; i++ {
				b.Receive(transport.Inbound{From: from, Msg: msg})
			}
		}()
	}
	// Poll Stats concurrently with the storm: the aggregate depth must
	// never be negative and the snapshot must stay internally consistent.
	for i := 0; i < 20; i++ {
		st := b.Stats()
		if st.MailboxDepth < 0 {
			t.Fatalf("negative MailboxDepth %d", st.MailboxDepth)
		}
		if st.WorkerInflight < 0 {
			t.Fatalf("negative WorkerInflight %d", st.WorkerInflight)
		}
	}
	wg.Wait()
	b.Barrier()
	if got.Load() != total {
		t.Fatalf("delivered %d of %d", got.Load(), total)
	}
	st := b.Stats()
	if st.WorkerJobs == 0 || st.WorkerRuns == 0 {
		t.Fatalf("parallel pipeline unused: %+v", st)
	}
	if st.WorkerMaxShardDepth <= 0 || st.WorkerMeanShardDepth <= 0 {
		t.Fatalf("shard depth distribution empty: %+v", st)
	}
	if st.WorkerJobs > st.Processed[wire.TypePublish] {
		t.Fatalf("worker jobs %d exceed processed publishes %d", st.WorkerJobs, st.Processed[wire.TypePublish])
	}
	if st.WorkerInflight != 0 {
		t.Fatalf("inflight %d after barrier", st.WorkerInflight)
	}
}

// TestWorkersSerialEquivalenceSmallRuns checks that runs shorter than the
// dispatch threshold take the inline path and still deliver identically
// (Workers>1 with trickle traffic must not change behavior).
func TestWorkersSerialEquivalenceSmallRuns(t *testing.T) {
	b := New("hub", Options{Workers: 4, MaxBatch: 2}) // batches below minParallelRun
	b.Start()
	defer b.Close()
	client := wire.ClientID("c")
	var got atomic.Int64
	if err := b.AttachClient(client, func(wire.Deliver) { got.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if err := b.Subscribe(wire.Subscription{
		Filter: filter.MustParse(`k = "v"`), Client: client, ID: "s",
	}); err != nil {
		t.Fatal(err)
	}
	n := message.New(map[string]message.Value{"k": message.String("v")})
	for i := 0; i < 100; i++ {
		b.Receive(transport.Inbound{From: wire.ClientHop("p"), Msg: wire.NewPublish(n)})
	}
	b.Barrier()
	if got.Load() != 100 {
		t.Fatalf("delivered %d of 100", got.Load())
	}
	if st := b.Stats(); st.WorkerJobs != 0 {
		t.Fatalf("sub-threshold runs were dispatched to workers: %+v", st)
	}
}
