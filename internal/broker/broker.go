// Package broker implements the Rebeca-style content-based broker of the
// paper: the message loop, routing tables, client management with
// per-subscription sequence numbering, the physical-mobility relocation
// protocol of Section 4 (virtual counterparts, junction detection, fetch,
// replay), and the logical-mobility location-dependent filter handling of
// Section 5 (ploc widening, location updates, adaptivity).
package broker

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/filter"
	"repro/internal/flow"
	"repro/internal/locfilter"
	"repro/internal/message"
	"repro/internal/metrics"
	"repro/internal/routing"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Errors returned by broker client-facing operations.
var (
	ErrUnknownClient   = errors.New("broker: unknown client")
	ErrDuplicateSub    = errors.New("broker: duplicate subscription id")
	ErrUnknownSub      = errors.New("broker: unknown subscription")
	ErrClosed          = errors.New("broker: closed")
	ErrInvalidMove     = errors.New("broker: move not allowed by movement graph")
	ErrAlreadyAttached = errors.New("broker: client already attached")
)

// inbound aliases the transport type for brevity inside the package.
type inbound = transport.Inbound

// DeliverFunc receives notifications for an attached client. It is called
// on the broker goroutine and must not block; client libraries queue
// internally.
type DeliverFunc func(wire.Deliver)

// Options configures a broker.
type Options struct {
	// Strategy selects subscription forwarding (default Covering).
	Strategy routing.Strategy
	// Registry provides shared movement graphs for location-dependent
	// subscriptions. May be nil when logical mobility is unused.
	Registry *locfilter.Registry
	// ProcDelay is this broker's estimate δ of the time it needs to
	// process a batch of sub/unsub messages toward the next hop; it feeds
	// the adaptivity scheme of Section 5.3.
	ProcDelay time.Duration
	// Counter, when set, counts client deliveries (link traffic is counted
	// by the transport pipes).
	Counter *metrics.Counter
	// MaxBufferPerSub caps the virtual-counterpart and relocation buffers
	// per subscription ("completeness within the boundaries of time and/or
	// space limitations of buffering approaches", Section 4.1). Zero means
	// DefaultMaxBufferPerSub.
	MaxBufferPerSub int
	// RelocBufferCap caps the two relocation-side buffers per
	// subscription independently of MaxBufferPerSub: the pending buffer
	// at the new border broker (notifications arriving over the new path
	// while the replay is outstanding) and replay items parked at
	// completion for a client that has already disconnected again.
	// Overflow drops the oldest buffered notification and counts it in
	// Stats.RelocBufferDrops — the space half of Section 4.1's
	// "completeness within the boundaries of time and/or space
	// limitations", mirroring how Options.RelocTimeout bounds the same
	// buffers in time. Zero means MaxBufferPerSub.
	RelocBufferCap int
	// MaxBatch caps how many queued tasks the message loop drains per
	// mailbox lock acquisition. Zero (the default) drains everything
	// pending; 1 reproduces the unbatched one-message-per-lock pipeline
	// and exists for the delivery-order parity tests and as the benchmark
	// baseline.
	MaxBatch int
	// MailboxCapacity bounds the broker mailbox (tasks); 0 (the default)
	// keeps it unbounded, the seed behavior. The bound applies to
	// notifications only: control tasks — closures and every non-publish
	// message — are always admitted (see internal/flow).
	MailboxCapacity int
	// MailboxPolicy selects the overload behavior of a bounded mailbox:
	// Block (the default) stalls producers with watermark hysteresis,
	// DropOldest and ShedNewest trade notification loss for bounded
	// memory. Ignored when MailboxCapacity is 0.
	//
	// Block is lossless — delivery output is byte-identical to the
	// unbounded broker for any capacity — but on topologies where two
	// neighbors push data at each other it can deadlock the pair of run
	// loops (each blocked pushing into the other's full mailbox). Use it
	// on feed-forward flows, or prefer the shedding policies for
	// arbitrary traffic.
	MailboxPolicy flow.Policy
	// RelocTimeout bounds how long a relocation re-subscription's pending
	// buffer waits for the replay from the old border broker. The planned
	// relocation protocol always produces a replay, but after an unplanned
	// broker crash there is no counterpart left to replay from; the
	// timeout flushes the buffered notifications as live traffic so a
	// failed-over subscriber resumes delivery instead of buffering forever
	// ("completeness within the boundaries of time ... limitations",
	// Section 4.1). Zero means DefaultRelocTimeout; negative disables the
	// timeout (the strict protocol, for the mobility tests).
	RelocTimeout time.Duration
	// EgressWriters sets the egress parallelism: the number of writer
	// shards link writes are distributed over. 0 (the default) keeps the
	// seed behavior — flushOutbox performs every SendBatch/Flush (and its
	// syscall) inline on the run goroutine. With N >= 1, each link is
	// pinned to one of N writer goroutines by hashing its hop, flushOutbox
	// becomes a non-blocking handoff, and links are written concurrently;
	// per-link FIFO and the delivery sequences are byte-identical to the
	// inline path for any N (see internal/broker/egress.go).
	EgressWriters int
	// EgressWindow bounds each writer shard's handoff queue in messages;
	// 0 (the default) keeps it unbounded. The bound composes with the
	// three-class flow model: publishes obey EgressPolicy, deliveries
	// stall losslessly, control messages are always admitted.
	EgressWindow int
	// EgressPolicy selects the overload behavior of a bounded egress
	// window: Block (the default) stalls the run loop until the shard
	// drains — backpressure reaches exactly the producers of that shard's
	// links — DropOldest and ShedNewest shed notifications instead.
	// Ignored when EgressWindow is 0.
	EgressPolicy flow.Policy
	// Workers sets the matching parallelism of the publish pipeline: runs
	// of consecutive publish messages in a drained batch are matched on
	// this many sharded worker goroutines against an immutable snapshot
	// of the routing table, with results applied in batch order by the
	// run goroutine. 0 or 1 (the default) keeps the fully serial
	// pipeline; the observable delivery and forwarding sequences are
	// byte-identical either way (the workers only parallelize the pure
	// matching step). Control messages — sub/unsub, advertisements,
	// relocation, closures — always serialize through the run loop and
	// act as barriers between publish runs. Ignored under the Flooding
	// strategy, whose "matching" is a broadcast.
	Workers int
}

// DefaultMaxBufferPerSub is the default per-subscription buffer cap.
const DefaultMaxBufferPerSub = 65536

// DefaultRelocTimeout is the default bound on how long a relocation waits
// for its replay before the pending buffer is flushed as live traffic
// (see Options.RelocTimeout).
const DefaultRelocTimeout = 5 * time.Second

// Broker is one node of the overlay. All state is owned by the run
// goroutine; external entry points post tasks to the mailbox.
type Broker struct {
	id   wire.BrokerID
	opts Options

	box  *mailbox
	done chan struct{}

	// State below is owned by the run goroutine.
	links   map[wire.BrokerID]transport.Link
	clients map[wire.ClientID]*clientState
	subs    *routing.Table // subscription routing table
	advs    *routing.Table // advertisement table
	fwd     *routing.Forwarder
	advFwd  map[string]map[string]bool // advKey -> hops forwarded to

	// Per-client-subscription propagation state.
	clientSubFwd map[string][]wire.Hop         // key -> hops the sub was forwarded to
	knownSubs    map[string]wire.Subscription  // key -> last seen per-client subscription
	locSubs      map[string]*locSubState       // key -> location-dependent state
	fetched      map[string]uint64             // key -> last relocation epoch fetched
	pending      map[string]*relocationPending // key -> buffer at the NEW border broker

	// processed counts messages handled, by type (observability). An array
	// instead of a map keeps the per-task bump off the allocator and the
	// hash path; wire types fit comfortably.
	processed [processedTypes]uint64

	// Batched-pipeline state (owned by the run goroutine).
	out            outbox               // per-hop deferred link writes, flushed at batch boundaries
	pubSeen        pubScratch           // epoch-stamped fan-out dedup, reused across publishes
	pub            pubCtx               // per-publish routing context for the match visitor
	encLinks       int                  // links that serialize frames (transport.FrameEncoder)
	batchDepth     metrics.Distribution // tasks per mailbox drain
	flushDepth     metrics.Distribution // messages per per-link outbox flush burst
	batchRemaining int                  // unprocessed tail of the current batch, set at closure boundaries
	relocDrops     uint64               // notifications dropped from relocation-pending buffers

	// Relocation lifecycle counters and the replay-size distribution
	// (owned by the run goroutine except replaySizes, which is atomic).
	relocStarted     uint64               // re-subscriptions that opened a pending replay buffer
	relocCompleted   uint64               // relocations completed by a replay at this broker
	relocExpired     uint64               // pending buffers flushed by RelocTimeout instead of a replay
	relocReplayDrops uint64               // replay items dropped by the relocation buffer cap
	replaySizes      metrics.Distribution // items per replay batch sent from local counterparts

	// Control-plane admin traffic sent by the forwarding strategy
	// (aggregate subscribe/unsubscribe messages toward neighbors).
	ctrlSubsSent   uint64
	ctrlUnsubsSent uint64

	// pool is the parallel matching pool, nil when the pipeline is
	// serial (Workers <= 1 or Flooding).
	pool *workerPool

	// egress is the sharded link-writer pool, nil when egress is inline
	// (EgressWriters == 0). egressFlushLat times the per-burst link
	// writes (atomic: writers observe, Stats reads); sendErrs counts
	// failed link writes per hop across both paths.
	egress         *egressPool
	egressFlushLat metrics.Distribution
	sendErrs       linkErrTracker

	// killed marks a crash-stopped broker (Kill): the run loop discards
	// batches instead of processing them, simulating kill -9 for the
	// federation repair tests and the blackout experiment.
	killed atomic.Bool

	closeOnce sync.Once
}

// processedTypes sizes the processed counter array; tied to the wire
// constant set so new message types are counted automatically.
const processedTypes = int(wire.TypeCount)

// pubScratchShedSize bounds the epoch-stamped dedup maps: once churn has
// grown one past this, its entries are cleared wholesale (stale entries
// are otherwise only invalidated, never deleted).
const pubScratchShedSize = 4096

// outbox collects the messages a batch produces per neighbor, in first-use
// order, so each link receives one FIFO burst per flush instead of a write
// per message. All link traffic is deferred through it — deferring only
// notifications would reorder them against control messages and break the
// relocation protocol's FIFO argument.
type outbox struct {
	order   []wire.BrokerID
	pending map[wire.BrokerID][]wire.Message
}

// pubScratch replaces the per-publish seen-hop/seen-subscription map
// allocations with epoch-stamped entries (the same trick as the routing
// index's counting arrays): bumping the epoch invalidates every entry in
// O(1), so the maps are reused across all publishes of a batch — and
// across batches — without clearing.
type pubScratch struct {
	epoch uint64
	hops  map[wire.BrokerID]uint64
	subs  map[subRef]uint64
}

// subRef identifies a client subscription without building a key string.
type subRef struct {
	client wire.ClientID
	id     wire.SubID
}

// pubCtx carries one publish through the table's match visitor without a
// per-publish closure allocation: visit is bound once at construction and
// reads the notification, arrival hop, and lazily built fan-out message
// from here. Owned by the run goroutine.
type pubCtx struct {
	visit func(*routing.Entry)
	n     message.Notification
	from  wire.Hop
	msg   wire.Message // the shared fan-out envelope; zero until first broker hop
	// deliveries collects the local subscriptions a publish matched; they
	// are delivered after the match visit returns, so client callbacks
	// (arbitrary user code, including blocking remote-client writes)
	// never run under the routing table's lock. Reused across publishes.
	deliveries []subRef
}

// Stats is a snapshot of a broker's processed-message counters.
type Stats struct {
	// Processed counts inbound messages handled by the message loop, by
	// wire type (client-API calls count under their wire equivalents).
	Processed map[wire.Type]uint64
	// SubEntries and AdvEntries are the current routing-table sizes.
	SubEntries, AdvEntries int
	// SubIndex and AdvIndex describe the predicate match index backing
	// each routing table (posting-list shape, match-all rows).
	SubIndex, AdvIndex routing.IndexStats
	// MailboxDepth is the number of queued, not yet processed tasks,
	// aggregated across the mailbox, the drained-but-unprocessed tail of
	// the current batch, and — when Workers > 1 — the jobs currently in
	// flight on the matching workers, so the reading cannot go stale or
	// negative whichever pipeline is active.
	MailboxDepth int
	// BatchesProcessed counts mailbox drains executed by the message loop;
	// MaxBatchSize is the largest single drain and MeanBatchSize the
	// average (batch-depth observability for the batched pipeline).
	BatchesProcessed uint64
	MaxBatchSize     int
	MeanBatchSize    float64
	// RelocationPendingDrops counts notifications dropped from
	// relocation-pending buffers because they exceeded the relocation
	// buffer cap (the relocation-side counterpart of clientSub overflow).
	RelocationPendingDrops uint64
	// RelocBufferDrops totals the drop-oldest evictions from both
	// relocation-side buffers under Options.RelocBufferCap: the pending
	// buffer at the new border broker (also counted in
	// RelocationPendingDrops) and replay items parked at completion for a
	// disconnected client.
	RelocBufferDrops uint64
	// RelocationsStarted / RelocationsCompleted / RelocationsExpired
	// count this broker's border-side relocation lifecycle:
	// re-subscriptions that opened a pending replay buffer, replays that
	// completed one, and pending buffers flushed by RelocTimeout because
	// the replay never came (crashed old border broker).
	RelocationsStarted   uint64
	RelocationsCompleted uint64
	RelocationsExpired   uint64
	// ReplayBatches / ReplayMeanItems / ReplayMaxItems describe the
	// replay batches this broker's virtual counterparts sent back toward
	// relocated clients — the per-relocation replay size distribution.
	ReplayBatches   uint64
	ReplayMeanItems float64
	ReplayMaxItems  uint64
	// Workers is the configured matching parallelism (1 = serial).
	// WorkerRuns counts parallel publish runs dispatched to the pool and
	// WorkerJobs the publishes matched there; WorkerMaxShardDepth /
	// WorkerMeanShardDepth describe how many jobs each dispatched shard
	// carried (the worker-depth distribution); WorkerInflight is the
	// number of jobs dispatched but not yet applied. Because Stats
	// serializes through the run loop — which blocks on each run's apply
	// barrier — WorkerInflight is always 0 here; it is reported so the
	// MailboxDepth aggregation stays correct if an asynchronous apply
	// stage is ever added.
	Workers              int
	WorkerRuns           uint64
	WorkerJobs           uint64
	WorkerMaxShardDepth  int
	WorkerMeanShardDepth float64
	WorkerInflight       int
	// SubSnapshots reports the subscription table's copy-on-write
	// snapshot activity (mutation generation, build/clone/rebuild
	// counts).
	SubSnapshots routing.SnapshotStats
	// ControlSubsSent and ControlUnsubsSent count the administrative
	// subscribe/unsubscribe messages this broker's forwarding strategy
	// sent to neighbors — the per-strategy admin traffic Figure 9
	// compares. CoverChecksSaved is the number of pairwise cover tests
	// the incremental control plane's signature buckets avoided
	// (Forwarder carries the full breakdown).
	ControlSubsSent   uint64
	ControlUnsubsSent uint64
	CoverChecksSaved  uint64
	// Forwarder describes the subscription-forwarding control plane:
	// strategy, incrementality, tracked/forwarded filter counts, and
	// cover-check work.
	Forwarder routing.ForwarderStats
	// Mailbox is the flow-control snapshot of the broker mailbox:
	// configured capacity and policy, depth high-water mark, credit
	// stalls, and drops by policy (all zero counters when unbounded).
	Mailbox flow.Stats
	// LinkFlow reports the send-window flow snapshot of each neighbor
	// link that exposes one (flow.Reporter: windowed ChanLinks, the
	// TCPLink frame ring), keyed by neighbor — the per-link queue-depth
	// distribution that makes a slow consumer visible at its own link.
	LinkFlow map[wire.BrokerID]flow.Stats
	// LinkCreditStalls, LinkDroppedOldest and LinkShedNewest aggregate
	// the per-link counters across LinkFlow: how often this broker was
	// stalled waiting for link credit, and how many notifications its
	// link windows dropped, by policy. LinkQueueHighWater is the largest
	// send-window depth any link reached.
	LinkCreditStalls   uint64
	LinkDroppedOldest  uint64
	LinkShedNewest     uint64
	LinkQueueHighWater int
	// FlushMaxBurst and FlushMeanBurst describe the per-link bursts
	// flushOutbox hands to links at batch boundaries (the sending-side
	// counterpart of the mailbox batch-depth distribution).
	FlushMaxBurst  int
	FlushMeanBurst float64
	// LinkSendErrors counts failed link writes (Send/SendBatch/Flush) per
	// hop, across both the inline and the egress-writer paths; nil when
	// every write has succeeded. LinkSendErrorsTotal is the sum. The
	// first failure of each link transition is also logged (once).
	LinkSendErrors      map[wire.Hop]uint64
	LinkSendErrorsTotal uint64
	// EgressWriters is the configured egress parallelism (0 = inline
	// writes on the run goroutine). EgressShards snapshots each writer
	// shard's handoff queue — capacity/policy, depth, high-water, credit
	// stalls, drops — and EgressQueueHighWater / EgressCreditStalls /
	// EgressDroppedOldest / EgressShedNewest aggregate those across
	// shards. Because Stats serializes through the run loop, which runs a
	// drain barrier before every closure, the observed depths are always
	// 0 here; high-water and the counters carry the signal.
	EgressWriters        int
	EgressShards         []flow.Stats
	EgressQueueHighWater int
	EgressCreditStalls   uint64
	EgressDroppedOldest  uint64
	EgressShedNewest     uint64
	// EgressFlushes counts per-link write bursts performed by the egress
	// writers; EgressFlushMeanNs / EgressFlushMaxNs describe how long the
	// link calls took (the syscall latency the run loop no longer pays).
	EgressFlushes     uint64
	EgressFlushMeanNs float64
	EgressFlushMaxNs  uint64
}

// clientState tracks an attached (or roaming-away) client.
type clientState struct {
	id        wire.ClientID
	deliver   DeliverFunc
	connected bool
	subs      map[wire.SubID]*clientSub
	advs      map[wire.SubID]filter.Filter
}

// clientSub is one subscription of a locally attached client, including
// its delivery sequence numbering and — while the client is disconnected —
// the virtual counterpart's buffer (Section 4.1).
type clientSub struct {
	sub      wire.Subscription
	exact    filter.Filter // client-side filter F0 (locdep: exact location)
	nextSeq  uint64
	buffer   []wire.SeqNotification
	overflow uint64 // notifications dropped due to the buffer cap
}

// relocationPending buffers notifications arriving over the new path while
// the relocation replay is still outstanding, so the old messages can be
// delivered first ("delivers the old messages from B6 first", Section 4.1).
// When Options.RelocTimeout is enabled, timer bounds the wait: an
// unplanned crash of the old border broker means no replay ever comes,
// and the timeout flushes the buffer as live traffic instead (epoch
// guards a flush racing a newer relocation of the same subscription).
type relocationPending struct {
	client wire.ClientID
	id     wire.SubID
	epoch  uint64
	notifs []message.Notification
	timer  *time.Timer
}

// locSubState is the per-broker state of a location-dependent subscription
// passing through this broker.
type locSubState struct {
	sub   wire.Subscription // as received (Filter holds the marker template)
	step  int               // widening step of this broker's table entry
	entry filter.Filter     // current instantiated entry filter
	from  wire.Hop          // downstream hop (toward the consumer)
	fwdTo []wire.Hop        // upstream hops the subscription was forwarded to
}

// New creates a broker. Call Run (usually via Start) to process messages.
func New(id wire.BrokerID, opts Options) *Broker {
	if opts.Strategy == 0 {
		opts.Strategy = routing.Covering
	}
	if opts.MaxBufferPerSub == 0 {
		opts.MaxBufferPerSub = DefaultMaxBufferPerSub
	}
	if opts.RelocBufferCap == 0 {
		opts.RelocBufferCap = opts.MaxBufferPerSub
	}
	b := &Broker{
		id:           id,
		opts:         opts,
		box:          newMailbox(opts.MaxBatch, opts.MailboxCapacity, opts.MailboxPolicy),
		done:         make(chan struct{}),
		links:        make(map[wire.BrokerID]transport.Link),
		clients:      make(map[wire.ClientID]*clientState),
		subs:         routing.NewTable(),
		advs:         routing.NewTable(),
		fwd:          routing.NewForwarder(opts.Strategy),
		advFwd:       make(map[string]map[string]bool),
		clientSubFwd: make(map[string][]wire.Hop),
		knownSubs:    make(map[string]wire.Subscription),
		locSubs:      make(map[string]*locSubState),
		fetched:      make(map[string]uint64),
		pending:      make(map[string]*relocationPending),
		out:          outbox{pending: make(map[wire.BrokerID][]wire.Message)},
		pubSeen: pubScratch{
			hops: make(map[wire.BrokerID]uint64),
			subs: make(map[subRef]uint64),
		},
	}
	b.pub.visit = b.visitPublishEntry
	if opts.Workers > 1 && opts.Strategy != routing.Flooding {
		b.pool = newWorkerPool(opts.Workers)
	}
	if opts.EgressWriters > 0 {
		b.egress = newEgressPool(b, opts.EgressWriters, flow.Options{
			Capacity: opts.EgressWindow,
			Policy:   opts.EgressPolicy,
		})
	}
	return b
}

// ID returns the broker's identity.
func (b *Broker) ID() wire.BrokerID { return b.id }

// Start launches the message loop and, when configured, the matching
// worker pool (Workers > 1) and the egress writer pool (EgressWriters > 0).
func (b *Broker) Start() {
	if b.pool != nil {
		b.pool.start()
	}
	if b.egress != nil {
		b.egress.start()
	}
	go b.run()
}

// Close stops the message loop after draining queued tasks and closes all
// links. It is safe to call multiple times.
func (b *Broker) Close() {
	b.closeOnce.Do(func() {
		b.box.close()
		<-b.done
	})
}

// Kill crash-stops the broker: unlike Close, queued and in-flight tasks
// are discarded unprocessed and nothing is flushed — the closest an
// in-process broker gets to kill -9. Pending exec calls (and any client
// API call serialized through the mailbox) unblock with ErrClosed. Used
// by the federation layer to simulate unplanned broker death; a killed
// broker never recovers (a rejoin is a new Broker).
func (b *Broker) Kill() {
	b.killed.Store(true)
	b.Close()
}

// Receive implements transport.Receiver: links push inbound messages here.
func (b *Broker) Receive(in inbound) {
	b.box.push(task{in: in})
}

// ReceiveBurst implements transport.BatchReceiver: a link-level burst
// enters the mailbox under a single lock acquisition.
func (b *Broker) ReceiveBurst(from wire.Hop, ms []wire.Message) {
	b.box.pushBurst(from, ms)
}

var _ transport.Receiver = (*Broker)(nil)
var _ transport.BatchReceiver = (*Broker)(nil)

// exec runs fn on the broker goroutine and waits for completion.
func (b *Broker) exec(fn func()) error {
	doneCh := make(chan struct{})
	b.box.push(task{fn: func() {
		defer close(doneCh)
		fn()
	}})
	select {
	case <-doneCh:
		return nil
	case <-b.done:
		return ErrClosed
	}
}

func (b *Broker) run() {
	defer close(b.done)
	if b.pool != nil {
		defer b.pool.stop()
	}
	for {
		batch, ok := b.box.popBatch()
		if !ok {
			if b.egress != nil {
				// Drain the writer shards before closing the links, so
				// every accepted handoff still reaches the wire.
				b.egress.stop()
			}
			for _, l := range b.links {
				_ = l.Close()
			}
			return
		}
		if b.killed.Load() {
			// Crash-stopped: drop the batch on the floor (no handlers, no
			// outbox flush) and keep draining until the mailbox closes.
			b.box.recycle(batch)
			continue
		}
		b.processBatch(batch)
		b.box.recycle(batch)
	}
}

// processBatch handles one mailbox drain as a unit: inbound messages run
// their handlers with link writes deferred into the outbox, and the
// outbox flushes at the end of the batch. A control closure forces a
// flush first, preserving the exec/Barrier contract that every earlier
// task's output is on the wire before the closure observes the broker.
//
// With a worker pool, maximal runs of consecutive publish tasks are
// matched in parallel against one immutable routing snapshot and applied
// in batch order (processPublishRun); everything else — control messages,
// closures — serializes through this loop and thereby acts as a barrier
// between runs, so a publish can never be matched against routing state
// older than the last control message processed before it.
func (b *Broker) processBatch(batch []task) {
	b.batchDepth.Observe(uint64(len(batch)))
	for i := 0; i < len(batch); {
		t := &batch[i]
		if t.fn != nil {
			b.flushOutbox()
			if b.egress != nil {
				// With asynchronous egress, a flushed burst is only in a
				// shard queue; the drain barrier extends the contract to
				// the wire before the closure runs.
				b.egress.drainBarrier()
			}
			// Closures (Stats among them) observe the drained-but-
			// unprocessed tail of this batch as queue depth.
			b.batchRemaining = len(batch) - i - 1
			t.fn()
			i++
			continue
		}
		if b.pool != nil && isPublishTask(t) {
			j := i + 1
			for j < len(batch) && isPublishTask(&batch[j]) {
				j++
			}
			if j-i >= minParallelRun {
				b.processed[wire.TypePublish] += uint64(j - i)
				b.processPublishRun(batch[i:j])
				i = j
				continue
			}
		}
		if int(t.in.Msg.Type) < processedTypes {
			b.processed[t.in.Msg.Type]++
		}
		if t.in.From.IsClient() {
			b.clientInbound(t.in.From, t.in.Msg)
			i++
			continue
		}
		b.dispatch(t.in)
		i++
	}
	b.flushOutbox()
}

// isPublishTask reports whether a task is an inbound publish eligible for
// parallel matching (client- and broker-hop publishes both go through
// handlePublish on the serial path).
func isPublishTask(t *task) bool {
	return t.fn == nil && t.in.Msg.Type == wire.TypePublish && t.in.Msg.Notif != nil
}

// processPublishRun matches one run of consecutive publishes on the worker
// pool — all against the same immutable routing snapshot, sharded by
// publisher hop — and then applies each result in batch order on the run
// goroutine: outbox writes first, local deliveries second, exactly the
// order and dedup the serial handlePublish emits. Per-link FIFO follows
// from the ordered apply feeding the per-hop outboxes, which a single
// flusher (flushOutbox) drains at the next batch boundary.
func (b *Broker) processPublishRun(run []task) {
	results := b.pool.match(b.subs.Snapshot(), run)
	for i := range run {
		b.applyPublish(&run[i], &results[i])
	}
}

// applyPublish turns one worker-produced match result into observable
// output. Runs on the run goroutine: all client and link state is owned
// here, so the parallel pipeline's writes stay single-threaded. The
// inbound envelope is forwarded as-is — publishes that arrived over TCP
// carry the decoded frame, so a transit broker's fan-out reuses those
// bytes instead of re-encoding.
func (b *Broker) applyPublish(t *task, r *matchResult) {
	n := *t.in.Msg.Notif
	msg := t.in.Msg
	for _, hop := range r.hops {
		if _, ok := b.links[hop.Broker]; !ok {
			continue
		}
		b.maybePreencode(hop.Broker, &msg)
		b.send(hop, msg)
	}
	for _, ref := range r.deliveries {
		b.deliverTo(ref.client, ref.id, n, false)
	}
}

// flushOutbox moves every deferred message toward its link, one FIFO
// burst per neighbor: inline — write and flush the link right here — or,
// with an egress pool, hand the burst to the link's writer shard and
// return without blocking on the network. Runs on the broker goroutine.
func (b *Broker) flushOutbox() {
	if len(b.out.order) > 0 {
		var retained []wire.BrokerID
		for _, id := range b.out.order {
			msgs := b.out.pending[id]
			l, ok := b.links[id]
			if !ok {
				// Half-open link: a Connect in progress let inbound traffic
				// arrive before our AddLink ran. Keep the burst queued — the
				// batch boundary after AddLink flushes it. (RemoveLink deletes
				// the pending queue, so dead peers do not accumulate here.)
				if len(msgs) > 0 {
					retained = append(retained, id)
				}
				continue
			}
			if len(msgs) > 0 {
				b.flushDepth.Observe(uint64(len(msgs)))
				if b.egress != nil {
					// The shard queue copies the burst under its lock, so
					// the pending slice is immediately reusable below.
					b.egress.handoff(wire.BrokerHop(id), l, msgs)
				} else if err := sendBurst(l, msgs); err != nil {
					b.sendErrs.record(b.id, wire.BrokerHop(id), err)
				}
			}
			if cap(msgs) > maxOutboxRetainCap {
				// Let spike-sized buffers go to the GC whole instead of
				// pinning high-water memory per neighbor (mirrors the
				// mailbox's recycle cap).
				b.out.pending[id] = nil
				continue
			}
			for i := range msgs {
				msgs[i] = wire.Message{}
			}
			b.out.pending[id] = msgs[:0]
		}
		b.out.order = append(b.out.order[:0], retained...)
	}
	// Sweep the pending map when it has grown past the live set: an entry
	// whose neighbor is neither linked nor retained above (e.g. its spike
	// burst was nilled and the link later vanished) would otherwise keep
	// its map slot forever.
	if len(b.out.pending) > len(b.links)+len(b.out.order) {
		for id, q := range b.out.pending {
			if _, live := b.links[id]; live || len(q) > 0 {
				continue
			}
			delete(b.out.pending, id)
		}
	}
}

// maxOutboxRetainCap caps the per-neighbor outbox backing array kept
// across flushes.
const maxOutboxRetainCap = 1 << 14

// AddLink registers a link to a neighbor broker. The overlay must remain
// acyclic and connected (the system model of Section 2.1); Network in
// package core enforces this. The new neighbor's routing state is seeded
// from the current tables, so a broker joining — or re-attaching to — an
// overlay that already carries state learns it immediately instead of at
// the next table change:
//
//   - aggregate (plain) interest through the batch Recompute oracle,
//   - known advertisements through the flood dedup (reofferAdvs),
//   - per-client (mobile) subscriptions this broker holds delivery-path
//     entries for (reofferClientSubs).
//
// The last two make AddLink sufficient as the repair primitive after a
// broker crash: the surviving subtrees re-exchange everything a new edge
// needs to carry, with the same dedup state steady-state propagation
// uses, so repair introduces no parallel reseed logic.
func (b *Broker) AddLink(peer wire.BrokerID, l transport.Link) error {
	return b.exec(func() {
		if old, ok := b.links[peer]; ok {
			if _, enc := old.(transport.FrameEncoder); enc {
				b.encLinks--
			}
		}
		b.links[peer] = l
		if _, enc := l.(transport.FrameEncoder); enc {
			b.encLinks++
		}
		// A new link is a new error transition: its first failure should
		// be logged even if the old link to this peer failed before.
		b.sendErrs.reset(wire.BrokerHop(peer))
		hop := wire.BrokerHop(peer)
		b.sendForwardUpdate(b.fwd.Recompute(hop, b.aggregateInputs(hop)))
		b.reofferAdvs(hop)
		b.reofferClientSubs(hop)
	})
}

// reofferAdvs extends the advertisement flood across a new link: every
// known advertisement not learned from the new neighbor itself is offered
// to it, through the same advFwd dedup the flood handler uses (a hop that
// already saw the advertisement is skipped). Runs on the broker goroutine
// from AddLink.
func (b *Broker) reofferAdvs(hop wire.Hop) {
	for _, e := range b.advs.All() {
		if e.Hop == hop {
			continue
		}
		adv := wire.Subscription{Filter: e.Filter, Client: e.Client, ID: e.SubID}
		key := "adv:" + adv.Key() + ":" + adv.Filter.ID()
		sent := b.advFwd[key]
		if sent == nil {
			sent = make(map[string]bool)
			b.advFwd[key] = sent
		}
		if sent[hop.String()] {
			continue
		}
		sent[hop.String()] = true
		b.send(hop, wire.NewAdvertise(adv))
	}
}

// reofferClientSubs extends per-client subscription propagation across a
// new link. A subscription is offered when this broker is on its delivery
// path (it holds at least one live routing entry for the client/ID pair)
// and the entry does not already point at the new neighbor (then the
// neighbor is toward the consumer, not a direction to forward into).
// Advertisement gating matches propagateClientSub: with advertisements
// present, the subscription only crosses the link if an advertisement
// points that way (the late-advertiser case is covered by the peer's
// flushSubsToward when reofferAdvs lands); without any, it floods.
// Pre-subscriptions always cross. Runs on the broker goroutine from
// AddLink.
func (b *Broker) reofferClientSubs(hop wire.Hop) {
	for key, sub := range b.knownSubs {
		entries := b.subs.ClientEntries(sub.Client, sub.ID)
		if len(entries) == 0 {
			continue
		}
		toward := false
		for _, e := range entries {
			if e.Hop == hop {
				toward = true
				break
			}
		}
		if toward {
			continue
		}
		already := false
		for _, h := range b.clientSubFwd[key] {
			if h == hop {
				already = true
				break
			}
		}
		if already {
			continue
		}
		if !sub.Presubscribe && b.advs.Len() > 0 {
			overlaps := false
			for _, h := range b.advs.HopsOverlapping(sub.Filter, wire.ClientHop(sub.Client)) {
				if h == hop {
					overlaps = true
					break
				}
			}
			if !overlaps {
				continue
			}
		}
		b.clientSubFwd[key] = append(b.clientSubFwd[key], hop)
		b.send(hop, wire.NewSubscribe(sub))
	}
}

// RemoveLink drops a neighbor link and its routing state. Plain entries
// that pointed along the dead link stop being control-plane inputs for
// the surviving neighbors, so the forwarded aggregates they justified are
// retracted instead of lingering as over-subscription. The per-link
// propagation dedup state (advFwd, clientSubFwd, location-dependent
// fwdTo) forgets the dead hop too, so a later AddLink — to the same
// rejoining broker or to a repair parent — re-offers everything instead
// of assuming the dead link's deliveries happened.
func (b *Broker) RemoveLink(peer wire.BrokerID) error {
	return b.exec(func() {
		hop := wire.BrokerHop(peer)
		if old, ok := b.links[peer]; ok {
			if _, enc := old.(transport.FrameEncoder); enc {
				b.encLinks--
			}
		}
		delete(b.links, peer)
		delete(b.out.pending, peer)
		b.sendErrs.reset(hop)
		removed := b.subs.RemoveHop(hop)
		b.advs.RemoveHop(hop)
		b.fwd.DropHop(hop)
		for _, e := range removed {
			if !b.isPerClientEntry(e) {
				b.aggregateEntryRemoved(e)
			}
		}
		b.scrubHopState(hop, removed)
	})
}

// scrubHopState forgets a dead hop from the per-client propagation dedup
// maps, and garbage collects per-client subscriptions this broker no
// longer lies on the delivery path of (every entry pointed along the dead
// link and the client is not local). Runs on the broker goroutine from
// RemoveLink.
func (b *Broker) scrubHopState(hop wire.Hop, removed []routing.Entry) {
	hopStr := hop.String()
	for key, sent := range b.advFwd {
		delete(sent, hopStr)
		if len(sent) == 0 {
			delete(b.advFwd, key)
		}
	}
	for key, fwd := range b.clientSubFwd {
		kept := fwd[:0]
		for _, h := range fwd {
			if h != hop {
				kept = append(kept, h)
			}
		}
		if len(kept) == 0 {
			delete(b.clientSubFwd, key)
		} else {
			b.clientSubFwd[key] = kept
		}
	}
	for _, ls := range b.locSubs {
		kept := ls.fwdTo[:0]
		for _, h := range ls.fwdTo {
			if h != hop {
				kept = append(kept, h)
			}
		}
		ls.fwdTo = kept
	}
	for _, e := range removed {
		if e.Client == "" {
			continue
		}
		key := subKey(e.Client, e.SubID)
		if _, local := b.clients[e.Client]; local {
			continue
		}
		if len(b.subs.ClientEntries(e.Client, e.SubID)) > 0 {
			continue
		}
		delete(b.knownSubs, key)
		delete(b.fetched, key)
		delete(b.pending, key)
	}
}

// Neighbors returns the neighbor broker IDs (diagnostics).
func (b *Broker) Neighbors() []wire.BrokerID {
	var out []wire.BrokerID
	_ = b.exec(func() {
		for id := range b.links {
			out = append(out, id)
		}
	})
	return out
}

// Barrier waits until every task queued before the call has been
// processed. Used by tests and Network.Settle to flush in-flight traffic.
func (b *Broker) Barrier() {
	_ = b.exec(func() {})
}

// SubEntries returns a snapshot of the subscription routing table in
// deterministic order (diagnostics and the control-plane equivalence
// tests).
func (b *Broker) SubEntries() []routing.Entry {
	var out []routing.Entry
	_ = b.exec(func() { out = b.subs.All() })
	return out
}

// TableSizes returns the subscription and advertisement table sizes
// (used by the ablation benchmarks).
func (b *Broker) TableSizes() (subs, advs int) {
	_ = b.exec(func() {
		subs = b.subs.Len()
		advs = b.advs.Len()
	})
	return subs, advs
}

// Stats returns a snapshot of the broker's counters.
func (b *Broker) Stats() Stats {
	s := Stats{Processed: make(map[wire.Type]uint64)}
	_ = b.exec(func() {
		for typ, n := range b.processed {
			if n != 0 {
				s.Processed[wire.Type(typ)] = n
			}
		}
		s.SubEntries = b.subs.Len()
		s.AdvEntries = b.advs.Len()
		s.SubIndex = b.subs.IndexStats()
		s.AdvIndex = b.advs.IndexStats()
		s.MailboxDepth = b.box.len() + b.batchRemaining
		s.BatchesProcessed = b.batchDepth.Count()
		s.MaxBatchSize = int(b.batchDepth.Max())
		s.MeanBatchSize = b.batchDepth.Mean()
		s.RelocationPendingDrops = b.relocDrops
		s.RelocBufferDrops = b.relocDrops + b.relocReplayDrops
		s.RelocationsStarted = b.relocStarted
		s.RelocationsCompleted = b.relocCompleted
		s.RelocationsExpired = b.relocExpired
		s.ReplayBatches = b.replaySizes.Count()
		s.ReplayMeanItems = b.replaySizes.Mean()
		s.ReplayMaxItems = b.replaySizes.Max()
		s.ControlSubsSent = b.ctrlSubsSent
		s.ControlUnsubsSent = b.ctrlUnsubsSent
		s.Forwarder = b.fwd.Stats()
		s.CoverChecksSaved = s.Forwarder.CoverChecksSaved
		s.Mailbox = b.box.flowStats()
		s.FlushMaxBurst = int(b.flushDepth.Max())
		s.FlushMeanBurst = b.flushDepth.Mean()
		s.LinkSendErrors, s.LinkSendErrorsTotal = b.sendErrs.snapshot()
		if b.egress != nil {
			s.EgressWriters = len(b.egress.shards)
			s.EgressShards = b.egress.shardStats()
			for _, fs := range s.EgressShards {
				s.EgressCreditStalls += fs.CreditStalls
				s.EgressDroppedOldest += fs.DroppedOldest
				s.EgressShedNewest += fs.ShedNewest
				if fs.HighWater > s.EgressQueueHighWater {
					s.EgressQueueHighWater = fs.HighWater
				}
			}
			s.EgressFlushes = b.egressFlushLat.Count()
			s.EgressFlushMeanNs = b.egressFlushLat.Mean()
			s.EgressFlushMaxNs = b.egressFlushLat.Max()
		}
		for id, l := range b.links {
			r, ok := l.(flow.Reporter)
			if !ok {
				continue
			}
			fs := r.FlowStats()
			if s.LinkFlow == nil {
				s.LinkFlow = make(map[wire.BrokerID]flow.Stats)
			}
			s.LinkFlow[id] = fs
			s.LinkCreditStalls += fs.CreditStalls
			s.LinkDroppedOldest += fs.DroppedOldest
			s.LinkShedNewest += fs.ShedNewest
			if fs.HighWater > s.LinkQueueHighWater {
				s.LinkQueueHighWater = fs.HighWater
			}
		}
		s.Workers = 1
		s.SubSnapshots = b.subs.SnapshotStats()
		if b.pool != nil {
			s.Workers = len(b.pool.chans)
			s.WorkerRuns = b.pool.dispatches
			s.WorkerJobs = b.pool.jobs
			s.WorkerMaxShardDepth = int(b.pool.shardDepth.Max())
			s.WorkerMeanShardDepth = b.pool.shardDepth.Mean()
			s.WorkerInflight = int(b.pool.inflight.Get())
			s.MailboxDepth += s.WorkerInflight
		}
	})
	return s
}

// send queues a message for a hop (broker link or local client). Link
// writes are deferred into the per-hop outbox and flushed at the next
// batch boundary, so a batch fans out as one burst per link while the
// per-link order of all message types matches handler order exactly. Only
// called from the run goroutine.
func (b *Broker) send(hop wire.Hop, m wire.Message) {
	if hop.IsClient() {
		// Client hops are only used for deliveries, handled by deliverTo.
		return
	}
	// No links[id] check here: during Connect the peer's inbound pipe can
	// deliver before this broker's AddLink registers the send side, and a
	// handler response to that traffic must not be lost — callers have
	// already recorded the hop in their propagation dedup maps, so a drop
	// here would be permanent. The burst stays queued until the link
	// appears (flushOutbox retains it); RemoveLink discards the queue of a
	// peer that is gone for good.
	id := hop.Broker
	q := b.out.pending[id]
	if len(q) == 0 {
		b.out.order = append(b.out.order, id)
	}
	b.out.pending[id] = append(q, m)
}

// broadcast queues m for every neighbor link except the excluded hop,
// encoding once at the first frame-encoding destination (a fan-out that
// only crosses in-process links serializes nothing).
func (b *Broker) broadcast(m wire.Message, except wire.Hop) {
	for id := range b.links {
		if !except.IsClient() && id == except.Broker {
			continue
		}
		b.maybePreencode(id, &m)
		b.send(wire.BrokerHop(id), m)
	}
}

// maybePreencode caches m's wire frame before it is queued for a
// frame-encoding peer, so a fan-out serializes at most once and message
// copies enqueued for later hops inherit the cached frame. The
// encode-once policy lives only here: the serial publish visitor, the
// parallel apply stage, and broadcast all share it.
func (b *Broker) maybePreencode(peer wire.BrokerID, m *wire.Message) {
	if b.encLinks == 0 || m.Frame != nil {
		return
	}
	if _, enc := b.links[peer].(transport.FrameEncoder); enc {
		_ = wire.Preencode(m)
	}
}

// neighborHops lists all broker hops except the given one.
func (b *Broker) neighborHops(except wire.Hop) []wire.Hop {
	out := make([]wire.Hop, 0, len(b.links))
	for id := range b.links {
		if !except.IsClient() && id == except.Broker {
			continue
		}
		out = append(out, wire.BrokerHop(id))
	}
	return out
}

// subKey builds the map key for a client subscription.
func subKey(c wire.ClientID, id wire.SubID) string {
	return string(c) + "/" + string(id)
}

// String implements fmt.Stringer.
func (b *Broker) String() string {
	return fmt.Sprintf("broker(%s)", b.id)
}
