package broker

import (
	"fmt"

	"repro/internal/filter"
	"repro/internal/message"
	"repro/internal/metrics"
	"repro/internal/routing"
	"repro/internal/wire"
)

// dispatch routes one inbound message to its handler. It runs on the
// broker goroutine.
func (b *Broker) dispatch(in inbound) {
	switch in.Msg.Type {
	case wire.TypePublish:
		if in.Msg.Notif != nil {
			b.handlePublish(in.From, *in.Msg.Notif, in.Msg)
		}
	case wire.TypeSubscribe:
		if in.Msg.Sub != nil {
			b.handleSubscribe(in.From, *in.Msg.Sub)
		}
	case wire.TypeUnsubscribe:
		if in.Msg.Sub != nil {
			b.handleUnsubscribe(in.From, *in.Msg.Sub)
		}
	case wire.TypeAdvertise:
		if in.Msg.Sub != nil {
			b.handleAdvertise(in.From, *in.Msg.Sub)
		}
	case wire.TypeUnadvertise:
		if in.Msg.Sub != nil {
			b.handleUnadvertise(in.From, *in.Msg.Sub)
		}
	case wire.TypeFetch:
		if in.Msg.Fetch != nil {
			b.handleFetch(in.From, *in.Msg.Fetch)
		}
	case wire.TypeReplay:
		if in.Msg.Replay != nil {
			b.handleReplay(in.From, *in.Msg.Replay)
		}
	case wire.TypeLocUpdate:
		if in.Msg.Loc != nil {
			b.handleLocUpdate(in.From, *in.Msg.Loc)
		}
	}
}

// ---------------------------------------------------------------------------
// Client-facing operations (posted through the mailbox by package core).
// ---------------------------------------------------------------------------

// AttachClient attaches a client to this (border) broker. For a roaming
// client reattaching elsewhere, the relocation is triggered by the
// subsequent relocation re-subscriptions, not by attach itself.
func (b *Broker) AttachClient(id wire.ClientID, deliver DeliverFunc) error {
	var err error
	execErr := b.exec(func() {
		if cs, ok := b.clients[id]; ok && cs.connected {
			err = fmt.Errorf("%w: %s", ErrAlreadyAttached, id)
			return
		}
		cs, ok := b.clients[id]
		if !ok {
			cs = &clientState{
				id:   id,
				subs: make(map[wire.SubID]*clientSub),
				advs: make(map[wire.SubID]filter.Filter),
			}
			b.clients[id] = cs
		}
		cs.connected = true
		cs.deliver = deliver
	})
	if execErr != nil {
		return execErr
	}
	return err
}

// DetachClient disconnects a client without unsubscribing it: its
// subscriptions stay active and deliveries are buffered in the virtual
// counterpart until the client reappears here or relocates elsewhere
// (Section 4.1).
func (b *Broker) DetachClient(id wire.ClientID) error {
	var err error
	execErr := b.exec(func() {
		cs, ok := b.clients[id]
		if !ok {
			err = fmt.Errorf("%w: %s", ErrUnknownClient, id)
			return
		}
		cs.connected = false
		cs.deliver = nil
	})
	if execErr != nil {
		return execErr
	}
	return err
}

// Subscribe registers a client subscription. The subscription's flags
// select its class: plain (aggregate propagation), relocatable (Relocate
// handled on MoveTo), or location-dependent (LocDependent).
func (b *Broker) Subscribe(sub wire.Subscription) error {
	var err error
	execErr := b.exec(func() { err = b.localSubscribe(sub) })
	if execErr != nil {
		return execErr
	}
	return err
}

// Unsubscribe withdraws a client subscription.
func (b *Broker) Unsubscribe(client wire.ClientID, id wire.SubID) error {
	var err error
	execErr := b.exec(func() { err = b.localUnsubscribe(client, id) })
	if execErr != nil {
		return execErr
	}
	return err
}

// Publish injects a notification from a locally attached client.
func (b *Broker) Publish(client wire.ClientID, n message.Notification) error {
	return b.exec(func() {
		b.handlePublish(wire.ClientHop(client), n, wire.Message{})
	})
}

// Advertise announces the notifications a local producer will publish.
func (b *Broker) Advertise(client wire.ClientID, id wire.SubID, f filter.Filter) error {
	return b.exec(func() {
		cs, ok := b.clients[client]
		if ok {
			cs.advs[id] = f
		}
		b.handleAdvertise(wire.ClientHop(client), wire.Subscription{
			Filter: f, Client: client, ID: id,
		})
	})
}

// Unadvertise withdraws an advertisement.
func (b *Broker) Unadvertise(client wire.ClientID, id wire.SubID) error {
	return b.exec(func() {
		cs, ok := b.clients[client]
		if !ok {
			return
		}
		f, ok := cs.advs[id]
		if !ok {
			return
		}
		delete(cs.advs, id)
		b.handleUnadvertise(wire.ClientHop(client), wire.Subscription{
			Filter: f, Client: client, ID: id,
		})
	})
}

// ---------------------------------------------------------------------------
// Subscription handling.
// ---------------------------------------------------------------------------

// localSubscribe processes a subscription issued by a locally attached
// client. Runs on the broker goroutine.
func (b *Broker) localSubscribe(sub wire.Subscription) error {
	cs, ok := b.clients[sub.Client]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownClient, sub.Client)
	}
	if _, dup := cs.subs[sub.ID]; dup && !sub.Relocate {
		return fmt.Errorf("%w: %s/%s", ErrDuplicateSub, sub.Client, sub.ID)
	}
	if sub.LocDependent {
		return b.localSubscribeLocDep(cs, sub)
	}
	if sub.Relocate {
		return b.localRelocateSubscribe(cs, sub)
	}
	clientHop := wire.ClientHop(sub.Client)
	state := &clientSub{sub: sub, exact: sub.Filter, nextSeq: sub.LastSeq + 1}
	cs.subs[sub.ID] = state

	b.subs.Add(routing.Entry{
		Filter: sub.Filter,
		Hop:    clientHop,
		Client: sub.Client,
		SubID:  sub.ID,
	})
	if sub.Mobile() {
		b.knownSubs[sub.Key()] = sub
		b.propagateClientSub(sub, clientHop)
	} else {
		b.aggregateEntryAdded(routing.Entry{Filter: sub.Filter, Hop: clientHop})
	}
	return nil
}

func (b *Broker) localUnsubscribe(client wire.ClientID, id wire.SubID) error {
	cs, ok := b.clients[client]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownClient, client)
	}
	state, ok := cs.subs[id]
	if !ok {
		return fmt.Errorf("%w: %s/%s", ErrUnknownSub, client, id)
	}
	delete(cs.subs, id)
	key := subKey(client, id)
	removed := b.subs.RemoveClient(client, id)
	delete(b.pending, key)
	delete(b.fetched, key) // the sub is gone; drop its fetch-dedup entry too
	switch {
	case state.sub.LocDependent:
		b.teardownLocSub(key)
	case state.sub.Mobile():
		b.retractClientSub(state.sub)
	default:
		for _, e := range removed {
			b.aggregateEntryRemoved(e)
		}
	}
	return nil
}

// handleSubscribe processes a subscription arriving over a link.
func (b *Broker) handleSubscribe(from wire.Hop, sub wire.Subscription) {
	switch {
	case sub.LocDependent:
		b.handleLocSubscribe(from, sub)
	case sub.Client != "":
		b.handleClientSubscribe(from, sub)
	default:
		// Aggregate subscription from a neighbor broker.
		e := routing.Entry{Filter: sub.Filter, Hop: from}
		if b.subs.Add(e) {
			b.aggregateEntryAdded(e)
		}
	}
}

func (b *Broker) handleUnsubscribe(from wire.Hop, sub wire.Subscription) {
	switch {
	case sub.LocDependent:
		key := sub.Key()
		b.subs.RemoveClient(sub.Client, sub.ID)
		b.teardownLocSub(key)
	case sub.Client != "":
		b.subs.RemoveClient(sub.Client, sub.ID)
		b.retractClientSub(sub)
	default:
		e := routing.Entry{Filter: sub.Filter, Hop: from}
		if b.subs.Remove(e) {
			b.aggregateEntryRemoved(e)
		}
	}
}

// handleClientSubscribe implements per-client (mobile) subscription
// propagation and the relocation junction test of Section 4.1.
func (b *Broker) handleClientSubscribe(from wire.Hop, sub wire.Subscription) {
	key := sub.Key()
	b.knownSubs[key] = sub

	olds := b.oldEntries(sub.Client, sub.ID, from)
	// Record the new-path direction.
	b.subs.Add(routing.Entry{Filter: sub.Filter, Hop: from, Client: sub.Client, SubID: sub.ID})

	if sub.Relocate && len(olds) > 0 {
		// This broker lies on the old delivery path: it is the junction
		// broker (B4 in Figure 5). Divert new notifications to the new
		// path and fetch the buffered ones from the old location.
		b.fetched[key] = sub.RelocEpoch
		for _, old := range olds {
			b.subs.Remove(old)
			fetch := wire.Fetch{
				Client:   sub.Client,
				ID:       sub.ID,
				Filter:   sub.Filter,
				LastSeq:  sub.LastSeq,
				Junction: b.id,
				Epoch:    sub.RelocEpoch,
			}
			if old.Hop.IsClient() {
				// The old path ends here: this broker is also the old
				// border broker. Replay locally.
				b.replayFromCounterpart(fetch, from)
			} else {
				b.send(old.Hop, wire.NewFetch(fetch))
			}
		}
		return
	}
	b.propagateClientSub(sub, from)
}

// oldEntries returns the routing entries for the client subscription that
// point somewhere other than the arrival hop (the old delivery path).
func (b *Broker) oldEntries(c wire.ClientID, id wire.SubID, from wire.Hop) []routing.Entry {
	var out []routing.Entry
	for _, e := range b.subs.ClientEntries(c, id) {
		if e.Hop != from {
			out = append(out, e)
		}
	}
	return out
}

// propagateClientSub forwards a per-client subscription toward matching
// advertisers; when no advertisements exist at all, it floods to all
// neighbors (advertisement-free operation). Pre-subscribing subscriptions
// always flood, planting entries at every broker so any future border
// broker is already a junction.
func (b *Broker) propagateClientSub(sub wire.Subscription, from wire.Hop) {
	var hops []wire.Hop
	if sub.Presubscribe {
		hops = b.neighborHops(from)
	} else {
		hops = b.subForwardHops(sub.Filter, from)
	}
	key := sub.Key()
	fwd := b.clientSubFwd[key]
	seen := make(map[string]bool, len(fwd))
	for _, h := range fwd {
		seen[h.String()] = true
	}
	for _, h := range hops {
		if seen[h.String()] {
			continue
		}
		fwd = append(fwd, h)
		b.send(h, wire.NewSubscribe(sub))
	}
	b.clientSubFwd[key] = fwd
}

// subForwardHops computes the hops a subscription should travel along:
// toward overlapping advertisements if any advertisements are known,
// otherwise every neighbor (excluding the arrival hop).
func (b *Broker) subForwardHops(f filter.Filter, from wire.Hop) []wire.Hop {
	if b.advs.Len() == 0 {
		return b.neighborHops(from)
	}
	var out []wire.Hop
	for _, h := range b.advs.HopsOverlapping(f, from) {
		if !h.IsClient() {
			out = append(out, h)
		}
	}
	return out
}

// retractClientSub withdraws a per-client subscription along the hops it
// was forwarded to.
func (b *Broker) retractClientSub(sub wire.Subscription) {
	key := sub.Key()
	for _, h := range b.clientSubFwd[key] {
		b.send(h, wire.NewUnsubscribe(sub))
	}
	delete(b.clientSubFwd, key)
	delete(b.knownSubs, key)
	delete(b.fetched, key)
}

// aggregateEntryAdded feeds one new plain routing entry through the
// delta-based forwarding control plane: every neighbor except the entry's
// own hop gains the filter as an input (the aggregate forwarded toward a
// neighbor excludes entries pointing at that neighbor), and whatever
// sub/unsub diff the strategy derives goes straight on the wire. No table
// scan happens here — the forwarder tracks its inputs per neighbor, so a
// subscribe, unsubscribe, or roaming handoff costs work proportional to
// the change, not to the table.
func (b *Broker) aggregateEntryAdded(e routing.Entry) {
	for _, n := range b.neighborHops(e.Hop) {
		b.sendForwardUpdate(b.fwd.AddFilter(n, e.Filter))
	}
}

// aggregateEntryRemoved is the removal half of the delta control plane.
func (b *Broker) aggregateEntryRemoved(e routing.Entry) {
	for _, n := range b.neighborHops(e.Hop) {
		b.sendForwardUpdate(b.fwd.RemoveFilter(n, e.Filter))
	}
}

// sendForwardUpdate puts a forwarder diff on the wire toward its neighbor
// and counts the administrative traffic (Stats.ControlSubsSent /
// ControlUnsubsSent, the per-strategy admin-message measure of Figure 9).
func (b *Broker) sendForwardUpdate(u routing.Update) {
	for _, f := range u.Subscribe {
		b.ctrlSubsSent++
		b.send(u.Hop, wire.NewSubscribe(wire.Subscription{Filter: f}))
	}
	for _, f := range u.Unsubscribe {
		b.ctrlUnsubsSent++
		b.send(u.Hop, wire.NewUnsubscribe(wire.Subscription{Filter: f}))
	}
}

// aggregateInputs collects the filters of plain entries not pointing at
// the given neighbor — the authoritative input list for that neighbor's
// forwarding state. Only link churn (AddLink's seed/repair Recompute)
// scans the table through this; steady-state subscription churn flows
// through the per-entry delta helpers above.
func (b *Broker) aggregateInputs(n wire.Hop) []filter.Filter {
	var out []filter.Filter
	for _, e := range b.subs.EntriesNotFrom(n) {
		if b.isPerClientEntry(e) {
			continue
		}
		out = append(out, e.Filter)
	}
	return out
}

// isPerClientEntry reports whether the entry belongs to a subscription
// that propagates per-client (mobile or location-dependent) rather than
// through aggregation.
func (b *Broker) isPerClientEntry(e routing.Entry) bool {
	if e.Client == "" {
		return false
	}
	if _, ok := b.knownSubs[subKey(e.Client, e.SubID)]; ok {
		return true
	}
	if _, ok := b.locSubs[subKey(e.Client, e.SubID)]; ok {
		return true
	}
	// Local plain client subscriptions carry client identity for delivery
	// but propagate via aggregation.
	if cs, ok := b.clients[e.Client]; ok {
		if st, ok := cs.subs[e.SubID]; ok {
			return st.sub.Mobile() || st.sub.LocDependent
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Advertisements.
// ---------------------------------------------------------------------------

func (b *Broker) handleAdvertise(from wire.Hop, adv wire.Subscription) {
	if !b.advs.Add(routing.Entry{Filter: adv.Filter, Hop: from, Client: adv.Client, SubID: adv.ID}) {
		return
	}
	// Advertisements flood the whole overlay so every broker knows which
	// hops lead toward which producers.
	key := "adv:" + adv.Key() + ":" + adv.Filter.ID()
	sent := b.advFwd[key]
	if sent == nil {
		sent = make(map[string]bool)
		b.advFwd[key] = sent
	}
	for _, h := range b.neighborHops(from) {
		if sent[h.String()] {
			continue
		}
		sent[h.String()] = true
		b.send(h, wire.NewAdvertise(adv))
	}
	// Flush known per-client subscriptions toward the new advertiser if
	// they overlap and have not traveled that way yet.
	b.flushSubsToward(from, adv.Filter)
}

func (b *Broker) handleUnadvertise(from wire.Hop, adv wire.Subscription) {
	if !b.advs.Remove(routing.Entry{Filter: adv.Filter, Hop: from, Client: adv.Client, SubID: adv.ID}) {
		return
	}
	key := "adv:" + adv.Key() + ":" + adv.Filter.ID()
	delete(b.advFwd, key)
	b.broadcast(wire.NewUnadvertise(adv), from)
}

// flushSubsToward forwards already-known per-client subscriptions toward a
// newly learned advertisement direction.
func (b *Broker) flushSubsToward(advHop wire.Hop, advFilter filter.Filter) {
	if advHop.IsClient() {
		// Local producers: subscriptions need not travel anywhere to reach
		// them; publish routing consults the local table directly.
		return
	}
	for key, sub := range b.knownSubs {
		overlap := sub.Filter.Overlaps(advFilter)
		if !overlap {
			continue
		}
		already := false
		for _, h := range b.clientSubFwd[key] {
			if h == advHop {
				already = true
				break
			}
		}
		// Do not forward a subscription back where it came from.
		cameFrom := false
		for _, e := range b.subs.ClientEntries(sub.Client, sub.ID) {
			if e.Hop == advHop {
				cameFrom = true
				break
			}
		}
		if already || cameFrom {
			continue
		}
		b.clientSubFwd[key] = append(b.clientSubFwd[key], advHop)
		b.send(advHop, wire.NewSubscribe(sub))
	}
	for key, ls := range b.locSubs {
		b.flushLocSubToward(key, ls, advHop, advFilter)
	}
}

// ---------------------------------------------------------------------------
// Publish routing and delivery.
// ---------------------------------------------------------------------------

// handlePublish routes one publish. env is the inbound wire envelope when
// the publish arrived over a link (it may carry a cached frame — the
// decoded TCP frame or an upstream pre-encoding — which forwarding reuses
// so a transit broker never re-serializes); local client publishes pass a
// zero Message and the envelope is built lazily at the first broker hop.
func (b *Broker) handlePublish(from wire.Hop, n message.Notification, env wire.Message) {
	if b.opts.Strategy == routing.Flooding {
		if env.Type == wire.TypeInvalid {
			env = wire.NewPublish(n)
		}
		b.broadcast(env, from)
		b.deliverFlooded(n)
		return
	}
	// Deduplicate hops and subscriptions with the broker's epoch-stamped
	// scratch maps instead of two fresh allocations per publish, and build
	// the forwarded wire message once: every neighbor link shares the same
	// envelope (and, when any link serializes frames, the same encoding).
	// The pre-bound visitor keeps the hot path free of closure and result
	// slice allocations.
	// Epochs invalidate scratch entries but never delete them; shed the
	// maps when client/neighbor churn has grown them far beyond any live
	// fan-out, so a long-running broker's dedup state stays bounded.
	if len(b.pubSeen.subs) > pubScratchShedSize {
		clear(b.pubSeen.subs)
	}
	if len(b.pubSeen.hops) > pubScratchShedSize {
		clear(b.pubSeen.hops)
	}
	b.pubSeen.epoch++
	b.pub.n = n
	b.pub.from = from
	b.pub.msg = env
	b.pub.deliveries = b.pub.deliveries[:0]
	b.subs.EachMatchingEntry(n, from, b.pub.visit)
	for _, ref := range b.pub.deliveries {
		b.deliverTo(ref.client, ref.id, n, false)
	}
	if cap(b.pub.deliveries) > maxOutboxRetainCap {
		b.pub.deliveries = nil // shed spike-sized buffers like the outbox does
	} else {
		b.pub.deliveries = b.pub.deliveries[:0]
	}
	b.pub.msg = wire.Message{}
	b.pub.n = message.Notification{}
}

// visitPublishEntry routes one matching table row of the publish carried
// in b.pub: local subscriptions are queued for delivery after the visit
// (client callbacks must not run under the table lock), broker hops
// receive the shared fan-out envelope through the outbox. For publishes
// that arrived over a link, b.pub.msg is the inbound envelope (possibly
// carrying the decoded frame for zero-copy forwarding); for local client
// publishes it is built lazily at the first broker hop. Bound once as
// b.pub.visit.
func (b *Broker) visitPublishEntry(e *routing.Entry) {
	s := &b.pubSeen
	if e.Hop.IsClient() {
		ref := subRef{client: e.Client, id: e.SubID}
		if s.subs[ref] == s.epoch {
			return
		}
		s.subs[ref] = s.epoch
		b.pub.deliveries = append(b.pub.deliveries, ref)
		return
	}
	if s.hops[e.Hop.Broker] == s.epoch {
		return
	}
	s.hops[e.Hop.Broker] = s.epoch
	if b.pub.msg.Type == wire.TypeInvalid {
		b.pub.msg = wire.NewPublish(b.pub.n)
	}
	b.maybePreencode(e.Hop.Broker, &b.pub.msg)
	b.send(e.Hop, b.pub.msg)
}

// deliverFlooded performs client-side filtering under the flooding
// strategy: every attached client's subscriptions are evaluated locally.
func (b *Broker) deliverFlooded(n message.Notification) {
	for _, cs := range b.clients {
		for id, st := range cs.subs {
			if st.exact.Matches(n) {
				b.deliverTo(cs.id, id, n, false)
			}
		}
	}
}

// deliverTo hands a notification to a local client subscription, assigning
// the per-subscription sequence number; disconnected clients accumulate
// into the virtual counterpart buffer, and relocating subscriptions (at
// the new border broker) buffer until the replay arrives.
func (b *Broker) deliverTo(client wire.ClientID, id wire.SubID, n message.Notification, replayed bool) {
	cs, ok := b.clients[client]
	if !ok {
		return
	}
	st, ok := cs.subs[id]
	if !ok {
		return
	}
	// Exact client-side filtering (F0): for location-dependent
	// subscriptions the routing entry is widened, so the final decision is
	// made here against the client's true location.
	if !st.exact.Matches(n) {
		return
	}
	// len check first: no relocation in progress (the common case) must
	// not pay the subKey concatenation per delivery.
	if len(b.pending) != 0 && !replayed {
		if p, relocating := b.pending[subKey(client, id)]; relocating {
			p.notifs = append(p.notifs, n)
			if len(p.notifs) > b.opts.RelocBufferCap {
				p.notifs = p.notifs[1:]
				b.relocDrops++
			}
			return
		}
	}
	item := wire.SeqNotification{Seq: st.nextSeq, Notif: n}
	st.nextSeq++
	if !cs.connected || cs.deliver == nil {
		st.buffer = append(st.buffer, item)
		if len(st.buffer) > b.opts.MaxBufferPerSub {
			st.buffer = st.buffer[1:]
			st.overflow++
		}
		return
	}
	if b.opts.Counter != nil {
		b.opts.Counter.Inc(metrics.CategoryDeliver)
	}
	cs.deliver(wire.Deliver{Client: client, ID: id, Item: item, Replayed: replayed})
}
