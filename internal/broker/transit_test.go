package broker

import (
	"sync"
	"testing"

	"repro/internal/filter"
	"repro/internal/message"
	"repro/internal/transport"
	"repro/internal/wire"
)

// codecCountingLink is a frame-encoding link test double: it records every
// message it is handed (as a frame-based transport would see it) so tests
// can assert whether the broker attached a cached frame — and which bytes —
// without a real TCP connection.
type codecCountingLink struct {
	mu   sync.Mutex
	msgs []wire.Message
}

var _ transport.Link = (*codecCountingLink)(nil)
var _ transport.BatchSender = (*codecCountingLink)(nil)
var _ transport.FrameEncoder = (*codecCountingLink)(nil)

func (l *codecCountingLink) Send(m wire.Message) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.msgs = append(l.msgs, m)
	return nil
}

func (l *codecCountingLink) SendBatch(ms []wire.Message) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.msgs = append(l.msgs, ms...)
	return nil
}

func (l *codecCountingLink) Close() error   { return nil }
func (l *codecCountingLink) EncodesFrames() {}

func (l *codecCountingLink) sent() []wire.Message {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]wire.Message(nil), l.msgs...)
}

// TestTransitForwardWithoutReencode is the zero-copy acceptance test: a
// transit broker that receives a canonical publish frame from one neighbor
// and forwards it to another must not call the wire encoder at all — the
// decoded inbound frame doubles as the outbound encoding, bytes included.
func TestTransitForwardWithoutReencode(t *testing.T) {
	b := New("transit", Options{})
	b.Start()
	defer b.Close()

	out := &codecCountingLink{}
	if err := b.AddLink("downstream", out); err != nil {
		t.Fatal(err)
	}
	// The downstream neighbor subscribes to everything about temperature.
	b.Receive(transport.Inbound{
		From: wire.BrokerHop("downstream"),
		Msg: wire.NewSubscribe(wire.Subscription{
			Filter: filter.MustNew(filter.Exists("temperature")),
		}),
	})
	b.Barrier()
	subSent := len(out.sent()) // control-plane traffic before the publish

	// A publish arrives from the upstream side exactly as the TCP read
	// loop would deliver it: encoded by the peer, decoded here.
	frame, err := wire.Encode(wire.NewPublish(message.New(map[string]message.Value{
		"temperature": message.Float(21.5),
		"room":        message.String("4a"),
	})))
	if err != nil {
		t.Fatal(err)
	}
	in, err := wire.Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if in.Frame == nil {
		t.Fatal("decoded canonical publish did not carry the inbound frame")
	}

	encodesBefore := wire.EncodeCalls()
	b.Receive(transport.Inbound{From: wire.BrokerHop("upstream"), Msg: in})
	b.Barrier()

	if got := wire.EncodeCalls() - encodesBefore; got != 0 {
		t.Errorf("transit forward performed %d frame encodings, want 0", got)
	}
	msgs := out.sent()[subSent:]
	if len(msgs) != 1 || msgs[0].Type != wire.TypePublish {
		t.Fatalf("downstream received %d messages, want 1 publish", len(msgs))
	}
	fwd := msgs[0]
	if fwd.Frame == nil {
		t.Fatal("forwarded publish carries no cached frame")
	}
	if &fwd.Frame[0] != &frame[0] || len(fwd.Frame) != len(frame) {
		t.Error("forwarded frame is not the inbound frame (bytes were copied or re-encoded)")
	}
	if fwd.Notif == nil || !fwd.Notif.Equal(*in.Notif) {
		t.Error("forwarded notification diverged from the inbound one")
	}
}

// TestTransitForwardNonCanonicalReencodes pins the fallback: a publish
// from a foreign encoder (attributes out of wire order) is normalized on
// decode, carries no cached frame, and the transit broker re-encodes it
// canonically for frame-based neighbors.
func TestTransitForwardNonCanonicalReencodes(t *testing.T) {
	b := New("transit", Options{})
	b.Start()
	defer b.Close()

	out := &codecCountingLink{}
	if err := b.AddLink("downstream", out); err != nil {
		t.Fatal(err)
	}
	b.Receive(transport.Inbound{
		From: wire.BrokerHop("downstream"),
		Msg: wire.NewSubscribe(wire.Subscription{
			Filter: filter.MustNew(filter.Exists("a")),
		}),
	})
	b.Barrier()
	subSent := len(out.sent())

	// version, type, count=2, then "b" before "a": decodes, but is not
	// canonical.
	frame := []byte{1, byte(wire.TypePublish), 2, 1, 'b'}
	frame = message.AppendValue(frame, message.Int(2))
	frame = append(frame, 1, 'a')
	frame = message.AppendValue(frame, message.Int(1))
	in, err := wire.Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if in.Frame != nil {
		t.Fatal("non-canonical frame must not be attached on decode")
	}

	b.Receive(transport.Inbound{From: wire.BrokerHop("upstream"), Msg: in})
	b.Barrier()

	msgs := out.sent()[subSent:]
	if len(msgs) != 1 || msgs[0].Type != wire.TypePublish {
		t.Fatalf("downstream received %d messages, want 1 publish", len(msgs))
	}
	if msgs[0].Frame == nil {
		t.Fatal("forwarded publish for a frame-encoding link was not pre-encoded")
	}
	want, err := wire.Encode(wire.NewPublish(*in.Notif))
	if err != nil {
		t.Fatal(err)
	}
	if string(msgs[0].Frame) != string(want) {
		t.Error("re-encoded forward is not the canonical encoding")
	}
}
