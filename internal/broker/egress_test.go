package broker

import (
	"bytes"
	"errors"
	"fmt"
	"log"
	"os"
	"strings"
	"sync"
	"testing"

	"repro/internal/filter"
	"repro/internal/routing"
	"repro/internal/transport"
	"repro/internal/wire"
)

// captureLink is a link test double for the egress pool: it records every
// message in arrival order and can be armed to fail writes.
type captureLink struct {
	mu   sync.Mutex
	msgs []wire.Message
	err  error
}

var _ transport.Link = (*captureLink)(nil)
var _ transport.BatchSender = (*captureLink)(nil)

func (l *captureLink) fail(err error) {
	l.mu.Lock()
	l.err = err
	l.mu.Unlock()
}

func (l *captureLink) Send(m wire.Message) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	l.msgs = append(l.msgs, m)
	return nil
}

func (l *captureLink) SendBatch(ms []wire.Message) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	l.msgs = append(l.msgs, ms...)
	return nil
}

func (l *captureLink) Close() error { return nil }

func (l *captureLink) sent() []wire.Message {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]wire.Message(nil), l.msgs...)
}

// TestEgressDrainBarrier pins the exec/Barrier contract under asynchronous
// egress: when Barrier returns, every message queued before it — handed
// off to writer shards, not written inline — must already be on the link,
// in handoff order.
func TestEgressDrainBarrier(t *testing.T) {
	b := New("hub", Options{Strategy: routing.Flooding, EgressWriters: 2})
	b.Start()
	defer b.Close()
	out := &captureLink{}
	if err := b.AddLink("leaf", out); err != nil {
		t.Fatal(err)
	}

	const rounds = 5
	const perRound = 20
	total := 0
	from := wire.ClientHop("p")
	for r := 0; r < rounds; r++ {
		for i := 0; i < perRound; i++ {
			b.Receive(transport.Inbound{From: from, Msg: wire.NewPublish(
				n1(fmt.Sprintf("m%d", total)))})
			total++
		}
		b.Barrier()
		// The barrier must have drained the shards: everything queued so
		// far is on the link right now, no settling allowed.
		if got := len(out.sent()); got != total {
			t.Fatalf("round %d: %d messages on link after Barrier, want %d", r, got, total)
		}
	}
	for i, m := range out.sent() {
		want := fmt.Sprintf("m%d", i)
		if got := m.Notif.String(); !strings.Contains(got, want) {
			t.Fatalf("message %d out of order: got %s, want %s", i, got, want)
		}
	}

	st := b.Stats()
	if st.EgressWriters != 2 {
		t.Errorf("EgressWriters = %d, want 2", st.EgressWriters)
	}
	if len(st.EgressShards) != 2 {
		t.Errorf("EgressShards = %d entries, want 2", len(st.EgressShards))
	}
	if st.EgressFlushes == 0 {
		t.Error("EgressFlushes = 0, want > 0 after writer activity")
	}
	if st.LinkSendErrorsTotal != 0 {
		t.Errorf("LinkSendErrorsTotal = %d on a healthy link", st.LinkSendErrorsTotal)
	}
}

// TestEgressLinkSendErrors verifies failed writes are counted per hop in
// Stats and logged exactly once per link transition, on both the inline
// and the writer-pool egress path.
func TestEgressLinkSendErrors(t *testing.T) {
	for _, writers := range []int{0, 2} {
		t.Run(fmt.Sprintf("writers=%d", writers), func(t *testing.T) {
			var buf bytes.Buffer
			log.SetOutput(&buf)
			defer log.SetOutput(os.Stderr)

			b := New("hub", Options{Strategy: routing.Flooding, EgressWriters: writers})
			b.Start()
			defer b.Close()
			out := &captureLink{}
			out.fail(errors.New("wire cut"))
			if err := b.AddLink("leaf", out); err != nil {
				t.Fatal(err)
			}

			from := wire.ClientHop("p")
			for i := 0; i < 4; i++ {
				b.Receive(transport.Inbound{From: from, Msg: wire.NewPublish(n1("x"))})
				b.Barrier() // one flush burst (and one failure) per round
			}

			st := b.Stats()
			hop := wire.BrokerHop("leaf")
			if st.LinkSendErrors[hop] == 0 {
				t.Fatalf("LinkSendErrors[%s] = 0 after failing writes", hop)
			}
			if st.LinkSendErrorsTotal != st.LinkSendErrors[hop] {
				t.Errorf("LinkSendErrorsTotal = %d, want %d",
					st.LinkSendErrorsTotal, st.LinkSendErrors[hop])
			}
			if n := strings.Count(buf.String(), "send to "); n != 1 {
				t.Errorf("logged %d send-failure lines, want exactly 1\n%s", n, buf.String())
			}

			// A replacement link re-arms the log-once latch.
			out2 := &captureLink{}
			out2.fail(errors.New("wire cut again"))
			if err := b.AddLink("leaf", out2); err != nil {
				t.Fatal(err)
			}
			b.Receive(transport.Inbound{From: from, Msg: wire.NewPublish(n1("y"))})
			b.Barrier()
			if n := strings.Count(buf.String(), "send to "); n != 2 {
				t.Errorf("logged %d send-failure lines after relink, want 2\n%s", n, buf.String())
			}
		})
	}
}

// TestOutboxSweep pins the retain-cap fix: a pending-map entry whose
// neighbor is gone and whose queue is empty must be swept at the next
// flush instead of keeping its map slot forever.
func TestOutboxSweep(t *testing.T) {
	b := New("hub", Options{Strategy: routing.Flooding})
	b.Start()
	defer b.Close()

	// Orphan entries: neighbors that are neither linked nor retained
	// (the state a nilled spike buffer leaves behind once its link is
	// gone).
	_ = b.exec(func() {
		b.out.pending["ghost1"] = nil
		b.out.pending["ghost2"] = make([]wire.Message, 0, 4)
	})
	// Any flush cycle must sweep them.
	b.Receive(transport.Inbound{From: wire.ClientHop("p"), Msg: wire.NewPublish(n1("x"))})
	b.Barrier()
	_ = b.exec(func() {
		for _, id := range []wire.BrokerID{"ghost1", "ghost2"} {
			if _, ok := b.out.pending[id]; ok {
				t.Errorf("pending[%s] survived the sweep", id)
			}
		}
	})

	// A half-open neighbor with queued traffic must NOT be swept: the
	// burst is retained until AddLink shows up.
	_ = b.exec(func() {
		b.send(wire.BrokerHop("late"), wire.NewPublish(n1("keep")))
	})
	b.Barrier()
	_ = b.exec(func() {
		if len(b.out.pending["late"]) != 1 {
			t.Errorf("retained burst for half-open neighbor was lost: %v", b.out.pending["late"])
		}
	})
	out := &captureLink{}
	if err := b.AddLink("late", out); err != nil {
		t.Fatal(err)
	}
	b.Barrier()
	if got := len(out.sent()); got == 0 {
		t.Error("retained burst never flushed after AddLink")
	}
}

// TestEgressRemoteClientDelivery checks that remote-client deliveries ride
// the writer shards: after a Barrier every matched notification is on the
// client's link, in sequence order.
func TestEgressRemoteClientDelivery(t *testing.T) {
	b := New("b1", Options{EgressWriters: 2})
	b.Start()
	defer b.Close()
	cl := &captureLink{}
	if err := b.AttachRemoteClient("rc", cl); err != nil {
		t.Fatal(err)
	}
	if err := b.Subscribe(wire.Subscription{
		Filter: filter.MustParse(`sym = "ACME"`), Client: "rc", ID: "s",
	}); err != nil {
		t.Fatal(err)
	}
	if err := b.AttachClient("p", nil); err != nil {
		t.Fatal(err)
	}
	const n = 25
	for i := 0; i < n; i++ {
		if err := b.Publish("p", n1("ACME")); err != nil {
			t.Fatal(err)
		}
	}
	b.Barrier()
	msgs := cl.sent()
	if len(msgs) != n {
		t.Fatalf("%d deliveries on the client link after Barrier, want %d", len(msgs), n)
	}
	for i, m := range msgs {
		if m.Type != wire.TypeDeliver || m.Deliver == nil {
			t.Fatalf("message %d is %v, want a deliver", i, m.Type)
		}
		if got, want := m.Deliver.Item.Seq, uint64(i+1); got != want {
			t.Fatalf("delivery %d has seq %d, want %d (FIFO broken)", i, got, want)
		}
	}
}

// TestEgressKillDiscards checks crash-stop semantics survive the writer
// pool: Kill returns promptly (writers drain and exit; barriers don't
// wedge) and nothing new reaches the wire afterwards.
func TestEgressKillDiscards(t *testing.T) {
	b := New("hub", Options{Strategy: routing.Flooding, EgressWriters: 2})
	b.Start()
	out := &captureLink{}
	if err := b.AddLink("leaf", out); err != nil {
		t.Fatal(err)
	}
	from := wire.ClientHop("p")
	b.Receive(transport.Inbound{From: from, Msg: wire.NewPublish(n1("x"))})
	b.Barrier()
	before := len(out.sent())

	b.Kill()
	b.Receive(transport.Inbound{From: from, Msg: wire.NewPublish(n1("y"))})
	if got := len(out.sent()); got != before {
		t.Errorf("killed broker wrote %d new messages", got-before)
	}
}
