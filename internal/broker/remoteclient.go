package broker

import (
	"repro/internal/transport"
	"repro/internal/wire"
)

// Remote clients: a client connected over a transport link (TCP) rather
// than in-process. The broker attaches it like a local client, with
// deliveries serialized back over the link; wire messages arriving from a
// client hop are routed into the same local-subscription code paths the
// in-process API uses, so remote and local clients are indistinguishable
// to the protocol.

// AttachRemoteClient attaches a client whose deliveries travel over the
// given link. The caller owns the link's lifecycle and should call
// DetachClient when the link dies.
func (b *Broker) AttachRemoteClient(id wire.ClientID, link transport.Link) error {
	hop := wire.ClientHop(id)
	return b.AttachClient(id, func(d wire.Deliver) {
		// Runs on the broker goroutine (the DeliverFunc contract). With an
		// egress pool the delivery rides the client link's writer shard —
		// the same pinning as neighbor bursts, so a slow client stops
		// stalling the run loop too. Send failures mean the link just
		// died; the virtual counterpart takes over as soon as the owner
		// detaches the client, but the failure is counted (and logged
		// once) so a flapping client is visible.
		m := wire.NewDeliver(d)
		if b.egress != nil {
			b.egress.handoffOne(hop, link, m)
			return
		}
		if err := link.Send(m); err != nil {
			b.sendErrs.record(b.id, hop, err)
		}
	})
}

// clientInbound handles wire messages arriving from an attached client's
// link, mapping them onto the same handlers the in-process API uses. Runs
// on the broker goroutine.
func (b *Broker) clientInbound(from wire.Hop, msg wire.Message) {
	client := from.Client
	switch msg.Type {
	case wire.TypePublish:
		if msg.Notif != nil {
			b.handlePublish(from, *msg.Notif, msg)
		}
	case wire.TypeSubscribe:
		if msg.Sub != nil {
			sub := *msg.Sub
			sub.Client = client // the link identity is authoritative
			// Errors (unknown client, duplicates) have no backchannel in
			// the v1 wire protocol; they are dropped like any malformed
			// message. The client observes the absence of deliveries.
			_ = b.localSubscribe(sub)
		}
	case wire.TypeUnsubscribe:
		if msg.Sub != nil {
			_ = b.localUnsubscribe(client, msg.Sub.ID)
		}
	case wire.TypeAdvertise:
		if msg.Sub != nil {
			if cs, ok := b.clients[client]; ok {
				cs.advs[msg.Sub.ID] = msg.Sub.Filter
			}
			adv := *msg.Sub
			adv.Client = client
			b.handleAdvertise(from, adv)
		}
	case wire.TypeUnadvertise:
		if msg.Sub != nil {
			if cs, ok := b.clients[client]; ok {
				delete(cs.advs, msg.Sub.ID)
			}
			adv := *msg.Sub
			adv.Client = client
			b.handleUnadvertise(from, adv)
		}
	}
}
