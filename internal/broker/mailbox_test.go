package broker

import (
	"sync"
	"testing"
)

func TestMailboxFIFO(t *testing.T) {
	m := newMailbox()
	const n = 100
	for i := 0; i < n; i++ {
		i := i
		m.push(task{fn: func() { _ = i }})
	}
	if m.len() != n {
		t.Fatalf("len = %d", m.len())
	}
	// Tag tasks through a side channel to verify order.
	m2 := newMailbox()
	var got []int
	for i := 0; i < n; i++ {
		i := i
		m2.push(task{fn: func() { got = append(got, i) }})
	}
	for i := 0; i < n; i++ {
		tk, ok := m2.pop()
		if !ok {
			t.Fatal("pop failed")
		}
		tk.fn()
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestMailboxCloseDrains(t *testing.T) {
	m := newMailbox()
	m.push(task{fn: func() {}})
	m.push(task{fn: func() {}})
	m.close()
	// Remaining tasks still pop after close.
	if _, ok := m.pop(); !ok {
		t.Fatal("drained item lost")
	}
	if _, ok := m.pop(); !ok {
		t.Fatal("drained item lost")
	}
	if _, ok := m.pop(); ok {
		t.Fatal("pop after drain should report done")
	}
	// Pushing after close is a silent no-op.
	m.push(task{fn: func() {}})
	if _, ok := m.pop(); ok {
		t.Fatal("push after close should be dropped")
	}
}

func TestMailboxConcurrentProducers(t *testing.T) {
	m := newMailbox()
	const producers, each = 8, 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				m.push(task{fn: func() {}})
			}
		}()
	}
	done := make(chan struct{})
	count := 0
	go func() {
		defer close(done)
		for count < producers*each {
			if _, ok := m.pop(); !ok {
				return
			}
			count++
		}
	}()
	wg.Wait()
	<-done
	if count != producers*each {
		t.Fatalf("consumed %d of %d", count, producers*each)
	}
}

func TestMailboxPopBlocksUntilPush(t *testing.T) {
	m := newMailbox()
	got := make(chan struct{})
	go func() {
		if _, ok := m.pop(); ok {
			close(got)
		}
	}()
	m.push(task{fn: func() {}})
	<-got
}
