package broker

import (
	"math/rand"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/flow"
	"repro/internal/message"
	"repro/internal/wire"
)

// drainAll pops batches until n tasks have been consumed, returning them
// in pop order.
func drainAll(t *testing.T, m *mailbox, n int) []task {
	t.Helper()
	var out []task
	for len(out) < n {
		batch, ok := m.popBatch()
		if !ok {
			t.Fatalf("popBatch reported done after %d of %d tasks", len(out), n)
		}
		out = append(out, batch...)
		m.recycle(batch)
	}
	if len(out) != n {
		t.Fatalf("drained %d tasks, want %d", len(out), n)
	}
	return out
}

func TestMailboxBatchFIFO(t *testing.T) {
	m := newMailbox(0, 0, flow.Block)
	const n = 100
	var got []int
	for i := 0; i < n; i++ {
		i := i
		m.push(task{fn: func() { got = append(got, i) }})
	}
	if m.len() != n {
		t.Fatalf("len = %d", m.len())
	}
	for _, tk := range drainAll(t, m, n) {
		tk.fn()
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

// TestMailboxMaxBatch verifies the drain cap used by the parity tests:
// every batch is at most max tasks and order is still exact FIFO.
func TestMailboxMaxBatch(t *testing.T) {
	m := newMailbox(3, 0, flow.Block)
	const n = 10
	var got []int
	for i := 0; i < n; i++ {
		i := i
		m.push(task{fn: func() { got = append(got, i) }})
	}
	consumed := 0
	for consumed < n {
		batch, ok := m.popBatch()
		if !ok {
			t.Fatal("popBatch reported done early")
		}
		if len(batch) > 3 {
			t.Fatalf("batch of %d exceeds max 3", len(batch))
		}
		for _, tk := range batch {
			tk.fn()
		}
		consumed += len(batch)
		m.recycle(batch)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated under max batch: %v", got)
		}
	}
}

func TestMailboxCloseDrains(t *testing.T) {
	m := newMailbox(0, 0, flow.Block)
	m.push(task{fn: func() {}})
	m.push(task{fn: func() {}})
	m.close()
	// Remaining tasks still pop after close.
	batch, ok := m.popBatch()
	if !ok || len(batch) != 2 {
		t.Fatalf("drained %d items after close, ok=%v", len(batch), ok)
	}
	if _, ok := m.popBatch(); ok {
		t.Fatal("popBatch after drain should report done")
	}
	// Pushing after close is a silent no-op.
	m.push(task{fn: func() {}})
	m.pushBurst(wire.BrokerHop("x"), []wire.Message{{}})
	if _, ok := m.popBatch(); ok {
		t.Fatal("push after close should be dropped")
	}
}

// TestMailboxDrainBatchProperty is the drain-batch property test: across
// concurrent pushers (mixing push and pushBatch), popBatch must lose
// nothing, duplicate nothing, and preserve exact FIFO order per pusher —
// the strongest order guarantee a multi-producer queue can offer.
func TestMailboxDrainBatchProperty(t *testing.T) {
	const producers, each = 8, 500
	for trial := 0; trial < 5; trial++ {
		m := newMailbox(0, 0, flow.Block)
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			p := p
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(trial*producers + p)))
				for i := 0; i < each; {
					// Mix single pushes with bursts, as links do. Bursts
					// carry their index in the message payload since a
					// burst shares one hop.
					if rng.Intn(2) == 0 {
						m.push(task{in: inboundTag(p, i)})
						i++
						continue
					}
					burst := 1 + rng.Intn(7)
					if i+burst > each {
						burst = each - i
					}
					ms := make([]wire.Message, burst)
					for j := 0; j < burst; j++ {
						ms[j] = taggedMsg(i + j)
					}
					m.pushBurst(producerHop(p), ms)
					i += burst
				}
			}()
		}

		consumed := make(chan [][]int, 1)
		go func() {
			perProducer := make([][]int, producers)
			total := 0
			for total < producers*each {
				batch, ok := m.popBatch()
				if !ok {
					break
				}
				for _, tk := range batch {
					p, i := tagOf(tk.in)
					perProducer[p] = append(perProducer[p], i)
				}
				total += len(batch)
				m.recycle(batch)
			}
			consumed <- perProducer
		}()

		wg.Wait()
		perProducer := <-consumed
		for p, seq := range perProducer {
			if len(seq) != each {
				t.Fatalf("trial %d: producer %d delivered %d of %d", trial, p, len(seq), each)
			}
			for i, v := range seq {
				if v != i {
					t.Fatalf("trial %d: producer %d order violated at %d: got %d", trial, p, i, v)
				}
			}
		}
	}
}

// The property test encodes the producer in the hop and the per-producer
// index in the message sequence field, so both push and pushBurst tasks
// carry provenance without touching task.fn.
func producerHop(p int) wire.Hop {
	return wire.BrokerHop(wire.BrokerID(strconv.Itoa(p)))
}

func taggedMsg(i int) wire.Message {
	return wire.Message{Type: wire.TypeDeliver, Deliver: &wire.Deliver{Item: wire.SeqNotification{Seq: uint64(i)}}}
}

func inboundTag(p, i int) inbound {
	return inbound{From: producerHop(p), Msg: taggedMsg(i)}
}

func tagOf(in inbound) (p, i int) {
	p, _ = strconv.Atoi(string(in.From.Broker))
	return p, int(in.Msg.Deliver.Item.Seq)
}

func TestMailboxPopBlocksUntilPush(t *testing.T) {
	m := newMailbox(0, 0, flow.Block)
	got := make(chan struct{})
	go func() {
		if _, ok := m.popBatch(); ok {
			close(got)
		}
	}()
	m.push(task{fn: func() {}})
	<-got
}

// TestMailboxRecycleReuse checks the two-list design actually reuses
// backing arrays: after a push/pop/recycle cycle the next drain returns a
// slice with the recycled capacity.
func TestMailboxRecycleReuse(t *testing.T) {
	m := newMailbox(0, 0, flow.Block)
	for i := 0; i < 64; i++ {
		m.push(task{fn: func() {}})
	}
	batch, _ := m.popBatch()
	c := cap(batch)
	m.recycle(batch)
	m.push(task{fn: func() {}})
	batch2, _ := m.popBatch()
	if cap(batch2) != c {
		t.Errorf("recycled capacity not reused: got %d, want %d", cap(batch2), c)
	}
	if len(batch2) != 1 || batch2[0].fn == nil {
		t.Fatal("expected the pushed task in the recycled slice")
	}
	// recycle must have cleared the stale tasks beyond the live length:
	// retained references would keep their closures/payloads from the GC.
	for i, tk := range batch2[1:cap(batch2)] {
		if tk.fn != nil {
			t.Fatalf("recycled slice retains stale task at %d", i+1)
		}
	}
}

// TestMailboxRecycleCap checks that spike-sized batches are not retained.
func TestMailboxRecycleCap(t *testing.T) {
	m := newMailbox(0, 0, flow.Block)
	for i := 0; i < flow.MaxRecycledCap+1; i++ {
		m.push(task{fn: func() {}})
	}
	batch, _ := m.popBatch()
	m.recycle(batch)
	m.push(task{fn: func() {}})
	batch2, _ := m.popBatch()
	if cap(batch2) >= cap(batch) {
		t.Errorf("spike-sized array was retained: cap %d", cap(batch2))
	}
}

// TestMailboxBoundedShedsNotifications: a bounded shed-newest mailbox
// drops excess publishes but keeps every control task.
func TestMailboxBoundedShedsNotifications(t *testing.T) {
	m := newMailbox(0, 2, flow.ShedNewest)
	pub := wire.NewPublish(message.Notification{})
	for i := 0; i < 5; i++ {
		m.push(task{in: inbound{From: wire.BrokerHop("x"), Msg: pub}})
	}
	m.push(task{fn: func() {}}) // control: admitted over capacity
	if got := m.len(); got != 3 {
		t.Fatalf("len = %d, want 2 publishes + 1 closure", got)
	}
	s := m.flowStats()
	if s.ShedNewest != 3 {
		t.Errorf("ShedNewest = %d, want 3", s.ShedNewest)
	}
	if s.ControlOverflow != 1 {
		t.Errorf("ControlOverflow = %d, want 1", s.ControlOverflow)
	}
}

// TestMailboxBoundedClosureNeverBlocks: exec/Barrier closures must land
// immediately even when a Block mailbox is full, or Stats and Barrier
// would deadlock against a stalled consumer.
func TestMailboxBoundedClosureNeverBlocks(t *testing.T) {
	m := newMailbox(0, 1, flow.Block)
	pub := wire.NewPublish(message.Notification{})
	m.push(task{in: inbound{From: wire.BrokerHop("x"), Msg: pub}})
	done := make(chan struct{})
	go func() {
		m.push(task{fn: func() {}})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("closure push blocked on a full mailbox")
	}
}

// TestMailboxBoundedBurstPolicyPerMessage: a burst mixing publishes and
// control through a full mailbox sheds only the publishes.
func TestMailboxBoundedBurstPolicyPerMessage(t *testing.T) {
	m := newMailbox(0, 1, flow.ShedNewest)
	ms := []wire.Message{
		wire.NewPublish(message.Notification{}),
		wire.NewPublish(message.Notification{}), // shed: over capacity
		wire.NewSubscribe(wire.Subscription{}),  // control: admitted
	}
	m.pushBurst(wire.BrokerHop("x"), ms)
	batch, _ := m.popBatch()
	if len(batch) != 2 {
		t.Fatalf("admitted %d tasks, want 2", len(batch))
	}
	if batch[0].in.Msg.Type != wire.TypePublish || batch[1].in.Msg.Type != wire.TypeSubscribe {
		t.Fatalf("wrong survivors: %v, %v", batch[0].in.Msg.Type, batch[1].in.Msg.Type)
	}
}
