package broker

import (
	"fmt"

	"repro/internal/filter"
	"repro/internal/location"
	"repro/internal/locfilter"
	"repro/internal/routing"
	"repro/internal/wire"
)

// This file implements logical mobility (Section 5): location-dependent
// subscriptions carrying the myloc marker. The consumer's local broker
// filters exactly against the current location (F₀ = F̃); each broker
// Bᵢ₊₁ along the path toward producers holds a widened entry
// Fᵢ = ploc(x, sᵢ), where the widening steps sᵢ follow the adaptivity
// scheme of Section 5.3 (computed incrementally as the subscription
// travels: each broker advances the schedule state by its own processing
// delay δ before forwarding).
//
// On a location change x → y, the border broker switches its exact filter
// instantly (no blackout — notifications for y were already flowing
// because the upstream filters cover the possible next locations) and
// sends a LocUpdate upstream. Each broker applies the ploc delta at its
// own step, i.e. unsubscribes the removed locations and subscribes the
// added ones, and forwards the update — stopping as soon as its delta is
// empty (ploc composition makes every further hop's delta empty too),
// which is the "restricted flooding" message saving of Figure 9.

// localSubscribeLocDep registers a location-dependent subscription from a
// locally attached client. Runs on the broker goroutine.
func (b *Broker) localSubscribeLocDep(cs *clientState, sub wire.Subscription) error {
	if b.opts.Registry == nil {
		return fmt.Errorf("broker %s: no movement-graph registry configured", b.id)
	}
	g, err := b.opts.Registry.Lookup(sub.GraphName)
	if err != nil {
		return err
	}
	if !g.Contains(sub.Loc) {
		return fmt.Errorf("broker %s: location %q not in graph %q", b.id, sub.Loc, sub.GraphName)
	}
	exact, err := locfilter.Instantiate(sub.Filter, sub.LocAttr, g, sub.Loc, 0)
	if err != nil {
		return err
	}
	key := subKey(sub.Client, sub.ID)
	clientHop := wire.ClientHop(sub.Client)

	cs.subs[sub.ID] = &clientSub{sub: sub, exact: exact, nextSeq: 1}
	b.subs.Add(routing.Entry{Filter: exact, Hop: clientHop, Client: sub.Client, SubID: sub.ID})

	ls := &locSubState{sub: sub, step: 0, entry: exact, from: clientHop}
	b.locSubs[key] = ls
	b.forwardLocSub(ls, clientHop)
	return nil
}

// forwardLocSub advances the adaptivity state by this broker's δ and
// forwards the subscription toward producers.
func (b *Broker) forwardLocSub(ls *locSubState, from wire.Hop) {
	next := ls.sub
	state := locfilter.StepState{
		Delta:        next.Delta,
		CumDelay:     next.CumDelay,
		Steps:        next.Steps,
		NextMultiple: next.NextMultiple,
	}
	if state.NextMultiple == 0 {
		state.NextMultiple = 1
	}
	state = state.Advance(b.opts.ProcDelay)
	next.CumDelay = state.CumDelay
	next.Steps = state.Steps
	next.NextMultiple = state.NextMultiple

	for _, h := range b.subForwardHops(b.locOverlapFilter(ls.sub), from) {
		if h.IsClient() || b.alreadyForwarded(ls, h) {
			continue
		}
		ls.fwdTo = append(ls.fwdTo, h)
		b.send(h, wire.NewSubscribe(next))
	}
}

// locOverlapFilter is the filter used to decide which advertisers a
// location-dependent subscription must travel toward: the base filter with
// the location marker removed (any location could become relevant).
func (b *Broker) locOverlapFilter(sub wire.Subscription) filter.Filter {
	return sub.Filter.Without(sub.LocAttr)
}

func (b *Broker) alreadyForwarded(ls *locSubState, h wire.Hop) bool {
	for _, f := range ls.fwdTo {
		if f == h {
			return true
		}
	}
	return false
}

// handleLocSubscribe processes a location-dependent subscription arriving
// over a link: instantiate the widened entry Fᵢ = ploc(x, sᵢ) for this
// hop, store it, and forward with advanced adaptivity state.
func (b *Broker) handleLocSubscribe(from wire.Hop, sub wire.Subscription) {
	if b.opts.Registry == nil {
		return
	}
	g, err := b.opts.Registry.Lookup(sub.GraphName)
	if err != nil {
		return
	}
	// Non-local hops widen by at least one step so that notifications for
	// the consumer's possible next locations are already under way when it
	// moves (Table 3's note on flooding semantics).
	step := locfilter.EffectiveStep(sub.Steps)
	entry, err := locfilter.Instantiate(sub.Filter, sub.LocAttr, g, sub.Loc, step)
	if err != nil {
		return
	}
	key := sub.Key()
	if old, ok := b.locSubs[key]; ok {
		// Re-subscription (e.g. refresh): replace the old entry.
		b.subs.Remove(routing.Entry{Filter: old.entry, Hop: old.from, Client: sub.Client, SubID: sub.ID})
	}
	b.subs.Add(routing.Entry{Filter: entry, Hop: from, Client: sub.Client, SubID: sub.ID})
	ls := &locSubState{sub: sub, step: step, entry: entry, from: from}
	if old, ok := b.locSubs[key]; ok {
		ls.fwdTo = old.fwdTo
	}
	b.locSubs[key] = ls
	b.forwardLocSub(ls, from)
}

// handleLocUpdate applies a location change at this broker's widening step
// and propagates it while it still changes something.
func (b *Broker) handleLocUpdate(from wire.Hop, lu wire.LocUpdate) {
	key := subKey(lu.Client, lu.ID)
	ls, ok := b.locSubs[key]
	if !ok {
		return
	}
	g, err := b.opts.Registry.Lookup(ls.sub.GraphName)
	if err != nil {
		return
	}
	cur := ls.sub.Loc
	delta := locfilter.MoveDelta(g, cur, lu.NewLoc, ls.step)
	ls.sub.Loc = lu.NewLoc
	if delta.Empty() {
		// ploc(cur, s) == ploc(new, s) implies equality at every larger
		// step upstream: stop propagating (restricted flooding).
		return
	}
	newEntry, err := locfilter.Instantiate(ls.sub.Filter, ls.sub.LocAttr, g, lu.NewLoc, ls.step)
	if err != nil {
		return
	}
	b.subs.Remove(routing.Entry{Filter: ls.entry, Hop: ls.from, Client: lu.Client, SubID: lu.ID})
	b.subs.Add(routing.Entry{Filter: newEntry, Hop: ls.from, Client: lu.Client, SubID: lu.ID})
	ls.entry = newEntry
	for _, h := range ls.fwdTo {
		b.send(h, wire.NewLocUpdate(lu))
	}
}

// SetLocation moves a logically mobile client to a new location
// ("declaring the new location by sending a message to its broker B₁",
// Section 5.1). The move must be legal under the movement graph.
func (b *Broker) SetLocation(client wire.ClientID, id wire.SubID, newLoc location.Location) error {
	var err error
	execErr := b.exec(func() { err = b.setLocation(client, id, newLoc) })
	if execErr != nil {
		return execErr
	}
	return err
}

func (b *Broker) setLocation(client wire.ClientID, id wire.SubID, newLoc location.Location) error {
	cs, ok := b.clients[client]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownClient, client)
	}
	st, ok := cs.subs[id]
	if !ok || !st.sub.LocDependent {
		return fmt.Errorf("%w: %s/%s", ErrUnknownSub, client, id)
	}
	g, err := b.opts.Registry.Lookup(st.sub.GraphName)
	if err != nil {
		return err
	}
	old := st.sub.Loc
	if old == newLoc {
		return nil
	}
	if !locfilter.ValidMove(g, old, newLoc) {
		return fmt.Errorf("%w: %s -> %s", ErrInvalidMove, old, newLoc)
	}
	exact, err := locfilter.Instantiate(st.sub.Filter, st.sub.LocAttr, g, newLoc, 0)
	if err != nil {
		return err
	}
	key := subKey(client, id)
	ls := b.locSubs[key]
	clientHop := wire.ClientHop(client)

	// Instant switch of the client-side filter: this is what removes the
	// blackout period of the naive sub/unsub approach.
	b.subs.Remove(routing.Entry{Filter: st.exact, Hop: clientHop, Client: client, SubID: id})
	b.subs.Add(routing.Entry{Filter: exact, Hop: clientHop, Client: client, SubID: id})
	st.exact = exact
	st.sub.Loc = newLoc
	if ls != nil {
		ls.sub.Loc = newLoc
		ls.entry = exact
		lu := wire.LocUpdate{Client: client, ID: id, OldLoc: old, NewLoc: newLoc}
		for _, h := range ls.fwdTo {
			b.send(h, wire.NewLocUpdate(lu))
		}
	}
	return nil
}

// teardownLocSub withdraws a location-dependent subscription upstream.
func (b *Broker) teardownLocSub(key string) {
	ls, ok := b.locSubs[key]
	if !ok {
		return
	}
	delete(b.locSubs, key)
	for _, h := range ls.fwdTo {
		b.send(h, wire.NewUnsubscribe(ls.sub))
	}
}

// flushLocSubToward forwards a known location-dependent subscription
// toward a newly learned advertiser direction.
func (b *Broker) flushLocSubToward(key string, ls *locSubState, advHop wire.Hop, advFilter filter.Filter) {
	if advHop.IsClient() || advHop == ls.from || b.alreadyForwarded(ls, advHop) {
		return
	}
	if !b.locOverlapFilter(ls.sub).Overlaps(advFilter) {
		return
	}
	next := ls.sub
	state := locfilter.StepState{
		Delta:        next.Delta,
		CumDelay:     next.CumDelay,
		Steps:        next.Steps,
		NextMultiple: next.NextMultiple,
	}
	if state.NextMultiple == 0 {
		state.NextMultiple = 1
	}
	state = state.Advance(b.opts.ProcDelay)
	next.CumDelay = state.CumDelay
	next.Steps = state.Steps
	next.NextMultiple = state.NextMultiple
	ls.fwdTo = append(ls.fwdTo, advHop)
	b.send(advHop, wire.NewSubscribe(next))
	_ = key
}
