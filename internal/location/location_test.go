package location

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetOperations(t *testing.T) {
	a := NewSet("a", "b")
	b := NewSet("b", "c")
	if got := a.Union(b); !got.Equal(NewSet("a", "b", "c")) {
		t.Errorf("Union = %s", got)
	}
	if got := a.Minus(b); !got.Equal(NewSet("a")) {
		t.Errorf("Minus = %s", got)
	}
	if got := a.Intersect(b); !got.Equal(NewSet("b")) {
		t.Errorf("Intersect = %s", got)
	}
	if !NewSet("a").Subset(a) || a.Subset(NewSet("a")) {
		t.Error("Subset misbehaves")
	}
	if a.Equal(b) {
		t.Error("distinct sets reported equal")
	}
	if got := NewSet("c", "a", "b").String(); got != "{a, b, c}" {
		t.Errorf("String = %q", got)
	}
	cl := a.Clone()
	cl.Add("z")
	if a.Has("z") {
		t.Error("Clone aliases the original")
	}
}

func TestFigureSevenPlocMatchesTable1(t *testing.T) {
	g := FigureSeven()
	tests := []struct {
		x    Location
		q    int
		want Set
	}{
		{"a", 0, NewSet("a")},
		{"b", 0, NewSet("b")},
		{"a", 1, NewSet("a", "b", "c")},
		{"b", 1, NewSet("a", "b", "d")},
		{"c", 1, NewSet("a", "c", "d")},
		{"d", 1, NewSet("b", "c", "d")},
		{"a", 2, NewSet("a", "b", "c", "d")},
		{"d", 3, NewSet("a", "b", "c", "d")},
	}
	for _, tt := range tests {
		if got := g.Ploc(tt.x, tt.q); !got.Equal(tt.want) {
			t.Errorf("ploc(%s, %d) = %s, want %s", tt.x, tt.q, got, tt.want)
		}
	}
}

func TestPlocEdgeCases(t *testing.T) {
	g := FigureSeven()
	if got := g.Ploc("nowhere", 1); got.Len() != 0 {
		t.Errorf("ploc of unknown location = %s", got)
	}
	if got := g.Ploc("a", -1); got.Len() != 0 {
		t.Errorf("ploc with negative steps = %s", got)
	}
}

// TestPlocMonotonicity verifies Equation 1: ploc(x, q) ⊆ ploc(x, q+1).
func TestPlocMonotonicity(t *testing.T) {
	graphs := map[string]*Graph{
		"fig7": FigureSeven(),
		"line": Line(10),
		"ring": Ring(9),
		"grid": Grid(4, 4),
	}
	for name, g := range graphs {
		for _, x := range g.Locations() {
			for q := 0; q < g.Len(); q++ {
				if !g.Ploc(x, q).Subset(g.Ploc(x, q+1)) {
					t.Errorf("%s: ploc(%s, %d) not subset of ploc(%s, %d)", name, x, q, x, q+1)
				}
			}
		}
	}
}

// TestPlocComposition verifies the composition property the restricted
// flooding optimization relies on: if ploc(x, q) == ploc(y, q) then
// ploc(x, q') == ploc(y, q') for every q' >= q.
func TestPlocComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	graphs := []*Graph{FigureSeven(), Line(8), Ring(7), Grid(3, 4)}
	for _, g := range graphs {
		locs := g.Locations()
		for trial := 0; trial < 200; trial++ {
			x := locs[rng.Intn(len(locs))]
			y := locs[rng.Intn(len(locs))]
			for q := 0; q <= g.Diameter(); q++ {
				if g.Ploc(x, q).Equal(g.Ploc(y, q)) {
					for qq := q; qq <= g.Diameter()+1; qq++ {
						if !g.Ploc(x, qq).Equal(g.Ploc(y, qq)) {
							t.Fatalf("composition violated: ploc(%s,%d)==ploc(%s,%d) but differs at %d",
								x, q, y, q, qq)
						}
					}
				}
			}
		}
	}
}

func TestBuilders(t *testing.T) {
	line := Line(5)
	if line.Len() != 5 || line.Degree("l0") != 1 || line.Degree("l2") != 2 {
		t.Error("Line(5) malformed")
	}
	if line.Diameter() != 4 {
		t.Errorf("Line(5) diameter = %d, want 4", line.Diameter())
	}
	ring := Ring(6)
	if ring.Len() != 6 || ring.Diameter() != 3 {
		t.Errorf("Ring(6): len=%d diam=%d", ring.Len(), ring.Diameter())
	}
	grid := Grid(3, 3)
	if grid.Len() != 9 {
		t.Errorf("Grid(3,3) has %d locations", grid.Len())
	}
	if grid.Degree(GridName(1, 1)) != 4 || grid.Degree(GridName(0, 0)) != 2 {
		t.Error("grid degrees wrong")
	}
	if grid.Diameter() != 4 {
		t.Errorf("Grid(3,3) diameter = %d, want 4", grid.Diameter())
	}
	comp := Complete("x", "y", "z")
	if comp.Diameter() != 1 {
		t.Errorf("Complete diameter = %d", comp.Diameter())
	}
	single := Line(1)
	if single.Len() != 1 || !single.Connected() {
		t.Error("Line(1) malformed")
	}
	fe := FromEdges([][2]Location{{"p", "q"}, {"q", "r"}})
	if fe.Distance("p", "r") != 2 {
		t.Error("FromEdges distances wrong")
	}
}

func TestDistanceAndEccentricity(t *testing.T) {
	g := FigureSeven()
	tests := []struct {
		x, y Location
		want int
	}{
		{"a", "a", 0},
		{"a", "b", 1},
		{"a", "d", 2},
		{"b", "c", 2},
	}
	for _, tt := range tests {
		if got := g.Distance(tt.x, tt.y); got != tt.want {
			t.Errorf("Distance(%s, %s) = %d, want %d", tt.x, tt.y, got, tt.want)
		}
	}
	if got := g.Distance("a", "zz"); got != -1 {
		t.Errorf("Distance to unknown = %d, want -1", got)
	}
	if got := g.Eccentricity("a"); got != 2 {
		t.Errorf("Eccentricity(a) = %d, want 2", got)
	}
	if got := g.Diameter(); got != 2 {
		t.Errorf("Diameter = %d, want 2", got)
	}
}

func TestValidate(t *testing.T) {
	if err := NewGraph().Validate(); err == nil {
		t.Error("empty graph should fail validation")
	}
	g := NewGraph()
	g.AddEdge("a", "b")
	g.AddLocation("island")
	if err := g.Validate(); err == nil {
		t.Error("disconnected graph should fail validation")
	}
	if err := FigureSeven().Validate(); err != nil {
		t.Errorf("FigureSeven should validate: %v", err)
	}
}

func TestItinerary(t *testing.T) {
	g := FigureSeven()
	it := Itinerary{"a", "b", "d"}
	if !it.Valid(g) {
		t.Error("paper itinerary a,b,d should be valid")
	}
	if (Itinerary{"a", "d"}).Valid(g) {
		t.Error("a->d is two steps, itinerary should be invalid")
	}
	if (Itinerary{"a", "zz"}).Valid(g) {
		t.Error("unknown location should invalidate")
	}
	if got := it.At(0); got != "a" {
		t.Errorf("At(0) = %s", got)
	}
	if got := it.At(99); got != "d" {
		t.Errorf("At(99) = %s, want final location", got)
	}
	if got := it.At(-1); got != "a" {
		t.Errorf("At(-1) = %s", got)
	}
	if got := (Itinerary{}).At(3); got != "" {
		t.Errorf("empty itinerary At = %q", got)
	}
	// Stationary steps are allowed.
	if !(Itinerary{"a", "a", "b"}).Valid(g) {
		t.Error("staying put must be a legal move")
	}
}

func TestRandomWalkIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, g := range []*Graph{FigureSeven(), Grid(4, 4), Ring(8)} {
		start := g.Locations()[0]
		it := RandomWalk(g, start, 50, rng.Intn)
		if len(it) != 50 {
			t.Fatalf("walk length %d, want 50", len(it))
		}
		if it[0] != start {
			t.Errorf("walk starts at %s, want %s", it[0], start)
		}
		if !it.Valid(g) {
			t.Errorf("random walk violates the movement graph: %v", it)
		}
	}
}

// TestPlocSizeQuickOnRing property-tests |ploc| on rings: 2q+1 capped at n.
func TestPlocSizeQuickOnRing(t *testing.T) {
	f := func(nRaw, qRaw uint8) bool {
		n := int(nRaw%20) + 3
		q := int(qRaw % 15)
		g := Ring(n)
		want := 2*q + 1
		if want > n {
			want = n
		}
		return g.Ploc(g.Locations()[0], q).Len() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
