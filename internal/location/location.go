// Package location implements the location substrate of Section 5: a
// finite universe L of consumer locations, movement graphs that restrict
// how fast a consumer can move, and the possible-location function
//
//	ploc : L × N → 2^L
//
// which returns the set of locations reachable from x in at most q
// movement steps (remaining in place is always a possible move, so
// ploc(x, q) ⊆ ploc(x, q+1) — Equation 1 of the paper).
package location

import (
	"fmt"
	"sort"
	"strings"
)

// Location names one element of the location universe L — a room, a street
// block, a GPS cell, depending on the application.
type Location string

// Set is a set of locations.
type Set map[Location]struct{}

// NewSet builds a set from the given locations.
func NewSet(ls ...Location) Set {
	s := make(Set, len(ls))
	for _, l := range ls {
		s[l] = struct{}{}
	}
	return s
}

// Has reports membership.
func (s Set) Has(l Location) bool {
	_, ok := s[l]
	return ok
}

// Add inserts a location.
func (s Set) Add(l Location) { s[l] = struct{}{} }

// Len returns the cardinality.
func (s Set) Len() int { return len(s) }

// Clone returns a copy of the set.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	for l := range s {
		out[l] = struct{}{}
	}
	return out
}

// Union returns s ∪ t as a new set.
func (s Set) Union(t Set) Set {
	out := s.Clone()
	for l := range t {
		out[l] = struct{}{}
	}
	return out
}

// Minus returns s \ t as a new set.
func (s Set) Minus(t Set) Set {
	out := make(Set)
	for l := range s {
		if !t.Has(l) {
			out[l] = struct{}{}
		}
	}
	return out
}

// Intersect returns s ∩ t as a new set.
func (s Set) Intersect(t Set) Set {
	out := make(Set)
	for l := range s {
		if t.Has(l) {
			out[l] = struct{}{}
		}
	}
	return out
}

// Equal reports whether two sets contain the same locations.
func (s Set) Equal(t Set) bool {
	if len(s) != len(t) {
		return false
	}
	for l := range s {
		if !t.Has(l) {
			return false
		}
	}
	return true
}

// Subset reports whether s ⊆ t.
func (s Set) Subset(t Set) bool {
	for l := range s {
		if !t.Has(l) {
			return false
		}
	}
	return true
}

// Sorted returns the locations in sorted order.
func (s Set) Sorted() []Location {
	out := make([]Location, 0, len(s))
	for l := range s {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the set in the paper's notation, e.g. "{a, b, c}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range s.Sorted() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(string(l))
	}
	b.WriteByte('}')
	return b.String()
}

// Graph is an undirected movement graph over a location universe
// (Figure 7). An edge (x, y) means a consumer at x can be at y after one
// movement step. Staying in place is always possible and need not be
// modeled as a self-loop.
type Graph struct {
	adj map[Location]Set
}

// NewGraph returns an empty movement graph.
func NewGraph() *Graph {
	return &Graph{adj: make(map[Location]Set)}
}

// AddLocation ensures the location exists in the universe, even if
// isolated.
func (g *Graph) AddLocation(l Location) {
	if _, ok := g.adj[l]; !ok {
		g.adj[l] = make(Set)
	}
}

// AddEdge inserts an undirected movement edge between a and b, creating
// the locations as needed.
func (g *Graph) AddEdge(a, b Location) {
	g.AddLocation(a)
	g.AddLocation(b)
	g.adj[a].Add(b)
	g.adj[b].Add(a)
}

// Contains reports whether the location is part of the universe.
func (g *Graph) Contains(l Location) bool {
	_, ok := g.adj[l]
	return ok
}

// Len returns |L|.
func (g *Graph) Len() int { return len(g.adj) }

// Locations returns the universe in sorted order.
func (g *Graph) Locations() []Location {
	out := make([]Location, 0, len(g.adj))
	for l := range g.adj {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Universe returns the whole location set.
func (g *Graph) Universe() Set {
	out := make(Set, len(g.adj))
	for l := range g.adj {
		out[l] = struct{}{}
	}
	return out
}

// Neighbors returns the locations adjacent to l (excluding l itself),
// sorted.
func (g *Graph) Neighbors(l Location) []Location {
	return g.adj[l].Sorted()
}

// Degree returns the number of neighbors of l.
func (g *Graph) Degree(l Location) int { return len(g.adj[l]) }

// Ploc returns ploc(x, q): the set of locations reachable from x within q
// movement steps, always including x itself. If x is not in the universe
// the result is empty. For q < 0 the result is empty as well.
func (g *Graph) Ploc(x Location, q int) Set {
	out := make(Set)
	if q < 0 || !g.Contains(x) {
		return out
	}
	out.Add(x)
	frontier := []Location{x}
	for step := 0; step < q && len(frontier) > 0; step++ {
		var next []Location
		for _, l := range frontier {
			for n := range g.adj[l] {
				if !out.Has(n) {
					out.Add(n)
					next = append(next, n)
				}
			}
		}
		frontier = next
	}
	return out
}

// Distance returns the number of movement steps on a shortest path from x
// to y, or -1 when unreachable.
func (g *Graph) Distance(x, y Location) int {
	if !g.Contains(x) || !g.Contains(y) {
		return -1
	}
	if x == y {
		return 0
	}
	visited := NewSet(x)
	frontier := []Location{x}
	for d := 1; len(frontier) > 0; d++ {
		var next []Location
		for _, l := range frontier {
			for n := range g.adj[l] {
				if n == y {
					return d
				}
				if !visited.Has(n) {
					visited.Add(n)
					next = append(next, n)
				}
			}
		}
		frontier = next
	}
	return -1
}

// Eccentricity returns the greatest distance from x to any reachable
// location. It equals the smallest q with ploc(x, q) maximal.
func (g *Graph) Eccentricity(x Location) int {
	ecc := 0
	for _, y := range g.Locations() {
		if d := g.Distance(x, y); d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the maximum eccentricity over the universe.
func (g *Graph) Diameter() int {
	diam := 0
	for _, x := range g.Locations() {
		if e := g.Eccentricity(x); e > diam {
			diam = e
		}
	}
	return diam
}

// Connected reports whether every location is reachable from every other.
func (g *Graph) Connected() bool {
	locs := g.Locations()
	if len(locs) <= 1 {
		return true
	}
	return g.Ploc(locs[0], len(locs)).Len() == len(locs)
}

// Validate checks that the graph is non-empty and connected, which the
// adaptivity scheme assumes (otherwise ploc never reaches the full
// universe and flooding semantics are unattainable).
func (g *Graph) Validate() error {
	if g.Len() == 0 {
		return fmt.Errorf("location: empty movement graph")
	}
	if !g.Connected() {
		return fmt.Errorf("location: movement graph is not connected")
	}
	return nil
}
