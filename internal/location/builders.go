package location

import (
	"fmt"
	"strconv"
)

// FigureSeven returns the paper's example movement graph of Figure 7: four
// locations {a, b, c, d} arranged in a cycle a–b–d–c–a, so that
//
//	ploc(a, 1) = {a, b, c}   ploc(b, 1) = {a, b, d}
//	ploc(c, 1) = {a, c, d}   ploc(d, 1) = {b, c, d}
//
// exactly matching Table 1.
func FigureSeven() *Graph {
	g := NewGraph()
	g.AddEdge("a", "b")
	g.AddEdge("a", "c")
	g.AddEdge("b", "d")
	g.AddEdge("c", "d")
	return g
}

// Line returns a path graph l0 – l1 – … – l(n-1), modeling movement along
// a street.
func Line(n int) *Graph {
	g := NewGraph()
	if n == 1 {
		g.AddLocation(lineName(0))
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(lineName(i), lineName(i+1))
	}
	return g
}

func lineName(i int) Location { return Location("l" + strconv.Itoa(i)) }

// Ring returns a cycle graph of n locations, modeling a circular route.
func Ring(n int) *Graph {
	g := NewGraph()
	if n == 1 {
		g.AddLocation(lineName(0))
		return g
	}
	for i := 0; i < n; i++ {
		g.AddEdge(lineName(i), lineName((i+1)%n))
	}
	return g
}

// Grid returns a w×h four-connected grid of locations named "r<y>c<x>",
// modeling a city street grid (the parking example of the paper's
// introduction).
func Grid(w, h int) *Graph {
	g := NewGraph()
	name := func(x, y int) Location {
		return Location(fmt.Sprintf("r%dc%d", y, x))
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			g.AddLocation(name(x, y))
			if x+1 < w {
				g.AddEdge(name(x, y), name(x+1, y))
			}
			if y+1 < h {
				g.AddEdge(name(x, y), name(x, y+1))
			}
		}
	}
	return g
}

// GridName returns the canonical location name for grid cell (x, y),
// matching the naming used by Grid.
func GridName(x, y int) Location {
	return Location(fmt.Sprintf("r%dc%d", y, x))
}

// Complete returns the complete movement graph over the given locations:
// every location reachable from every other in a single step (no movement
// restriction — the worst case for the widening scheme).
func Complete(locs ...Location) *Graph {
	g := NewGraph()
	for _, l := range locs {
		g.AddLocation(l)
	}
	for i := 0; i < len(locs); i++ {
		for j := i + 1; j < len(locs); j++ {
			g.AddEdge(locs[i], locs[j])
		}
	}
	return g
}

// FromEdges builds a graph from an explicit edge list.
func FromEdges(edges [][2]Location) *Graph {
	g := NewGraph()
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	return g
}

// Itinerary is a scripted movement of a consumer: loc(t) for discrete
// movement steps t = 0, 1, 2, … (the function loc : T → L of Section 5.1).
type Itinerary []Location

// At returns the consumer's location at movement step t. Steps beyond the
// end of the itinerary stay at the final location; an empty itinerary
// returns "".
func (it Itinerary) At(t int) Location {
	if len(it) == 0 {
		return ""
	}
	if t < 0 {
		t = 0
	}
	if t >= len(it) {
		return it[len(it)-1]
	}
	return it[t]
}

// Valid reports whether every consecutive pair of the itinerary is either
// stationary or a single movement edge of the graph (the movement
// restriction of Section 5.1).
func (it Itinerary) Valid(g *Graph) bool {
	for i := 0; i+1 < len(it); i++ {
		a, b := it[i], it[i+1]
		if !g.Contains(a) || !g.Contains(b) {
			return false
		}
		if a != b && !g.Ploc(a, 1).Has(b) {
			return false
		}
	}
	return true
}

// RandomWalk produces a valid itinerary of the given length starting at
// start, using the supplied deterministic step chooser (e.g. a seeded
// PRNG's Intn) to pick among neighbors. Passing the chooser keeps the
// package free of global randomness.
func RandomWalk(g *Graph, start Location, length int, intn func(n int) int) Itinerary {
	it := make(Itinerary, 0, length)
	cur := start
	for i := 0; i < length; i++ {
		it = append(it, cur)
		ns := g.Neighbors(cur)
		if len(ns) == 0 {
			continue
		}
		// Index len(ns) means "stay"; all moves equally likely.
		pick := intn(len(ns) + 1)
		if pick < len(ns) {
			cur = ns[pick]
		}
	}
	return it
}
