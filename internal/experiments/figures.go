package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/sim"
)

// Fig2Result compares naive roaming with the relocation protocol under the
// Figure 2 scenario.
type Fig2Result struct {
	Naive    sim.RoamingResult
	Protocol sim.RoamingResult
}

// DefaultFig2Config returns a handoff scenario that produces both failure
// modes of Figure 2: the path to the new broker is slower than to the old
// one (duplicates) and there is a handoff gap (losses).
func DefaultFig2Config() sim.RoamingConfig {
	return sim.RoamingConfig{
		DelayToOld:      10 * time.Millisecond,
		DelayToNew:      40 * time.Millisecond,
		DelayJitter:     80 * time.Millisecond,
		MoveAt:          500 * time.Millisecond,
		HandoffGap:      100 * time.Millisecond,
		PublishInterval: 5 * time.Millisecond,
		Horizon:         time.Second,
	}
}

// Fig2 reproduces Figure 2: with naive unsubscribe/subscribe a roaming
// client misses notifications and can receive duplicates; the relocation
// protocol delivers everything exactly once.
func Fig2(cfg sim.RoamingConfig) Fig2Result {
	naive := cfg
	naive.Protocol = false
	proto := cfg
	proto.Protocol = true
	return Fig2Result{
		Naive:    sim.RunRoaming(naive),
		Protocol: sim.RunRoaming(proto),
	}
}

// Render prints the comparison.
func (r Fig2Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 2. Missing notifications in a flooding scenario.\n")
	fmt.Fprintf(&b, "%-22s %10s %10s %10s %10s\n", "variant", "published", "once", "missed", "duplicate")
	fmt.Fprintf(&b, "%-22s %10d %10d %10d %10d\n", "naive unsub/sub",
		r.Naive.Published, r.Naive.DeliveredOnce(), r.Naive.Missed, r.Naive.Duplicates)
	fmt.Fprintf(&b, "%-22s %10d %10d %10d %10d\n", "relocation protocol",
		r.Protocol.Published, r.Protocol.DeliveredOnce(), r.Protocol.Missed, r.Protocol.Duplicates)
	fmt.Fprintf(&b, "  (replayed via virtual counterpart: %d)\n", r.Protocol.OnceReplay)
	return b.String()
}

// Fig3Result contrasts the blackout behavior of simple routing and
// flooding with client-side filtering.
type Fig3Result struct {
	Simple   sim.BlackoutResult
	Flooding sim.BlackoutResult
}

// DefaultFig3Config returns the chain scenario used for Figure 3: a
// 4-link chain with 25ms links (t_d = 100ms).
func DefaultFig3Config() sim.BlackoutConfig {
	return sim.BlackoutConfig{
		Hops:            4,
		LinkDelay:       25 * time.Millisecond,
		PublishInterval: 10 * time.Millisecond,
		SubscribeAt:     300 * time.Millisecond,
		Horizon:         time.Second,
	}
}

// Fig3 reproduces Figure 3: simple routing shows a blackout of 2·t_d after
// subscribing; flooding with client-side filtering delivers events
// published up to t_d before the subscription.
func Fig3(cfg sim.BlackoutConfig) Fig3Result {
	simpleCfg := cfg
	simpleCfg.Mode = sim.ModeSimpleRouting
	floodCfg := cfg
	floodCfg.Mode = sim.ModeFloodingClientSide
	return Fig3Result{
		Simple:   sim.RunBlackout(simpleCfg),
		Flooding: sim.RunBlackout(floodCfg),
	}
}

// Render prints the comparison.
func (r Fig3Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 3. Blackout period after subscribing with simple routing (a)\n")
	b.WriteString("        and flooding with client-side filtering (b).\n")
	td := r.Simple.Td
	fmt.Fprintf(&b, "t_d = %v, subscription at t = %v\n", td, r.Simple.Config.SubscribeAt)
	fmt.Fprintf(&b, "%-26s %14s %20s %24s\n", "variant", "blackout", "first delivery at", "earliest published seen")
	fmt.Fprintf(&b, "%-26s %14v %20v %24v\n", "a) simple routing",
		r.Simple.Blackout(), r.Simple.FirstDeliveryAt(), r.Simple.EarliestPublishedDelivered())
	fmt.Fprintf(&b, "%-26s %14v %20v %24v\n", "b) flooding+client filter",
		r.Flooding.Blackout(), r.Flooding.FirstDeliveryAt(), r.Flooding.EarliestPublishedDelivered())
	fmt.Fprintf(&b, "expected: a) blackout ≈ 2·t_d = %v, b) sees events from ≈ t_sub − t_d = %v\n",
		2*td, r.Simple.Config.SubscribeAt-td)
	return b.String()
}

// Fig9Result holds the three cumulative message-count series of Figure 9.
type Fig9Result struct {
	Flooding sim.Series
	Delta1   sim.Series
	Delta10  sim.Series
}

// DefaultFig9Config returns the substituted network setting documented in
// DESIGN.md: a depth-5 binary broker tree (63 brokers, 62 links), a
// 100-location ring, 1000 notifications/s published uniformly over
// locations, δ = 400ms per hop (wireless-grade subscription processing, so
// the fast consumer forces real widening), horizon 100s.
func DefaultFig9Config() sim.Fig9Config {
	return sim.Fig9Config{
		TreeDepth: 5,
		Locations: 100,
		Rate:      1000,
		HopDelay:  400 * time.Millisecond,
		Horizon:   100 * time.Second,
	}
}

// Fig9 reproduces Figure 9: total messages for flooding and the new
// algorithm with Δ = 1s and Δ = 10s over 100 seconds.
func Fig9(cfg sim.Fig9Config) (Fig9Result, error) {
	flood := cfg
	flood.Algorithm = sim.AlgFlooding
	flood.Delta = time.Second // unused by flooding
	d1 := cfg
	d1.Algorithm = sim.AlgLocDep
	d1.Delta = time.Second
	d10 := cfg
	d10.Algorithm = sim.AlgLocDep
	d10.Delta = 10 * time.Second

	var res Fig9Result
	var err error
	if res.Flooding, err = sim.RunFig9(flood); err != nil {
		return Fig9Result{}, err
	}
	if res.Delta1, err = sim.RunFig9(d1); err != nil {
		return Fig9Result{}, err
	}
	if res.Delta10, err = sim.RunFig9(d10); err != nil {
		return Fig9Result{}, err
	}
	return res, nil
}

// Render prints sampled values and an ASCII log-scale plot of the three
// series.
func (r Fig9Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 9. Total number of messages generated for flooding and two\n")
	b.WriteString("        scenarios of the new algorithm (Δ = 1s and Δ = 10s); log-scale y.\n")
	samples := []int{1, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	fmt.Fprintf(&b, "%-6s %16s %16s %16s\n", "t[s]", "flooding", "new alg Δ=1", "new alg Δ=10")
	for _, t := range samples {
		fmt.Fprintf(&b, "%-6d %16.3g %16.3g %16.3g\n",
			t, r.Flooding.At(t), r.Delta1.At(t), r.Delta10.At(t))
	}
	fmt.Fprintf(&b, "factor at t=100: flooding/Δ=1 = %.1f, flooding/Δ=10 = %.1f\n",
		r.Flooding.At(100)/r.Delta1.At(100), r.Flooding.At(100)/r.Delta10.At(100))
	b.WriteString(r.plot(samples))
	return b.String()
}

// plot draws a coarse ASCII chart with a logarithmic y axis.
func (r Fig9Result) plot(samples []int) string {
	const rows = 12
	maxV := math.Log10(math.Max(r.Flooding.Final(), 10))
	minV := math.Log10(math.Max(math.Min(r.Delta10.At(1), r.Delta1.At(1)), 1))
	if maxV <= minV {
		maxV = minV + 1
	}
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", len(samples)*3))
	}
	put := func(s sim.Series, mark byte) {
		for col, t := range samples {
			v := s.At(t)
			if v <= 0 {
				continue
			}
			frac := (math.Log10(v) - minV) / (maxV - minV)
			row := rows - 1 - int(frac*float64(rows-1)+0.5)
			if row < 0 {
				row = 0
			}
			if row >= rows {
				row = rows - 1
			}
			grid[row][col*3+1] = mark
		}
	}
	put(r.Flooding, 'F')
	put(r.Delta1, '1')
	put(r.Delta10, 'X')
	var b strings.Builder
	b.WriteString("log10(total messages)  F=flooding  1=Δ1s  X=Δ10s\n")
	for i, row := range grid {
		level := maxV - (maxV-minV)*float64(i)/float64(rows-1)
		fmt.Fprintf(&b, "1e%-4.1f |%s\n", level, string(row))
	}
	b.WriteString("       +" + strings.Repeat("-", len(samples)*3) + "\n        ")
	for _, t := range samples {
		fmt.Fprintf(&b, "%-3d", t)
	}
	b.WriteByte('\n')
	return b.String()
}
