package experiments

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// ChurnResult holds the subscription-churn admin-traffic comparison: the
// roaming counterpart of Figure 9, counting the broker-to-broker
// administrative messages each routing strategy spends while a subscriber
// population relocates (see sim.RunChurn).
type ChurnResult struct {
	Config   sim.ChurnConfig
	PerStrat []sim.ChurnResult
}

// Churn runs the subscription-churn scenario with the default setting.
func Churn(cfg sim.ChurnConfig) (ChurnResult, error) {
	rs, err := sim.RunChurn(cfg)
	if err != nil {
		return ChurnResult{}, err
	}
	return ChurnResult{Config: cfg, PerStrat: rs}, nil
}

// Render prints the per-strategy admin-message table.
func (r ChurnResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chain of %d brokers, %d subscribers, %d relocations (seed %d)\n",
		r.Config.Brokers, r.Config.Subscribers, r.Config.Moves, r.Config.Seed)
	fmt.Fprintf(&b, "%-10s %10s %10s %10s %12s %12s %14s %8s %8s %9s\n",
		"strategy", "initial", "churn", "total", "max-table", "cover-chk", "chk-saved",
		"merges", "m-cover", "unmerges")
	for _, s := range r.PerStrat {
		fmt.Fprintf(&b, "%-10s %10d %10d %10d %12d %12d %14d %8d %8d %9d\n",
			s.Strategy, s.InitialMsgs, s.ChurnMsgs, s.AdminMsgs,
			s.MaxTableFilters, s.CoverChecks, s.CoverChecksSaved,
			s.MergesActive, s.MergeCovered, s.Unmerges)
	}
	return b.String()
}
