package experiments

import (
	"repro/internal/sim"
)

// RoamingScale runs the city-scale relocation storm (see
// sim.RunRoamingScale): a fleet of mobile subscribers ping-pongs between
// the border brokers of a chain under publish load, against a ballast
// subscription table, and the measured outcome — relocation throughput,
// exactly-once delivery, and the replay-size distribution — is rendered as
// the EXPERIMENTS.md artifact.
func RoamingScale(cfg sim.RoamingScaleConfig) (sim.RoamingScaleResult, error) {
	return sim.RunRoamingScale(cfg)
}
