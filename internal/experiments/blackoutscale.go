package experiments

import (
	"repro/internal/sim"
)

// BlackoutScale runs the blackout-at-scale crash scenario (see
// sim.RunBlackoutScale): a transit broker of a 16-broker chain is
// crash-stopped under publish load and the measured outcome — failure
// detection latency, overlay repair time, and the per-consumer delivery
// gap — is rendered as the EXPERIMENTS.md artifact.
func BlackoutScale(cfg sim.BlackoutScaleConfig) (sim.BlackoutScaleResult, error) {
	return sim.RunBlackoutScale(cfg)
}
