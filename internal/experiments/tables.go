// Package experiments regenerates every table and figure of the paper's
// evaluation: Tables 1–4 (ploc values, filter settings, trivial
// instantiations, adaptive schedule) and Figures 2, 3, 8, and 9 (naive
// roaming losses, blackout periods, schedule estimation, total message
// counts). Each experiment returns structured data plus a plain-text
// rendering shaped like the paper's artifact.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/location"
	"repro/internal/locfilter"
)

// PlocTable is the data behind Tables 1, 3, and 4: ploc(x, step(t)) for
// every location x and time index t.
type PlocTable struct {
	Title     string
	Graph     *location.Graph
	Times     []int           // the t column
	StepFor   func(t int) int // maps the time row to the ploc step used
	Locations []location.Location
	Cells     map[int]map[location.Location]location.Set
}

// computePlocTable fills the cell matrix.
func computePlocTable(title string, g *location.Graph, times []int, stepFor func(int) int) PlocTable {
	tb := PlocTable{
		Title:     title,
		Graph:     g,
		Times:     times,
		StepFor:   stepFor,
		Locations: g.Locations(),
		Cells:     make(map[int]map[location.Location]location.Set, len(times)),
	}
	for _, t := range times {
		row := make(map[location.Location]location.Set, len(tb.Locations))
		for _, x := range tb.Locations {
			row[x] = g.Ploc(x, stepFor(t))
		}
		tb.Cells[t] = row
	}
	return tb
}

// Render prints the table in the paper's layout.
func (tb PlocTable) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", tb.Title)
	fmt.Fprintf(&b, "%-4s", "t")
	for _, x := range tb.Locations {
		fmt.Fprintf(&b, " %-14s", "x = "+string(x))
	}
	b.WriteByte('\n')
	for _, t := range tb.Times {
		fmt.Fprintf(&b, "%-4d", t)
		for _, x := range tb.Locations {
			fmt.Fprintf(&b, " %-14s", tb.Cells[t][x].String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Table1 reproduces Table 1: ploc(x, t) for the Figure 7 movement graph,
// t = 0 … 3.
func Table1() PlocTable {
	return computePlocTable(
		"Table 1. Values of ploc(x, t) for the example setting.",
		location.FigureSeven(),
		[]int{0, 1, 2, 3},
		func(t int) int { return t },
	)
}

// Table3 reproduces Table 3: the two trivial implementations as
// instantiations of the ploc scheme — global sub/unsub (top: capped at one
// step) and flooding with client-side filtering (bottom: saturated).
func Table3() (top, bottom PlocTable) {
	g := location.FigureSeven()
	diam := g.Diameter()
	top = computePlocTable(
		"ploc(x, t) for global sub/unsub",
		g,
		[]int{0, 1, 2, 3},
		func(t int) int { return locfilter.PolicyTrivialSubUnsub.Apply(t, t, diam) },
	)
	bottom = computePlocTable(
		"ploc(x, t) for flooding",
		g,
		[]int{0, 1, 2, 3},
		func(t int) int { return locfilter.PolicyFlooding.Apply(t, t, diam) },
	)
	return top, bottom
}

// Table4Config carries the concrete timing values of Section 5.3.
type Table4Config struct {
	Delta time.Duration
	Hops  []time.Duration
}

// DefaultTable4Config returns the paper's example values: Δ = 100ms,
// δ = (120, 50, 50, 20) ms.
func DefaultTable4Config() Table4Config {
	return Table4Config{
		Delta: 100 * time.Millisecond,
		Hops: []time.Duration{
			120 * time.Millisecond,
			50 * time.Millisecond,
			50 * time.Millisecond,
			20 * time.Millisecond,
		},
	}
}

// Table4Result bundles the schedule with the rendered ploc table.
type Table4Result struct {
	Schedule locfilter.Schedule
	Table    PlocTable
}

// Table4 reproduces Table 4: ploc values under the adaptive schedule for
// the concrete timing values (steps 0, 1, 1, 2 for F₀ … F₃).
func Table4(cfg Table4Config) Table4Result {
	sched := locfilter.ComputeSchedule(cfg.Delta, cfg.Hops)
	times := make([]int, 0, len(sched.Steps))
	for i := range sched.Steps {
		times = append(times, i)
	}
	tb := computePlocTable(
		"Table 4. Values of ploc(x, t) for the example setting with concrete timing values.",
		location.FigureSeven(),
		times[:4], // the paper prints rows t = 0 … 3
		func(t int) int { return sched.Steps[t] },
	)
	return Table4Result{Schedule: sched, Table: tb}
}

// Table2Result is the data behind Table 2: the filter sets F₀ … F₃ along
// the Figure 6 chain while the consumer follows the itinerary a → b → d.
type Table2Result struct {
	Itinerary location.Itinerary
	Depth     int // number of filters beyond F₀
	Rows      []Table2Row
}

// Table2Row is one time step of Table 2.
type Table2Row struct {
	T       int
	Filters []location.Set // index i is Fᵢ
}

// Table2 reproduces Table 2: Fᵢ(t) = ploc(loc(t), i) for the example
// setting where a broker needs about one movement step to process a
// subscription change.
func Table2() Table2Result {
	g := location.FigureSeven()
	it := location.Itinerary{"a", "b", "d"}
	const depth = 3
	res := Table2Result{Itinerary: it, Depth: depth}
	for t := 0; t < len(it); t++ {
		row := Table2Row{T: t, Filters: make([]location.Set, depth+1)}
		for i := 0; i <= depth; i++ {
			row.Filters[i] = g.Ploc(it.At(t), i)
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Render prints Table 2 in the paper's layout (F₃ … F₀ left to right).
func (r Table2Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 2. Values of filters in example setting.\n")
	fmt.Fprintf(&b, "%-8s", "time t")
	for i := r.Depth; i >= 0; i-- {
		fmt.Fprintf(&b, " %-14s", fmt.Sprintf("F%d", i))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8d", row.T)
		for i := r.Depth; i >= 0; i-- {
			fmt.Fprintf(&b, " %-14s", row.Filters[i].String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig8Result is the schedule-estimation walkthrough of Figure 8.
type Fig8Result struct {
	Schedule locfilter.Schedule
	// Marks are the cumulative δ sums and the Δ multiples, merged and
	// sorted, as plotted on Figure 8's single time scale.
	Marks []Fig8Mark
}

// Fig8Mark is one tick on the Figure 8 scale.
type Fig8Mark struct {
	At    time.Duration
	Label string
}

// Fig8 reproduces Figure 8: the cumulative δ sums placed against the
// multiples of Δ, and the resulting step schedule.
func Fig8(cfg Table4Config) Fig8Result {
	sched := locfilter.ComputeSchedule(cfg.Delta, cfg.Hops)
	res := Fig8Result{Schedule: sched}
	cum := time.Duration(0)
	for i, d := range cfg.Hops {
		cum += d
		res.Marks = append(res.Marks, Fig8Mark{
			At:    cum,
			Label: fmt.Sprintf("δ1..δ%d", i+1),
		})
	}
	for m := 1; time.Duration(m)*cfg.Delta <= cum+cfg.Delta; m++ {
		res.Marks = append(res.Marks, Fig8Mark{
			At:    time.Duration(m) * cfg.Delta,
			Label: fmt.Sprintf("%dΔ", m),
		})
	}
	for i := 0; i < len(res.Marks); i++ {
		for j := i + 1; j < len(res.Marks); j++ {
			if res.Marks[j].At < res.Marks[i].At {
				res.Marks[i], res.Marks[j] = res.Marks[j], res.Marks[i]
			}
		}
	}
	return res
}

// Render prints the Figure 8 scale and the derived steps.
func (r Fig8Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 8. Estimating ploc steps with respect to concrete timing bounds.\n")
	for _, m := range r.Marks {
		fmt.Fprintf(&b, "  t=%-8v %s\n", m.At, m.Label)
	}
	fmt.Fprintf(&b, "schedule: %s\n", r.Schedule)
	return b.String()
}
