package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Run executes the named experiment and returns its rendered artifact.
// Names: table1, table2, table3, table4, fig2, fig3, fig8, fig9, churn,
// blackout-scale, roaming-scale, all.
func Run(name string) (string, error) {
	switch name {
	case "table1":
		return Table1().Render(), nil
	case "table2":
		return Table2().Render(), nil
	case "table3":
		top, bottom := Table3()
		return "Table 3. Values of ploc(x, t) for trivial sub/unsub implementation (top)\n" +
			"         and flooding with client-side filtering (bottom).\n" +
			top.Render() + "\n" + bottom.Render(), nil
	case "table4":
		res := Table4(DefaultTable4Config())
		return res.Table.Render() + fmt.Sprintf("derived schedule: %s\n", res.Schedule), nil
	case "fig2":
		return Fig2(DefaultFig2Config()).Render(), nil
	case "fig3":
		return Fig3(DefaultFig3Config()).Render(), nil
	case "fig8":
		return Fig8(DefaultTable4Config()).Render(), nil
	case "fig9":
		res, err := Fig9(DefaultFig9Config())
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	case "churn":
		res, err := Churn(sim.DefaultChurnConfig())
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	case "blackout-scale":
		res, err := BlackoutScale(sim.DefaultBlackoutScaleConfig())
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	case "roaming-scale":
		res, err := RoamingScale(sim.DefaultRoamingScaleConfig())
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	case "all":
		var b strings.Builder
		for _, n := range Names() {
			out, err := Run(n)
			if err != nil {
				return "", fmt.Errorf("experiment %s: %w", n, err)
			}
			fmt.Fprintf(&b, "=== %s ===\n%s\n", n, out)
		}
		return b.String(), nil
	default:
		return "", fmt.Errorf("experiments: unknown experiment %q (have %s)",
			name, strings.Join(Names(), ", "))
	}
}

// Names lists all experiment identifiers in a stable order.
func Names() []string {
	names := []string{"table1", "table2", "table3", "table4", "fig2", "fig3", "fig8", "fig9", "churn", "blackout-scale", "roaming-scale"}
	sort.Strings(names)
	return names
}
