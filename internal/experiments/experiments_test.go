package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/location"
)

// set is a test helper building a location set.
func set(ls ...location.Location) location.Set { return location.NewSet(ls...) }

// TestTable1MatchesPaper pins every cell of Table 1 to the paper's values.
func TestTable1MatchesPaper(t *testing.T) {
	tb := Table1()
	want := map[int]map[location.Location]location.Set{
		0: {"a": set("a"), "b": set("b"), "c": set("c"), "d": set("d")},
		1: {"a": set("a", "b", "c"), "b": set("a", "b", "d"), "c": set("a", "c", "d"), "d": set("b", "c", "d")},
		2: {"a": set("a", "b", "c", "d"), "b": set("a", "b", "c", "d"), "c": set("a", "b", "c", "d"), "d": set("a", "b", "c", "d")},
		3: {"a": set("a", "b", "c", "d"), "b": set("a", "b", "c", "d"), "c": set("a", "b", "c", "d"), "d": set("a", "b", "c", "d")},
	}
	for tt, row := range want {
		for x, exp := range row {
			got := tb.Cells[tt][x]
			if !got.Equal(exp) {
				t.Errorf("Table1 ploc(%s, %d) = %s, want %s", x, tt, got, exp)
			}
		}
	}
}

// TestTable2MatchesPaper pins the filter values of Table 2.
func TestTable2MatchesPaper(t *testing.T) {
	res := Table2()
	if len(res.Rows) != 3 {
		t.Fatalf("Table2 has %d rows, want 3", len(res.Rows))
	}
	full := set("a", "b", "c", "d")
	want := [][]location.Set{
		// t=0: F0..F3 for location a
		{set("a"), set("a", "b", "c"), full, full},
		// t=1: location b
		{set("b"), set("a", "b", "d"), full, full},
		// t=2: location d
		{set("d"), set("b", "c", "d"), full, full},
	}
	for tt, row := range want {
		for i, exp := range row {
			got := res.Rows[tt].Filters[i]
			if !got.Equal(exp) {
				t.Errorf("Table2 F%d at t=%d = %s, want %s", i, tt, got, exp)
			}
		}
	}
}

// TestTable3MatchesPaper pins the two trivial instantiations.
func TestTable3MatchesPaper(t *testing.T) {
	top, bottom := Table3()
	// Top: global sub/unsub — row t >= 1 is always ploc(x, 1).
	for _, tt := range []int{1, 2, 3} {
		if got := top.Cells[tt]["a"]; !got.Equal(set("a", "b", "c")) {
			t.Errorf("Table3 top ploc(a, %d) = %s, want {a, b, c}", tt, got)
		}
		if got := top.Cells[tt]["d"]; !got.Equal(set("b", "c", "d")) {
			t.Errorf("Table3 top ploc(d, %d) = %s, want {b, c, d}", tt, got)
		}
	}
	// Bottom: flooding — row t >= 1 is the full universe.
	full := set("a", "b", "c", "d")
	for _, tt := range []int{1, 2, 3} {
		for _, x := range []location.Location{"a", "b", "c", "d"} {
			if got := bottom.Cells[tt][x]; !got.Equal(full) {
				t.Errorf("Table3 bottom ploc(%s, %d) = %s, want full set", x, tt, got)
			}
		}
	}
	// Row 0 is exact in both.
	for _, x := range []location.Location{"a", "b", "c", "d"} {
		if got := top.Cells[0][x]; !got.Equal(set(x)) {
			t.Errorf("Table3 top ploc(%s, 0) = %s, want {%s}", x, got, x)
		}
		if got := bottom.Cells[0][x]; !got.Equal(set(x)) {
			t.Errorf("Table3 bottom ploc(%s, 0) = %s, want {%s}", x, got, x)
		}
	}
}

// TestTable4MatchesPaper pins the adaptive schedule and the resulting ploc
// table for Δ = 100ms, δ = (120, 50, 50, 20) ms.
func TestTable4MatchesPaper(t *testing.T) {
	res := Table4(DefaultTable4Config())
	wantSteps := []int{0, 1, 1, 2, 2}
	if len(res.Schedule.Steps) != len(wantSteps) {
		t.Fatalf("schedule has %d steps, want %d", len(res.Schedule.Steps), len(wantSteps))
	}
	for i, w := range wantSteps {
		if res.Schedule.Steps[i] != w {
			t.Errorf("step s%d = %d, want %d (schedule %s)", i, res.Schedule.Steps[i], w, res.Schedule)
		}
	}
	// Paper's Table 4: rows t = 1 and t = 2 both show ploc(x, 1); row
	// t = 3 shows the full set.
	if got := res.Table.Cells[1]["a"]; !got.Equal(set("a", "b", "c")) {
		t.Errorf("Table4 row1 x=a = %s, want {a, b, c}", got)
	}
	if got := res.Table.Cells[2]["b"]; !got.Equal(set("a", "b", "d")) {
		t.Errorf("Table4 row2 x=b = %s, want {a, b, d}", got)
	}
	full := set("a", "b", "c", "d")
	if got := res.Table.Cells[3]["c"]; !got.Equal(full) {
		t.Errorf("Table4 row3 x=c = %s, want full set", got)
	}
}

// TestFig3BlackoutShape checks the 2·t_d blackout under simple routing and
// its absence under flooding.
func TestFig3BlackoutShape(t *testing.T) {
	res := Fig3(DefaultFig3Config())
	td := res.Simple.Td

	// a) Simple routing: blackout within [2td, 2td + publish interval].
	blackout := res.Simple.Blackout()
	if blackout < 2*td || blackout > 2*td+res.Simple.Config.PublishInterval {
		t.Errorf("simple-routing blackout = %v, want ≈ 2·t_d = %v", blackout, 2*td)
	}
	// b) Flooding: first delivery within one publish interval of the
	// subscription (events already in flight).
	fb := res.Flooding.Blackout()
	if fb < 0 || fb > res.Flooding.Config.PublishInterval {
		t.Errorf("flooding blackout = %v, want ≈ 0", fb)
	}
	// b) sees events published up to t_d before the subscription.
	earliest := res.Flooding.EarliestPublishedDelivered()
	wantEarliest := res.Flooding.Config.SubscribeAt - td
	if earliest > wantEarliest+res.Flooding.Config.PublishInterval {
		t.Errorf("flooding earliest published = %v, want ≈ %v", earliest, wantEarliest)
	}
	// Simple routing must lose every event published before the
	// subscription reached the producer.
	if res.Simple.EarliestPublishedDelivered() < res.Simple.Config.SubscribeAt+td {
		t.Errorf("simple routing delivered an event published before the subscription arrived")
	}
}

// TestFig2NaiveVsProtocol checks that the naive handoff exhibits both
// failure modes and that the protocol removes them.
func TestFig2NaiveVsProtocol(t *testing.T) {
	res := Fig2(DefaultFig2Config())
	if res.Naive.Missed == 0 {
		t.Error("naive roaming should miss notifications (Figure 2 right)")
	}
	if res.Naive.Duplicates == 0 {
		t.Error("naive roaming should duplicate notifications (Figure 2 left)")
	}
	if res.Protocol.Missed != 0 || res.Protocol.Duplicates != 0 {
		t.Errorf("protocol must be exactly-once, got missed=%d dup=%d",
			res.Protocol.Missed, res.Protocol.Duplicates)
	}
	if res.Protocol.DeliveredOnce() != res.Protocol.Published {
		t.Errorf("protocol delivered %d of %d", res.Protocol.DeliveredOnce(), res.Protocol.Published)
	}
	if res.Protocol.OnceReplay == 0 {
		t.Error("protocol run should exercise the replay path")
	}
}

// TestFig9Shape checks the qualitative shape of Figure 9: flooding on top,
// Δ = 1s in the middle, Δ = 10s at the bottom, with order-of-magnitude
// separations, monotone growth, and a log-scale-worthy spread.
func TestFig9Shape(t *testing.T) {
	res, err := Fig9(DefaultFig9Config())
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []int{1, 10, 50, 100} {
		f, d1, d10 := res.Flooding.At(tt), res.Delta1.At(tt), res.Delta10.At(tt)
		if !(f > d1 && d1 > d10) {
			t.Errorf("t=%d: want flooding > Δ1 > Δ10, got %g, %g, %g", tt, f, d1, d10)
		}
	}
	// The paper's fraction of messages saved is "considerable": at least
	// ~5x for the fast consumer and ~20x for the slow one.
	if factor := res.Flooding.At(100) / res.Delta1.At(100); factor < 5 {
		t.Errorf("flooding/Δ1 factor = %.2f, want >= 5", factor)
	}
	if factor := res.Flooding.At(100) / res.Delta10.At(100); factor < 20 {
		t.Errorf("flooding/Δ10 factor = %.2f, want >= 20", factor)
	}
	// Monotone growth.
	for i := 1; i < len(res.Delta1.Points); i++ {
		if res.Delta1.Points[i].Total < res.Delta1.Points[i-1].Total {
			t.Fatalf("Δ1 series not monotone at %d", i)
		}
	}
}

// TestFig8Schedule checks the Figure 8 walkthrough values.
func TestFig8Schedule(t *testing.T) {
	res := Fig8(DefaultTable4Config())
	if got := res.Schedule.Steps; len(got) != 5 || got[1] != 1 || got[2] != 1 || got[3] != 2 {
		t.Errorf("Fig8 schedule steps = %v, want [0 1 1 2 2]", got)
	}
	// Marks must include the paper's scale points 100, 120, 170, 200, 220.
	wantMarks := map[time.Duration]bool{
		100 * time.Millisecond: false,
		120 * time.Millisecond: false,
		170 * time.Millisecond: false,
		200 * time.Millisecond: false,
		220 * time.Millisecond: false,
	}
	for _, m := range res.Marks {
		if _, ok := wantMarks[m.At]; ok {
			wantMarks[m.At] = true
		}
	}
	for at, seen := range wantMarks {
		if !seen {
			t.Errorf("Fig8 scale misses mark at %v", at)
		}
	}
}

// TestRegistryRunsAll smoke-tests every registered experiment.
func TestRegistryRunsAll(t *testing.T) {
	out, err := Run("all")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range Names() {
		if !strings.Contains(out, "=== "+n+" ===") {
			t.Errorf("combined output misses experiment %s", n)
		}
	}
	if _, err := Run("nope"); err == nil {
		t.Error("unknown experiment should error")
	}
}
