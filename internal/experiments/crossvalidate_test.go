package experiments

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/location"
	"repro/internal/message"
	"repro/internal/metrics"
	"repro/internal/routing"
	"repro/internal/wire"
)

// TestFig9ModelCrossValidation validates the Figure 9 counting model
// against the live overlay on a small instance: the same workload is run
// under flooding and under the location-dependent algorithm, and the
// measured link-message totals must show the same ordering and a
// comparable savings factor as the model predicts.
func TestFig9ModelCrossValidation(t *testing.T) {
	const (
		depth    = 2  // 7 brokers, 6 links
		gridSide = 5  // 25 locations
		rounds   = 20 // publications per producer leaf
	)
	grid := location.Grid(gridSide, gridSide)

	run := func(strategy routing.Strategy, locdep bool) uint64 {
		t.Helper()
		net := core.NewNetwork(core.WithStrategy(strategy), core.WithProcDelay(time.Hour))
		defer net.Close()
		ids, err := net.BuildBinaryTree("n", depth, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := net.RegisterGraph("grid", grid); err != nil {
			t.Fatal(err)
		}
		leaves := core.TreeLeaves(ids, depth)
		consumerAt, producersAt := leaves[0], leaves[1:]

		consumer, err := net.NewClient("C", consumerAt, func(core.Event) {})
		if err != nil {
			t.Fatal(err)
		}
		producers := make([]*core.Client, len(producersAt))
		advFilter := filter.MustParse(`svc = "s"`)
		for i, at := range producersAt {
			p, err := net.NewClient(wire.ClientID(fmt.Sprintf("P%d", i)), at, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Advertise("adv", advFilter); err != nil {
				t.Fatal(err)
			}
			producers[i] = p
		}
		net.Settle()

		start := location.GridName(2, 2)
		if locdep {
			base := filter.MustNew(
				filter.EQ("svc", message.String("s")),
				filter.EQ("loc", message.String("$myloc")),
			)
			err = consumer.Subscribe(core.SubSpec{
				ID: "s", Filter: base,
				Loc: &core.LocSpec{Graph: "grid", Attr: "loc", Start: start, Delta: time.Second},
			})
		} else {
			// Flooding needs only client-side interest.
			err = consumer.Subscribe(core.SubSpec{
				ID:     "s",
				Filter: filter.MustParse(`svc = "s"`),
			})
		}
		if err != nil {
			t.Fatal(err)
		}
		net.Settle()
		baseCount := net.Counter().Get(metrics.CategoryNotification)

		// Uniform workload over the location grid, identical for both
		// systems (deterministic round-robin over cells).
		cells := grid.Locations()
		k := 0
		for r := 0; r < rounds; r++ {
			for _, p := range producers {
				cell := cells[k%len(cells)]
				k++
				err := p.Publish(message.New(map[string]message.Value{
					"svc": message.String("s"),
					"loc": message.String(string(cell)),
				}))
				if err != nil {
					t.Fatal(err)
				}
			}
		}
		net.Settle()
		return net.Counter().Get(metrics.CategoryNotification) - baseCount
	}

	flooding := run(routing.Flooding, false)
	locdep := run(routing.Covering, true)
	if flooding == 0 || locdep == 0 {
		t.Fatalf("no traffic measured: flooding=%d locdep=%d", flooding, locdep)
	}
	if locdep >= flooding {
		t.Fatalf("live overlay contradicts the model: locdep %d >= flooding %d", locdep, flooding)
	}
	factor := float64(flooding) / float64(locdep)
	// The model (same parameters, maximal widening since ProcDelay is
	// huge: ploc(x,1) = 5 of 25 cells) predicts roughly a 3–6x saving;
	// accept a generous band around it.
	if factor < 2 || factor > 12 {
		t.Errorf("savings factor %.1f outside the model's plausible band [2, 12]", factor)
	}
	t.Logf("flooding=%d locdep=%d factor=%.2f", flooding, locdep, factor)
}
