// Package baseline implements the "tentative but incomplete" solutions the
// paper discusses in Section 3 and uses as comparison points:
//
//   - NaiveRoamer: physical mobility by plain unsubscribe/subscribe with no
//     middleware support — misses notifications during the handoff
//     (Figure 2).
//   - GlobalSubUnsub: logical mobility emulated in a wrapper that
//     unsubscribes the old location and subscribes the new one — suffers
//     the 2·t_d blackout of Figure 3a.
//   - FloodingClientSide: subscribe to everything and filter at the edge —
//     no blackout but maximal network load (Figure 3b).
//
// All three run against the same live overlay as the paper's algorithms,
// which is what makes the comparison experiments meaningful.
package baseline

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/location"
	"repro/internal/locfilter"
	"repro/internal/message"
	"repro/internal/wire"
)

// NaiveRoamer roams by re-subscribing plainly at each new broker: the
// middleware gives it no completeness guarantee, so notifications
// published while it is between brokers (or already queued toward the old
// broker) are lost.
type NaiveRoamer struct {
	client *core.Client
	spec   core.SubSpec
}

// NewNaiveRoamer subscribes a plain (non-mobile) subscription for the
// client.
func NewNaiveRoamer(c *core.Client, spec core.SubSpec) (*NaiveRoamer, error) {
	spec.Mobile = false
	if err := c.Subscribe(spec); err != nil {
		return nil, err
	}
	return &NaiveRoamer{client: c, spec: spec}, nil
}

// MoveTo performs the naive handoff: unsubscribe+detach at the old broker,
// attach and re-subscribe at the new one. Anything published in between is
// gone.
func (r *NaiveRoamer) MoveTo(b wire.BrokerID) error {
	if err := r.client.Unsubscribe(r.spec.ID); err != nil {
		return fmt.Errorf("baseline: naive unsubscribe: %w", err)
	}
	if err := r.client.MoveTo(b); err != nil {
		return fmt.Errorf("baseline: naive move: %w", err)
	}
	if err := r.client.Subscribe(r.spec); err != nil {
		return fmt.Errorf("baseline: naive re-subscribe: %w", err)
	}
	return nil
}

// GlobalSubUnsub emulates location-dependent filtering on top of plain
// subscriptions: a wrapper follows the location changes and replaces the
// subscription each time. Each replacement must propagate to the
// producers before notifications flow again — the blackout of Figure 3a.
type GlobalSubUnsub struct {
	client  *core.Client
	base    filter.Filter
	locAttr string
	graph   *location.Graph
	handler core.Handler

	mu  sync.Mutex
	loc location.Location
	gen int // generation counter to produce unique sub IDs
	cur wire.SubID
}

// NewGlobalSubUnsub subscribes the client for its start location.
func NewGlobalSubUnsub(c *core.Client, base filter.Filter, locAttr string,
	g *location.Graph, start location.Location, handler core.Handler) (*GlobalSubUnsub, error) {
	w := &GlobalSubUnsub{
		client:  c,
		base:    base,
		locAttr: locAttr,
		graph:   g,
		handler: handler,
		loc:     start,
	}
	if err := w.subscribeFor(start); err != nil {
		return nil, err
	}
	return w, nil
}

func (w *GlobalSubUnsub) subscribeFor(loc location.Location) error {
	f, err := locfilter.Instantiate(markerFilter(w.base, w.locAttr), w.locAttr, w.graph, loc, 0)
	if err != nil {
		return err
	}
	w.gen++
	id := wire.SubID(fmt.Sprintf("gsu-%d", w.gen))
	if err := w.client.Subscribe(core.SubSpec{ID: id, Filter: f, Handler: w.handler}); err != nil {
		return err
	}
	w.cur = id
	return nil
}

// markerFilter ensures the base filter has a replaceable location
// constraint.
func markerFilter(base filter.Filter, locAttr string) filter.Filter {
	if len(base.ConstraintsOn(locAttr)) > 0 {
		return base
	}
	out, err := base.With(filter.EQ(locAttr, message.String(locfilter.MarkerMyloc)))
	if err != nil {
		return base
	}
	return out
}

// SetLocation replaces the subscription: unsubscribe the old location,
// subscribe the new one. The gap between the two propagations is the
// blackout.
func (w *GlobalSubUnsub) SetLocation(loc location.Location) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	old := w.cur
	if err := w.subscribeFor(loc); err != nil {
		return err
	}
	w.loc = loc
	if old != "" {
		if err := w.client.Unsubscribe(old); err != nil {
			return err
		}
	}
	return nil
}

// Location returns the wrapper's current location.
func (w *GlobalSubUnsub) Location() location.Location {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.loc
}

// FloodingClientSide subscribes to the base filter with the location
// constraint removed entirely (i.e. "everything, everywhere, all the
// time") and filters against the current location at the client.
type FloodingClientSide struct {
	client  *core.Client
	locAttr string

	mu  sync.Mutex
	loc location.Location
}

// NewFloodingClientSide subscribes the wide filter and filters locally.
func NewFloodingClientSide(c *core.Client, base filter.Filter, locAttr string,
	start location.Location, handler core.Handler) (*FloodingClientSide, error) {
	w := &FloodingClientSide{client: c, locAttr: locAttr, loc: start}
	wide := base.Without(locAttr)
	err := c.Subscribe(core.SubSpec{
		ID:     "fcs",
		Filter: wide,
		Handler: func(e core.Event) {
			if w.matches(e.Notification) {
				handler(e)
			}
		},
	})
	if err != nil {
		return nil, err
	}
	return w, nil
}

func (w *FloodingClientSide) matches(n message.Notification) bool {
	v, ok := n.Get(w.locAttr)
	if !ok {
		return false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return v.Kind() == message.KindString && location.Location(v.Str()) == w.loc
}

// SetLocation switches the client-side filter instantly; nothing
// propagates into the network.
func (w *FloodingClientSide) SetLocation(loc location.Location) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.loc = loc
}

// Location returns the wrapper's current location.
func (w *FloodingClientSide) Location() location.Location {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.loc
}
