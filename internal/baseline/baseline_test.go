package baseline

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/location"
	"repro/internal/message"
	"repro/internal/wire"
)

type counterHandler struct {
	mu     sync.Mutex
	events []core.Event
}

func (c *counterHandler) handle(e core.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, e)
}

func (c *counterHandler) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

func buildChain(t *testing.T, n int, opts ...core.NetworkOption) *core.Network {
	t.Helper()
	net := core.NewNetwork(opts...)
	prev := wire.BrokerID("")
	for i := 1; i <= n; i++ {
		id := wire.BrokerID(string(rune('a' + i - 1)))
		net.MustAddBroker(id)
		if prev != "" {
			net.MustConnect(prev, id, -1) // -1: use the network's default latency
		}
		prev = id
	}
	t.Cleanup(net.Close)
	return net
}

func quote(sym string) message.Notification {
	return message.New(map[string]message.Value{"sym": message.String(sym)})
}

// TestNaiveRoamerLosesInterimNotifications demonstrates Figure 2's loss on
// the live overlay: what is published while the naive roamer is moving is
// gone forever.
func TestNaiveRoamerLosesInterimNotifications(t *testing.T) {
	net := buildChain(t, 3)
	var got counterHandler
	consumer, err := net.NewClient("c", "a", got.handle)
	if err != nil {
		t.Fatal(err)
	}
	producer, err := net.NewClient("p", "c", nil)
	if err != nil {
		t.Fatal(err)
	}
	f := filter.MustParse(`sym = "X"`)
	roamer, err := NewNaiveRoamer(consumer, core.SubSpec{ID: "s", Filter: f})
	if err != nil {
		t.Fatal(err)
	}
	net.Settle()

	if err := producer.Publish(quote("X")); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	if got.len() != 1 {
		t.Fatalf("precondition: %d deliveries", got.len())
	}

	// During the naive handoff the middleware provides no buffering; the
	// old subscription is gone, the new one not yet present.
	if err := roamer.MoveTo("b"); err != nil {
		t.Fatal(err)
	}
	// The roamer never sees what was published while it was "between"
	// brokers in the unsubscribe/subscribe window. Publishing after the
	// handoff works again.
	if err := producer.Publish(quote("X")); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	if got.len() != 2 {
		t.Fatalf("post-handoff delivery missing: %d", got.len())
	}
}

// TestGlobalSubUnsubBlackout demonstrates the Figure 3a blackout on the
// live overlay with real link latency: right after a location change, the
// emulated location-dependent subscription misses events for the new
// location because the new subscription has not reached the producer yet.
func TestGlobalSubUnsubBlackout(t *testing.T) {
	const lat = 30 * time.Millisecond
	net := buildChain(t, 3, core.WithLinkLatency(lat))
	var got counterHandler
	consumer, err := net.NewClient("c", "a", nil)
	if err != nil {
		t.Fatal(err)
	}
	producer, err := net.NewClient("p", "c", nil)
	if err != nil {
		t.Fatal(err)
	}
	g := location.FigureSeven()
	base := filter.MustParse(`service = "parking"`)
	w, err := NewGlobalSubUnsub(consumer, base, "location", g, "a", got.handle)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(6 * lat) // initial subscription propagates
	if w.Location() != "a" {
		t.Fatalf("location = %s", w.Location())
	}

	pub := func(loc string) {
		t.Helper()
		if err := producer.Publish(message.New(map[string]message.Value{
			"service":  message.String("parking"),
			"location": message.String(loc),
		})); err != nil {
			t.Fatal(err)
		}
	}
	pub("a")
	time.Sleep(6 * lat)
	if got.len() != 1 {
		t.Fatalf("baseline delivery missing: %d", got.len())
	}

	// Move a -> b and publish for b immediately: the re-subscription is
	// still in flight, so the event is lost — the blackout.
	if err := w.SetLocation("b"); err != nil {
		t.Fatal(err)
	}
	pub("b")
	time.Sleep(6 * lat)
	if got.len() != 1 {
		t.Fatalf("expected blackout loss, got %d deliveries", got.len())
	}
	// After 2·t_d the subscription has settled and events flow again.
	pub("b")
	time.Sleep(6 * lat)
	if got.len() != 2 {
		t.Fatalf("post-blackout delivery missing: %d", got.len())
	}
}

// TestFloodingClientSideNoBlackout shows the Figure 3b behavior: with
// flooding plus client-side filtering, the location switch is
// instantaneous.
func TestFloodingClientSideNoBlackout(t *testing.T) {
	const lat = 20 * time.Millisecond
	net := buildChain(t, 3, core.WithLinkLatency(lat))
	var got counterHandler
	consumer, err := net.NewClient("c", "a", nil)
	if err != nil {
		t.Fatal(err)
	}
	producer, err := net.NewClient("p", "c", nil)
	if err != nil {
		t.Fatal(err)
	}
	base := filter.MustParse(`service = "parking"`)
	w, err := NewFloodingClientSide(consumer, base, "location", "a", got.handle)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(6 * lat)

	pub := func(loc string) {
		t.Helper()
		if err := producer.Publish(message.New(map[string]message.Value{
			"service":  message.String("parking"),
			"location": message.String(loc),
		})); err != nil {
			t.Fatal(err)
		}
	}
	// The location switch is purely local: an event for b published right
	// after the switch is delivered (no blackout).
	w.SetLocation("b")
	if w.Location() != "b" {
		t.Fatal("SetLocation did not take")
	}
	pub("b")
	time.Sleep(6 * lat)
	if got.len() != 1 {
		t.Fatalf("flooding+client filtering should not black out: %d", got.len())
	}
	// Events for other locations are filtered at the client.
	pub("a")
	pub("zzz")
	time.Sleep(6 * lat)
	if got.len() != 1 {
		t.Fatalf("client-side filter leaked: %d", got.len())
	}
	// Events without a location attribute are dropped too.
	if err := producer.Publish(message.New(map[string]message.Value{
		"service": message.String("parking"),
	})); err != nil {
		t.Fatal(err)
	}
	time.Sleep(6 * lat)
	if got.len() != 1 {
		t.Fatalf("missing location attribute should not match: %d", got.len())
	}
}
