package sim

import (
	"reflect"
	"testing"

	"repro/internal/routing"
)

func TestChurnValidation(t *testing.T) {
	bad := []ChurnConfig{
		{Brokers: 1, Subscribers: 1, Moves: 1},
		{Brokers: 2, Subscribers: 0, Moves: 1},
		{Brokers: 2, Subscribers: 1, Moves: -1},
	}
	for _, cfg := range bad {
		if _, err := RunChurn(cfg); err == nil {
			t.Errorf("config %+v should fail validation", cfg)
		}
	}
}

// TestChurnStrategyOrdering pins the qualitative Figure 9 shape for
// subscription churn: flooding spends no admin traffic at all, identity
// never beats simple, and covering strictly beats both by suppressing
// covered forwards.
func TestChurnStrategyOrdering(t *testing.T) {
	rs, err := RunChurn(DefaultChurnConfig())
	if err != nil {
		t.Fatal(err)
	}
	byStrat := make(map[routing.Strategy]ChurnResult, len(rs))
	for _, r := range rs {
		byStrat[r.Strategy] = r
	}
	if got := byStrat[routing.Flooding].AdminMsgs; got != 0 {
		t.Errorf("flooding admin msgs = %d, want 0", got)
	}
	simple := byStrat[routing.Simple].AdminMsgs
	identity := byStrat[routing.Identity].AdminMsgs
	covering := byStrat[routing.Covering].AdminMsgs
	merging := byStrat[routing.Merging].AdminMsgs
	if simple == 0 || identity == 0 || covering == 0 || merging == 0 {
		t.Fatalf("non-flooding strategies must spend admin traffic: %+v", rs)
	}
	if identity > simple {
		t.Errorf("identity (%d) must not exceed simple (%d)", identity, simple)
	}
	if covering >= identity {
		t.Errorf("covering (%d) must beat identity (%d) on this workload", covering, identity)
	}
	// Covering's routing tables must be smaller than identity's, and
	// merging's smaller still (the table-size half of the tradeoff).
	if c, i := byStrat[routing.Covering].MaxTableFilters, byStrat[routing.Identity].MaxTableFilters; c >= i {
		t.Errorf("covering table (%d) must be smaller than identity's (%d)", c, i)
	}
	if m, c := byStrat[routing.Merging].MaxTableFilters, byStrat[routing.Covering].MaxTableFilters; m > c {
		t.Errorf("merging table (%d) must not exceed covering's (%d)", m, c)
	}
	// The incremental merging plane must not spend more admin traffic
	// than covering: merged interval unions absorb churn that covering
	// forwards (the Figure 9 ordering for the merging strategy).
	if merging > covering {
		t.Errorf("merging admin msgs (%d) must not exceed covering's (%d)", merging, covering)
	}
	// The incremental covering plane must have saved pairwise work.
	if byStrat[routing.Covering].CoverChecksSaved == 0 {
		t.Error("covering saved no cover checks; signature buckets inactive")
	}
	// Merging must actually have merged — and unmerged — on this workload.
	mr := byStrat[routing.Merging]
	if mr.MergesActive == 0 || mr.MergeCovered == 0 {
		t.Errorf("merging plane inactive: %d groups covering %d subs", mr.MergesActive, mr.MergeCovered)
	}
	if mr.Unmerges == 0 {
		t.Error("relocation churn produced no unmerges; remove path never re-expanded a merge")
	}
	for _, s := range []routing.Strategy{routing.Flooding, routing.Simple, routing.Identity, routing.Covering} {
		if r := byStrat[s]; r.MergesActive != 0 || r.MergeCovered != 0 || r.Unmerges != 0 {
			t.Errorf("%s reports merge activity: %+v", s, r)
		}
	}
}

// TestChurnDeterministic: same seed, same numbers — the property the
// EXPERIMENTS.md table and the CI comparison rely on.
func TestChurnDeterministic(t *testing.T) {
	a, err := RunChurn(DefaultChurnConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChurn(DefaultChurnConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}
