package sim

import (
	"strings"
	"testing"
	"time"
)

// TestBlackoutScaleRun drives the crash scenario at a CI-friendly scale
// and checks the structural properties that hold regardless of scheduler
// jitter: nothing is lost before the crash, nothing is duplicated ever,
// delivery recovers before the run ends, and the orphan fails over.
// (Wall-clock bounds on the blackout itself live in EXPERIMENTS.md, from
// the full-scale run — a loaded CI runner cannot assert them tightly.)
func TestBlackoutScaleRun(t *testing.T) {
	cfg := BlackoutScaleConfig{
		Brokers:      8,
		Victim:       4,
		Heartbeat:    5 * time.Millisecond,
		TTL:          80 * time.Millisecond,
		RelocTimeout: 50 * time.Millisecond,
		Publishes:    150,
		KillAfter:    40,
		PublishEvery: 2 * time.Millisecond,
		Drain:        20 * time.Second,
	}
	res, err := RunBlackoutScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detection <= 0 || res.Detection > 15*time.Second {
		t.Errorf("implausible detection latency %v", res.Detection)
	}
	if !res.FailedOver {
		t.Error("orphan did not fail over to a survivor")
	}
	for name, o := range map[string]SubscriberOutcome{"probe": res.Probe, "orphan": res.Orphan} {
		if o.Duplicates != 0 {
			t.Errorf("%s: %d duplicate deliveries", name, o.Duplicates)
		}
		if o.Delivered+o.Lost != cfg.Publishes {
			t.Errorf("%s: delivered %d + lost %d != published %d", name, o.Delivered, o.Lost, cfg.Publishes)
		}
		if o.Lost > 0 {
			if o.FirstLost < cfg.KillAfter {
				t.Errorf("%s: lost publish #%d predates the crash at #%d", name, o.FirstLost, cfg.KillAfter)
			}
			if o.LastLost >= cfg.Publishes-1 {
				t.Errorf("%s: loss window reaches the end of the run (no recovery)", name)
			}
		}
	}
	out := res.Render()
	for _, want := range []string{"blackout-scale", "detection", "probe", "orphan"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render() missing %q:\n%s", want, out)
		}
	}
}

// TestBlackoutScaleValidate covers the config guard rails.
func TestBlackoutScaleValidate(t *testing.T) {
	ok := DefaultBlackoutScaleConfig()
	if err := ok.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := map[string]func(*BlackoutScaleConfig){
		"too few brokers": func(c *BlackoutScaleConfig) { c.Brokers = 2 },
		"victim is end":   func(c *BlackoutScaleConfig) { c.Victim = 0 },
		"victim past end": func(c *BlackoutScaleConfig) { c.Victim = c.Brokers - 1 },
		"kill after run":  func(c *BlackoutScaleConfig) { c.KillAfter = c.Publishes },
		"no ttl":          func(c *BlackoutScaleConfig) { c.TTL = 0 },
	}
	for name, mutate := range cases {
		cfg := DefaultBlackoutScaleConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, cfg)
		}
	}
}
