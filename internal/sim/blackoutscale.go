package sim

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/message"
	"repro/internal/routing"
	"repro/internal/wire"
)

// This file implements the blackout-at-scale scenario: where blackout.go
// models Figure 3's analytical blackout of a single (re-)subscription,
// this scenario measures the real thing on the live overlay — a transit
// broker of a broker chain is crash-stopped (nothing is flushed, exactly
// like kill -9) while a producer publishes at a steady rate, and the
// elastic federation layer has to notice the silence, re-wire the tree,
// and fail orphaned clients over. Every publication carries its index, so
// the delivery gap at each consumer is measured, not estimated.
//
// Two consumers bracket the damage:
//
//   - the probe: a plain subscriber at the far end of the chain whose
//     delivery path crosses the victim. Its outage is detection + repair
//     plus the propagation of the reseeded routing state.
//   - the orphan: a mobile subscriber homed on the victim itself. It
//     additionally rides the client failover and — because its crashed
//     home can never answer the relocation fetch — waits out the
//     relocation timeout before deliveries resume (Section 4.1's replay,
//     degraded to a timeout when the old border broker no longer exists).

// BlackoutScaleConfig parameterizes the crash scenario.
type BlackoutScaleConfig struct {
	// Brokers is the chain length; the victim must be a transit broker
	// (neither end of the chain).
	Brokers int
	// Victim is the chain index of the broker that is crash-stopped.
	Victim int
	// Heartbeat and TTL parameterize the failure detector
	// (core.WithSelfHealing).
	Heartbeat, TTL time.Duration
	// RelocTimeout bounds the orphan's wait for a relocation replay that
	// can never come (core.WithRelocTimeout).
	RelocTimeout time.Duration
	// Publishes is the total number of publications; the broker is killed
	// after KillAfter of them. Publications are PublishEvery apart.
	Publishes, KillAfter int
	PublishEvery         time.Duration
	// Strategy is the routing strategy of the overlay.
	Strategy routing.Strategy
	// Drain bounds the wait for the tail of deliveries after the last
	// publication.
	Drain time.Duration
}

// Validate checks the configuration.
func (c BlackoutScaleConfig) Validate() error {
	switch {
	case c.Brokers < 3:
		return fmt.Errorf("sim: blackout-scale needs >= 3 brokers, got %d", c.Brokers)
	case c.Victim <= 0 || c.Victim >= c.Brokers-1:
		return fmt.Errorf("sim: victim %d is not a transit broker of a %d-chain", c.Victim, c.Brokers)
	case c.KillAfter <= 0 || c.KillAfter >= c.Publishes:
		return fmt.Errorf("sim: kill point %d outside publish run of %d", c.KillAfter, c.Publishes)
	case c.Heartbeat <= 0 || c.TTL <= 0:
		return fmt.Errorf("sim: self-healing needs positive heartbeat and ttl")
	}
	return nil
}

// DefaultBlackoutScaleConfig returns the EXPERIMENTS.md setting: a chain
// of 16 brokers, the victim in the middle, publishes every 2ms with the
// crash a quarter in.
func DefaultBlackoutScaleConfig() BlackoutScaleConfig {
	return BlackoutScaleConfig{
		Brokers:      16,
		Victim:       8,
		Heartbeat:    5 * time.Millisecond,
		TTL:          60 * time.Millisecond,
		RelocTimeout: 40 * time.Millisecond,
		Publishes:    400,
		KillAfter:    100,
		PublishEvery: 2 * time.Millisecond,
		Strategy:     routing.Covering,
		Drain:        5 * time.Second,
	}
}

// SubscriberOutcome is the measured delivery gap of one consumer.
type SubscriberOutcome struct {
	// Delivered and Lost partition the publications (duplicates counted
	// separately and expected to be zero).
	Delivered, Lost, Duplicates int
	// FirstLost and LastLost are the publish indexes bracketing the loss
	// window (-1 when nothing was lost).
	FirstLost, LastLost int
	// Outage is the wall-clock span from the crash to the publication
	// time of the first post-crash publication that was delivered again
	// and followed by no further loss; zero when nothing was lost.
	Outage time.Duration
}

// BlackoutScaleResult is the outcome of one crash run.
type BlackoutScaleResult struct {
	Config BlackoutScaleConfig
	// Detection is crash-to-detector latency (the repair event's Detected
	// timestamp minus the kill time); Repair is the re-wiring span the
	// repair controller reported.
	Detection, Repair time.Duration
	// Probe is the far-end plain subscriber, Orphan the mobile subscriber
	// that was homed on the victim.
	Probe, Orphan SubscriberOutcome
	// FailedOver reports whether the orphan ended up attached to the
	// repair parent.
	FailedOver bool
}

// Render prints the measured blackout, one line per quantity.
func (r BlackoutScaleResult) Render() string {
	c := r.Config
	out := fmt.Sprintf("blackout-scale: %d-broker chain, victim #%d, strategy %s\n",
		c.Brokers, c.Victim, c.Strategy)
	out += fmt.Sprintf("  load: %d publishes every %v, crash after #%d\n",
		c.Publishes, c.PublishEvery, c.KillAfter)
	out += fmt.Sprintf("  detector: heartbeat %v, ttl %v; relocation timeout %v\n",
		c.Heartbeat, c.TTL, c.RelocTimeout)
	out += fmt.Sprintf("  detection %v after crash, repair %v\n", r.Detection, r.Repair)
	line := func(name string, s SubscriberOutcome) string {
		if s.Lost == 0 {
			return fmt.Sprintf("  %s: %d delivered, no loss\n", name, s.Delivered)
		}
		return fmt.Sprintf("  %s: %d delivered, %d lost (publishes #%d..#%d), %d duplicates, outage %v\n",
			name, s.Delivered, s.Lost, s.FirstLost, s.LastLost, s.Duplicates, s.Outage)
	}
	out += line("probe (plain, far end)", r.Probe)
	out += line("orphan (mobile, on victim)", r.Orphan)
	out += fmt.Sprintf("  orphan failed over: %v\n", r.FailedOver)
	return out
}

// blackoutTap records delivered publish indexes for one consumer.
type blackoutTap struct {
	mu   sync.Mutex
	seen map[int]int
}

func newBlackoutTap() *blackoutTap { return &blackoutTap{seen: make(map[int]int)} }

func (t *blackoutTap) handle(e core.Event) {
	v, ok := e.Notification.Get("i")
	if !ok {
		return
	}
	t.mu.Lock()
	t.seen[int(v.IntVal())]++
	t.mu.Unlock()
}

// outcome reduces the tap against the publish schedule. killAt is the
// index of the first publication after the crash.
func (t *blackoutTap) outcome(pubAt []time.Time, killTime time.Time) SubscriberOutcome {
	t.mu.Lock()
	defer t.mu.Unlock()
	o := SubscriberOutcome{FirstLost: -1, LastLost: -1}
	var lost []int
	for i := range pubAt {
		n := t.seen[i]
		switch {
		case n == 0:
			lost = append(lost, i)
		default:
			o.Delivered++
			o.Duplicates += n - 1
		}
	}
	o.Lost = len(lost)
	if len(lost) > 0 {
		sort.Ints(lost)
		o.FirstLost = lost[0]
		o.LastLost = lost[len(lost)-1]
		if o.LastLost+1 < len(pubAt) {
			o.Outage = pubAt[o.LastLost+1].Sub(killTime)
		}
	}
	return o
}

// RunBlackoutScale runs the crash scenario on the live overlay.
func RunBlackoutScale(cfg BlackoutScaleConfig) (BlackoutScaleResult, error) {
	if err := cfg.Validate(); err != nil {
		return BlackoutScaleResult{}, err
	}
	if cfg.Drain <= 0 {
		cfg.Drain = 5 * time.Second
	}
	res := BlackoutScaleResult{Config: cfg}

	var (
		repairMu   sync.Mutex
		repairEv   *core.RepairEvent
		repairSeen = make(chan struct{})
	)
	net := core.NewNetwork(
		core.WithStrategy(cfg.Strategy),
		core.WithSelfHealing(cfg.Heartbeat, cfg.TTL),
		core.WithRelocTimeout(cfg.RelocTimeout),
		core.WithRepairObserver(func(e core.RepairEvent) {
			repairMu.Lock()
			if repairEv == nil {
				ev := e
				repairEv = &ev
				close(repairSeen)
			}
			repairMu.Unlock()
		}),
	)
	defer net.Close()

	ids := make([]wire.BrokerID, cfg.Brokers)
	for i := range ids {
		ids[i] = wire.BrokerID(fmt.Sprintf("b%02d", i+1))
		net.MustAddBroker(ids[i])
		if i > 0 {
			net.MustConnect(ids[i-1], ids[i], 0)
		}
	}
	victim := ids[cfg.Victim]

	producer, err := net.NewClient("producer", ids[0], nil)
	if err != nil {
		return res, err
	}
	quote := filter.MustParse(`type = "quote"`)
	if err := producer.Advertise("adv", quote); err != nil {
		return res, err
	}
	probeTap, orphanTap := newBlackoutTap(), newBlackoutTap()
	probe, err := net.NewClient("probe", ids[cfg.Brokers-1], probeTap.handle)
	if err != nil {
		return res, err
	}
	orphan, err := net.NewClient("orphan", victim, orphanTap.handle)
	if err != nil {
		return res, err
	}
	if err := probe.Subscribe(core.SubSpec{ID: "probe", Filter: quote}); err != nil {
		return res, err
	}
	if err := orphan.Subscribe(core.SubSpec{ID: "orphan", Filter: quote, Mobile: true}); err != nil {
		return res, err
	}
	net.Settle()

	pubAt := make([]time.Time, cfg.Publishes)
	var killTime time.Time
	for i := 0; i < cfg.Publishes; i++ {
		if i == cfg.KillAfter {
			killTime = time.Now()
			if err := net.Kill(victim); err != nil {
				return res, err
			}
		}
		pubAt[i] = time.Now()
		n := message.New(map[string]message.Value{
			"type": message.String("quote"),
			"i":    message.Int(int64(i)),
		})
		if err := producer.Publish(n); err != nil {
			return res, err
		}
		time.Sleep(cfg.PublishEvery)
	}

	// Wait for the repair event, then for the delivery tail to drain: the
	// run is over when both consumers saw the final publication (or the
	// drain budget expires — the outcome then simply records the loss).
	deadline := time.Now().Add(cfg.Drain)
	select {
	case <-repairSeen:
	case <-time.After(time.Until(deadline)):
	}
	last := cfg.Publishes - 1
	for time.Now().Before(deadline) {
		net.Settle()
		probeTap.mu.Lock()
		pDone := probeTap.seen[last] > 0
		probeTap.mu.Unlock()
		orphanTap.mu.Lock()
		oDone := orphanTap.seen[last] > 0
		orphanTap.mu.Unlock()
		if pDone && oDone {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	net.Settle()

	repairMu.Lock()
	if repairEv != nil {
		res.Detection = repairEv.Detected.Sub(killTime)
		res.Repair = repairEv.Done.Sub(repairEv.Detected)
	}
	repairMu.Unlock()
	res.Probe = probeTap.outcome(pubAt, killTime)
	res.Orphan = orphanTap.outcome(pubAt, killTime)
	res.FailedOver = orphan.At() != victim && orphan.At() != ""
	return res, nil
}
