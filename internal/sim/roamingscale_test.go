package sim

import (
	"strings"
	"testing"
)

// TestRoamingScaleRun drives the relocation storm at a CI-friendly scale
// and checks the protocol claims exactly: with the relocation timeout
// disabled every relocation completes through a replay, so delivery is
// exactly-once — zero loss, zero duplicates — no matter how the storm
// interleaves with the publish load, and nothing falls out of the bounded
// relocation buffers.
func TestRoamingScaleRun(t *testing.T) {
	cfg := RoamingScaleConfig{
		Brokers:          4,
		Roamers:          6,
		Moves:            5,
		PublishesPerMove: 4,
		TableEntries:     1500,
	}
	res, err := RunRoamingScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := cfg.Roamers * cfg.Moves * cfg.PublishesPerMove
	if res.Lost != 0 || res.Duplicates != 0 {
		t.Errorf("storm lost %d and duplicated %d deliveries, want 0/0", res.Lost, res.Duplicates)
	}
	if res.Delivered != total {
		t.Errorf("delivered %d, want %d", res.Delivered, total)
	}
	if res.Relocations != cfg.Roamers*cfg.Moves {
		t.Errorf("relocations = %d, want %d", res.Relocations, cfg.Roamers*cfg.Moves)
	}
	if res.RelocBufferDrops != 0 {
		t.Errorf("relocation buffer drops = %d, want 0", res.RelocBufferDrops)
	}
	if res.TableEntries < cfg.TableEntries {
		t.Errorf("ballast table holds %d entries, want >= %d", res.TableEntries, cfg.TableEntries)
	}
	out := res.Render()
	for _, want := range []string{"roaming-scale", "ballast", "reloc/s", "duplicates", "replay"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render() missing %q:\n%s", want, out)
		}
	}
}

// TestRoamingScaleValidate covers the config guard rails.
func TestRoamingScaleValidate(t *testing.T) {
	ok := DefaultRoamingScaleConfig()
	if err := ok.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := map[string]func(*RoamingScaleConfig){
		"too few brokers":  func(c *RoamingScaleConfig) { c.Brokers = 2 },
		"no roamers":       func(c *RoamingScaleConfig) { c.Roamers = 0 },
		"no moves":         func(c *RoamingScaleConfig) { c.Moves = 0 },
		"no publishes":     func(c *RoamingScaleConfig) { c.PublishesPerMove = 0 },
		"negative ballast": func(c *RoamingScaleConfig) { c.TableEntries = -1 },
	}
	for name, mutate := range cases {
		cfg := DefaultRoamingScaleConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, cfg)
		}
	}
}
