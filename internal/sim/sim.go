// Package sim is a deterministic discrete-event simulator used by the
// experiment harness. The live overlay (package core) runs real goroutines
// over real (or latency-injected) links and is used for the correctness
// experiments; this simulator provides exactly reproducible timing and
// message counts for the quantitative figures (Figures 2, 3, and 9), which
// the paper itself produced analytically/by simulation on a network
// setting from its companion technical report.
package sim

import (
	"container/heap"
	"time"
)

// Clock is a virtual time instant measured from simulation start.
type Clock = time.Duration

// event is a scheduled action.
type event struct {
	at  Clock
	seq uint64 // FIFO tiebreak for simultaneous events
	fn  func()
}

// eventHeap orders events by time, then insertion order (which yields FIFO
// links when all hops share one queue).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Sim is a single-threaded discrete-event scheduler.
type Sim struct {
	now  Clock
	next uint64
	pq   eventHeap
}

// New returns a simulator at time zero.
func New() *Sim {
	return &Sim{}
}

// Now returns the current virtual time.
func (s *Sim) Now() Clock { return s.now }

// At schedules fn at the given absolute virtual time. Scheduling in the
// past runs at the current time (still after all earlier events).
func (s *Sim) At(t Clock, fn func()) {
	if t < s.now {
		t = s.now
	}
	heap.Push(&s.pq, event{at: t, seq: s.next, fn: fn})
	s.next++
}

// After schedules fn after a delay from now.
func (s *Sim) After(d time.Duration, fn func()) {
	s.At(s.now+d, fn)
}

// Run processes events until the queue is empty or virtual time would
// exceed until; events scheduled exactly at until still run.
func (s *Sim) Run(until Clock) {
	for s.pq.Len() > 0 {
		e := s.pq[0]
		if e.at > until {
			return
		}
		heap.Pop(&s.pq)
		s.now = e.at
		e.fn()
	}
}

// RunAll processes every event regardless of time.
func (s *Sim) RunAll() {
	for s.pq.Len() > 0 {
		e := heap.Pop(&s.pq).(event)
		s.now = e.at
		e.fn()
	}
}

// Pending returns the number of scheduled events (diagnostics).
func (s *Sim) Pending() int { return s.pq.Len() }
