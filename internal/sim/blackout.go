package sim

import (
	"time"
)

// This file models Figure 3: the blackout period a consumer experiences
// after (re-)subscribing, for the two routing regimes the paper contrasts:
//
//	(a) simple routing — the subscription must first propagate to the
//	    producer (t_d), and only then can notifications flow back
//	    (another t_d): a blackout of 2·t_d.
//	(b) flooding with client-side filtering — notifications are already
//	    in flight everywhere, so events published as early as t_d before
//	    the subscription are delivered: an effective blackout of −t_d.

// RoutingMode selects the Figure 3 variant.
type RoutingMode uint8

// Routing modes for the blackout experiment.
const (
	// ModeSimpleRouting propagates the subscription hop by hop before any
	// notification can flow (Figure 3a).
	ModeSimpleRouting RoutingMode = iota + 1
	// ModeFloodingClientSide floods every notification and filters at the
	// consumer's local broker (Figure 3b).
	ModeFloodingClientSide
)

// String returns the mode name.
func (m RoutingMode) String() string {
	switch m {
	case ModeSimpleRouting:
		return "simple-routing"
	case ModeFloodingClientSide:
		return "flooding-client-side"
	default:
		return "invalid"
	}
}

// BlackoutConfig parameterizes the Figure 3 chain scenario.
type BlackoutConfig struct {
	// Hops is the number of links between the consumer's and the
	// producer's border broker (k in Figure 6).
	Hops int
	// LinkDelay is the per-link one-way delay; t_d = Hops · LinkDelay.
	LinkDelay time.Duration
	// PublishInterval is the producer's inter-publication gap; publishing
	// starts at time zero.
	PublishInterval time.Duration
	// SubscribeAt is when the consumer issues its subscription.
	SubscribeAt time.Duration
	// Horizon ends the simulation.
	Horizon time.Duration
	// Mode selects Figure 3a or 3b.
	Mode RoutingMode
}

// Delivery records one delivered notification.
type Delivery struct {
	PublishedAt time.Duration
	DeliveredAt time.Duration
}

// BlackoutResult is the outcome of one Figure 3 run.
type BlackoutResult struct {
	Config    BlackoutConfig
	Published int
	Delivered []Delivery
	// Td is the end-to-end one-way delay Hops · LinkDelay.
	Td time.Duration
}

// FirstDeliveryAt returns the virtual time of the first delivery, or -1
// when nothing was delivered.
func (r BlackoutResult) FirstDeliveryAt() time.Duration {
	if len(r.Delivered) == 0 {
		return -1
	}
	return r.Delivered[0].DeliveredAt
}

// Blackout returns the observed blackout: the delay between the
// subscription and the first delivery, or -1 when nothing was delivered.
func (r BlackoutResult) Blackout() time.Duration {
	first := r.FirstDeliveryAt()
	if first < 0 {
		return -1
	}
	return first - r.Config.SubscribeAt
}

// EarliestPublishedDelivered returns the publication time of the earliest
// published notification that was delivered, or -1 when none. Under
// flooding this is up to t_d *before* the subscription (the −t_d of
// Figure 3b).
func (r BlackoutResult) EarliestPublishedDelivered() time.Duration {
	if len(r.Delivered) == 0 {
		return -1
	}
	earliest := r.Delivered[0].PublishedAt
	for _, d := range r.Delivered[1:] {
		if d.PublishedAt < earliest {
			earliest = d.PublishedAt
		}
	}
	return earliest
}

// RunBlackout simulates the Figure 3 chain scenario.
func RunBlackout(cfg BlackoutConfig) BlackoutResult {
	s := New()
	res := BlackoutResult{Config: cfg, Td: time.Duration(cfg.Hops) * cfg.LinkDelay}

	// subscribedAtProducer is when the producer's border broker learns of
	// the subscription (simple routing only).
	subscribedAtProducer := cfg.SubscribeAt + res.Td
	// subscribedAtConsumer is when client-side filtering switches on.
	subscribedAtConsumer := cfg.SubscribeAt

	deliver := func(pub time.Duration) {
		res.Delivered = append(res.Delivered, Delivery{PublishedAt: pub, DeliveredAt: s.Now()})
	}

	// Producer publishes at 0, interval, 2·interval, …
	for t := time.Duration(0); t <= cfg.Horizon; t += cfg.PublishInterval {
		pub := t
		s.At(pub, func() {
			switch cfg.Mode {
			case ModeSimpleRouting:
				// Forwarded toward the consumer only if the subscription
				// already reached the producer's border broker.
				if s.Now() >= subscribedAtProducer {
					s.After(res.Td, func() { deliver(pub) })
				}
			case ModeFloodingClientSide:
				// Always floods; delivered if the consumer is subscribed
				// when it arrives at the local broker.
				s.After(res.Td, func() {
					if s.Now() >= subscribedAtConsumer {
						deliver(pub)
					}
				})
			}
		})
		res.Published++
	}
	s.Run(cfg.Horizon + 2*res.Td)
	return res
}
