package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/filter"
	"repro/internal/routing"
	"repro/internal/wire"
)

// This file implements the subscription-churn admin-traffic scenario: the
// roaming counterpart of Figure 9's message-count comparison. Where
// Figure 9 counts the traffic of one logically mobile consumer, this
// scenario makes subscription churn itself the steady-state workload —
// the paper's central mobility setting — and counts the broker-to-broker
// administrative messages (aggregate subscribe/unsubscribe) each routing
// strategy generates while a population of subscribers repeatedly
// relocates between brokers.
//
// The model runs the real control plane: every broker holds a
// routing.Forwarder fed through the delta API, and every Update a
// forwarder emits travels to the neighbor and cascades there, exactly as
// in package broker, minus transport and data plane. The per-strategy
// admin counts therefore reproduce what a live overlay sends, and the
// cover-check counters demonstrate that Covering's maintenance work is
// per-delta (signature-bucketed candidate scans) rather than per-table.

// ChurnConfig parameterizes the churn scenario.
type ChurnConfig struct {
	// Brokers is the length of the broker chain.
	Brokers int
	// Subscribers is the population size; each subscriber holds one
	// subscription drawn from a structured filter family with heavy
	// covering/merging material.
	Subscribers int
	// Moves is the number of roaming relocations after the initial
	// subscription phase: a random subscriber unsubscribes at its current
	// broker and resubscribes at a random other one.
	Moves int
	// Seed makes the scenario reproducible.
	Seed int64
}

// Validate checks the configuration.
func (c ChurnConfig) Validate() error {
	switch {
	case c.Brokers < 2:
		return fmt.Errorf("sim: churn needs >= 2 brokers, got %d", c.Brokers)
	case c.Subscribers < 1:
		return fmt.Errorf("sim: churn needs >= 1 subscriber, got %d", c.Subscribers)
	case c.Moves < 0:
		return fmt.Errorf("sim: negative move count")
	}
	return nil
}

// DefaultChurnConfig returns the EXPERIMENTS.md setting: a chain of 8
// brokers, 64 subscribers, 256 relocations.
func DefaultChurnConfig() ChurnConfig {
	return ChurnConfig{Brokers: 8, Subscribers: 64, Moves: 256, Seed: 42}
}

// ChurnResult is the per-strategy outcome.
type ChurnResult struct {
	Strategy routing.Strategy
	// InitialMsgs counts broker-to-broker admin messages during the
	// initial subscription phase, ChurnMsgs during the relocation phase;
	// AdminMsgs is their sum (the Figure 9 y-axis for admin traffic).
	InitialMsgs, ChurnMsgs, AdminMsgs uint64
	// MaxTableFilters is the largest per-broker count of distinct remote
	// filters observed at the end (routing-table pressure).
	MaxTableFilters int
	// CoverChecks and CoverChecksSaved are summed over all brokers'
	// forwarders: pairwise cover tests performed vs. dismissed by the
	// signature buckets.
	CoverChecks, CoverChecksSaved uint64
	// MergesActive, MergeCovered, and Unmerges are summed over all
	// brokers' forwarders at the end of the run: merge groups currently
	// suppressing inputs behind a merged filter, inputs so suppressed,
	// and cumulative re-expansions of merged filters on unsubscribe (all
	// zero for strategies below Merging).
	MergesActive, MergeCovered int
	Unmerges                   uint64
}

// churnBroker is one node of the modeled chain: its forwarder plus the
// aggregate inputs received from each neighbor (mirroring the remote
// entries a real broker's routing table holds).
type churnBroker struct {
	fwd    *routing.Forwarder
	remote map[int]map[string]filter.Filter // neighbor -> forwarded-to-us set
}

// churnMsg is one broker-to-broker admin message.
type churnMsg struct {
	from, to  int
	subscribe bool
	f         filter.Filter
}

// churnFilters builds the structured subscription family: nested and
// adjacent cost ranges plus per-service point filters, so Identity,
// Covering, and Merging each have distinct material to exploit.
func churnFilters(rng *rand.Rand, n int) []filter.Filter {
	out := make([]filter.Filter, n)
	for i := range out {
		switch rng.Intn(3) {
		case 0:
			lo := rng.Intn(8) * 5
			out[i] = filter.MustParse(fmt.Sprintf(`service = "parking" && cost in [%d, %d]`,
				lo, lo+5+rng.Intn(3)*15))
		case 1:
			out[i] = filter.MustParse(fmt.Sprintf(`service = "parking" && cost < %d`, 2+rng.Intn(4)))
		default:
			out[i] = filter.MustParse(fmt.Sprintf(`service = "s%d"`, rng.Intn(4)))
		}
	}
	return out
}

// RunChurn executes the scenario once per routing strategy and returns
// the per-strategy results in StrategyNames order.
func RunChurn(cfg ChurnConfig) ([]ChurnResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	out := make([]ChurnResult, 0, len(routing.Strategies()))
	for _, strat := range routing.Strategies() {
		out = append(out, runChurnStrategy(cfg, strat))
	}
	return out, nil
}

func runChurnStrategy(cfg ChurnConfig, strat routing.Strategy) ChurnResult {
	rng := rand.New(rand.NewSource(cfg.Seed))
	filters := churnFilters(rng, cfg.Subscribers)
	at := make([]int, cfg.Subscribers) // subscriber -> broker
	for i := range at {
		at[i] = rng.Intn(cfg.Brokers)
	}

	brokers := make([]*churnBroker, cfg.Brokers)
	for i := range brokers {
		brokers[i] = &churnBroker{
			fwd:    routing.NewForwarder(strat),
			remote: make(map[int]map[string]filter.Filter),
		}
	}
	neighbors := func(i int) []int {
		var ns []int
		if i > 0 {
			ns = append(ns, i-1)
		}
		if i < cfg.Brokers-1 {
			ns = append(ns, i+1)
		}
		return ns
	}

	res := ChurnResult{Strategy: strat}
	var queue []churnMsg
	// enqueue translates a forwarder Update into wire messages.
	enqueue := func(from int, to int, u routing.Update) {
		for _, f := range u.Subscribe {
			queue = append(queue, churnMsg{from: from, to: to, subscribe: true, f: f})
		}
		for _, f := range u.Unsubscribe {
			queue = append(queue, churnMsg{from: from, to: to, f: f})
		}
	}
	// applyLocal feeds one local table change at broker b into its
	// forwarder toward every neighbor except skip (-1: none).
	applyLocal := func(b, skip int, f filter.Filter, add bool) {
		cb := brokers[b]
		for _, n := range neighbors(b) {
			if n == skip {
				continue
			}
			hop := wire.BrokerHop(wire.BrokerID(fmt.Sprintf("b%d", n)))
			var u routing.Update
			if add {
				u = cb.fwd.AddFilter(hop, f)
			} else {
				u = cb.fwd.RemoveFilter(hop, f)
			}
			enqueue(b, n, u)
		}
	}
	drain := func(counter *uint64) {
		for len(queue) > 0 {
			m := queue[0]
			queue = queue[1:]
			*counter++
			cb := brokers[m.to]
			rem := cb.remote[m.from]
			if rem == nil {
				rem = make(map[string]filter.Filter)
				cb.remote[m.from] = rem
			}
			id := m.f.ID()
			if m.subscribe {
				if _, dup := rem[id]; dup {
					continue
				}
				rem[id] = m.f
			} else {
				if _, ok := rem[id]; !ok {
					continue
				}
				delete(rem, id)
			}
			applyLocal(m.to, m.from, m.f, m.subscribe)
		}
	}

	// Initial subscription phase.
	for i, f := range filters {
		applyLocal(at[i], -1, f, true)
		drain(&res.InitialMsgs)
	}
	// Roaming churn phase.
	for move := 0; move < cfg.Moves; move++ {
		i := rng.Intn(cfg.Subscribers)
		to := rng.Intn(cfg.Brokers)
		if to == at[i] {
			to = (to + 1) % cfg.Brokers
		}
		applyLocal(at[i], -1, filters[i], false)
		drain(&res.ChurnMsgs)
		at[i] = to
		applyLocal(to, -1, filters[i], true)
		drain(&res.ChurnMsgs)
	}
	res.AdminMsgs = res.InitialMsgs + res.ChurnMsgs

	for _, cb := range brokers {
		distinct := make(map[string]bool)
		for _, rem := range cb.remote {
			for id := range rem {
				distinct[id] = true
			}
		}
		if len(distinct) > res.MaxTableFilters {
			res.MaxTableFilters = len(distinct)
		}
		fs := cb.fwd.Stats()
		res.CoverChecks += fs.CoverChecks
		res.CoverChecksSaved += fs.CoverChecksSaved
		res.MergesActive += fs.MergesActive
		res.MergeCovered += fs.MergeCovered
		res.Unmerges += fs.Unmerges
	}
	return res
}
