package sim

import (
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var order []int
	s.At(30*time.Millisecond, func() { order = append(order, 3) })
	s.At(10*time.Millisecond, func() { order = append(order, 1) })
	s.At(20*time.Millisecond, func() { order = append(order, 2) })
	s.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 30*time.Millisecond {
		t.Errorf("Now = %v", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Millisecond, func() { order = append(order, i) })
	}
	s.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events reordered: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var hits []time.Duration
	s.At(time.Millisecond, func() {
		s.After(2*time.Millisecond, func() { hits = append(hits, s.Now()) })
	})
	s.RunAll()
	if len(hits) != 1 || hits[0] != 3*time.Millisecond {
		t.Fatalf("nested scheduling: %v", hits)
	}
}

func TestSchedulingInPastClamps(t *testing.T) {
	s := New()
	ran := false
	s.At(10*time.Millisecond, func() {
		s.At(time.Millisecond, func() { ran = true }) // in the past
	})
	s.RunAll()
	if !ran {
		t.Error("past event never ran")
	}
	if s.Now() != 10*time.Millisecond {
		t.Errorf("past event advanced the clock to %v", s.Now())
	}
}

func TestRunUntilStops(t *testing.T) {
	s := New()
	ran := 0
	s.At(time.Millisecond, func() { ran++ })
	s.At(time.Hour, func() { ran++ })
	s.Run(time.Second)
	if ran != 1 {
		t.Errorf("Run(1s) executed %d events", ran)
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d", s.Pending())
	}
	s.RunAll()
	if ran != 2 {
		t.Error("RunAll did not finish the queue")
	}
}

func TestBlackoutSimpleRoutingTwoTd(t *testing.T) {
	cfg := BlackoutConfig{
		Hops:            4,
		LinkDelay:       25 * time.Millisecond, // t_d = 100ms
		PublishInterval: 10 * time.Millisecond,
		SubscribeAt:     300 * time.Millisecond,
		Horizon:         time.Second,
		Mode:            ModeSimpleRouting,
	}
	res := RunBlackout(cfg)
	if res.Td != 100*time.Millisecond {
		t.Fatalf("Td = %v", res.Td)
	}
	b := res.Blackout()
	if b < 2*res.Td || b > 2*res.Td+cfg.PublishInterval {
		t.Errorf("blackout = %v, want in [2td, 2td+interval]", b)
	}
	// Nothing published before the subscription reached the producer is
	// delivered.
	if res.EarliestPublishedDelivered() < cfg.SubscribeAt+res.Td {
		t.Error("simple routing delivered a pre-subscription event")
	}
	// Deliveries are complete afterwards: everything published in
	// [subscribeAt+td, horizon] is delivered.
	wantCount := 0
	for tt := time.Duration(0); tt <= cfg.Horizon; tt += cfg.PublishInterval {
		if tt >= cfg.SubscribeAt+res.Td {
			wantCount++
		}
	}
	if len(res.Delivered) != wantCount {
		t.Errorf("delivered %d, want %d", len(res.Delivered), wantCount)
	}
}

func TestBlackoutFloodingNegativeTd(t *testing.T) {
	cfg := BlackoutConfig{
		Hops:            4,
		LinkDelay:       25 * time.Millisecond,
		PublishInterval: 10 * time.Millisecond,
		SubscribeAt:     300 * time.Millisecond,
		Horizon:         time.Second,
		Mode:            ModeFloodingClientSide,
	}
	res := RunBlackout(cfg)
	// First delivery essentially at the subscription time.
	if b := res.Blackout(); b < 0 || b > cfg.PublishInterval {
		t.Errorf("flooding blackout = %v", b)
	}
	// Events published up to t_d before the subscription are seen
	// (Figure 3b's −t_d).
	earliest := res.EarliestPublishedDelivered()
	if earliest > cfg.SubscribeAt-res.Td+cfg.PublishInterval {
		t.Errorf("earliest published delivered = %v, want ≈ %v",
			earliest, cfg.SubscribeAt-res.Td)
	}
}

func TestBlackoutScalesWithHops(t *testing.T) {
	base := BlackoutConfig{
		LinkDelay:       10 * time.Millisecond,
		PublishInterval: time.Millisecond,
		SubscribeAt:     200 * time.Millisecond,
		Horizon:         time.Second,
		Mode:            ModeSimpleRouting,
	}
	var prev time.Duration
	for _, hops := range []int{1, 2, 4, 8} {
		cfg := base
		cfg.Hops = hops
		b := RunBlackout(cfg).Blackout()
		if b <= prev {
			t.Errorf("blackout should grow with hops: %d hops -> %v (prev %v)", hops, b, prev)
		}
		prev = b
	}
}

func TestRoamingNaiveFailureModes(t *testing.T) {
	cfg := RoamingConfig{
		DelayToOld:      10 * time.Millisecond,
		DelayToNew:      40 * time.Millisecond,
		DelayJitter:     80 * time.Millisecond,
		MoveAt:          500 * time.Millisecond,
		HandoffGap:      100 * time.Millisecond,
		PublishInterval: 5 * time.Millisecond,
		Horizon:         time.Second,
	}
	res := RunRoaming(cfg)
	if res.Missed == 0 {
		t.Error("naive roaming should miss notifications")
	}
	if res.Duplicates == 0 {
		t.Error("naive roaming should duplicate notifications")
	}
	if res.Published != res.DeliveredOnce()+res.Missed+res.Duplicates {
		t.Errorf("accounting broken: %+v", res)
	}
}

func TestRoamingProtocolExactlyOnceSweep(t *testing.T) {
	// Property: for every parameter combination, the relocation protocol
	// delivers everything exactly once.
	for _, dOld := range []time.Duration{0, 10 * time.Millisecond, 80 * time.Millisecond} {
		for _, dNew := range []time.Duration{5 * time.Millisecond, 60 * time.Millisecond} {
			for _, gap := range []time.Duration{0, 50 * time.Millisecond, 300 * time.Millisecond} {
				cfg := RoamingConfig{
					DelayToOld:      dOld,
					DelayToNew:      dNew,
					DelayJitter:     30 * time.Millisecond,
					MoveAt:          400 * time.Millisecond,
					HandoffGap:      gap,
					PublishInterval: 7 * time.Millisecond,
					Horizon:         time.Second,
					Protocol:        true,
				}
				res := RunRoaming(cfg)
				if res.Missed != 0 || res.Duplicates != 0 {
					t.Fatalf("protocol broke exactly-once for %+v: %+v", cfg, res)
				}
				if res.DeliveredOnce() != res.Published {
					t.Fatalf("protocol lost messages for %+v: %+v", cfg, res)
				}
			}
		}
	}
}

func TestFig9ConfigValidation(t *testing.T) {
	good := Fig9Config{
		TreeDepth: 3, Locations: 25, Rate: 100,
		Delta: time.Second, HopDelay: 50 * time.Millisecond,
		Horizon: 10 * time.Second, Algorithm: AlgLocDep,
	}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
	bad := []Fig9Config{
		{TreeDepth: 0, Locations: 25, Rate: 100, Delta: time.Second, Horizon: time.Second, Algorithm: AlgLocDep},
		{TreeDepth: 3, Locations: 2, Rate: 100, Delta: time.Second, Horizon: time.Second, Algorithm: AlgLocDep},
		{TreeDepth: 3, Locations: 25, Rate: 0, Delta: time.Second, Horizon: time.Second, Algorithm: AlgLocDep},
		{TreeDepth: 3, Locations: 25, Rate: 100, Delta: 0, Horizon: time.Second, Algorithm: AlgLocDep},
		{TreeDepth: 3, Locations: 25, Rate: 100, Delta: time.Second, Horizon: 0, Algorithm: AlgLocDep},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if got := good.Brokers(); got != 15 {
		t.Errorf("depth-3 tree has %d brokers, want 15", got)
	}
	if got := good.Links(); got != 14 {
		t.Errorf("depth-3 tree has %d links, want 14", got)
	}
}

func TestFig9FloodingIsLinear(t *testing.T) {
	cfg := Fig9Config{
		TreeDepth: 3, Locations: 25, Rate: 100,
		Delta: time.Second, HopDelay: 50 * time.Millisecond,
		Horizon: 10 * time.Second, Algorithm: AlgFlooding,
	}
	s, err := RunFig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Flooding: exactly rate × links per second.
	perSec := cfg.Rate * float64(cfg.Links())
	for i := 1; i < len(s.Points); i++ {
		got := s.Points[i].Total - s.Points[i-1].Total
		if got != perSec {
			t.Fatalf("flooding increment at %d = %g, want %g", i, got, perSec)
		}
	}
}

func TestFig9LocDepBeatsFloodingEverywhere(t *testing.T) {
	for _, depth := range []int{2, 4, 5} {
		for _, delta := range []time.Duration{time.Second, 10 * time.Second} {
			base := Fig9Config{
				TreeDepth: depth, Locations: 100, Rate: 500,
				HopDelay: 200 * time.Millisecond, Horizon: 50 * time.Second,
			}
			flood := base
			flood.Algorithm = AlgFlooding
			flood.Delta = delta
			loc := base
			loc.Algorithm = AlgLocDep
			loc.Delta = delta
			fs, err := RunFig9(flood)
			if err != nil {
				t.Fatal(err)
			}
			ls, err := RunFig9(loc)
			if err != nil {
				t.Fatal(err)
			}
			if ls.Final() >= fs.Final() {
				t.Errorf("depth=%d Δ=%v: locdep %g >= flooding %g",
					depth, delta, ls.Final(), fs.Final())
			}
		}
	}
}

func TestFig9FasterConsumerCostsMore(t *testing.T) {
	base := Fig9Config{
		TreeDepth: 5, Locations: 100, Rate: 1000,
		HopDelay: 400 * time.Millisecond, Horizon: 100 * time.Second,
		Algorithm: AlgLocDep,
	}
	fast := base
	fast.Delta = time.Second
	slow := base
	slow.Delta = 10 * time.Second
	fs, err := RunFig9(fast)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := RunFig9(slow)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Final() <= ss.Final() {
		t.Errorf("Δ=1s (%g) should cost more than Δ=10s (%g)", fs.Final(), ss.Final())
	}
}

func TestPathLengths(t *testing.T) {
	// Depth 2: 4 leaves; distances from leaf 0 to leaves 1, 2, 3 are
	// 2, 4, 4.
	got := pathLengths(2)
	want := []int{2, 4, 4}
	if len(got) != len(want) {
		t.Fatalf("pathLengths(2) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pathLengths(2) = %v, want %v", got, want)
		}
	}
}

func TestPlocSizeGrid(t *testing.T) {
	tests := []struct{ q, l, want int }{
		{0, 100, 1},
		{1, 100, 5},
		{2, 100, 13},
		{3, 100, 25},
		{9, 100, 100}, // capped
		{0, 3, 1},
		{5, 3, 3},
	}
	for _, tt := range tests {
		if got := plocSize(tt.q, tt.l); got != tt.want {
			t.Errorf("plocSize(%d, %d) = %d, want %d", tt.q, tt.l, got, tt.want)
		}
	}
}
