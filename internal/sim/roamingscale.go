package sim

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/message"
	"repro/internal/routing"
	"repro/internal/wire"
)

// This file implements the roaming-at-scale scenario: where roaming.go
// replays the paper's single-client handoff itineraries, this scenario
// measures a relocation storm on the live overlay — a fleet of mobile
// subscribers ping-pongs between the last two brokers of a chain while a
// producer at the far end keeps publishing indexed notifications, and the
// border brokers carry a large ballast subscription table. Every
// notification carries its index, so exactly-once delivery through the
// storm (Section 4.1's no-loss/no-duplicate argument) is checked, not
// assumed; the ballast table checks the city-scale claim that relocation
// cost depends on the roaming client's own entries, not on the table size
// around them. The relocation timeout is disabled, so every relocation
// must complete through a real fetch/flip/replay round trip.

// RoamingScaleConfig parameterizes the relocation storm.
type RoamingScaleConfig struct {
	// Brokers is the chain length. The storm runs between the last two
	// brokers; the producer publishes from the first.
	Brokers int
	// Roamers is the number of mobile subscribers in the storm.
	Roamers int
	// Moves is how many times each roamer relocates.
	Moves int
	// PublishesPerMove is how many indexed notifications the producer
	// emits in each move round, racing the relocations.
	PublishesPerMove int
	// TableEntries is the ballast subscription table size injected at the
	// roamers' home broker before the storm.
	TableEntries int
	// Strategy is the routing strategy of the overlay.
	Strategy routing.Strategy
	// Drain bounds the wait for the delivery tail after the last round.
	Drain time.Duration
}

// Validate checks the configuration.
func (c RoamingScaleConfig) Validate() error {
	switch {
	case c.Brokers < 3:
		return fmt.Errorf("sim: roaming-scale needs >= 3 brokers, got %d", c.Brokers)
	case c.Roamers < 1:
		return fmt.Errorf("sim: roaming-scale needs >= 1 roamer, got %d", c.Roamers)
	case c.Moves < 1:
		return fmt.Errorf("sim: roaming-scale needs >= 1 move per roamer, got %d", c.Moves)
	case c.PublishesPerMove < 1:
		return fmt.Errorf("sim: roaming-scale needs >= 1 publish per move, got %d", c.PublishesPerMove)
	case c.TableEntries < 0:
		return fmt.Errorf("sim: negative ballast table size %d", c.TableEntries)
	}
	return nil
}

// DefaultRoamingScaleConfig returns the CI-sized setting: a 4-chain, 8
// roamers relocating 6 times each against a 2000-entry ballast table.
// (The benchmark variants in bench_test.go push the same shape to 10⁶
// ballast entries.)
func DefaultRoamingScaleConfig() RoamingScaleConfig {
	return RoamingScaleConfig{
		Brokers:          4,
		Roamers:          8,
		Moves:            6,
		PublishesPerMove: 4,
		TableEntries:     2000,
		Strategy:         routing.Covering,
		Drain:            5 * time.Second,
	}
}

// RoamingScaleResult is the outcome of one storm run.
type RoamingScaleResult struct {
	Config RoamingScaleConfig
	// Relocations is the total number of relocations driven (Roamers ×
	// Moves); Elapsed is the wall-clock span of the storm loop, and
	// RelocationsPerSec the resulting throughput under publish load.
	Relocations       int
	Elapsed           time.Duration
	RelocationsPerSec float64
	// Delivered / Lost / Duplicates partition the expected deliveries
	// (Roamers × Moves × PublishesPerMove). The protocol's claim is
	// Lost == 0 && Duplicates == 0.
	Delivered, Lost, Duplicates int
	// ReplayBatches / ReplayMeanItems / ReplayMaxItems aggregate the
	// replay-size distribution over all brokers: how much each virtual
	// counterpart had to send back per relocation.
	ReplayBatches   uint64
	ReplayMeanItems float64
	ReplayMaxItems  uint64
	// RelocBufferDrops must be zero: the storm stays under the buffer cap.
	RelocBufferDrops uint64
	// TableEntries is the measured table size at the roamers' home broker
	// after ballast injection (>= Config.TableEntries; the storm's own
	// subscriptions ride on top).
	TableEntries int
}

// Render prints the storm outcome, one line per quantity.
func (r RoamingScaleResult) Render() string {
	c := r.Config
	out := fmt.Sprintf("roaming-scale: %d-broker chain, %d roamers × %d moves, strategy %s\n",
		c.Brokers, c.Roamers, c.Moves, c.Strategy)
	out += fmt.Sprintf("  ballast: %d table entries at the home broker\n", r.TableEntries)
	out += fmt.Sprintf("  storm: %d relocations in %v (%.0f reloc/s) under %d publishes\n",
		r.Relocations, r.Elapsed.Round(time.Millisecond), r.RelocationsPerSec,
		c.Moves*c.PublishesPerMove)
	out += fmt.Sprintf("  delivery: %d delivered, %d lost, %d duplicates\n",
		r.Delivered, r.Lost, r.Duplicates)
	out += fmt.Sprintf("  replay: %d batches, mean %.2f items, max %d items, %d buffer drops\n",
		r.ReplayBatches, r.ReplayMeanItems, r.ReplayMaxItems, r.RelocBufferDrops)
	return out
}

// RunRoamingScale runs the relocation storm on the live overlay.
func RunRoamingScale(cfg RoamingScaleConfig) (RoamingScaleResult, error) {
	if err := cfg.Validate(); err != nil {
		return RoamingScaleResult{}, err
	}
	if cfg.Drain <= 0 {
		cfg.Drain = 5 * time.Second
	}
	res := RoamingScaleResult{Config: cfg}

	net := core.NewNetwork(
		core.WithStrategy(cfg.Strategy),
		core.WithRelocTimeout(-1), // strict: completion only through replay
	)
	defer net.Close()
	ids := make([]wire.BrokerID, cfg.Brokers)
	for i := range ids {
		ids[i] = wire.BrokerID(fmt.Sprintf("b%02d", i+1))
		net.MustAddBroker(ids[i])
		if i > 0 {
			net.MustConnect(ids[i-1], ids[i], 0)
		}
	}
	home, away := ids[cfg.Brokers-1], ids[cfg.Brokers-2]

	producer, err := net.NewClient("producer", ids[0], nil)
	if err != nil {
		return res, err
	}
	tick := filter.MustParse(`type = "tick"`)
	if err := producer.Advertise("adv", tick); err != nil {
		return res, err
	}
	taps := make([]*blackoutTap, cfg.Roamers)
	roamers := make([]*core.Client, cfg.Roamers)
	for i := range roamers {
		taps[i] = newBlackoutTap()
		c, err := net.NewClient(wire.ClientID(fmt.Sprintf("m%03d", i)), home, taps[i].handle)
		if err != nil {
			return res, err
		}
		if err := c.Subscribe(core.SubSpec{ID: "s", Filter: tick, Mobile: true}); err != nil {
			return res, err
		}
		roamers[i] = c
	}
	net.Settle()

	// Ballast: aggregate entries injected as if the chain neighbor had
	// forwarded them, so the control plane has nowhere to propagate them
	// and split-horizon matching keeps storm publishes out of them.
	homeBroker, err := net.Broker(home)
	if err != nil {
		return res, err
	}
	neighbor := wire.BrokerHop(away)
	const chunk = 4096
	msgs := make([]wire.Message, 0, chunk)
	for i := 0; i < cfg.TableEntries; i++ {
		f := filter.MustNew(filter.EQ("topic", message.String(fmt.Sprintf("bg%d", i))))
		msgs = append(msgs, wire.NewSubscribe(wire.Subscription{Filter: f}))
		if len(msgs) == chunk {
			homeBroker.ReceiveBurst(neighbor, msgs)
			homeBroker.Barrier()
			msgs = make([]wire.Message, 0, chunk)
		}
	}
	if len(msgs) > 0 {
		homeBroker.ReceiveBurst(neighbor, msgs)
		homeBroker.Barrier()
	}
	res.TableEntries, _ = homeBroker.TableSizes()

	// The storm: each round publishes a burst that races the fleet's
	// relocations, with no settling in between — notifications in flight
	// land in virtual-counterpart buffers and come back through replays.
	total := cfg.Moves * cfg.PublishesPerMove
	start := time.Now()
	idx := 0
	for m := 0; m < cfg.Moves; m++ {
		for p := 0; p < cfg.PublishesPerMove; p++ {
			n := message.New(map[string]message.Value{
				"type": message.String("tick"),
				"i":    message.Int(int64(idx)),
			})
			if err := producer.Publish(n); err != nil {
				return res, err
			}
			idx++
		}
		target := away
		if m%2 == 1 {
			target = home
		}
		for _, c := range roamers {
			if err := c.MoveTo(target); err != nil {
				return res, err
			}
		}
	}
	net.Settle()
	res.Elapsed = time.Since(start)
	res.Relocations = cfg.Moves * cfg.Roamers
	if s := res.Elapsed.Seconds(); s > 0 {
		res.RelocationsPerSec = float64(res.Relocations) / s
	}

	// Drain the delivery tail (client delivery goroutines are
	// asynchronous), then reduce the taps.
	deadline := time.Now().Add(cfg.Drain)
	for time.Now().Before(deadline) {
		done := true
		for _, tap := range taps {
			tap.mu.Lock()
			if tap.seen[total-1] == 0 {
				done = false
			}
			tap.mu.Unlock()
			if !done {
				break
			}
		}
		if done {
			break
		}
		net.Settle()
		time.Sleep(time.Millisecond)
	}
	net.Settle()

	for _, tap := range taps {
		tap.mu.Lock()
		for i := 0; i < total; i++ {
			switch n := tap.seen[i]; {
			case n == 0:
				res.Lost++
			default:
				res.Delivered++
				res.Duplicates += n - 1
			}
		}
		tap.mu.Unlock()
	}
	for _, id := range ids {
		br, err := net.Broker(id)
		if err != nil {
			return res, err
		}
		s := br.Stats()
		res.ReplayMeanItems = (res.ReplayMeanItems*float64(res.ReplayBatches) +
			s.ReplayMeanItems*float64(s.ReplayBatches))
		res.ReplayBatches += s.ReplayBatches
		if res.ReplayBatches > 0 {
			res.ReplayMeanItems /= float64(res.ReplayBatches)
		}
		if s.ReplayMaxItems > res.ReplayMaxItems {
			res.ReplayMaxItems = s.ReplayMaxItems
		}
		res.RelocBufferDrops += s.RelocBufferDrops
	}
	return res, nil
}
