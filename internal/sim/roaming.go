package sim

import (
	"time"
)

// This file models Figure 2: the notifications a naively roaming client
// misses or receives twice when it relies on plain unsubscribe/subscribe
// while moving between border brokers under flooding.
//
// The scenario: a producer publishes through broker B1; the client is
// attached at B2 until it moves, then reattaches at B3 after a handoff
// gap. Under flooding every notification reaches both B2 and B3; the
// naive client receives a notification at B2 if it is still there when
// the notification arrives, and at B3 if it has already (re-)subscribed
// there. Depending on the two path delays a notification can thus arrive
// zero times (the "event is not delivered" arrow of Figure 2) or twice
// ("event is delivered twice").

// RoamingConfig parameterizes the Figure 2 scenario.
type RoamingConfig struct {
	// DelayToOld is the delivery delay from the producer's broker to the
	// old border broker (B1 → B2).
	DelayToOld time.Duration
	// DelayToNew is the delivery delay from the producer's broker to the
	// new border broker (B1 → B3).
	DelayToNew time.Duration
	// DelayJitter models queueing variance on the new path: notification
	// i experiences DelayToNew + (i mod 3) · DelayJitter. It is what makes
	// both Figure 2 failure modes (miss and duplicate) appear in a single
	// run, exactly as in a real flooded network where the two paths race
	// differently per event.
	DelayJitter time.Duration
	// MoveAt is when the client leaves the old broker.
	MoveAt time.Duration
	// HandoffGap is how long after MoveAt the client has re-subscribed at
	// the new broker (naive: unsub+sub round trips; protocol: immediate
	// buffering).
	HandoffGap time.Duration
	// PublishInterval and Horizon control the publication schedule
	// (publishing starts at time zero).
	PublishInterval time.Duration
	Horizon         time.Duration
	// Protocol enables the paper's relocation protocol instead of the
	// naive unsub/sub: the old broker buffers from MoveAt and the replay
	// delivers exactly the missing notifications once.
	Protocol bool
}

// RoamingResult counts per-notification delivery multiplicities.
type RoamingResult struct {
	Config     RoamingConfig
	Published  int
	OnceLive   int // delivered exactly once via a live path
	OnceReplay int // delivered exactly once via the relocation replay
	Duplicates int // delivered twice (naive overlap)
	Missed     int // never delivered (naive gap)
}

// DeliveredOnce returns the number of notifications delivered exactly
// once.
func (r RoamingResult) DeliveredOnce() int { return r.OnceLive + r.OnceReplay }

// RunRoaming simulates the Figure 2 scenario.
func RunRoaming(cfg RoamingConfig) RoamingResult {
	s := New()
	res := RoamingResult{Config: cfg}
	resubAt := cfg.MoveAt + cfg.HandoffGap

	i := 0
	for t := time.Duration(0); t <= cfg.Horizon; t += cfg.PublishInterval {
		pub := t
		jitter := time.Duration(i%3) * cfg.DelayJitter
		i++
		s.At(pub, func() {
			arrivesOld := pub + cfg.DelayToOld
			arrivesNew := pub + cfg.DelayToNew + jitter

			atOld := arrivesOld < cfg.MoveAt // client still attached at B2
			var atNew bool
			if cfg.Protocol {
				// With the relocation protocol the new border broker
				// buffers from the moment the relocation subscription is
				// issued, and the junction diverts; effectively every
				// notification not seen at the old broker is delivered
				// via the new path or the replay.
				atNew = !atOld
				if arrivesOld >= cfg.MoveAt && arrivesOld <= resubAt+cfg.DelayToOld {
					// It was sitting in the old broker's virtual
					// counterpart and came back via the replay.
					res.OnceReplay++
					res.Published++
					return
				}
			} else {
				atNew = arrivesNew >= resubAt // naive: only after re-subscribe
			}

			res.Published++
			switch {
			case atOld && atNew:
				res.Duplicates++
			case atOld || atNew:
				res.OnceLive++
			default:
				res.Missed++
			}
		})
	}
	s.RunAll()
	return res
}
