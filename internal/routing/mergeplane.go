package routing

import (
	"slices"
	"sort"

	"repro/internal/filter"
)

// This file implements Merging as a real incremental plane (Section 2.2's
// merging-based routing), replacing the former batch fixpoint fallback.
//
// The key to incrementality is locality: instead of a global greedy
// fixpoint over all tracked filters (whose result can change arbitrarily
// when one input moves), every input filter is assigned to exactly one
// *merge group*, determined by the filter alone:
//
//   - its merge attribute — the first attribute (in the filter's canonical
//     order) carrying exactly one interval constraint, falling back to the
//     first with a finite-set/presence constraint;
//   - the rest of the filter, its *base*, identified by canonical ID.
//
// Filters sharing (attribute, base) agree everywhere except on one
// attribute, the precondition for a perfect merge, so the group's
// forwarded representation is the base combined with the canonical union
// of the members' constraints on the merge attribute. Filters with no
// mergeable attribute form singleton passthrough groups. A membership
// change only ever recomputes its own group — the rest of the plane is
// untouched — and unsubscribing out of a group recomputes the exact
// pre-merge representation of the remaining members (unmerge).
//
// Group emissions are refcounted globally — nothing rules out distinct
// groups producing byte-identical emissions, and the cover index must see
// each distinct filter exactly once — and fed through a private
// CoverIndex, so the forwarded set is the cover-minimal subset of the
// merged representations: exactly removeCovered(groupMerge(...)), the
// batch Merging.Reduce, maintained per-delta.

// mergeableOp reports whether a constraint can anchor a merge group:
// only the interval operators. Adjacent and overlapping ranges are the
// paper's merging material, union intervals are stable under membership
// churn, and their unions are always representable. Finite-set unions
// (EQ/In) are deliberately excluded: measured on the churn scenario they
// shrink tables slightly but re-emit a changed `in {...}` union on almost
// every relocation, costing more administrative traffic than plain
// covering saves. Negations and string patterns stay in the base and are
// handled by covering alone.
func mergeableOp(op filter.Op) bool {
	switch op {
	case filter.OpLT, filter.OpLE, filter.OpGT, filter.OpGE, filter.OpRange:
		return true
	default:
		return false
	}
}

// mergeAttr picks the filter's merge attribute: the first attribute (in
// canonical constraint order) carrying exactly one interval constraint.
// The choice is a deterministic function of the filter alone, which is
// what keeps group assignment stable under churn.
func mergeAttr(f filter.Filter) (string, bool) {
	n := f.Len()
	for i := 0; i < n; {
		c := f.At(i)
		j := i + 1
		for j < n && f.At(j).Attr == c.Attr {
			j++
		}
		if j-i == 1 && mergeableOp(c.Op) {
			return c.Attr, true
		}
		i = j
	}
	return "", false
}

// mergeGroupKey returns the filter's merge attribute (empty for
// passthrough filters) and its group key: merge attribute plus the
// canonical ID of the filter without it. Filters with equal keys agree on
// everything except the merge attribute.
func mergeGroupKey(f filter.Filter) (cattr, key string) {
	a, ok := mergeAttr(f)
	if !ok {
		return "", "p\x00" + f.ID()
	}
	return a, "m\x00" + a + "\x00" + f.Without(a).ID()
}

// mergeConstraintSet reduces a multiset of same-attribute constraints to
// the canonical unmergeable representation of their union: sort
// canonically, drop duplicates, and greedily merge the leftmost mergeable
// pair until none remains. The result is a deterministic function of the
// input set.
func mergeConstraintSet(cs []filter.Constraint) []filter.Constraint {
	out := slices.Clone(cs)
	for {
		slices.SortFunc(out, cmpConstraintIdent)
		out = slices.CompactFunc(out, func(a, b filter.Constraint) bool {
			return cmpConstraintIdent(a, b) == 0
		})
		merged := false
	scan:
		for i := 0; i < len(out); i++ {
			for j := i + 1; j < len(out); j++ {
				if m, ok := filter.MergeConstraints(out[i], out[j]); ok {
					out[i] = m
					out = slices.Delete(out, j, j+1)
					merged = true
					break scan
				}
			}
		}
		if !merged {
			return out
		}
	}
}

// groupEmit computes the forwarded representation of one merge group:
// each canonical union piece of the members' merge-attribute constraints,
// attached to the shared base. Members must be sorted by ID. A group that
// cannot represent its union (With rejecting a merged constraint — not
// reachable for the mergeable operator classes, kept as a safety net)
// falls back to emitting its members verbatim, which is always sound.
func groupEmit(cattr string, members []filter.Filter) []filter.Filter {
	if len(members) == 1 {
		return []filter.Filter{members[0]}
	}
	cs := make([]filter.Constraint, 0, len(members))
	for _, m := range members {
		on := m.ConstraintsOn(cattr)
		if len(on) != 1 {
			return slices.Clone(members)
		}
		cs = append(cs, on[0])
	}
	cs = mergeConstraintSet(cs)
	base := members[0].Without(cattr)
	out := make([]filter.Filter, 0, len(cs))
	for _, c := range cs {
		m, err := base.With(c)
		if err != nil {
			return slices.Clone(members)
		}
		out = append(out, m)
	}
	sortFiltersByID(out)
	return out
}

// groupMerge is the batch form of the merging plane: partition the
// (already deduplicated) filters into merge groups and emit each group's
// representation, in deterministic group-key order. Merging.Reduce is
// removeCovered of this; the incremental mergePlane maintains the same
// set per-delta.
func groupMerge(fs []filter.Filter) []filter.Filter {
	groups := make(map[string][]filter.Filter)
	cattrs := make(map[string]string)
	var keys []string
	for _, f := range fs {
		ca, key := mergeGroupKey(f)
		if _, ok := groups[key]; !ok {
			keys = append(keys, key)
			cattrs[key] = ca
		}
		groups[key] = append(groups[key], f)
	}
	sort.Strings(keys)
	var out []filter.Filter
	for _, k := range keys {
		members := groups[k]
		sortFiltersByID(members)
		out = append(out, groupEmit(cattrs[k], members)...)
	}
	return out
}

// mergeGroup is the live state of one merge group.
type mergeGroup struct {
	cattr   string
	members map[string]filter.Filter // distinct input ID -> filter
	emits   map[string]filter.Filter // current emission ID -> filter
	covered int                      // members whose ID is not emitted
}

// netEnt accumulates the net forward-set movement of one filter ID across
// the several cover-index operations a single plane delta can trigger: a
// retired emission's retraction can re-forward a filter a fresh emission
// then covers again, and the wire must only see the net effect.
type netEnt struct {
	n int
	f filter.Filter
}

func accumulate(net map[string]netEnt, d CoverDelta) {
	for _, f := range d.Forward {
		e := net[f.ID()]
		e.n++
		e.f = f
		net[f.ID()] = e
	}
	for _, f := range d.Retract {
		e := net[f.ID()]
		e.n--
		e.f = f
		net[f.ID()] = e
	}
}

func netDelta(net map[string]netEnt) CoverDelta {
	var d CoverDelta
	for _, e := range net {
		switch {
		case e.n > 0:
			d.Forward = append(d.Forward, e.f)
		case e.n < 0:
			d.Retract = append(d.Retract, e.f)
		}
	}
	sortFiltersByID(d.Forward)
	sortFiltersByID(d.Retract)
	return d
}

// mergePlane implements Merging incrementally: inputs are refcounted by
// canonical ID, distinct inputs live in merge groups, group emissions are
// refcounted globally and cover-minimized through a private CoverIndex.
// Every delta touches one group and the emissions it shares.
type mergePlane struct {
	refs    map[string]int           // input ID -> multiset refcount
	fs      map[string]filter.Filter // input ID -> filter
	keyOf   map[string]string        // input ID -> group key
	groups  map[string]*mergeGroup   // group key -> state
	emitRef map[string]int           // emission ID -> #groups emitting it
	idx     *CoverIndex              // cover-minimal set over emissions

	active   int    // groups currently suppressing >= 1 member
	covered  int    // members suppressed behind a merged emission
	unmerges uint64 // removals that re-expanded a merged emission
}

func newMergePlane() *mergePlane {
	return &mergePlane{
		refs:    make(map[string]int),
		fs:      make(map[string]filter.Filter),
		keyOf:   make(map[string]string),
		groups:  make(map[string]*mergeGroup),
		emitRef: make(map[string]int),
		idx:     NewCoverIndex(),
	}
}

func (p *mergePlane) add(f filter.Filter) (CoverDelta, bool) {
	id := f.ID()
	if p.refs[id]++; p.refs[id] > 1 {
		return CoverDelta{}, true // distinct input set unchanged
	}
	p.fs[id] = f
	cattr, key := mergeGroupKey(f)
	p.keyOf[id] = key
	g := p.groups[key]
	if g == nil {
		g = &mergeGroup{
			cattr:   cattr,
			members: make(map[string]filter.Filter, 1),
			emits:   make(map[string]filter.Filter, 1),
		}
		p.groups[key] = g
	}
	g.members[id] = f
	net := make(map[string]netEnt)
	p.refreshGroup(key, g, net)
	return netDelta(net), true
}

func (p *mergePlane) remove(f filter.Filter) (CoverDelta, bool) {
	id := f.ID()
	if p.refs[id] == 0 {
		return CoverDelta{}, true
	}
	if p.refs[id]--; p.refs[id] > 0 {
		return CoverDelta{}, true
	}
	delete(p.refs, id)
	delete(p.fs, id)
	key := p.keyOf[id]
	delete(p.keyOf, id)
	g := p.groups[key]
	delete(g.members, id)
	net := make(map[string]netEnt)
	if p.refreshGroup(key, g, net) > 0 {
		p.unmerges++ // narrower filters had to be re-forwarded
	}
	return netDelta(net), true
}

// refreshGroup recomputes one group's emissions after a membership change
// and routes the emission diff through the global emission refcounts and
// the cover index, accumulating the net forward-set movement in net. It
// returns the number of emission IDs new to the group (the unmerge signal
// on the remove path) and deletes the group when its last member left.
func (p *mergePlane) refreshGroup(key string, g *mergeGroup, net map[string]netEnt) int {
	newEmits := make(map[string]filter.Filter, len(g.emits))
	if len(g.members) > 0 {
		members := make([]filter.Filter, 0, len(g.members))
		for _, m := range g.members {
			members = append(members, m)
		}
		sortFiltersByID(members)
		for _, e := range groupEmit(g.cattr, members) {
			newEmits[e.ID()] = e
		}
	}
	var retired, fresh []filter.Filter
	for id, e := range g.emits {
		if _, ok := newEmits[id]; !ok {
			retired = append(retired, e)
		}
	}
	for id, e := range newEmits {
		if _, ok := g.emits[id]; !ok {
			fresh = append(fresh, e)
		}
	}
	sortFiltersByID(retired)
	sortFiltersByID(fresh)
	for _, e := range retired {
		id := e.ID()
		if p.emitRef[id]--; p.emitRef[id] == 0 {
			delete(p.emitRef, id)
			accumulate(net, p.idx.Remove(e))
		}
	}
	for _, e := range fresh {
		id := e.ID()
		if p.emitRef[id]++; p.emitRef[id] == 1 {
			accumulate(net, p.idx.Add(e))
		}
	}
	cov := 0
	for id := range g.members {
		if _, ok := newEmits[id]; !ok {
			cov++
		}
	}
	p.covered += cov - g.covered
	if g.covered > 0 {
		p.active--
	}
	if cov > 0 {
		p.active++
	}
	g.covered = cov
	g.emits = newEmits
	if len(g.members) == 0 {
		delete(p.groups, key)
	}
	return len(fresh)
}

func (p *mergePlane) reset(inputs []filter.Filter) {
	checks, saved := p.idx.checks, p.idx.saved
	unmerges := p.unmerges
	*p = *newMergePlane()
	p.idx.checks, p.idx.saved = checks, saved // counters survive reseeds
	p.unmerges = unmerges
	for _, f := range inputs {
		p.add(f)
	}
}

func (p *mergePlane) desired() []filter.Filter { return p.idx.Forwarded() }
func (p *mergePlane) size() int                { return len(p.fs) }
func (p *mergePlane) stats() (uint64, uint64)  { return p.idx.checks, p.idx.saved }

// mergeStats reports the plane's merge shape: groups currently
// suppressing members, members so suppressed, and cumulative unmerges.
func (p *mergePlane) mergeStats() (active, covered int, unmerges uint64) {
	return p.active, p.covered, p.unmerges
}
