package routing

import (
	"math"
	"strings"

	"repro/internal/filter"
	"repro/internal/message"
)

// Content hashing and identity for the SoA match index.
//
// The old index identified rows by rendered key strings (Filter.ID() +
// Hop.String() + client/sub), which costs one long heap string per row —
// unaffordable at 10⁶ entries. The SoA index instead identifies rows by a
// 64-bit content hash plus structural equality, with two distinct value
// equivalences:
//
//   - identity equivalence (duplicate detection, Remove lookup) follows the
//     Value.Key() string semantics: every NaN is one identity ("NaN"),
//     while -0.0 and +0.0 are distinct ("-0" vs "0").
//   - match equivalence (equality posting buckets) follows Value.Equal:
//     -0.0 == +0.0 share a bucket, NaN equals nothing and is never posted.
//
// Both are expressed as a (kind, bits, str) triple so they can key the
// open-addressed tables below without string rendering.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// canonicalNaNBits is the single bit pattern all NaNs normalize to under
// identity equivalence (mirrors Value.Key rendering every NaN as "NaN").
var canonicalNaNBits = math.Float64bits(math.NaN())

func hashStr(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

func hashU64(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime64
		x >>= 8
	}
	return h
}

func hashU8(h uint64, b byte) uint64 {
	h ^= uint64(b)
	h *= fnvPrime64
	return h
}

// identPayload maps a value to its identity-equivalence payload.
func identPayload(v message.Value) (bits uint64, str string) {
	switch v.Kind() {
	case message.KindString:
		return 0, v.Str()
	case message.KindInt:
		return uint64(v.IntVal()), ""
	case message.KindFloat:
		f := v.FloatVal()
		if f != f {
			return canonicalNaNBits, ""
		}
		return math.Float64bits(f), ""
	case message.KindBool:
		if v.BoolVal() {
			return 1, ""
		}
		return 0, ""
	}
	return 0, ""
}

// eqPayload maps a value to its match-equivalence payload. NaN values must
// not be posted at all (callers guard with isNaNValue).
func eqPayload(v message.Value) (bits uint64, str string) {
	switch v.Kind() {
	case message.KindString:
		return 0, v.Str()
	case message.KindInt:
		return uint64(v.IntVal()), ""
	case message.KindFloat:
		f := v.FloatVal()
		if f == 0 {
			f = 0 // collapse -0.0 into +0.0: Value.Equal treats them equal
		}
		return math.Float64bits(f), ""
	case message.KindBool:
		if v.BoolVal() {
			return 1, ""
		}
		return 0, ""
	}
	return 0, ""
}

func hashValueIdent(h uint64, v message.Value) uint64 {
	bits, str := identPayload(v)
	h = hashU8(h, byte(v.Kind()))
	h = hashU64(h, bits)
	return hashStr(h, str)
}

func identValueEqual(a, b message.Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	ab, as := identPayload(a)
	bb, bs := identPayload(b)
	return ab == bb && as == bs
}

// cmpValueIdent is a deterministic total order consistent with identity
// equivalence (used for canonical row ordering, not numeric semantics).
func cmpValueIdent(a, b message.Value) int {
	if ak, bk := a.Kind(), b.Kind(); ak != bk {
		if ak < bk {
			return -1
		}
		return 1
	}
	ab, as := identPayload(a)
	bb, bs := identPayload(b)
	if ab != bb {
		if ab < bb {
			return -1
		}
		return 1
	}
	return strings.Compare(as, bs)
}

func hashConstraintIdent(h uint64, c filter.Constraint) uint64 {
	h = hashStr(h, c.Attr)
	h = hashU8(h, byte(c.Op))
	h = hashValueIdent(h, c.Value)
	h = hashValueIdent(h, c.Lo)
	h = hashValueIdent(h, c.Hi)
	h = hashU64(h, uint64(len(c.Values)))
	for _, v := range c.Values {
		h = hashValueIdent(h, v)
	}
	return h
}

func identConstraintEqual(a, b filter.Constraint) bool {
	if a.Attr != b.Attr || a.Op != b.Op || len(a.Values) != len(b.Values) {
		return false
	}
	if !identValueEqual(a.Value, b.Value) || !identValueEqual(a.Lo, b.Lo) || !identValueEqual(a.Hi, b.Hi) {
		return false
	}
	for i := range a.Values {
		if !identValueEqual(a.Values[i], b.Values[i]) {
			return false
		}
	}
	return true
}

func cmpConstraintIdent(a, b filter.Constraint) int {
	if c := strings.Compare(a.Attr, b.Attr); c != 0 {
		return c
	}
	if a.Op != b.Op {
		if a.Op < b.Op {
			return -1
		}
		return 1
	}
	if c := cmpValueIdent(a.Value, b.Value); c != 0 {
		return c
	}
	if c := cmpValueIdent(a.Lo, b.Lo); c != 0 {
		return c
	}
	if c := cmpValueIdent(a.Hi, b.Hi); c != 0 {
		return c
	}
	if la, lb := len(a.Values), len(b.Values); la != lb {
		if la < lb {
			return -1
		}
		return 1
	}
	for i := range a.Values {
		if c := cmpValueIdent(a.Values[i], b.Values[i]); c != 0 {
			return c
		}
	}
	return 0
}

func hashFilterIdent(h uint64, f filter.Filter) uint64 {
	n := f.Len()
	h = hashU64(h, uint64(n))
	for i := 0; i < n; i++ {
		h = hashConstraintIdent(h, f.At(i))
	}
	return h
}

func identFilterEqual(a, b filter.Filter) bool {
	n := a.Len()
	if n != b.Len() {
		return false
	}
	for i := 0; i < n; i++ {
		if !identConstraintEqual(a.At(i), b.At(i)) {
			return false
		}
	}
	return true
}

func cmpFilterIdent(a, b filter.Filter) int {
	na, nb := a.Len(), b.Len()
	n := min(na, nb)
	for i := 0; i < n; i++ {
		if c := cmpConstraintIdent(a.At(i), b.At(i)); c != 0 {
			return c
		}
	}
	if na != nb {
		if na < nb {
			return -1
		}
		return 1
	}
	return 0
}

// entryIdentHash hashes an entry's full identity (filter, hop, owner); it
// is a pure function of content, so equal entries hash equal across
// processes and rebuilds.
func entryIdentHash(e Entry) uint64 {
	h := hashFilterIdent(fnvOffset64, e.Filter)
	h = hashStr(h, string(e.Hop.Broker))
	h = hashU8(h, '#')
	h = hashStr(h, string(e.Hop.Client))
	h = hashU8(h, '#')
	h = hashStr(h, string(e.Client))
	h = hashU8(h, '/')
	return hashStr(h, string(e.SubID))
}

// cmpEntryContent is the canonical tie-break order for rows whose hashes
// collide: filter, then hop, then owner. Combined with the hash it yields
// the deterministic row order every matching and enumeration API sorts by;
// the *Linear reference implementations use the same comparator so parity
// tests can compare results structurally.
func cmpEntryContent(a, b Entry) int {
	if c := cmpFilterIdent(a.Filter, b.Filter); c != 0 {
		return c
	}
	if c := strings.Compare(string(a.Hop.Broker), string(b.Hop.Broker)); c != 0 {
		return c
	}
	if c := strings.Compare(string(a.Hop.Client), string(b.Hop.Client)); c != 0 {
		return c
	}
	if c := strings.Compare(string(a.Client), string(b.Client)); c != 0 {
		return c
	}
	return strings.Compare(string(a.SubID), string(b.SubID))
}

// cmpEntryCanonical orders entries by (identity hash, content) — the
// canonical deterministic order of every Table/Snapshot enumeration.
func cmpEntryCanonical(a, b Entry) int {
	ha, hb := entryIdentHash(a), entryIdentHash(b)
	if ha != hb {
		if ha < hb {
			return -1
		}
		return 1
	}
	return cmpEntryContent(a, b)
}

// ---------------------------------------------------------------------------
// slotGen: a generation-stamped row reference.
// ---------------------------------------------------------------------------

// slotGen references a row slot at a specific generation. Posting lists
// store slotGens and never remove them eagerly: freeing a row bumps its
// generation, so stale postings fail the gen check at probe time and are
// physically dropped by the next amortized compaction. (The 32-bit
// generation wraps after 2³² reuses of one slot — beyond any realistic
// churn between compactions.)
type slotGen struct {
	slot int32
	gen  uint32
}

// ---------------------------------------------------------------------------
// valTable: open-addressed value → posting-chain table.
// ---------------------------------------------------------------------------

// valTable buckets postings by a (kind, bits, str) value key: equality
// postings keyed by match-equivalent operand, and prefix postings keyed by
// the prefix string. The first posting is stored inline in the bucket (the
// common case is one subscription per distinct value); further postings
// chain through a node arena. Buckets are only reclaimed by rehash-compact,
// triggered when lazily-deleted postings outnumber live ones.
type valTable struct {
	slots pvec[vtSlot]
	arena pvec[vtNode]
	used  int32 // occupied buckets
	live  int32 // live postings
	dead  int32 // postings invalidated by row-generation bumps
}

// vtSlot is one bucket: 40 bytes, the dominant per-distinct-value cost of
// the index at scale. The key hash is not stored — lookups recompute it
// once per probe anyway, occupied slots compare the key directly, and
// rehash re-derives it — and occupancy is encoded in the kind (a real key
// always has a valid value kind, so KindInvalid marks an empty bucket).
type vtSlot struct {
	bits  uint64
	str   string
	first slotGen
	more  int32        // chain head into arena; -1 terminates
	kind  message.Kind // KindInvalid: empty bucket
}

type vtNode struct {
	sg   slotGen
	next int32
}

func hashValKey(kind message.Kind, bits uint64, str string) uint64 {
	h := hashU8(fnvOffset64, byte(kind))
	h = hashU64(h, bits)
	return hashStr(h, str)
}

func (t *valTable) cap() int32 { return int32(t.slots.len()) }

// lookup returns the bucket index holding the key, or -1.
func (t *valTable) lookup(hash uint64, kind message.Kind, bits uint64, str string) int32 {
	c := t.cap()
	if c == 0 {
		return -1
	}
	mask := c - 1
	for i := int32(hash) & mask; ; i = (i + 1) & mask {
		sl := t.slots.at(i)
		if sl.kind == message.KindInvalid {
			return -1
		}
		if sl.kind == kind && sl.bits == bits && sl.str == str {
			return i
		}
	}
}

func (t *valTable) add(x *matchIndex, kind message.Kind, bits uint64, str string, sg slotGen) {
	if t.cap() == 0 {
		t.rehash(x, 8)
	} else if (t.used+1)*4 > t.cap()*3 {
		t.rehash(x, t.cap()*2)
	}
	hash := hashValKey(kind, bits, str)
	mask := t.cap() - 1
	for i := int32(hash) & mask; ; i = (i + 1) & mask {
		sl := t.slots.at(i)
		if sl.kind == message.KindInvalid {
			w := t.slots.w(i, x.epoch)
			*w = vtSlot{bits: bits, str: str, first: sg, more: -1, kind: kind}
			t.used++
			break
		}
		if sl.kind == kind && sl.bits == bits && sl.str == str {
			ni := t.arena.grow(x.epoch)
			*t.arena.w(ni, x.epoch) = vtNode{sg: sg, next: sl.more}
			t.slots.w(i, x.epoch).more = ni
			break
		}
	}
	t.live++
}

// removeLazy records a posting deletion; the row-generation bump does the
// real invalidation. Compaction runs when dead postings dominate.
func (t *valTable) removeLazy(x *matchIndex) {
	t.live--
	t.dead++
	if t.dead > t.live && t.dead > 32 {
		t.compact(x)
	}
}

func (t *valTable) compact(x *matchIndex) {
	c := int32(8)
	for c*3 < t.live*4 {
		c *= 2
	}
	t.rehash(x, c)
}

// rehash rebuilds the table at the given power-of-two capacity, dropping
// generation-stale postings and the buckets they leave empty.
func (t *valTable) rehash(x *matchIndex, newCap int32) {
	old := *t
	t.slots = pvec[vtSlot]{}
	t.arena = pvec[vtNode]{}
	t.used, t.live, t.dead = 0, 0, 0
	for i := int32(0); i < newCap; i++ {
		t.slots.grow(x.epoch)
	}
	for i := int32(0); i < old.cap(); i++ {
		sl := old.slots.at(i)
		if sl.kind == message.KindInvalid {
			continue
		}
		if x.rowLive(sl.first) {
			t.add(x, sl.kind, sl.bits, sl.str, sl.first)
		}
		for ni := sl.more; ni >= 0; {
			nd := old.arena.at(ni)
			if x.rowLive(nd.sg) {
				t.add(x, sl.kind, sl.bits, sl.str, nd.sg)
			}
			ni = nd.next
		}
	}
}

// probe bumps every live posting under the key.
func (t *valTable) probe(kind message.Kind, bits uint64, str string, s *scratch, x *matchIndex) {
	i := t.lookup(hashValKey(kind, bits, str), kind, bits, str)
	if i < 0 {
		return
	}
	sl := t.slots.at(i)
	s.bump(sl.first, x)
	for ni := sl.more; ni >= 0; {
		nd := t.arena.at(ni)
		s.bump(nd.sg, x)
		ni = nd.next
	}
}

// ---------------------------------------------------------------------------
// prefixTable: per-length prefix lookup.
// ---------------------------------------------------------------------------

// prefixTable indexes string-prefix constraints: postings are bucketed by
// the exact prefix string in a valTable, and a sorted directory of the
// distinct prefix lengths drives the probe — for each registered length L ≤
// len(v), one hash lookup of v[:L]. Probe cost is O(distinct lengths), not
// O(postings sharing a first byte) as in the old per-byte bucket scan.
type prefixTable struct {
	tab  valTable
	lens cowslice[prefixLen]
}

type prefixLen struct {
	n     int32
	count int32 // live prefixes of this length
}

func (p *prefixTable) add(x *matchIndex, prefix string, sg slotGen) {
	p.tab.add(x, message.KindString, uint64(len(prefix)), prefix, sg)
	ls := p.lens.own(x.epoch)
	n := int32(len(prefix))
	i := 0
	for i < len(*ls) && (*ls)[i].n < n {
		i++
	}
	if i < len(*ls) && (*ls)[i].n == n {
		(*ls)[i].count++
		return
	}
	*ls = append(*ls, prefixLen{})
	copy((*ls)[i+1:], (*ls)[i:])
	(*ls)[i] = prefixLen{n: n, count: 1}
}

func (p *prefixTable) remove(x *matchIndex, prefix string) {
	p.tab.removeLazy(x)
	ls := p.lens.own(x.epoch)
	n := int32(len(prefix))
	for i := range *ls {
		if (*ls)[i].n == n {
			(*ls)[i].count--
			if (*ls)[i].count == 0 {
				*ls = append((*ls)[:i], (*ls)[i+1:]...)
			}
			return
		}
	}
}

func (p *prefixTable) probe(v string, s *scratch, x *matchIndex) {
	for _, pl := range p.lens.s {
		if int(pl.n) > len(v) {
			return // lengths sorted ascending: no longer prefix can match
		}
		pre := v[:pl.n]
		p.tab.probe(message.KindString, uint64(pl.n), pre, s, x)
	}
}

// ---------------------------------------------------------------------------
// identTable: entry-identity hash table (mutation plane only).
// ---------------------------------------------------------------------------

// identTable maps entry identity hashes to row slots for duplicate
// detection and exact Remove. It lives on the mutation plane: snapshots
// never read it, so it is mutated in place (no copy-on-write) under the
// table lock.
//
// A bucket is just the row slot — 4 bytes, not a (hash, slot) pair. The
// identity hash already lives in the row itself, so lookups read it
// through the slot (every slot in the table references a live row:
// removeSlot unlinks the table entry before scrubbing the row) and grow
// re-derives it the same way. At two buckets per row this halves and then
// halves again what a 10⁶-entry table spends on duplicate detection.
type identTable struct {
	slots []int32 // row slot; idEmpty / idTomb are sentinels
	used  int     // live + tombstones
	live  int
}

const (
	idEmpty int32 = -1
	idTomb  int32 = -2
)

// lookup finds the row slot of the entry with the given identity hash for
// which eq returns true, or -1. eq must verify the hash along with the
// content (the table no longer pre-filters collisions).
func (t *identTable) lookup(hash uint64, eq func(slot int32) bool) int32 {
	if len(t.slots) == 0 {
		return -1
	}
	mask := len(t.slots) - 1
	for i := int(hash) & mask; ; i = (i + 1) & mask {
		switch sl := t.slots[i]; {
		case sl == idEmpty:
			return -1
		case sl == idTomb:
		case eq(sl):
			return sl
		}
	}
}

func (t *identTable) insert(x *matchIndex, hash uint64, slot int32) {
	if len(t.slots) == 0 || (t.used+1)*4 > len(t.slots)*3 {
		t.grow(x)
	}
	mask := len(t.slots) - 1
	for i := int(hash) & mask; ; i = (i + 1) & mask {
		if t.slots[i] == idEmpty || t.slots[i] == idTomb {
			t.slots[i] = slot
			t.used++
			t.live++
			return
		}
	}
}

func (t *identTable) remove(hash uint64, slot int32) {
	if len(t.slots) == 0 {
		return
	}
	mask := len(t.slots) - 1
	for i := int(hash) & mask; ; i = (i + 1) & mask {
		sl := t.slots[i]
		if sl == idEmpty {
			return
		}
		if sl == slot {
			t.slots[i] = idTomb
			t.live--
			return
		}
	}
}

func (t *identTable) grow(x *matchIndex) {
	n := 8
	for n*3 < (t.live+1)*4 {
		n *= 2
	}
	old := t.slots
	t.slots = make([]int32, n)
	for i := range t.slots {
		t.slots[i] = idEmpty
	}
	t.used, t.live = 0, 0
	for _, sl := range old {
		if sl >= 0 {
			t.insert(x, x.rows.at(sl).hash, sl)
		}
	}
}
