package routing

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/filter"
	"repro/internal/message"
	"repro/internal/wire"
)

// ---------------------------------------------------------------------------
// Deterministic per-operator coverage: every operator class must route
// through its posting-list type and agree with Filter.Matches.
// ---------------------------------------------------------------------------

func TestIndexOperatorClasses(t *testing.T) {
	cases := []struct {
		name   string
		c      filter.Constraint
		match  message.Value
		reject message.Value
	}{
		{"eq", filter.EQ("a", message.Int(3)), message.Int(3), message.Int(4)},
		{"eq-kind", filter.EQ("a", message.Int(3)), message.Int(3), message.Float(3)},
		{"ne", filter.NE("a", message.Int(3)), message.Int(4), message.Int(3)},
		{"lt", filter.LT("a", message.Int(3)), message.Int(2), message.Int(3)},
		{"le", filter.LE("a", message.Int(3)), message.Int(3), message.Int(4)},
		{"gt", filter.GT("a", message.Int(3)), message.Int(4), message.Int(3)},
		{"ge", filter.GE("a", message.Int(3)), message.Int(3), message.Int(2)},
		{"gt-string", filter.GT("a", message.String("m")), message.String("n"), message.String("a")},
		{"range", filter.Range("a", message.Int(2), message.Int(5)), message.Int(5), message.Int(6)},
		{"range-float", filter.Range("a", message.Float(0.5), message.Float(1.5)), message.Float(1), message.Int(1)},
		{"prefix", filter.Prefix("a", "par"), message.String("parking"), message.String("pizza")},
		{"prefix-empty", filter.Prefix("a", ""), message.String("anything"), message.Int(1)},
		{"suffix", filter.Suffix("a", "ing"), message.String("parking"), message.String("parked")},
		{"contains", filter.Contains("a", "rki"), message.String("parking"), message.String("parquet")},
		{"in", filter.In("a", message.Int(1), message.Int(3)), message.Int(3), message.Int(2)},
		{"exists", filter.Exists("a"), message.Bool(false), message.Value{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tbl := NewTable()
			tbl.Add(Entry{Filter: filter.MustNew(tc.c), Hop: wire.BrokerHop("up")})
			match := message.New(map[string]message.Value{"a": tc.match})
			if got := tbl.MatchingHops(match, wire.Hop{}); len(got) != 1 {
				t.Errorf("value %s should match %s", tc.match, tc.c)
			}
			reject := message.New(map[string]message.Value{"a": tc.reject})
			if got := tbl.MatchingHops(reject, wire.Hop{}); len(got) != 0 {
				t.Errorf("value %s should not match %s", tc.reject, tc.c)
			}
			// Absent attribute never matches a constrained filter.
			if got := tbl.MatchingHops(message.New(nil), wire.Hop{}); len(got) != 0 {
				t.Errorf("absent attribute should not match %s", tc.c)
			}
		})
	}
}

func TestIndexConjunctionCounting(t *testing.T) {
	tbl := NewTable()
	// Two constraints on the same attribute plus one on another: the count
	// must reach 3, not 2, before the entry matches.
	f := filter.MustNew(
		filter.GE("p", message.Int(0)),
		filter.LE("p", message.Int(10)),
		filter.EQ("svc", message.String("parking")),
	)
	tbl.Add(Entry{Filter: f, Hop: wire.BrokerHop("up")})

	full := message.New(map[string]message.Value{
		"p": message.Int(5), "svc": message.String("parking"),
	})
	if got := tbl.MatchingHops(full, wire.Hop{}); len(got) != 1 {
		t.Error("all constraints satisfied: should match")
	}
	partial := message.New(map[string]message.Value{"p": message.Int(5)})
	if got := tbl.MatchingHops(partial, wire.Hop{}); len(got) != 0 {
		t.Error("one attribute missing: must not match")
	}
	outOfRange := message.New(map[string]message.Value{
		"p": message.Int(11), "svc": message.String("parking"),
	})
	if got := tbl.MatchingHops(outOfRange, wire.Hop{}); len(got) != 0 {
		t.Error("one constraint failing: must not match")
	}
}

func TestIndexMatchAllEntries(t *testing.T) {
	tbl := NewTable()
	tbl.Add(Entry{Filter: filter.MatchAll(), Hop: wire.BrokerHop("flood")})
	tbl.Add(Entry{Filter: filter.MustNew(filter.EQ("k", message.Int(1))), Hop: wire.BrokerHop("sel")})
	n := message.New(map[string]message.Value{"other": message.Int(9)})
	hops := tbl.MatchingHops(n, wire.Hop{})
	if len(hops) != 1 || hops[0].Broker != "flood" {
		t.Errorf("MatchingHops = %v, want just flood", hops)
	}
	if st := tbl.IndexStats(); st.MatchAll != 1 || st.Entries != 2 {
		t.Errorf("IndexStats = %+v", st)
	}
}

func TestIndexStatsDrainToZero(t *testing.T) {
	tbl := NewTable()
	es := []Entry{
		{Filter: filter.MustNew(filter.EQ("a", message.Int(1))), Hop: wire.BrokerHop("b1")},
		{Filter: filter.MustNew(filter.Range("b", message.Int(0), message.Int(9)), filter.Prefix("c", "x")), Hop: wire.BrokerHop("b2")},
		{Filter: filter.MatchAll(), Hop: wire.ClientHop("c1")},
		{Filter: filter.MustNew(filter.In("d", message.Int(1), message.Int(2)), filter.Contains("e", "q")), Hop: wire.BrokerHop("b3"), Client: "C", SubID: "s"},
	}
	for _, e := range es {
		if !tbl.Add(e) {
			t.Fatal("Add failed")
		}
	}
	st := tbl.IndexStats()
	if st.Entries != 4 || st.Postings != 5 || st.MatchAll != 1 {
		t.Errorf("IndexStats after adds = %+v", st)
	}
	tbl.RemoveClient("C", "s")
	tbl.RemoveHop(wire.ClientHop("c1"))
	for _, e := range es[:2] {
		tbl.Remove(e)
	}
	st = tbl.IndexStats()
	if st.Entries != 0 || st.Postings != 0 || st.Attrs != 0 || st.MatchAll != 0 {
		t.Errorf("IndexStats after drain = %+v, want all zero", st)
	}
}

// TestIndexDuplicateInMembers guards against counting one in-constraint
// twice: wire-decoded filters bypass the In constructor's dedup, so the
// set may carry duplicate members. With a duplicate, a naive per-member
// posting would bump the entry to its total without the second attribute
// matching at all.
func TestIndexDuplicateInMembers(t *testing.T) {
	dupIn := filter.Constraint{
		Attr:   "a",
		Op:     filter.OpIn,
		Values: []message.Value{message.Int(1), message.Int(1)},
	}
	f := filter.MustNew(dupIn, filter.EQ("b", message.String("y")))
	tbl := NewTable()
	tbl.Add(Entry{Filter: f, Hop: wire.BrokerHop("up")})

	half := message.New(map[string]message.Value{"a": message.Int(1)})
	if got := tbl.MatchingHops(half, wire.Hop{}); len(got) != 0 {
		t.Errorf("duplicate in-member double-counted: MatchingHops = %v", got)
	}
	full := message.New(map[string]message.Value{
		"a": message.Int(1), "b": message.String("y"),
	})
	if got := tbl.MatchingHops(full, wire.Hop{}); len(got) != 1 {
		t.Errorf("fully matching notification: MatchingHops = %v", got)
	}
	if !tbl.Remove(Entry{Filter: f, Hop: wire.BrokerHop("up")}) {
		t.Fatal("Remove failed")
	}
	if st := tbl.IndexStats(); st.Attrs != 0 || st.Postings != 0 {
		t.Errorf("IndexStats after remove = %+v", st)
	}
}

// TestIndexNaNOperands: NaN never equals anything (so eq postings on NaN
// would be dead weight and, because NaN != NaN as a map key, unremovable),
// and Value.Compare treats NaN as equal to everything (breaking interval
// order). The index must both agree with the linear scan and shrink back
// to zero after add/remove churn.
func TestIndexNaNOperands(t *testing.T) {
	nan := message.Float(math.NaN())
	entries := []Entry{
		{Filter: filter.MustNew(filter.EQ("a", nan)), Hop: wire.BrokerHop("b1")},
		{Filter: filter.MustNew(filter.Constraint{Attr: "a", Op: filter.OpIn,
			Values: []message.Value{nan, message.Float(1)}}), Hop: wire.BrokerHop("b2")},
		{Filter: filter.MustNew(filter.GE("a", nan)), Hop: wire.BrokerHop("b3")},
		{Filter: filter.MustNew(filter.Range("a", nan, nan)), Hop: wire.BrokerHop("b4")},
		{Filter: filter.MustNew(filter.NE("a", nan)), Hop: wire.BrokerHop("b5")},
	}
	tbl := NewTable()
	for cycle := 0; cycle < 3; cycle++ {
		for _, e := range entries {
			if !tbl.Add(e) {
				t.Fatal("Add failed")
			}
		}
		for _, v := range []message.Value{
			message.Float(1), message.Float(math.NaN()), message.Int(1), message.Float(0),
		} {
			n := message.New(map[string]message.Value{"a": v})
			got := tbl.MatchingHops(n, wire.Hop{})
			want := tbl.MatchingHopsLinear(n, wire.Hop{})
			if !reflect.DeepEqual(got, want) {
				t.Errorf("cycle %d, a=%s: index %v, linear %v", cycle, v, got, want)
			}
		}
		for _, e := range entries {
			if !tbl.Remove(e) {
				t.Fatal("Remove failed")
			}
		}
		if st := tbl.IndexStats(); st.Entries != 0 || st.Attrs != 0 || st.Postings != 0 {
			t.Fatalf("cycle %d: index leaked: %+v", cycle, st)
		}
	}
}

// ---------------------------------------------------------------------------
// Property-based parity: under randomized filters, notifications, and
// add/remove interleavings, the index must return byte-identical results to
// the linear-scan reference implementation.
// ---------------------------------------------------------------------------

var propAttrs = []string{"a", "b", "c", "d", "e"}

func randValue(r *rand.Rand) message.Value {
	switch r.Intn(4) {
	case 0:
		return message.String([]string{"", "x", "xy", "yz", "park", "parking", "pizza"}[r.Intn(7)])
	case 1:
		return message.Int(int64(r.Intn(15) - 2))
	case 2:
		return message.Float(float64(r.Intn(20))/4 - 1)
	default:
		return message.Bool(r.Intn(2) == 0)
	}
}

// randOrderable avoids bools, which Validate rejects for ordered operators.
func randOrderable(r *rand.Rand) message.Value {
	switch r.Intn(3) {
	case 0:
		return message.String([]string{"", "x", "xy", "park", "pizza"}[r.Intn(5)])
	case 1:
		return message.Int(int64(r.Intn(15) - 2))
	default:
		return message.Float(float64(r.Intn(20))/4 - 1)
	}
}

func randConstraint(r *rand.Rand) filter.Constraint {
	attr := propAttrs[r.Intn(len(propAttrs))]
	switch r.Intn(10) {
	case 0:
		return filter.EQ(attr, randValue(r))
	case 1:
		return filter.NE(attr, randValue(r))
	case 2:
		switch r.Intn(4) {
		case 0:
			return filter.LT(attr, randOrderable(r))
		case 1:
			return filter.LE(attr, randOrderable(r))
		case 2:
			return filter.GT(attr, randOrderable(r))
		default:
			return filter.GE(attr, randOrderable(r))
		}
	case 3:
		lo := message.Int(int64(r.Intn(10) - 2))
		hi := message.Int(lo.IntVal() + int64(r.Intn(8)))
		return filter.Range(attr, lo, hi)
	case 4:
		return filter.Prefix(attr, []string{"", "x", "p", "par", "pi"}[r.Intn(5)])
	case 5:
		return filter.Suffix(attr, []string{"y", "ing", "za"}[r.Intn(3)])
	case 6:
		return filter.Contains(attr, []string{"x", "ar", "zz"}[r.Intn(3)])
	case 7:
		vs := make([]message.Value, 1+r.Intn(3))
		for i := range vs {
			vs[i] = randValue(r)
		}
		return filter.In(attr, vs...)
	case 8:
		return filter.Exists(attr)
	default:
		return filter.EQ(attr, randValue(r))
	}
}

func randFilter(r *rand.Rand) filter.Filter {
	nc := r.Intn(4) // 0 => match-all
	for {
		cs := make([]filter.Constraint, nc)
		for i := range cs {
			cs[i] = randConstraint(r)
		}
		f, err := filter.New(cs...)
		if err == nil {
			return f
		}
	}
}

func randHop(r *rand.Rand) wire.Hop {
	if r.Intn(3) == 0 {
		return wire.ClientHop(wire.ClientID(fmt.Sprintf("c%d", r.Intn(3))))
	}
	return wire.BrokerHop(wire.BrokerID(fmt.Sprintf("b%d", r.Intn(4))))
}

func randEntry(r *rand.Rand) Entry {
	e := Entry{Filter: randFilter(r), Hop: randHop(r)}
	if r.Intn(2) == 0 {
		e.Client = wire.ClientID(fmt.Sprintf("c%d", r.Intn(3)))
		e.SubID = wire.SubID(fmt.Sprintf("s%d", r.Intn(3)))
	}
	return e
}

func randNotification(r *rand.Rand) message.Notification {
	attrs := make(map[string]message.Value)
	for i, na := 0, r.Intn(5); i < na; i++ {
		attrs[propAttrs[r.Intn(len(propAttrs))]] = randValue(r)
	}
	return message.New(attrs)
}

func checkParity(t *testing.T, tbl *Table, r *rand.Rand, step int) {
	t.Helper()
	for i := 0; i < 3; i++ {
		n := randNotification(r)
		from := randHop(r)
		if i == 0 {
			from = wire.Hop{} // also exercise the no-origin case
		}
		gotHops := tbl.MatchingHops(n, from)
		wantHops := tbl.MatchingHopsLinear(n, from)
		if !reflect.DeepEqual(gotHops, wantHops) {
			t.Fatalf("step %d: MatchingHops(%s, %s)\nindex:  %v\nlinear: %v",
				step, n, from, gotHops, wantHops)
		}
		gotEs := tbl.MatchingEntries(n, from)
		wantEs := tbl.MatchingEntriesLinear(n, from)
		if !reflect.DeepEqual(gotEs, wantEs) {
			t.Fatalf("step %d: MatchingEntries(%s, %s)\nindex:  %v\nlinear: %v",
				step, n, from, gotEs, wantEs)
		}
	}
}

func TestIndexParityProperty(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(seed))
			tbl := NewTable()
			var live []Entry
			for step := 0; step < 250; step++ {
				switch op := r.Intn(10); {
				case op < 6: // add
					e := randEntry(r)
					if tbl.Add(e) {
						live = append(live, e)
					}
				case op < 8 && len(live) > 0: // remove one entry
					i := r.Intn(len(live))
					if !tbl.Remove(live[i]) {
						t.Fatalf("step %d: live entry not removable", step)
					}
					live = append(live[:i], live[i+1:]...)
				case op == 8 && len(live) > 0: // remove a client subscription
					e := live[r.Intn(len(live))]
					tbl.RemoveClient(e.Client, e.SubID)
					kept := live[:0]
					for _, le := range live {
						if le.Client != e.Client || le.SubID != e.SubID {
							kept = append(kept, le)
						}
					}
					live = kept
				case len(live) > 0: // remove a hop
					h := live[r.Intn(len(live))].Hop
					tbl.RemoveHop(h)
					kept := live[:0]
					for _, le := range live {
						if le.Hop != h {
							kept = append(kept, le)
						}
					}
					live = kept
				}
				if tbl.Len() != len(live) {
					t.Fatalf("step %d: table has %d entries, shadow %d", step, tbl.Len(), len(live))
				}
				checkParity(t, tbl, r, step)
			}
			// Drain completely: the index must shrink back to nothing.
			for _, e := range live {
				tbl.Remove(e)
			}
			if st := tbl.IndexStats(); st.Entries != 0 || st.Postings != 0 || st.Attrs != 0 {
				t.Errorf("after drain IndexStats = %+v", st)
			}
		})
	}
}

// TestIndexConcurrentMatch exercises the pooled scratch state under
// concurrent matching and table mutation (meaningful under -race).
func TestIndexConcurrentMatch(t *testing.T) {
	tbl := NewTable()
	r := rand.New(rand.NewSource(42))
	var live []Entry
	for i := 0; i < 64; i++ {
		e := randEntry(r)
		if tbl.Add(e) {
			live = append(live, e)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				n := randNotification(rr)
				tbl.MatchingHops(n, wire.Hop{})
				tbl.MatchingEntries(n, randHop(rr))
			}
		}(int64(g))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rr := rand.New(rand.NewSource(99))
		for i := 0; i < 200; i++ {
			e := randEntry(rr)
			tbl.Add(e)
			if rr.Intn(2) == 0 {
				tbl.Remove(e)
			}
		}
	}()
	wg.Wait()
}
