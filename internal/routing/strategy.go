package routing

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/filter"
	"repro/internal/wire"
)

// Strategy selects the subscription-forwarding behavior of a broker
// (Section 2.2).
type Strategy uint8

// Routing strategies, in increasing order of routing-table optimization.
const (
	// Flooding forwards every notification on every link; no subscription
	// state is propagated at all.
	Flooding Strategy = iota + 1
	// Simple forwards every subscription on every other link; tables grow
	// with the number of subscriptions.
	Simple
	// Identity suppresses forwarding of subscriptions identical to one
	// already forwarded.
	Identity
	// Covering suppresses forwarding of subscriptions covered by one
	// already forwarded, and retracts forwarded subscriptions that a new
	// wider subscription covers.
	Covering
	// Merging additionally creates perfect merges of forwarded filters,
	// forwarding only the merged cover.
	Merging
)

// StrategyNames lists the parseable strategy names in increasing order of
// routing-table optimization.
func StrategyNames() []string {
	return []string{"flooding", "simple", "identity", "covering", "merging"}
}

// Strategies lists all strategies in the same order as StrategyNames.
func Strategies() []Strategy {
	return []Strategy{Flooding, Simple, Identity, Covering, Merging}
}

// ParseStrategy maps a name to a Strategy, ignoring case and surrounding
// whitespace. The error for an unknown name lists the valid ones.
func ParseStrategy(name string) (Strategy, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "flooding":
		return Flooding, nil
	case "simple":
		return Simple, nil
	case "identity":
		return Identity, nil
	case "covering":
		return Covering, nil
	case "merging":
		return Merging, nil
	default:
		return 0, fmt.Errorf("routing: unknown strategy %q (valid: %s)",
			name, strings.Join(StrategyNames(), ", "))
	}
}

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case Flooding:
		return "flooding"
	case Simple:
		return "simple"
	case Identity:
		return "identity"
	case Covering:
		return "covering"
	case Merging:
		return "merging"
	default:
		return "invalid"
	}
}

// Reduce computes the set of filters that must be forwarded upstream to
// represent the given input filters under the strategy. The result always
// accepts at least the union of the inputs (soundness), and for Covering
// and Merging it is typically much smaller.
func (s Strategy) Reduce(fs []filter.Filter) []filter.Filter {
	switch s {
	case Flooding:
		// Flooding needs no subscription propagation at all.
		return nil
	case Simple:
		return dedupIdentical(fs) // identical duplicates carry no information
	case Identity:
		return dedupIdentical(fs)
	case Covering:
		return removeCovered(dedupIdentical(fs))
	case Merging:
		// Group-local perfect merging (see mergeplane.go): every filter
		// belongs to exactly one merge group, each group emits its base
		// plus the canonical union of the members' merge-attribute
		// constraints, and covering minimizes the emissions. Unlike the
		// old global greedy fixpoint this is a deterministic function of
		// the input *set* with purely local update cost, which is what
		// makes the incremental mergePlane exact.
		return removeCovered(groupMerge(dedupIdentical(fs)))
	default:
		return dedupIdentical(fs)
	}
}

func dedupIdentical(fs []filter.Filter) []filter.Filter {
	seen := make(map[string]bool, len(fs))
	out := make([]filter.Filter, 0, len(fs))
	for _, f := range fs {
		id := f.ID()
		if !seen[id] {
			seen[id] = true
			out = append(out, f)
		}
	}
	return out
}

// removeCovered drops every filter that is covered by another (distinct)
// filter in the set. Mutually covering filters (equal accepted sets, e.g.
// `x = 5` and `x in {5}`) keep the one with the lexicographically smallest
// canonical ID, so the result is a deterministic function of the input
// *set* — the property the incremental CoverIndex relies on to stay
// byte-identical to this batch oracle.
func removeCovered(fs []filter.Filter) []filter.Filter {
	ids := make([]string, len(fs))
	for i, f := range fs {
		ids[i] = f.ID()
	}
	out := make([]filter.Filter, 0, len(fs))
	for i, f := range fs {
		covered := false
		for j, g := range fs {
			if i == j {
				continue
			}
			if g.Covers(f) {
				// Mutual covers: keep the smaller ID (input order for
				// identical duplicates, which dedupIdentical removes
				// upstream anyway).
				if f.Covers(g) && (ids[i] < ids[j] || (ids[i] == ids[j] && i < j)) {
					continue
				}
				covered = true
				break
			}
		}
		if !covered {
			out = append(out, f)
		}
	}
	return out
}

// Update is the diff a Forwarder emits for one neighbor: filters to newly
// subscribe and filters to retract. Both lists are sorted by canonical
// filter ID, so the administrative wire traffic a table change produces
// is deterministic and transcripts can be compared byte-for-byte.
type Update struct {
	Hop         wire.Hop
	Subscribe   []filter.Filter
	Unsubscribe []filter.Filter
}

// Empty reports whether the update carries no wire traffic.
func (u Update) Empty() bool { return len(u.Subscribe) == 0 && len(u.Unsubscribe) == 0 }

// Forwarder tracks, per neighbor, the set of filters this broker has
// forwarded (its provisioned upstream interest) together with the input
// filters that justify it, and computes minimal sub/unsub diffs when the
// local routing table changes. It implements the strategy-specific
// administrative traffic that Figure 9 counts.
//
// The primary API is the delta one — AddFilter/RemoveFilter apply a
// single routing-entry change at a cost proportional to the change:
// Flooding and Simple/Identity in O(1), Covering through the
// signature-bucketed CoverIndex, and Merging through refcounted merge
// groups (mergeplane.go) that recompute only the group the changed filter
// belongs to. Recompute remains as the batch oracle: link churn uses it
// to reseed or repair a neighbor's state from an authoritative input
// list, and the equivalence tests compare the delta path against it.
type Forwarder struct {
	strategy Strategy

	mu        sync.Mutex
	forwarded map[string]map[string]filter.Filter // hop -> filterID -> filter
	planes    map[string]plane                    // hop -> tracked-input state
}

// plane is the per-neighbor input state behind the delta API. add and
// remove report the forward-set delta and whether they computed it
// incrementally; when incremental is false the caller diffs desired()
// against the forwarded set instead (the batch path Merging takes).
type plane interface {
	add(f filter.Filter) (d CoverDelta, incremental bool)
	remove(f filter.Filter) (d CoverDelta, incremental bool)
	reset(inputs []filter.Filter)
	desired() []filter.Filter
	size() int
	stats() (checks, saved uint64)
}

// NewForwarder returns a Forwarder for the given strategy.
func NewForwarder(s Strategy) *Forwarder {
	return &Forwarder{
		strategy:  s,
		forwarded: make(map[string]map[string]filter.Filter),
		planes:    make(map[string]plane),
	}
}

// Strategy returns the forwarder's strategy.
func (f *Forwarder) Strategy() Strategy { return f.strategy }

// Incremental reports whether the delta API avoids batch recomputation.
// Since the merging plane rework it is true for every strategy: Merging's
// group-local formulation confines each delta to one refcounted merge
// group instead of re-running a global fixpoint.
func (f *Forwarder) Incremental() bool { return true }

// AddFilter records one more routing-table entry carrying fl among the
// inputs for the neighbor and returns the administrative diff it causes.
func (f *Forwarder) AddFilter(hop wire.Hop, fl filter.Filter) Update {
	f.mu.Lock()
	defer f.mu.Unlock()
	hk := hop.String()
	p := f.planeLocked(hk)
	if d, incremental := p.add(fl); incremental {
		return f.applyDeltaLocked(hop, hk, d)
	}
	return f.diffLocked(hop, hk, p.desired())
}

// RemoveFilter records that one routing-table entry carrying fl is gone
// from the neighbor's inputs and returns the administrative diff.
func (f *Forwarder) RemoveFilter(hop wire.Hop, fl filter.Filter) Update {
	f.mu.Lock()
	defer f.mu.Unlock()
	hk := hop.String()
	p := f.planeLocked(hk)
	if d, incremental := p.remove(fl); incremental {
		return f.applyDeltaLocked(hop, hk, d)
	}
	return f.diffLocked(hop, hk, p.desired())
}

// Recompute replaces the neighbor's tracked inputs with the given
// authoritative list — the filters of all routing table entries *not*
// pointing at that neighbor — and diffs the resulting desired forward set
// against what was previously forwarded. It is the batch oracle behind
// the delta API: link churn reseeds through it, and the equivalence tests
// compare the delta path against it.
func (f *Forwarder) Recompute(hop wire.Hop, inputs []filter.Filter) Update {
	f.mu.Lock()
	defer f.mu.Unlock()
	hk := hop.String()
	p := f.planeLocked(hk)
	p.reset(inputs)
	return f.diffLocked(hop, hk, p.desired())
}

// planeLocked returns (creating on first use) the tracked-input state for
// a neighbor. Callers hold f.mu.
func (f *Forwarder) planeLocked(hk string) plane {
	p, ok := f.planes[hk]
	if !ok {
		p = newPlane(f.strategy)
		f.planes[hk] = p
	}
	return p
}

// applyDeltaLocked turns an incremental forward-set delta into an Update,
// mutating the neighbor's forwarded set. Callers hold f.mu.
func (f *Forwarder) applyDeltaLocked(hop wire.Hop, hk string, d CoverDelta) Update {
	u := Update{Hop: hop}
	if d.Empty() {
		return u
	}
	have := f.forwarded[hk]
	if have == nil {
		have = make(map[string]filter.Filter)
		f.forwarded[hk] = have
	}
	for _, fl := range d.Forward {
		id := fl.ID()
		if _, ok := have[id]; !ok {
			have[id] = fl
			u.Subscribe = append(u.Subscribe, fl)
		}
	}
	for _, fl := range d.Retract {
		id := fl.ID()
		if _, ok := have[id]; ok {
			delete(have, id)
			u.Unsubscribe = append(u.Unsubscribe, fl)
		}
	}
	return u
}

// diffLocked diffs a freshly computed desired forward set against the
// neighbor's forwarded set, sorted for deterministic wire order. Callers
// hold f.mu.
func (f *Forwarder) diffLocked(hop wire.Hop, hk string, desired []filter.Filter) Update {
	want := make(map[string]filter.Filter, len(desired))
	for _, d := range desired {
		want[d.ID()] = d
	}
	have := f.forwarded[hk]
	if have == nil {
		have = make(map[string]filter.Filter)
		f.forwarded[hk] = have
	}
	u := Update{Hop: hop}
	for id, fl := range want {
		if _, ok := have[id]; !ok {
			u.Subscribe = append(u.Subscribe, fl)
			have[id] = fl
		}
	}
	for id, fl := range have {
		if _, ok := want[id]; !ok {
			u.Unsubscribe = append(u.Unsubscribe, fl)
			delete(have, id)
		}
	}
	sortFiltersByID(u.Subscribe)
	sortFiltersByID(u.Unsubscribe)
	return u
}

// Forwarded returns the filters currently forwarded to the neighbor,
// sorted by canonical ID.
func (f *Forwarder) Forwarded(hop wire.Hop) []filter.Filter {
	f.mu.Lock()
	defer f.mu.Unlock()
	m := f.forwarded[hop.String()]
	out := make([]filter.Filter, 0, len(m))
	for _, fl := range m {
		out = append(out, fl)
	}
	sortFiltersByID(out)
	return out
}

// DropHop forgets all forwarding state for a neighbor (link teardown).
func (f *Forwarder) DropHop(hop wire.Hop) {
	f.mu.Lock()
	defer f.mu.Unlock()
	hk := hop.String()
	delete(f.forwarded, hk)
	delete(f.planes, hk)
}

// ForwarderStats describes the control plane's shape and the pairwise
// cover work the incremental path avoided.
type ForwarderStats struct {
	// Strategy is the forwarder's routing strategy; Incremental reports
	// whether its delta API avoids batch recomputation (true for all
	// strategies since the merging plane rework).
	Strategy    Strategy
	Incremental bool
	// Hops is the number of neighbors with tracked state; TrackedFilters
	// the distinct input filters summed over neighbors; ForwardedFilters
	// the forwarded filters summed over neighbors.
	Hops, TrackedFilters, ForwardedFilters int
	// CoverChecks counts full filter.Covers evaluations in the cover
	// indexes; CoverChecksSaved counts candidate pairs the signature
	// buckets dismissed without one.
	CoverChecks, CoverChecksSaved uint64
	// MergesActive counts merge groups currently suppressing at least one
	// input behind a broader merged filter, MergeCovered the inputs so
	// suppressed, and Unmerges the cumulative removals that forced a
	// merged filter to be re-expanded into narrower ones. All three stay
	// zero for strategies below Merging.
	MergesActive, MergeCovered int
	Unmerges                   uint64
}

// Stats returns a snapshot of the forwarder's counters.
func (f *Forwarder) Stats() ForwarderStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := ForwarderStats{
		Strategy:    f.strategy,
		Incremental: true,
		Hops:        len(f.planes),
	}
	for _, p := range f.planes {
		s.TrackedFilters += p.size()
		checks, saved := p.stats()
		s.CoverChecks += checks
		s.CoverChecksSaved += saved
		if mp, ok := p.(*mergePlane); ok {
			active, covered, unmerges := mp.mergeStats()
			s.MergesActive += active
			s.MergeCovered += covered
			s.Unmerges += unmerges
		}
	}
	for _, m := range f.forwarded {
		s.ForwardedFilters += len(m)
	}
	return s
}

// ---------------------------------------------------------------------------
// Per-strategy planes.
// ---------------------------------------------------------------------------

// newPlane builds the tracked-input state for one neighbor under the
// given strategy.
func newPlane(s Strategy) plane {
	switch s {
	case Flooding:
		return floodPlane{}
	case Covering:
		return &coverPlane{idx: NewCoverIndex()}
	case Merging:
		return newMergePlane()
	default: // Simple, Identity
		return &dedupPlane{refPlane: newRefPlane()}
	}
}

// floodPlane is the Flooding no-op: no subscriptions propagate at all.
type floodPlane struct{}

func (floodPlane) add(filter.Filter) (CoverDelta, bool)    { return CoverDelta{}, true }
func (floodPlane) remove(filter.Filter) (CoverDelta, bool) { return CoverDelta{}, true }
func (floodPlane) reset([]filter.Filter)                   {}
func (floodPlane) desired() []filter.Filter                { return nil }
func (floodPlane) size() int                               { return 0 }
func (floodPlane) stats() (uint64, uint64)                 { return 0, 0 }

// refPlane reference-counts distinct filters, the shared bookkeeping of
// the dedup and merge planes.
type refPlane struct {
	refs map[string]int
	fs   map[string]filter.Filter
}

func newRefPlane() refPlane {
	return refPlane{refs: make(map[string]int), fs: make(map[string]filter.Filter)}
}

// track adds one reference, reporting whether the filter is new.
func (p *refPlane) track(f filter.Filter) bool {
	id := f.ID()
	p.refs[id]++
	if p.refs[id] == 1 {
		p.fs[id] = f
		return true
	}
	return false
}

// untrack drops one reference, reporting whether the filter is gone.
func (p *refPlane) untrack(f filter.Filter) bool {
	id := f.ID()
	if p.refs[id] == 0 {
		return false
	}
	if p.refs[id]--; p.refs[id] > 0 {
		return false
	}
	delete(p.refs, id)
	delete(p.fs, id)
	return true
}

func (p *refPlane) reset(inputs []filter.Filter) {
	clear(p.refs)
	clear(p.fs)
	for _, f := range inputs {
		p.track(f)
	}
}

// distinct returns the tracked filters sorted by ID, the canonical
// forward order.
func (p *refPlane) distinct() []filter.Filter {
	out := make([]filter.Filter, 0, len(p.fs))
	for _, f := range p.fs {
		out = append(out, f)
	}
	sortFiltersByID(out)
	return out
}

func (p *refPlane) size() int               { return len(p.fs) }
func (p *refPlane) stats() (uint64, uint64) { return 0, 0 }

// dedupPlane implements Simple and Identity: forward every distinct
// filter once.
type dedupPlane struct{ refPlane }

func (p *dedupPlane) add(f filter.Filter) (CoverDelta, bool) {
	if p.track(f) {
		return CoverDelta{Forward: []filter.Filter{f}}, true
	}
	return CoverDelta{}, true
}

func (p *dedupPlane) remove(f filter.Filter) (CoverDelta, bool) {
	if p.untrack(f) {
		return CoverDelta{Retract: []filter.Filter{f}}, true
	}
	return CoverDelta{}, true
}

func (p *dedupPlane) desired() []filter.Filter { return p.distinct() }

// coverPlane implements Covering through the incremental CoverIndex.
type coverPlane struct{ idx *CoverIndex }

func (p *coverPlane) add(f filter.Filter) (CoverDelta, bool)    { return p.idx.Add(f), true }
func (p *coverPlane) remove(f filter.Filter) (CoverDelta, bool) { return p.idx.Remove(f), true }

func (p *coverPlane) reset(inputs []filter.Filter) {
	idx := NewCoverIndex()
	idx.checks, idx.saved = p.idx.checks, p.idx.saved // counters survive reseeds
	for _, f := range inputs {
		idx.Add(f)
	}
	p.idx = idx
}

func (p *coverPlane) desired() []filter.Filter { return p.idx.Forwarded() }
func (p *coverPlane) size() int                { return p.idx.Len() }
func (p *coverPlane) stats() (uint64, uint64)  { return p.idx.checks, p.idx.saved }

// mergePlane (Merging) lives in mergeplane.go: refcounted merge groups
// with group-local recomputation and a private CoverIndex over the
// emissions.
