package routing

import (
	"fmt"
	"sync"

	"repro/internal/filter"
	"repro/internal/wire"
)

// Strategy selects the subscription-forwarding behavior of a broker
// (Section 2.2).
type Strategy uint8

// Routing strategies, in increasing order of routing-table optimization.
const (
	// Flooding forwards every notification on every link; no subscription
	// state is propagated at all.
	Flooding Strategy = iota + 1
	// Simple forwards every subscription on every other link; tables grow
	// with the number of subscriptions.
	Simple
	// Identity suppresses forwarding of subscriptions identical to one
	// already forwarded.
	Identity
	// Covering suppresses forwarding of subscriptions covered by one
	// already forwarded, and retracts forwarded subscriptions that a new
	// wider subscription covers.
	Covering
	// Merging additionally creates perfect merges of forwarded filters,
	// forwarding only the merged cover.
	Merging
)

// ParseStrategy maps a name to a Strategy.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "flooding":
		return Flooding, nil
	case "simple":
		return Simple, nil
	case "identity":
		return Identity, nil
	case "covering":
		return Covering, nil
	case "merging":
		return Merging, nil
	default:
		return 0, fmt.Errorf("routing: unknown strategy %q", name)
	}
}

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case Flooding:
		return "flooding"
	case Simple:
		return "simple"
	case Identity:
		return "identity"
	case Covering:
		return "covering"
	case Merging:
		return "merging"
	default:
		return "invalid"
	}
}

// Reduce computes the set of filters that must be forwarded upstream to
// represent the given input filters under the strategy. The result always
// accepts at least the union of the inputs (soundness), and for Covering
// and Merging it is typically much smaller.
func (s Strategy) Reduce(fs []filter.Filter) []filter.Filter {
	switch s {
	case Flooding:
		// Flooding needs no subscription propagation at all.
		return nil
	case Simple:
		return dedupIdentical(fs) // identical duplicates carry no information
	case Identity:
		return dedupIdentical(fs)
	case Covering:
		return removeCovered(dedupIdentical(fs))
	case Merging:
		return removeCovered(filter.MergeAll(removeCovered(dedupIdentical(fs))))
	default:
		return dedupIdentical(fs)
	}
}

func dedupIdentical(fs []filter.Filter) []filter.Filter {
	seen := make(map[string]bool, len(fs))
	out := make([]filter.Filter, 0, len(fs))
	for _, f := range fs {
		id := f.ID()
		if !seen[id] {
			seen[id] = true
			out = append(out, f)
		}
	}
	return out
}

// removeCovered drops every filter that is covered by another (distinct)
// filter in the set. Mutual covers (equivalent filters) keep the first.
func removeCovered(fs []filter.Filter) []filter.Filter {
	out := make([]filter.Filter, 0, len(fs))
	for i, f := range fs {
		covered := false
		for j, g := range fs {
			if i == j {
				continue
			}
			if g.Covers(f) {
				// Break ties between mutually covering filters by index.
				if f.Covers(g) && i < j {
					continue
				}
				covered = true
				break
			}
		}
		if !covered {
			out = append(out, f)
		}
	}
	return out
}

// Update is the diff a Forwarder emits for one neighbor: filters to newly
// subscribe and filters to retract.
type Update struct {
	Hop         wire.Hop
	Subscribe   []filter.Filter
	Unsubscribe []filter.Filter
}

// Forwarder tracks, per neighbor, the set of filters this broker has
// forwarded (its provisioned upstream interest), and computes minimal
// sub/unsub diffs when the local routing table changes. It implements the
// strategy-specific administrative traffic that Figure 9 counts.
type Forwarder struct {
	strategy Strategy

	mu        sync.Mutex
	forwarded map[string]map[string]filter.Filter // hop -> filterID -> filter
}

// NewForwarder returns a Forwarder for the given strategy.
func NewForwarder(s Strategy) *Forwarder {
	return &Forwarder{
		strategy:  s,
		forwarded: make(map[string]map[string]filter.Filter),
	}
}

// Strategy returns the forwarder's strategy.
func (f *Forwarder) Strategy() Strategy { return f.strategy }

// Recompute diffs the desired forward set for the given neighbor against
// what was previously forwarded. inputs are the filters of all routing
// table entries *not* pointing at that neighbor.
func (f *Forwarder) Recompute(hop wire.Hop, inputs []filter.Filter) Update {
	desired := f.strategy.Reduce(inputs)
	want := make(map[string]filter.Filter, len(desired))
	for _, d := range desired {
		want[d.ID()] = d
	}

	f.mu.Lock()
	defer f.mu.Unlock()
	hk := hop.String()
	have := f.forwarded[hk]
	if have == nil {
		have = make(map[string]filter.Filter)
		f.forwarded[hk] = have
	}
	u := Update{Hop: hop}
	for id, fl := range want {
		if _, ok := have[id]; !ok {
			u.Subscribe = append(u.Subscribe, fl)
			have[id] = fl
		}
	}
	for id, fl := range have {
		if _, ok := want[id]; !ok {
			u.Unsubscribe = append(u.Unsubscribe, fl)
			delete(have, id)
		}
	}
	return u
}

// Forwarded returns the filters currently forwarded to the neighbor.
func (f *Forwarder) Forwarded(hop wire.Hop) []filter.Filter {
	f.mu.Lock()
	defer f.mu.Unlock()
	m := f.forwarded[hop.String()]
	out := make([]filter.Filter, 0, len(m))
	for _, fl := range m {
		out = append(out, fl)
	}
	return out
}

// DropHop forgets all forwarding state for a neighbor (link teardown).
func (f *Forwarder) DropHop(hop wire.Hop) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.forwarded, hop.String())
}
