package routing

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/filter"
	"repro/internal/message"
	"repro/internal/wire"
)

// Scan-based reference implementations of the enumeration APIs, computed
// from All() (itself a canonical-order full scan): filtering a canonically
// sorted slice preserves the canonical order, so results compare
// structurally equal to the posting-list paths.

func clientEntriesRef(all []Entry, c wire.ClientID, id wire.SubID) []Entry {
	var out []Entry
	for _, e := range all {
		if e.Client == c && e.SubID == id {
			out = append(out, e)
		}
	}
	return out
}

func hopEntriesRef(all []Entry, h wire.Hop) []Entry {
	var out []Entry
	for _, e := range all {
		if e.Hop == h {
			out = append(out, e)
		}
	}
	return out
}

func overlapsHopRef(all []Entry, f filter.Filter, h wire.Hop) bool {
	for _, e := range all {
		if e.Hop == h && e.Filter.Overlaps(f) {
			return true
		}
	}
	return false
}

func hopsOverlappingRef(all []Entry, f filter.Filter, from wire.Hop) []wire.Hop {
	seen := make(map[wire.Hop]bool)
	var out []wire.Hop
	for _, e := range all {
		if e.Hop == from || seen[e.Hop] {
			continue
		}
		if e.Filter.Overlaps(f) {
			seen[e.Hop] = true
			out = append(out, e.Hop)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

func checkEnumerationParity(t *testing.T, tbl *Table, r *rand.Rand, step int) {
	t.Helper()
	all := tbl.All()
	// Owner enumeration: a present identity, a random (often absent) one,
	// and the empty aggregate identity (scan fallback path).
	idents := [][2]string{
		{fmt.Sprintf("c%d", r.Intn(3)), fmt.Sprintf("s%d", r.Intn(3))},
		{fmt.Sprintf("c%d", r.Intn(9)), fmt.Sprintf("s%d", r.Intn(9))},
		{"", ""},
	}
	for _, ci := range idents {
		c, id := wire.ClientID(ci[0]), wire.SubID(ci[1])
		got := tbl.ClientEntries(c, id)
		want := clientEntriesRef(all, c, id)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d: ClientEntries(%q, %q)\npostings: %v\nscan:     %v",
				step, c, id, got, want)
		}
	}
	f := randFilter(r)
	from := randHop(r)
	gotHops := tbl.HopsOverlapping(f, from)
	wantHops := hopsOverlappingRef(all, f, from)
	if !reflect.DeepEqual(gotHops, wantHops) {
		t.Fatalf("step %d: HopsOverlapping\npostings: %v\nscan:     %v", step, gotHops, wantHops)
	}
	h := randHop(r)
	if got, want := tbl.OverlapsHop(f, h), overlapsHopRef(all, f, h); got != want {
		t.Fatalf("step %d: OverlapsHop(%s) = %v, scan says %v", step, h, got, want)
	}
	// The aggregate posting counters must track the live table exactly:
	// one hop posting per entry, one ident posting per client-owned entry.
	clientOwned := 0
	for _, e := range all {
		if e.IsClientEntry() {
			clientOwned++
		}
	}
	st := tbl.IndexStats()
	if st.HopPostings != len(all) || st.IdentPostings != clientOwned {
		t.Fatalf("step %d: IndexStats postings = %d hop / %d ident, want %d / %d",
			step, st.HopPostings, st.IdentPostings, len(all), clientOwned)
	}
}

// TestPostingsParityProperty drives randomized add / remove / RemoveClient
// / RemoveHop / snapshot interleavings and asserts the posting-list
// enumeration paths return byte-identical results (same canonical order)
// to full-scan references, including the removal APIs' removed-entry
// return values. Snapshots are taken mid-run to force copy-on-write epoch
// bumps and occasional index rebuilds underneath the postings.
func TestPostingsParityProperty(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(1000 + seed))
			tbl := NewTable()
			var live []Entry
			for step := 0; step < 250; step++ {
				switch op := r.Intn(10); {
				case op < 5: // add
					e := randEntry(r)
					if tbl.Add(e) {
						live = append(live, e)
					}
				case op < 7 && len(live) > 0: // remove a client subscription
					e := live[r.Intn(len(live))]
					want := clientEntriesRef(tbl.All(), e.Client, e.SubID)
					got := tbl.RemoveClient(e.Client, e.SubID)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("step %d: RemoveClient(%q, %q)\npostings: %v\nscan:     %v",
							step, e.Client, e.SubID, got, want)
					}
					kept := live[:0]
					for _, le := range live {
						if le.Client != e.Client || le.SubID != e.SubID {
							kept = append(kept, le)
						}
					}
					live = kept
				case op < 8 && len(live) > 0: // remove one entry
					i := r.Intn(len(live))
					if !tbl.Remove(live[i]) {
						t.Fatalf("step %d: live entry not removable", step)
					}
					live = append(live[:i], live[i+1:]...)
				case op == 8 && len(live) > 0: // remove a hop
					h := live[r.Intn(len(live))].Hop
					want := hopEntriesRef(tbl.All(), h)
					got := tbl.RemoveHop(h)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("step %d: RemoveHop(%s)\npostings: %v\nscan:     %v",
							step, h, got, want)
					}
					kept := live[:0]
					for _, le := range live {
						if le.Hop != h {
							kept = append(kept, le)
						}
					}
					live = kept
				default:
					if r.Intn(2) == 0 {
						tbl.Snapshot() // epoch fence + possible rebuild
					}
				}
				if tbl.Len() != len(live) {
					t.Fatalf("step %d: table has %d entries, shadow %d", step, tbl.Len(), len(live))
				}
				checkEnumerationParity(t, tbl, r, step)
			}
			// Drain completely: postings must account down to zero.
			for _, e := range live {
				tbl.Remove(e)
			}
			st := tbl.IndexStats()
			if st.Entries != 0 || st.IdentPostings != 0 || st.HopPostings != 0 {
				t.Errorf("after drain IndexStats = %+v, want zero entries and postings", st)
			}
		})
	}
}

// TestRemoveHopAfterSlotReuse pins the generation check on the hop
// postings: a slot freed from one hop and reused for another must not be
// removable through the old hop's stale posting.
func TestRemoveHopAfterSlotReuse(t *testing.T) {
	tbl := NewTable()
	f := filter.MustNew(filter.EQ("a", message.Int(1)))
	e1 := Entry{Filter: f, Hop: wire.BrokerHop("b1"), Client: "C", SubID: "s1"}
	tbl.Add(e1)
	tbl.Remove(e1) // frees the slot
	e2 := Entry{Filter: f, Hop: wire.BrokerHop("b2"), Client: "C", SubID: "s2"}
	tbl.Add(e2) // reuses it for another hop
	if got := tbl.RemoveHop(wire.BrokerHop("b1")); got != nil {
		t.Fatalf("RemoveHop(b1) removed %v through a stale posting", got)
	}
	if got := tbl.ClientEntries("C", "s1"); got != nil {
		t.Fatalf("ClientEntries(C, s1) = %v through a stale posting", got)
	}
	if got := tbl.RemoveHop(wire.BrokerHop("b2")); !reflect.DeepEqual(got, []Entry{e2}) {
		t.Fatalf("RemoveHop(b2) = %v, want [e2]", got)
	}
	if tbl.Len() != 0 {
		t.Fatalf("table not empty: %d", tbl.Len())
	}
}
