package routing

// Mutation-plane enumeration postings for the mobility control path.
//
// The relocation protocol of Section 4 — junction detection, path
// flipping, replay routing, counterpart GC — and the tree-repair path of
// RemoveLink all enumerate a table by owner identity or by hop:
// ClientEntries, RemoveClient, RemoveHop, OverlapsHop, HopsOverlapping.
// Before these lists existed, every such call was a full forEachLiveSlot
// scan, so one relocation against a 10⁶-entry table cost millions of row
// visits. The per-ident and per-hop posting lists below make those paths
// O(entries for that ident/hop): the same generation-checked,
// lazy-deletion, amortized-compaction representation as the match-plane
// posting lists, but owned by the mutation plane — written in place under
// the table lock, never read by snapshots (which only match), and so, like
// identTable, needing no copy-on-write epoch fence. share() hands
// snapshots a stale shallow copy of the list headers harmlessly, O(1).

// mutPostings is one mutation-plane slot posting list. Freeing a row bumps
// its generation, which invalidates its posting here at walk time (see
// rowLive); removeLazy only counts deletions and rewrites the list once
// dead postings dominate, so storage stays proportional to the live
// entries, amortized.
type mutPostings struct {
	s    []slotGen
	dead int32
}

func (p *mutPostings) add(sg slotGen) {
	p.s = append(p.s, sg)
}

// removeLazy records one posting invalidation (the row-generation bump is
// the real deletion) and compacts in place once dead postings outnumber
// live ones.
func (p *mutPostings) removeLazy(x *matchIndex) {
	p.dead++
	if int(p.dead) > len(p.s)-int(p.dead) && p.dead > 8 {
		kept := p.s[:0]
		for _, sg := range p.s {
			if x.rowLive(sg) {
				kept = append(kept, sg)
			}
		}
		p.s = kept
		p.dead = 0
	}
}

// liveSlots appends the slots of the list's live postings to buf and
// returns it. The result is a private snapshot: callers may removeSlot the
// collected rows afterwards — which compacts this very list in place —
// without invalidating the walk.
func (p *mutPostings) liveSlots(x *matchIndex, buf []int32) []int32 {
	for _, sg := range p.s {
		if x.rowLive(sg) {
			buf = append(buf, sg.slot)
		}
	}
	return buf
}
