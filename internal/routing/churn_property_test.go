package routing

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/filter"
	"repro/internal/message"
	"repro/internal/wire"
)

// churnFilterPool builds a structured filter family with heavy covering
// and merging material: nested and adjacent ranges, point subscriptions,
// equivalence classes (EQ vs singleton IN), presence constraints, and a
// second attribute dimension so signature buckets split.
func churnFilterPool() []filter.Filter {
	var pool []filter.Filter
	add := func(src string) { pool = append(pool, filter.MustParse(src)) }
	for lo := 0; lo < 40; lo += 5 {
		add(fmt.Sprintf(`p in [%d, %d]`, lo, lo+4))  // adjacent runs
		add(fmt.Sprintf(`p in [%d, %d]`, lo, lo+20)) // nested overlaps
	}
	for v := 0; v < 6; v++ {
		add(fmt.Sprintf(`p = %d`, v))
		add(fmt.Sprintf(`p in {%d}`, v)) // mutual cover with the EQ form
	}
	for _, svc := range []string{"parking", "pizza", "taxi"} {
		add(fmt.Sprintf(`service = %q`, svc))
		add(fmt.Sprintf(`service = %q && cost < 3`, svc))
		add(fmt.Sprintf(`service = %q && cost < 7`, svc))
	}
	add(`cost exists`)
	add(`p >= 0`)
	return pool
}

// refInputs is the authoritative per-hop input multiset the test
// maintains alongside the forwarder.
type refInputs map[string][]filter.Filter // hop key -> multiset

func (r refInputs) add(hk string, f filter.Filter) { r[hk] = append(r[hk], f) }

func (r refInputs) remove(hk string, f filter.Filter) bool {
	id := f.ID()
	fs := r[hk]
	for i, g := range fs {
		if g.ID() == id {
			r[hk] = append(fs[:i], fs[i+1:]...)
			return true
		}
	}
	return false
}

// sortedIDs returns the canonical ID set of a filter list.
func sortedIDs(fs []filter.Filter) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.ID()
	}
	sort.Strings(out)
	return out
}

// canonicalReduce is the batch oracle: Strategy.Reduce over the ID-sorted
// distinct... no — over the ID-sorted input list, the canonical order the
// merge plane uses, so Merging's greedy fixpoint is reproducible.
func canonicalReduce(s Strategy, inputs []filter.Filter) []filter.Filter {
	cp := make([]filter.Filter, len(inputs))
	copy(cp, inputs)
	sortFiltersByID(cp)
	return s.Reduce(cp)
}

// TestForwarderIncrementalMatchesBatch drives random churn —
// subscription adds, removes, and relocations between hops — through the
// delta API of every strategy and asserts after each step that the
// per-neighbor forwarded set is exactly the batch Strategy.Reduce over
// the surviving inputs, and that the emitted sub/unsub wire deltas replay
// to the same set.
func TestForwarderIncrementalMatchesBatch(t *testing.T) {
	hops := []wire.Hop{wire.BrokerHop("n1"), wire.BrokerHop("n2"), wire.BrokerHop("n3")}
	pool := churnFilterPool()
	for _, strat := range Strategies() {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(0xC0FFEE) + int64(strat)))
			fwd := NewForwarder(strat)
			ref := make(refInputs)
			// remote simulates each neighbor applying the emitted wire
			// deltas; it must track Forwarded exactly.
			remote := make(map[string]map[string]filter.Filter)
			apply := func(u Update) {
				hk := u.Hop.String()
				m := remote[hk]
				if m == nil {
					m = make(map[string]filter.Filter)
					remote[hk] = m
				}
				for _, f := range u.Subscribe {
					if _, dup := m[f.ID()]; dup {
						t.Fatalf("%s: duplicate subscribe for %s", hk, f)
					}
					m[f.ID()] = f
				}
				for _, f := range u.Unsubscribe {
					if _, ok := m[f.ID()]; !ok {
						t.Fatalf("%s: unsubscribe for never-forwarded %s", hk, f)
					}
					delete(m, f.ID())
				}
			}

			steps := 400
			for step := 0; step < steps; step++ {
				f := pool[rng.Intn(len(pool))]
				hop := hops[rng.Intn(len(hops))]
				hk := hop.String()
				switch op := rng.Intn(10); {
				case op < 4: // subscribe
					ref.add(hk, f)
					apply(fwd.AddFilter(hop, f))
				case op < 7: // unsubscribe (only if present)
					if ref.remove(hk, f) {
						apply(fwd.RemoveFilter(hop, f))
					}
				default: // relocate: move one input between neighbors
					to := hops[rng.Intn(len(hops))]
					if to == hop || !ref.remove(hk, f) {
						continue
					}
					apply(fwd.RemoveFilter(hop, f))
					ref.add(to.String(), f)
					apply(fwd.AddFilter(to, f))
				}

				for _, h := range hops {
					want := sortedIDs(canonicalReduce(strat, ref[h.String()]))
					got := sortedIDs(fwd.Forwarded(h))
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("step %d hop %s:\n got  %v\n want %v",
							step, h, got, want)
					}
					replayed := make([]filter.Filter, 0, len(remote[h.String()]))
					for _, fl := range remote[h.String()] {
						replayed = append(replayed, fl)
					}
					if !reflect.DeepEqual(sortedIDs(replayed), want) {
						t.Fatalf("step %d hop %s: wire replay diverged:\n got  %v\n want %v",
							step, h, sortedIDs(replayed), want)
					}
				}
			}
		})
	}
}

// TestMergePlaneUnmergeRestores pins the unmerge half of the merging
// plane: removing the input that extended a merged filter must restore
// exactly the pre-merge forwarded set — retract the merged filter,
// re-subscribe the narrower survivor — and the merge counters must track
// the transition.
func TestMergePlaneUnmergeRestores(t *testing.T) {
	hop := wire.BrokerHop("up")
	fwd := NewForwarder(Merging)
	a := mkFilter(`p in [0, 10]`)
	b := mkFilter(`p in [11, 20]`)
	other := mkFilter(`q = 1`)
	merged := mkFilter(`p in [0, 20]`)

	fwd.AddFilter(hop, a)
	fwd.AddFilter(hop, other)
	before := sortedIDs(fwd.Forwarded(hop))
	if want := sortedIDs([]filter.Filter{a, other}); !reflect.DeepEqual(before, want) {
		t.Fatalf("pre-merge forwarded = %v, want %v", before, want)
	}

	u := fwd.AddFilter(hop, b)
	if got, want := idsOf(u.Subscribe), []string{merged.ID()}; !reflect.DeepEqual(got, want) {
		t.Fatalf("merge subscribe = %v, want %v", got, want)
	}
	if got, want := idsOf(u.Unsubscribe), []string{a.ID()}; !reflect.DeepEqual(got, want) {
		t.Fatalf("merge unsubscribe = %v, want %v", got, want)
	}
	s := fwd.Stats()
	if s.MergesActive != 1 || s.MergeCovered != 2 || s.Unmerges != 0 {
		t.Fatalf("mid-merge stats = %d active / %d covered / %d unmerges, want 1/2/0",
			s.MergesActive, s.MergeCovered, s.Unmerges)
	}

	// A second reference to b and its removal must not disturb the merge.
	fwd.AddFilter(hop, b)
	if u := fwd.RemoveFilter(hop, b); !u.Empty() {
		t.Fatalf("dropping one of two refs emitted traffic: %+v", u)
	}

	u = fwd.RemoveFilter(hop, b)
	if got, want := idsOf(u.Subscribe), []string{a.ID()}; !reflect.DeepEqual(got, want) {
		t.Fatalf("unmerge subscribe = %v, want %v", got, want)
	}
	if got, want := idsOf(u.Unsubscribe), []string{merged.ID()}; !reflect.DeepEqual(got, want) {
		t.Fatalf("unmerge unsubscribe = %v, want %v", got, want)
	}
	if after := sortedIDs(fwd.Forwarded(hop)); !reflect.DeepEqual(after, before) {
		t.Fatalf("unmerge did not restore pre-merge set: got %v, want %v", after, before)
	}
	s = fwd.Stats()
	if s.MergesActive != 0 || s.MergeCovered != 0 || s.Unmerges != 1 {
		t.Fatalf("post-unmerge stats = %d active / %d covered / %d unmerges, want 0/0/1",
			s.MergesActive, s.MergeCovered, s.Unmerges)
	}
}

// TestForwarderRecomputeReseedsDeltaState interleaves the batch oracle
// with delta ops: a Recompute must leave the tracked state exactly as if
// the inputs had arrived incrementally.
func TestForwarderRecomputeReseedsDeltaState(t *testing.T) {
	hop := wire.BrokerHop("up")
	wide := mkFilter(`p in [0, 100]`)
	narrow := mkFilter(`p in [10, 20]`)
	other := mkFilter(`q = 1`)
	for _, strat := range Strategies() {
		fwd := NewForwarder(strat)
		fwd.AddFilter(hop, narrow)
		// Authoritative reseed drops narrow, installs wide+other.
		fwd.Recompute(hop, []filter.Filter{wide, other})
		// Delta ops continue from the reseeded state.
		u := fwd.RemoveFilter(hop, wide)
		want := sortedIDs(canonicalReduce(strat, []filter.Filter{other}))
		if got := sortedIDs(fwd.Forwarded(hop)); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: after reseed+remove got %v want %v (update %+v)", strat, got, want, u)
		}
	}
}

// TestForwarderUpdateDeterministic pins satellite-level determinism: the
// same input set presented in shuffled orders yields byte-identical
// sorted updates.
func TestForwarderUpdateDeterministic(t *testing.T) {
	hop := wire.BrokerHop("up")
	var inputs []filter.Filter
	for i := 0; i < 16; i++ {
		inputs = append(inputs, filter.MustNew(
			filter.EQ("topic", message.String(fmt.Sprintf("t%d", i)))))
	}
	var first []string
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		cp := make([]filter.Filter, len(inputs))
		copy(cp, inputs)
		rng.Shuffle(len(cp), func(i, j int) { cp[i], cp[j] = cp[j], cp[i] })
		fwd := NewForwarder(Simple)
		u := fwd.Recompute(hop, cp)
		ids := idsOf(u.Subscribe)
		if !sort.StringsAreSorted(ids) {
			t.Fatalf("Subscribe not sorted: %v", ids)
		}
		if first == nil {
			first = ids
		} else if !reflect.DeepEqual(ids, first) {
			t.Fatalf("shuffled inputs changed wire order: %v vs %v", ids, first)
		}
	}
}
