// Package routing implements content-based routing tables and the routing
// strategies of Section 2.2: flooding, simple routing, identity-based
// routing, covering-based routing, and merging-based routing.
//
// A routing table holds (filter, hop) pairs: a notification matching the
// filter is forwarded along the hop. Mobile subscriptions additionally
// carry their owning (client, subscription) identity so that the
// relocation protocol of Section 4 can find and redirect the client's old
// delivery path at every broker.
package routing

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/filter"
	"repro/internal/message"
	"repro/internal/wire"
)

// Entry is one routing table row.
type Entry struct {
	Filter filter.Filter
	Hop    wire.Hop
	// Client/SubID identify the owning client subscription for mobile
	// (per-client) entries. Aggregate entries produced by the routing
	// strategies leave them empty.
	Client wire.ClientID
	SubID  wire.SubID
}

// IsClientEntry reports whether the entry is owned by a specific client
// subscription.
func (e Entry) IsClientEntry() bool { return e.Client != "" }

// key returns a unique identity for the entry within a table.
func (e Entry) key() string {
	var b strings.Builder
	b.WriteString(e.Filter.ID())
	b.WriteByte('#')
	b.WriteString(e.Hop.String())
	b.WriteByte('#')
	b.WriteString(string(e.Client))
	b.WriteByte('/')
	b.WriteString(string(e.SubID))
	return b.String()
}

// Table is a concurrency-safe routing table.
type Table struct {
	mu      sync.RWMutex
	entries map[string]Entry
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{entries: make(map[string]Entry)}
}

// Add inserts an entry, reporting whether it was not already present.
func (t *Table) Add(e Entry) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	k := e.key()
	if _, ok := t.entries[k]; ok {
		return false
	}
	t.entries[k] = e
	return true
}

// Remove deletes the exact entry, reporting whether it was present.
func (t *Table) Remove(e Entry) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	k := e.key()
	if _, ok := t.entries[k]; !ok {
		return false
	}
	delete(t.entries, k)
	return true
}

// Len returns the number of entries.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.entries)
}

// All returns a snapshot of every entry in a deterministic order.
func (t *Table) All() []Entry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	keys := make([]string, 0, len(t.entries))
	for k := range t.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Entry, 0, len(keys))
	for _, k := range keys {
		out = append(out, t.entries[k])
	}
	return out
}

// MatchingHops returns the deduplicated hops whose filters match the
// notification, excluding the hop the notification arrived from (reverse
// path forwarding on the acyclic overlay).
func (t *Table) MatchingHops(n message.Notification, from wire.Hop) []wire.Hop {
	t.mu.RLock()
	defer t.mu.RUnlock()
	seen := make(map[string]bool)
	var out []wire.Hop
	for _, e := range t.entries {
		if e.Hop == from {
			continue
		}
		hk := e.Hop.String()
		if seen[hk] {
			continue
		}
		if e.Filter.Matches(n) {
			seen[hk] = true
			out = append(out, e.Hop)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// MatchingEntries returns every entry whose filter matches the
// notification, excluding entries pointing back at from.
func (t *Table) MatchingEntries(n message.Notification, from wire.Hop) []Entry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []Entry
	for _, e := range t.entries {
		if e.Hop == from {
			continue
		}
		if e.Filter.Matches(n) {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key() < out[j].key() })
	return out
}

// ClientEntries returns the entries owned by the given client
// subscription.
func (t *Table) ClientEntries(c wire.ClientID, id wire.SubID) []Entry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []Entry
	for _, e := range t.entries {
		if e.Client == c && e.SubID == id {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key() < out[j].key() })
	return out
}

// RemoveClient deletes all entries owned by the given client subscription
// and returns them.
func (t *Table) RemoveClient(c wire.ClientID, id wire.SubID) []Entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Entry
	for k, e := range t.entries {
		if e.Client == c && e.SubID == id {
			out = append(out, e)
			delete(t.entries, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key() < out[j].key() })
	return out
}

// RemoveHop deletes all entries pointing along the given hop and returns
// them (used when a link or client goes away).
func (t *Table) RemoveHop(h wire.Hop) []Entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Entry
	for k, e := range t.entries {
		if e.Hop == h {
			out = append(out, e)
			delete(t.entries, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key() < out[j].key() })
	return out
}

// EntriesNotFrom returns the filters of all entries whose hop differs from
// the given hop (the inputs to a forwarding decision toward that hop).
func (t *Table) EntriesNotFrom(h wire.Hop) []Entry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []Entry
	for _, e := range t.entries {
		if e.Hop != h {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key() < out[j].key() })
	return out
}

// OverlapsHop reports whether any entry from the given hop overlaps the
// filter (used to decide whether a subscription must travel toward an
// advertiser).
func (t *Table) OverlapsHop(f filter.Filter, h wire.Hop) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, e := range t.entries {
		if e.Hop == h && e.Filter.Overlaps(f) {
			return true
		}
	}
	return false
}

// HopsOverlapping returns the hops having at least one entry overlapping
// f, excluding from.
func (t *Table) HopsOverlapping(f filter.Filter, from wire.Hop) []wire.Hop {
	t.mu.RLock()
	defer t.mu.RUnlock()
	seen := make(map[string]bool)
	var out []wire.Hop
	for _, e := range t.entries {
		if e.Hop == from || seen[e.Hop.String()] {
			continue
		}
		if e.Filter.Overlaps(f) {
			seen[e.Hop.String()] = true
			out = append(out, e.Hop)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}
