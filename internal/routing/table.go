// Package routing implements content-based routing tables and the routing
// strategies of Section 2.2: flooding, simple routing, identity-based
// routing, covering-based routing, and merging-based routing.
//
// A routing table holds (filter, hop) pairs: a notification matching the
// filter is forwarded along the hop. Mobile subscriptions additionally
// carry their owning (client, subscription) identity so that the
// relocation protocol of Section 4 can find and redirect the client's old
// delivery path at every broker.
//
// The forwarding decision — MatchingHops / MatchingEntries — is served by a
// predicate-counting match index (see index.go) rather than a linear scan
// over the entries, so its cost scales with the number of satisfied
// predicates instead of the table size.
package routing

import (
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/filter"
	"repro/internal/message"
	"repro/internal/wire"
)

// Entry is one routing table row.
type Entry struct {
	Filter filter.Filter
	Hop    wire.Hop
	// Client/SubID identify the owning client subscription for mobile
	// (per-client) entries. Aggregate entries produced by the routing
	// strategies leave them empty.
	Client wire.ClientID
	SubID  wire.SubID
}

// IsClientEntry reports whether the entry is owned by a specific client
// subscription.
func (e Entry) IsClientEntry() bool { return e.Client != "" }

// key returns a unique identity for the entry within a table. Tables cache
// it per row at insert time; it is only recomputed for lookup arguments.
func (e Entry) key() string {
	var b strings.Builder
	b.WriteString(e.Filter.ID())
	b.WriteByte('#')
	b.WriteString(e.Hop.String())
	b.WriteByte('#')
	b.WriteString(string(e.Client))
	b.WriteByte('/')
	b.WriteString(string(e.SubID))
	return b.String()
}

// Table is a concurrency-safe routing table backed by a predicate-counting
// match index.
type Table struct {
	mu      sync.RWMutex
	entries map[string]*idxEntry
	idx     *matchIndex

	// Copy-on-write snapshot state (see snapshot.go): snap caches the
	// last built immutable snapshot, gen counts mutations, and the
	// clone/rebuild counters feed SnapshotStats.
	snap         atomic.Pointer[Snapshot]
	gen          uint64
	snapClones   uint64
	snapRebuilds uint64
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{
		entries: make(map[string]*idxEntry),
		idx:     newMatchIndex(),
	}
}

// Add inserts an entry, reporting whether it was not already present.
func (t *Table) Add(e Entry) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	k := e.key()
	if _, ok := t.entries[k]; ok {
		return false
	}
	ie := &idxEntry{
		e:      e,
		key:    k,
		hopKey: e.Hop.String(),
		cs:     e.Filter.Constraints(),
	}
	t.entries[k] = ie
	t.idx.insert(ie)
	t.invalidateSnapshot()
	return true
}

// Remove deletes the exact entry, reporting whether it was present.
func (t *Table) Remove(e Entry) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	k := e.key()
	ie, ok := t.entries[k]
	if !ok {
		return false
	}
	delete(t.entries, k)
	t.idx.remove(ie)
	t.invalidateSnapshot()
	return true
}

// Len returns the number of entries.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.entries)
}

// All returns a snapshot of every entry in a deterministic order.
func (t *Table) All() []Entry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	keys := make([]string, 0, len(t.entries))
	for k := range t.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Entry, 0, len(keys))
	for _, k := range keys {
		out = append(out, t.entries[k].e)
	}
	return out
}

// MatchingHops returns the deduplicated hops whose filters match the
// notification, excluding the hop the notification arrived from (reverse
// path forwarding on the acyclic overlay).
func (t *Table) MatchingHops(n message.Notification, from wire.Hop) []wire.Hop {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s := t.idx.getScratch()
	defer t.idx.putScratch(s)
	s.hopOut = s.hopOut[:0]
	for _, ie := range t.idx.match(n, s) {
		if ie.e.Hop == from {
			continue
		}
		if _, dup := s.hopSeen[ie.e.Hop]; dup {
			continue
		}
		s.hopSeen[ie.e.Hop] = struct{}{}
		s.hopOut = append(s.hopOut, hopRef{key: ie.hopKey, hop: ie.e.Hop})
	}
	clear(s.hopSeen)
	if len(s.hopOut) == 0 {
		return nil
	}
	sort.Sort(byHopKey(s.hopOut))
	out := make([]wire.Hop, len(s.hopOut))
	for i, r := range s.hopOut {
		out[i] = r.hop
	}
	return out
}

type byHopKey []hopRef

func (h byHopKey) Len() int           { return len(h) }
func (h byHopKey) Less(i, j int) bool { return h[i].key < h[j].key }
func (h byHopKey) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }

// MatchingEntries returns every entry whose filter matches the
// notification, excluding entries pointing back at from. It is
// EachMatchingEntry materialized into a slice.
func (t *Table) MatchingEntries(n message.Notification, from wire.Hop) []Entry {
	var out []Entry
	t.EachMatchingEntry(n, from, func(e *Entry) { out = append(out, *e) })
	return out
}

// EachMatchingEntry calls visit for every entry whose filter matches the
// notification, excluding entries pointing back at from — the same rows in
// the same deterministic order as MatchingEntries, but with no result
// allocation (the broker's publish hot path). The entry pointer is only
// valid during the call; visit must not retain it, modify it, or call
// table methods.
func (t *Table) EachMatchingEntry(n message.Notification, from wire.Hop, visit func(*Entry)) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.idx.eachMatching(n, from, visit)
}

// eachMatching is the shared visit-in-entry-key-order matcher behind
// Table.EachMatchingEntry (under the table's read lock) and
// Snapshot.EachMatchingEntry (lock-free on the immutable copy).
func (x *matchIndex) eachMatching(n message.Notification, from wire.Hop, visit func(*Entry)) {
	s := x.getScratch()
	defer x.putScratch(s)
	matched := x.match(n, s)
	kept := matched[:0]
	for _, ie := range matched {
		if ie.e.Hop != from {
			kept = append(kept, ie)
		}
	}
	if len(kept) == 0 {
		return
	}
	// slices.SortFunc instead of sort.Sort: the interface conversion in
	// sort.Sort heap-allocates per call, which would be the only
	// allocation on this path.
	slices.SortFunc(kept, cmpEntryKey)
	for _, ie := range kept {
		visit(&ie.e)
	}
}

func cmpEntryKey(a, b *idxEntry) int { return strings.Compare(a.key, b.key) }

// MatchingHopsLinear is the pre-index reference implementation of
// MatchingHops: a full scan evaluating every filter. It is retained for the
// parity property test and as the baseline of the BenchmarkMatchIndex*
// micro-benchmarks, and must stay behaviorally identical to MatchingHops.
func (t *Table) MatchingHopsLinear(n message.Notification, from wire.Hop) []wire.Hop {
	t.mu.RLock()
	defer t.mu.RUnlock()
	seen := make(map[string]bool)
	var out []wire.Hop
	for _, ie := range t.entries {
		if ie.e.Hop == from {
			continue
		}
		hk := ie.e.Hop.String()
		if seen[hk] {
			continue
		}
		if ie.e.Filter.Matches(n) {
			seen[hk] = true
			out = append(out, ie.e.Hop)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// MatchingEntriesLinear is the pre-index reference implementation of
// MatchingEntries, retained for parity testing and benchmarking.
func (t *Table) MatchingEntriesLinear(n message.Notification, from wire.Hop) []Entry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []Entry
	for _, ie := range t.entries {
		if ie.e.Hop == from {
			continue
		}
		if ie.e.Filter.Matches(n) {
			out = append(out, ie.e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key() < out[j].key() })
	return out
}

// ClientEntries returns the entries owned by the given client
// subscription.
func (t *Table) ClientEntries(c wire.ClientID, id wire.SubID) []Entry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var sel []*idxEntry
	for _, ie := range t.entries {
		if ie.e.Client == c && ie.e.SubID == id {
			sel = append(sel, ie)
		}
	}
	return sortedEntries(sel)
}

// RemoveClient deletes all entries owned by the given client subscription
// and returns them.
func (t *Table) RemoveClient(c wire.ClientID, id wire.SubID) []Entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	var sel []*idxEntry
	for k, ie := range t.entries {
		if ie.e.Client == c && ie.e.SubID == id {
			sel = append(sel, ie)
			delete(t.entries, k)
			t.idx.remove(ie)
		}
	}
	if len(sel) > 0 {
		t.invalidateSnapshot()
	}
	return sortedEntries(sel)
}

// RemoveHop deletes all entries pointing along the given hop and returns
// them (used when a link or client goes away).
func (t *Table) RemoveHop(h wire.Hop) []Entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	var sel []*idxEntry
	for k, ie := range t.entries {
		if ie.e.Hop == h {
			sel = append(sel, ie)
			delete(t.entries, k)
			t.idx.remove(ie)
		}
	}
	if len(sel) > 0 {
		t.invalidateSnapshot()
	}
	return sortedEntries(sel)
}

// EntriesNotFrom returns the filters of all entries whose hop differs from
// the given hop (the inputs to a forwarding decision toward that hop).
func (t *Table) EntriesNotFrom(h wire.Hop) []Entry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var sel []*idxEntry
	for _, ie := range t.entries {
		if ie.e.Hop != h {
			sel = append(sel, ie)
		}
	}
	return sortedEntries(sel)
}

// sortedEntries orders rows by their cached keys and extracts the entries.
func sortedEntries(sel []*idxEntry) []Entry {
	if len(sel) == 0 {
		return nil
	}
	slices.SortFunc(sel, cmpEntryKey)
	out := make([]Entry, len(sel))
	for i, ie := range sel {
		out[i] = ie.e
	}
	return out
}

// OverlapsHop reports whether any entry from the given hop overlaps the
// filter (used to decide whether a subscription must travel toward an
// advertiser).
func (t *Table) OverlapsHop(f filter.Filter, h wire.Hop) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, ie := range t.entries {
		if ie.e.Hop == h && ie.e.Filter.Overlaps(f) {
			return true
		}
	}
	return false
}

// HopsOverlapping returns the hops having at least one entry overlapping
// f, excluding from.
func (t *Table) HopsOverlapping(f filter.Filter, from wire.Hop) []wire.Hop {
	t.mu.RLock()
	defer t.mu.RUnlock()
	seen := make(map[wire.Hop]struct{})
	var refs []hopRef
	for _, ie := range t.entries {
		if ie.e.Hop == from {
			continue
		}
		if _, dup := seen[ie.e.Hop]; dup {
			continue
		}
		if ie.e.Filter.Overlaps(f) {
			seen[ie.e.Hop] = struct{}{}
			refs = append(refs, hopRef{key: ie.hopKey, hop: ie.e.Hop})
		}
	}
	if len(refs) == 0 {
		return nil
	}
	sort.Sort(byHopKey(refs))
	out := make([]wire.Hop, len(refs))
	for i, r := range refs {
		out[i] = r.hop
	}
	return out
}

// IndexStats returns a snapshot of the match index's shape.
func (t *Table) IndexStats() IndexStats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return IndexStats{
		Entries:  len(t.entries),
		Attrs:    len(t.idx.attrs),
		Postings: t.idx.postings,
		MatchAll: len(t.idx.matchAll),
	}
}
