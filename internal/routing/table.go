// Package routing implements content-based routing tables and the routing
// strategies of Section 2.2: flooding, simple routing, identity-based
// routing, covering-based routing, and merging-based routing.
//
// A routing table holds (filter, hop) pairs: a notification matching the
// filter is forwarded along the hop. Mobile subscriptions additionally
// carry their owning (client, subscription) identity so that the
// relocation protocol of Section 4 can find and redirect the client's old
// delivery path at every broker.
//
// The forwarding decision — MatchingHops / MatchingEntries — is served by a
// predicate-counting match index (see index.go) rather than a linear scan
// over the entries, so its cost scales with the number of satisfied
// predicates instead of the table size.
package routing

import (
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/filter"
	"repro/internal/message"
	"repro/internal/wire"
)

// Entry is one routing table row.
type Entry struct {
	Filter filter.Filter
	Hop    wire.Hop
	// Client/SubID identify the owning client subscription for mobile
	// (per-client) entries. Aggregate entries produced by the routing
	// strategies leave them empty.
	Client wire.ClientID
	SubID  wire.SubID
}

// IsClientEntry reports whether the entry is owned by a specific client
// subscription.
func (e Entry) IsClientEntry() bool { return e.Client != "" }

// key renders a unique identity string for the entry. The index itself
// identifies rows by content hash (see valtab.go) — this rendering
// survives for tests and diagnostics.
func (e Entry) key() string {
	var b strings.Builder
	b.WriteString(e.Filter.ID())
	b.WriteByte('#')
	b.WriteString(e.Hop.String())
	b.WriteByte('#')
	b.WriteString(string(e.Client))
	b.WriteByte('/')
	b.WriteString(string(e.SubID))
	return b.String()
}

// Table is a concurrency-safe routing table backed by a predicate-counting
// match index. The index owns all entry storage (SoA rows, interned hops
// and owners, content-hash identity — see index.go); the table adds
// locking and the copy-on-write snapshot plane.
type Table struct {
	mu  sync.RWMutex
	idx *matchIndex

	// Copy-on-write snapshot state (see snapshot.go): snap caches the
	// last built immutable snapshot, gen counts mutations, and the
	// clone/rebuild counters feed SnapshotStats.
	snap         atomic.Pointer[Snapshot]
	gen          uint64
	snapClones   uint64
	snapRebuilds uint64
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{idx: newMatchIndex()}
}

// Add inserts an entry, reporting whether it was not already present.
func (t *Table) Add(e Entry) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.idx.insertEntry(e) {
		return false
	}
	t.invalidateSnapshot()
	return true
}

// Remove deletes the exact entry, reporting whether it was present.
func (t *Table) Remove(e Entry) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.idx.removeEntry(e) {
		return false
	}
	t.invalidateSnapshot()
	return true
}

// Len returns the number of entries.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.idx.liveRows
}

// All returns a snapshot of every entry in the canonical deterministic
// order.
func (t *Table) All() []Entry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Entry, 0, t.idx.liveRows)
	t.idx.forEachLiveSlot(func(slot int32, _ *row) {
		out = append(out, t.idx.entryAt(slot))
	})
	sortEntriesCanonical(out)
	return out
}

// sortEntriesCanonical orders entries by the shared canonical comparator
// (identity hash, then content) used by every enumeration API.
func sortEntriesCanonical(es []Entry) {
	slices.SortFunc(es, cmpEntryCanonical)
}

// MatchingHops returns the deduplicated hops whose filters match the
// notification, excluding the hop the notification arrived from (reverse
// path forwarding on the acyclic overlay).
func (t *Table) MatchingHops(n message.Notification, from wire.Hop) []wire.Hop {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.idx.matchingHops(n, from)
}

func (x *matchIndex) matchingHops(n message.Notification, from wire.Hop) []wire.Hop {
	s := x.getScratch()
	defer x.putScratch(s)
	s.hopOut = s.hopOut[:0]
	for _, slot := range x.match(n, s) {
		hid := x.rows.at(slot).hopID
		hi := x.hops[hid]
		if hi.hop == from {
			continue
		}
		if _, dup := s.hopSeen[hid]; dup {
			continue
		}
		s.hopSeen[hid] = struct{}{}
		s.hopOut = append(s.hopOut, hopRef{key: hi.key, hop: hi.hop})
	}
	clear(s.hopSeen)
	if len(s.hopOut) == 0 {
		return nil
	}
	sort.Sort(byHopKey(s.hopOut))
	out := make([]wire.Hop, len(s.hopOut))
	for i, r := range s.hopOut {
		out[i] = r.hop
	}
	return out
}

type byHopKey []hopRef

func (h byHopKey) Len() int           { return len(h) }
func (h byHopKey) Less(i, j int) bool { return h[i].key < h[j].key }
func (h byHopKey) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }

// MatchingEntries returns every entry whose filter matches the
// notification, excluding entries pointing back at from. It is
// EachMatchingEntry materialized into a slice.
func (t *Table) MatchingEntries(n message.Notification, from wire.Hop) []Entry {
	var out []Entry
	t.EachMatchingEntry(n, from, func(e *Entry) { out = append(out, *e) })
	return out
}

// EachMatchingEntry calls visit for every entry whose filter matches the
// notification, excluding entries pointing back at from — the same rows in
// the same deterministic order as MatchingEntries, but with no result
// allocation (the broker's publish hot path). The entry pointer is only
// valid during the call; visit must not retain it, modify it, or call
// table methods.
func (t *Table) EachMatchingEntry(n message.Notification, from wire.Hop, visit func(*Entry)) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.idx.eachMatching(n, from, visit)
}

// MatchingHopsLinear is the pre-index reference implementation of
// MatchingHops: a full scan evaluating every filter. It is retained for the
// parity property test and as the baseline of the BenchmarkMatchIndex*
// micro-benchmarks, and must stay behaviorally identical to MatchingHops.
func (t *Table) MatchingHopsLinear(n message.Notification, from wire.Hop) []wire.Hop {
	t.mu.RLock()
	defer t.mu.RUnlock()
	seen := make(map[string]bool)
	var out []wire.Hop
	t.idx.forEachLiveSlot(func(slot int32, r *row) {
		e := t.idx.entryAt(slot)
		if e.Hop == from {
			return
		}
		hk := t.idx.hops[r.hopID].key
		if seen[hk] {
			return
		}
		if e.Filter.Matches(n) {
			seen[hk] = true
			out = append(out, e.Hop)
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// MatchingEntriesLinear is the pre-index reference implementation of
// MatchingEntries, retained for parity testing and benchmarking. It sorts
// with the same canonical comparator as the index path so results compare
// structurally equal.
func (t *Table) MatchingEntriesLinear(n message.Notification, from wire.Hop) []Entry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []Entry
	t.idx.forEachLiveSlot(func(slot int32, _ *row) {
		e := t.idx.entryAt(slot)
		if e.Hop != from && e.Filter.Matches(n) {
			out = append(out, e)
		}
	})
	sortEntriesCanonical(out)
	return out
}

// ClientEntries returns the entries owned by the given client
// subscription. It walks the owner's posting list — O(entries for that
// client), not O(table) — so the relocation protocol's junction detection
// stays scale-independent; the empty owner identity, shared by every
// aggregate entry, keeps the full-scan path (see postings.go).
func (t *Table) ClientEntries(c wire.ClientID, id wire.SubID) []Entry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	iid, ok := t.idx.identID[identKey{c: c, s: id}]
	if !ok {
		return nil
	}
	var out []Entry
	if c == "" {
		t.idx.forEachLiveSlot(func(slot int32, r *row) {
			if r.identID == iid {
				out = append(out, t.idx.entryAt(slot))
			}
		})
	} else {
		for _, sg := range t.idx.identPosts[iid].s {
			// A live generation implies the row is still the one the
			// posting was created for, so its identID is iid.
			if t.idx.rowLive(sg) {
				out = append(out, t.idx.entryAt(sg.slot))
			}
		}
	}
	sortEntriesCanonical(out)
	return out
}

// RemoveClient deletes all entries owned by the given client subscription
// and returns them. O(entries for that client) via the owner posting list;
// the empty owner identity falls back to the scan (see ClientEntries).
func (t *Table) RemoveClient(c wire.ClientID, id wire.SubID) []Entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	iid, ok := t.idx.identID[identKey{c: c, s: id}]
	if !ok {
		return nil
	}
	if c == "" {
		return t.removeSelected(func(r *row) bool { return r.identID == iid })
	}
	return t.removeSlots(t.idx.identPosts[iid].liveSlots(t.idx, nil))
}

// RemoveHop deletes all entries pointing along the given hop and returns
// them (used when a link or client goes away — the tree-repair bulk path).
// O(entries along that hop) via the hop posting list.
func (t *Table) RemoveHop(h wire.Hop) []Entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	hid, ok := t.idx.hopIDs[h]
	if !ok {
		return nil
	}
	return t.removeSlots(t.idx.hopPosts[hid].liveSlots(t.idx, nil))
}

// removeSlots deletes the given live rows, returning the removed entries
// in canonical order. The slot list must be a private snapshot (see
// mutPostings.liveSlots): removals compact posting lists in place.
// Callers hold the write lock.
func (t *Table) removeSlots(slots []int32) []Entry {
	if len(slots) == 0 {
		return nil
	}
	out := make([]Entry, 0, len(slots))
	for _, slot := range slots {
		out = append(out, t.idx.entryAt(slot))
		t.idx.removeSlot(slot)
	}
	t.invalidateSnapshot()
	sortEntriesCanonical(out)
	return out
}

// removeSelected deletes every live row the predicate selects, returning
// the removed entries in canonical order. Callers hold the write lock.
func (t *Table) removeSelected(sel func(r *row) bool) []Entry {
	var slots []int32
	var out []Entry
	t.idx.forEachLiveSlot(func(slot int32, r *row) {
		if sel(r) {
			slots = append(slots, slot)
			out = append(out, t.idx.entryAt(slot))
		}
	})
	for _, slot := range slots {
		t.idx.removeSlot(slot)
	}
	if len(slots) > 0 {
		t.invalidateSnapshot()
	}
	sortEntriesCanonical(out)
	return out
}

// EntriesNotFrom returns the filters of all entries whose hop differs from
// the given hop (the inputs to a forwarding decision toward that hop).
func (t *Table) EntriesNotFrom(h wire.Hop) []Entry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	hid, ok := t.idx.hopIDs[h]
	if !ok {
		hid = -1 // hop never interned: nothing points along it
	}
	var out []Entry
	t.idx.forEachLiveSlot(func(slot int32, r *row) {
		if r.hopID != hid {
			out = append(out, t.idx.entryAt(slot))
		}
	})
	sortEntriesCanonical(out)
	return out
}

// OverlapsHop reports whether any entry from the given hop overlaps the
// filter (used to decide whether a subscription must travel toward an
// advertiser). It walks the hop's posting list with an early exit on the
// first overlap instead of scanning the table.
func (t *Table) OverlapsHop(f filter.Filter, h wire.Hop) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	hid, ok := t.idx.hopIDs[h]
	if !ok {
		return false
	}
	for _, sg := range t.idx.hopPosts[hid].s {
		if t.idx.rowLive(sg) && t.idx.rows.at(sg.slot).f.Overlaps(f) {
			return true
		}
	}
	return false
}

// HopsOverlapping returns the hops having at least one entry overlapping
// f, excluding from. Per hop it walks that hop's posting list and stops at
// the first overlap, so the cost is driven by the interned hop count plus
// the postings actually examined, not the table size.
func (t *Table) HopsOverlapping(f filter.Filter, from wire.Hop) []wire.Hop {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var refs []hopRef
	for hid := range t.idx.hops {
		hi := &t.idx.hops[hid]
		if hi.hop == from {
			continue
		}
		for _, sg := range t.idx.hopPosts[hid].s {
			if t.idx.rowLive(sg) && t.idx.rows.at(sg.slot).f.Overlaps(f) {
				refs = append(refs, hopRef{key: hi.key, hop: hi.hop})
				break
			}
		}
	}
	if len(refs) == 0 {
		return nil
	}
	sort.Sort(byHopKey(refs))
	out := make([]wire.Hop, len(refs))
	for i, r := range refs {
		out[i] = r.hop
	}
	return out
}

// IndexStats returns a snapshot of the match index's shape.
func (t *Table) IndexStats() IndexStats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return IndexStats{
		Entries:       t.idx.liveRows,
		Attrs:         len(t.idx.attrs.s),
		Postings:      t.idx.postings,
		MatchAll:      t.idx.matchAll.liveCount(),
		IdentPostings: t.idx.identPostLive,
		HopPostings:   t.idx.hopPostLive,
	}
}
