package routing

import (
	"slices"
	"sort"
)

// Sublinear interval store for ordered constraints (<, <=, >, >=, range).
//
// The old index kept one flat slice of intervals sorted by lower bound and
// probed it linearly up to the first lower bound above the value — O(k +
// entries with lo ≤ v), which degenerates to a full scan for workloads
// whose lower bounds sit left of the probe value. At 10⁶ intervals that is
// the match path's dominant cost.
//
// ivlist replaces it with the logarithmic method (Bentley–Saxe) over
// static sorted runs:
//
//   - inserts buffer in a small pending slice (linear probe, bounded by
//     ivPendCap);
//   - a full buffer is sorted into a new immutable run, which greedily
//     merges with any existing run of comparable size, keeping O(log n)
//     runs with geometrically increasing sizes at amortized O(log n)
//     insert cost;
//   - each run stores its intervals as flat parallel slices sorted by
//     lower bound plus a max-upper-bound segment tree, so one probe costs
//     O(log n + matches): binary search bounds the prefix with lo ≤ v, and
//     the tree descent skips every subtree whose maximum upper bound is
//     below v.
//
// Deletes are logical: the row-generation check at bump time invalidates
// postings of removed rows, and run merges/compactions drop them
// physically. Runs are immutable once built, so snapshots share them by
// pointer; only the run directory and the pending buffer need the
// copy-on-write stamps.
type ivOrd interface {
	~int64 | ~float64 | ~string
}

const (
	ivHasLo uint8 = 1 << iota
	ivLoInc
	ivHasHi
	ivHiInc
)

// ivPendCap bounds the linearly-probed pending buffer and sets the base
// run size for the logarithmic method.
const ivPendCap = 128

type ivEntry[T ivOrd] struct {
	lo, hi T
	flags  uint8
	sg     slotGen
}

func (e *ivEntry[T]) match(v T) bool {
	if e.flags&ivHasLo != 0 && (e.lo > v || (e.lo == v && e.flags&ivLoInc == 0)) {
		return false
	}
	if e.flags&ivHasHi != 0 && (e.hi < v || (e.hi == v && e.flags&ivHiInc == 0)) {
		return false
	}
	return true
}

// matchInclusive is the probe rule for float NaN values, which
// Value.Compare orders equal to everything: a bound admits NaN exactly
// when it is inclusive (or absent). Kept identical to the linear
// reference semantics of Constraint.Matches.
func (e *ivEntry[T]) matchInclusive() bool {
	if e.flags&ivHasLo != 0 && e.flags&ivLoInc == 0 {
		return false
	}
	if e.flags&ivHasHi != 0 && e.flags&ivHiInc == 0 {
		return false
	}
	return true
}

// ivRun is one immutable sorted run: parallel slices ordered by
// (has-lower-bound, lower bound), with a 1-indexed max segment tree over
// the upper bounds ("no upper bound" dominates every value). The
// no-upper-bound flag lives in a bitset beside the plain max array: a
// {max, inf} node struct would pad to double the tree's footprint for
// the numeric kinds.
type ivRun[T ivOrd] struct {
	lo, hi []T
	flags  []uint8
	sg     []slotGen
	tree   []T      // max upper bound per node
	inf    []uint64 // bitset: subtree holds an interval without an upper bound
	treeW  int
}

func (r *ivRun[T]) infBit(i int) bool { return r.inf[i>>6]&(1<<(i&63)) != 0 }

type ivlist[T ivOrd] struct {
	runs cowslice[*ivRun[T]] // kept sorted by size, largest first
	pend cowslice[ivEntry[T]]
	live int
	dead int // logically deleted entries still present in runs/pend
}

func ivEntryLess[T ivOrd](a, b ivEntry[T]) bool {
	al, bl := a.flags&ivHasLo != 0, b.flags&ivHasLo != 0
	if al != bl {
		return !al // unbounded-below sorts first
	}
	return al && a.lo < b.lo
}

func buildRun[T ivOrd](ents []ivEntry[T]) *ivRun[T] {
	n := len(ents)
	r := &ivRun[T]{
		lo:    make([]T, n),
		hi:    make([]T, n),
		flags: make([]uint8, n),
		sg:    make([]slotGen, n),
	}
	for i, e := range ents {
		r.lo[i], r.hi[i], r.flags[i], r.sg[i] = e.lo, e.hi, e.flags, e.sg
	}
	r.buildTree()
	return r
}

func (r *ivRun[T]) buildTree() {
	n := len(r.sg)
	w := 1
	for w < n {
		w *= 2
	}
	r.treeW = w
	r.tree = make([]T, 2*w)
	r.inf = make([]uint64, (2*w+63)/64)
	for i := 0; i < n; i++ {
		r.tree[w+i] = r.hi[i]
		if r.flags[i]&ivHasHi == 0 {
			r.inf[(w+i)>>6] |= 1 << ((w + i) & 63)
		}
	}
	for i := w - 1; i >= 1; i-- {
		if r.infBit(2*i) || r.infBit(2*i+1) {
			r.inf[i>>6] |= 1 << (i & 63)
		}
		if r.tree[2*i+1] > r.tree[2*i] {
			r.tree[i] = r.tree[2*i+1]
		} else {
			r.tree[i] = r.tree[2*i]
		}
	}
}

func (r *ivRun[T]) entry(i int) ivEntry[T] {
	return ivEntry[T]{lo: r.lo[i], hi: r.hi[i], flags: r.flags[i], sg: r.sg[i]}
}

func (r *ivRun[T]) probe(v T, s *scratch, x *matchIndex) {
	// Prefix of candidates: every interval whose lower bound admits v sits
	// before the first entry with lo > v (unbounded-below entries first).
	ub := sort.Search(len(r.sg), func(i int) bool {
		return r.flags[i]&ivHasLo != 0 && r.lo[i] > v
	})
	if ub > 0 {
		r.descend(1, 0, r.treeW, ub, v, s, x)
	}
}

// descend reports every interval in [0, ub) whose upper bound admits v,
// pruning subtrees whose maximum upper bound is below v.
func (r *ivRun[T]) descend(node, nlo, nhi, ub int, v T, s *scratch, x *matchIndex) {
	if nlo >= ub {
		return
	}
	if !r.infBit(node) && r.tree[node] < v {
		return
	}
	if nhi-nlo == 1 {
		e := r.entry(nlo)
		if e.match(v) {
			s.bump(e.sg, x)
		}
		return
	}
	mid := (nlo + nhi) / 2
	r.descend(2*node, nlo, mid, ub, v, s, x)
	if ub > mid {
		r.descend(2*node+1, mid, nhi, ub, v, s, x)
	}
}

func (l *ivlist[T]) insert(x *matchIndex, e ivEntry[T]) {
	pd := l.pend.own(x.epoch)
	*pd = append(*pd, e)
	l.live++
	if len(*pd) >= ivPendCap {
		l.promote(x)
	}
}

// removeLazy records a deletion; the row-generation bump invalidates the
// posting wherever it sits. A full compaction reclaims space when dead
// entries outnumber live ones.
func (l *ivlist[T]) removeLazy(x *matchIndex) {
	l.live--
	l.dead++
	if l.dead > l.live && l.dead > 32 {
		l.compact(x)
	}
}

// promote turns the pending buffer into a run and merges runs of
// comparable size (the logarithmic method's amortization step).
func (l *ivlist[T]) promote(x *matchIndex) {
	pd := l.pend.own(x.epoch)
	ents := make([]ivEntry[T], 0, len(*pd))
	for i := range *pd {
		if x.rowLive((*pd)[i].sg) {
			ents = append(ents, (*pd)[i])
		}
	}
	l.dead -= len(*pd) - len(ents)
	*pd = (*pd)[:0]
	if len(ents) == 0 {
		return
	}
	slices.SortFunc(ents, func(a, b ivEntry[T]) int {
		if ivEntryLess(a, b) {
			return -1
		}
		if ivEntryLess(b, a) {
			return 1
		}
		return 0
	})
	run := buildRun(ents)
	rs := l.runs.own(x.epoch)
	for len(*rs) > 0 && len((*rs)[len(*rs)-1].sg) <= 2*len(run.sg) {
		run = l.mergeRuns(x, (*rs)[len(*rs)-1], run)
		*rs = (*rs)[:len(*rs)-1]
	}
	if len(run.sg) > 0 {
		*rs = append(*rs, run)
		slices.SortFunc(*rs, func(a, b *ivRun[T]) int { return len(b.sg) - len(a.sg) })
	}
}

// mergeRuns linearly merges two sorted runs, dropping generation-stale
// entries (the physical half of lazy deletion).
func (l *ivlist[T]) mergeRuns(x *matchIndex, a, b *ivRun[T]) *ivRun[T] {
	ents := make([]ivEntry[T], 0, len(a.sg)+len(b.sg))
	i, j := 0, 0
	for i < len(a.sg) || j < len(b.sg) {
		var e ivEntry[T]
		switch {
		case j >= len(b.sg):
			e = a.entry(i)
			i++
		case i >= len(a.sg):
			e = b.entry(j)
			j++
		case ivEntryLess(b.entry(j), a.entry(i)):
			e = b.entry(j)
			j++
		default:
			e = a.entry(i)
			i++
		}
		if x.rowLive(e.sg) {
			ents = append(ents, e)
		}
	}
	l.dead -= len(a.sg) + len(b.sg) - len(ents)
	return buildRun(ents)
}

// compact merges everything (runs and pending) into a single run.
func (l *ivlist[T]) compact(x *matchIndex) {
	rs := l.runs.own(x.epoch)
	pd := l.pend.own(x.epoch)
	var ents []ivEntry[T]
	for _, r := range *rs {
		for i := range r.sg {
			if x.rowLive(r.sg[i]) {
				ents = append(ents, r.entry(i))
			}
		}
	}
	for i := range *pd {
		if x.rowLive((*pd)[i].sg) {
			ents = append(ents, (*pd)[i])
		}
	}
	*rs = (*rs)[:0]
	*pd = (*pd)[:0]
	l.dead = 0
	l.live = len(ents)
	if len(ents) == 0 {
		return
	}
	slices.SortFunc(ents, func(a, b ivEntry[T]) int {
		if ivEntryLess(a, b) {
			return -1
		}
		if ivEntryLess(b, a) {
			return 1
		}
		return 0
	})
	*rs = append(*rs, buildRun(ents))
}

func (l *ivlist[T]) probe(v T, s *scratch, x *matchIndex) {
	for _, r := range l.runs.s {
		r.probe(v, s, x)
	}
	for i := range l.pend.s {
		e := &l.pend.s[i]
		if e.match(v) {
			s.bump(e.sg, x)
		}
	}
}

// probeInclusive implements the NaN probe value path (see matchInclusive).
func (l *ivlist[T]) probeInclusive(s *scratch, x *matchIndex) {
	for _, r := range l.runs.s {
		for i := range r.sg {
			e := r.entry(i)
			if e.matchInclusive() {
				s.bump(e.sg, x)
			}
		}
	}
	for i := range l.pend.s {
		e := &l.pend.s[i]
		if e.matchInclusive() {
			s.bump(e.sg, x)
		}
	}
}
