package routing

import (
	"testing"

	"repro/internal/filter"
)

func idsOf(fs []filter.Filter) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.ID()
	}
	return out
}

func TestCoverIndexAddCoveredAndRetract(t *testing.T) {
	x := NewCoverIndex()
	wide := mkFilter(`p in [0, 100]`)
	narrow := mkFilter(`p in [10, 20]`)

	d := x.Add(narrow)
	if len(d.Forward) != 1 || !d.Forward[0].Equal(narrow) || len(d.Retract) != 0 {
		t.Fatalf("first add: %+v", d)
	}
	// A wider filter retracts the narrow one and forwards itself.
	d = x.Add(wide)
	if len(d.Forward) != 1 || !d.Forward[0].Equal(wide) {
		t.Fatalf("wide add forward: %+v", d)
	}
	if len(d.Retract) != 1 || !d.Retract[0].Equal(narrow) {
		t.Fatalf("wide add retract: %+v", d)
	}
	// A covered newcomer changes nothing.
	mid := mkFilter(`p in [5, 50]`)
	if d = x.Add(mid); !d.Empty() {
		t.Fatalf("covered add must be silent: %+v", d)
	}
	if got := x.Forwarded(); len(got) != 1 || !got[0].Equal(wide) {
		t.Fatalf("forwarded = %v", got)
	}
	// Removing the wide filter re-forwards the widest survivor chain:
	// mid covers narrow, so only mid comes back.
	d = x.Remove(wide)
	if len(d.Retract) != 1 || !d.Retract[0].Equal(wide) {
		t.Fatalf("remove retract: %+v", d)
	}
	if len(d.Forward) != 1 || !d.Forward[0].Equal(mid) {
		t.Fatalf("remove must re-forward mid only: %+v", d)
	}
	if x.Len() != 2 || len(x.Forwarded()) != 1 {
		t.Fatalf("len=%d forwarded=%v", x.Len(), x.Forwarded())
	}
}

func TestCoverIndexRefcount(t *testing.T) {
	x := NewCoverIndex()
	f := mkFilter(`a = 1`)
	if d := x.Add(f); len(d.Forward) != 1 {
		t.Fatal("first ref must forward")
	}
	if d := x.Add(f); !d.Empty() {
		t.Fatal("second ref must be silent")
	}
	if d := x.Remove(f); !d.Empty() {
		t.Fatal("first unref must be silent")
	}
	if d := x.Remove(f); len(d.Retract) != 1 {
		t.Fatal("last unref must retract")
	}
	if d := x.Remove(f); !d.Empty() {
		t.Fatal("removing an unknown filter must be a no-op")
	}
	if x.Len() != 0 {
		t.Fatalf("len = %d", x.Len())
	}
}

// TestCoverIndexCoveredWitnessRemoval exercises the non-transitive chain:
// a covered filter may be the only witness covering a third one, so its
// removal must re-examine (and here re-forward) the dependents even
// though it was never forwarded itself.
func TestCoverIndexCoveredWitnessRemoval(t *testing.T) {
	x := NewCoverIndex()
	a := mkFilter(`p in [0, 100]`)
	b := mkFilter(`p in [10, 50]`)
	c := mkFilter(`p in [20, 30]`)
	x.Add(a)
	x.Add(b) // covered by a
	x.Add(c) // covered by both
	if got := idsOf(x.Forwarded()); len(got) != 1 || got[0] != a.ID() {
		t.Fatalf("forwarded = %v", got)
	}
	// Removing covered b must not uncover c (a still covers it).
	if d := x.Remove(b); !d.Empty() {
		t.Fatalf("removing covered b with a alive: %+v", d)
	}
	x.Add(b)
	// Removing a re-forwards b only; c stays covered by b.
	d := x.Remove(a)
	if len(d.Forward) != 1 || !d.Forward[0].Equal(b) {
		t.Fatalf("remove a: %+v", d)
	}
}

// TestCoverIndexMutualCoverTieBreak pins the deterministic representative
// of an equivalence class: `x = 5` and `x in {5}` accept the same set, and
// the smaller canonical ID must win regardless of arrival order.
func TestCoverIndexMutualCoverTieBreak(t *testing.T) {
	eq := mkFilter(`x = 5`)
	in := mkFilter(`x in {5}`)
	if !eq.Covers(in) || !in.Covers(eq) {
		t.Skip("test premise: filters must mutually cover")
	}
	want := eq.ID()
	if in.ID() < want {
		want = in.ID()
	}
	for _, order := range [][2]filter.Filter{{eq, in}, {in, eq}} {
		x := NewCoverIndex()
		x.Add(order[0])
		x.Add(order[1])
		got := x.Forwarded()
		if len(got) != 1 || got[0].ID() != want {
			t.Errorf("order %v/%v: forwarded %v, want [%s]",
				order[0], order[1], idsOf(got), want)
		}
	}
}

func TestCoverIndexSignatureBuckets(t *testing.T) {
	x := NewCoverIndex()
	// Disjoint attribute sets land in different buckets; adding across
	// them must save pairwise checks.
	for _, src := range []string{`a = 1`, `a = 2`, `b = 1`, `b = 2`, `c < 9`} {
		x.Add(mkFilter(src))
	}
	s := x.Stats()
	if s.Items != 5 || s.Forwarded != 5 {
		t.Fatalf("stats = %+v", s)
	}
	if s.CoverChecksSaved == 0 {
		t.Error("bucketed lookup saved no checks across disjoint attr sets")
	}
	if s.CoverChecks == 0 {
		t.Error("same-bucket pairs must still be checked")
	}
}
