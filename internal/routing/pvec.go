package routing

// Copy-on-write containers for the match index.
//
// The index must hand out immutable snapshots (snapshot.go) without paying
// an O(table) structural copy per snapshot at 10⁶ entries. Every mutable
// container in the index is therefore either append-only (safe to share by
// construction) or one of the two epoch-stamped copy-on-write shapes here:
//
//   - pvec[T]: a paged vector. Elements live in fixed-size pages; sharing a
//     pvec is a shallow struct copy, and the first write to a page after a
//     share copies just that page (and, once per epoch, the page-pointer
//     slice). A mutation epoch therefore costs O(pages touched), not O(n).
//   - cowslice[T]: a small flat slice with the same stamp discipline,
//     for containers that stay small (free lists, attribute directories).
//
// The stamp protocol: the owning index carries an epoch counter that is
// bumped every time a snapshot is taken. A page (or slice) whose stamp
// equals the current epoch is exclusively owned and may be written in
// place; any other stamp means the data may be visible to a snapshot and
// must be copied before the write. Snapshots themselves are never written,
// so they need no stamps of their own.
const (
	pageShift = 9
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

// pvec is a paged vector of T with epoch-stamped copy-on-write pages.
// Reads go through at; writes through w/grow, which perform the COW.
//
// Page stamps live in a slice parallel to the page pointers rather than
// inside the page itself: an in-page header would push the common page
// sizes just past an allocator size class (a [512]row page is exactly
// 40960 bytes, a large allocation rounded to 8 KiB pages — one uint64 of
// header would waste 8 KiB per page, ~20% of the row storage at 10⁶
// entries). The stamps slice is owned together with the page-pointer
// slice, so the sharing discipline is unchanged.
type pvec[T any] struct {
	pages  []*[pageSize]T
	stamps []uint64 // per-page ownership stamps, parallel to pages
	n      int
	stamp  uint64 // ownership stamp of the pages/stamps slices themselves
}

func (v *pvec[T]) len() int { return v.n }

// at returns a read-only pointer to element i. Callers must not write
// through it: the page may be shared with an immutable snapshot.
func (v *pvec[T]) at(i int32) *T {
	return &v.pages[i>>pageShift][i&pageMask]
}

// ownPages makes the page-pointer and stamp slices writable in the
// current epoch.
func (v *pvec[T]) ownPages(epoch uint64) {
	if v.stamp != epoch {
		v.pages = append([]*[pageSize]T(nil), v.pages...)
		v.stamps = append([]uint64(nil), v.stamps...)
		v.stamp = epoch
	}
}

// w returns a writable pointer to element i, copying the containing page
// if it may be shared with a snapshot.
func (v *pvec[T]) w(i int32, epoch uint64) *T {
	v.ownPages(epoch)
	pi := i >> pageShift
	if v.stamps[pi] != epoch {
		np := new([pageSize]T)
		*np = *v.pages[pi]
		v.pages[pi] = np
		v.stamps[pi] = epoch
	}
	return &v.pages[pi][i&pageMask]
}

// grow appends a zero element and returns its index; write it via w.
func (v *pvec[T]) grow(epoch uint64) int32 {
	i := int32(v.n)
	v.ownPages(epoch)
	if int(i>>pageShift) == len(v.pages) {
		v.pages = append(v.pages, new([pageSize]T))
		v.stamps = append(v.stamps, epoch)
	}
	v.n++
	return i
}

// cowslice is a flat slice with the same stamp discipline as pvec pages:
// own() must be called (and returns the writable slice pointer) before any
// in-place mutation or append.
type cowslice[T any] struct {
	s     []T
	stamp uint64
}

func (c *cowslice[T]) own(epoch uint64) *[]T {
	if c.stamp != epoch {
		c.s = append(make([]T, 0, len(c.s)+4), c.s...)
		c.stamp = epoch
	}
	return &c.s
}
