package routing

import (
	"sync"

	"repro/internal/filter"
	"repro/internal/message"
	"repro/internal/wire"
)

// matchIndex is a predicate-counting index over the table's entries: the
// constraints of every filter are grouped by (attribute, operator class)
// into typed posting lists, and matching a notification counts, per entry,
// how many of its constraints are satisfied. An entry matches exactly when
// its count reaches its constraint total — the classic counting algorithm —
// so the per-notification cost is driven by the number of satisfied
// predicates, not by the number of table entries.
//
// Storage is struct-of-arrays, sized for 10⁶ entries: rows live in a paged
// vector indexed by int32 slot, hops and owner identities are interned
// once into append-only side tables, and every posting is an 8-byte
// slot+generation pair. There are no per-entry heap nodes and no rendered
// key strings; row identity is a 64-bit content hash resolved through an
// open-addressed identity table.
//
// Posting lists by operator class:
//
//   - equality (=, in):      open-addressed buckets keyed by operand value
//   - ordered (<, <=, >, >=, range): sorted static runs with max-upper-bound
//     segment trees (see ivlist.go), O(log n + k) per probe
//   - string prefix:         per-length hash lookup (see prefixTable)
//   - exists:                a flat list, satisfied by attribute presence
//   - everything else (!=, suffix, contains): a per-attribute scan list
//     evaluated directly against the attribute value
//
// Removal is logical-first: freeing a row bumps its generation, which
// invalidates its postings everywhere at once; posting storage is
// reclaimed by per-container amortized compaction. The index is maintained
// incrementally by insertEntry/removeSlot and is not concurrency-safe on
// its own; Table's lock covers it. Snapshots are shallow struct copies
// under the copy-on-write epoch protocol of pvec.go — see share().
type matchIndex struct {
	// epoch is the copy-on-write ownership stamp: bumped by share(), so
	// the first write to any container after a snapshot copies what the
	// snapshot can see. Starts at 1 so zero-valued stamps are never owned.
	epoch    uint64
	rows     pvec[row]
	free     cowslice[int32]
	matchAll postlist
	attrs    cowslice[attrRef] // per-attribute indexes, sorted by name
	postings int               // live posting-list entries (one per constraint)
	liveRows int

	// Mutation-plane state: written in place under the table lock and
	// never read on the match path, so snapshots carry stale copies of
	// these fields harmlessly.
	ident   identTable
	hops    []hopInfo // append-only hop intern table
	hopIDs  map[wire.Hop]int32
	idents  []identKey // append-only owner intern table
	identID map[identKey]int32

	// identPosts / hopPosts are the per-owner and per-hop slot posting
	// lists behind the O(k) enumeration paths (ClientEntries,
	// RemoveClient, RemoveHop, hop-overlap checks) — see postings.go.
	// Indexed by intern id, parallel to idents/hops. The empty owner
	// identity is never posted: every aggregate entry shares it, so its
	// list would be the table over again (those callers keep the scan
	// path). identPostLive/hopPostLive aggregate the live posting counts
	// so IndexStats stays O(1) and leak tests can assert drain-to-zero.
	identPosts    []mutPostings
	hopPosts      []mutPostings
	identPostLive int
	hopPostLive   int

	pool *sync.Pool // *scratch; shared with snapshots (pools must not be copied)
}

// row is one table entry in SoA form: ~80 B plus its postings, versus the
// pointer-heavy idxEntry + cached key strings of the old layout. The
// counting fields lead so the match hot path touches the first cache line.
type row struct {
	hash    uint64 // entryIdentHash of the entry
	hopID   int32  // intern id; -1 marks a freed row
	identID int32
	total   int32 // constraint count
	gen     uint32
	f       filter.Filter
}

type hopInfo struct {
	hop wire.Hop
	key string // hop.String(), rendered once: hop-ordered outputs sort by it
}

type identKey struct {
	c wire.ClientID
	s wire.SubID
}

// attrRef pairs an indexed attribute name with its posting lists; the
// matchIndex keeps these sorted by name for the merge-based match walk.
type attrRef struct {
	name string
	ai   *attrIndex
}

type attrIndex struct {
	stamp     uint64 // copy-on-write ownership stamp (see attrW)
	live      int32  // live constraints under this attribute
	eq        valTable
	prefixes  prefixTable
	exists    postlist
	anyString postlist // empty-prefix constraints: every string value matches
	scan      scanlist
	ivI       ivlist[int64]
	ivF       ivlist[float64]
	ivS       ivlist[string]
}

func newMatchIndex() *matchIndex {
	return &matchIndex{
		epoch:   1,
		hopIDs:  make(map[wire.Hop]int32),
		identID: make(map[identKey]int32),
		pool:    &sync.Pool{},
	}
}

// share returns an immutable view of the index for a snapshot: a shallow
// struct copy, after which the live index's epoch moves on so its next
// write to any shared page or slice copies it first. O(1) plus the struct
// copy, independent of table size.
func (x *matchIndex) share() *matchIndex {
	c := *x
	x.epoch++
	return &c
}

// rowLive reports whether a posting still references a live row: freeing a
// row bumps its generation, invalidating every posting created for it.
func (x *matchIndex) rowLive(sg slotGen) bool {
	return x.rows.at(sg.slot).gen == sg.gen
}

func (x *matchIndex) fillEntry(slot int32, e *Entry) {
	r := x.rows.at(slot)
	id := x.idents[r.identID]
	e.Filter = r.f
	e.Hop = x.hops[r.hopID].hop
	e.Client = id.c
	e.SubID = id.s
}

func (x *matchIndex) entryAt(slot int32) Entry {
	var e Entry
	x.fillEntry(slot, &e)
	return e
}

func (x *matchIndex) forEachLiveSlot(fn func(slot int32, r *row)) {
	for i := 0; i < x.rows.len(); i++ {
		r := x.rows.at(int32(i))
		if r.hopID >= 0 {
			fn(int32(i), r)
		}
	}
}

// findAttr binary-searches the sorted attribute list for name, returning
// its index, or the insertion point and false.
func (x *matchIndex) findAttr(name string) (int, bool) {
	attrs := x.attrs.s
	lo, hi := 0, len(attrs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if attrs[mid].name < name {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(attrs) && attrs[lo].name == name
}

// attrW returns the attribute index at position i ready for mutation,
// cloning its top-level struct if a snapshot may share it (the inner
// containers copy-on-write themselves).
func (x *matchIndex) attrW(i int) *attrIndex {
	as := x.attrs.own(x.epoch)
	ai := (*as)[i].ai
	if ai.stamp != x.epoch {
		c := *ai
		c.stamp = x.epoch
		(*as)[i].ai = &c
		ai = (*as)[i].ai
	}
	return ai
}

func (x *matchIndex) internHop(h wire.Hop) int32 {
	if id, ok := x.hopIDs[h]; ok {
		return id
	}
	id := int32(len(x.hops))
	x.hops = append(x.hops, hopInfo{hop: h, key: h.String()})
	x.hopPosts = append(x.hopPosts, mutPostings{})
	x.hopIDs[h] = id
	return id
}

func (x *matchIndex) internIdent(c wire.ClientID, s wire.SubID) int32 {
	k := identKey{c: c, s: s}
	if id, ok := x.identID[k]; ok {
		return id
	}
	id := int32(len(x.idents))
	x.idents = append(x.idents, k)
	x.identPosts = append(x.identPosts, mutPostings{})
	x.identID[k] = id
	return id
}

// lookupSlot finds the row holding exactly this entry, or -1.
func (x *matchIndex) lookupSlot(e Entry, hash uint64) int32 {
	return x.ident.lookup(hash, func(slot int32) bool {
		r := x.rows.at(slot)
		if r.hash != hash || r.hopID < 0 || x.hops[r.hopID].hop != e.Hop {
			return false
		}
		if id := x.idents[r.identID]; id.c != e.Client || id.s != e.SubID {
			return false
		}
		return identFilterEqual(r.f, e.Filter)
	})
}

// ---------------------------------------------------------------------------
// Maintenance: insert / remove.
// ---------------------------------------------------------------------------

// insertEntry adds the entry, reporting whether it was not already present.
func (x *matchIndex) insertEntry(e Entry) bool {
	h := entryIdentHash(e)
	if x.lookupSlot(e, h) >= 0 {
		return false
	}
	hopID := x.internHop(e.Hop)
	identID := x.internIdent(e.Client, e.SubID)
	var slot int32
	if fs := x.free.own(x.epoch); len(*fs) > 0 {
		slot = (*fs)[len(*fs)-1]
		*fs = (*fs)[:len(*fs)-1]
	} else {
		slot = x.rows.grow(x.epoch)
	}
	r := x.rows.w(slot, x.epoch)
	gen := r.gen // survives free/reuse; postings carry it
	*r = row{hash: h, hopID: hopID, identID: identID, total: int32(e.Filter.Len()), gen: gen, f: e.Filter}
	x.liveRows++
	sg := slotGen{slot: slot, gen: gen}
	x.hopPosts[hopID].add(sg)
	x.hopPostLive++
	if e.Client != "" {
		x.identPosts[identID].add(sg)
		x.identPostLive++
	}
	if e.Filter.Len() == 0 {
		x.matchAll.add(x, sg)
	} else {
		for ci := 0; ci < e.Filter.Len(); ci++ {
			c := e.Filter.At(ci)
			i, ok := x.findAttr(c.Attr)
			if !ok {
				as := x.attrs.own(x.epoch)
				*as = append(*as, attrRef{})
				copy((*as)[i+1:], (*as)[i:])
				(*as)[i] = attrRef{name: c.Attr, ai: &attrIndex{stamp: x.epoch}}
			}
			ai := x.attrW(i)
			ai.live++
			ai.insert(x, sg, c)
			x.postings++
		}
	}
	x.ident.insert(x, h, slot)
	return true
}

// removeEntry deletes the exact entry, reporting whether it was present.
func (x *matchIndex) removeEntry(e Entry) bool {
	slot := x.lookupSlot(e, entryIdentHash(e))
	if slot < 0 {
		return false
	}
	x.removeSlot(slot)
	return true
}

// removeSlot frees a live row: the generation bump first (so compactions
// running during posting removal already see the row as dead), then the
// per-constraint accounting, then the slot goes back on the free list.
func (x *matchIndex) removeSlot(slot int32) {
	rd := x.rows.at(slot)
	f := rd.f
	hash := rd.hash
	// Captured before the scrub below: rd may alias rw when the page is
	// already owned at the current epoch.
	hopID := rd.hopID
	identID := rd.identID
	x.ident.remove(hash, slot)
	rw := x.rows.w(slot, x.epoch)
	rw.gen++
	rw.hopID = -1
	rw.identID = -1
	rw.total = 0
	rw.hash = 0
	rw.f = filter.Filter{} // release the filter's backing storage
	x.liveRows--
	// The generation bump above already invalidated the enumeration
	// postings; this is accounting plus amortized compaction.
	x.hopPosts[hopID].removeLazy(x)
	x.hopPostLive--
	if x.idents[identID].c != "" {
		x.identPosts[identID].removeLazy(x)
		x.identPostLive--
	}
	if f.Len() == 0 {
		x.matchAll.removeLazy(x)
	} else {
		for ci := 0; ci < f.Len(); ci++ {
			c := f.At(ci)
			if i, ok := x.findAttr(c.Attr); ok {
				ai := x.attrW(i)
				ai.live--
				ai.remove(x, c)
				x.postings--
				if ai.live == 0 {
					as := x.attrs.own(x.epoch)
					*as = append((*as)[:i], (*as)[i+1:]...)
				}
			}
		}
	}
	fs := x.free.own(x.epoch)
	*fs = append(*fs, slot)
}

// rebuild constructs a compact index over the live rows (fresh slots, no
// free-list holes, posting garbage dropped). Used by the snapshot policy
// when churn has left the row vector more than half holes; the rebuilt
// index replaces the live one.
func (x *matchIndex) rebuild() *matchIndex {
	nx := newMatchIndex()
	var e Entry
	x.forEachLiveSlot(func(slot int32, _ *row) {
		x.fillEntry(slot, &e)
		nx.insertEntry(e)
	})
	return nx
}

// isNaNValue reports whether v is a float NaN. NaN operands need special
// routing: NaN is never Equal to anything (so an eq posting would be dead
// weight), and Value.Compare treats NaN as equal to everything, which the
// native-ordered interval runs cannot represent.
func isNaNValue(v message.Value) bool {
	return v.Kind() == message.KindFloat && v.FloatVal() != v.FloatVal()
}

// orderedBoundNaN reports whether an ordered constraint carries a NaN
// bound; such constraints are evaluated on the scan list instead of the
// interval runs so they keep Constraint.Matches' exact semantics.
func orderedBoundNaN(c filter.Constraint) bool {
	if c.Op == filter.OpRange {
		return isNaNValue(c.Lo) || isNaNValue(c.Hi)
	}
	return isNaNValue(c.Value)
}

// eachIndexableInMember visits the members of an in-constraint that get eq
// postings: NaN members (which can never match) and duplicates (which would
// double-count a single constraint) are skipped. Insert and remove share
// this walk so their posting sets cannot diverge.
func eachIndexableInMember(c filter.Constraint, fn func(v message.Value)) {
	for i, v := range c.Values {
		if isNaNValue(v) {
			continue
		}
		dup := false
		for j := 0; j < i; j++ {
			if c.Values[j] == v {
				dup = true
				break
			}
		}
		if !dup {
			fn(v)
		}
	}
}

// orderedKind returns the interval-run kind an ordered constraint indexes
// under, or KindInvalid when it must fall back to the scan list (non-
// orderable operand kinds, or a range whose bounds disagree on kind — the
// scan list reproduces Constraint.Matches exactly for those).
func orderedKind(c filter.Constraint) message.Kind {
	if c.Op == filter.OpRange {
		k := c.Lo.Kind()
		if k != c.Hi.Kind() {
			return message.KindInvalid
		}
		switch k {
		case message.KindInt, message.KindFloat, message.KindString:
			return k
		}
		return message.KindInvalid
	}
	switch k := c.Value.Kind(); k {
	case message.KindInt, message.KindFloat, message.KindString:
		return k
	}
	return message.KindInvalid
}

// ordFlagsBounds extracts the interval form of an ordered constraint.
func ordFlags(c filter.Constraint) uint8 {
	switch c.Op {
	case filter.OpLT:
		return ivHasHi
	case filter.OpLE:
		return ivHasHi | ivHiInc
	case filter.OpGT:
		return ivHasLo
	case filter.OpGE:
		return ivHasLo | ivLoInc
	default: // OpRange
		return ivHasLo | ivLoInc | ivHasHi | ivHiInc
	}
}

func ordBounds(c filter.Constraint) (lo, hi message.Value) {
	if c.Op == filter.OpRange {
		return c.Lo, c.Hi
	}
	switch c.Op {
	case filter.OpLT, filter.OpLE:
		return message.Value{}, c.Value
	default: // OpGT, OpGE
		return c.Value, message.Value{}
	}
}

func (ai *attrIndex) insert(x *matchIndex, sg slotGen, c filter.Constraint) {
	switch c.Op {
	case filter.OpEQ:
		if isNaNValue(c.Value) {
			return // never matches; no posting keeps the entry incompletable
		}
		bits, str := eqPayload(c.Value)
		ai.eq.add(x, c.Value.Kind(), bits, str, sg)
	case filter.OpIn:
		// One posting per distinct set member; a notification value equals
		// at most one member, so the constraint still counts at most once.
		eachIndexableInMember(c, func(v message.Value) {
			bits, str := eqPayload(v)
			ai.eq.add(x, v.Kind(), bits, str, sg)
		})
	case filter.OpExists:
		ai.exists.add(x, sg)
	case filter.OpLT, filter.OpLE, filter.OpGT, filter.OpGE, filter.OpRange:
		if orderedBoundNaN(c) {
			ai.scan.add(x, sg, c)
			return
		}
		lo, hi := ordBounds(c)
		switch orderedKind(c) {
		case message.KindInt:
			ai.ivI.insert(x, ivEntry[int64]{lo: lo.IntVal(), hi: hi.IntVal(), flags: ordFlags(c), sg: sg})
		case message.KindFloat:
			ai.ivF.insert(x, ivEntry[float64]{lo: lo.FloatVal(), hi: hi.FloatVal(), flags: ordFlags(c), sg: sg})
		case message.KindString:
			ai.ivS.insert(x, ivEntry[string]{lo: lo.Str(), hi: hi.Str(), flags: ordFlags(c), sg: sg})
		default:
			ai.scan.add(x, sg, c)
		}
	case filter.OpPrefix:
		p := c.Value.Str()
		if p == "" {
			ai.anyString.add(x, sg)
		} else {
			ai.prefixes.add(x, p, sg)
		}
	default:
		// !=, suffix, contains, and malformed operators: evaluated directly.
		ai.scan.add(x, sg, c)
	}
}

// remove mirrors insert's routing so every container's live/dead
// accounting matches what insert registered. The row generation was
// already bumped, so this is bookkeeping plus amortized compaction.
func (ai *attrIndex) remove(x *matchIndex, c filter.Constraint) {
	switch c.Op {
	case filter.OpEQ:
		if isNaNValue(c.Value) {
			return // mirrored skip: insert registered nothing
		}
		ai.eq.removeLazy(x)
	case filter.OpIn:
		eachIndexableInMember(c, func(message.Value) {
			ai.eq.removeLazy(x)
		})
	case filter.OpExists:
		ai.exists.removeLazy(x)
	case filter.OpLT, filter.OpLE, filter.OpGT, filter.OpGE, filter.OpRange:
		if orderedBoundNaN(c) {
			ai.scan.removeLazy(x)
			return
		}
		switch orderedKind(c) {
		case message.KindInt:
			ai.ivI.removeLazy(x)
		case message.KindFloat:
			ai.ivF.removeLazy(x)
		case message.KindString:
			ai.ivS.removeLazy(x)
		default:
			ai.scan.removeLazy(x)
		}
	case filter.OpPrefix:
		if p := c.Value.Str(); p == "" {
			ai.anyString.removeLazy(x)
		} else {
			ai.prefixes.remove(x, p)
		}
	default:
		ai.scan.removeLazy(x)
	}
}

// ---------------------------------------------------------------------------
// Flat posting lists (exists, any-string, match-all, scan).
// ---------------------------------------------------------------------------

// postlist is a flat slotGen list with lazy deletion: removals only count,
// generation checks reject stale postings at probe time, and compaction
// rewrites the list once dead postings dominate.
type postlist struct {
	s    cowslice[slotGen]
	dead int32
}

func (p *postlist) add(x *matchIndex, sg slotGen) {
	ps := p.s.own(x.epoch)
	*ps = append(*ps, sg)
}

func (p *postlist) liveCount() int {
	return len(p.s.s) - int(p.dead)
}

func (p *postlist) removeLazy(x *matchIndex) {
	p.dead++
	if int(p.dead) > p.liveCount() && p.dead > 8 {
		ps := p.s.own(x.epoch)
		kept := (*ps)[:0]
		for _, sg := range *ps {
			if x.rowLive(sg) {
				kept = append(kept, sg)
			}
		}
		*ps = kept
		p.dead = 0
	}
}

func (p *postlist) probe(s *scratch, x *matchIndex) {
	for _, sg := range p.s.s {
		s.bump(sg, x)
	}
}

type scanPosting struct {
	c  filter.Constraint
	sg slotGen
}

type scanlist struct {
	s    cowslice[scanPosting]
	dead int32
}

func (p *scanlist) add(x *matchIndex, sg slotGen, c filter.Constraint) {
	ps := p.s.own(x.epoch)
	*ps = append(*ps, scanPosting{c: c, sg: sg})
}

func (p *scanlist) removeLazy(x *matchIndex) {
	p.dead++
	if int(p.dead) > len(p.s.s)-int(p.dead) && p.dead > 8 {
		ps := p.s.own(x.epoch)
		kept := (*ps)[:0]
		for _, sp := range *ps {
			if x.rowLive(sp.sg) {
				kept = append(kept, sp)
			}
		}
		*ps = kept
		p.dead = 0
	}
}

func (p *scanlist) probe(v message.Value, s *scratch, x *matchIndex) {
	for i := range p.s.s {
		sp := &p.s.s[i]
		if sp.c.MatchesValue(v) {
			s.bump(sp.sg, x)
		}
	}
}

// ---------------------------------------------------------------------------
// Matching.
// ---------------------------------------------------------------------------

// scratch holds the per-match counting state. stamp/epoch versioning makes
// reuse O(1): a slot's count is only trusted when its stamp equals the
// current epoch, so the arrays never need clearing between matches.
type scratch struct {
	counts  []int32
	stamp   []uint32
	epoch   uint32
	matched []int32 // row slots
	hopSeen map[int32]struct{}
	hopOut  []hopRef
	entry   Entry // reused across visit calls; &entry escapes into the callback
}

type hopRef struct {
	key string
	hop wire.Hop
}

func (x *matchIndex) getScratch() *scratch {
	s, _ := x.pool.Get().(*scratch)
	if s == nil {
		s = &scratch{hopSeen: make(map[int32]struct{})}
	}
	if n := x.rows.len(); len(s.counts) < n {
		s.counts = make([]int32, n)
		s.stamp = make([]uint32, n)
	}
	s.epoch++
	if s.epoch == 0 { // wrapped: stale stamps could collide, reset them
		clear(s.stamp)
		s.epoch = 1
	}
	s.matched = s.matched[:0]
	return s
}

func (x *matchIndex) putScratch(s *scratch) { x.pool.Put(s) }

func (s *scratch) bump(sg slotGen, x *matchIndex) {
	r := x.rows.at(sg.slot)
	if r.gen != sg.gen {
		return // posting of a removed row; reclaimed by compaction later
	}
	slot := sg.slot
	if s.stamp[slot] != s.epoch {
		s.stamp[slot] = s.epoch
		s.counts[slot] = 1
	} else {
		s.counts[slot]++
	}
	if s.counts[slot] == r.total {
		s.matched = append(s.matched, slot)
	}
}

// match appends the slot of every entry whose filter accepts n to
// s.matched and returns it. The result aliases scratch state and is only
// valid until the scratch is released.
//
// Both the notification's attributes and the index's attribute list are
// sorted by name, so their intersection is found by a sorted merge: one
// linear walk of string comparisons, no hashing, no closure. When one side
// dwarfs the other, binary-searching each element of the small side into
// the large one is cheaper than walking the large side, so the walk
// switches shape on a size ratio.
func (x *matchIndex) match(n message.Notification, s *scratch) []int32 {
	for _, sg := range x.matchAll.s.s {
		if x.rowLive(sg) {
			s.matched = append(s.matched, sg.slot)
		}
	}
	attrs := x.attrs.s
	la, ln := len(attrs), n.Len()
	switch {
	case la == 0 || ln == 0:
	case la <= 8*ln && ln <= 8*la:
		i, j := 0, 0
		for i < la && j < ln {
			a := n.At(j)
			switch {
			case attrs[i].name < a.Name:
				i++
			case attrs[i].name > a.Name:
				j++
			default:
				attrs[i].ai.probe(a.Value, s, x)
				i++
				j++
			}
		}
	case ln < la:
		for j := 0; j < ln; j++ {
			a := n.At(j)
			if i, ok := x.findAttr(a.Name); ok {
				attrs[i].ai.probe(a.Value, s, x)
			}
		}
	default:
		for i := range attrs {
			if v, ok := n.Get(attrs[i].name); ok {
				attrs[i].ai.probe(v, s, x)
			}
		}
	}
	return s.matched
}

func (ai *attrIndex) probe(v message.Value, s *scratch, x *matchIndex) {
	ai.exists.probe(s, x)
	nan := isNaNValue(v)
	if !nan && ai.eq.live > 0 {
		bits, str := eqPayload(v)
		ai.eq.probe(v.Kind(), bits, str, s, x)
	}
	switch v.Kind() {
	case message.KindInt:
		ai.ivI.probe(v.IntVal(), s, x)
	case message.KindFloat:
		if nan {
			// Value.Compare orders NaN equal to everything, so NaN is
			// admitted exactly by the inclusive bounds.
			ai.ivF.probeInclusive(s, x)
		} else {
			ai.ivF.probe(v.FloatVal(), s, x)
		}
	case message.KindString:
		str := v.Str()
		ai.ivS.probe(str, s, x)
		ai.anyString.probe(s, x)
		if str != "" {
			ai.prefixes.probe(str, s, x)
		}
	}
	ai.scan.probe(v, s, x)
}

// ---------------------------------------------------------------------------
// Canonical ordering of matched rows.
// ---------------------------------------------------------------------------

// cmpSlots orders row slots by (identity hash, content) — the canonical
// deterministic order shared with cmpEntryCanonical on plain entries.
func (x *matchIndex) cmpSlots(a, b int32) int {
	ra, rb := x.rows.at(a), x.rows.at(b)
	if ra.hash != rb.hash {
		if ra.hash < rb.hash {
			return -1
		}
		return 1
	}
	return cmpEntryContent(x.entryAt(a), x.entryAt(b))
}

// sortSlots sorts slots in canonical order without allocating (a closure
// handed to slices.SortFunc would escape on the publish hot path).
func (x *matchIndex) sortSlots(sl []int32) {
	if len(sl) < 16 {
		for i := 1; i < len(sl); i++ {
			for j := i; j > 0 && x.cmpSlots(sl[j], sl[j-1]) < 0; j-- {
				sl[j], sl[j-1] = sl[j-1], sl[j]
			}
		}
		return
	}
	mid := sl[len(sl)/2]
	lt, i, gt := 0, 0, len(sl)
	for i < gt {
		c := x.cmpSlots(sl[i], mid)
		switch {
		case c < 0:
			sl[lt], sl[i] = sl[i], sl[lt]
			lt++
			i++
		case c > 0:
			gt--
			sl[gt], sl[i] = sl[i], sl[gt]
		default:
			i++
		}
	}
	x.sortSlots(sl[:lt])
	x.sortSlots(sl[gt:])
}

// eachMatching is the shared visit-in-canonical-order matcher behind
// Table.EachMatchingEntry (under the table's read lock) and
// Snapshot.EachMatchingEntry (lock-free on the immutable copy). The Entry
// pointer handed to visit is reused across calls and only valid during
// each call.
func (x *matchIndex) eachMatching(n message.Notification, from wire.Hop, visit func(*Entry)) {
	s := x.getScratch()
	defer x.putScratch(s)
	matched := x.match(n, s)
	kept := matched[:0]
	for _, slot := range matched {
		if x.hops[x.rows.at(slot).hopID].hop != from {
			kept = append(kept, slot)
		}
	}
	if len(kept) == 0 {
		return
	}
	x.sortSlots(kept)
	// The Entry lives in the pooled scratch: a local would escape through
	// visit (the compiler cannot see that callbacks don't retain it) and
	// cost one heap allocation per matched publish.
	e := &s.entry
	for _, slot := range kept {
		x.fillEntry(slot, e)
		visit(e)
	}
}

// IndexStats describes the predicate index backing a Table.
type IndexStats struct {
	Entries  int // table rows
	Attrs    int // distinct indexed attributes
	Postings int // posting-list entries across all buckets
	MatchAll int // rows whose filter matches every notification
	// IdentPostings / HopPostings count the live slot postings of the
	// mutation-plane enumeration lists that serve the O(k) relocation
	// paths (ClientEntries / RemoveClient / RemoveHop — see postings.go).
	IdentPostings int
	HopPostings   int
}
