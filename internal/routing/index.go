package routing

import (
	"sync"

	"repro/internal/filter"
	"repro/internal/message"
	"repro/internal/wire"
)

// matchIndex is a predicate-counting index over the table's entries: the
// constraints of every filter are grouped by (attribute, operator class)
// into typed posting lists, and matching a notification counts, per entry,
// how many of its constraints are satisfied. An entry matches exactly when
// its count reaches its constraint total — the classic counting algorithm —
// so the per-notification cost is driven by the number of satisfied
// predicates, not by the number of table entries.
//
// Posting lists by operator class:
//
//   - equality (=, in):      hash buckets keyed by the operand value
//   - ordered (<, <=, >, >=, range): sorted interval lists, one per value kind
//   - string prefix:         buckets keyed by the prefix's first byte
//   - exists:                a flat list, satisfied by attribute presence
//   - everything else (!=, suffix, contains): a per-attribute scan list
//     evaluated directly against the attribute value
//
// The index is maintained incrementally by insert/remove and is not
// concurrency-safe on its own; Table's lock covers it. Match scratch state
// (the counting arrays) is pooled so concurrent readers do not contend.
//
// The per-attribute indexes are kept in a slice sorted by attribute name
// rather than a map: notifications carry their attributes as a canonical
// sorted slice, so the match path intersects the two ordered sequences
// with a sorted merge (or a binary-search probe of the smaller side into
// the larger when the sizes are lopsided) instead of hashing every
// attribute name. Insert/remove pay an O(attrs) slice shift, which is
// control-plane cost.
type matchIndex struct {
	slots    []*idxEntry // slot id -> entry; nil when free
	totals   []int32     // slot id -> constraint total (parallel to slots)
	free     []int32     // free slot ids
	matchAll []*idxEntry // entries with empty filters: match everything
	attrs    []attrRef   // per-attribute indexes, sorted by name
	postings int         // live posting-list entries, for IndexStats

	pool sync.Pool // *scratch
}

// attrRef pairs an indexed attribute name with its posting lists; the
// matchIndex keeps these sorted by name for the merge-based match walk.
type attrRef struct {
	name string
	ai   *attrIndex
}

// idxEntry is a table row plus everything precomputed at insert time: its
// identity key, its hop's rendered key (so no method on the hot path calls
// Hop.String()), its slot in the counting arrays, and its constraint list.
type idxEntry struct {
	e      Entry
	key    string // Entry.key(), computed once at insert
	hopKey string // Entry.Hop.String(), computed once at insert
	slot   int32
	cs     []filter.Constraint
}

type attrIndex struct {
	eq        map[message.Value][]int32
	exists    []int32
	intervals map[message.Kind]*intervalList
	prefixes  map[byte][]prefixPosting
	anyString []int32 // empty-prefix constraints: every string value matches
	scan      []scanPosting
}

type prefixPosting struct {
	slot   int32
	prefix string
}

type scanPosting struct {
	slot int32
	c    filter.Constraint
}

// interval is one ordered constraint as a (possibly half-open) value
// interval. An invalid bound means unbounded on that side.
type interval struct {
	slot         int32
	lo, hi       message.Value
	loInc, hiInc bool
}

// intervalList keeps intervals of a single value kind sorted by lower
// bound (unbounded-below first), so a probe can stop at the first interval
// whose lower bound exceeds the value.
type intervalList struct {
	ivs []interval
}

func newMatchIndex() *matchIndex {
	return &matchIndex{}
}

// findAttr binary-searches the sorted attribute list for name, returning
// its index, or the insertion point and false.
func (x *matchIndex) findAttr(name string) (int, bool) {
	lo, hi := 0, len(x.attrs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if x.attrs[mid].name < name {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(x.attrs) && x.attrs[lo].name == name
}

// clone returns a structural copy of the index for an immutable snapshot:
// every mutable container (slot arrays, posting lists, maps) is copied,
// while the idxEntry rows themselves are shared — they are never mutated
// after their insert into the live index assigns their slot. The clone's
// scratch pool starts fresh (sync.Pool must not be copied).
func (x *matchIndex) clone() *matchIndex {
	c := &matchIndex{
		slots:    append([]*idxEntry(nil), x.slots...),
		totals:   append([]int32(nil), x.totals...),
		free:     append([]int32(nil), x.free...),
		matchAll: append([]*idxEntry(nil), x.matchAll...),
		attrs:    make([]attrRef, len(x.attrs)),
		postings: x.postings,
	}
	for i, ar := range x.attrs {
		c.attrs[i] = attrRef{name: ar.name, ai: ar.ai.clone()}
	}
	return c
}

func (ai *attrIndex) clone() *attrIndex {
	c := &attrIndex{
		exists:    append([]int32(nil), ai.exists...),
		anyString: append([]int32(nil), ai.anyString...),
		scan:      append([]scanPosting(nil), ai.scan...),
	}
	if ai.eq != nil {
		c.eq = make(map[message.Value][]int32, len(ai.eq))
		for v, ps := range ai.eq {
			c.eq[v] = append([]int32(nil), ps...)
		}
	}
	if ai.intervals != nil {
		c.intervals = make(map[message.Kind]*intervalList, len(ai.intervals))
		for k, il := range ai.intervals {
			c.intervals[k] = &intervalList{ivs: append([]interval(nil), il.ivs...)}
		}
	}
	if ai.prefixes != nil {
		c.prefixes = make(map[byte][]prefixPosting, len(ai.prefixes))
		for b, ps := range ai.prefixes {
			c.prefixes[b] = append([]prefixPosting(nil), ps...)
		}
	}
	return c
}

// ---------------------------------------------------------------------------
// Maintenance: insert / remove.
// ---------------------------------------------------------------------------

func (x *matchIndex) insert(ie *idxEntry) {
	var slot int32
	if n := len(x.free); n > 0 {
		slot = x.free[n-1]
		x.free = x.free[:n-1]
		x.slots[slot] = ie
		x.totals[slot] = int32(len(ie.cs))
	} else {
		slot = int32(len(x.slots))
		x.slots = append(x.slots, ie)
		x.totals = append(x.totals, int32(len(ie.cs)))
	}
	ie.slot = slot
	if len(ie.cs) == 0 {
		x.matchAll = append(x.matchAll, ie)
		return
	}
	for _, c := range ie.cs {
		i, ok := x.findAttr(c.Attr)
		if !ok {
			x.attrs = append(x.attrs, attrRef{})
			copy(x.attrs[i+1:], x.attrs[i:])
			x.attrs[i] = attrRef{name: c.Attr, ai: &attrIndex{}}
		}
		x.attrs[i].ai.insert(slot, c)
		x.postings++
	}
}

func (x *matchIndex) remove(ie *idxEntry) {
	if len(ie.cs) == 0 {
		for i, e := range x.matchAll {
			if e == ie {
				x.matchAll = append(x.matchAll[:i], x.matchAll[i+1:]...)
				break
			}
		}
	}
	for _, c := range ie.cs {
		if i, ok := x.findAttr(c.Attr); ok {
			ai := x.attrs[i].ai
			ai.remove(ie.slot, c)
			x.postings--
			if ai.empty() {
				x.attrs = append(x.attrs[:i], x.attrs[i+1:]...)
			}
		}
	}
	x.slots[ie.slot] = nil
	x.totals[ie.slot] = 0
	x.free = append(x.free, ie.slot)
}

// isNaNValue reports whether v is a float NaN. NaN operands need special
// routing: NaN is never Equal to anything (so an eq posting would be dead
// weight — and worse, NaN != NaN makes it an unremovable map key), and
// Value.Compare treats NaN as equal to everything, which breaks the sorted
// interval list's order.
func isNaNValue(v message.Value) bool {
	return v.Kind() == message.KindFloat && v.FloatVal() != v.FloatVal()
}

// orderedBoundNaN reports whether an ordered constraint carries a NaN
// bound; such constraints are evaluated on the scan list instead of the
// interval list so they keep Constraint.Matches' exact semantics.
func orderedBoundNaN(c filter.Constraint) bool {
	if c.Op == filter.OpRange {
		return isNaNValue(c.Lo) || isNaNValue(c.Hi)
	}
	return isNaNValue(c.Value)
}

// eachIndexableInMember visits the members of an in-constraint that get eq
// postings: NaN members (which can never match) and duplicates (which would
// double-count a single constraint) are skipped. Insert and remove share
// this walk so their posting sets cannot diverge.
func eachIndexableInMember(c filter.Constraint, fn func(v message.Value)) {
	for i, v := range c.Values {
		if isNaNValue(v) {
			continue
		}
		dup := false
		for j := 0; j < i; j++ {
			if c.Values[j] == v {
				dup = true
				break
			}
		}
		if !dup {
			fn(v)
		}
	}
}

func (ai *attrIndex) insert(slot int32, c filter.Constraint) {
	switch c.Op {
	case filter.OpEQ:
		if isNaNValue(c.Value) {
			return // never matches; no posting keeps the entry incompletable
		}
		if ai.eq == nil {
			ai.eq = make(map[message.Value][]int32)
		}
		ai.eq[c.Value] = append(ai.eq[c.Value], slot)
	case filter.OpIn:
		// One posting per distinct set member; a notification value equals
		// at most one member, so the constraint still counts at most once.
		eachIndexableInMember(c, func(v message.Value) {
			if ai.eq == nil {
				ai.eq = make(map[message.Value][]int32)
			}
			ai.eq[v] = append(ai.eq[v], slot)
		})
	case filter.OpExists:
		ai.exists = append(ai.exists, slot)
	case filter.OpLT, filter.OpLE, filter.OpGT, filter.OpGE, filter.OpRange:
		if orderedBoundNaN(c) {
			ai.scan = append(ai.scan, scanPosting{slot: slot, c: c})
			return
		}
		iv, kind := constraintInterval(slot, c)
		if ai.intervals == nil {
			ai.intervals = make(map[message.Kind]*intervalList)
		}
		il := ai.intervals[kind]
		if il == nil {
			il = &intervalList{}
			ai.intervals[kind] = il
		}
		il.insert(iv)
	case filter.OpPrefix:
		p := c.Value.Str()
		if p == "" {
			ai.anyString = append(ai.anyString, slot)
		} else {
			if ai.prefixes == nil {
				ai.prefixes = make(map[byte][]prefixPosting)
			}
			ai.prefixes[p[0]] = append(ai.prefixes[p[0]], prefixPosting{slot: slot, prefix: p})
		}
	default:
		// !=, suffix, contains, and malformed operators: evaluated directly.
		ai.scan = append(ai.scan, scanPosting{slot: slot, c: c})
	}
}

func (ai *attrIndex) remove(slot int32, c filter.Constraint) {
	switch c.Op {
	case filter.OpEQ:
		if isNaNValue(c.Value) {
			return // mirrored skip: insert registered nothing
		}
		ai.eq[c.Value] = removeSlot(ai.eq[c.Value], slot)
		if len(ai.eq[c.Value]) == 0 {
			delete(ai.eq, c.Value)
		}
	case filter.OpIn:
		eachIndexableInMember(c, func(v message.Value) {
			ai.eq[v] = removeSlot(ai.eq[v], slot)
			if len(ai.eq[v]) == 0 {
				delete(ai.eq, v)
			}
		})
	case filter.OpExists:
		ai.exists = removeSlot(ai.exists, slot)
	case filter.OpLT, filter.OpLE, filter.OpGT, filter.OpGE, filter.OpRange:
		if orderedBoundNaN(c) {
			ai.removeScan(slot)
			return
		}
		_, kind := constraintInterval(slot, c)
		if il := ai.intervals[kind]; il != nil {
			il.remove(slot)
			if len(il.ivs) == 0 {
				delete(ai.intervals, kind)
			}
		}
	case filter.OpPrefix:
		p := c.Value.Str()
		if p == "" {
			ai.anyString = removeSlot(ai.anyString, slot)
		} else {
			b := p[0]
			for i, pp := range ai.prefixes[b] {
				if pp.slot == slot && pp.prefix == p {
					ai.prefixes[b] = append(ai.prefixes[b][:i], ai.prefixes[b][i+1:]...)
					break
				}
			}
			if len(ai.prefixes[b]) == 0 {
				delete(ai.prefixes, b)
			}
		}
	default:
		ai.removeScan(slot)
	}
}

// removeScan deletes one scan posting of the slot. Matching by slot alone
// is sufficient — and necessary, because Constraint.Equal is false for NaN
// operands: constraints are only removed as part of removing their whole
// entry, so every posting of the slot is taken out across that loop and it
// does not matter which constraint each call deletes.
func (ai *attrIndex) removeScan(slot int32) {
	for i, sp := range ai.scan {
		if sp.slot == slot {
			ai.scan = append(ai.scan[:i], ai.scan[i+1:]...)
			return
		}
	}
}

func (ai *attrIndex) empty() bool {
	return len(ai.eq) == 0 && len(ai.exists) == 0 && len(ai.intervals) == 0 &&
		len(ai.prefixes) == 0 && len(ai.anyString) == 0 && len(ai.scan) == 0
}

func removeSlot(ps []int32, slot int32) []int32 {
	for i, s := range ps {
		if s == slot {
			return append(ps[:i], ps[i+1:]...)
		}
	}
	return ps
}

// constraintInterval translates an ordered constraint into an interval and
// the value kind whose list it belongs to. Probing only the list of the
// notification value's kind reproduces Constraint.Matches' kind-mismatch
// rejection for free.
func constraintInterval(slot int32, c filter.Constraint) (interval, message.Kind) {
	iv := interval{slot: slot}
	switch c.Op {
	case filter.OpLT:
		iv.hi = c.Value
	case filter.OpLE:
		iv.hi, iv.hiInc = c.Value, true
	case filter.OpGT:
		iv.lo = c.Value
	case filter.OpGE:
		iv.lo, iv.loInc = c.Value, true
	case filter.OpRange:
		iv.lo, iv.loInc = c.Lo, true
		iv.hi, iv.hiInc = c.Hi, true
		return iv, c.Lo.Kind()
	}
	return iv, c.Value.Kind()
}

func (il *intervalList) insert(iv interval) {
	lo, hi := 0, len(il.ivs)
	for lo < hi {
		mid := (lo + hi) / 2
		if cmpLowerBound(il.ivs[mid], iv) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	il.ivs = append(il.ivs, interval{})
	copy(il.ivs[lo+1:], il.ivs[lo:])
	il.ivs[lo] = iv
}

func (il *intervalList) remove(slot int32) {
	for i, iv := range il.ivs {
		if iv.slot == slot {
			il.ivs = append(il.ivs[:i], il.ivs[i+1:]...)
			return
		}
	}
}

// cmpLowerBound orders intervals by lower bound, unbounded-below first.
// Bounds within one list share a kind, so Compare cannot fail.
func cmpLowerBound(a, b interval) int {
	switch {
	case !a.lo.IsValid() && !b.lo.IsValid():
		return 0
	case !a.lo.IsValid():
		return -1
	case !b.lo.IsValid():
		return 1
	}
	c, _ := a.lo.Compare(b.lo)
	return c
}

// ---------------------------------------------------------------------------
// Matching.
// ---------------------------------------------------------------------------

// scratch holds the per-match counting state. stamp/epoch versioning makes
// reuse O(1): a slot's count is only trusted when its stamp equals the
// current epoch, so the arrays never need clearing between matches.
type scratch struct {
	counts  []int32
	stamp   []uint32
	epoch   uint32
	matched []*idxEntry
	hopSeen map[wire.Hop]struct{}
	hopOut  []hopRef
}

type hopRef struct {
	key string
	hop wire.Hop
}

func (x *matchIndex) getScratch() *scratch {
	s, _ := x.pool.Get().(*scratch)
	if s == nil {
		s = &scratch{hopSeen: make(map[wire.Hop]struct{})}
	}
	if n := len(x.slots); len(s.counts) < n {
		s.counts = make([]int32, n)
		s.stamp = make([]uint32, n)
	}
	s.epoch++
	if s.epoch == 0 { // wrapped: stale stamps could collide, reset them
		clear(s.stamp)
		s.epoch = 1
	}
	s.matched = s.matched[:0]
	return s
}

func (x *matchIndex) putScratch(s *scratch) { x.pool.Put(s) }

func (s *scratch) bump(slot int32, x *matchIndex) {
	if s.stamp[slot] != s.epoch {
		s.stamp[slot] = s.epoch
		s.counts[slot] = 1
	} else {
		s.counts[slot]++
	}
	if s.counts[slot] == x.totals[slot] {
		s.matched = append(s.matched, x.slots[slot])
	}
}

// match appends every entry whose filter accepts n to s.matched and returns
// it. The result aliases scratch state and is only valid until the scratch
// is released.
//
// Both the notification's attributes and the index's attribute list are
// sorted by name, so their intersection is found by a sorted merge: one
// linear walk of string comparisons, no hashing, no closure. When one side
// dwarfs the other, binary-searching each element of the small side into
// the large one is cheaper than walking the large side, so the walk
// switches shape on a size ratio.
func (x *matchIndex) match(n message.Notification, s *scratch) []*idxEntry {
	s.matched = append(s.matched, x.matchAll...)
	la, ln := len(x.attrs), n.Len()
	switch {
	case la == 0 || ln == 0:
	case la <= 8*ln && ln <= 8*la:
		i, j := 0, 0
		for i < la && j < ln {
			a := n.At(j)
			switch {
			case x.attrs[i].name < a.Name:
				i++
			case x.attrs[i].name > a.Name:
				j++
			default:
				x.attrs[i].ai.probe(a.Value, s, x)
				i++
				j++
			}
		}
	case ln < la:
		for j := 0; j < ln; j++ {
			a := n.At(j)
			if i, ok := x.findAttr(a.Name); ok {
				x.attrs[i].ai.probe(a.Value, s, x)
			}
		}
	default:
		for i := range x.attrs {
			if v, ok := n.Get(x.attrs[i].name); ok {
				x.attrs[i].ai.probe(v, s, x)
			}
		}
	}
	return s.matched
}

func (ai *attrIndex) probe(v message.Value, s *scratch, x *matchIndex) {
	for _, slot := range ai.exists {
		s.bump(slot, x)
	}
	if ai.eq != nil {
		for _, slot := range ai.eq[v] {
			s.bump(slot, x)
		}
	}
	if ai.intervals != nil {
		if il := ai.intervals[v.Kind()]; il != nil {
			il.probe(v, s, x)
		}
	}
	if v.Kind() == message.KindString {
		for _, slot := range ai.anyString {
			s.bump(slot, x)
		}
		if str := v.Str(); str != "" && ai.prefixes != nil {
			for _, pp := range ai.prefixes[str[0]] {
				if len(str) >= len(pp.prefix) && str[:len(pp.prefix)] == pp.prefix {
					s.bump(pp.slot, x)
				}
			}
		}
	}
	for _, sp := range ai.scan {
		if sp.c.MatchesValue(v) {
			s.bump(sp.slot, x)
		}
	}
}

func (il *intervalList) probe(v message.Value, s *scratch, x *matchIndex) {
	for i := range il.ivs {
		iv := &il.ivs[i]
		if iv.lo.IsValid() {
			c, err := v.Compare(iv.lo)
			if err != nil {
				return
			}
			if c < 0 {
				return // sorted by lower bound: no later interval admits v
			}
			if c == 0 && !iv.loInc {
				continue
			}
		}
		if iv.hi.IsValid() {
			c, err := v.Compare(iv.hi)
			if err != nil || c > 0 || (c == 0 && !iv.hiInc) {
				continue
			}
		}
		s.bump(iv.slot, x)
	}
}

// IndexStats describes the predicate index backing a Table.
type IndexStats struct {
	Entries  int // table rows
	Attrs    int // distinct indexed attributes
	Postings int // posting-list entries across all buckets
	MatchAll int // rows whose filter matches every notification
}
