package routing

import (
	"repro/internal/message"
	"repro/internal/wire"
)

// Snapshot is an immutable, point-in-time view of a Table's match state.
// Any number of goroutines may match against a snapshot concurrently and
// lock-free: nothing in it is ever mutated after construction (the
// per-match counting scratch comes from a shared pool). The broker's
// parallel publish pipeline hands one snapshot to its matching workers per
// publish run; control messages that mutate the table invalidate the
// cached snapshot, so the next run observes a fresh one.
type Snapshot struct {
	gen     uint64 // table generation the snapshot was built at
	idx     *matchIndex
	entries int
}

// Gen returns the table mutation generation this snapshot was built at.
// A snapshot built after a mutation always carries a strictly larger
// generation, which is what the broker's control/data ordering argument
// rests on: a publish matched against snapshot gen G sees every sub/unsub
// acknowledged before G was built.
func (sn *Snapshot) Gen() uint64 { return sn.gen }

// Len returns the number of table entries captured by the snapshot.
func (sn *Snapshot) Len() int { return sn.entries }

// EachMatchingEntry calls visit for every captured entry whose filter
// matches the notification, excluding entries pointing back at from — the
// same rows in the same deterministic (canonical) order as
// Table.EachMatchingEntry at the moment the snapshot was taken. It is safe
// to call from any number of goroutines concurrently. The entry pointer is
// only valid during the call; visit must not retain or modify it.
func (sn *Snapshot) EachMatchingEntry(n message.Notification, from wire.Hop, visit func(*Entry)) {
	sn.idx.eachMatching(n, from, visit)
}

// MatchingEntries is EachMatchingEntry materialized into a slice
// (tests and diagnostics; the hot path uses the visitor).
func (sn *Snapshot) MatchingEntries(n message.Notification, from wire.Hop) []Entry {
	var out []Entry
	sn.EachMatchingEntry(n, from, func(e *Entry) { out = append(out, *e) })
	return out
}

// SnapshotStats describes a table's copy-on-write snapshot activity.
type SnapshotStats struct {
	// Gen counts table mutations (each one invalidates the cached
	// snapshot; the next Snapshot call swaps in a fresh pointer).
	Gen uint64
	// Builds counts snapshot constructions: Clones are O(1) shared views
	// of the live index (the copy-on-write epoch fence makes subsequent
	// mutations copy what the snapshot can see), Rebuilds compacting
	// from-scratch constructions. Builds == Clones + Rebuilds.
	Builds, Clones, Rebuilds uint64
}

// Snapshot returns an immutable snapshot of the table's current match
// state. Snapshots are cached: until the next mutation, every call returns
// the same pointer, so a burst of publishes between two control messages
// pays for at most one snapshot build (lazy copy-on-write — the "write"
// only marks the cache stale, the copy happens at the next read).
//
// Build policy (rebuild vs clone): a clone shares the live index's pages
// behind the copy-on-write epoch fence — O(1), no structural copy; the
// mutations that follow pay one page copy per page they touch. That makes
// clones cheap at any size, but a clone inherits the live index's
// fragmentation (free slots and lazily-deleted postings left by removed
// entries). A rebuild re-inserts every live entry into a fresh index,
// compacting the row vector back to the live entry count; the rebuilt
// index also replaces the live one, so the compaction pays off for every
// later snapshot rather than being repeated per snapshot. Clone is the
// default; rebuild kicks in when churn has left the row vector more than
// half holes.
func (t *Table) Snapshot() *Snapshot {
	if sn := t.snap.Load(); sn != nil {
		return sn
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if sn := t.snap.Load(); sn != nil {
		// Another goroutine built it between our fast path and the lock.
		return sn
	}
	if 2*len(t.idx.free.s) > t.idx.rows.len() {
		t.idx = t.idx.rebuild()
		t.snapRebuilds++
	} else {
		t.snapClones++
	}
	sn := &Snapshot{gen: t.gen, idx: t.idx.share(), entries: t.idx.liveRows}
	t.snap.Store(sn)
	return sn
}

// SnapshotStats returns the table's snapshot activity counters.
func (t *Table) SnapshotStats() SnapshotStats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return SnapshotStats{
		Gen:      t.gen,
		Builds:   t.snapClones + t.snapRebuilds,
		Clones:   t.snapClones,
		Rebuilds: t.snapRebuilds,
	}
}

// invalidateSnapshot bumps the mutation generation and drops the cached
// snapshot. Callers hold t.mu. Outstanding snapshots stay valid — the
// epoch fence makes later mutations copy-on-write anything they share —
// but the next Snapshot call builds a fresh one.
func (t *Table) invalidateSnapshot() {
	t.gen++
	t.snap.Store(nil)
}
