package routing

import (
	"testing"

	"repro/internal/doclint"
)

// TestGodocCoverage pins the godoc pass over this package's exported
// surface: every exported identifier must carry a name-prefixed doc
// comment. CI runs the equivalent staticcheck ST10xx checks; this test
// keeps the rule enforceable with a bare `go test`.
func TestGodocCoverage(t *testing.T) {
	problems, err := doclint.CheckPackage(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p.String())
	}
}
