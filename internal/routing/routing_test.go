package routing

import (
	"strings"
	"testing"

	"repro/internal/filter"
	"repro/internal/message"
	"repro/internal/wire"
)

func mkFilter(src string) filter.Filter { return filter.MustParse(src) }

func mkNotif(pairs ...string) message.Notification {
	attrs := make(map[string]message.Value)
	for i := 0; i+1 < len(pairs); i += 2 {
		attrs[pairs[i]] = message.String(pairs[i+1])
	}
	return message.New(attrs)
}

func TestTableAddRemove(t *testing.T) {
	tbl := NewTable()
	e := Entry{Filter: mkFilter(`a = x`), Hop: wire.BrokerHop("b2")}
	if !tbl.Add(e) {
		t.Error("first Add should report true")
	}
	if tbl.Add(e) {
		t.Error("duplicate Add should report false")
	}
	if tbl.Len() != 1 {
		t.Errorf("Len = %d", tbl.Len())
	}
	if !tbl.Remove(e) {
		t.Error("Remove should report true")
	}
	if tbl.Remove(e) {
		t.Error("second Remove should report false")
	}
}

func TestTableMatchingHopsExcludesOrigin(t *testing.T) {
	tbl := NewTable()
	f := mkFilter(`sym = ACME`)
	tbl.Add(Entry{Filter: f, Hop: wire.BrokerHop("b2")})
	tbl.Add(Entry{Filter: f, Hop: wire.BrokerHop("b3")})
	tbl.Add(Entry{Filter: mkFilter(`sym = OTHER`), Hop: wire.BrokerHop("b4")})

	n := mkNotif("sym", "ACME")
	hops := tbl.MatchingHops(n, wire.BrokerHop("b2"))
	if len(hops) != 1 || hops[0].Broker != "b3" {
		t.Errorf("MatchingHops = %v", hops)
	}
	// Duplicate filters on the same hop yield the hop once.
	tbl.Add(Entry{Filter: mkFilter(`sym = ACME && x = y`), Hop: wire.BrokerHop("b3")})
	hops = tbl.MatchingHops(n, wire.Hop{})
	if len(hops) != 2 {
		t.Errorf("MatchingHops dedup failed: %v", hops)
	}
}

func TestTableClientEntries(t *testing.T) {
	tbl := NewTable()
	f := mkFilter(`a = 1`)
	tbl.Add(Entry{Filter: f, Hop: wire.BrokerHop("b2"), Client: "C", SubID: "s"})
	tbl.Add(Entry{Filter: f, Hop: wire.ClientHop("C"), Client: "C", SubID: "other"})
	tbl.Add(Entry{Filter: f, Hop: wire.BrokerHop("b3")})

	got := tbl.ClientEntries("C", "s")
	if len(got) != 1 || got[0].Hop.Broker != "b2" {
		t.Errorf("ClientEntries = %v", got)
	}
	removed := tbl.RemoveClient("C", "s")
	if len(removed) != 1 || tbl.Len() != 2 {
		t.Errorf("RemoveClient removed %d, table %d", len(removed), tbl.Len())
	}
}

func TestTableRemoveHop(t *testing.T) {
	tbl := NewTable()
	tbl.Add(Entry{Filter: mkFilter(`a = 1`), Hop: wire.BrokerHop("gone")})
	tbl.Add(Entry{Filter: mkFilter(`a = 2`), Hop: wire.BrokerHop("gone")})
	tbl.Add(Entry{Filter: mkFilter(`a = 3`), Hop: wire.BrokerHop("stays")})
	removed := tbl.RemoveHop(wire.BrokerHop("gone"))
	if len(removed) != 2 || tbl.Len() != 1 {
		t.Errorf("RemoveHop: removed %d, remaining %d", len(removed), tbl.Len())
	}
}

func TestTableOverlapQueries(t *testing.T) {
	tbl := NewTable()
	tbl.Add(Entry{Filter: mkFilter(`service = parking`), Hop: wire.BrokerHop("b2")})
	tbl.Add(Entry{Filter: mkFilter(`service = pizza`), Hop: wire.BrokerHop("b3")})

	probe := mkFilter(`service = parking && cost < 3`)
	if !tbl.OverlapsHop(probe, wire.BrokerHop("b2")) {
		t.Error("b2 should overlap")
	}
	if tbl.OverlapsHop(probe, wire.BrokerHop("b3")) {
		t.Error("b3 should not overlap")
	}
	hops := tbl.HopsOverlapping(probe, wire.Hop{})
	if len(hops) != 1 || hops[0].Broker != "b2" {
		t.Errorf("HopsOverlapping = %v", hops)
	}
	hops = tbl.HopsOverlapping(probe, wire.BrokerHop("b2"))
	if len(hops) != 0 {
		t.Errorf("HopsOverlapping excluding origin = %v", hops)
	}
}

func TestStrategyReduce(t *testing.T) {
	a := mkFilter(`p in [0, 10]`)
	aDup := mkFilter(`p in [0, 10]`)
	sub := mkFilter(`p in [2, 5]`)
	adjacent := mkFilter(`p in [11, 20]`)
	other := mkFilter(`q = x`)
	in := []filter.Filter{a, aDup, sub, adjacent, other}

	if got := Flooding.Reduce(in); got != nil {
		t.Errorf("flooding should reduce to nothing, got %v", got)
	}
	if got := Simple.Reduce(in); len(got) != 4 {
		t.Errorf("simple should dedupe identical only: %d filters", len(got))
	}
	if got := Identity.Reduce(in); len(got) != 4 {
		t.Errorf("identity: %d filters", len(got))
	}
	cov := Covering.Reduce(in)
	if len(cov) != 3 { // sub removed (covered by a), dup removed
		t.Errorf("covering: %d filters: %v", len(cov), cov)
	}
	mer := Merging.Reduce(in)
	// [0,10] and [11,20] merge into [0,20]; plus the q filter.
	if len(mer) != 2 {
		t.Errorf("merging: %d filters: %v", len(mer), mer)
	}
	// Soundness: every original filter's matches are still accepted.
	for _, s := range []Strategy{Simple, Identity, Covering, Merging} {
		out := s.Reduce(in)
		for _, probe := range []message.Notification{
			mkNotifInt("p", 3), mkNotifInt("p", 15), mkNotif("q", "x"),
		} {
			inMatch := false
			for _, f := range in {
				if f.Matches(probe) {
					inMatch = true
				}
			}
			outMatch := false
			for _, f := range out {
				if f.Matches(probe) {
					outMatch = true
				}
			}
			if inMatch && !outMatch {
				t.Errorf("%s.Reduce lost coverage for %s", s, probe)
			}
		}
	}
}

func mkNotifInt(name string, v int64) message.Notification {
	return message.New(map[string]message.Value{name: message.Int(v)})
}

func TestStrategyParseAndString(t *testing.T) {
	for _, name := range []string{"flooding", "simple", "identity", "covering", "merging"} {
		s, err := ParseStrategy(name)
		if err != nil {
			t.Fatalf("ParseStrategy(%s): %v", name, err)
		}
		if s.String() != name {
			t.Errorf("round trip %s -> %s", name, s)
		}
	}
	err := func() error {
		_, err := ParseStrategy("bogus")
		return err
	}()
	if err == nil {
		t.Fatal("bogus strategy should fail")
	}
	for _, name := range StrategyNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q should list valid name %q", err, name)
		}
	}
	if Strategy(0).String() != "invalid" {
		t.Error("zero strategy should render invalid")
	}
	// Case and whitespace are forgiven.
	for _, variant := range []string{"Covering", "COVERING", " covering "} {
		s, err := ParseStrategy(variant)
		if err != nil || s != Covering {
			t.Errorf("ParseStrategy(%q) = %v, %v", variant, s, err)
		}
	}
}

func TestForwarderDiffs(t *testing.T) {
	fwd := NewForwarder(Covering)
	hop := wire.BrokerHop("up")
	wide := mkFilter(`p in [0, 10]`)
	narrow := mkFilter(`p in [2, 4]`)

	u := fwd.Recompute(hop, []filter.Filter{narrow})
	if len(u.Subscribe) != 1 || len(u.Unsubscribe) != 0 {
		t.Fatalf("first diff: %+v", u)
	}
	// Adding a wider filter retracts the narrow one.
	u = fwd.Recompute(hop, []filter.Filter{narrow, wide})
	if len(u.Subscribe) != 1 || !u.Subscribe[0].Equal(wide) {
		t.Fatalf("second diff subscribe: %+v", u)
	}
	if len(u.Unsubscribe) != 1 || !u.Unsubscribe[0].Equal(narrow) {
		t.Fatalf("second diff unsubscribe: %+v", u)
	}
	// No change: empty diff.
	u = fwd.Recompute(hop, []filter.Filter{narrow, wide})
	if len(u.Subscribe)+len(u.Unsubscribe) != 0 {
		t.Fatalf("stable diff should be empty: %+v", u)
	}
	// Removing everything retracts the wide filter.
	u = fwd.Recompute(hop, nil)
	if len(u.Unsubscribe) != 1 || !u.Unsubscribe[0].Equal(wide) {
		t.Fatalf("teardown diff: %+v", u)
	}
	if got := fwd.Forwarded(hop); len(got) != 0 {
		t.Errorf("Forwarded after teardown = %v", got)
	}
}

func TestForwarderDropHop(t *testing.T) {
	fwd := NewForwarder(Simple)
	hop := wire.BrokerHop("up")
	fwd.Recompute(hop, []filter.Filter{mkFilter(`a = 1`)})
	fwd.DropHop(hop)
	u := fwd.Recompute(hop, []filter.Filter{mkFilter(`a = 1`)})
	if len(u.Subscribe) != 1 {
		t.Error("after DropHop the filter must be re-forwarded")
	}
	if fwd.Strategy() != Simple {
		t.Error("Strategy accessor broken")
	}
}
