package routing

import (
	"slices"
	"sort"
	"strings"

	"repro/internal/filter"
)

// CoverIndex incrementally maintains the covering-optimized forward set of
// a stream of filter deltas: the subset of currently tracked filters not
// covered by any other tracked filter (the maximal elements of the cover
// poset). It produces, for each Add and Remove, exactly the
// subscribe/retract delta that moves a neighbor from the previous minimal
// cover set to the next one — the incremental equivalent of running
// Covering.Reduce over the whole table and diffing, at a per-delta cost
// proportional to the number of signature-compatible candidates instead
// of the table size squared.
//
// Filters are tracked by canonical ID with reference counts, mirroring
// how the same filter can back several routing-table entries; only the
// first Add and the last Remove of an ID change the poset. Candidate
// lookup is bucketed by the filters' cover signatures (filter.CoverBloom):
// a filter can only cover filters whose attribute fingerprint is a
// superset of its own, so whole buckets are skipped without any pairwise
// cover test. Buckets and their members are kept in canonical order, so
// deltas, forward sets, and even the work counters are a deterministic
// function of the operation history.
//
// Mutually covering but non-identical filters (equal accepted sets, e.g.
// `x = 5` and `x in {5}`) are deterministically represented by the one
// with the lexicographically smallest ID — the same tie-break
// Covering.Reduce applies — so the incremental forward set is always
// identical to the batch one.
type CoverIndex struct {
	items     map[string]*coverItem
	groups    map[uint64]*coverGroup
	order     []*coverGroup // sorted by bloom
	forwarded int
	checks    uint64
	saved     uint64
}

// coverItem is one tracked filter.
type coverItem struct {
	f       filter.Filter
	id      string
	bloom   uint64
	refs    int
	covered bool
}

// coverGroup is one signature bucket; members share an attribute
// fingerprint and stay sorted by ID.
type coverGroup struct {
	bloom uint64
	items []*coverItem
}

func (g *coverGroup) insert(it *coverItem) {
	i := sort.Search(len(g.items), func(i int) bool { return g.items[i].id >= it.id })
	g.items = slices.Insert(g.items, i, it)
}

func (g *coverGroup) remove(it *coverItem) {
	i := sort.Search(len(g.items), func(i int) bool { return g.items[i].id >= it.id })
	if i < len(g.items) && g.items[i] == it {
		g.items = slices.Delete(g.items, i, i+1)
	}
}

// CoverDelta is the forward-set change one Add or Remove produces:
// Forward lists filters that must newly be subscribed upstream, Retract
// filters whose upstream subscription is no longer needed. Both are
// sorted by canonical filter ID.
type CoverDelta struct {
	Forward []filter.Filter
	Retract []filter.Filter
}

// Empty reports whether the delta changes nothing.
func (d CoverDelta) Empty() bool { return len(d.Forward) == 0 && len(d.Retract) == 0 }

// CoverIndexStats describes the index's shape and the work its signature
// bucketing avoided.
type CoverIndexStats struct {
	// Items is the number of distinct tracked filters; Forwarded the size
	// of the current minimal cover set.
	Items, Forwarded int
	// CoverChecks counts full Covers evaluations; CoverChecksSaved counts
	// candidate pairs dismissed by the signature-bucket prefilter without
	// a Covers call.
	CoverChecks, CoverChecksSaved uint64
}

// NewCoverIndex returns an empty index.
func NewCoverIndex() *CoverIndex {
	return &CoverIndex{
		items:  make(map[string]*coverItem),
		groups: make(map[uint64]*coverGroup),
	}
}

// Len returns the number of distinct tracked filters.
func (x *CoverIndex) Len() int { return len(x.items) }

// Stats returns a snapshot of the index counters.
func (x *CoverIndex) Stats() CoverIndexStats {
	return CoverIndexStats{
		Items:            len(x.items),
		Forwarded:        x.forwarded,
		CoverChecks:      x.checks,
		CoverChecksSaved: x.saved,
	}
}

// Forwarded returns the current minimal cover set, sorted by filter ID.
func (x *CoverIndex) Forwarded() []filter.Filter {
	out := make([]filter.Filter, 0, x.forwarded)
	for _, it := range x.items {
		if !it.covered {
			out = append(out, it.f)
		}
	}
	sortFiltersByID(out)
	return out
}

// Add tracks one more reference to f and returns the forward-set delta:
// f itself if it enters the cover set, plus retractions for previously
// forwarded filters that f now covers. A covered newcomer can still
// retract forwarded filters — coverage by any tracked filter counts, not
// only by forwarded ones — which keeps the set identical to the batch
// removeCovered result.
func (x *CoverIndex) Add(f filter.Filter) CoverDelta {
	id := f.ID()
	if it, ok := x.items[id]; ok {
		it.refs++
		return CoverDelta{}
	}
	it := &coverItem{f: f, id: id, bloom: f.CoverBloom(), refs: 1}
	it.covered = x.coveredBy(it) != nil
	x.items[id] = it
	g := x.groups[it.bloom]
	if g == nil {
		g = &coverGroup{bloom: it.bloom}
		x.groups[it.bloom] = g
		i := sort.Search(len(x.order), func(i int) bool { return x.order[i].bloom >= it.bloom })
		x.order = slices.Insert(x.order, i, g)
	}
	g.insert(it)

	var d CoverDelta
	if !it.covered {
		x.forwarded++
		d.Forward = append(d.Forward, f)
	}
	// Filters the newcomer forces out of the cover set: only groups whose
	// attribute fingerprint is a superset of f's can hold them.
	for _, grp := range x.order {
		if it.bloom&^grp.bloom != 0 {
			x.saved += uint64(len(grp.items))
			continue
		}
		for _, o := range grp.items {
			if o == it || o.covered {
				continue
			}
			if x.drops(it, o) {
				o.covered = true
				x.forwarded--
				d.Retract = append(d.Retract, o.f)
			}
		}
	}
	sortFiltersByID(d.Retract)
	return d
}

// Remove drops one reference to f and, when it was the last, returns the
// forward-set delta: a retraction if f was forwarded, plus re-forwards
// for filters that only f kept covered. Removing an unknown filter is a
// no-op.
func (x *CoverIndex) Remove(f filter.Filter) CoverDelta {
	id := f.ID()
	it, ok := x.items[id]
	if !ok {
		return CoverDelta{}
	}
	if it.refs--; it.refs > 0 {
		return CoverDelta{}
	}
	delete(x.items, id)
	g := x.groups[it.bloom]
	g.remove(it)
	if len(g.items) == 0 {
		delete(x.groups, it.bloom)
		i := sort.Search(len(x.order), func(i int) bool { return x.order[i].bloom >= it.bloom })
		if i < len(x.order) && x.order[i] == g {
			x.order = slices.Delete(x.order, i, i+1)
		}
	}

	var d CoverDelta
	if !it.covered {
		x.forwarded--
		d.Retract = append(d.Retract, it.f)
	}
	// Covered filters for which the departed item was a witness must be
	// re-examined against the remaining set.
	for _, grp := range x.order {
		if it.bloom&^grp.bloom != 0 {
			x.saved += uint64(len(grp.items))
			continue
		}
		for _, o := range grp.items {
			if !o.covered || !x.drops(it, o) {
				continue
			}
			if x.coveredBy(o) == nil {
				o.covered = false
				x.forwarded++
				d.Forward = append(d.Forward, o.f)
			}
		}
	}
	sortFiltersByID(d.Forward)
	return d
}

// coveredBy returns a tracked witness that forces it out of the cover
// set, or nil. Witnesses can only live in groups whose attribute
// fingerprint is a subset of it's.
func (x *CoverIndex) coveredBy(it *coverItem) *coverItem {
	for _, grp := range x.order {
		if grp.bloom&^it.bloom != 0 {
			x.saved += uint64(len(grp.items))
			continue
		}
		for _, o := range grp.items {
			if o == it {
				continue
			}
			if x.drops(o, it) {
				return o
			}
		}
	}
	return nil
}

// drops reports whether a's presence forces o out of the cover set: a
// strictly covers o, or the two cover each other and a wins the
// deterministic smaller-ID tie-break.
func (x *CoverIndex) drops(a, o *coverItem) bool {
	x.checks++
	if !a.f.Covers(o.f) {
		return false
	}
	x.checks++
	if !o.f.Covers(a.f) {
		return true
	}
	return a.id < o.id
}

// sortFiltersByID orders filters by canonical identity, the package's
// deterministic wire order for administrative traffic.
func sortFiltersByID(fs []filter.Filter) {
	slices.SortFunc(fs, func(a, b filter.Filter) int {
		return strings.Compare(a.ID(), b.ID())
	})
}
