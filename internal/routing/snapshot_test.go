package routing

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/wire"
)

// entriesEqual renders two entry slices and compares them.
func entriesEqual(a, b []Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].key() != b[i].key() {
			return false
		}
	}
	return true
}

// TestSnapshotParityProperty drives a random mutate/match workload and
// checks, at every step, that a fresh snapshot reproduces the live table's
// match results exactly, and that a snapshot taken earlier still
// reproduces the results from its own point in time (immutability under
// subsequent mutation).
func TestSnapshotParityProperty(t *testing.T) {
	r := rand.New(rand.NewSource(0x5eed))
	tbl := NewTable()
	var live []Entry

	var held []*Snapshot

	for step := 0; step < 400; step++ {
		switch {
		case len(live) == 0 || r.Intn(3) != 0:
			e := randEntry(r)
			if tbl.Add(e) {
				live = append(live, e)
			}
		default:
			i := r.Intn(len(live))
			if !tbl.Remove(live[i]) {
				t.Fatalf("step %d: remove of live entry failed", step)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}

		if step%7 == 0 {
			sn := tbl.Snapshot()
			if sn.Len() != tbl.Len() {
				t.Fatalf("step %d: snapshot len %d, table len %d", step, sn.Len(), tbl.Len())
			}
			for p := 0; p < 3; p++ {
				n := randNotification(r)
				from := randHop(r)
				want := tbl.MatchingEntries(n, from)
				got := sn.MatchingEntries(n, from)
				if !entriesEqual(got, want) {
					t.Fatalf("step %d: snapshot/live mismatch\nsnap: %v\nlive: %v", step, got, want)
				}
				// Re-probe this snapshot at the end of the run: results
				// must be unchanged by everything that happens after.
				nn, ff, ww := n, from, want
				t.Cleanup(func() {
					end := sn.MatchingEntries(nn, ff)
					if !entriesEqual(end, ww) {
						t.Fatalf("frozen snapshot drifted:\nthen: %v\nnow:  %v", ww, end)
					}
				})
			}
			held = append(held, sn)
		}
	}
	if len(held) < 2 {
		t.Fatal("workload held too few snapshots")
	}
	st := tbl.SnapshotStats()
	if st.Builds == 0 || st.Builds != st.Clones+st.Rebuilds {
		t.Fatalf("inconsistent snapshot stats: %+v", st)
	}
	if st.Gen == 0 {
		t.Fatal("mutations did not bump the generation")
	}
}

// TestSnapshotCaching checks the lazy copy-on-write contract: repeated
// Snapshot calls without mutation return the identical pointer; any
// mutation invalidates it and strictly increases the generation.
func TestSnapshotCaching(t *testing.T) {
	tbl := NewTable()
	r := rand.New(rand.NewSource(7))
	e1, e2 := randEntry(r), randEntry(r)
	tbl.Add(e1)

	s1 := tbl.Snapshot()
	if tbl.Snapshot() != s1 {
		t.Fatal("unmutated table rebuilt its snapshot")
	}
	tbl.Add(e2)
	s2 := tbl.Snapshot()
	if s2 == s1 {
		t.Fatal("mutation did not invalidate the cached snapshot")
	}
	if s2.Gen() <= s1.Gen() {
		t.Fatalf("generation not monotonic: %d then %d", s1.Gen(), s2.Gen())
	}
	if s1.Len() != 1 || s2.Len() != 2 {
		t.Fatalf("snapshot lens = %d, %d", s1.Len(), s2.Len())
	}
	// No-op mutations (removing an absent entry) must not invalidate.
	tbl.Remove(randEntry(r))
	if tbl.Snapshot() != s2 {
		t.Fatal("no-op remove invalidated the snapshot")
	}
	st := tbl.SnapshotStats()
	if st.Builds != 2 {
		t.Fatalf("expected exactly 2 builds, got %+v", st)
	}
}

// TestSnapshotRebuildPolicy forces heavy churn so the free-slot list
// dominates the slot array and checks that the builder switches from
// cloning to compacting rebuilds (and that rebuilt snapshots still match
// correctly).
func TestSnapshotRebuildPolicy(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	tbl := NewTable()
	var es []Entry
	for i := 0; i < 64; i++ {
		e := randEntry(r)
		if tbl.Add(e) {
			es = append(es, e)
		}
	}
	tbl.Snapshot()
	if st := tbl.SnapshotStats(); st.Clones != 1 || st.Rebuilds != 0 {
		t.Fatalf("dense table should clone: %+v", st)
	}
	// Remove most entries: the live slot array is now mostly holes.
	for _, e := range es[4:] {
		tbl.Remove(e)
	}
	sn := tbl.Snapshot()
	if st := tbl.SnapshotStats(); st.Rebuilds != 1 {
		t.Fatalf("churned table should rebuild: %+v", st)
	}
	for i := 0; i < 20; i++ {
		n := randNotification(r)
		from := randHop(r)
		if !entriesEqual(sn.MatchingEntries(n, from), tbl.MatchingEntries(n, from)) {
			t.Fatal("rebuilt snapshot disagrees with live table")
		}
	}
}

// TestSnapshotConcurrentMatch hammers one snapshot from many goroutines
// while the live table keeps mutating and rebuilding new snapshots —
// the -race guarantee the parallel publish pipeline relies on.
func TestSnapshotConcurrentMatch(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	tbl := NewTable()
	for i := 0; i < 128; i++ {
		tbl.Add(randEntry(r))
	}
	sn := tbl.Snapshot()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := randNotification(rr)
				sn.EachMatchingEntry(n, wire.Hop{}, func(e *Entry) {
					if e.Filter.ID() == "" && len(e.Filter.Constraints()) > 0 {
						t.Error("corrupt entry observed")
					}
				})
			}
		}(int64(g) + 1)
	}
	for i := 0; i < 200; i++ {
		tbl.Add(randEntry(r))
		if i%3 == 0 {
			tbl.Snapshot()
		}
	}
	close(stop)
	wg.Wait()
	if st := tbl.SnapshotStats(); st.Builds == 0 {
		t.Fatalf("no builds recorded: %+v", st)
	}
}

// TestSnapshotEmptyTable checks the degenerate case.
func TestSnapshotEmptyTable(t *testing.T) {
	tbl := NewTable()
	sn := tbl.Snapshot()
	if sn.Len() != 0 {
		t.Fatalf("empty snapshot len = %d", sn.Len())
	}
	if es := sn.MatchingEntries(randNotification(rand.New(rand.NewSource(1))), wire.Hop{}); len(es) != 0 {
		t.Fatalf("empty snapshot matched %v", es)
	}
}
