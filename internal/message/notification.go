package message

import (
	"sort"
	"strings"
)

// Notification is an immutable event notification: a set of attribute
// name/value pairs describing an occurred event. Notifications are injected
// into the event system by producers and conveyed to consumers whose
// subscription filters match.
//
// The representation is a canonical attribute slice sorted by name with
// unique names and valid values. Canonicality is what the zero-copy
// forwarding path relies on: because every Notification is sorted by
// construction, its binary encoding is a deterministic function of its
// content, so a broker that decodes a canonical frame can forward the
// inbound bytes verbatim instead of re-encoding (see package wire).
type Notification struct {
	attrs []Attr // sorted by Name, names unique, values valid
}

// An Attr is a single name/value pair, used by the NewAttrs constructor and
// the indexed At accessor.
type Attr struct {
	Name  string
	Value Value
}

// New builds a notification from the given attributes. The map is not
// retained, so the caller may reuse it. Invalid values are dropped.
func New(attrs map[string]Value) Notification {
	out := make([]Attr, 0, len(attrs))
	for k, v := range attrs {
		if v.IsValid() {
			out = append(out, Attr{Name: k, Value: v})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return Notification{attrs: out}
}

// NewAttrs builds a notification from a list of attributes. Later
// duplicates win.
func NewAttrs(attrs ...Attr) Notification {
	out := make([]Attr, 0, len(attrs))
	for _, a := range attrs {
		if a.Value.IsValid() {
			out = append(out, a)
		}
	}
	return Notification{attrs: normalizeAttrs(out)}
}

// normalizeAttrs sorts attrs by name and collapses duplicate names keeping
// the last occurrence (map-insertion semantics: later wins). It mutates and
// returns its argument.
func normalizeAttrs(attrs []Attr) []Attr {
	sort.SliceStable(attrs, func(i, j int) bool { return attrs[i].Name < attrs[j].Name })
	j := 0
	for i := 0; i < len(attrs); i++ {
		if j > 0 && attrs[j-1].Name == attrs[i].Name {
			attrs[j-1] = attrs[i]
			continue
		}
		attrs[j] = attrs[i]
		j++
	}
	return attrs[:j]
}

// find binary-searches for name, returning its index, or the insertion
// point and false.
func (n Notification) find(name string) (int, bool) {
	lo, hi := 0, len(n.attrs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if n.attrs[mid].Name < name {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(n.attrs) && n.attrs[lo].Name == name
}

// Get returns the value of the named attribute and whether it is present.
func (n Notification) Get(name string) (Value, bool) {
	if i, ok := n.find(name); ok {
		return n.attrs[i].Value, true
	}
	return Value{}, false
}

// Has reports whether the named attribute is present.
func (n Notification) Has(name string) bool {
	_, ok := n.find(name)
	return ok
}

// Len returns the number of attributes.
func (n Notification) Len() int { return len(n.attrs) }

// At returns the i'th attribute in sorted name order, 0 <= i < Len().
// Together with Len it gives indexed, allocation-free access to the
// canonical attribute sequence — the routing match index merges it against
// its own sorted attribute list.
func (n Notification) At(i int) Attr { return n.attrs[i] }

// Each calls fn for every attribute until fn returns false. Attributes are
// visited in sorted name order. It is the allocation-free alternative to
// Names+Get for callers that visit attributes on a hot path.
func (n Notification) Each(fn func(name string, v Value) bool) {
	for _, a := range n.attrs {
		if !fn(a.Name, a.Value) {
			return
		}
	}
}

// Names returns the attribute names in sorted order.
func (n Notification) Names() []string {
	names := make([]string, len(n.attrs))
	for i, a := range n.attrs {
		names[i] = a.Name
	}
	return names
}

// With returns a copy of the notification with one attribute added or
// replaced, built with a single copy of the attribute slice. The receiver
// is not modified; an invalid value leaves the content unchanged.
func (n Notification) With(name string, v Value) Notification {
	if !v.IsValid() {
		return n // notifications are immutable, sharing the slice is safe
	}
	i, ok := n.find(name)
	if ok {
		cp := make([]Attr, len(n.attrs))
		copy(cp, n.attrs)
		cp[i].Value = v
		return Notification{attrs: cp}
	}
	cp := make([]Attr, len(n.attrs)+1)
	copy(cp, n.attrs[:i])
	cp[i] = Attr{Name: name, Value: v}
	copy(cp[i+1:], n.attrs[i:])
	return Notification{attrs: cp}
}

// Equal reports whether two notifications carry exactly the same
// attributes. Both sides are canonical, so one ordered walk suffices.
func (n Notification) Equal(m Notification) bool {
	if len(n.attrs) != len(m.attrs) {
		return false
	}
	for i := range n.attrs {
		if n.attrs[i].Name != m.attrs[i].Name || !n.attrs[i].Value.Equal(m.attrs[i].Value) {
			return false
		}
	}
	return true
}

// String renders the notification as "(a = 1), (b = "x")" in sorted
// attribute order, mirroring the paper's notation.
func (n Notification) String() string {
	var b strings.Builder
	for i, a := range n.attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteByte('(')
		b.WriteString(a.Name)
		b.WriteString(" = ")
		b.WriteString(a.Value.String())
		b.WriteByte(')')
	}
	return b.String()
}
