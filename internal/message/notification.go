package message

import (
	"sort"
	"strings"
)

// Notification is an immutable event notification: a set of attribute
// name/value pairs describing an occurred event. Notifications are injected
// into the event system by producers and conveyed to consumers whose
// subscription filters match.
type Notification struct {
	attrs map[string]Value
}

// New builds a notification from the given attributes. The map is copied,
// so the caller may reuse it. Invalid values are dropped.
func New(attrs map[string]Value) Notification {
	cp := make(map[string]Value, len(attrs))
	for k, v := range attrs {
		if v.IsValid() {
			cp[k] = v
		}
	}
	return Notification{attrs: cp}
}

// A Attr is a single name/value pair, used by the NewAttrs constructor.
type Attr struct {
	Name  string
	Value Value
}

// NewAttrs builds a notification from a list of attributes. Later
// duplicates win.
func NewAttrs(attrs ...Attr) Notification {
	m := make(map[string]Value, len(attrs))
	for _, a := range attrs {
		if a.Value.IsValid() {
			m[a.Name] = a.Value
		}
	}
	return Notification{attrs: m}
}

// Get returns the value of the named attribute and whether it is present.
func (n Notification) Get(name string) (Value, bool) {
	v, ok := n.attrs[name]
	return v, ok
}

// Has reports whether the named attribute is present.
func (n Notification) Has(name string) bool {
	_, ok := n.attrs[name]
	return ok
}

// Len returns the number of attributes.
func (n Notification) Len() int { return len(n.attrs) }

// Each calls fn for every attribute until fn returns false. Iteration order
// is unspecified. It is the allocation-free alternative to Names+Get for
// callers (the routing match index) that visit attributes on a hot path.
func (n Notification) Each(fn func(name string, v Value) bool) {
	for k, v := range n.attrs {
		if !fn(k, v) {
			return
		}
	}
}

// Names returns the attribute names in sorted order.
func (n Notification) Names() []string {
	names := make([]string, 0, len(n.attrs))
	for k := range n.attrs {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// With returns a copy of the notification with one attribute added or
// replaced. The receiver is not modified.
func (n Notification) With(name string, v Value) Notification {
	cp := make(map[string]Value, len(n.attrs)+1)
	for k, val := range n.attrs {
		cp[k] = val
	}
	if v.IsValid() {
		cp[name] = v
	}
	return Notification{attrs: cp}
}

// Equal reports whether two notifications carry exactly the same
// attributes.
func (n Notification) Equal(m Notification) bool {
	if len(n.attrs) != len(m.attrs) {
		return false
	}
	for k, v := range n.attrs {
		w, ok := m.attrs[k]
		if !ok || !v.Equal(w) {
			return false
		}
	}
	return true
}

// String renders the notification as "(a = 1), (b = "x")" in sorted
// attribute order, mirroring the paper's notation.
func (n Notification) String() string {
	names := n.Names()
	var b strings.Builder
	for i, name := range names {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteByte('(')
		b.WriteString(name)
		b.WriteString(" = ")
		b.WriteString(n.attrs[name].String())
		b.WriteByte(')')
	}
	return b.String()
}
