package message_test

import (
	"bytes"
	"testing"

	"repro/internal/message"
)

// FuzzDecodeNotification feeds arbitrary bytes to the notification
// decoder: it must never panic, must never read past the reported length,
// and every successful decode must reach the canonical fixpoint —
// encoding the result and decoding again reproduces the same bytes.
// (Comparison is on encoded bytes, not Equal, so NaN payloads — which are
// never Equal to themselves — still round-trip.)
func FuzzDecodeNotification(f *testing.F) {
	seed := func(n message.Notification) { f.Add(message.AppendNotification(nil, n)) }
	seed(message.New(nil))
	seed(message.New(map[string]message.Value{
		"s": message.String("str"),
		"i": message.Int(99),
		"f": message.Float(1.25),
		"b": message.Bool(true),
	}))
	seed(message.NewAttrs(
		message.Attr{Name: "", Value: message.String("")},
		message.Attr{Name: "temperature", Value: message.Float(21.5)},
	))
	// Non-canonical: out-of-order attrs, forcing the normalize path.
	f.Add([]byte{2, 1, 'b', 2, 2, 1, 'a', 2, 4})

	f.Fuzz(func(t *testing.T, data []byte) {
		n, used, err := message.DecodeNotification(data)
		if err != nil {
			return
		}
		if used < 0 || used > len(data) {
			t.Fatalf("decode consumed %d of %d bytes", used, len(data))
		}
		enc := message.AppendNotification(nil, n)
		n2, used2, err := message.DecodeNotification(enc)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		if used2 != len(enc) {
			t.Fatalf("re-decode consumed %d of %d bytes", used2, len(enc))
		}
		enc2 := message.AppendNotification(nil, n2)
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encode/decode fixpoint violated:\n %x\n %x", enc, enc2)
		}
	})
}
