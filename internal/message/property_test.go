package message_test

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/message"
)

// Reference model: the map-backed Notification the slice representation
// replaced. The property test drives both through the same operation
// sequences and requires identical observable behavior, plus bytewise
// identical encodings — mixed-version peers must interoperate.

type refNotif map[string]message.Value

func refNew(attrs map[string]message.Value) refNotif {
	cp := make(refNotif, len(attrs))
	for k, v := range attrs {
		if v.IsValid() {
			cp[k] = v
		}
	}
	return cp
}

func refNewAttrs(attrs []message.Attr) refNotif {
	m := make(refNotif, len(attrs))
	for _, a := range attrs {
		if a.Value.IsValid() {
			m[a.Name] = a.Value
		}
	}
	return m
}

func (r refNotif) names() []string {
	names := make([]string, 0, len(r))
	for k := range r {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

func (r refNotif) with(name string, v message.Value) refNotif {
	cp := make(refNotif, len(r)+1)
	for k, val := range r {
		cp[k] = val
	}
	if v.IsValid() {
		cp[name] = v
	}
	return cp
}

func (r refNotif) equal(o refNotif) bool {
	if len(r) != len(o) {
		return false
	}
	for k, v := range r {
		w, ok := o[k]
		if !ok || !v.Equal(w) {
			return false
		}
	}
	return true
}

// refEncode is the seed codec verbatim: count, then name/value pairs in
// sorted name order.
func (r refNotif) encode() []byte {
	names := r.names()
	buf := binary.AppendUvarint(nil, uint64(len(names)))
	for _, name := range names {
		buf = binary.AppendUvarint(buf, uint64(len(name)))
		buf = append(buf, name...)
		buf = message.AppendValue(buf, r[name])
	}
	return buf
}

var propNames = []string{"", "a", "aa", "ab", "b", "temperature", "room", "cost", "loc", "x"}

func randValue(rng *rand.Rand) message.Value {
	switch rng.Intn(6) {
	case 0:
		return message.String("")
	case 1:
		return message.String(propNames[rng.Intn(len(propNames))])
	case 2:
		return message.Int(rng.Int63n(100) - 50)
	case 3:
		return message.Float(rng.NormFloat64())
	case 4:
		return message.Bool(rng.Intn(2) == 0)
	default:
		return message.Value{} // invalid: both impls must drop it
	}
}

func randAttrs(rng *rand.Rand) []message.Attr {
	n := rng.Intn(8)
	attrs := make([]message.Attr, n)
	for i := range attrs {
		attrs[i] = message.Attr{
			Name:  propNames[rng.Intn(len(propNames))], // collisions on purpose
			Value: randValue(rng),
		}
	}
	return attrs
}

func checkParity(t *testing.T, n message.Notification, ref refNotif) {
	t.Helper()
	if n.Len() != len(ref) {
		t.Fatalf("Len() = %d, reference %d", n.Len(), len(ref))
	}
	wantNames := ref.names()
	gotNames := n.Names()
	if len(gotNames) != len(wantNames) {
		t.Fatalf("Names() = %v, reference %v", gotNames, wantNames)
	}
	for i := range wantNames {
		if gotNames[i] != wantNames[i] {
			t.Fatalf("Names() = %v, reference %v", gotNames, wantNames)
		}
	}
	for _, name := range propNames {
		gv, gok := n.Get(name)
		rv, rok := ref[name]
		if gok != rok || (gok && !gv.Equal(rv)) {
			t.Fatalf("Get(%q) = %v,%v; reference %v,%v", name, gv, gok, rv, rok)
		}
		if n.Has(name) != rok {
			t.Fatalf("Has(%q) = %v, reference %v", name, n.Has(name), rok)
		}
	}
	// Each must visit exactly the reference's pairs, in sorted name order.
	i := 0
	n.Each(func(name string, v message.Value) bool {
		if i >= len(wantNames) || name != wantNames[i] || !v.Equal(ref[name]) {
			t.Fatalf("Each visit %d: (%q, %s)", i, name, v)
		}
		i++
		return true
	})
	if i != len(wantNames) {
		t.Fatalf("Each visited %d of %d attrs", i, len(wantNames))
	}
	// At mirrors Each.
	for j := 0; j < n.Len(); j++ {
		a := n.At(j)
		if a.Name != wantNames[j] || !a.Value.Equal(ref[a.Name]) {
			t.Fatalf("At(%d) = %+v", j, a)
		}
	}
	// Encoded bytes must match the seed codec exactly.
	got := message.AppendNotification(nil, n)
	want := ref.encode()
	if !bytes.Equal(got, want) {
		t.Fatalf("encoding diverged from map-backed reference:\n got %x\nwant %x", got, want)
	}
	// And the codec must round-trip.
	dec, used, err := message.DecodeNotification(got)
	if err != nil || used != len(got) {
		t.Fatalf("round trip: used %d of %d, err %v", used, len(got), err)
	}
	if !notifEqualModuloNaN(dec, n) {
		t.Fatalf("round trip mismatch: %s vs %s", dec, n)
	}
}

// notifEqualModuloNaN is Equal except NaN compares equal to NaN (Equal
// follows IEEE semantics where NaN != NaN, which would fail legitimate
// round trips).
func notifEqualModuloNaN(a, b message.Notification) bool {
	if a.Len() != b.Len() {
		return false
	}
	ok := true
	i := 0
	a.Each(func(name string, v message.Value) bool {
		w := b.At(i)
		i++
		if name != w.Name {
			ok = false
			return false
		}
		if v.Kind() == message.KindFloat && w.Value.Kind() == message.KindFloat &&
			math.IsNaN(v.FloatVal()) && math.IsNaN(w.Value.FloatVal()) {
			return true
		}
		if !v.Equal(w.Value) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// TestNotificationSliceVsMapReference drives the slice-backed Notification
// and the map-backed reference through randomized construction, With
// chains, and equality checks, requiring behavioral identity and bytewise
// codec compatibility.
func TestNotificationSliceVsMapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 2000; iter++ {
		var n message.Notification
		var ref refNotif
		if rng.Intn(2) == 0 {
			attrs := randAttrs(rng)
			n = message.NewAttrs(attrs...)
			ref = refNewAttrs(attrs)
		} else {
			m := make(map[string]message.Value)
			for _, a := range randAttrs(rng) {
				m[a.Name] = a.Value
			}
			n = message.New(m)
			ref = refNew(m)
		}
		checkParity(t, n, ref)

		// A chain of With ops, checked at every step; the receiver must
		// stay untouched.
		for w := rng.Intn(4); w > 0; w-- {
			name := propNames[rng.Intn(len(propNames))]
			v := randValue(rng)
			n2, ref2 := n.With(name, v), ref.with(name, v)
			checkParity(t, n, ref)
			checkParity(t, n2, ref2)
			n, ref = n2, ref2
		}

		// Equal parity against an independently generated notification.
		other := randAttrs(rng)
		on := message.NewAttrs(other...)
		oref := refNewAttrs(other)
		if n.Equal(on) != ref.equal(oref) {
			t.Fatalf("Equal diverged: slice %v, reference %v for %s vs %s",
				n.Equal(on), ref.equal(oref), n, on)
		}
		if !n.Equal(n) {
			t.Fatalf("Equal not reflexive for %s", n)
		}
	}
}

// TestNewAttrsLaterDuplicateWins pins the documented duplicate semantics:
// the last valid occurrence of a name wins, and invalid values neither
// insert nor erase.
func TestNewAttrsLaterDuplicateWins(t *testing.T) {
	n := message.NewAttrs(
		message.Attr{Name: "a", Value: message.Int(1)},
		message.Attr{Name: "a", Value: message.Int(2)},
		message.Attr{Name: "b", Value: message.String("x")},
		message.Attr{Name: "a", Value: message.Value{}}, // invalid: ignored
		message.Attr{Name: "b", Value: message.String("y")},
	)
	if n.Len() != 2 {
		t.Fatalf("Len = %d, want 2", n.Len())
	}
	if v, _ := n.Get("a"); v.IntVal() != 2 {
		t.Errorf("a = %s, want 2", v)
	}
	if v, _ := n.Get("b"); v.Str() != "y" {
		t.Errorf("b = %s, want y", v)
	}
}
