package message

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	tests := []struct {
		name string
		v    Value
		kind Kind
		str  string
	}{
		{"string", String("hi"), KindString, `"hi"`},
		{"int", Int(-42), KindInt, "-42"},
		{"float", Float(2.5), KindFloat, "2.5"},
		{"bool", Bool(true), KindBool, "true"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.Kind(); got != tt.kind {
				t.Errorf("Kind() = %v, want %v", got, tt.kind)
			}
			if !tt.v.IsValid() {
				t.Error("IsValid() = false")
			}
			if got := tt.v.String(); got != tt.str {
				t.Errorf("String() = %q, want %q", got, tt.str)
			}
		})
	}
	var zero Value
	if zero.IsValid() {
		t.Error("zero Value should be invalid")
	}
	if zero.Kind() != KindInvalid {
		t.Error("zero Value kind should be KindInvalid")
	}
}

func TestValueEqual(t *testing.T) {
	tests := []struct {
		a, b Value
		want bool
	}{
		{String("a"), String("a"), true},
		{String("a"), String("b"), false},
		{Int(1), Int(1), true},
		{Int(1), Int(2), false},
		{Int(1), Float(1), false}, // kinds differ
		{Float(1.5), Float(1.5), true},
		{Bool(true), Bool(true), true},
		{Bool(true), Bool(false), false},
		{String("1"), Int(1), false},
	}
	for _, tt := range tests {
		if got := tt.a.Equal(tt.b); got != tt.want {
			t.Errorf("%s.Equal(%s) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
		if got := tt.b.Equal(tt.a); got != tt.want {
			t.Errorf("Equal not symmetric for %s, %s", tt.a, tt.b)
		}
	}
}

func TestValueCompare(t *testing.T) {
	tests := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(2), Int(2), 0},
		{Float(1.5), Float(2.5), -1},
		{String("a"), String("b"), -1},
		{String("b"), String("b"), 0},
		{Bool(false), Bool(true), -1},
		{Bool(true), Bool(true), 0},
	}
	for _, tt := range tests {
		got, err := tt.a.Compare(tt.b)
		if err != nil {
			t.Fatalf("Compare(%s, %s): %v", tt.a, tt.b, err)
		}
		if got != tt.want {
			t.Errorf("Compare(%s, %s) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
	if _, err := Int(1).Compare(String("1")); err == nil {
		t.Error("cross-kind compare should fail")
	}
	if Int(1).Less(String("x")) {
		t.Error("cross-kind Less should be false")
	}
	if !Int(1).Less(Int(2)) {
		t.Error("1 < 2 should hold")
	}
}

func TestValueKeyDisambiguatesKinds(t *testing.T) {
	if Int(1).Key() == Float(1).Key() {
		t.Error("Int(1) and Float(1) must have distinct keys")
	}
	if String("true").Key() == Bool(true).Key() {
		t.Error("String(true) and Bool(true) must have distinct keys")
	}
}

func TestNotificationBasics(t *testing.T) {
	n := New(map[string]Value{
		"b":   Int(2),
		"a":   String("x"),
		"bad": {},
	})
	if n.Len() != 2 {
		t.Fatalf("Len() = %d, want 2 (invalid dropped)", n.Len())
	}
	if got := n.Names(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Names() = %v", got)
	}
	v, ok := n.Get("a")
	if !ok || v.Str() != "x" {
		t.Errorf("Get(a) = %v, %v", v, ok)
	}
	if n.Has("missing") {
		t.Error("Has(missing) = true")
	}
	if got := n.String(); got != `(a = "x"), (b = 2)` {
		t.Errorf("String() = %q", got)
	}
}

func TestNotificationWithDoesNotMutate(t *testing.T) {
	n := NewAttrs(Attr{"a", Int(1)})
	m := n.With("b", Int(2))
	if n.Len() != 1 {
		t.Error("With mutated the receiver")
	}
	if m.Len() != 2 {
		t.Error("With did not add")
	}
	if !n.Equal(NewAttrs(Attr{"a", Int(1)})) {
		t.Error("original changed")
	}
	if m.Equal(n) {
		t.Error("Equal should distinguish")
	}
}

func TestNotificationEqual(t *testing.T) {
	a := NewAttrs(Attr{"x", Int(1)}, Attr{"y", String("s")})
	b := New(map[string]Value{"y": String("s"), "x": Int(1)})
	if !a.Equal(b) {
		t.Error("equal notifications not Equal")
	}
	c := b.With("x", Int(2))
	if a.Equal(c) {
		t.Error("different values reported Equal")
	}
}

func TestValueCodecRoundTrip(t *testing.T) {
	values := []Value{
		String(""), String("hello"), String("with \x00 bytes"),
		Int(0), Int(-1), Int(math.MaxInt64), Int(math.MinInt64),
		Float(0), Float(-3.25), Float(math.Inf(1)), Float(math.SmallestNonzeroFloat64),
		Bool(true), Bool(false),
	}
	for _, v := range values {
		buf := AppendValue(nil, v)
		got, n, err := DecodeValue(buf)
		if err != nil {
			t.Fatalf("decode %s: %v", v, err)
		}
		if n != len(buf) {
			t.Errorf("decode %s consumed %d of %d bytes", v, n, len(buf))
		}
		if !got.Equal(v) {
			t.Errorf("round trip %s -> %s", v, got)
		}
	}
}

func TestValueCodecNaN(t *testing.T) {
	buf := AppendValue(nil, Float(math.NaN()))
	got, _, err := DecodeValue(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(got.FloatVal()) {
		t.Error("NaN did not survive the codec")
	}
}

func TestNotificationCodecRoundTrip(t *testing.T) {
	n := New(map[string]Value{
		"s": String("str"),
		"i": Int(99),
		"f": Float(1.25),
		"b": Bool(true),
	})
	buf := AppendNotification(nil, n)
	got, used, err := DecodeNotification(buf)
	if err != nil {
		t.Fatal(err)
	}
	if used != len(buf) {
		t.Errorf("consumed %d of %d", used, len(buf))
	}
	if !got.Equal(n) {
		t.Errorf("round trip mismatch: %s vs %s", n, got)
	}
}

func TestCodecTruncation(t *testing.T) {
	n := New(map[string]Value{"key": String("value"), "n": Int(7)})
	buf := AppendNotification(nil, n)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeNotification(buf[:cut]); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
	if _, _, err := DecodeValue(nil); err == nil {
		t.Error("empty value decode should fail")
	}
	if _, _, err := DecodeValue([]byte{99}); err == nil {
		t.Error("unknown kind should fail")
	}
}

// TestCodecQuickRoundTrip property-tests the codec over random
// notifications.
func TestCodecQuickRoundTrip(t *testing.T) {
	f := func(s1, s2 string, i int64, fl float64, b bool) bool {
		n := New(map[string]Value{
			"a" + s1: String(s2),
			"i":      Int(i),
			"f":      Float(fl),
			"b":      Bool(b),
		})
		buf := AppendNotification(nil, n)
		got, used, err := DecodeNotification(buf)
		if err != nil || used != len(buf) {
			return false
		}
		if math.IsNaN(fl) {
			fv, _ := got.Get("f")
			return math.IsNaN(fv.FloatVal())
		}
		return got.Equal(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestCompareTotalOrderQuick property-tests antisymmetry and transitivity
// of the value ordering within a kind.
func TestCompareTotalOrderQuick(t *testing.T) {
	f := func(a, b, c int64) bool {
		va, vb, vc := Int(a), Int(b), Int(c)
		ab, _ := va.Compare(vb)
		ba, _ := vb.Compare(va)
		if ab != -ba {
			return false
		}
		ac, _ := va.Compare(vc)
		bc, _ := vb.Compare(vc)
		if ab <= 0 && bc <= 0 && ac > 0 {
			return false // transitivity violated
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
