// Package message defines the notification data model of the pub/sub
// middleware: typed attribute values, notifications built from name/value
// pairs, and a compact binary codec used by the TCP transport.
//
// The model follows the paper's description of Rebeca (Section 2.1): a
// notification is a set of name/value pairs such as
//
//	(service = "parking"), (location = "100 Rebeca Drive"), (cost < 3)
//
// Values are totally ordered within a kind, which is what content-based
// filters rely on for <, <=, >, >= constraints.
package message

import (
	"errors"
	"fmt"
	"strconv"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// Value kinds. KindInvalid is the zero value so that an uninitialized
// Value is detectably invalid.
const (
	KindInvalid Kind = iota
	KindString
	KindInt
	KindFloat
	KindBool
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	default:
		return "invalid"
	}
}

// ErrKindMismatch is returned when two values of different kinds are
// compared with an ordering comparison.
var ErrKindMismatch = errors.New("message: value kinds do not match")

// Value is an immutable typed attribute value. The zero Value is invalid.
type Value struct {
	kind Kind
	str  string
	num  int64
	fnum float64
	b    bool
}

// String constructs a string-valued attribute value.
func String(s string) Value { return Value{kind: KindString, str: s} }

// Int constructs an integer-valued attribute value.
func Int(i int64) Value { return Value{kind: KindInt, num: i} }

// Float constructs a float-valued attribute value.
func Float(f float64) Value { return Value{kind: KindFloat, fnum: f} }

// Bool constructs a boolean-valued attribute value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Kind reports the dynamic kind of the value.
func (v Value) Kind() Kind { return v.kind }

// IsValid reports whether the value carries a kind.
func (v Value) IsValid() bool { return v.kind != KindInvalid }

// Str returns the string payload. It is only meaningful for KindString.
func (v Value) Str() string { return v.str }

// IntVal returns the integer payload. It is only meaningful for KindInt.
func (v Value) IntVal() int64 { return v.num }

// FloatVal returns the float payload. It is only meaningful for KindFloat.
func (v Value) FloatVal() float64 { return v.fnum }

// BoolVal returns the bool payload. It is only meaningful for KindBool.
func (v Value) BoolVal() bool { return v.b }

// Equal reports whether two values have the same kind and payload.
func (v Value) Equal(w Value) bool {
	if v.kind != w.kind {
		return false
	}
	switch v.kind {
	case KindString:
		return v.str == w.str
	case KindInt:
		return v.num == w.num
	case KindFloat:
		return v.fnum == w.fnum
	case KindBool:
		return v.b == w.b
	default:
		return true
	}
}

// Compare totally orders two values of the same kind, returning -1, 0, or
// +1. Booleans order false < true. Comparing values of different kinds
// returns ErrKindMismatch.
func (v Value) Compare(w Value) (int, error) {
	if v.kind != w.kind {
		return 0, ErrKindMismatch
	}
	switch v.kind {
	case KindString:
		switch {
		case v.str < w.str:
			return -1, nil
		case v.str > w.str:
			return 1, nil
		}
		return 0, nil
	case KindInt:
		switch {
		case v.num < w.num:
			return -1, nil
		case v.num > w.num:
			return 1, nil
		}
		return 0, nil
	case KindFloat:
		switch {
		case v.fnum < w.fnum:
			return -1, nil
		case v.fnum > w.fnum:
			return 1, nil
		}
		return 0, nil
	case KindBool:
		switch {
		case !v.b && w.b:
			return -1, nil
		case v.b && !w.b:
			return 1, nil
		}
		return 0, nil
	default:
		return 0, fmt.Errorf("message: compare invalid value: %w", ErrKindMismatch)
	}
}

// Less reports whether v orders strictly before w; it returns false when the
// kinds differ.
func (v Value) Less(w Value) bool {
	c, err := v.Compare(w)
	return err == nil && c < 0
}

// String renders the value for diagnostics. Strings are quoted so that the
// rendering is unambiguous.
func (v Value) String() string {
	switch v.kind {
	case KindString:
		return strconv.Quote(v.str)
	case KindInt:
		return strconv.FormatInt(v.num, 10)
	case KindFloat:
		return strconv.FormatFloat(v.fnum, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.b)
	default:
		return "<invalid>"
	}
}

// Key returns a canonical string usable as a map key or for building
// canonical filter identities. Unlike String it prefixes the kind so that
// Int(1) and Float(1) cannot collide.
func (v Value) Key() string {
	switch v.kind {
	case KindString:
		return "s:" + v.str
	case KindInt:
		return "i:" + strconv.FormatInt(v.num, 10)
	case KindFloat:
		return "f:" + strconv.FormatFloat(v.fnum, 'g', -1, 64)
	case KindBool:
		return "b:" + strconv.FormatBool(v.b)
	default:
		return "<invalid>"
	}
}
