package message

import (
	"sync"
	"sync/atomic"
)

// String interning for the frame decode path. A deployment publishes the
// same few attribute names ("temperature", "room", a location attribute) —
// and, for string-valued attributes, a bounded set of hot values ("4a",
// "parking") — millions of times, and before interning every TCP frame
// decode re-allocated each of them.
//
// An internTable is a copy-on-write map behind an atomic pointer: lookups
// are lock-free and — because the compiler elides the []byte→string
// conversion for map indexing — allocation-free on a hit. A miss copies
// the string, then takes a mutex and publishes an extended table.
//
// Tables are append-only and capped: attacker-controlled or unbounded
// name/value sets stop being interned once the cap is reached, so memory
// stays bounded while the hot strings of a real workload (seen early,
// seen often) keep their canonical copy forever. The cap is re-checked
// lock-free on the loaded table before the miss path, so a full table
// never sends decoders through the mutex. Names and values use separate
// tables so high-cardinality value traffic cannot crowd attribute names —
// the primary beneficiary — out of their slots.
type internTable struct {
	mu  sync.Mutex
	tab atomic.Pointer[map[string]string]
	max int
}

func newInternTable(max int) *internTable {
	t := &internTable{max: max}
	m := make(map[string]string)
	t.tab.Store(&m)
	return t
}

func (t *internTable) bytes(b []byte) string {
	m := *t.tab.Load()
	if s, ok := m[string(b)]; ok {
		return s
	}
	if len(m) >= t.max {
		return string(b) // table full: stay off the mutex forever
	}
	return t.miss(string(b))
}

func (t *internTable) miss(s string) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := *t.tab.Load()
	if c, ok := cur[s]; ok { // raced with another miss
		return c
	}
	if len(cur) >= t.max {
		return s
	}
	next := make(map[string]string, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[s] = s
	t.tab.Store(&next)
	return s
}

var (
	internedNames  = newInternTable(1 << 12)
	internedValues = newInternTable(1 << 12)
)

// maxInternedNameLen and maxInternedValueLen bound the strings eligible
// for interning: long strings rarely repeat, hashing them on every lookup
// would cost about as much as the copy the interner saves, and — because
// the tables never evict — an unbounded entry size would let a hostile
// peer pin up to cap × frame-size bytes for the life of the process.
const (
	maxInternedNameLen  = 64
	maxInternedValueLen = 32
)

// InternName returns a canonical string for the attribute name bytes. On a
// hit nothing is allocated; on a miss the name is copied once and, while
// the table has room, published for future frames. Oversized names fall
// back to a plain copy.
func InternName(b []byte) string {
	if len(b) > maxInternedNameLen {
		return string(b)
	}
	return internedNames.bytes(b)
}

// internValueBytes interns a short string attribute value. It is used
// only on the notification decode path — filter constraint constants and
// other control-plane strings must not consume the value table's slots.
func internValueBytes(b []byte) string {
	if len(b) > maxInternedValueLen {
		return string(b)
	}
	return internedValues.bytes(b)
}
