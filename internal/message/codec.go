package message

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Binary codec for values and notifications. The format is a simple
// length-prefixed layout:
//
//	value        := kind(u8) payload
//	  string     := len(uvarint) bytes
//	  int        := varint
//	  float      := 8 bytes IEEE 754 big endian
//	  bool       := u8 (0 or 1)
//	notification := count(uvarint) { name-len(uvarint) name value }*
//
// The codec is deliberately independent of encoding/gob so that framing is
// deterministic, versionable, and cheap.

// ErrTruncated is returned when a buffer ends before a full value or
// notification was decoded.
var ErrTruncated = errors.New("message: truncated encoding")

// AppendValue appends the binary encoding of v to buf and returns the
// extended slice.
func AppendValue(buf []byte, v Value) []byte {
	buf = append(buf, byte(v.kind))
	switch v.kind {
	case KindString:
		buf = binary.AppendUvarint(buf, uint64(len(v.str)))
		buf = append(buf, v.str...)
	case KindInt:
		buf = binary.AppendVarint(buf, v.num)
	case KindFloat:
		var tmp [8]byte
		binary.BigEndian.PutUint64(tmp[:], math.Float64bits(v.fnum))
		buf = append(buf, tmp[:]...)
	case KindBool:
		if v.b {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return buf
}

// DecodeValue decodes a value from the front of buf, returning the value
// and the number of bytes consumed. String payloads are plain copies; the
// notification decode path interns them instead (filter constants and
// other control-plane strings must not consume the value intern table).
func DecodeValue(buf []byte) (Value, int, error) {
	v, used, _, err := decodeValue(buf, false)
	return v, used, err
}

// minimalVarint reports whether the n-byte varint just read from the
// front of buf is the minimal encoding of its value: a multi-byte varint
// whose final byte is zero carries a redundant most-significant group, so
// re-encoding would produce different (shorter) bytes.
func minimalVarint(buf []byte, n int) bool { return n <= 1 || buf[n-1] != 0 }

// decodeValue decodes one value; the canonical result reports whether the
// encoding was minimal (every varint in its shortest form), which the
// notification decoder needs to decide frame pass-through eligibility.
func decodeValue(buf []byte, intern bool) (v Value, used int, canonical bool, err error) {
	if len(buf) == 0 {
		return Value{}, 0, false, ErrTruncated
	}
	kind := Kind(buf[0])
	rest := buf[1:]
	used = 1
	switch kind {
	case KindString:
		n, sz := binary.Uvarint(rest)
		if sz <= 0 {
			return Value{}, 0, false, ErrTruncated
		}
		canonical = minimalVarint(rest, sz)
		rest = rest[sz:]
		used += sz
		if uint64(len(rest)) < n {
			return Value{}, 0, false, ErrTruncated
		}
		if intern {
			return String(internValueBytes(rest[:n])), used + int(n), canonical, nil
		}
		return String(string(rest[:n])), used + int(n), canonical, nil
	case KindInt:
		i, sz := binary.Varint(rest)
		if sz <= 0 {
			return Value{}, 0, false, ErrTruncated
		}
		return Int(i), used + sz, minimalVarint(rest, sz), nil
	case KindFloat:
		if len(rest) < 8 {
			return Value{}, 0, false, ErrTruncated
		}
		return Float(math.Float64frombits(binary.BigEndian.Uint64(rest[:8]))), used + 8, true, nil
	case KindBool:
		if len(rest) < 1 {
			return Value{}, 0, false, ErrTruncated
		}
		// Any nonzero byte decodes as true, but only 1 re-encodes to the
		// same byte.
		return Bool(rest[0] != 0), used + 1, rest[0] <= 1, nil
	default:
		return Value{}, 0, false, fmt.Errorf("message: decode: unknown kind %d", kind)
	}
}

// AppendNotification appends the binary encoding of n to buf and returns
// the extended slice. The notification's attribute slice is already in
// sorted name order, so the canonical encoding is a single linear append —
// no per-encode name collection or sort.
func AppendNotification(buf []byte, n Notification) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(n.attrs)))
	for _, a := range n.attrs {
		buf = binary.AppendUvarint(buf, uint64(len(a.Name)))
		buf = append(buf, a.Name...)
		buf = AppendValue(buf, a.Value)
	}
	return buf
}

// DecodeNotification decodes a notification from the front of buf,
// returning it and the number of bytes consumed.
func DecodeNotification(buf []byte) (Notification, int, error) {
	n, used, _, err := DecodeNotificationCanonical(buf)
	return n, used, err
}

// DecodeNotificationCanonical decodes a notification from the front of buf
// and additionally reports whether the encoding was canonical — exactly
// the bytes AppendNotification would produce for the decoded content:
// attribute names strictly increasing, every varint minimal, every bool
// 0 or 1. A canonical input decodes straight into the attribute slice in
// wire order — one allocation, no map, no sort — and re-encoding the
// result reproduces the input bytes, which is what lets a transit broker
// forward the inbound frame without re-encoding. Non-canonical input (a
// foreign encoder) still decodes — names normalized with
// later-duplicate-wins semantics — but is reported as such so it is never
// passed through verbatim.
func DecodeNotificationCanonical(buf []byte) (Notification, int, bool, error) {
	count, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return Notification{}, 0, false, ErrTruncated
	}
	canonical := minimalVarint(buf, sz)
	used := sz
	buf = buf[sz:]
	// Clamp the preallocation against the remaining bytes: an encoded
	// attribute takes at least three bytes (name length, value kind, one
	// payload byte), so a hostile count — which may not even fit an int —
	// cannot force a huge allocation.
	capN := len(buf) / 3
	if count < uint64(capN) {
		capN = int(count)
	}
	attrs := make([]Attr, 0, capN)
	for i := uint64(0); i < count; i++ {
		nameLen, nsz := binary.Uvarint(buf)
		if nsz <= 0 {
			return Notification{}, 0, false, ErrTruncated
		}
		canonical = canonical && minimalVarint(buf, nsz)
		buf = buf[nsz:]
		used += nsz
		if uint64(len(buf)) < nameLen {
			return Notification{}, 0, false, ErrTruncated
		}
		name := InternName(buf[:nameLen])
		buf = buf[nameLen:]
		used += int(nameLen)
		v, vsz, vcanon, err := decodeValue(buf, true)
		if err != nil {
			return Notification{}, 0, false, err
		}
		buf = buf[vsz:]
		used += vsz
		canonical = canonical && vcanon
		if len(attrs) > 0 && name <= attrs[len(attrs)-1].Name {
			canonical = false
		}
		attrs = append(attrs, Attr{Name: name, Value: v})
	}
	if canonical {
		return Notification{attrs: attrs}, used, true, nil
	}
	return Notification{attrs: normalizeAttrs(attrs)}, used, false, nil
}
