package message

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Binary codec for values and notifications. The format is a simple
// length-prefixed layout:
//
//	value        := kind(u8) payload
//	  string     := len(uvarint) bytes
//	  int        := varint
//	  float      := 8 bytes IEEE 754 big endian
//	  bool       := u8 (0 or 1)
//	notification := count(uvarint) { name-len(uvarint) name value }*
//
// The codec is deliberately independent of encoding/gob so that framing is
// deterministic, versionable, and cheap.

// ErrTruncated is returned when a buffer ends before a full value or
// notification was decoded.
var ErrTruncated = errors.New("message: truncated encoding")

// AppendValue appends the binary encoding of v to buf and returns the
// extended slice.
func AppendValue(buf []byte, v Value) []byte {
	buf = append(buf, byte(v.kind))
	switch v.kind {
	case KindString:
		buf = binary.AppendUvarint(buf, uint64(len(v.str)))
		buf = append(buf, v.str...)
	case KindInt:
		buf = binary.AppendVarint(buf, v.num)
	case KindFloat:
		var tmp [8]byte
		binary.BigEndian.PutUint64(tmp[:], math.Float64bits(v.fnum))
		buf = append(buf, tmp[:]...)
	case KindBool:
		if v.b {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return buf
}

// DecodeValue decodes a value from the front of buf, returning the value
// and the number of bytes consumed.
func DecodeValue(buf []byte) (Value, int, error) {
	if len(buf) == 0 {
		return Value{}, 0, ErrTruncated
	}
	kind := Kind(buf[0])
	rest := buf[1:]
	used := 1
	switch kind {
	case KindString:
		n, sz := binary.Uvarint(rest)
		if sz <= 0 {
			return Value{}, 0, ErrTruncated
		}
		rest = rest[sz:]
		used += sz
		if uint64(len(rest)) < n {
			return Value{}, 0, ErrTruncated
		}
		return String(string(rest[:n])), used + int(n), nil
	case KindInt:
		i, sz := binary.Varint(rest)
		if sz <= 0 {
			return Value{}, 0, ErrTruncated
		}
		return Int(i), used + sz, nil
	case KindFloat:
		if len(rest) < 8 {
			return Value{}, 0, ErrTruncated
		}
		return Float(math.Float64frombits(binary.BigEndian.Uint64(rest[:8]))), used + 8, nil
	case KindBool:
		if len(rest) < 1 {
			return Value{}, 0, ErrTruncated
		}
		return Bool(rest[0] != 0), used + 1, nil
	default:
		return Value{}, 0, fmt.Errorf("message: decode: unknown kind %d", kind)
	}
}

// AppendNotification appends the binary encoding of n to buf and returns
// the extended slice. Attributes are encoded in sorted name order so the
// encoding is canonical.
func AppendNotification(buf []byte, n Notification) []byte {
	names := n.Names()
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, name := range names {
		buf = binary.AppendUvarint(buf, uint64(len(name)))
		buf = append(buf, name...)
		v, _ := n.Get(name)
		buf = AppendValue(buf, v)
	}
	return buf
}

// DecodeNotification decodes a notification from the front of buf,
// returning it and the number of bytes consumed.
func DecodeNotification(buf []byte) (Notification, int, error) {
	count, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return Notification{}, 0, ErrTruncated
	}
	used := sz
	buf = buf[sz:]
	attrs := make(map[string]Value, count)
	for i := uint64(0); i < count; i++ {
		nameLen, nsz := binary.Uvarint(buf)
		if nsz <= 0 {
			return Notification{}, 0, ErrTruncated
		}
		buf = buf[nsz:]
		used += nsz
		if uint64(len(buf)) < nameLen {
			return Notification{}, 0, ErrTruncated
		}
		name := string(buf[:nameLen])
		buf = buf[nameLen:]
		used += int(nameLen)
		v, vsz, err := DecodeValue(buf)
		if err != nil {
			return Notification{}, 0, err
		}
		buf = buf[vsz:]
		used += vsz
		attrs[name] = v
	}
	return Notification{attrs: attrs}, used, nil
}
