package opsdoc

import (
	"strings"
	"testing"
)

const sample = `# Operations

### demo flag reference

| Flag | Default | Meaning |
|---|---|---|
| ` + "`-id`" + ` | *(empty)* | node id (required) |
| ` + "`-listen`" + ` | ` + "`:7001`" + ` | TCP listen address |

Prose after the table.

### other flag reference

| Flag | Default | Meaning |
|---|---|---|
| ` + "`-x`" + ` | ` + "`1`" + ` | unrelated |
`

// TestParseFlagTable covers the happy path: the right section is picked,
// defaults round-trip (including the empty marker), usage is verbatim.
func TestParseFlagTable(t *testing.T) {
	rows, err := ParseFlagTable([]byte(sample), "demo")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %v", rows)
	}
	if r := rows["id"]; r.Default != "" || r.Usage != "node id (required)" {
		t.Errorf("id row = %+v", r)
	}
	if r := rows["listen"]; r.Default != ":7001" || r.Usage != "TCP listen address" {
		t.Errorf("listen row = %+v", r)
	}
	if _, ok := rows["x"]; ok {
		t.Error("picked up a row from the wrong section")
	}
}

// TestParseFlagTableErrors: missing sections, malformed rows, and
// duplicate flags must be loud — a silently empty table would make the
// drift guard pass vacuously.
func TestParseFlagTableErrors(t *testing.T) {
	cases := map[string]string{
		"missing heading": "# nothing here\n",
		"no table":        "### demo flag reference\n\njust prose\n",
		"bad flag cell":   "### demo flag reference\n\n| Flag | Default | Meaning |\n|---|---|---|\n| id | `x` | usage |\n",
		"wrong arity":     "### demo flag reference\n\n| Flag | Default | Meaning |\n|---|---|---|\n| `-id` | usage |\n",
		"duplicate":       "### demo flag reference\n\n| Flag | Default | Meaning |\n|---|---|---|\n| `-id` | `a` | u |\n| `-id` | `b` | u |\n",
	}
	for name, md := range cases {
		if _, err := ParseFlagTable([]byte(md), "demo"); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

// TestParseFlagTableStopsAtNextHeading: a second table later in the same
// document must not bleed into the first section's rows.
func TestParseFlagTableStopsAtNextHeading(t *testing.T) {
	rows, err := ParseFlagTable([]byte(sample), "other")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows["x"].Default != "1" {
		t.Errorf("other section rows = %v", rows)
	}
	if strings.Contains(sample, "missing") {
		t.Fatal("sample corrupted")
	}
}
