// Package opsdoc parses the flag-reference tables of OPERATIONS.md so
// the cmd packages can diff them against their live flag.FlagSet. The
// format contract: each binary has a heading "### <binary> flag
// reference" followed by one Markdown table whose rows are
//
//	| `-name` | `default` | usage text |
//
// with *(empty)* standing for an empty-string default. Usage text is
// compared verbatim, so a flag's Usage string must not contain the `|`
// cell separator.
package opsdoc

import (
	"fmt"
	"strings"
)

// Row is one documented flag: its default value and usage string, both
// expected to match flag.Flag's DefValue and Usage exactly.
type Row struct {
	Default string
	Usage   string
}

// ParseFlagTable extracts the flag table documented for the named binary
// and returns flag name (without the leading dash) to Row. It errors if
// the heading or the table is missing, or a row is malformed — a
// malformed table would make the drift guard vacuous.
func ParseFlagTable(md []byte, binary string) (map[string]Row, error) {
	heading := "### " + binary + " flag reference"
	lines := strings.Split(string(md), "\n")
	start := -1
	for i, l := range lines {
		if strings.TrimSpace(l) == heading {
			start = i + 1
			break
		}
	}
	if start < 0 {
		return nil, fmt.Errorf("opsdoc: heading %q not found", heading)
	}
	rows := make(map[string]Row)
	inTable := false
	for _, l := range lines[start:] {
		trimmed := strings.TrimSpace(l)
		if strings.HasPrefix(trimmed, "#") {
			break // next section
		}
		if !strings.HasPrefix(trimmed, "|") {
			if inTable {
				break // table ended
			}
			continue
		}
		inTable = true
		cells := splitRow(trimmed)
		if len(cells) != 3 {
			return nil, fmt.Errorf("opsdoc: row %q: want 3 cells, got %d", trimmed, len(cells))
		}
		if cells[0] == "Flag" || strings.HasPrefix(cells[0], "---") {
			continue // header or separator
		}
		name, err := flagName(cells[0])
		if err != nil {
			return nil, fmt.Errorf("opsdoc: row %q: %w", trimmed, err)
		}
		if _, dup := rows[name]; dup {
			return nil, fmt.Errorf("opsdoc: flag -%s documented twice", name)
		}
		rows[name] = Row{Default: defValue(cells[1]), Usage: cells[2]}
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("opsdoc: no flag table under %q", heading)
	}
	return rows, nil
}

// splitRow cuts "| a | b | c |" into trimmed cells.
func splitRow(row string) []string {
	row = strings.TrimPrefix(row, "|")
	row = strings.TrimSuffix(row, "|")
	parts := strings.Split(row, "|")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// flagName strips the `-name` backtick-and-dash dressing.
func flagName(cell string) (string, error) {
	s := strings.Trim(cell, "`")
	if !strings.HasPrefix(s, "-") || len(s) < 2 || s == cell {
		return "", fmt.Errorf("flag cell must look like `-name`, got %q", cell)
	}
	return s[1:], nil
}

// defValue maps the rendered default cell back to flag.Flag.DefValue:
// *(empty)* means the empty string, anything else is the backtick-quoted
// literal.
func defValue(cell string) string {
	if cell == "*(empty)*" {
		return ""
	}
	return strings.Trim(cell, "`")
}
