// Package registry provides broker membership for the elastic federation
// layer: who is part of the overlay, where each broker can be reached, and
// — through heartbeats — which brokers are still alive. The routing layers
// (internal/broker, internal/core) stay membership-agnostic; they consume
// this package's events to repair the overlay tree when a broker dies and
// to pick surviving parents for orphaned brokers and clients.
//
// Two implementations cover the two deployment shapes of the repo:
//
//   - Memory is the in-process registry used by core.Network and the
//     tests: registered members heartbeat under a TTL and a sweeper turns
//     missed heartbeats into Failed events (crash-stop failure detection,
//     the weakest detector sufficient for tree repair on an acyclic
//     overlay).
//   - File is the static bootstrap registry used by cmd/rebeca-broker: an
//     operator-maintained member file whose line order doubles as the
//     join-rank that keeps self-assembly acyclic.
//
// Both implementations are safe for concurrent use.
package registry

import (
	"errors"

	"repro/internal/wire"
)

// Errors returned by registry implementations.
var (
	ErrClosed        = errors.New("registry: closed")
	ErrUnknownMember = errors.New("registry: unknown member")
	ErrDuplicate     = errors.New("registry: duplicate member id")
)

// Member is one broker known to the registry.
type Member struct {
	// ID is the broker's overlay identity.
	ID wire.BrokerID
	// Addr is where the broker accepts peer and client connections. For
	// the in-process Memory registry it is informational; for File it is
	// the TCP address peers dial.
	Addr string
}

// EventKind classifies membership events.
type EventKind int

// The membership event kinds delivered to Watch observers.
const (
	// Joined announces a new live member (Register, or a member appearing
	// in a File registry on reload).
	Joined EventKind = iota
	// Left announces a voluntary departure (Deregister, or a member
	// removed from a File registry).
	Left
	// Failed announces a crash detected by the failure detector: the
	// member missed enough heartbeats to exceed its TTL. Failed members
	// are removed from the membership.
	Failed
)

// String returns the lower-case kind name.
func (k EventKind) String() string {
	switch k {
	case Joined:
		return "joined"
	case Left:
		return "left"
	case Failed:
		return "failed"
	}
	return "unknown"
}

// Event is one membership change.
type Event struct {
	Kind   EventKind
	Member Member
}

// Watcher receives membership events. Implementations invoke it from an
// internal goroutine (or from the mutating call for Memory); it must not
// block for long and must not call back into the registry.
type Watcher func(Event)

// Registry is the pluggable membership interface of the federation layer.
// Register/Deregister manage voluntary membership, Heartbeat feeds the
// failure detector, Members snapshots the live set in rank order (lowest
// rank first — the join order used to keep self-assembly acyclic), and
// Watch subscribes to membership changes.
type Registry interface {
	// Register adds a member (idempotent for an identical Member; an ID
	// collision with a different address returns ErrDuplicate).
	Register(m Member) error
	// Deregister removes a member voluntarily, emitting Left.
	Deregister(id wire.BrokerID) error
	// Heartbeat refreshes a member's liveness lease. Implementations
	// without failure detection may treat it as a no-op.
	Heartbeat(id wire.BrokerID) error
	// Members returns the live members in rank order.
	Members() []Member
	// Watch registers an observer for subsequent events and returns a
	// cancel function. Events already delivered are not replayed; callers
	// reconcile against Members first.
	Watch(w Watcher) (cancel func(), err error)
	// Close releases detector goroutines and cancels all watchers.
	Close() error
}
