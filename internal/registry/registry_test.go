package registry

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

// eventLog collects watcher events threadsafely.
type eventLog struct {
	mu     sync.Mutex
	events []Event
}

func (l *eventLog) add(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, e)
}

func (l *eventLog) snapshot() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.events...)
}

func TestMemoryRegisterDeregister(t *testing.T) {
	r := NewMemory(MemoryOptions{})
	defer r.Close()

	var log eventLog
	cancel, err := r.Watch(log.add)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	if err := r.Register(Member{ID: "b2", Addr: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(Member{ID: "b1", Addr: "y"}); err != nil {
		t.Fatal(err)
	}
	// Idempotent re-register of the identical member.
	if err := r.Register(Member{ID: "b1", Addr: "y"}); err != nil {
		t.Fatalf("re-register identical member: %v", err)
	}
	// ID collision with a different address is refused.
	if err := r.Register(Member{ID: "b1", Addr: "z"}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("want ErrDuplicate, got %v", err)
	}

	ms := r.Members()
	if len(ms) != 2 || ms[0].ID != "b1" || ms[1].ID != "b2" {
		t.Fatalf("members not in ID order: %v", ms)
	}

	if err := r.Deregister("b2"); err != nil {
		t.Fatal(err)
	}
	if err := r.Deregister("b2"); !errors.Is(err, ErrUnknownMember) {
		t.Fatalf("want ErrUnknownMember, got %v", err)
	}
	if got := len(r.Members()); got != 1 {
		t.Fatalf("want 1 member after deregister, got %d", got)
	}

	events := log.snapshot()
	if len(events) != 3 {
		t.Fatalf("want 3 events (2 joins, 1 left), got %v", events)
	}
	if events[2].Kind != Left || events[2].Member.ID != "b2" {
		t.Fatalf("want Left b2, got %+v", events[2])
	}
}

func TestMemoryFailureDetection(t *testing.T) {
	// Huge TTL: the background sweeper never fires on its own; the test
	// drives Sweep with explicit times for determinism.
	r := NewMemory(MemoryOptions{TTL: time.Hour})
	defer r.Close()

	var log eventLog
	cancel, err := r.Watch(log.add)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	for _, id := range []wire.BrokerID{"b1", "b2"} {
		if err := r.Register(Member{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	// Nothing expired yet.
	r.Sweep(time.Now())
	if got := len(r.Members()); got != 2 {
		t.Fatalf("premature expiry: %d members", got)
	}
	if err := r.Heartbeat("b1"); err != nil {
		t.Fatal(err)
	}
	// Sweep past every lease: both members fail. (Heartbeats genuinely
	// extending a lease is covered end-to-end by TestMemorySweeperRuns,
	// which needs the real clock.)
	r.Sweep(time.Now().Add(2 * time.Hour))
	if got := len(r.Members()); got != 0 {
		t.Fatalf("want all expired, got %d members", got)
	}
	var failed int
	for _, e := range log.snapshot() {
		if e.Kind == Failed {
			failed++
		}
	}
	if failed != 2 {
		t.Fatalf("want 2 Failed events, got %d", failed)
	}
	// Failed members can re-register (crash-recovery rejoin).
	if err := r.Register(Member{ID: "b1"}); err != nil {
		t.Fatalf("rejoin after failure: %v", err)
	}
	if err := r.Heartbeat("b2"); !errors.Is(err, ErrUnknownMember) {
		t.Fatalf("heartbeat of failed member: want ErrUnknownMember, got %v", err)
	}
}

func TestMemorySweeperRuns(t *testing.T) {
	// End-to-end against the real clock: a heartbeating member survives
	// the background sweeper while a silent one is expired.
	r := NewMemory(MemoryOptions{TTL: 100 * time.Millisecond, SweepEvery: 10 * time.Millisecond})
	defer r.Close()
	for _, id := range []wire.BrokerID{"alive", "silent"} {
		if err := r.Register(Member{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		t := time.NewTicker(10 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				_ = r.Heartbeat("alive")
			}
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ms := r.Members()
		if len(ms) == 1 && ms[0].ID == "alive" {
			return
		}
		if len(ms) == 0 {
			t.Fatal("sweeper expired the heartbeating member")
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweeper never expired the silent member; members: %v", ms)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestMemoryClose(t *testing.T) {
	r := NewMemory(MemoryOptions{TTL: time.Hour})
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	if err := r.Register(Member{ID: "b1"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if _, err := r.Watch(func(Event) {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func writeRegistryFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "members")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFileParseAndRank(t *testing.T) {
	path := writeRegistryFile(t, `
# overlay bootstrap order: root first
b1 host1:7001
b2 host2:7002   # transit
b3 host3:7003
`)
	r, err := NewFile(path, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ms := r.Members()
	if len(ms) != 3 {
		t.Fatalf("want 3 members, got %v", ms)
	}
	// File order is rank order, not ID order.
	for i, want := range []Member{
		{ID: "b1", Addr: "host1:7001"},
		{ID: "b2", Addr: "host2:7002"},
		{ID: "b3", Addr: "host3:7003"},
	} {
		if ms[i] != want {
			t.Fatalf("member %d: want %+v, got %+v", i, want, ms[i])
		}
	}
}

func TestFileParseErrors(t *testing.T) {
	for name, content := range map[string]string{
		"missing addr": "b1\n",
		"extra field":  "b1 host:1 extra\n",
		"duplicate id": "b1 host:1\nb1 host:2\n",
	} {
		path := writeRegistryFile(t, content)
		if _, err := NewFile(path, FileOptions{}); err == nil {
			t.Errorf("%s: want parse error, got nil", name)
		}
	}
	if _, err := NewFile(filepath.Join(t.TempDir(), "absent"), FileOptions{}); err == nil {
		t.Error("absent file: want error, got nil")
	}
}

func TestFileRegisterValidates(t *testing.T) {
	path := writeRegistryFile(t, "b1 host:1\nb2 host:2\n")
	r, err := NewFile(path, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Register(Member{ID: "b2", Addr: "host:2"}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(Member{ID: "b9", Addr: "host:9"}); !errors.Is(err, ErrUnknownMember) {
		t.Fatalf("unlisted member: want ErrUnknownMember, got %v", err)
	}
	if err := r.Heartbeat("b1"); err != nil {
		t.Fatalf("heartbeat no-op: %v", err)
	}
}

func TestFileDeregisterHidesAndRegisterRevives(t *testing.T) {
	path := writeRegistryFile(t, "b1 host:1\nb2 host:2\n")
	r, err := NewFile(path, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	var log eventLog
	cancel, err := r.Watch(log.add)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	if err := r.Deregister("b2"); err != nil {
		t.Fatal(err)
	}
	if ms := r.Members(); len(ms) != 1 || ms[0].ID != "b1" {
		t.Fatalf("want only b1 visible, got %v", ms)
	}
	events := log.snapshot()
	if len(events) != 1 || events[0].Kind != Left || events[0].Member.ID != "b2" {
		t.Fatalf("want one Left b2 event, got %v", events)
	}
	// A rejoin revives the hidden member.
	if err := r.Register(Member{ID: "b2", Addr: "host:2"}); err != nil {
		t.Fatal(err)
	}
	if ms := r.Members(); len(ms) != 2 {
		t.Fatalf("want b2 revived, got %v", ms)
	}
}

func TestFileWatchPollsEdits(t *testing.T) {
	path := writeRegistryFile(t, "b1 host:1\n")
	r, err := NewFile(path, FileOptions{Poll: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	var log eventLog
	cancel, err := r.Watch(log.add)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	if err := os.WriteFile(path, []byte("b1 host:1\nb2 host:2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		var joined bool
		for _, e := range log.snapshot() {
			if e.Kind == Joined && e.Member.ID == "b2" {
				joined = true
			}
		}
		if joined {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("poller never saw the added member")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestEventKindString(t *testing.T) {
	for kind, want := range map[EventKind]string{
		Joined:        "joined",
		Left:          "left",
		Failed:        "failed",
		EventKind(99): "unknown",
	} {
		if got := kind.String(); got != want {
			t.Errorf("EventKind(%d).String() = %q, want %q", kind, got, want)
		}
	}
}
