package registry

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/wire"
)

// MemoryOptions configures the in-process registry.
type MemoryOptions struct {
	// TTL is the liveness lease: a member whose last heartbeat is older
	// than TTL at sweep time is declared Failed and removed. Zero disables
	// failure detection (members only leave via Deregister).
	TTL time.Duration
	// SweepEvery is the detector's sweep cadence. Zero defaults to TTL/4
	// (and to no sweeper at all when TTL is zero). Tests that need
	// deterministic detection drive Sweep directly instead of waiting on
	// the cadence.
	SweepEvery time.Duration
}

// memberState is one registered member plus its liveness lease.
type memberState struct {
	m        Member
	deadline time.Time // zero when TTL is disabled
}

// Memory is the in-process membership registry: Register/Heartbeat manage
// a TTL lease per member and a background sweeper (or an explicit Sweep
// call) turns expired leases into Failed events. It backs core.Network's
// self-healing mode and the federation tests.
type Memory struct {
	opts MemoryOptions

	mu       sync.Mutex
	members  map[wire.BrokerID]*memberState
	watchers map[int]Watcher
	nextWID  int
	closed   bool

	stop chan struct{}
	done chan struct{}
}

// NewMemory creates an in-process registry and, when failure detection is
// enabled (TTL > 0), starts its sweeper goroutine.
func NewMemory(opts MemoryOptions) *Memory {
	if opts.TTL > 0 && opts.SweepEvery <= 0 {
		opts.SweepEvery = opts.TTL / 4
		if opts.SweepEvery <= 0 {
			opts.SweepEvery = time.Millisecond
		}
	}
	r := &Memory{
		opts:     opts,
		members:  make(map[wire.BrokerID]*memberState),
		watchers: make(map[int]Watcher),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if opts.TTL > 0 {
		go r.sweeper()
	} else {
		close(r.done)
	}
	return r
}

func (r *Memory) sweeper() {
	defer close(r.done)
	t := time.NewTicker(r.opts.SweepEvery)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case now := <-t.C:
			r.Sweep(now)
		}
	}
}

// Register implements Registry.
func (r *Memory) Register(m Member) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	if old, ok := r.members[m.ID]; ok {
		if old.m.Addr != m.Addr {
			r.mu.Unlock()
			return fmt.Errorf("%w: %s", ErrDuplicate, m.ID)
		}
		old.deadline = r.newDeadline()
		r.mu.Unlock()
		return nil
	}
	r.members[m.ID] = &memberState{m: m, deadline: r.newDeadline()}
	ws := r.watcherList()
	r.mu.Unlock()
	notify(ws, Event{Kind: Joined, Member: m})
	return nil
}

// newDeadline computes the lease deadline for a fresh (re-)registration or
// heartbeat. Callers hold r.mu.
func (r *Memory) newDeadline() time.Time {
	if r.opts.TTL <= 0 {
		return time.Time{}
	}
	return time.Now().Add(r.opts.TTL)
}

// Deregister implements Registry.
func (r *Memory) Deregister(id wire.BrokerID) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	st, ok := r.members[id]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownMember, id)
	}
	delete(r.members, id)
	ws := r.watcherList()
	r.mu.Unlock()
	notify(ws, Event{Kind: Left, Member: st.m})
	return nil
}

// Heartbeat implements Registry: it refreshes the member's lease.
func (r *Memory) Heartbeat(id wire.BrokerID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	st, ok := r.members[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownMember, id)
	}
	st.deadline = r.newDeadline()
	return nil
}

// Members implements Registry. Memory ranks members lexicographically by
// ID, which is deterministic across processes and restarts.
func (r *Memory) Members() []Member {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Member, 0, len(r.members))
	for _, st := range r.members {
		out = append(out, st.m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Watch implements Registry.
func (r *Memory) Watch(w Watcher) (func(), error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	id := r.nextWID
	r.nextWID++
	r.watchers[id] = w
	return func() {
		r.mu.Lock()
		delete(r.watchers, id)
		r.mu.Unlock()
	}, nil
}

// Sweep runs one failure-detection pass against the given time: members
// whose lease expired before now are removed and announced as Failed. The
// background sweeper calls it on its cadence; tests call it directly for
// deterministic detection.
func (r *Memory) Sweep(now time.Time) {
	r.mu.Lock()
	if r.closed || r.opts.TTL <= 0 {
		r.mu.Unlock()
		return
	}
	var failed []Member
	for id, st := range r.members {
		if !st.deadline.IsZero() && st.deadline.Before(now) {
			failed = append(failed, st.m)
			delete(r.members, id)
		}
	}
	ws := r.watcherList()
	r.mu.Unlock()
	sort.Slice(failed, func(i, j int) bool { return failed[i].ID < failed[j].ID })
	for _, m := range failed {
		notify(ws, Event{Kind: Failed, Member: m})
	}
}

// watcherList snapshots the watcher set so events are delivered outside
// r.mu (watchers may take their own locks). Callers hold r.mu.
func (r *Memory) watcherList() []Watcher {
	ws := make([]Watcher, 0, len(r.watchers))
	for _, w := range r.watchers {
		ws = append(ws, w)
	}
	return ws
}

func notify(ws []Watcher, e Event) {
	for _, w := range ws {
		w(e)
	}
}

// Close implements Registry.
func (r *Memory) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.watchers = make(map[int]Watcher)
	r.mu.Unlock()
	close(r.stop)
	<-r.done
	return nil
}

var _ Registry = (*Memory)(nil)
