package registry

import (
	"bufio"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/wire"
)

// FileOptions configures a File registry.
type FileOptions struct {
	// Poll is how often Watch re-reads the file to diff membership. Zero
	// disables polling: the file is read on demand and watchers only see
	// events from explicit Deregister calls.
	Poll time.Duration
}

// File is the static-file membership registry behind rebeca-broker's
// -registry flag: an operator-maintained file with one member per line,
//
//	<broker-id> <tcp-address>
//
// '#' starts a comment and blank lines are skipped. Line order is the
// member's rank; self-assembly keeps the overlay acyclic by having each
// broker dial only members of strictly lower rank, so the rank order is
// the bootstrap tree order. The file is re-read on every Members call,
// picking up operator edits without a restart; with Poll set, a watcher
// goroutine diffs consecutive reads and emits Joined/Left for edits.
//
// File performs no heartbeat-based failure detection of its own — the
// daemon detects peer death through link loss (transport.Link.Done) and
// treats the registry purely as the who-and-where directory. Heartbeat is
// therefore a validated no-op, and Deregister marks the member dead for
// this process only (the file is never rewritten), so a rejoining broker
// can be re-announced by a later Register.
type File struct {
	path string
	opts FileOptions

	mu       sync.Mutex
	excluded map[wire.BrokerID]bool // deregistered this process
	watchers map[int]Watcher
	nextWID  int
	closed   bool

	stop chan struct{}
	done chan struct{}
}

// NewFile opens a static-file registry. The file must exist and parse.
func NewFile(path string, opts FileOptions) (*File, error) {
	r := &File{
		path:     path,
		opts:     opts,
		excluded: make(map[wire.BrokerID]bool),
		watchers: make(map[int]Watcher),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	initial, err := r.load()
	if err != nil {
		return nil, err
	}
	if opts.Poll > 0 {
		go r.poller(memberSet(initial))
	} else {
		close(r.done)
	}
	return r, nil
}

// load parses the member file.
func (r *File) load() ([]Member, error) {
	f, err := os.Open(r.path)
	if err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	defer f.Close()
	var out []Member
	seen := make(map[wire.BrokerID]bool)
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("registry: %s:%d: want '<broker-id> <address>', got %q", r.path, lineNo, line)
		}
		id := wire.BrokerID(fields[0])
		if seen[id] {
			return nil, fmt.Errorf("registry: %s:%d: %w: %s", r.path, lineNo, ErrDuplicate, id)
		}
		seen[id] = true
		out = append(out, Member{ID: id, Addr: fields[1]})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("registry: read %s: %w", r.path, err)
	}
	return out, nil
}

// poller diffs consecutive file reads against the membership seen at
// construction and emits Joined/Left for operator edits.
func (r *File) poller(prev map[wire.BrokerID]Member) {
	defer close(r.done)
	t := time.NewTicker(r.opts.Poll)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			cur := memberSet(r.Members())
			r.mu.Lock()
			ws := r.watcherList()
			r.mu.Unlock()
			for id, m := range cur {
				if _, ok := prev[id]; !ok {
					notify(ws, Event{Kind: Joined, Member: m})
				}
			}
			for id, m := range prev {
				if _, ok := cur[id]; !ok {
					notify(ws, Event{Kind: Left, Member: m})
				}
			}
			prev = cur
		}
	}
}

func memberSet(ms []Member) map[wire.BrokerID]Member {
	out := make(map[wire.BrokerID]Member, len(ms))
	for _, m := range ms {
		out[m.ID] = m
	}
	return out
}

// Register implements Registry: membership is the file's, so Register
// only validates that the member is listed (guarding against a daemon
// started with an ID the operator forgot to add). A previously
// deregistered member is revived.
func (r *File) Register(m Member) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	r.mu.Unlock()
	ms, err := r.load()
	if err != nil {
		return err
	}
	for _, fm := range ms {
		if fm.ID == m.ID {
			r.mu.Lock()
			delete(r.excluded, m.ID)
			r.mu.Unlock()
			return nil
		}
	}
	return fmt.Errorf("%w: %s not listed in %s", ErrUnknownMember, m.ID, r.path)
}

// Deregister implements Registry: the member is hidden from this
// process's view and announced as Left; the file itself is not modified.
func (r *File) Deregister(id wire.BrokerID) error {
	ms, err := r.load()
	if err != nil {
		return err
	}
	var found *Member
	for i := range ms {
		if ms[i].ID == id {
			found = &ms[i]
			break
		}
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	if found == nil || r.excluded[id] {
		r.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownMember, id)
	}
	r.excluded[id] = true
	ws := r.watcherList()
	r.mu.Unlock()
	notify(ws, Event{Kind: Left, Member: *found})
	return nil
}

// Heartbeat implements Registry as a validated no-op: liveness is the
// link layer's job under the static-file deployment.
func (r *File) Heartbeat(id wire.BrokerID) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	excluded := r.excluded[id]
	r.mu.Unlock()
	if excluded {
		return fmt.Errorf("%w: %s", ErrUnknownMember, id)
	}
	return nil
}

// Members implements Registry: the file's members in file order (rank),
// minus any deregistered this process. Read errors degrade to an empty
// membership rather than a panic mid-flight; NewFile validated the file
// once, so an error here means the operator is mid-edit.
func (r *File) Members() []Member {
	ms, err := r.load()
	if err != nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := ms[:0]
	for _, m := range ms {
		if !r.excluded[m.ID] {
			out = append(out, m)
		}
	}
	return out
}

// Watch implements Registry.
func (r *File) Watch(w Watcher) (func(), error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	id := r.nextWID
	r.nextWID++
	r.watchers[id] = w
	return func() {
		r.mu.Lock()
		delete(r.watchers, id)
		r.mu.Unlock()
	}, nil
}

// watcherList snapshots the watcher set. Callers hold r.mu.
func (r *File) watcherList() []Watcher {
	ws := make([]Watcher, 0, len(r.watchers))
	for _, w := range r.watchers {
		ws = append(ws, w)
	}
	return ws
}

// Close implements Registry.
func (r *File) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.watchers = make(map[int]Watcher)
	r.mu.Unlock()
	close(r.stop)
	<-r.done
	return nil
}

var _ Registry = (*File)(nil)
