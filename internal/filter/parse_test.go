package filter

import (
	"testing"

	"repro/internal/message"
)

func TestParsePaperExample(t *testing.T) {
	// The paper's Section 2.1 example subscription.
	f, err := Parse(`service = "parking" && location = "100 Rebeca Drive" && cost < 3 && car-type >= "compact"`)
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 4 {
		t.Fatalf("parsed %d constraints, want 4", f.Len())
	}
	match := notif("service", "parking", "location", "100 Rebeca Drive", "cost", 2, "car-type", "suv")
	if !f.Matches(match) {
		t.Errorf("paper example should match %s", match)
	}
	if f.Matches(match.With("cost", message.Int(3))) {
		t.Error("cost < 3 violated but matched")
	}
}

func TestParseOperators(t *testing.T) {
	tests := []struct {
		src       string
		matching  message.Notification
		unmatched message.Notification
	}{
		{`a = 1`, notif("a", 1), notif("a", 2)},
		{`a == 1`, notif("a", 1), notif("a", 2)},
		{`a != 1`, notif("a", 2), notif("a", 1)},
		{`a < 1.5`, notif("a", 1.0), notif("a", 2.0)},
		{`a <= 1`, notif("a", 1), notif("a", 2)},
		{`a > 1`, notif("a", 2), notif("a", 1)},
		{`a >= 2`, notif("a", 2), notif("a", 1)},
		{`a prefix "re"`, notif("a", "rebeca"), notif("a", "siena")},
		{`a suffix "ca"`, notif("a", "rebeca"), notif("a", "gryphon")},
		{`a contains "bec"`, notif("a", "rebeca"), notif("a", "elvin")},
		{`a exists`, notif("a", 0), notif("b", 0)},
		{`a in {x, y}`, notif("a", "x"), notif("a", "z")},
		{`a in {"q w", 'e'}`, notif("a", "q w"), notif("a", "qw")},
		{`a in [1, 5]`, notif("a", 3), notif("a", 6)},
		{`a = true`, notif("a", true), notif("a", false)},
		{`a = false`, notif("a", false), notif("a", true)},
		{`a = 1 && b = 2`, notif("a", 1, "b", 2), notif("a", 1, "b", 3)},
		{`a = 1 and b = 2`, notif("a", 1, "b", 2), notif("a", 2, "b", 2)},
		{`a = "esc\"aped"`, notif("a", `esc"aped`), notif("a", "escaped")},
		{`a = -5`, notif("a", -5), notif("a", 5)},
		{`a = 2.5`, notif("a", 2.5), notif("a", 2.0)},
	}
	for _, tt := range tests {
		t.Run(tt.src, func(t *testing.T) {
			f, err := Parse(tt.src)
			if err != nil {
				t.Fatalf("Parse(%q): %v", tt.src, err)
			}
			if !f.Matches(tt.matching) {
				t.Errorf("%q should match %s (filter %s)", tt.src, tt.matching, f)
			}
			if f.Matches(tt.unmatched) {
				t.Errorf("%q should not match %s (filter %s)", tt.src, tt.unmatched, f)
			}
		})
	}
}

func TestParseMatchAll(t *testing.T) {
	for _, src := range []string{"", "  ", "true"} {
		f, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if !f.IsMatchAll() {
			t.Errorf("Parse(%q) should be match-all", src)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`a`,
		`a =`,
		`= 1`,
		`a = 1 &&`,
		`a = 1 b = 2`,
		`a in {}`,
		`a in {1,`,
		`a in [1]`,
		`a in [1, 2`,
		`a = "unterminated`,
		`a = "dangling\`,
		`a ~= 1`,
		`a in (1, 2)`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse("a =")
}

func TestParseRoundTripThroughString(t *testing.T) {
	srcs := []string{
		`a = 1 && b < 2 && c prefix "x"`,
		`loc in {a, b, c} && svc = "parking"`,
		`p in [0, 10]`,
	}
	for _, src := range srcs {
		f := MustParse(src)
		// String() uses the paper's notation, not the parse syntax, so we
		// only check stability: equal filters render identically.
		g := MustParse(src)
		if f.String() != g.String() || f.ID() != g.ID() {
			t.Errorf("parse of %q is not deterministic", src)
		}
	}
}
