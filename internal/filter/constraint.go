// Package filter implements content-based subscription filters: boolean
// functions over the entire content of a notification (Section 2.1 of the
// paper). A filter is a conjunction of attribute constraints. The package
// also implements the two routing-table optimizations the paper's mobility
// algorithms rely on (Section 2.2): covering ("does F1 accept a superset of
// the notifications of F2?") and perfect merging (combining filters into a
// single cover that accepts exactly their union).
package filter

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/message"
)

// Op enumerates constraint operators.
type Op uint8

// Constraint operators. OpAny accepts every value of the attribute
// (including absence) and is produced by merges that widen a constraint
// away entirely.
const (
	OpInvalid  Op = iota
	OpEQ          // attribute == value
	OpNE          // attribute != value
	OpLT          // attribute < value
	OpLE          // attribute <= value
	OpGT          // attribute > value
	OpGE          // attribute >= value
	OpPrefix      // string attribute has prefix
	OpSuffix      // string attribute has suffix
	OpContains    // string attribute contains substring
	OpIn          // attribute in finite set
	OpRange       // lo <= attribute <= hi
	OpExists      // attribute is present, any value
)

var opNames = map[Op]string{
	OpEQ:       "=",
	OpNE:       "!=",
	OpLT:       "<",
	OpLE:       "<=",
	OpGT:       ">",
	OpGE:       ">=",
	OpPrefix:   "prefix",
	OpSuffix:   "suffix",
	OpContains: "contains",
	OpIn:       "in",
	OpRange:    "range",
	OpExists:   "exists",
}

// String returns the operator's surface syntax.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return "invalid"
}

// ErrInvalidConstraint is returned when a constraint is structurally
// malformed (missing operand, wrong value kind for the operator, ...).
var ErrInvalidConstraint = errors.New("filter: invalid constraint")

// Constraint restricts a single attribute. Which operand fields are used
// depends on Op: Value for the unary comparison operators, Values for OpIn,
// Lo/Hi for OpRange, none for OpExists.
type Constraint struct {
	Attr   string
	Op     Op
	Value  message.Value
	Values []message.Value
	Lo, Hi message.Value
}

// EQ builds an equality constraint.
func EQ(attr string, v message.Value) Constraint {
	return Constraint{Attr: attr, Op: OpEQ, Value: v}
}

// NE builds an inequality constraint.
func NE(attr string, v message.Value) Constraint {
	return Constraint{Attr: attr, Op: OpNE, Value: v}
}

// LT builds a strict less-than constraint.
func LT(attr string, v message.Value) Constraint {
	return Constraint{Attr: attr, Op: OpLT, Value: v}
}

// LE builds a less-or-equal constraint.
func LE(attr string, v message.Value) Constraint {
	return Constraint{Attr: attr, Op: OpLE, Value: v}
}

// GT builds a strict greater-than constraint.
func GT(attr string, v message.Value) Constraint {
	return Constraint{Attr: attr, Op: OpGT, Value: v}
}

// GE builds a greater-or-equal constraint.
func GE(attr string, v message.Value) Constraint {
	return Constraint{Attr: attr, Op: OpGE, Value: v}
}

// Prefix builds a string-prefix constraint.
func Prefix(attr, p string) Constraint {
	return Constraint{Attr: attr, Op: OpPrefix, Value: message.String(p)}
}

// Suffix builds a string-suffix constraint.
func Suffix(attr, s string) Constraint {
	return Constraint{Attr: attr, Op: OpSuffix, Value: message.String(s)}
}

// Contains builds a substring constraint.
func Contains(attr, s string) Constraint {
	return Constraint{Attr: attr, Op: OpContains, Value: message.String(s)}
}

// In builds a finite-set membership constraint. The set is copied,
// deduplicated, and kept in sorted order so constraint identity is
// canonical.
func In(attr string, vs ...message.Value) Constraint {
	return Constraint{Attr: attr, Op: OpIn, Values: canonSet(vs)}
}

// Range builds an inclusive range constraint lo <= attr <= hi.
func Range(attr string, lo, hi message.Value) Constraint {
	return Constraint{Attr: attr, Op: OpRange, Lo: lo, Hi: hi}
}

// Exists builds a presence constraint.
func Exists(attr string) Constraint {
	return Constraint{Attr: attr, Op: OpExists}
}

// canonSet deduplicates and sorts values by Key.
func canonSet(vs []message.Value) []message.Value {
	seen := make(map[string]bool, len(vs))
	out := make([]message.Value, 0, len(vs))
	for _, v := range vs {
		k := v.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Validate checks structural well-formedness of the constraint.
func (c Constraint) Validate() error {
	if c.Attr == "" {
		return fmt.Errorf("%w: empty attribute name", ErrInvalidConstraint)
	}
	switch c.Op {
	case OpEQ, OpNE:
		if !c.Value.IsValid() {
			return fmt.Errorf("%w: %s needs a value", ErrInvalidConstraint, c.Op)
		}
	case OpLT, OpLE, OpGT, OpGE:
		if !c.Value.IsValid() {
			return fmt.Errorf("%w: %s needs a value", ErrInvalidConstraint, c.Op)
		}
		if c.Value.Kind() == message.KindBool {
			return fmt.Errorf("%w: ordering on bool", ErrInvalidConstraint)
		}
	case OpPrefix, OpSuffix, OpContains:
		if c.Value.Kind() != message.KindString {
			return fmt.Errorf("%w: %s needs a string operand", ErrInvalidConstraint, c.Op)
		}
	case OpIn:
		if len(c.Values) == 0 {
			return fmt.Errorf("%w: empty set for in", ErrInvalidConstraint)
		}
	case OpRange:
		if !c.Lo.IsValid() || !c.Hi.IsValid() {
			return fmt.Errorf("%w: range needs lo and hi", ErrInvalidConstraint)
		}
		if c.Lo.Kind() != c.Hi.Kind() {
			return fmt.Errorf("%w: range bounds of different kinds", ErrInvalidConstraint)
		}
		if cmp, err := c.Lo.Compare(c.Hi); err != nil || cmp > 0 {
			return fmt.Errorf("%w: empty range", ErrInvalidConstraint)
		}
	case OpExists:
		// no operands
	default:
		return fmt.Errorf("%w: unknown operator", ErrInvalidConstraint)
	}
	return nil
}

// Matches reports whether the constraint accepts the notification. A
// constraint on an absent attribute never matches.
func (c Constraint) Matches(n message.Notification) bool {
	v, ok := n.Get(c.Attr)
	if !ok {
		return false
	}
	return c.matchesValue(v)
}

func (c Constraint) matchesValue(v message.Value) bool {
	switch c.Op {
	case OpEQ:
		return v.Equal(c.Value)
	case OpNE:
		return v.Kind() == c.Value.Kind() && !v.Equal(c.Value)
	case OpLT, OpLE, OpGT, OpGE:
		cmp, err := v.Compare(c.Value)
		if err != nil {
			return false
		}
		switch c.Op {
		case OpLT:
			return cmp < 0
		case OpLE:
			return cmp <= 0
		case OpGT:
			return cmp > 0
		default:
			return cmp >= 0
		}
	case OpPrefix:
		return v.Kind() == message.KindString && strings.HasPrefix(v.Str(), c.Value.Str())
	case OpSuffix:
		return v.Kind() == message.KindString && strings.HasSuffix(v.Str(), c.Value.Str())
	case OpContains:
		return v.Kind() == message.KindString && strings.Contains(v.Str(), c.Value.Str())
	case OpIn:
		for _, w := range c.Values {
			if v.Equal(w) {
				return true
			}
		}
		return false
	case OpRange:
		lo, err1 := v.Compare(c.Lo)
		hi, err2 := v.Compare(c.Hi)
		return err1 == nil && err2 == nil && lo >= 0 && hi <= 0
	case OpExists:
		return true
	default:
		return false
	}
}

// Equal reports structural equality of two constraints.
func (c Constraint) Equal(d Constraint) bool {
	if c.Attr != d.Attr || c.Op != d.Op {
		return false
	}
	switch c.Op {
	case OpIn:
		if len(c.Values) != len(d.Values) {
			return false
		}
		for i := range c.Values {
			if !c.Values[i].Equal(d.Values[i]) {
				return false
			}
		}
		return true
	case OpRange:
		return c.Lo.Equal(d.Lo) && c.Hi.Equal(d.Hi)
	case OpExists:
		return true
	default:
		return c.Value.Equal(d.Value)
	}
}

// String renders the constraint in the paper's notation, e.g.
// (location in {"a", "b"}) or (cost < 3).
func (c Constraint) String() string {
	var b strings.Builder
	b.WriteByte('(')
	b.WriteString(c.Attr)
	b.WriteByte(' ')
	switch c.Op {
	case OpIn:
		b.WriteString("in {")
		for i, v := range c.Values {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(v.String())
		}
		b.WriteByte('}')
	case OpRange:
		b.WriteString("in [")
		b.WriteString(c.Lo.String())
		b.WriteString(", ")
		b.WriteString(c.Hi.String())
		b.WriteByte(']')
	case OpExists:
		b.WriteString("exists")
	default:
		b.WriteString(c.Op.String())
		b.WriteByte(' ')
		b.WriteString(c.Value.String())
	}
	b.WriteByte(')')
	return b.String()
}

// MatchesValue reports whether the constraint accepts the given value of
// its attribute — the value-test half of Matches, split out so callers that
// already resolved the attribute (the routing match index looks each
// attribute up once per notification) need not pay a second lookup.
func (c Constraint) MatchesValue(v message.Value) bool { return c.matchesValue(v) }

// key returns a canonical identity string for the constraint.
func (c Constraint) key() string {
	var b strings.Builder
	b.WriteString(c.Attr)
	b.WriteByte('|')
	b.WriteString(c.Op.String())
	b.WriteByte('|')
	switch c.Op {
	case OpIn:
		for _, v := range c.Values {
			b.WriteString(v.Key())
			b.WriteByte(',')
		}
	case OpRange:
		b.WriteString(c.Lo.Key())
		b.WriteByte(',')
		b.WriteString(c.Hi.Key())
	case OpExists:
	default:
		b.WriteString(c.Value.Key())
	}
	return b.String()
}
