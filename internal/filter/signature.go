package filter

import (
	"math"

	"repro/internal/message"
)

// This file implements the precomputed cover signature: a compact,
// construction-time fingerprint of a filter that lets Covers reject most
// non-covering pairs without walking constraint lists, and that the routing
// layer's cover index buckets candidates by. The signature is a sound
// rejector only — when it cannot prove "f does not cover g" the full
// constraint walk decides — so it never changes the result of Covers, it
// only makes the common negative case O(1).
//
// Two ingredients:
//
//   - attribute bloom: one bit per constrained attribute name (FNV-1a
//     hashed into a 64-bit word). f covers g only if every attribute f
//     constrains is also constrained by g, so a bit set in f's bloom but
//     clear in g's proves non-coverage. Hash collisions only cost a missed
//     rejection, never a wrong one.
//   - per-attribute cells: for each attribute constrained by exactly one
//     signature-representable constraint, a summary of the accepted value
//     set — a numeric interval hull for EQ/LT/LE/GT/GE/Range over int or
//     float values, or an exact point for EQ over string or bool values.
//     When both filters carry a cell on the same attribute, the single
//     constraints must cover each other for the filters to, so a kind
//     mismatch, a point mismatch, or a hull non-containment is a proof of
//     non-coverage.
//
// Interval endpoints are widened to float64 (monotonically, so containment
// in the exact domain implies containment of the hulls) and open/closed
// endpoint distinctions are deliberately ignored: equal-looking float
// bounds with differing openness cannot be rejected soundly once int64
// values exceed float64 precision, so those rare pairs fall through to the
// full check instead.

// sig is the precomputed cover signature of a filter.
type sig struct {
	bloom uint64
	cells []sigCell
}

// sigCell summarizes the single constraint on one attribute, when that
// constraint is signature-representable. Cells are sorted by attribute
// (the constraint list they are derived from already is).
type sigCell struct {
	attr   string
	kind   message.Kind // kind of the constrained values
	lo, hi float64      // numeric hull; ±Inf when unbounded
	point  string       // Value.Key() for string/bool equality cells
}

// isPoint reports whether the cell is an exact-point cell rather than a
// numeric hull.
func (c *sigCell) isPoint() bool { return c.kind == message.KindString || c.kind == message.KindBool }

// computeSig builds the signature for a canonically sorted constraint
// list.
func computeSig(cs []Constraint) sig {
	var s sig
	for i := 0; i < len(cs); {
		j := i
		for j < len(cs) && cs[j].Attr == cs[i].Attr {
			j++
		}
		s.bloom |= attrBit(cs[i].Attr)
		if j-i == 1 {
			if cell, ok := constraintCell(cs[i]); ok {
				s.cells = append(s.cells, cell)
			}
		}
		i = j
	}
	return s
}

// attrBit hashes an attribute name to its bloom bit (FNV-1a, 64-bit).
func attrBit(attr string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(attr); i++ {
		h ^= uint64(attr[i])
		h *= 1099511628211
	}
	return 1 << (h & 63)
}

// constraintCell summarizes one constraint, if representable.
func constraintCell(c Constraint) (sigCell, bool) {
	switch c.Op {
	case OpEQ:
		switch c.Value.Kind() {
		case message.KindInt, message.KindFloat:
			v := numVal(c.Value)
			return sigCell{attr: c.Attr, kind: c.Value.Kind(), lo: v, hi: v}, true
		case message.KindString, message.KindBool:
			return sigCell{attr: c.Attr, kind: c.Value.Kind(), point: c.Value.Key()}, true
		}
	case OpLT, OpLE:
		if isNum(c.Value) {
			return sigCell{attr: c.Attr, kind: c.Value.Kind(), lo: math.Inf(-1), hi: numVal(c.Value)}, true
		}
	case OpGT, OpGE:
		if isNum(c.Value) {
			return sigCell{attr: c.Attr, kind: c.Value.Kind(), lo: numVal(c.Value), hi: math.Inf(1)}, true
		}
	case OpRange:
		if isNum(c.Lo) && c.Lo.Kind() == c.Hi.Kind() {
			return sigCell{attr: c.Attr, kind: c.Lo.Kind(), lo: numVal(c.Lo), hi: numVal(c.Hi)}, true
		}
	}
	return sigCell{}, false
}

func isNum(v message.Value) bool {
	return v.Kind() == message.KindInt || v.Kind() == message.KindFloat
}

func numVal(v message.Value) float64 {
	if v.Kind() == message.KindInt {
		return float64(v.IntVal())
	}
	return v.FloatVal()
}

// canCover reports whether the signatures leave f.Covers(g) possible; a
// false result is a proof of non-coverage.
func (s sig) canCover(t sig) bool {
	if s.bloom&^t.bloom != 0 {
		// f constrains an attribute g does not; g accepts notifications
		// unconstrained there, which f rejects.
		return false
	}
	i, j := 0, 0
	for i < len(s.cells) && j < len(t.cells) {
		a, b := &s.cells[i], &t.cells[j]
		switch {
		case a.attr < b.attr:
			i++
		case a.attr > b.attr:
			j++
		default:
			// Both filters constrain this attribute with exactly one
			// representable constraint each, so f covers g only if a's
			// constraint covers b's.
			if a.kind != b.kind {
				return false
			}
			if a.isPoint() {
				if a.point != b.point {
					return false
				}
			} else if a.lo > b.lo || a.hi < b.hi {
				return false
			}
			i++
			j++
		}
	}
	return true
}

// CoverBloom returns the filter's attribute fingerprint: one bit per
// constrained attribute name. f.Covers(g) requires
// f.CoverBloom() &^ g.CoverBloom() == 0, which the routing cover index
// uses to bucket candidates and skip whole groups without any pairwise
// work. The empty filter's bloom is 0.
func (f Filter) CoverBloom() uint64 { return f.sig.bloom }
