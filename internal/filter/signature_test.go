package filter

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/message"
)

// randomSigFilter draws a filter over a small attribute vocabulary with a
// mix of signature-representable and opaque constraints, including
// multi-constraint attributes (which get no cell) and float/string/bool
// kinds.
func randomSigFilter(t *testing.T, rng *rand.Rand) Filter {
	attrs := []string{"p", "q", "s", "t"}
	n := rng.Intn(3) + 1
	cs := make([]Constraint, 0, n+1)
	for i := 0; i < n; i++ {
		attr := attrs[rng.Intn(len(attrs))]
		switch rng.Intn(12) {
		case 0:
			cs = append(cs, EQ(attr, message.Int(int64(rng.Intn(20)))))
		case 1:
			cs = append(cs, EQ(attr, message.Float(float64(rng.Intn(20)))))
		case 2:
			cs = append(cs, EQ(attr, message.String([]string{"a", "b", "ab"}[rng.Intn(3)])))
		case 3:
			cs = append(cs, EQ(attr, message.Bool(rng.Intn(2) == 0)))
		case 4:
			cs = append(cs, LT(attr, message.Int(int64(rng.Intn(20)))))
		case 5:
			cs = append(cs, LE(attr, message.Int(int64(rng.Intn(20)))))
		case 6:
			cs = append(cs, GT(attr, message.Int(int64(rng.Intn(20)))))
		case 7:
			cs = append(cs, GE(attr, message.Float(float64(rng.Intn(20)))))
		case 8:
			lo := rng.Intn(15)
			cs = append(cs, Range(attr, message.Int(int64(lo)), message.Int(int64(lo+rng.Intn(8)))))
		case 9:
			cs = append(cs, NE(attr, message.Int(int64(rng.Intn(20)))))
		case 10:
			cs = append(cs, In(attr, message.Int(int64(rng.Intn(5))), message.Int(int64(rng.Intn(20)))))
		default:
			cs = append(cs, Exists(attr))
		}
	}
	f, err := New(cs...)
	if err != nil {
		t.Fatalf("random filter: %v", err)
	}
	return f
}

// TestSignatureRejectSound is the load-bearing property of the fast path:
// whenever the signatures reject a pair, the full constraint walk must
// agree that f does not cover g. (The converse — signatures passing a
// non-covering pair — is allowed and settled by the walk.)
func TestSignatureRejectSound(t *testing.T) {
	rng := rand.New(rand.NewSource(9291))
	for trial := 0; trial < 20000; trial++ {
		f, g := randomSigFilter(t, rng), randomSigFilter(t, rng)
		if !f.sig.canCover(g.sig) && f.coversFull(g) {
			t.Fatalf("signature rejected a real cover: %s covers %s", f, g)
		}
		if f.Covers(g) != f.coversFull(g) {
			t.Fatalf("Covers diverges from coversFull for %s vs %s", f, g)
		}
	}
}

// TestSignatureLargeIntPrecision pins the float64-widening soundness rule:
// int bounds beyond 2^53 collapse to equal floats, and the signature must
// fall through to the exact check instead of rejecting.
func TestSignatureLargeIntPrecision(t *testing.T) {
	big := int64(1) << 60
	wide := MustNew(Range("p", message.Int(0), message.Int(big+1)))
	narrow := MustNew(Range("p", message.Int(0), message.Int(big)))
	if !wide.Covers(narrow) {
		t.Error("wide must cover narrow despite float-equal hulls")
	}
	if narrow.Covers(wide) {
		t.Error("narrow must not cover wide: the exact walk decides")
	}
}

func TestSignatureCells(t *testing.T) {
	f := MustNew(
		Range("p", message.Int(2), message.Int(9)),
		EQ("svc", message.String("parking")),
		LT("q", message.Int(5)),
		GE("q", message.Int(0)), // two constraints on q: no cell
		NE("r", message.Int(1)), // NE: no cell
	)
	cells := f.sig.cells
	if len(cells) != 2 {
		t.Fatalf("cells = %d, want 2 (p hull + svc point): %+v", len(cells), cells)
	}
	if cells[0].attr != "p" || cells[0].lo != 2 || cells[0].hi != 9 {
		t.Errorf("p cell = %+v", cells[0])
	}
	if cells[1].attr != "svc" || cells[1].point != message.String("parking").Key() {
		t.Errorf("svc cell = %+v", cells[1])
	}
	unb := MustNew(LT("p", message.Int(5)))
	if c := unb.sig.cells[0]; !math.IsInf(c.lo, -1) || c.hi != 5 {
		t.Errorf("LT cell = %+v", c)
	}
}

func TestCoverBloom(t *testing.T) {
	if MatchAll().CoverBloom() != 0 {
		t.Error("match-all bloom must be 0")
	}
	f := MustNew(EQ("a", message.Int(1)))
	g := MustNew(EQ("a", message.Int(2)), LT("b", message.Int(3)))
	if f.CoverBloom()&^g.CoverBloom() != 0 {
		t.Error("attrs(f) ⊆ attrs(g) must imply bloom subset")
	}
	if g.CoverBloom()&^f.CoverBloom() == 0 {
		t.Error("b's bit should not appear in f's bloom")
	}
	// Without recomputes the signature.
	if got := g.Without("b").CoverBloom(); got != f.CoverBloom() {
		t.Errorf("Without bloom = %#x, want %#x", got, f.CoverBloom())
	}
}
