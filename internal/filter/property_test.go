package filter

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/message"
)

// randomConstraint draws a constraint on attribute "p" (numeric families)
// or "s" (string families) from a seeded source.
func randomConstraint(rng *rand.Rand) Constraint {
	iv := func() message.Value { return message.Int(int64(rng.Intn(30))) }
	sv := func() message.Value {
		full := strings.Repeat("ab", 3) // "ababab"
		n := rng.Intn(len(full)) + 1
		return message.String(full[:n])
	}
	switch rng.Intn(10) {
	case 0:
		return EQ("p", iv())
	case 1:
		return NE("p", iv())
	case 2:
		return LT("p", iv())
	case 3:
		return LE("p", iv())
	case 4:
		return GT("p", iv())
	case 5:
		return GE("p", iv())
	case 6:
		lo := rng.Intn(20)
		return Range("p", message.Int(int64(lo)), message.Int(int64(lo+rng.Intn(10))))
	case 7:
		vs := make([]message.Value, rng.Intn(4)+1)
		for i := range vs {
			vs[i] = iv()
		}
		return In("p", vs...)
	case 8:
		return Exists("p")
	default:
		switch rng.Intn(3) {
		case 0:
			return Prefix("s", sv().Str())
		case 1:
			return Suffix("s", sv().Str())
		default:
			return Contains("s", sv().Str())
		}
	}
}

// probeNotifications enumerates a value space dense enough to distinguish
// the random constraints above.
func probeNotifications() []message.Notification {
	var out []message.Notification
	for p := -2; p < 35; p++ {
		out = append(out, notif("p", p))
	}
	for _, s := range []string{"", "a", "b", "ab", "ba", "aba", "bab", "abab", "baba"} {
		out = append(out, notif("s", s))
	}
	out = append(out, notif("q", 1)) // neither p nor s present
	return out
}

// TestConstraintCoversSoundnessRandom checks soundness of Covers over the
// full operator matrix: if c covers d then every probe matching d matches
// c.
func TestConstraintCoversSoundnessRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	probes := probeNotifications()
	for trial := 0; trial < 5000; trial++ {
		c, d := randomConstraint(rng), randomConstraint(rng)
		if c.Attr != d.Attr || !c.Covers(d) {
			continue
		}
		for _, n := range probes {
			if d.Matches(n) && !c.Matches(n) {
				t.Fatalf("unsound cover: %s covers %s but %s matches only d", c, d, n)
			}
		}
	}
}

// TestConstraintOverlapSoundnessRandom checks the contrapositive of
// Overlaps: whenever it reports false, no probe may match both.
func TestConstraintOverlapSoundnessRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	probes := probeNotifications()
	for trial := 0; trial < 5000; trial++ {
		c, d := randomConstraint(rng), randomConstraint(rng)
		if c.Attr != d.Attr || c.Overlaps(d) {
			continue
		}
		for _, n := range probes {
			if c.Matches(n) && d.Matches(n) {
				t.Fatalf("unsound non-overlap: %s and %s both match %s", c, d, n)
			}
		}
	}
}

// TestFilterCoversImpliesMatchSubsetRandom lifts the soundness check to
// whole filters with several random constraints.
func TestFilterCoversImpliesMatchSubsetRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(4096))
	probes := probeNotifications()
	mkFilter := func() Filter {
		n := rng.Intn(3) + 1
		cs := make([]Constraint, 0, n)
		for i := 0; i < n; i++ {
			cs = append(cs, randomConstraint(rng))
		}
		f, err := New(cs...)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	for trial := 0; trial < 3000; trial++ {
		f, g := mkFilter(), mkFilter()
		if !f.Covers(g) {
			continue
		}
		for _, n := range probes {
			if g.Matches(n) && !f.Matches(n) {
				t.Fatalf("unsound filter cover: %s covers %s but %s slips through", f, g, n)
			}
		}
	}
}

// TestMergePerfectionRandom checks merge exactness over random constraint
// pairs on a single attribute: the merge, when offered, accepts exactly
// the union.
func TestMergePerfectionRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	probes := probeNotifications()
	for trial := 0; trial < 5000; trial++ {
		c, d := randomConstraint(rng), randomConstraint(rng)
		if c.Attr != d.Attr {
			continue
		}
		fc, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		fd, err := New(d)
		if err != nil {
			t.Fatal(err)
		}
		m, ok := Merge(fc, fd)
		if !ok {
			continue
		}
		for _, n := range probes {
			want := fc.Matches(n) || fd.Matches(n)
			if got := m.Matches(n); got != want {
				t.Fatalf("imperfect merge of %s and %s -> %s: probe %s got %v want %v",
					c, d, m, n, got, want)
			}
		}
	}
}

// TestCanonicalIDStableQuick: filters built from permuted constraint
// orders share an ID.
func TestCanonicalIDStableQuick(t *testing.T) {
	f := func(a, b, c int64) bool {
		c1 := EQ("x", message.Int(a))
		c2 := LT("y", message.Int(b))
		c3 := GE("z", message.Int(c))
		f1, err1 := New(c1, c2, c3)
		f2, err2 := New(c3, c1, c2)
		if err1 != nil || err2 != nil {
			return false
		}
		return f1.ID() == f2.ID() && f1.Equal(f2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
