package filter

import (
	"repro/internal/message"
)

// Merge attempts a perfect merge of two filters (Section 2.2, following
// Mühl's generic merging): if f and g agree on all attributes except at
// most one, and the differing constraints can be combined into a single
// constraint accepting exactly their union, Merge returns that merged
// filter and true. Otherwise it returns the zero Filter and false.
//
// A perfect merge never widens the accepted set, so replacing f and g with
// the merge in a routing table is always safe.
func Merge(f, g Filter) (Filter, bool) {
	if f.Covers(g) {
		return f, true
	}
	if g.Covers(f) {
		return g, true
	}
	// Both must constrain the same attribute set with the same number of
	// constraints per attribute; exactly one attribute may differ.
	fa, ga := f.Attrs(), g.Attrs()
	if len(fa) != len(ga) {
		return Filter{}, false
	}
	for i := range fa {
		if fa[i] != ga[i] {
			return Filter{}, false
		}
	}
	diffAttr := ""
	for _, attr := range fa {
		fc, gc := f.ConstraintsOn(attr), g.ConstraintsOn(attr)
		if constraintsEqual(fc, gc) {
			continue
		}
		if diffAttr != "" {
			return Filter{}, false // more than one differing attribute
		}
		diffAttr = attr
	}
	if diffAttr == "" {
		return f, true // identical filters
	}
	fc, gc := f.ConstraintsOn(diffAttr), g.ConstraintsOn(diffAttr)
	if len(fc) != 1 || len(gc) != 1 {
		return Filter{}, false
	}
	merged, ok := MergeConstraints(fc[0], gc[0])
	if !ok {
		return Filter{}, false
	}
	base := f.Without(diffAttr)
	if merged.Op == OpExists {
		// The union is unconstrained on the attribute, but dropping the
		// constraint entirely would also accept notifications lacking the
		// attribute; OpExists preserves exactness.
		out, err := base.With(merged)
		if err != nil {
			return Filter{}, false
		}
		return out, true
	}
	out, err := base.With(merged)
	if err != nil {
		return Filter{}, false
	}
	return out, true
}

func constraintsEqual(a, b []Constraint) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// MergeConstraints combines two constraints on the same attribute into one
// accepting exactly their union, when possible: covers collapse to the
// wider constraint, finite sets union into OpIn, overlapping or adjacent
// intervals union into one interval (integer adjacency included), and a
// negation merged with a matching equality yields OpExists. It is the
// single-constraint core of Merge, exported for the routing package's
// merging plane, which unions whole groups of constraints at a time.
func MergeConstraints(c, d Constraint) (Constraint, bool) {
	if c.Covers(d) {
		return c, true
	}
	if d.Covers(c) {
		return d, true
	}
	// Finite sets: EQ/In unions.
	cv, cFinite := dValues(c)
	dv, dFinite := dValues(d)
	if cFinite && dFinite {
		return In(c.Attr, append(append([]message.Value{}, cv...), dv...)...), true
	}
	// Interval unions.
	cLo, cHi, cLoO, cHiO, cOK := orderBounds(c)
	dLo, dHi, dLoO, dHiO, dOK := orderBounds(d)
	if cOK && dOK && intervalsTouch(cLo, cHi, cLoO, cHiO, dLo, dHi, dLoO, dHiO) {
		return mergeIntervals(c.Attr, cLo, cHi, cLoO, cHiO, dLo, dHi, dLoO, dHiO)
	}
	// NE v merged with EQ v (or a set containing v) yields "exists".
	if c.Op == OpNE && dFinite && containsValue(dv, c.Value) {
		return Exists(c.Attr), true
	}
	if d.Op == OpNE && cFinite && containsValue(cv, d.Value) {
		return Exists(c.Attr), true
	}
	return Constraint{}, false
}

func containsValue(vs []message.Value, v message.Value) bool {
	for _, w := range vs {
		if w.Equal(v) {
			return true
		}
	}
	return false
}

// intervalsTouch reports whether the union of the two intervals is itself
// an interval (they overlap or are adjacent at a shared closed endpoint).
// Adjacency of integer intervals (e.g. [0,5] and [6,10]) is additionally
// recognized.
func intervalsTouch(aLo, aHi message.Value, aLoO, aHiO bool,
	bLo, bHi message.Value, bLoO, bHiO bool) bool {
	if intervalsOverlap(aLo, aHi, aLoO, aHiO, bLo, bHi, bLoO, bHiO) {
		return true
	}
	// Check closed adjacency: aHi == bLo with at most one endpoint open, or
	// consecutive integers.
	adjacent := func(hi, lo message.Value, hiO, loO bool) bool {
		if !hi.IsValid() || !lo.IsValid() || hi.Kind() != lo.Kind() {
			return false
		}
		cmp, err := hi.Compare(lo)
		if err != nil {
			return false
		}
		if cmp == 0 {
			return !(hiO && loO)
		}
		if hi.Kind() == message.KindInt && !hiO && !loO {
			return lo.IntVal() == hi.IntVal()+1
		}
		return false
	}
	return adjacent(aHi, bLo, aHiO, bLoO) || adjacent(bHi, aLo, bHiO, aLoO)
}

// mergeIntervals returns the constraint for the union interval.
func mergeIntervals(attr string,
	aLo, aHi message.Value, aLoO, aHiO bool,
	bLo, bHi message.Value, bLoO, bHiO bool) (Constraint, bool) {
	lo, loO := lowerOf(aLo, aLoO, bLo, bLoO)
	hi, hiO := upperOf(aHi, aHiO, bHi, bHiO)
	switch {
	case !lo.IsValid() && !hi.IsValid():
		return Exists(attr), true
	case !lo.IsValid():
		if hiO {
			return LT(attr, hi), true
		}
		return LE(attr, hi), true
	case !hi.IsValid():
		if loO {
			return GT(attr, lo), true
		}
		return GE(attr, lo), true
	default:
		if loO || hiO {
			// Half-open ranges are not representable by OpRange; give up
			// rather than widen.
			return Constraint{}, false
		}
		return Range(attr, lo, hi), true
	}
}

func lowerOf(a message.Value, aO bool, b message.Value, bO bool) (message.Value, bool) {
	if !a.IsValid() || !b.IsValid() {
		return message.Value{}, false // unbounded below
	}
	cmp, err := a.Compare(b)
	if err != nil {
		return message.Value{}, false
	}
	switch {
	case cmp < 0:
		return a, aO
	case cmp > 0:
		return b, bO
	default:
		return a, aO && bO
	}
}

func upperOf(a message.Value, aO bool, b message.Value, bO bool) (message.Value, bool) {
	if !a.IsValid() || !b.IsValid() {
		return message.Value{}, false // unbounded above
	}
	cmp, err := a.Compare(b)
	if err != nil {
		return message.Value{}, false
	}
	switch {
	case cmp > 0:
		return a, aO
	case cmp < 0:
		return b, bO
	default:
		return a, aO && bO
	}
}

// MergeAll greedily merges a list of filters, repeatedly combining any
// mergeable pair until a fixed point. The result accepts exactly the union
// of the inputs.
func MergeAll(fs []Filter) []Filter {
	out := make([]Filter, len(fs))
	copy(out, fs)
	for {
		merged := false
	outer:
		for i := 0; i < len(out); i++ {
			for j := i + 1; j < len(out); j++ {
				if m, ok := Merge(out[i], out[j]); ok {
					out[i] = m
					out = append(out[:j], out[j+1:]...)
					merged = true
					break outer
				}
			}
		}
		if !merged {
			return out
		}
	}
}
