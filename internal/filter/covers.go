package filter

import (
	"strings"

	"repro/internal/message"
)

// Covers reports whether constraint c accepts a superset of the values
// accepted by constraint d (both on the same attribute). The test is sound
// (a true result is always correct) and complete for the operator
// combinations that arise in routing tables; a false result may
// occasionally be a missed cover for exotic combinations, which only costs
// routing-table size, never correctness.
func (c Constraint) Covers(d Constraint) bool {
	if c.Attr != d.Attr {
		return false
	}
	if c.Equal(d) {
		return true
	}
	if c.Op == OpExists {
		// Presence accepts any value, hence covers everything on the
		// attribute.
		return true
	}
	switch c.Op {
	case OpEQ:
		return coversEQ(c, d)
	case OpNE:
		return coversNE(c, d)
	case OpLT, OpLE, OpGT, OpGE:
		return coversOrder(c, d)
	case OpPrefix:
		return coversPrefix(c, d)
	case OpSuffix:
		return coversSuffix(c, d)
	case OpContains:
		return coversContains(c, d)
	case OpIn:
		return coversIn(c, d)
	case OpRange:
		return coversRange(c, d)
	default:
		return false
	}
}

// dValues returns the finite set of values accepted by d, if d is finite
// (OpEQ or OpIn).
func dValues(d Constraint) ([]message.Value, bool) {
	switch d.Op {
	case OpEQ:
		return []message.Value{d.Value}, true
	case OpIn:
		return d.Values, true
	default:
		return nil, false
	}
}

func coversEQ(c, d Constraint) bool {
	vs, ok := dValues(d)
	if !ok || len(vs) != 1 {
		return false
	}
	return vs[0].Equal(c.Value)
}

func coversNE(c, d Constraint) bool {
	// c accepts everything except c.Value. It covers d iff d never accepts
	// c.Value.
	if vs, ok := dValues(d); ok {
		for _, v := range vs {
			if v.Equal(c.Value) {
				return false
			}
		}
		return true
	}
	switch d.Op {
	case OpNE:
		return d.Value.Equal(c.Value)
	case OpLT, OpLE, OpGT, OpGE, OpRange:
		return !d.matchesValue(c.Value)
	default:
		return false
	}
}

// orderBounds expresses an ordering constraint as an interval
// (lo, hi, loOpen, hiOpen) where an invalid bound means unbounded.
func orderBounds(c Constraint) (lo, hi message.Value, loOpen, hiOpen bool, ok bool) {
	switch c.Op {
	case OpLT:
		return message.Value{}, c.Value, false, true, true
	case OpLE:
		return message.Value{}, c.Value, false, false, true
	case OpGT:
		return c.Value, message.Value{}, true, false, true
	case OpGE:
		return c.Value, message.Value{}, false, false, true
	case OpRange:
		return c.Lo, c.Hi, false, false, true
	case OpEQ:
		return c.Value, c.Value, false, false, true
	default:
		return message.Value{}, message.Value{}, false, false, false
	}
}

// intervalCovers reports whether interval c contains interval d.
func intervalCovers(cLo, cHi message.Value, cLoOpen, cHiOpen bool,
	dLo, dHi message.Value, dLoOpen, dHiOpen bool) bool {
	// Lower bound: c's lo must not be above d's lo.
	if cLo.IsValid() {
		if !dLo.IsValid() {
			return false
		}
		cmp, err := cLo.Compare(dLo)
		if err != nil {
			return false
		}
		if cmp > 0 {
			return false
		}
		if cmp == 0 && cLoOpen && !dLoOpen {
			return false
		}
	}
	// Upper bound: c's hi must not be below d's hi.
	if cHi.IsValid() {
		if !dHi.IsValid() {
			return false
		}
		cmp, err := cHi.Compare(dHi)
		if err != nil {
			return false
		}
		if cmp < 0 {
			return false
		}
		if cmp == 0 && cHiOpen && !dHiOpen {
			return false
		}
	}
	return true
}

func coversOrder(c, d Constraint) bool {
	if vs, ok := dValues(d); ok {
		for _, v := range vs {
			if !c.matchesValue(v) {
				return false
			}
		}
		return true
	}
	cLo, cHi, cLoO, cHiO, ok := orderBounds(c)
	if !ok {
		return false
	}
	dLo, dHi, dLoO, dHiO, ok := orderBounds(d)
	if !ok {
		return false
	}
	// Kind compatibility: any present bounds must share a kind.
	for _, pair := range [][2]message.Value{{cLo, dLo}, {cLo, dHi}, {cHi, dLo}, {cHi, dHi}} {
		if pair[0].IsValid() && pair[1].IsValid() && pair[0].Kind() != pair[1].Kind() {
			return false
		}
	}
	return intervalCovers(cLo, cHi, cLoO, cHiO, dLo, dHi, dLoO, dHiO)
}

func coversRange(c, d Constraint) bool {
	return coversOrder(c, d)
}

func coversPrefix(c, d Constraint) bool {
	if vs, ok := dValues(d); ok {
		for _, v := range vs {
			if !c.matchesValue(v) {
				return false
			}
		}
		return true
	}
	// prefix "ab" covers prefix "abc".
	return d.Op == OpPrefix && strings.HasPrefix(d.Value.Str(), c.Value.Str())
}

func coversSuffix(c, d Constraint) bool {
	if vs, ok := dValues(d); ok {
		for _, v := range vs {
			if !c.matchesValue(v) {
				return false
			}
		}
		return true
	}
	return d.Op == OpSuffix && strings.HasSuffix(d.Value.Str(), c.Value.Str())
}

func coversContains(c, d Constraint) bool {
	if vs, ok := dValues(d); ok {
		for _, v := range vs {
			if !c.matchesValue(v) {
				return false
			}
		}
		return true
	}
	// contains "a" covers contains "xaz", prefix "xa..."., suffix "...a".
	switch d.Op {
	case OpContains, OpPrefix, OpSuffix:
		return strings.Contains(d.Value.Str(), c.Value.Str())
	default:
		return false
	}
}

func coversIn(c, d Constraint) bool {
	vs, ok := dValues(d)
	if !ok {
		return false
	}
	for _, v := range vs {
		if !c.matchesValue(v) {
			return false
		}
	}
	return true
}

// Overlaps reports whether the two constraints (on the same attribute) can
// accept a common value. The test is conservative: when in doubt it
// returns true, which is the safe direction for routing (a notification is
// forwarded rather than dropped).
func (c Constraint) Overlaps(d Constraint) bool {
	if c.Attr != d.Attr {
		// Constraints on different attributes are independent and hence
		// always jointly satisfiable.
		return true
	}
	if c.Op == OpExists || d.Op == OpExists {
		return true
	}
	if vs, ok := dValues(d); ok {
		for _, v := range vs {
			if c.matchesValue(v) {
				return true
			}
		}
		return false
	}
	if vs, ok := dValues(c); ok {
		for _, v := range vs {
			if d.matchesValue(v) {
				return true
			}
		}
		return false
	}
	cLo, cHi, cLoO, cHiO, cOK := orderBounds(c)
	dLo, dHi, dLoO, dHiO, dOK := orderBounds(d)
	if cOK && dOK {
		return intervalsOverlap(cLo, cHi, cLoO, cHiO, dLo, dHi, dLoO, dHiO)
	}
	// String operators vs anything else: be conservative.
	return true
}

func intervalsOverlap(aLo, aHi message.Value, aLoO, aHiO bool,
	bLo, bHi message.Value, bLoO, bHiO bool) bool {
	// Empty overlap iff one interval ends before the other starts.
	if aHi.IsValid() && bLo.IsValid() {
		cmp, err := aHi.Compare(bLo)
		if err != nil {
			return false
		}
		if cmp < 0 || (cmp == 0 && (aHiO || bLoO)) {
			return false
		}
	}
	if bHi.IsValid() && aLo.IsValid() {
		cmp, err := bHi.Compare(aLo)
		if err != nil {
			return false
		}
		if cmp < 0 || (cmp == 0 && (bHiO || aLoO)) {
			return false
		}
	}
	return true
}
