package filter

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/message"
)

func TestMergeEqualOnOneAttr(t *testing.T) {
	v := func(i int) message.Value { return message.Int(int64(i)) }
	s := func(ss string) message.Value { return message.String(ss) }

	tests := []struct {
		name    string
		f, g    Filter
		ok      bool
		inside  []message.Notification // must match the merge
		outside []message.Notification // must not match the merge
	}{
		{
			name: "eq union to set",
			f:    MustNew(EQ("loc", s("a")), EQ("svc", s("p"))),
			g:    MustNew(EQ("loc", s("b")), EQ("svc", s("p"))),
			ok:   true,
			inside: []message.Notification{
				notif("loc", "a", "svc", "p"),
				notif("loc", "b", "svc", "p"),
			},
			outside: []message.Notification{
				notif("loc", "c", "svc", "p"),
				notif("loc", "a", "svc", "x"),
			},
		},
		{
			name:   "set union",
			f:      MustNew(In("loc", s("a"), s("b"))),
			g:      MustNew(In("loc", s("c"))),
			ok:     true,
			inside: []message.Notification{notif("loc", "a"), notif("loc", "c")},
			outside: []message.Notification{
				notif("loc", "x"),
			},
		},
		{
			name:    "adjacent int ranges",
			f:       MustNew(Range("p", v(0), v(5))),
			g:       MustNew(Range("p", v(6), v(10))),
			ok:      true,
			inside:  []message.Notification{notif("p", 0), notif("p", 6), notif("p", 10)},
			outside: []message.Notification{notif("p", 11), notif("p", -1)},
		},
		{
			name:    "overlapping ranges",
			f:       MustNew(Range("p", v(0), v(6))),
			g:       MustNew(Range("p", v(4), v(10))),
			ok:      true,
			inside:  []message.Notification{notif("p", 5), notif("p", 10)},
			outside: []message.Notification{notif("p", 11)},
		},
		{
			name:    "lt and ge covering line",
			f:       MustNew(LT("p", v(5))),
			g:       MustNew(GE("p", v(5))),
			ok:      true,
			inside:  []message.Notification{notif("p", -100), notif("p", 5), notif("p", 100)},
			outside: []message.Notification{notif("q", 1)}, // attribute must still exist
		},
		{
			name: "covering pair returns cover",
			f:    MustNew(LE("p", v(10))),
			g:    MustNew(LE("p", v(5))),
			ok:   true,
			inside: []message.Notification{
				notif("p", 10), notif("p", -3),
			},
			outside: []message.Notification{notif("p", 11)},
		},
		{
			name: "two differing attrs cannot merge",
			f:    MustNew(EQ("a", v(1)), EQ("b", v(1))),
			g:    MustNew(EQ("a", v(2)), EQ("b", v(2))),
			ok:   false,
		},
		{
			name: "different attr sets cannot merge",
			f:    MustNew(EQ("a", v(1))),
			g:    MustNew(EQ("b", v(1))),
			ok:   false,
		},
		{
			name:    "ne plus eq gives exists",
			f:       MustNew(NE("a", v(1))),
			g:       MustNew(EQ("a", v(1))),
			ok:      true,
			inside:  []message.Notification{notif("a", 1), notif("a", 2)},
			outside: []message.Notification{notif("b", 1)},
		},
		{
			name: "disjoint ranges do not merge",
			f:    MustNew(Range("p", v(0), v(3))),
			g:    MustNew(Range("p", v(7), v(9))),
			ok:   false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m, ok := Merge(tt.f, tt.g)
			if ok != tt.ok {
				t.Fatalf("Merge ok = %v, want %v (m=%s)", ok, tt.ok, m)
			}
			if !ok {
				return
			}
			if !m.Covers(tt.f) || !m.Covers(tt.g) {
				t.Errorf("merge %s must cover both inputs", m)
			}
			for _, n := range tt.inside {
				if !m.Matches(n) {
					t.Errorf("merge %s should match %s", m, n)
				}
			}
			for _, n := range tt.outside {
				if m.Matches(n) {
					t.Errorf("merge %s should NOT match %s (perfect merge violated)", m, n)
				}
			}
		})
	}
}

func TestMergeAllGreedy(t *testing.T) {
	s := func(ss string) message.Value { return message.String(ss) }
	fs := []Filter{
		MustNew(EQ("loc", s("a"))),
		MustNew(EQ("loc", s("b"))),
		MustNew(EQ("loc", s("c"))),
	}
	out := MergeAll(fs)
	if len(out) != 1 {
		t.Fatalf("MergeAll: %d filters remain, want 1", len(out))
	}
	for _, l := range []string{"a", "b", "c"} {
		if !out[0].Matches(notif("loc", l)) {
			t.Errorf("merged filter misses loc=%s", l)
		}
	}
	if out[0].Matches(notif("loc", "z")) {
		t.Error("merged filter over-accepts")
	}
}

// TestMergeExactnessQuick property-tests perfection of merges: the merged
// filter accepts a notification iff one of the inputs does.
func TestMergeExactnessQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randInterval := func() Filter {
		lo := rng.Intn(50)
		hi := lo + rng.Intn(20)
		return MustNew(Range("p", message.Int(int64(lo)), message.Int(int64(hi))))
	}
	for i := 0; i < 500; i++ {
		f, g := randInterval(), randInterval()
		m, ok := Merge(f, g)
		if !ok {
			continue
		}
		for p := -2; p < 80; p++ {
			n := notif("p", p)
			want := f.Matches(n) || g.Matches(n)
			if got := m.Matches(n); got != want {
				t.Fatalf("merge of %s and %s -> %s: p=%d got %v want %v", f, g, m, p, got, want)
			}
		}
	}
}

// TestCoversSoundnessQuick property-tests the covering relation: whenever
// Covers reports true, every notification matching the covered filter must
// match the cover.
func TestCoversSoundnessQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}
	f := func(loF, spanF, loG, spanG uint8, probe int16) bool {
		ff := MustNew(Range("p", message.Int(int64(loF)), message.Int(int64(loF)+int64(spanF))))
		gg := MustNew(Range("p", message.Int(int64(loG)), message.Int(int64(loG)+int64(spanG))))
		if !ff.Covers(gg) {
			return true // nothing to check
		}
		n := notif("p", int(probe))
		if gg.Matches(n) && !ff.Matches(n) {
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestCoverTransitivityQuick checks transitivity on interval constraints.
func TestCoverTransitivityQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}
	mk := func(lo, span uint8) Filter {
		return MustNew(Range("p", message.Int(int64(lo)), message.Int(int64(lo)+int64(span))))
	}
	f := func(a, sa, b, sb, c, sc uint8) bool {
		fa, fb, fc := mk(a, sa), mk(b, sb), mk(c, sc)
		if fa.Covers(fb) && fb.Covers(fc) && !fa.Covers(fc) {
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
