package filter

import (
	"testing"

	"repro/internal/message"
)

func notif(pairs ...any) message.Notification {
	attrs := make(map[string]message.Value)
	for i := 0; i+1 < len(pairs); i += 2 {
		name, ok := pairs[i].(string)
		if !ok {
			panic("attr name must be string")
		}
		switch v := pairs[i+1].(type) {
		case string:
			attrs[name] = message.String(v)
		case int:
			attrs[name] = message.Int(int64(v))
		case float64:
			attrs[name] = message.Float(v)
		case bool:
			attrs[name] = message.Bool(v)
		default:
			panic("unsupported attr type")
		}
	}
	return message.New(attrs)
}

func TestConstraintMatching(t *testing.T) {
	n := notif("price", 100, "sym", "ACME", "active", true, "ratio", 0.5)
	tests := []struct {
		c    Constraint
		want bool
	}{
		{EQ("sym", message.String("ACME")), true},
		{EQ("sym", message.String("OTHER")), false},
		{NE("sym", message.String("OTHER")), true},
		{NE("sym", message.String("ACME")), false},
		{NE("sym", message.Int(1)), false}, // kind mismatch never matches
		{LT("price", message.Int(101)), true},
		{LT("price", message.Int(100)), false},
		{LE("price", message.Int(100)), true},
		{GT("price", message.Int(99)), true},
		{GT("price", message.Int(100)), false},
		{GE("price", message.Int(100)), true},
		{Prefix("sym", "AC"), true},
		{Prefix("sym", "CM"), false},
		{Suffix("sym", "ME"), true},
		{Suffix("sym", "AC"), false},
		{Contains("sym", "CM"), true},
		{Contains("sym", "XX"), false},
		{In("sym", message.String("X"), message.String("ACME")), true},
		{In("sym", message.String("X")), false},
		{Range("price", message.Int(50), message.Int(150)), true},
		{Range("price", message.Int(101), message.Int(150)), false},
		{Exists("active"), true},
		{Exists("missing"), false},
		{EQ("missing", message.Int(1)), false},
		{LT("sym", message.Int(5)), false}, // cross-kind ordering never matches
		{EQ("active", message.Bool(true)), true},
		{LE("ratio", message.Float(0.5)), true},
	}
	for _, tt := range tests {
		if got := tt.c.Matches(n); got != tt.want {
			t.Errorf("%s.Matches = %v, want %v", tt.c, got, tt.want)
		}
	}
}

func TestConstraintValidate(t *testing.T) {
	bad := []Constraint{
		{Attr: "", Op: OpEQ, Value: message.Int(1)},
		{Attr: "a", Op: OpEQ},                                              // missing value
		{Attr: "a", Op: OpLT, Value: message.Bool(true)},                   // ordering on bool
		{Attr: "a", Op: OpPrefix, Value: message.Int(1)},                   // prefix needs string
		{Attr: "a", Op: OpIn},                                              // empty set
		{Attr: "a", Op: OpRange, Lo: message.Int(1)},                       // missing hi
		{Attr: "a", Op: OpRange, Lo: message.Int(5), Hi: message.Int(1)},   // empty range
		{Attr: "a", Op: OpRange, Lo: message.Int(1), Hi: message.Float(2)}, // mixed kinds
		{Attr: "a", Op: OpInvalid},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) should fail", c)
		}
	}
	good := []Constraint{
		EQ("a", message.Int(1)),
		Exists("a"),
		Range("a", message.Int(1), message.Int(1)),
		In("a", message.String("x")),
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%s): %v", c, err)
		}
	}
}

func TestInCanonicalization(t *testing.T) {
	a := In("x", message.String("b"), message.String("a"), message.String("b"))
	b := In("x", message.String("a"), message.String("b"))
	if !a.Equal(b) {
		t.Errorf("In should dedupe and sort: %s vs %s", a, b)
	}
}

func TestFilterMatchesConjunction(t *testing.T) {
	f := MustNew(
		EQ("service", message.String("parking")),
		LT("cost", message.Int(3)),
	)
	if !f.Matches(notif("service", "parking", "cost", 2)) {
		t.Error("conjunction should match")
	}
	if f.Matches(notif("service", "parking", "cost", 5)) {
		t.Error("violated constraint should fail the conjunction")
	}
	if f.Matches(notif("cost", 2)) {
		t.Error("missing attribute should fail")
	}
	if !MatchAll().Matches(notif()) {
		t.Error("MatchAll must match the empty notification")
	}
}

func TestFilterCanonicalIdentity(t *testing.T) {
	a := MustNew(EQ("x", message.Int(1)), EQ("y", message.Int(2)))
	b := MustNew(EQ("y", message.Int(2)), EQ("x", message.Int(1)))
	if a.ID() != b.ID() {
		t.Error("constraint order must not affect ID")
	}
	if !a.Equal(b) || !a.Identical(b) {
		t.Error("reordered filters must be equal")
	}
	if MatchAll().ID() != "*" {
		t.Errorf("MatchAll ID = %q", MatchAll().ID())
	}
}

func TestFilterCovers(t *testing.T) {
	v := func(i int) message.Value { return message.Int(int64(i)) }
	s := func(ss string) message.Value { return message.String(ss) }
	tests := []struct {
		name string
		f, g Filter
		want bool
	}{
		{"matchall covers anything", MatchAll(), MustNew(EQ("a", v(1))), true},
		{"nothing covers matchall", MustNew(EQ("a", v(1))), MatchAll(), false},
		{"eq covers same eq", MustNew(EQ("a", v(1))), MustNew(EQ("a", v(1))), true},
		{"eq not covers other eq", MustNew(EQ("a", v(1))), MustNew(EQ("a", v(2))), false},
		{"lt covers smaller lt", MustNew(LT("a", v(10))), MustNew(LT("a", v(5))), true},
		{"lt not covers larger", MustNew(LT("a", v(5))), MustNew(LT("a", v(10))), false},
		{"le covers lt same bound", MustNew(LE("a", v(5))), MustNew(LT("a", v(5))), true},
		{"lt not covers le same bound", MustNew(LT("a", v(5))), MustNew(LE("a", v(5))), false},
		{"ge covers gt", MustNew(GE("a", v(5))), MustNew(GT("a", v(5))), true},
		{"range covers subrange", MustNew(Range("a", v(0), v(10))), MustNew(Range("a", v(2), v(8))), true},
		{"range not covers overlap", MustNew(Range("a", v(0), v(10))), MustNew(Range("a", v(5), v(15))), false},
		{"in covers subset", MustNew(In("a", s("x"), s("y"))), MustNew(In("a", s("x"))), true},
		{"in not covers superset", MustNew(In("a", s("x"))), MustNew(In("a", s("x"), s("y"))), false},
		{"in covers eq member", MustNew(In("a", s("x"), s("y"))), MustNew(EQ("a", s("x"))), true},
		{"prefix covers longer prefix", MustNew(Prefix("a", "re")), MustNew(Prefix("a", "rebeca")), true},
		{"prefix not covers shorter", MustNew(Prefix("a", "rebeca")), MustNew(Prefix("a", "re")), false},
		{"prefix covers matching eq", MustNew(Prefix("a", "re")), MustNew(EQ("a", s("rebeca"))), true},
		{"suffix covers longer suffix", MustNew(Suffix("a", "ca")), MustNew(Suffix("a", "rebeca")), true},
		{"contains covers prefix containing it", MustNew(Contains("a", "eb")), MustNew(Prefix("a", "rebeca")), true},
		{"exists covers everything", MustNew(Exists("a")), MustNew(EQ("a", v(1))), true},
		{"ne covers eq other", MustNew(NE("a", v(1))), MustNew(EQ("a", v(2))), true},
		{"ne not covers eq same", MustNew(NE("a", v(1))), MustNew(EQ("a", v(1))), false},
		{"ne covers range excluding", MustNew(NE("a", v(1))), MustNew(Range("a", v(2), v(9))), true},
		{"ge covers range above", MustNew(GE("a", v(0))), MustNew(Range("a", v(2), v(9))), true},
		{"range covers eq inside", MustNew(Range("a", v(0), v(10))), MustNew(EQ("a", v(3))), true},
		{"different attrs never cover", MustNew(EQ("a", v(1))), MustNew(EQ("b", v(1))), false},
		{
			"extra constraint in g is fine",
			MustNew(EQ("a", v(1))),
			MustNew(EQ("a", v(1)), EQ("b", v(2))),
			true,
		},
		{
			"extra constraint in f breaks cover",
			MustNew(EQ("a", v(1)), EQ("b", v(2))),
			MustNew(EQ("a", v(1))),
			false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.f.Covers(tt.g); got != tt.want {
				t.Errorf("%s Covers %s = %v, want %v", tt.f, tt.g, got, tt.want)
			}
		})
	}
}

func TestFilterOverlaps(t *testing.T) {
	v := func(i int) message.Value { return message.Int(int64(i)) }
	tests := []struct {
		name string
		f, g Filter
		want bool
	}{
		{"disjoint eq", MustNew(EQ("a", v(1))), MustNew(EQ("a", v(2))), false},
		{"same eq", MustNew(EQ("a", v(1))), MustNew(EQ("a", v(1))), true},
		{"disjoint ranges", MustNew(Range("a", v(0), v(4))), MustNew(Range("a", v(5), v(9))), false},
		{"touching ranges", MustNew(Range("a", v(0), v(5))), MustNew(Range("a", v(5), v(9))), true},
		{"lt vs ge disjoint", MustNew(LT("a", v(5))), MustNew(GE("a", v(5))), false},
		{"le vs ge at bound", MustNew(LE("a", v(5))), MustNew(GE("a", v(5))), true},
		{"different attrs overlap", MustNew(EQ("a", v(1))), MustNew(EQ("b", v(9))), true},
		{"matchall overlaps", MatchAll(), MustNew(EQ("a", v(1))), true},
		{"in vs range", MustNew(In("a", v(3), v(12))), MustNew(Range("a", v(0), v(5))), true},
		{"in vs range disjoint", MustNew(In("a", v(7), v(12))), MustNew(Range("a", v(0), v(5))), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.f.Overlaps(tt.g); got != tt.want {
				t.Errorf("Overlaps = %v, want %v", got, tt.want)
			}
			if got := tt.g.Overlaps(tt.f); got != tt.want {
				t.Errorf("Overlaps not symmetric")
			}
		})
	}
}

func TestFilterWithWithoutReplace(t *testing.T) {
	f := MustNew(EQ("a", message.Int(1)), EQ("b", message.Int(2)))
	g := f.Without("a")
	if len(g.ConstraintsOn("a")) != 0 || len(g.ConstraintsOn("b")) != 1 {
		t.Errorf("Without failed: %s", g)
	}
	h, err := f.Replace(EQ("a", message.Int(9)))
	if err != nil {
		t.Fatal(err)
	}
	if !h.Matches(notif("a", 9, "b", 2)) || h.Matches(notif("a", 1, "b", 2)) {
		t.Errorf("Replace failed: %s", h)
	}
	// Original untouched.
	if !f.Matches(notif("a", 1, "b", 2)) {
		t.Error("Replace mutated the receiver")
	}
}
