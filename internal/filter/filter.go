package filter

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/message"
)

// Filter is a conjunction of attribute constraints. The zero Filter has no
// constraints and matches every notification ("true"); it models the
// flooding subscription "everything, everywhere, all the time".
//
// Filters are immutable after construction. Every constructor precomputes
// the cover signature (see signature.go) that lets Covers reject most
// non-covering pairs without walking the constraint lists.
type Filter struct {
	cs  []Constraint
	sig sig
}

// New builds a filter from the given constraints, validating each. The
// constraints are stored in a canonical order (by attribute, then identity)
// so that equal filters have equal renderings and IDs.
func New(cs ...Constraint) (Filter, error) {
	cp := make([]Constraint, len(cs))
	copy(cp, cs)
	for i, c := range cp {
		if err := c.Validate(); err != nil {
			return Filter{}, fmt.Errorf("constraint %d %s: %w", i, c, err)
		}
	}
	sort.Slice(cp, func(i, j int) bool {
		if cp[i].Attr != cp[j].Attr {
			return cp[i].Attr < cp[j].Attr
		}
		return cp[i].key() < cp[j].key()
	})
	return Filter{cs: cp, sig: computeSig(cp)}, nil
}

// MustNew is like New but panics on invalid constraints; it is intended for
// statically-known filters in tests and examples.
func MustNew(cs ...Constraint) Filter {
	f, err := New(cs...)
	if err != nil {
		panic(err)
	}
	return f
}

// MatchAll returns the filter with no constraints, which accepts every
// notification.
func MatchAll() Filter { return Filter{} }

// IsMatchAll reports whether the filter has no constraints.
func (f Filter) IsMatchAll() bool { return len(f.cs) == 0 }

// Len returns the number of constraints.
func (f Filter) Len() int { return len(f.cs) }

// At returns the i-th constraint in canonical order without copying the
// list (the routing index iterates constraints on its maintenance path).
// The returned constraint shares the filter's backing storage; callers
// must not mutate its Values slice.
func (f Filter) At(i int) Constraint { return f.cs[i] }

// Constraints returns a copy of the constraint list.
func (f Filter) Constraints() []Constraint {
	out := make([]Constraint, len(f.cs))
	copy(out, f.cs)
	return out
}

// ConstraintsOn returns the constraints on the given attribute.
func (f Filter) ConstraintsOn(attr string) []Constraint {
	var out []Constraint
	for _, c := range f.cs {
		if c.Attr == attr {
			out = append(out, c)
		}
	}
	return out
}

// Attrs returns the sorted set of attributes the filter constrains.
func (f Filter) Attrs() []string {
	seen := make(map[string]bool, len(f.cs))
	out := make([]string, 0, len(f.cs))
	for _, c := range f.cs {
		if !seen[c.Attr] {
			seen[c.Attr] = true
			out = append(out, c.Attr)
		}
	}
	return out
}

// Matches reports whether the filter accepts the notification: every
// constraint must hold.
func (f Filter) Matches(n message.Notification) bool {
	for _, c := range f.cs {
		if !c.Matches(n) {
			return false
		}
	}
	return true
}

// Equal reports structural equality (after canonicalization).
func (f Filter) Equal(g Filter) bool {
	if len(f.cs) != len(g.cs) {
		return false
	}
	for i := range f.cs {
		if !f.cs[i].Equal(g.cs[i]) {
			return false
		}
	}
	return true
}

// Covers reports whether f accepts a superset of the notifications
// accepted by g (Section 2.2: the covering routing strategy). The empty
// filter covers everything. The test is sound; for each constraint of f
// there must be a constraint of g on the same attribute that it covers.
// The precomputed signatures settle most non-covering pairs in O(1)
// before the constraint walk.
func (f Filter) Covers(g Filter) bool {
	if !f.sig.canCover(g.sig) {
		return false
	}
	return f.coversFull(g)
}

// coversFull is the constraint-walking cover test behind Covers, split out
// so the signature fast path can be property-tested against it.
func (f Filter) coversFull(g Filter) bool {
	for _, c := range f.cs {
		covered := false
		for _, d := range g.cs {
			if d.Attr != c.Attr {
				continue
			}
			if c.Covers(d) {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}

// Overlaps reports whether f and g can accept a common notification. The
// test is conservative (may report true for disjoint filters with exotic
// constraint combinations), which is the safe direction for routing.
func (f Filter) Overlaps(g Filter) bool {
	for _, c := range f.cs {
		for _, d := range g.cs {
			if c.Attr == d.Attr && !c.Overlaps(d) {
				return false
			}
		}
	}
	return true
}

// Identical reports whether two filters have the same canonical identity.
func (f Filter) Identical(g Filter) bool { return f.ID() == g.ID() }

// ID returns a canonical identity string for the filter, usable as a map
// key in routing tables.
func (f Filter) ID() string {
	if len(f.cs) == 0 {
		return "*"
	}
	parts := make([]string, len(f.cs))
	for i, c := range f.cs {
		parts[i] = c.key()
	}
	return strings.Join(parts, "&")
}

// String renders the filter in the paper's notation:
// (service = "parking"), (cost < 3). The empty filter renders as "(true)".
func (f Filter) String() string {
	if len(f.cs) == 0 {
		return "(true)"
	}
	parts := make([]string, len(f.cs))
	for i, c := range f.cs {
		parts[i] = c.String()
	}
	return strings.Join(parts, ", ")
}

// With returns a new filter with an additional constraint.
func (f Filter) With(c Constraint) (Filter, error) {
	return New(append(f.Constraints(), c)...)
}

// Without returns a new filter with every constraint on attr removed.
func (f Filter) Without(attr string) Filter {
	out := make([]Constraint, 0, len(f.cs))
	for _, c := range f.cs {
		if c.Attr != attr {
			out = append(out, c)
		}
	}
	return Filter{cs: out, sig: computeSig(out)}
}

// Replace returns a new filter where all constraints on c.Attr are
// replaced by c.
func (f Filter) Replace(c Constraint) (Filter, error) {
	return f.Without(c.Attr).With(c)
}
