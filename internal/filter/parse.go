package filter

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/message"
)

// Parse builds a filter from a small subscription language mirroring the
// paper's examples:
//
//	service = "parking" && location in {"a", "b"} && cost < 3.0
//	street prefix "Rebeca" && spots >= 1 && covered = true
//
// Grammar (informal):
//
//	filter     := conjunct { "&&" conjunct } | "true"
//	conjunct   := ident op literal
//	            | ident "in" "{" literal { "," literal } "}"
//	            | ident "in" "[" literal "," literal "]"
//	            | ident "exists"
//	op         := "=" | "==" | "!=" | "<" | "<=" | ">" | ">=" |
//	              "prefix" | "suffix" | "contains"
//	literal    := string | int | float | "true" | "false"
//
// Unquoted integer literals parse as Int, literals with '.' or exponent as
// Float, true/false as Bool, and quoted text as String.
func Parse(src string) (Filter, error) {
	src = strings.TrimSpace(src)
	if src == "" || src == "true" {
		return MatchAll(), nil
	}
	p := &parser{src: src}
	var cs []Constraint
	for {
		c, err := p.constraint()
		if err != nil {
			return Filter{}, fmt.Errorf("filter: parse %q: %w", src, err)
		}
		cs = append(cs, c)
		p.skipSpace()
		if p.done() {
			break
		}
		if !p.consume("&&") && !p.consume("and") {
			return Filter{}, fmt.Errorf("filter: parse %q: expected '&&' at offset %d", src, p.pos)
		}
	}
	return New(cs...)
}

// MustParse is Parse that panics on error, for statically-known filters.
func MustParse(src string) Filter {
	f, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return f
}

type parser struct {
	src string
	pos int
}

var errParse = errors.New("syntax error")

func (p *parser) done() bool { return p.pos >= len(p.src) }

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *parser) consume(tok string) bool {
	p.skipSpace()
	if strings.HasPrefix(p.src[p.pos:], tok) {
		p.pos += len(tok)
		return true
	}
	return false
}

func (p *parser) ident() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		r := rune(p.src[p.pos])
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '.' {
			p.pos++
		} else {
			break
		}
	}
	if p.pos == start {
		return "", fmt.Errorf("%w: expected identifier at offset %d", errParse, p.pos)
	}
	return p.src[start:p.pos], nil
}

func (p *parser) literal() (message.Value, error) {
	p.skipSpace()
	if p.done() {
		return message.Value{}, fmt.Errorf("%w: expected literal at end of input", errParse)
	}
	switch c := p.src[p.pos]; {
	case c == '"' || c == '\'':
		return p.stringLit(c)
	default:
		word, err := p.ident()
		if err != nil {
			return message.Value{}, err
		}
		switch word {
		case "true":
			return message.Bool(true), nil
		case "false":
			return message.Bool(false), nil
		}
		if i, err := strconv.ParseInt(word, 10, 64); err == nil {
			return message.Int(i), nil
		}
		if f, err := strconv.ParseFloat(word, 64); err == nil {
			return message.Float(f), nil
		}
		// Bare words parse as strings, which keeps location names like
		// {a, b, c} convenient.
		return message.String(word), nil
	}
}

func (p *parser) stringLit(quote byte) (message.Value, error) {
	p.pos++ // opening quote
	var b strings.Builder
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch c {
		case quote:
			p.pos++
			return message.String(b.String()), nil
		case '\\':
			if p.pos+1 >= len(p.src) {
				return message.Value{}, fmt.Errorf("%w: dangling escape", errParse)
			}
			p.pos++
			b.WriteByte(p.src[p.pos])
			p.pos++
		default:
			b.WriteByte(c)
			p.pos++
		}
	}
	return message.Value{}, fmt.Errorf("%w: unterminated string", errParse)
}

func (p *parser) constraint() (Constraint, error) {
	attr, err := p.ident()
	if err != nil {
		return Constraint{}, err
	}
	p.skipSpace()
	switch {
	case p.consume("=="), p.consume("="):
		v, err := p.literal()
		if err != nil {
			return Constraint{}, err
		}
		return EQ(attr, v), nil
	case p.consume("!="):
		v, err := p.literal()
		if err != nil {
			return Constraint{}, err
		}
		return NE(attr, v), nil
	case p.consume("<="):
		v, err := p.literal()
		if err != nil {
			return Constraint{}, err
		}
		return LE(attr, v), nil
	case p.consume(">="):
		v, err := p.literal()
		if err != nil {
			return Constraint{}, err
		}
		return GE(attr, v), nil
	case p.consume("<"):
		v, err := p.literal()
		if err != nil {
			return Constraint{}, err
		}
		return LT(attr, v), nil
	case p.consume(">"):
		v, err := p.literal()
		if err != nil {
			return Constraint{}, err
		}
		return GT(attr, v), nil
	case p.consume("prefix"):
		v, err := p.literal()
		if err != nil {
			return Constraint{}, err
		}
		return Prefix(attr, v.Str()), nil
	case p.consume("suffix"):
		v, err := p.literal()
		if err != nil {
			return Constraint{}, err
		}
		return Suffix(attr, v.Str()), nil
	case p.consume("contains"):
		v, err := p.literal()
		if err != nil {
			return Constraint{}, err
		}
		return Contains(attr, v.Str()), nil
	case p.consume("exists"):
		return Exists(attr), nil
	case p.consume("in"):
		return p.setOrRange(attr)
	default:
		return Constraint{}, fmt.Errorf("%w: expected operator after %q at offset %d", errParse, attr, p.pos)
	}
}

func (p *parser) setOrRange(attr string) (Constraint, error) {
	p.skipSpace()
	switch {
	case p.consume("{"):
		var vs []message.Value
		for {
			v, err := p.literal()
			if err != nil {
				return Constraint{}, err
			}
			vs = append(vs, v)
			p.skipSpace()
			if p.consume("}") {
				return In(attr, vs...), nil
			}
			if !p.consume(",") {
				return Constraint{}, fmt.Errorf("%w: expected ',' or '}' at offset %d", errParse, p.pos)
			}
		}
	case p.consume("["):
		lo, err := p.literal()
		if err != nil {
			return Constraint{}, err
		}
		if !p.consume(",") {
			return Constraint{}, fmt.Errorf("%w: expected ',' in range at offset %d", errParse, p.pos)
		}
		hi, err := p.literal()
		if err != nil {
			return Constraint{}, err
		}
		if !p.consume("]") {
			return Constraint{}, fmt.Errorf("%w: expected ']' at offset %d", errParse, p.pos)
		}
		return Range(attr, lo, hi), nil
	default:
		return Constraint{}, fmt.Errorf("%w: expected '{' or '[' after 'in' at offset %d", errParse, p.pos)
	}
}
