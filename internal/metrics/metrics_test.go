package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc(CategoryNotification)
	c.Add(CategoryAdmin, 3)
	c.Inc(CategoryControl)
	c.Add(CategoryDeliver, 2)
	if got := c.Get(CategoryNotification); got != 1 {
		t.Errorf("notifications = %d", got)
	}
	if got := c.Get(CategoryAdmin); got != 3 {
		t.Errorf("admin = %d", got)
	}
	if got := c.Total(); got != 7 {
		t.Errorf("total = %d", got)
	}
	snap := c.Snapshot()
	if snap[CategoryControl] != 1 || snap[CategoryDeliver] != 2 {
		t.Errorf("snapshot = %v", snap)
	}
	if got := c.Get(Category(99)); got != 0 {
		t.Errorf("unknown category = %d", got)
	}
	c.Add(Category(99), 5) // must not panic or count
	if c.Total() != 7 {
		t.Error("unknown category affected total")
	}
	s := c.String()
	for _, want := range []string{"notification=1", "admin=3", "control=1", "deliver=2"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() %q misses %q", s, want)
		}
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc(CategoryNotification)
			}
		}()
	}
	wg.Wait()
	if got := c.Get(CategoryNotification); got != 8000 {
		t.Errorf("concurrent count = %d, want 8000", got)
	}
}

func TestCategoryString(t *testing.T) {
	names := map[Category]string{
		CategoryNotification: "notification",
		CategoryAdmin:        "admin",
		CategoryControl:      "control",
		CategoryDeliver:      "deliver",
		Category(42):         "unknown",
	}
	for cat, want := range names {
		if got := cat.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", cat, got, want)
		}
	}
}

func TestLatencyRecorder(t *testing.T) {
	var r LatencyRecorder
	if r.Count() != 0 || r.Quantile(0.5) != 0 {
		t.Error("empty recorder misbehaves")
	}
	for _, d := range []time.Duration{30, 10, 50, 20, 40} {
		r.Record(d * time.Millisecond)
	}
	if r.Count() != 5 {
		t.Errorf("Count = %d", r.Count())
	}
	if got := r.Quantile(0); got != 10*time.Millisecond {
		t.Errorf("min = %v", got)
	}
	if got := r.Quantile(1); got != 50*time.Millisecond {
		t.Errorf("max = %v", got)
	}
	if got := r.Quantile(0.5); got != 30*time.Millisecond {
		t.Errorf("median = %v", got)
	}
	if got := r.Quantile(-1); got != 10*time.Millisecond {
		t.Errorf("clamped low quantile = %v", got)
	}
	samples := r.Samples()
	if len(samples) != 5 {
		t.Errorf("Samples = %v", samples)
	}
	samples[0] = 0 // must not alias internal state
	if r.Quantile(0) == 0 {
		t.Error("Samples aliases internal slice")
	}
}

func TestDistribution(t *testing.T) {
	var d Distribution
	if d.Count() != 0 || d.Sum() != 0 || d.Max() != 0 || d.Mean() != 0 {
		t.Error("zero value not empty")
	}
	for _, v := range []uint64{3, 7, 1, 7, 2} {
		d.Observe(v)
	}
	if d.Count() != 5 {
		t.Errorf("count = %d", d.Count())
	}
	if d.Sum() != 20 {
		t.Errorf("sum = %d", d.Sum())
	}
	if d.Max() != 7 {
		t.Errorf("max = %d", d.Max())
	}
	if d.Mean() != 4 {
		t.Errorf("mean = %v", d.Mean())
	}
}

func TestDistributionConcurrent(t *testing.T) {
	var d Distribution
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := uint64(1); i <= 100; i++ {
				d.Observe(i)
			}
		}()
	}
	wg.Wait()
	if d.Count() != 800 {
		t.Errorf("count = %d", d.Count())
	}
	if d.Max() != 100 {
		t.Errorf("max = %d", d.Max())
	}
}
