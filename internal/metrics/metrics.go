// Package metrics provides lightweight counters for the experiment
// harness: messages by category (the quantity Figure 9 plots), delivery
// and latency recorders.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Category classifies a counted message.
type Category uint8

// Message categories. Notifications are payload; everything else is the
// administrative traffic the paper's Figure 9 accounts for separately.
const (
	CategoryNotification Category = iota + 1
	CategoryAdmin
	CategoryControl // relocation control traffic (fetch/replay)
	CategoryDeliver // border-broker-to-client deliveries
)

// String returns the category name.
func (c Category) String() string {
	switch c {
	case CategoryNotification:
		return "notification"
	case CategoryAdmin:
		return "admin"
	case CategoryControl:
		return "control"
	case CategoryDeliver:
		return "deliver"
	default:
		return "unknown"
	}
}

// Counter is a set of atomic per-category counters. The zero value is
// ready to use.
type Counter struct {
	notifications atomic.Uint64
	admin         atomic.Uint64
	control       atomic.Uint64
	deliver       atomic.Uint64
}

// Inc increments the category by one.
func (c *Counter) Inc(cat Category) { c.Add(cat, 1) }

// Add increments the category by n.
func (c *Counter) Add(cat Category, n uint64) {
	switch cat {
	case CategoryNotification:
		c.notifications.Add(n)
	case CategoryAdmin:
		c.admin.Add(n)
	case CategoryControl:
		c.control.Add(n)
	case CategoryDeliver:
		c.deliver.Add(n)
	}
}

// Get returns the current value of the category.
func (c *Counter) Get(cat Category) uint64 {
	switch cat {
	case CategoryNotification:
		return c.notifications.Load()
	case CategoryAdmin:
		return c.admin.Load()
	case CategoryControl:
		return c.control.Load()
	case CategoryDeliver:
		return c.deliver.Load()
	default:
		return 0
	}
}

// Total returns the sum over all categories (the paper's "total number of
// messages (notifications and administrative messages)").
func (c *Counter) Total() uint64 {
	return c.notifications.Load() + c.admin.Load() + c.control.Load() + c.deliver.Load()
}

// Snapshot returns all values at once.
func (c *Counter) Snapshot() map[Category]uint64 {
	return map[Category]uint64{
		CategoryNotification: c.notifications.Load(),
		CategoryAdmin:        c.admin.Load(),
		CategoryControl:      c.control.Load(),
		CategoryDeliver:      c.deliver.Load(),
	}
}

// String renders the counter for diagnostics.
func (c *Counter) String() string {
	snap := c.Snapshot()
	cats := make([]Category, 0, len(snap))
	for cat := range snap {
		cats = append(cats, cat)
	}
	sort.Slice(cats, func(i, j int) bool { return cats[i] < cats[j] })
	parts := make([]string, 0, len(cats))
	for _, cat := range cats {
		parts = append(parts, fmt.Sprintf("%s=%d", cat, snap[cat]))
	}
	return strings.Join(parts, " ")
}

// Distribution tracks a stream of integer observations with atomic
// counters: count, sum, and max. Brokers use it for batch-depth
// observability (how many tasks each mailbox drain carried).
type Distribution struct {
	count atomic.Uint64
	sum   atomic.Uint64
	max   atomic.Uint64
}

// Observe records one observation.
func (d *Distribution) Observe(v uint64) {
	d.count.Add(1)
	d.sum.Add(v)
	for {
		cur := d.max.Load()
		if v <= cur || d.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (d *Distribution) Count() uint64 { return d.count.Load() }

// Sum returns the sum of all observations.
func (d *Distribution) Sum() uint64 { return d.sum.Load() }

// Max returns the largest observation, or 0 when empty.
func (d *Distribution) Max() uint64 { return d.max.Load() }

// Mean returns the average observation, or 0 when empty.
func (d *Distribution) Mean() float64 {
	n := d.count.Load()
	if n == 0 {
		return 0
	}
	return float64(d.sum.Load()) / float64(n)
}

// Gauge is an atomic up/down counter for instantaneous quantities (queue
// depths, in-flight work). The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Add moves the gauge by delta (negative to decrement).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Get returns the current value.
func (g *Gauge) Get() int64 { return g.v.Load() }

// LatencyRecorder accumulates deliveries with timestamps, used by the
// blackout-period experiment (Figure 3).
type LatencyRecorder struct {
	mu      sync.Mutex
	samples []time.Duration
}

// Record appends a sample.
func (r *LatencyRecorder) Record(d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.samples = append(r.samples, d)
}

// Samples returns a copy of all samples.
func (r *LatencyRecorder) Samples() []time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]time.Duration, len(r.samples))
	copy(out, r.samples)
	return out
}

// Count returns the number of samples.
func (r *LatencyRecorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples)
}

// Quantile returns the q-quantile (0..1) of the recorded samples, or 0
// when empty.
func (r *LatencyRecorder) Quantile(q float64) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(r.samples))
	copy(sorted, r.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
