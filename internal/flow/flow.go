// Package flow provides the single bounded-queue primitive every
// queueing layer of the system shares: the broker mailbox, ChanLink send
// windows, and the TCPLink frame ring are all instances of Queue.
//
// A Queue is a FIFO with drain-batch consumption (the consumer swaps the
// whole pending list out under one lock acquisition and iterates it
// lock-free), an optional capacity, and a pluggable overload policy that
// decides what happens when a producer finds the queue full: Block stalls
// the producer with watermark hysteresis (credit-based flow control),
// DropOldest evicts from the head, ShedNewest refuses the newcomer.
//
// Items are split into three classes by a caller-supplied classifier.
// Control items (routing updates, relocation traffic, closures) are
// always admitted, even over capacity — shedding control would corrupt
// routing state and break the relocation protocol's FIFO argument, and
// blocking it could deadlock the control plane. Lossless items (client
// deliveries) are never dropped or shed — losing one would silently skip
// a sequence number — but they do count against capacity and stall the
// producer when the queue is full, whatever the policy, so a stalled
// consumer pins bounded memory. Only data items (notifications) are
// subject to the full policy. The paper's system model assumes
// error-free FIFO channels; a bounded queue keeps the FIFO guarantee for
// everything it admits and makes the loss explicit and accounted when a
// policy sheds.
package flow

import (
	"errors"
	"fmt"
	"strings"
	"sync"
)

// Policy selects what a bounded queue does with a data item pushed while
// the queue is at capacity.
type Policy uint8

const (
	// Block stalls the producer until the queue drains to its low-water
	// mark (watermark hysteresis: a full queue revokes producer credit,
	// and credit is restored only once the consumer has drained below
	// LowWater, so producers wake in bursts instead of thrashing at the
	// capacity boundary). Lossless; the backpressure propagates to the
	// producer.
	Block Policy = iota
	// DropOldest evicts the oldest data item to admit the new one: the
	// queue keeps the freshest window of notifications (head drop).
	DropOldest
	// ShedNewest refuses the new item (tail drop): Push returns ErrShed
	// and the queue keeps what it already holds.
	ShedNewest
)

var policyNames = [...]string{
	Block:      "block",
	DropOldest: "drop-oldest",
	ShedNewest: "shed-newest",
}

// String returns the policy's flag-friendly name.
func (p Policy) String() string {
	if int(p) < len(policyNames) {
		return policyNames[p]
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// PolicyNames lists the accepted policy names, in declaration order.
func PolicyNames() []string {
	out := make([]string, len(policyNames))
	copy(out, policyNames[:])
	return out
}

// ParsePolicy parses a policy name (case-insensitive). The error lists
// the valid names, so flag typos are self-documenting.
func ParsePolicy(s string) (Policy, error) {
	name := strings.ToLower(strings.TrimSpace(s))
	for i, n := range policyNames {
		if name == n {
			return Policy(i), nil
		}
	}
	return 0, fmt.Errorf("flow: unknown policy %q (valid: %s)", s, strings.Join(PolicyNames(), ", "))
}

// Class is the admission class of a queued item, assigned by the
// queue's classifier.
type Class uint8

const (
	// Data items are fully subject to the overload policy: Block stalls
	// them, DropOldest may evict them, ShedNewest may refuse them.
	Data Class = iota
	// Lossless items are never dropped or shed, but they count against
	// capacity and block the producer on a full queue under *every*
	// policy (credit-stall accounting applies). Use for traffic whose
	// loss would corrupt peer state silently — e.g. sequence-numbered
	// client deliveries — while still bounding a stalled consumer.
	Lossless
	// Control items are admitted unconditionally, even over capacity
	// (counted as ControlOverflow), and never evicted: the control plane
	// must neither lose messages nor wait behind data credit.
	Control
)

// Errors returned by Push.
var (
	// ErrShed reports that the ShedNewest policy refused the item; the
	// queue is unchanged and the drop is counted in Stats.
	ErrShed = errors.New("flow: queue full, item shed")
	// ErrClosed reports a push to a closed queue.
	ErrClosed = errors.New("flow: queue closed")
)

// Options configures a Queue.
type Options struct {
	// Capacity bounds the number of queued items; 0 means unbounded
	// (no admission control, no per-item classification cost).
	Capacity int
	// Policy selects the overload behavior for data items when the
	// queue is full. The zero value is Block.
	Policy Policy
	// LowWater is the refill threshold for Block: a producer stalled by
	// a full queue resumes only once the depth has drained to LowWater
	// or below. 0 means Capacity/2; values >= Capacity are clamped to
	// Capacity-1 so a full queue always revokes credit.
	LowWater int
	// MaxDrain caps how many items one PopBatch returns; 0 means the
	// whole pending queue.
	MaxDrain int
}

// Stats is a snapshot of a queue's flow-control counters.
type Stats struct {
	// Capacity and Policy echo the configuration (0 = unbounded).
	Capacity int
	Policy   Policy
	// Depth is the current number of queued items; HighWater the
	// largest depth observed. For a bounded queue HighWater can exceed
	// Capacity only by control items admitted over the bound
	// (ControlOverflow counts those admissions).
	Depth     int
	HighWater int
	// Pushed counts items accepted into the queue (shed items are not
	// pushed; evicted items were).
	Pushed uint64
	// CreditStalls counts Push calls that blocked waiting for credit:
	// data items under the Block policy, lossless items under every
	// policy.
	CreditStalls uint64
	// DroppedOldest and ShedNewest count data items lost to the
	// respective policies. Control and lossless items are never dropped
	// or shed.
	DroppedOldest uint64
	ShedNewest    uint64
	// ControlOverflow counts control items admitted while the queue was
	// at or over capacity.
	ControlOverflow uint64
}

// Reporter is implemented by types that expose the flow statistics of an
// internal queue (links with send windows); brokers aggregate these into
// their own Stats for slow-consumer detection.
type Reporter interface {
	FlowStats() Stats
}

// Queue is a bounded FIFO of T with drain-batch consumption. Producers
// Push (or PushBurst) under the queue's lock; a single consumer PopBatches
// the whole pending list in one acquisition and iterates it lock-free,
// handing the backing array back via Recycle so the steady state
// allocates nothing. Multiple producers are safe; the drain-batch
// contract assumes one consumer.
type Queue[T any] struct {
	mu    sync.Mutex
	rcond *sync.Cond // consumer waits for items
	wcond *sync.Cond // stalled producers wait for credit

	opts    Options
	classOf func(T) Class
	track   bool // classify items (bounded queue with a classifier)
	onEvict func(T)

	items []T     // pending items; items[head:] are live
	cls   []Class // parallel class tags, maintained when track
	head  int     // index of the first live item (advanced by DropOldest)
	spare []T     // recycled backing array for the next items slice

	refill bool // Block: full queue seen, credit revoked until LowWater
	closed bool

	highWater     int
	pushed        uint64
	creditStalls  uint64
	droppedOldest uint64
	shedNewest    uint64
	ctrlOverflow  uint64
}

// NewQueue creates a queue. classOf assigns each item its admission
// class; nil means every item is Data. The classifier is consulted only
// when the queue is bounded.
func NewQueue[T any](opts Options, classOf func(T) Class) *Queue[T] {
	if opts.Capacity > 0 {
		if opts.LowWater <= 0 {
			opts.LowWater = opts.Capacity / 2
		}
		if opts.LowWater >= opts.Capacity {
			opts.LowWater = opts.Capacity - 1
		}
	}
	q := &Queue[T]{
		opts:    opts,
		classOf: classOf,
		track:   opts.Capacity > 0 && classOf != nil,
	}
	q.rcond = sync.NewCond(&q.mu)
	q.wcond = sync.NewCond(&q.mu)
	return q
}

// OnEvict registers fn, called once — with the queue's lock held — for
// each data item the DropOldest policy evicts. It lets the owner
// release per-item resources (pooled buffers, flush accounting) for
// items that will never reach PopBatch. fn must be fast and must not
// call back into the queue. Register before the first Push.
func (q *Queue[T]) OnEvict(fn func(T)) {
	q.mu.Lock()
	q.onEvict = fn
	q.mu.Unlock()
}

func (q *Queue[T]) depthLocked() int { return len(q.items) - q.head }

// Push enqueues one item. Data items are subject to the capacity and
// policy: Block may stall, DropOldest may evict an older data item,
// ShedNewest may refuse with ErrShed. Lossless items stall on a full
// queue but are never dropped; control items are always admitted.
// Returns ErrClosed after Close.
func (q *Queue[T]) Push(v T) error {
	cl := Data
	if q.track {
		cl = q.classOf(v)
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if err := q.admitLocked(cl); err != nil {
		return err
	}
	q.appendLocked(v, cl)
	return nil
}

// PushBurst enqueues n items produced by at(0..n-1) as one FIFO burst
// under one lock acquisition (the receiving half of a link-level batch).
// The policy applies per item — a control item inside a burst is admitted
// even if data items around it are shed — so a burst never aborts on
// overload; it returns ErrClosed only, when the queue closes before the
// burst completes (remaining items are dropped, mirroring a closed link).
// A Block stall inside a burst releases the lock, so bursts from
// different producers may interleave at the stall point; per-producer
// FIFO order is preserved regardless.
func (q *Queue[T]) PushBurst(n int, at func(int) T) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i := 0; i < n; i++ {
		v := at(i)
		cl := Data
		if q.track {
			cl = q.classOf(v)
		}
		switch err := q.admitLocked(cl); err {
		case nil:
		case ErrShed:
			continue
		default:
			return err
		}
		q.appendLocked(v, cl)
	}
	return nil
}

// admitLocked applies capacity and policy for one item; it may release
// the lock while a stalled producer waits for credit.
func (q *Queue[T]) admitLocked(cl Class) error {
	if q.closed {
		return ErrClosed
	}
	c := q.opts.Capacity
	if c == 0 {
		return nil
	}
	if cl == Control {
		if q.depthLocked() >= c {
			q.ctrlOverflow++
		}
		return nil
	}
	// Lossless items stall on a full queue under every policy: the drop
	// policies must not touch them, so blocking is the only bounded
	// admission left.
	if cl == Lossless || q.opts.Policy == Block {
		return q.waitCreditLocked()
	}
	switch q.opts.Policy {
	case DropOldest:
		for q.depthLocked() >= c {
			if !q.evictOldestLocked() {
				break // nothing evictable: no data among the queued items
			}
			q.droppedOldest++
		}
	case ShedNewest:
		if q.depthLocked() >= c {
			q.shedNewest++
			return ErrShed
		}
	}
	return nil
}

// waitCreditLocked stalls the producer until the queue drains to the
// low-water mark (watermark hysteresis) or closes.
func (q *Queue[T]) waitCreditLocked() error {
	c := q.opts.Capacity
	stalled := false
	for !q.closed {
		if !q.refill && q.depthLocked() < c {
			break
		}
		if q.depthLocked() >= c {
			q.refill = true
		}
		if !stalled {
			stalled = true
			q.creditStalls++
		}
		q.wcond.Wait()
	}
	if q.closed {
		return ErrClosed
	}
	return nil
}

// evictOldestLocked drops the oldest *data* item, skipping any
// control/lossless prefix (neither is ever evicted). Reports false when
// the queue holds no data at all.
func (q *Queue[T]) evictOldestLocked() bool {
	i := q.head
	if q.track {
		for i < len(q.items) && q.cls[i] != Data {
			i++
		}
		if i == len(q.items) {
			return false
		}
	}
	evicted := q.items[i]
	// Shift the (normally empty) non-data prefix one cell toward the
	// tail, overwriting the evicted data item; relative order within the
	// prefix and against everything behind it is preserved.
	if i > q.head {
		copy(q.items[q.head+1:i+1], q.items[q.head:i])
		copy(q.cls[q.head+1:i+1], q.cls[q.head:i])
	}
	var zero T
	q.items[q.head] = zero // release the reference for the GC
	q.head++
	if q.onEvict != nil {
		q.onEvict(evicted)
	}
	return true
}

// compactMinHead is the head advance below which compaction isn't worth
// it; past it, compacting once the dead prefix reaches half the slice
// keeps the backing array within ~2x of the live depth at an amortized
// O(1) copy per append.
const compactMinHead = 64

// compactLocked moves the live region to the front of the recycled spare
// array (or a fresh one), releasing the prefix consumed by head
// advances. Without it, a DropOldest queue whose consumer has stalled
// evicts from the head and appends at the tail forever, growing the
// backing array linearly with traffic. It deliberately never slides in
// place: a split-drain batch handed out by PopBatch may still alias the
// front of the current array.
func (q *Queue[T]) compactLocked() {
	live := q.items[q.head:]
	dst := q.spare
	q.spare = nil
	if cap(dst) < len(live) {
		dst = make([]T, 0, cap(q.items))
	}
	q.items = append(dst[:0], live...)
	if q.track {
		q.cls = append(q.cls[:0:0], q.cls[q.head:]...)
	}
	q.head = 0
}

func (q *Queue[T]) appendLocked(v T, cl Class) {
	if q.items == nil {
		q.items, q.spare = q.spare, nil
		q.head = 0
	}
	if q.head >= compactMinHead && q.head*2 >= len(q.items) {
		q.compactLocked()
	}
	q.items = append(q.items, v)
	if q.track {
		q.cls = append(q.cls, cl)
	}
	q.pushed++
	d := q.depthLocked()
	if d > q.highWater {
		q.highWater = d
	}
	if d == 1 {
		// Empty → non-empty transition: the (single) consumer only ever
		// waits on an empty queue, so this is the only append that can
		// have a waiter to wake. Signaling here rather than once per
		// Push/PushBurst also survives a Block stall mid-burst, after
		// which the consumer may have drained everything and gone back
		// to waiting.
		q.rcond.Signal()
	}
}

// PopBatch blocks until items are available or the queue is closed and
// drained; ok is false in the latter case. On success it returns the
// entire pending queue (up to MaxDrain items) in FIFO order; the caller
// owns the slice and should hand it back via Recycle when done.
func (q *Queue[T]) PopBatch() (batch []T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.depthLocked() == 0 && !q.closed {
		q.rcond.Wait()
	}
	if q.depthLocked() == 0 {
		return nil, false
	}
	if max := q.opts.MaxDrain; max > 0 && q.depthLocked() > max {
		// Split drain: the batch and the live remainder share one array,
		// but the 3-index slice caps the batch at max, so a recycled
		// batch can never append into the remainder's cells.
		batch = q.items[q.head : q.head+max : q.head+max]
		q.head += max
	} else {
		batch = q.items[q.head:]
		q.items = nil
		q.head = 0
		if q.track {
			if cap(q.cls) > MaxRecycledCap {
				q.cls = nil
			} else {
				q.cls = q.cls[:0]
			}
		}
	}
	q.grantCreditLocked()
	return batch, true
}

// grantCreditLocked wakes Block producers once the drain has reached the
// low-water mark.
func (q *Queue[T]) grantCreditLocked() {
	if q.refill && q.depthLocked() <= q.opts.LowWater {
		q.refill = false
		q.wcond.Broadcast()
	}
}

// MaxRecycledCap caps the backing array Recycle retains: a transient load
// spike must not pin its high-water batch allocation for the queue's
// lifetime.
const MaxRecycledCap = 1 << 16

// Recycle keeps a drained batch's backing array for future pushes, so the
// consumer's steady state allocates nothing. Kept arrays are cleared
// first, dropping item references (closures, notification payloads) for
// the GC; discarded arrays go to the GC whole and skip the clearing.
func (q *Queue[T]) Recycle(batch []T) {
	if cap(batch) == 0 || cap(batch) > MaxRecycledCap {
		return
	}
	q.mu.Lock()
	keep := q.spare == nil || cap(batch) > cap(q.spare)
	q.mu.Unlock()
	if !keep {
		return
	}
	var zero T
	for i := range batch {
		batch[i] = zero
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.spare == nil || cap(batch) > cap(q.spare) {
		q.spare = batch[:0]
	}
}

// Close stops accepting items: pending pushes and stalled Block producers
// fail with ErrClosed; PopBatch drains the remainder then reports done.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.rcond.Broadcast()
	q.wcond.Broadcast()
}

// Len returns the number of queued items (diagnostics only).
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.depthLocked()
}

// Stats returns a snapshot of the queue's flow-control counters.
func (q *Queue[T]) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return Stats{
		Capacity:        q.opts.Capacity,
		Policy:          q.opts.Policy,
		Depth:           q.depthLocked(),
		HighWater:       q.highWater,
		Pushed:          q.pushed,
		CreditStalls:    q.creditStalls,
		DroppedOldest:   q.droppedOldest,
		ShedNewest:      q.shedNewest,
		ControlOverflow: q.ctrlOverflow,
	}
}
