package flow

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// item is the test payload: a producer id and a per-producer sequence
// number, with an explicit admission class.
type item struct {
	producer int
	seq      int
	class    Class
}

func classify(v item) Class { return v.class }

// drainAll pops every queued item without blocking on an empty queue.
func drainAll(t *testing.T, q *Queue[item]) []item {
	t.Helper()
	var out []item
	for q.Len() > 0 {
		batch, ok := q.PopBatch()
		if !ok {
			break
		}
		out = append(out, batch...)
		q.Recycle(batch)
	}
	return out
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueue[item](Options{}, classify)
	for i := 0; i < 100; i++ {
		if err := q.Push(item{seq: i}); err != nil {
			t.Fatal(err)
		}
	}
	got := drainAll(t, q)
	if len(got) != 100 {
		t.Fatalf("drained %d items, want 100", len(got))
	}
	for i, v := range got {
		if v.seq != i {
			t.Fatalf("item %d has seq %d, want %d", i, v.seq, i)
		}
	}
	s := q.Stats()
	if s.Pushed != 100 || s.HighWater != 100 || s.Depth != 0 {
		t.Errorf("stats = %+v, want pushed=100 highwater=100 depth=0", s)
	}
}

func TestQueuePushBurstFIFO(t *testing.T) {
	q := NewQueue[item](Options{}, classify)
	if err := q.PushBurst(50, func(i int) item { return item{seq: i} }); err != nil {
		t.Fatal(err)
	}
	got := drainAll(t, q)
	for i, v := range got {
		if v.seq != i {
			t.Fatalf("item %d has seq %d, want %d", i, v.seq, i)
		}
	}
}

func TestQueueMaxDrain(t *testing.T) {
	q := NewQueue[item](Options{MaxDrain: 3}, classify)
	for i := 0; i < 8; i++ {
		_ = q.Push(item{seq: i})
	}
	batch, ok := q.PopBatch()
	if !ok || len(batch) != 3 {
		t.Fatalf("first drain = %d items (ok=%v), want 3", len(batch), ok)
	}
	// A recycled split batch must not be able to append into the live
	// remainder (3-index slice).
	if cap(batch) != 3 {
		t.Errorf("split batch cap = %d, want 3", cap(batch))
	}
	rest := drainAll(t, q)
	if len(rest) != 5 {
		t.Fatalf("remainder = %d items, want 5", len(rest))
	}
	if rest[0].seq != 3 || rest[4].seq != 7 {
		t.Errorf("remainder out of order: %+v", rest)
	}
}

func TestQueueShedNewest(t *testing.T) {
	q := NewQueue[item](Options{Capacity: 3, Policy: ShedNewest}, classify)
	var shed int
	for i := 0; i < 6; i++ {
		if err := q.Push(item{seq: i}); err == ErrShed {
			shed++
		}
	}
	if shed != 3 {
		t.Fatalf("shed %d pushes, want 3", shed)
	}
	got := drainAll(t, q)
	if len(got) != 3 {
		t.Fatalf("kept %d items, want 3", len(got))
	}
	for i, v := range got {
		if v.seq != i { // tail drop keeps the oldest
			t.Errorf("item %d has seq %d, want %d", i, v.seq, i)
		}
	}
	s := q.Stats()
	if s.ShedNewest != 3 || s.DroppedOldest != 0 || s.HighWater != 3 {
		t.Errorf("stats = %+v, want shed=3 dropped=0 highwater=3", s)
	}
}

func TestQueueDropOldest(t *testing.T) {
	q := NewQueue[item](Options{Capacity: 3, Policy: DropOldest}, classify)
	for i := 0; i < 6; i++ {
		if err := q.Push(item{seq: i}); err != nil {
			t.Fatal(err)
		}
	}
	got := drainAll(t, q)
	if len(got) != 3 {
		t.Fatalf("kept %d items, want 3", len(got))
	}
	for i, v := range got {
		if v.seq != i+3 { // head drop keeps the freshest
			t.Errorf("item %d has seq %d, want %d", i, v.seq, i+3)
		}
	}
	if s := q.Stats(); s.DroppedOldest != 3 || s.HighWater != 3 {
		t.Errorf("stats = %+v, want droppedOldest=3 highwater=3", s)
	}
}

// TestQueueDropOldestSkipsControl fills a queue so that control items sit
// at the head: eviction must hop over them and drop the oldest *data*
// item, preserving overall FIFO order of the survivors.
func TestQueueDropOldestSkipsControl(t *testing.T) {
	q := NewQueue[item](Options{Capacity: 4, Policy: DropOldest}, classify)
	_ = q.Push(item{seq: 0, class: Control})
	_ = q.Push(item{seq: 1, class: Control})
	_ = q.Push(item{seq: 2})
	_ = q.Push(item{seq: 3})
	_ = q.Push(item{seq: 4}) // evicts seq 2, not the control head
	got := drainAll(t, q)
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("kept %d items, want %d (%+v)", len(got), len(want), got)
	}
	for i, v := range got {
		if v.seq != want[i] {
			t.Errorf("item %d has seq %d, want %d", i, v.seq, want[i])
		}
	}
	if got[0].class != Control || got[1].class != Control {
		t.Error("control items were evicted")
	}
}

// TestQueueDropOldestAllControl: with nothing evictable the newcomer is
// admitted over capacity rather than lost.
func TestQueueDropOldestAllControl(t *testing.T) {
	q := NewQueue[item](Options{Capacity: 2, Policy: DropOldest}, classify)
	_ = q.Push(item{seq: 0, class: Control})
	_ = q.Push(item{seq: 1, class: Control})
	if err := q.Push(item{seq: 2}); err != nil {
		t.Fatal(err)
	}
	if got := drainAll(t, q); len(got) != 3 {
		t.Fatalf("kept %d items, want 3", len(got))
	}
}

func TestQueueControlNeverShed(t *testing.T) {
	q := NewQueue[item](Options{Capacity: 2, Policy: ShedNewest}, classify)
	_ = q.Push(item{seq: 0})
	_ = q.Push(item{seq: 1})
	if err := q.Push(item{seq: 2, class: Control}); err != nil {
		t.Fatalf("control push over capacity failed: %v", err)
	}
	got := drainAll(t, q)
	if len(got) != 3 || got[2].class != Control {
		t.Fatalf("control item missing: %+v", got)
	}
	if s := q.Stats(); s.ControlOverflow != 1 || s.HighWater != 3 {
		t.Errorf("stats = %+v, want controlOverflow=1 highwater=3", s)
	}
}

// TestQueueControlNeverBlocks: a control push into a full Block queue
// must complete immediately (exec closures and routing updates cannot
// afford to wait behind notification credit).
func TestQueueControlNeverBlocks(t *testing.T) {
	q := NewQueue[item](Options{Capacity: 1, Policy: Block}, classify)
	_ = q.Push(item{seq: 0})
	done := make(chan struct{})
	go func() {
		_ = q.Push(item{seq: 1, class: Control})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("control push blocked on a full queue")
	}
}

// TestQueueBlockWatermark checks the credit cycle: a full queue stalls the
// producer, and the stall resolves only after the consumer drains to the
// low-water mark. Everything arrives, in order, with depth bounded.
func TestQueueBlockWatermark(t *testing.T) {
	const capacity, total = 4, 100
	q := NewQueue[item](Options{Capacity: capacity, Policy: Block, LowWater: 2}, classify)
	go func() {
		for i := 0; i < total; i++ {
			if err := q.Push(item{seq: i}); err != nil {
				return
			}
		}
		q.Close()
	}()
	var got []item
	for {
		batch, ok := q.PopBatch()
		if !ok {
			break
		}
		got = append(got, batch...)
		q.Recycle(batch)
	}
	if len(got) != total {
		t.Fatalf("received %d items, want %d", len(got), total)
	}
	for i, v := range got {
		if v.seq != i {
			t.Fatalf("item %d has seq %d, want %d", i, v.seq, i)
		}
	}
	s := q.Stats()
	if s.HighWater > capacity {
		t.Errorf("high water %d exceeds capacity %d", s.HighWater, capacity)
	}
	if s.CreditStalls == 0 {
		t.Error("expected credit stalls with a slow consumer")
	}
	if s.DroppedOldest != 0 || s.ShedNewest != 0 {
		t.Errorf("Block policy lost items: %+v", s)
	}
}

// TestQueueBlockConcurrentProducers: several producers through a small
// Block window; per-producer FIFO must survive the stalls and every item
// must arrive exactly once.
func TestQueueBlockConcurrentProducers(t *testing.T) {
	const producers, each = 4, 200
	q := NewQueue[item](Options{Capacity: 8, Policy: Block}, classify)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := q.Push(item{producer: p, seq: i}); err != nil {
					t.Errorf("producer %d: %v", p, err)
					return
				}
			}
		}(p)
	}
	go func() {
		wg.Wait()
		q.Close()
	}()
	next := make([]int, producers)
	total := 0
	for {
		batch, ok := q.PopBatch()
		if !ok {
			break
		}
		for _, v := range batch {
			if v.seq != next[v.producer] {
				t.Fatalf("producer %d: got seq %d, want %d", v.producer, v.seq, next[v.producer])
			}
			next[v.producer]++
			total++
		}
		q.Recycle(batch)
	}
	if total != producers*each {
		t.Fatalf("received %d items, want %d", total, producers*each)
	}
	if s := q.Stats(); s.HighWater > 8 {
		t.Errorf("high water %d exceeds capacity 8", s.HighWater)
	}
}

func TestQueueCloseUnblocksProducer(t *testing.T) {
	q := NewQueue[item](Options{Capacity: 1, Policy: Block}, classify)
	_ = q.Push(item{seq: 0})
	errCh := make(chan error, 1)
	go func() { errCh <- q.Push(item{seq: 1}) }()
	time.Sleep(10 * time.Millisecond) // let the producer reach the stall
	q.Close()
	select {
	case err := <-errCh:
		if err != ErrClosed {
			t.Errorf("stalled push returned %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not unblock the stalled producer")
	}
}

func TestQueueCloseDrains(t *testing.T) {
	q := NewQueue[item](Options{}, classify)
	_ = q.Push(item{seq: 0})
	_ = q.Push(item{seq: 1})
	q.Close()
	if err := q.Push(item{seq: 2}); err != ErrClosed {
		t.Errorf("push after close = %v, want ErrClosed", err)
	}
	batch, ok := q.PopBatch()
	if !ok || len(batch) != 2 {
		t.Fatalf("drain after close = %d items (ok=%v), want 2", len(batch), ok)
	}
	if _, ok := q.PopBatch(); ok {
		t.Error("drained queue still reports items after close")
	}
}

func TestQueueRecycleReuse(t *testing.T) {
	q := NewQueue[item](Options{}, classify)
	for i := 0; i < 16; i++ {
		_ = q.Push(item{seq: i})
	}
	batch, _ := q.PopBatch()
	c := cap(batch)
	q.Recycle(batch)
	for _, v := range batch[:cap(batch)][:len(batch)] {
		if v != (item{}) {
			t.Fatal("recycle left stale items in the kept array")
		}
	}
	_ = q.Push(item{seq: 99})
	batch2, _ := q.PopBatch()
	if cap(batch2) != c {
		t.Errorf("recycled array not reused: cap %d, want %d", cap(batch2), c)
	}
}

func TestQueueRecycleCap(t *testing.T) {
	q := NewQueue[item](Options{}, classify)
	big := make([]item, MaxRecycledCap+1)
	q.Recycle(big)
	_ = q.Push(item{seq: 0})
	batch, _ := q.PopBatch()
	if cap(batch) > MaxRecycledCap {
		t.Errorf("oversized array was retained (cap %d)", cap(batch))
	}
}

func TestParsePolicy(t *testing.T) {
	for _, p := range []Policy{Block, DropOldest, ShedNewest} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if got, err := ParsePolicy(" Drop-Oldest "); err != nil || got != DropOldest {
		t.Errorf("ParsePolicy is not case/space tolerant: %v, %v", got, err)
	}
	_, err := ParsePolicy("bogus")
	if err == nil {
		t.Fatal("bogus policy accepted")
	}
	for _, name := range PolicyNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q should list %q", err, name)
		}
	}
}

// TestDropOldestSustainedEviction runs a DropOldest queue far past the
// compaction threshold with the consumer absent: a long eviction run must
// keep FIFO order, keep early control alive, and leave exactly the last
// data items — exercising compactLocked, which stops the backing array
// from growing linearly when evictions advance head without any pops.
func TestDropOldestSustainedEviction(t *testing.T) {
	q := NewQueue[item](Options{Capacity: 4, Policy: DropOldest}, classify)
	if err := q.Push(item{seq: -1, class: Control}); err != nil {
		t.Fatal(err)
	}
	const n = 10_000
	for i := 0; i < n; i++ {
		if err := q.Push(item{seq: i}); err != nil {
			t.Fatal(err)
		}
	}
	got := drainAll(t, q)
	want := []item{{seq: -1, class: Control}, {seq: n - 3}, {seq: n - 2}, {seq: n - 1}}
	if len(got) != len(want) {
		t.Fatalf("drained %d items %v, want %v", len(got), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("item %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if s := q.Stats(); s.DroppedOldest != n-3 {
		t.Fatalf("DroppedOldest = %d, want %d", s.DroppedOldest, n-3)
	}
}

// TestQueueLosslessStallsUnderDropPolicies: lossless items must never be
// dropped or shed — under the drop policies they stall the producer like
// Block credit until the consumer drains, and every item arrives.
func TestQueueLosslessStallsUnderDropPolicies(t *testing.T) {
	for _, policy := range []Policy{DropOldest, ShedNewest} {
		q := NewQueue[item](Options{Capacity: 2, Policy: policy, LowWater: 1}, classify)
		const total = 20
		pushErr := make(chan error, 1)
		go func() {
			for i := 0; i < total; i++ {
				if err := q.Push(item{seq: i, class: Lossless}); err != nil {
					pushErr <- err
					return
				}
			}
			q.Close()
		}()
		var got []item
		for {
			batch, ok := q.PopBatch()
			if !ok {
				break
			}
			got = append(got, batch...)
			q.Recycle(batch)
			time.Sleep(time.Millisecond) // keep the producer stalling
		}
		select {
		case err := <-pushErr:
			t.Fatalf("%v: lossless push failed: %v", policy, err)
		default:
		}
		if len(got) != total {
			t.Fatalf("%v: received %d items, want %d", policy, len(got), total)
		}
		for i, v := range got {
			if v.seq != i {
				t.Fatalf("%v: item %d has seq %d, want %d", policy, i, v.seq, i)
			}
		}
		s := q.Stats()
		if s.DroppedOldest != 0 || s.ShedNewest != 0 {
			t.Errorf("%v: lossless items were lost: %+v", policy, s)
		}
		if s.CreditStalls == 0 {
			t.Errorf("%v: expected credit stalls from the full queue", policy)
		}
		if s.HighWater > 2 {
			t.Errorf("%v: high water %d exceeds capacity 2", policy, s.HighWater)
		}
	}
}

// TestQueueDropOldestSkipsLossless: eviction must hop over a lossless
// head and drop the oldest *data* item.
func TestQueueDropOldestSkipsLossless(t *testing.T) {
	q := NewQueue[item](Options{Capacity: 3, Policy: DropOldest}, classify)
	_ = q.Push(item{seq: 0, class: Lossless})
	_ = q.Push(item{seq: 1})
	_ = q.Push(item{seq: 2})
	_ = q.Push(item{seq: 3}) // evicts seq 1, not the lossless head
	got := drainAll(t, q)
	want := []int{0, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("kept %d items, want %d (%+v)", len(got), len(want), got)
	}
	for i, v := range got {
		if v.seq != want[i] {
			t.Errorf("item %d has seq %d, want %d", i, v.seq, want[i])
		}
	}
	if got[0].class != Lossless {
		t.Error("lossless item was evicted")
	}
}

// TestQueueOnEvict: the eviction hook must observe every DropOldest
// victim exactly once, in eviction (= FIFO) order, so owners can release
// per-item resources for items that never reach PopBatch.
func TestQueueOnEvict(t *testing.T) {
	q := NewQueue[item](Options{Capacity: 3, Policy: DropOldest}, classify)
	var evicted []item
	q.OnEvict(func(v item) { evicted = append(evicted, v) })
	for i := 0; i < 8; i++ {
		if err := q.Push(item{seq: i}); err != nil {
			t.Fatal(err)
		}
	}
	if len(evicted) != 5 {
		t.Fatalf("hook saw %d evictions, want 5", len(evicted))
	}
	for i, v := range evicted {
		if v.seq != i {
			t.Errorf("eviction %d has seq %d, want %d", i, v.seq, i)
		}
	}
	if s := q.Stats(); s.DroppedOldest != uint64(len(evicted)) {
		t.Errorf("DroppedOldest = %d, hook saw %d", s.DroppedOldest, len(evicted))
	}
	got := drainAll(t, q)
	for i, v := range got {
		if v.seq != i+5 {
			t.Errorf("survivor %d has seq %d, want %d", i, v.seq, i+5)
		}
	}
}
