package wire

import (
	"bytes"
	"testing"
	"time"
)

// FuzzWireRoundTrip feeds arbitrary frames to the wire decoder: it must
// never panic, and every frame that decodes must reach the canonical
// fixpoint — encode(decode(frame)) re-decodes to a message whose encoding
// is byte-identical. For publish frames the pass-through invariant is also
// checked: whenever Decode attaches the inbound frame as the cached
// encoding, those bytes must equal a fresh canonical encoding, since a
// transit broker forwards them verbatim.
func FuzzWireRoundTrip(f *testing.F) {
	seedMsgs := []Message{
		NewPublish(sampleNotif()),
		NewSubscribe(Subscription{Filter: sampleFilter(), Client: "C", ID: "s1", IsMobile: true}),
		NewSubscribe(Subscription{
			Filter: sampleFilter(), Client: "C", ID: "s2",
			LocDependent: true, LocAttr: "location", GraphName: "fig7",
			Loc: "a", Delta: time.Second, CumDelay: 170 * time.Millisecond,
			Steps: 2, NextMultiple: 3,
		}),
		NewUnsubscribe(Subscription{Filter: sampleFilter()}),
		NewAdvertise(Subscription{Filter: sampleFilter()}),
		NewFetch(Fetch{Client: "C", ID: "s", Filter: sampleFilter(), LastSeq: 42, Junction: "b4", Epoch: 2}),
		NewReplay(Replay{
			Client: "C", ID: "s", From: "b6", NextSeq: 200,
			Items: []SeqNotification{{Seq: 124, Notif: sampleNotif()}},
		}),
		NewLocUpdate(LocUpdate{Client: "C", ID: "s", OldLoc: "a", NewLoc: "b"}),
		NewDeliver(Deliver{Client: "C", ID: "s", Item: SeqNotification{Seq: 7, Notif: sampleNotif()}, Replayed: true}),
	}
	for _, m := range seedMsgs {
		frame, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		attached := m.Frame != nil
		m.Frame = nil
		e1, err := Encode(m)
		if err != nil {
			t.Fatalf("decoded message failed to encode: %v", err)
		}
		if attached && !bytes.Equal(e1, data) {
			// The pass-through soundness invariant: an attached frame is
			// forwarded verbatim by transit brokers, so it must be
			// byte-identical to the canonical re-encoding.
			t.Fatalf("Decode attached a frame that differs from its re-encoding:\n in  %x\n out %x", data, e1)
		}
		m2, err := Decode(e1)
		if err != nil {
			t.Fatalf("canonical encoding failed to decode: %v", err)
		}
		if m2.Type == TypePublish {
			// Canonical self-produced publish frames must always be
			// eligible for zero-copy pass-through.
			if m2.Frame == nil {
				t.Fatalf("canonical publish frame not attached for pass-through")
			}
		}
		m2.Frame = nil
		e2, err := Encode(m2)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(e1, e2) {
			t.Fatalf("encode/decode fixpoint violated:\n %x\n %x", e1, e2)
		}
	})
}
