package wire

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/filter"
	"repro/internal/message"
)

func sampleFilter() filter.Filter {
	return filter.MustNew(
		filter.EQ("service", message.String("parking")),
		filter.In("location", message.String("a"), message.String("b")),
		filter.LT("cost", message.Float(3)),
		filter.Range("spots", message.Int(1), message.Int(10)),
		filter.Prefix("street", "Rebeca"),
		filter.Exists("active"),
		filter.NE("kind", message.Bool(false)),
	)
}

func sampleNotif() message.Notification {
	return message.New(map[string]message.Value{
		"service":  message.String("parking"),
		"location": message.String("a"),
		"cost":     message.Float(2.5),
		"spots":    message.Int(3),
	})
}

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	frame, err := Encode(m)
	if err != nil {
		t.Fatalf("encode %s: %v", m, err)
	}
	got, err := Decode(frame)
	if err != nil {
		t.Fatalf("decode %s: %v", m, err)
	}
	return got
}

func TestCodecPublish(t *testing.T) {
	m := NewPublish(sampleNotif())
	got := roundTrip(t, m)
	if got.Type != TypePublish || !got.Notif.Equal(*m.Notif) {
		t.Errorf("publish round trip: %s vs %s", m, got)
	}
}

func TestCodecSubscriptionAllFlavors(t *testing.T) {
	subs := []Subscription{
		{Filter: sampleFilter()},
		{Filter: sampleFilter(), Client: "C", ID: "s1", IsMobile: true},
		{Filter: sampleFilter(), Client: "C", ID: "s1", Relocate: true, LastSeq: 123},
		{
			Filter: sampleFilter(), Client: "C", ID: "s2",
			LocDependent: true, LocAttr: "location", GraphName: "fig7",
			Loc: "a", Delta: time.Second, CumDelay: 170 * time.Millisecond,
			Steps: 2, NextMultiple: 3,
		},
	}
	for _, typ := range []Type{TypeSubscribe, TypeUnsubscribe, TypeAdvertise, TypeUnadvertise} {
		for _, s := range subs {
			got := roundTrip(t, Message{Type: typ, Sub: &s})
			if got.Type != typ {
				t.Fatalf("type mismatch: %s vs %s", typ, got.Type)
			}
			g := got.Sub
			if !g.Filter.Equal(s.Filter) || g.Client != s.Client || g.ID != s.ID ||
				g.IsMobile != s.IsMobile || g.Relocate != s.Relocate || g.LastSeq != s.LastSeq ||
				g.LocDependent != s.LocDependent || g.LocAttr != s.LocAttr ||
				g.GraphName != s.GraphName || g.Loc != s.Loc || g.Delta != s.Delta ||
				g.CumDelay != s.CumDelay || g.Steps != s.Steps || g.NextMultiple != s.NextMultiple {
				t.Errorf("%s subscription round trip mismatch:\n%+v\n%+v", typ, s, *g)
			}
		}
	}
}

func TestCodecFetch(t *testing.T) {
	m := NewFetch(Fetch{
		Client: "C", ID: "s", Filter: sampleFilter(), LastSeq: 42, Junction: "b4",
	})
	got := roundTrip(t, m)
	if got.Fetch.Client != "C" || got.Fetch.LastSeq != 42 || got.Fetch.Junction != "b4" ||
		!got.Fetch.Filter.Equal(m.Fetch.Filter) {
		t.Errorf("fetch mismatch: %+v", got.Fetch)
	}
}

func TestCodecReplay(t *testing.T) {
	m := NewReplay(Replay{
		Client: "C", ID: "s", From: "b6", NextSeq: 200,
		Items: []SeqNotification{
			{Seq: 124, Notif: sampleNotif()},
			{Seq: 125, Notif: sampleNotif()},
		},
	})
	got := roundTrip(t, m)
	r := got.Replay
	if r.From != "b6" || r.NextSeq != 200 || len(r.Items) != 2 ||
		r.Items[0].Seq != 124 || !r.Items[1].Notif.Equal(sampleNotif()) {
		t.Errorf("replay mismatch: %+v", r)
	}
}

func TestCodecLocUpdate(t *testing.T) {
	m := NewLocUpdate(LocUpdate{Client: "C", ID: "s", OldLoc: "a", NewLoc: "b"})
	got := roundTrip(t, m)
	if *got.Loc != *m.Loc {
		t.Errorf("locupdate mismatch: %+v", got.Loc)
	}
}

func TestCodecDeliver(t *testing.T) {
	m := NewDeliver(Deliver{
		Client: "C", ID: "s",
		Item:     SeqNotification{Seq: 7, Notif: sampleNotif()},
		Replayed: true,
	})
	got := roundTrip(t, m)
	d := got.Deliver
	if d.Client != "C" || d.Item.Seq != 7 || !d.Replayed || !d.Item.Notif.Equal(sampleNotif()) {
		t.Errorf("deliver mismatch: %+v", d)
	}
}

func TestCodecErrors(t *testing.T) {
	if _, err := Encode(Message{Type: TypePublish}); err == nil {
		t.Error("publish without body should fail")
	}
	if _, err := Encode(Message{Type: TypeSubscribe}); err == nil {
		t.Error("subscribe without body should fail")
	}
	if _, err := Encode(Message{Type: Type(99)}); err == nil {
		t.Error("unknown type should fail")
	}
	if _, err := Decode(nil); err == nil {
		t.Error("empty frame should fail")
	}
	if _, err := Decode([]byte{99, 1}); err == nil {
		t.Error("wrong version should fail")
	}
	frame, err := Encode(NewPublish(sampleNotif()))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(frame); cut++ {
		if _, err := Decode(frame[:cut]); err == nil {
			t.Errorf("truncated frame at %d decoded without error", cut)
		}
	}
}

func TestCodecQuickPublish(t *testing.T) {
	f := func(k1, v1 string, i int64, b bool) bool {
		n := message.New(map[string]message.Value{
			"k" + k1: message.String(v1),
			"i":      message.Int(i),
			"b":      message.Bool(b),
		})
		frame, err := Encode(NewPublish(n))
		if err != nil {
			return false
		}
		got, err := Decode(frame)
		return err == nil && got.Notif.Equal(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHops(t *testing.T) {
	b := BrokerHop("b1")
	c := ClientHop("alice")
	if b.IsClient() || !c.IsClient() {
		t.Error("IsClient misbehaves")
	}
	if b.IsZero() || c.IsZero() || !(Hop{}).IsZero() {
		t.Error("IsZero misbehaves")
	}
	if b.String() != "broker:b1" || c.String() != "client:alice" || (Hop{}).String() != "<none>" {
		t.Errorf("hop strings: %q %q", b, c)
	}
}

func TestTypeClassification(t *testing.T) {
	admin := []Type{TypeSubscribe, TypeUnsubscribe, TypeAdvertise, TypeUnadvertise, TypeFetch, TypeLocUpdate}
	payload := []Type{TypePublish, TypeReplay, TypeDeliver}
	for _, typ := range admin {
		if !typ.IsAdmin() {
			t.Errorf("%s should be admin", typ)
		}
	}
	for _, typ := range payload {
		if typ.IsAdmin() {
			t.Errorf("%s should not be admin", typ)
		}
	}
}

func TestSubscriptionHelpers(t *testing.T) {
	s := Subscription{Client: "C", ID: "s"}
	if s.Key() != "C/s" {
		t.Errorf("Key = %q", s.Key())
	}
	if s.Mobile() {
		t.Error("plain sub should not be mobile")
	}
	if !(Subscription{IsMobile: true}).Mobile() || !(Subscription{Relocate: true}).Mobile() {
		t.Error("mobile flags not honored")
	}
}

func TestMessageStrings(t *testing.T) {
	msgs := []Message{
		NewPublish(sampleNotif()),
		NewSubscribe(Subscription{Filter: sampleFilter(), Client: "C", ID: "s", Relocate: true, LastSeq: 3}),
		NewFetch(Fetch{Client: "C", ID: "s", Junction: "b4"}),
		NewReplay(Replay{Client: "C", ID: "s"}),
		NewLocUpdate(LocUpdate{Client: "C", ID: "s", OldLoc: "a", NewLoc: "b"}),
		NewDeliver(Deliver{Client: "C", Item: SeqNotification{Seq: 1}}),
	}
	for _, m := range msgs {
		if m.String() == "" {
			t.Errorf("empty rendering for type %s", m.Type)
		}
	}
}

// TestPreencode checks the encode-once fan-out cache: the cached frame is
// byte-identical to a fresh encoding, decodes to the same message, and a
// second Preencode is a no-op.
func TestPreencode(t *testing.T) {
	m := NewPublish(sampleNotif())
	if m.Frame != nil {
		t.Fatal("fresh message carries a frame")
	}
	if err := Preencode(&m); err != nil {
		t.Fatal(err)
	}
	fresh, err := Encode(Message{Type: m.Type, Notif: m.Notif})
	if err != nil {
		t.Fatal(err)
	}
	if string(m.Frame) != string(fresh) {
		t.Error("cached frame differs from fresh encoding")
	}
	frame := m.Frame
	if err := Preencode(&m); err != nil {
		t.Fatal(err)
	}
	if &m.Frame[0] != &frame[0] {
		t.Error("second Preencode re-encoded")
	}
	dec, err := Decode(m.Frame)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Type != TypePublish || dec.Notif == nil {
		t.Errorf("decoded %v", dec)
	}
	// Canonical publish frames pass through: Decode attaches the inbound
	// bytes as the cached encoding, so forwarding needs no re-encode.
	if len(dec.Frame) == 0 || &dec.Frame[0] != &m.Frame[0] {
		t.Error("Decode did not attach the canonical inbound frame")
	}
}

// TestDecodeNonCanonicalPublish checks mixed-version interop: a publish
// frame whose attributes are not in sorted order (a foreign encoder)
// still decodes — normalized to the canonical representation — but is not
// eligible for zero-copy pass-through, so forwarding re-encodes it
// canonically.
func TestDecodeNonCanonicalPublish(t *testing.T) {
	canonical := message.New(map[string]message.Value{
		"a": message.Int(1),
		"b": message.String("x"),
	})
	// Hand-build a frame with the attributes in reverse (non-canonical)
	// order: version, type, count, then b before a.
	frame := []byte{1, byte(TypePublish), 2}
	frame = append(frame, 1, 'b')
	frame = message.AppendValue(frame, message.String("x"))
	frame = append(frame, 1, 'a')
	frame = message.AppendValue(frame, message.Int(1))

	m, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Notif.Equal(canonical) {
		t.Errorf("non-canonical frame decoded to %s, want %s", m.Notif, canonical)
	}
	if m.Frame != nil {
		t.Error("non-canonical frame must not be attached for pass-through")
	}
	enc, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Encode(NewPublish(canonical))
	if err != nil {
		t.Fatal(err)
	}
	if string(enc) != string(want) {
		t.Error("re-encoding a normalized notification is not canonical")
	}
}

// TestDecodePublishNonMinimalVarint: a frame using a padded (non-minimal)
// varint decodes to the same content but is not byte-identical to its
// re-encoding, so it must not be attached for pass-through.
func TestDecodePublishNonMinimalVarint(t *testing.T) {
	// version, type, count=1 encoded non-minimally as 0x81 0x00, then one
	// canonical attribute.
	frame := []byte{1, byte(TypePublish), 0x81, 0x00, 1, 'a'}
	frame = message.AppendValue(frame, message.Int(7))
	m, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := m.Notif.Get("a"); !ok || v.IntVal() != 7 {
		t.Fatalf("padded-varint frame decoded to %s", m.Notif)
	}
	if m.Frame != nil {
		t.Error("non-minimal varint frame attached for pass-through")
	}
}

// TestDecodePublishTrailingBytes: a decodable publish with trailing bytes
// after the body must not be attached for pass-through (the frame is not
// byte-identical to the re-encoding).
func TestDecodePublishTrailingBytes(t *testing.T) {
	frame, err := Encode(NewPublish(sampleNotif()))
	if err != nil {
		t.Fatal(err)
	}
	padded := append(append([]byte(nil), frame...), 0xff)
	m, err := Decode(padded)
	if err != nil {
		t.Fatal(err)
	}
	if m.Frame != nil {
		t.Error("frame with trailing bytes attached for pass-through")
	}
}
