// Package wire defines the protocol messages exchanged between brokers and
// clients of the pub/sub overlay, together with the identifiers used to
// name brokers, clients, and links. It sits below routing, transport, and
// broker so all three share one vocabulary.
//
// All communication related to the mobility protocols is expressed as wire
// messages flowing over the ordinary broker links ("pub/sub adherence",
// Section 4.1 — no out-of-band channels).
package wire

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/filter"
	"repro/internal/flow"
	"repro/internal/location"
	"repro/internal/message"
)

// BrokerID names a broker in the overlay.
type BrokerID string

// ClientID names a client (producer and/or consumer).
type ClientID string

// SubID names one subscription of one client; it stays stable while the
// client roams.
type SubID string

// Hop identifies, from the local broker's perspective, the neighbor a
// message came from or should be forwarded to: either another broker or a
// locally attached client.
type Hop struct {
	Broker BrokerID // set when the hop is a neighbor broker
	Client ClientID // set when the hop is a locally attached client
}

// BrokerHop builds a Hop naming a neighbor broker.
func BrokerHop(b BrokerID) Hop { return Hop{Broker: b} }

// ClientHop builds a Hop naming a locally attached client.
func ClientHop(c ClientID) Hop { return Hop{Client: c} }

// IsClient reports whether the hop is a locally attached client.
func (h Hop) IsClient() bool { return h.Client != "" }

// IsZero reports whether the hop is unset.
func (h Hop) IsZero() bool { return h.Broker == "" && h.Client == "" }

// String renders the hop for diagnostics.
func (h Hop) String() string {
	if h.IsClient() {
		return "client:" + string(h.Client)
	}
	if h.Broker != "" {
		return "broker:" + string(h.Broker)
	}
	return "<none>"
}

// Type enumerates wire message types.
type Type uint8

// Wire message types.
const (
	TypeInvalid Type = iota
	// TypeSubscribe registers interest in notifications matching a filter.
	// A relocation re-subscription (Section 4) sets Sub.Relocate and
	// Sub.LastSeq.
	TypeSubscribe
	// TypeUnsubscribe withdraws a previously issued subscription.
	TypeUnsubscribe
	// TypePublish conveys a notification from a producer.
	TypePublish
	// TypeAdvertise announces the notifications a producer will publish.
	TypeAdvertise
	// TypeUnadvertise withdraws an advertisement.
	TypeUnadvertise
	// TypeFetch is the relocation fetch request (C, F, seq, junction) sent
	// by a junction broker along the old delivery path (Section 4.1).
	TypeFetch
	// TypeReplay carries buffered notifications from the old border broker
	// (the "virtual counterpart") toward the client's new location.
	TypeReplay
	// TypeLocUpdate announces a logically mobile client's location change
	// for one location-dependent subscription (Section 5.1). It replaces
	// the administrative sub/unsub pair for the changed locations.
	TypeLocUpdate
	// TypeDeliver is sent from a border broker to an attached client,
	// carrying a sequence-numbered notification.
	TypeDeliver

	// TypeCount is one past the highest assigned type. Not a wire value;
	// it sizes per-type counter arrays so they track the constant set.
	TypeCount
)

var typeNames = map[Type]string{
	TypeSubscribe:   "subscribe",
	TypeUnsubscribe: "unsubscribe",
	TypePublish:     "publish",
	TypeAdvertise:   "advertise",
	TypeUnadvertise: "unadvertise",
	TypeFetch:       "fetch",
	TypeReplay:      "replay",
	TypeLocUpdate:   "locupdate",
	TypeDeliver:     "deliver",
}

// String returns a human-readable name of the type.
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// IsAdmin reports whether the message type is administrative (routing
// maintenance) as opposed to payload (notifications). The distinction is
// what Figure 9 counts.
func (t Type) IsAdmin() bool {
	switch t {
	case TypeSubscribe, TypeUnsubscribe, TypeAdvertise, TypeUnadvertise,
		TypeFetch, TypeLocUpdate:
		return true
	default:
		return false
	}
}

// FlowClass assigns the message type its bounded-queue admission class
// (package flow). Publishes are Data — the only class an overloaded
// queue may shed; notification loss is tolerated because it is explicit
// and accounted. Deliveries are Lossless: shedding one would silently
// skip a sequence number at an attached client, so they are never
// dropped, but they do count against capacity and stall the sender on a
// full queue under every policy — a stalled client therefore pins a
// bounded number of frames at its link instead of growing it without
// limit. Everything else is Control: admitted even over capacity and
// never stalled, since shedding routing updates would desynchronize
// tables and blocking relocation traffic would break the Section 4
// handoff.
func (t Type) FlowClass() flow.Class {
	switch t {
	case TypePublish:
		return flow.Data
	case TypeDeliver:
		return flow.Lossless
	default:
		return flow.Control
	}
}

// Droppable reports whether a message of this type may be shed by an
// overloaded bounded queue — shorthand for FlowClass() == flow.Data.
func (t Type) Droppable() bool { return t == TypePublish }

// Subscription describes a (possibly mobile, possibly location-dependent)
// subscription as it propagates through the broker network.
type Subscription struct {
	// Filter is the content filter. For location-dependent subscriptions
	// it is the filter as widened for the *receiving* hop, i.e. already
	// instantiated with ploc(x, q).
	Filter filter.Filter

	// Client and ID identify the owning client subscription for mobile
	// subscriptions; aggregate (merged/covered) subscriptions leave them
	// empty.
	Client ClientID
	ID     SubID

	// IsMobile marks a relocatable subscription: it propagates per-client
	// through the broker network so every broker on its delivery path can
	// participate in the relocation protocol of Section 4.
	IsMobile bool

	// Presubscribe implements the outlook sketched in the paper's
	// conclusion: "pre-subscribe to information at brokers at possible
	// next locations". The subscription propagates to *every* broker (not
	// only toward advertisers), so whichever border broker the client
	// reattaches at is already a junction — the handoff needs no
	// subscription propagation phase at all.
	Presubscribe bool

	// Relocate marks a physical-mobility re-subscription issued after the
	// client attached to a new border broker; LastSeq is the last sequence
	// number the client received for this subscription at its old
	// location. RelocEpoch counts the client's relocations of this
	// subscription: brokers honor at most one fetch per epoch, which keeps
	// multi-junction races harmless while still allowing the client to
	// relocate again later.
	Relocate   bool
	LastSeq    uint64
	RelocEpoch uint64

	// Location-dependent subscription state (Section 5). LocAttr names the
	// notification attribute holding the event location; GraphName selects
	// the shared movement graph; Loc is the client's current location;
	// Delta is the client's expected dwell time at one location; CumDelay
	// and Steps carry the adaptivity recursion state (Section 5.3) as the
	// subscription travels hop by hop; NextMultiple is the next multiple
	// of Delta that CumDelay has not yet exceeded.
	LocDependent bool
	LocAttr      string
	GraphName    string
	Loc          location.Location
	Delta        time.Duration
	CumDelay     time.Duration
	Steps        int
	NextMultiple int
}

// Clone returns a deep-enough copy (Filter values are immutable).
func (s Subscription) Clone() Subscription { return s }

// Mobile reports whether the subscription participates in the physical
// mobility protocol (either declared mobile or currently relocating).
func (s Subscription) Mobile() bool { return s.IsMobile || s.Relocate }

// Key identifies the client subscription across brokers.
func (s Subscription) Key() string {
	return string(s.Client) + "/" + string(s.ID)
}

// Fetch is the relocation fetch request of Section 4.1: (C, F, seq, B)
// traveling along the old delivery path toward the old border broker,
// flipping per-client routing entries to point back toward the junction as
// it goes.
type Fetch struct {
	Client   ClientID
	ID       SubID
	Filter   filter.Filter
	LastSeq  uint64
	Junction BrokerID
	// Epoch is the relocation epoch the fetch belongs to (see
	// Subscription.RelocEpoch).
	Epoch uint64
}

// SeqNotification is a notification annotated with the per-(client,
// subscription) sequence number its border broker assigned on delivery or
// buffering.
type SeqNotification struct {
	Seq   uint64
	Notif message.Notification
}

// Replay carries the buffered notifications of the virtual counterpart
// from the old border broker toward the client's new location. NextSeq is
// the sequence number the new border broker should continue numbering
// from.
type Replay struct {
	Client  ClientID
	ID      SubID
	From    BrokerID
	Items   []SeqNotification
	NextSeq uint64
}

// LocUpdate announces a location change x → y of a logically mobile
// client for one subscription. Each broker on the path applies the ploc
// delta for its own widening step and forwards the update upstream.
type LocUpdate struct {
	Client ClientID
	ID     SubID
	OldLoc location.Location
	NewLoc location.Location
}

// Deliver carries a sequence-numbered notification from a border broker to
// an attached client.
type Deliver struct {
	Client ClientID
	ID     SubID
	Item   SeqNotification
	// Replayed marks notifications that arrived via the relocation replay
	// rather than the live delivery path (useful for tests and metrics).
	Replayed bool
}

// Message is the envelope traveling over links. Exactly one payload field
// is set, selected by Type.
type Message struct {
	Type    Type
	Sub     *Subscription
	Notif   *message.Notification
	Fetch   *Fetch
	Replay  *Replay
	Loc     *LocUpdate
	Deliver *Deliver

	// Frame is the cached wire encoding of the message: populated by
	// Preencode so a fan-out serializes once and every frame-based
	// transport (TCP) reuses the same bytes, and by Decode for canonical
	// publish frames so a transit broker forwards the inbound bytes
	// without re-encoding (the canonical notification representation
	// makes the received frame byte-identical to its re-encoding). It is
	// advisory: in-process links ignore it. It must only be attached to
	// an encoding byte-identical to Encode of this message — a stale or
	// foreign cache would desynchronize peers.
	Frame []byte
}

// NewPublish wraps a notification.
func NewPublish(n message.Notification) Message {
	return Message{Type: TypePublish, Notif: &n}
}

// NewSubscribe wraps a subscription.
func NewSubscribe(s Subscription) Message {
	return Message{Type: TypeSubscribe, Sub: &s}
}

// NewUnsubscribe wraps a subscription withdrawal.
func NewUnsubscribe(s Subscription) Message {
	return Message{Type: TypeUnsubscribe, Sub: &s}
}

// NewAdvertise wraps an advertisement (reusing the Subscription carrier
// for its filter).
func NewAdvertise(s Subscription) Message {
	return Message{Type: TypeAdvertise, Sub: &s}
}

// NewUnadvertise wraps an advertisement withdrawal.
func NewUnadvertise(s Subscription) Message {
	return Message{Type: TypeUnadvertise, Sub: &s}
}

// NewFetch wraps a fetch request.
func NewFetch(f Fetch) Message { return Message{Type: TypeFetch, Fetch: &f} }

// NewReplay wraps a replay batch.
func NewReplay(r Replay) Message { return Message{Type: TypeReplay, Replay: &r} }

// NewLocUpdate wraps a location update.
func NewLocUpdate(l LocUpdate) Message { return Message{Type: TypeLocUpdate, Loc: &l} }

// NewDeliver wraps a client delivery.
func NewDeliver(d Deliver) Message { return Message{Type: TypeDeliver, Deliver: &d} }

// String renders a compact diagnostic form.
func (m Message) String() string {
	var b strings.Builder
	b.WriteString(m.Type.String())
	switch m.Type {
	case TypePublish:
		if m.Notif != nil {
			fmt.Fprintf(&b, " %s", m.Notif.String())
		}
	case TypeSubscribe, TypeUnsubscribe, TypeAdvertise, TypeUnadvertise:
		if m.Sub != nil {
			fmt.Fprintf(&b, " %s", m.Sub.Filter.String())
			if m.Sub.Client != "" {
				fmt.Fprintf(&b, " client=%s/%s", m.Sub.Client, m.Sub.ID)
			}
			if m.Sub.Relocate {
				fmt.Fprintf(&b, " relocate lastSeq=%d", m.Sub.LastSeq)
			}
		}
	case TypeFetch:
		if m.Fetch != nil {
			fmt.Fprintf(&b, " client=%s/%s seq=%d junction=%s",
				m.Fetch.Client, m.Fetch.ID, m.Fetch.LastSeq, m.Fetch.Junction)
		}
	case TypeReplay:
		if m.Replay != nil {
			fmt.Fprintf(&b, " client=%s/%s items=%d", m.Replay.Client, m.Replay.ID, len(m.Replay.Items))
		}
	case TypeLocUpdate:
		if m.Loc != nil {
			fmt.Fprintf(&b, " client=%s/%s %s->%s", m.Loc.Client, m.Loc.ID, m.Loc.OldLoc, m.Loc.NewLoc)
		}
	case TypeDeliver:
		if m.Deliver != nil {
			fmt.Fprintf(&b, " client=%s seq=%d", m.Deliver.Client, m.Deliver.Item.Seq)
		}
	}
	return b.String()
}
