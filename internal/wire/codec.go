package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/filter"
	"repro/internal/location"
	"repro/internal/message"
)

// Binary codec for wire messages, used by the TCP transport. The in-process
// channel transport passes Message values directly and never touches this
// codec. Layout is length/tag-prefixed and versioned with a leading magic
// byte so that incompatible peers fail fast.

const codecVersion = 1

// ErrBadFrame is returned for malformed or incompatible frames.
var ErrBadFrame = errors.New("wire: bad frame")

type encoder struct{ buf []byte }

func (e *encoder) u8(v uint8)          { e.buf = append(e.buf, v) }
func (e *encoder) uv(v uint64)         { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *encoder) iv(v int64)          { e.buf = binary.AppendVarint(e.buf, v) }
func (e *encoder) str(s string)        { e.uv(uint64(len(s))); e.buf = append(e.buf, s...) }
func (e *encoder) val(v message.Value) { e.buf = message.AppendValue(e.buf, v) }
func (e *encoder) boolean(b bool) {
	if b {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

type decoder struct {
	buf []byte
	pos int
	err error
}

func (d *decoder) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrBadFrame, msg)
	}
}

func (d *decoder) u8() uint8 {
	if d.err != nil {
		return 0
	}
	if d.pos >= len(d.buf) {
		d.fail("truncated u8")
		return 0
	}
	v := d.buf[d.pos]
	d.pos++
	return v
}

func (d *decoder) uv() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		d.fail("truncated uvarint")
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) iv() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.pos:])
	if n <= 0 {
		d.fail("truncated varint")
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) str() string {
	n := d.uv()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.buf)-d.pos) < n {
		d.fail("truncated string")
		return ""
	}
	s := string(d.buf[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s
}

func (d *decoder) val() message.Value {
	if d.err != nil {
		return message.Value{}
	}
	v, n, err := message.DecodeValue(d.buf[d.pos:])
	if err != nil {
		d.fail("bad value: " + err.Error())
		return message.Value{}
	}
	d.pos += n
	return v
}

func (d *decoder) boolean() bool { return d.u8() != 0 }

func encodeFilter(e *encoder, f filter.Filter) {
	cs := f.Constraints()
	e.uv(uint64(len(cs)))
	for _, c := range cs {
		e.str(c.Attr)
		e.u8(uint8(c.Op))
		switch c.Op {
		case filter.OpIn:
			e.uv(uint64(len(c.Values)))
			for _, v := range c.Values {
				e.val(v)
			}
		case filter.OpRange:
			e.val(c.Lo)
			e.val(c.Hi)
		case filter.OpExists:
		default:
			e.val(c.Value)
		}
	}
}

func decodeFilter(d *decoder) filter.Filter {
	n := d.uv()
	if d.err != nil || n > uint64(len(d.buf)) {
		d.fail("bad constraint count")
		return filter.Filter{}
	}
	cs := make([]filter.Constraint, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		c := filter.Constraint{Attr: d.str(), Op: filter.Op(d.u8())}
		switch c.Op {
		case filter.OpIn:
			m := d.uv()
			if m > uint64(len(d.buf)) {
				d.fail("bad set size")
				return filter.Filter{}
			}
			for j := uint64(0); j < m && d.err == nil; j++ {
				c.Values = append(c.Values, d.val())
			}
		case filter.OpRange:
			c.Lo = d.val()
			c.Hi = d.val()
		case filter.OpExists:
		default:
			c.Value = d.val()
		}
		cs = append(cs, c)
	}
	if d.err != nil {
		return filter.Filter{}
	}
	f, err := filter.New(cs...)
	if err != nil {
		d.fail("invalid filter: " + err.Error())
		return filter.Filter{}
	}
	return f
}

func encodeSub(e *encoder, s *Subscription) {
	encodeFilter(e, s.Filter)
	e.str(string(s.Client))
	e.str(string(s.ID))
	e.boolean(s.IsMobile)
	e.boolean(s.Presubscribe)
	e.boolean(s.Relocate)
	e.uv(s.LastSeq)
	e.uv(s.RelocEpoch)
	e.boolean(s.LocDependent)
	if s.LocDependent {
		e.str(s.LocAttr)
		e.str(s.GraphName)
		e.str(string(s.Loc))
		e.iv(int64(s.Delta))
		e.iv(int64(s.CumDelay))
		e.uv(uint64(s.Steps))
		e.uv(uint64(s.NextMultiple))
	}
}

func decodeSub(d *decoder) *Subscription {
	s := &Subscription{
		Filter:       decodeFilter(d),
		Client:       ClientID(d.str()),
		ID:           SubID(d.str()),
		IsMobile:     d.boolean(),
		Presubscribe: d.boolean(),
		Relocate:     d.boolean(),
		LastSeq:      d.uv(),
	}
	s.RelocEpoch = d.uv()
	s.LocDependent = d.boolean()
	if s.LocDependent {
		s.LocAttr = d.str()
		s.GraphName = d.str()
		s.Loc = location.Location(d.str())
		s.Delta = time.Duration(d.iv())
		s.CumDelay = time.Duration(d.iv())
		s.Steps = int(d.uv())
		s.NextMultiple = int(d.uv())
	}
	return s
}

// Encode serializes a message into a self-contained frame (excluding any
// outer length prefix, which the transport adds).
func Encode(m Message) ([]byte, error) {
	e := &encoder{buf: make([]byte, 0, 128)}
	e.u8(codecVersion)
	e.u8(uint8(m.Type))
	switch m.Type {
	case TypePublish:
		if m.Notif == nil {
			return nil, fmt.Errorf("%w: publish without notification", ErrBadFrame)
		}
		e.buf = message.AppendNotification(e.buf, *m.Notif)
	case TypeSubscribe, TypeUnsubscribe, TypeAdvertise, TypeUnadvertise:
		if m.Sub == nil {
			return nil, fmt.Errorf("%w: %s without subscription", ErrBadFrame, m.Type)
		}
		encodeSub(e, m.Sub)
	case TypeFetch:
		if m.Fetch == nil {
			return nil, fmt.Errorf("%w: fetch without body", ErrBadFrame)
		}
		e.str(string(m.Fetch.Client))
		e.str(string(m.Fetch.ID))
		encodeFilter(e, m.Fetch.Filter)
		e.uv(m.Fetch.LastSeq)
		e.str(string(m.Fetch.Junction))
		e.uv(m.Fetch.Epoch)
	case TypeReplay:
		if m.Replay == nil {
			return nil, fmt.Errorf("%w: replay without body", ErrBadFrame)
		}
		e.str(string(m.Replay.Client))
		e.str(string(m.Replay.ID))
		e.str(string(m.Replay.From))
		e.uv(m.Replay.NextSeq)
		e.uv(uint64(len(m.Replay.Items)))
		for _, it := range m.Replay.Items {
			e.uv(it.Seq)
			e.buf = message.AppendNotification(e.buf, it.Notif)
		}
	case TypeLocUpdate:
		if m.Loc == nil {
			return nil, fmt.Errorf("%w: locupdate without body", ErrBadFrame)
		}
		e.str(string(m.Loc.Client))
		e.str(string(m.Loc.ID))
		e.str(string(m.Loc.OldLoc))
		e.str(string(m.Loc.NewLoc))
	case TypeDeliver:
		if m.Deliver == nil {
			return nil, fmt.Errorf("%w: deliver without body", ErrBadFrame)
		}
		e.str(string(m.Deliver.Client))
		e.str(string(m.Deliver.ID))
		e.uv(m.Deliver.Item.Seq)
		e.boolean(m.Deliver.Replayed)
		e.buf = message.AppendNotification(e.buf, m.Deliver.Item.Notif)
	default:
		return nil, fmt.Errorf("%w: unknown type %s", ErrBadFrame, m.Type)
	}
	return e.buf, nil
}

// Preencode serializes the message once and caches the frame in m.Frame,
// so transports that need bytes send the same encoding to every link of a
// fan-out instead of re-encoding per hop. A message that already carries a
// frame is left untouched.
func Preencode(m *Message) error {
	if m.Frame != nil {
		return nil
	}
	frame, err := Encode(*m)
	if err != nil {
		return err
	}
	m.Frame = frame
	return nil
}

// Decode parses a frame produced by Encode.
func Decode(frame []byte) (Message, error) {
	d := &decoder{buf: frame}
	if v := d.u8(); v != codecVersion {
		return Message{}, fmt.Errorf("%w: version %d (want %d)", ErrBadFrame, v, codecVersion)
	}
	m := Message{Type: Type(d.u8())}
	switch m.Type {
	case TypePublish:
		n, used, err := message.DecodeNotification(d.buf[d.pos:])
		if err != nil {
			return Message{}, fmt.Errorf("%w: %v", ErrBadFrame, err)
		}
		d.pos += used
		m.Notif = &n
	case TypeSubscribe, TypeUnsubscribe, TypeAdvertise, TypeUnadvertise:
		m.Sub = decodeSub(d)
	case TypeFetch:
		f := &Fetch{
			Client: ClientID(d.str()),
			ID:     SubID(d.str()),
			Filter: decodeFilter(d),
		}
		f.LastSeq = d.uv()
		f.Junction = BrokerID(d.str())
		f.Epoch = d.uv()
		m.Fetch = f
	case TypeReplay:
		r := &Replay{
			Client:  ClientID(d.str()),
			ID:      SubID(d.str()),
			From:    BrokerID(d.str()),
			NextSeq: d.uv(),
		}
		count := d.uv()
		if count > uint64(len(d.buf)) {
			return Message{}, fmt.Errorf("%w: bad replay count", ErrBadFrame)
		}
		for i := uint64(0); i < count && d.err == nil; i++ {
			seq := d.uv()
			n, used, err := message.DecodeNotification(d.buf[d.pos:])
			if err != nil {
				return Message{}, fmt.Errorf("%w: %v", ErrBadFrame, err)
			}
			d.pos += used
			r.Items = append(r.Items, SeqNotification{Seq: seq, Notif: n})
		}
		m.Replay = r
	case TypeLocUpdate:
		m.Loc = &LocUpdate{
			Client: ClientID(d.str()),
			ID:     SubID(d.str()),
			OldLoc: location.Location(d.str()),
			NewLoc: location.Location(d.str()),
		}
	case TypeDeliver:
		dv := &Deliver{
			Client: ClientID(d.str()),
			ID:     SubID(d.str()),
		}
		dv.Item.Seq = d.uv()
		dv.Replayed = d.boolean()
		n, used, err := message.DecodeNotification(d.buf[d.pos:])
		if err != nil {
			return Message{}, fmt.Errorf("%w: %v", ErrBadFrame, err)
		}
		d.pos += used
		dv.Item.Notif = n
		m.Deliver = dv
	default:
		return Message{}, fmt.Errorf("%w: unknown type %d", ErrBadFrame, m.Type)
	}
	if d.err != nil {
		return Message{}, d.err
	}
	return m, nil
}
