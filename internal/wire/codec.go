package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/filter"
	"repro/internal/location"
	"repro/internal/message"
)

// Binary codec for wire messages, used by the TCP transport. The in-process
// channel transport passes Message values directly and never touches this
// codec. Layout is length/tag-prefixed and versioned with a leading magic
// byte so that incompatible peers fail fast.

const codecVersion = 1

// ErrBadFrame is returned for malformed or incompatible frames.
var ErrBadFrame = errors.New("wire: bad frame")

// encodeCalls counts frame serializations (AppendEncode, which Encode and
// Preencode go through). It exists for the zero-copy observability story:
// tests and benchmarks assert that a transit broker forwards a decoded
// publish without a single new serialization.
var encodeCalls atomic.Uint64

// EncodeCalls returns the number of frame serializations performed by this
// process so far.
func EncodeCalls() uint64 { return encodeCalls.Load() }

// Encode scratch pool. Frames are encoded into recycled buffers instead of
// a fresh make([]byte, 0, 128) per frame; the TCP send path holds one
// buffer per link and returns it at flush. PutEncodeBuf drops oversized
// buffers the same way the broker mailbox's recycle policy drops
// spike-sized batch arrays, so a single huge replay cannot pin its
// high-water allocation in the pool forever.
const maxPooledEncodeBuf = 64 << 10

var encBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 256)
		return &b
	},
}

// GetEncodeBuf returns an empty scratch buffer for AppendEncode. The
// boxed form keeps the pool cycle allocation-free: callers hold the *[]byte
// (updating it after AppendEncode grows the slice) and hand the same box
// back to PutEncodeBuf.
func GetEncodeBuf() *[]byte {
	buf := encBufPool.Get().(*[]byte)
	*buf = (*buf)[:0]
	return buf
}

// PutEncodeBuf returns a scratch buffer to the pool. Oversized buffers are
// dropped (left to the GC) so the pool retains only steady-state sizes.
// The caller must not use the buffer afterwards.
func PutEncodeBuf(buf *[]byte) {
	if cap(*buf) == 0 || cap(*buf) > maxPooledEncodeBuf {
		return
	}
	*buf = (*buf)[:0]
	encBufPool.Put(buf)
}

type encoder struct{ buf []byte }

func (e *encoder) u8(v uint8)          { e.buf = append(e.buf, v) }
func (e *encoder) uv(v uint64)         { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *encoder) iv(v int64)          { e.buf = binary.AppendVarint(e.buf, v) }
func (e *encoder) str(s string)        { e.uv(uint64(len(s))); e.buf = append(e.buf, s...) }
func (e *encoder) val(v message.Value) { e.buf = message.AppendValue(e.buf, v) }
func (e *encoder) boolean(b bool) {
	if b {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

type decoder struct {
	buf []byte
	pos int
	err error
}

func (d *decoder) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrBadFrame, msg)
	}
}

func (d *decoder) u8() uint8 {
	if d.err != nil {
		return 0
	}
	if d.pos >= len(d.buf) {
		d.fail("truncated u8")
		return 0
	}
	v := d.buf[d.pos]
	d.pos++
	return v
}

func (d *decoder) uv() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		d.fail("truncated uvarint")
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) iv() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.pos:])
	if n <= 0 {
		d.fail("truncated varint")
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) str() string {
	n := d.uv()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.buf)-d.pos) < n {
		d.fail("truncated string")
		return ""
	}
	s := string(d.buf[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s
}

func (d *decoder) val() message.Value {
	if d.err != nil {
		return message.Value{}
	}
	v, n, err := message.DecodeValue(d.buf[d.pos:])
	if err != nil {
		d.fail("bad value: " + err.Error())
		return message.Value{}
	}
	d.pos += n
	return v
}

func (d *decoder) boolean() bool { return d.u8() != 0 }

func encodeFilter(e *encoder, f filter.Filter) {
	cs := f.Constraints()
	e.uv(uint64(len(cs)))
	for _, c := range cs {
		e.str(c.Attr)
		e.u8(uint8(c.Op))
		switch c.Op {
		case filter.OpIn:
			e.uv(uint64(len(c.Values)))
			for _, v := range c.Values {
				e.val(v)
			}
		case filter.OpRange:
			e.val(c.Lo)
			e.val(c.Hi)
		case filter.OpExists:
		default:
			e.val(c.Value)
		}
	}
}

func decodeFilter(d *decoder) filter.Filter {
	n := d.uv()
	if d.err != nil || n > uint64(len(d.buf)) {
		d.fail("bad constraint count")
		return filter.Filter{}
	}
	cs := make([]filter.Constraint, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		c := filter.Constraint{Attr: d.str(), Op: filter.Op(d.u8())}
		switch c.Op {
		case filter.OpIn:
			m := d.uv()
			if m > uint64(len(d.buf)) {
				d.fail("bad set size")
				return filter.Filter{}
			}
			for j := uint64(0); j < m && d.err == nil; j++ {
				c.Values = append(c.Values, d.val())
			}
		case filter.OpRange:
			c.Lo = d.val()
			c.Hi = d.val()
		case filter.OpExists:
		default:
			c.Value = d.val()
		}
		cs = append(cs, c)
	}
	if d.err != nil {
		return filter.Filter{}
	}
	f, err := filter.New(cs...)
	if err != nil {
		d.fail("invalid filter: " + err.Error())
		return filter.Filter{}
	}
	return f
}

func encodeSub(e *encoder, s *Subscription) {
	encodeFilter(e, s.Filter)
	e.str(string(s.Client))
	e.str(string(s.ID))
	e.boolean(s.IsMobile)
	e.boolean(s.Presubscribe)
	e.boolean(s.Relocate)
	e.uv(s.LastSeq)
	e.uv(s.RelocEpoch)
	e.boolean(s.LocDependent)
	if s.LocDependent {
		e.str(s.LocAttr)
		e.str(s.GraphName)
		e.str(string(s.Loc))
		e.iv(int64(s.Delta))
		e.iv(int64(s.CumDelay))
		e.uv(uint64(s.Steps))
		e.uv(uint64(s.NextMultiple))
	}
}

func decodeSub(d *decoder) *Subscription {
	f := decodeFilter(d)
	if d.err != nil {
		// Bail out before constructing a garbage Subscription: every
		// remaining field read would return zero values anyway, and the
		// caller discards the message on d.err.
		return nil
	}
	s := &Subscription{
		Filter:       f,
		Client:       ClientID(d.str()),
		ID:           SubID(d.str()),
		IsMobile:     d.boolean(),
		Presubscribe: d.boolean(),
		Relocate:     d.boolean(),
		LastSeq:      d.uv(),
	}
	s.RelocEpoch = d.uv()
	s.LocDependent = d.boolean()
	if s.LocDependent {
		s.LocAttr = d.str()
		s.GraphName = d.str()
		s.Loc = location.Location(d.str())
		s.Delta = time.Duration(d.iv())
		s.CumDelay = time.Duration(d.iv())
		s.Steps = int(d.uv())
		s.NextMultiple = int(d.uv())
	}
	return s
}

// Encode serializes a message into a self-contained frame (excluding any
// outer length prefix, which the transport adds). The returned slice is
// freshly allocated at exact size and owned by the caller; the encoding
// itself runs in a pooled scratch buffer. Callers that write-and-discard
// frames should prefer AppendEncode with a recycled buffer.
func Encode(m Message) ([]byte, error) {
	scratch := GetEncodeBuf()
	frame, err := AppendEncode(*scratch, m)
	if err != nil {
		PutEncodeBuf(scratch)
		return nil, err
	}
	*scratch = frame[:0] // keep the possibly grown array for the pool
	out := make([]byte, len(frame))
	copy(out, frame)
	PutEncodeBuf(scratch)
	return out, nil
}

// AppendEncode appends m's frame encoding to buf and returns the extended
// slice. It is the allocation-conscious form of Encode: the TCP send path
// reuses one buffer per link across messages.
func AppendEncode(buf []byte, m Message) ([]byte, error) {
	encodeCalls.Add(1)
	e := &encoder{buf: buf}
	e.u8(codecVersion)
	e.u8(uint8(m.Type))
	switch m.Type {
	case TypePublish:
		if m.Notif == nil {
			return nil, fmt.Errorf("%w: publish without notification", ErrBadFrame)
		}
		e.buf = message.AppendNotification(e.buf, *m.Notif)
	case TypeSubscribe, TypeUnsubscribe, TypeAdvertise, TypeUnadvertise:
		if m.Sub == nil {
			return nil, fmt.Errorf("%w: %s without subscription", ErrBadFrame, m.Type)
		}
		encodeSub(e, m.Sub)
	case TypeFetch:
		if m.Fetch == nil {
			return nil, fmt.Errorf("%w: fetch without body", ErrBadFrame)
		}
		e.str(string(m.Fetch.Client))
		e.str(string(m.Fetch.ID))
		encodeFilter(e, m.Fetch.Filter)
		e.uv(m.Fetch.LastSeq)
		e.str(string(m.Fetch.Junction))
		e.uv(m.Fetch.Epoch)
	case TypeReplay:
		if m.Replay == nil {
			return nil, fmt.Errorf("%w: replay without body", ErrBadFrame)
		}
		e.str(string(m.Replay.Client))
		e.str(string(m.Replay.ID))
		e.str(string(m.Replay.From))
		e.uv(m.Replay.NextSeq)
		e.uv(uint64(len(m.Replay.Items)))
		for _, it := range m.Replay.Items {
			e.uv(it.Seq)
			e.buf = message.AppendNotification(e.buf, it.Notif)
		}
	case TypeLocUpdate:
		if m.Loc == nil {
			return nil, fmt.Errorf("%w: locupdate without body", ErrBadFrame)
		}
		e.str(string(m.Loc.Client))
		e.str(string(m.Loc.ID))
		e.str(string(m.Loc.OldLoc))
		e.str(string(m.Loc.NewLoc))
	case TypeDeliver:
		if m.Deliver == nil {
			return nil, fmt.Errorf("%w: deliver without body", ErrBadFrame)
		}
		e.str(string(m.Deliver.Client))
		e.str(string(m.Deliver.ID))
		e.uv(m.Deliver.Item.Seq)
		e.boolean(m.Deliver.Replayed)
		e.buf = message.AppendNotification(e.buf, m.Deliver.Item.Notif)
	default:
		return nil, fmt.Errorf("%w: unknown type %s", ErrBadFrame, m.Type)
	}
	return e.buf, nil
}

// Preencode serializes the message once and caches the frame in m.Frame,
// so transports that need bytes send the same encoding to every link of a
// fan-out instead of re-encoding per hop. A message that already carries a
// frame is left untouched.
func Preencode(m *Message) error {
	if m.Frame != nil {
		return nil
	}
	frame, err := Encode(*m)
	if err != nil {
		return err
	}
	m.Frame = frame
	return nil
}

// Decode parses a frame produced by Encode.
//
// For publish frames whose notification body is in canonical attribute
// order (every frame this codec produces is), Decode attaches the inbound
// frame to Message.Frame: re-encoding the decoded message would reproduce
// those bytes exactly, so a broker that merely forwards the publish sends
// the received frame verbatim instead of serializing again. Callers must
// therefore treat the frame buffer as owned by the returned message and
// not reuse it.
func Decode(frame []byte) (Message, error) {
	d := &decoder{buf: frame}
	if v := d.u8(); v != codecVersion {
		return Message{}, fmt.Errorf("%w: version %d (want %d)", ErrBadFrame, v, codecVersion)
	}
	m := Message{Type: Type(d.u8())}
	switch m.Type {
	case TypePublish:
		n, used, canonical, err := message.DecodeNotificationCanonical(d.buf[d.pos:])
		if err != nil {
			return Message{}, fmt.Errorf("%w: %v", ErrBadFrame, err)
		}
		d.pos += used
		m.Notif = &n
		if canonical && d.pos == len(frame) {
			// Byte-identical to the re-encoding (canonical body, no
			// trailing garbage): the inbound frame doubles as the cached
			// outbound encoding.
			m.Frame = frame
		}
	case TypeSubscribe, TypeUnsubscribe, TypeAdvertise, TypeUnadvertise:
		m.Sub = decodeSub(d)
	case TypeFetch:
		f := &Fetch{
			Client: ClientID(d.str()),
			ID:     SubID(d.str()),
			Filter: decodeFilter(d),
		}
		f.LastSeq = d.uv()
		f.Junction = BrokerID(d.str())
		f.Epoch = d.uv()
		m.Fetch = f
	case TypeReplay:
		r := &Replay{
			Client:  ClientID(d.str()),
			ID:      SubID(d.str()),
			From:    BrokerID(d.str()),
			NextSeq: d.uv(),
		}
		count := d.uv()
		if count > uint64(len(d.buf)) {
			return Message{}, fmt.Errorf("%w: bad replay count", ErrBadFrame)
		}
		// Preallocate from the decoded count, clamped against the
		// remaining bytes (every item takes at least one byte), instead of
		// growing by append.
		capItems := int(count)
		if remaining := len(d.buf) - d.pos; capItems > remaining {
			capItems = remaining
		}
		if capItems > 0 {
			r.Items = make([]SeqNotification, 0, capItems)
		}
		for i := uint64(0); i < count && d.err == nil; i++ {
			seq := d.uv()
			n, used, err := message.DecodeNotification(d.buf[d.pos:])
			if err != nil {
				return Message{}, fmt.Errorf("%w: %v", ErrBadFrame, err)
			}
			d.pos += used
			r.Items = append(r.Items, SeqNotification{Seq: seq, Notif: n})
		}
		m.Replay = r
	case TypeLocUpdate:
		m.Loc = &LocUpdate{
			Client: ClientID(d.str()),
			ID:     SubID(d.str()),
			OldLoc: location.Location(d.str()),
			NewLoc: location.Location(d.str()),
		}
	case TypeDeliver:
		dv := &Deliver{
			Client: ClientID(d.str()),
			ID:     SubID(d.str()),
		}
		dv.Item.Seq = d.uv()
		dv.Replayed = d.boolean()
		n, used, err := message.DecodeNotification(d.buf[d.pos:])
		if err != nil {
			return Message{}, fmt.Errorf("%w: %v", ErrBadFrame, err)
		}
		d.pos += used
		dv.Item.Notif = n
		m.Deliver = dv
	default:
		return Message{}, fmt.Errorf("%w: unknown type %d", ErrBadFrame, m.Type)
	}
	if d.err != nil {
		return Message{}, d.err
	}
	return m, nil
}
