//go:build !race

package wire

import (
	"testing"

	"repro/internal/message"
)

// TestDecodePublishAllocBudget enforces the decode-path allocation budget:
// after the interner has seen the names and hot values once, decoding a
// publish costs exactly the attribute slice and the notification box — no
// map, no per-name string copies. (Excluded under -race, which adds
// bookkeeping allocations.)
func TestDecodePublishAllocBudget(t *testing.T) {
	frame, err := Encode(NewPublish(message.New(map[string]message.Value{
		"service":     message.String("hvac"),
		"temperature": message.Float(21.5),
		"room":        message.String("r4c2"),
		"floor":       message.Int(4),
	})))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(frame); err != nil { // warm the interner
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := Decode(frame); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Errorf("Decode of a publish allocates %.1f times per frame, budget is 2", allocs)
	}
}
