package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/filter"
	"repro/internal/location"
	"repro/internal/message"
	"repro/internal/wire"
)

// TestRelocationMultipleProducers reproduces the right-hand side of
// Figure 5: several producers publish into the old delivery tree; after
// the move, everything converges onto the new path exactly once.
func TestRelocationMultipleProducers(t *testing.T) {
	// Topology:  p1 - b5
	//                   \
	//   b1 - b2 - b3 - b4 - b6 (consumer old)    p2 at b2, p3 at b6's side b7
	net := NewNetwork()
	for _, id := range []wire.BrokerID{"b1", "b2", "b3", "b4", "b5", "b6", "b7"} {
		net.MustAddBroker(id)
	}
	for _, e := range [][2]wire.BrokerID{
		{"b1", "b2"}, {"b2", "b3"}, {"b3", "b4"}, {"b4", "b6"}, {"b4", "b5"}, {"b6", "b7"},
	} {
		net.MustConnect(e[0], e[1], 0)
	}
	t.Cleanup(net.Close)

	var got collector
	consumer, err := net.NewClient("C", "b6", got.handle)
	if err != nil {
		t.Fatal(err)
	}
	f := filter.MustParse(`kind = "tick"`)
	producers := make([]*Client, 3)
	for i, at := range []wire.BrokerID{"b5", "b2", "b7"} {
		p, err := net.NewClient(wire.ClientID(fmt.Sprintf("P%d", i)), at, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Advertise("adv", f); err != nil {
			t.Fatal(err)
		}
		producers[i] = p
	}
	net.Settle()
	if err := consumer.Subscribe(SubSpec{ID: "s", Filter: f, Mobile: true}); err != nil {
		t.Fatal(err)
	}
	net.Settle()

	pubRound := func(round int64) {
		t.Helper()
		for i, p := range producers {
			err := p.Publish(message.New(map[string]message.Value{
				"kind": message.String("tick"),
				"src":  message.Int(int64(i)),
				"rnd":  message.Int(round),
			}))
			if err != nil {
				t.Fatal(err)
			}
		}
	}

	pubRound(1)
	net.Settle()
	if got.len() != 3 {
		t.Fatalf("phase 1: %d deliveries, want 3", got.len())
	}

	if err := consumer.Detach(); err != nil {
		t.Fatal(err)
	}
	pubRound(2)
	net.Settle()

	if err := consumer.MoveTo("b1"); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	pubRound(3)
	net.Settle()

	evs := got.snapshot()
	if len(evs) != 9 {
		t.Fatalf("total deliveries = %d, want 9 (3 rounds x 3 producers)", len(evs))
	}
	// Exactly once, gapless.
	for i, e := range evs {
		if e.Seq != uint64(i+1) {
			t.Fatalf("seq[%d] = %d: %v", i, e.Seq, evs)
		}
	}
	// Every (src, round) pair appears exactly once.
	seen := make(map[string]int)
	for _, e := range evs {
		src, _ := e.Notification.Get("src")
		rnd, _ := e.Notification.Get("rnd")
		seen[fmt.Sprintf("%d/%d", src.IntVal(), rnd.IntVal())]++
	}
	for k, c := range seen {
		if c != 1 {
			t.Errorf("notification %s delivered %d times", k, c)
		}
	}
}

// TestRepeatedRelocations roams the consumer across several brokers in
// sequence, with traffic during every disconnected phase.
func TestRepeatedRelocations(t *testing.T) {
	net, ids := newChain(t, 5)
	var got collector
	consumer, err := net.NewClient("C", ids[0], got.handle)
	if err != nil {
		t.Fatal(err)
	}
	producer, err := net.NewClient("P", ids[2], nil)
	if err != nil {
		t.Fatal(err)
	}
	f := filter.MustParse(`kind = "x"`)
	if err := producer.Advertise("adv", f); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	if err := consumer.Subscribe(SubSpec{ID: "s", Filter: f, Mobile: true}); err != nil {
		t.Fatal(err)
	}
	net.Settle()

	var published int64
	pub := func(k int) {
		t.Helper()
		for i := 0; i < k; i++ {
			published++
			err := producer.Publish(message.New(map[string]message.Value{
				"kind": message.String("x"),
				"n":    message.Int(published),
			}))
			if err != nil {
				t.Fatal(err)
			}
		}
	}

	pub(2)
	net.Settle()
	for hop := 1; hop < 5; hop++ {
		if err := consumer.Detach(); err != nil {
			t.Fatal(err)
		}
		pub(3)
		net.Settle()
		if err := consumer.MoveTo(ids[hop]); err != nil {
			t.Fatal(err)
		}
		net.Settle()
		pub(1)
		net.Settle()
	}

	evs := got.snapshot()
	if int64(len(evs)) != published {
		t.Fatalf("delivered %d of %d published", len(evs), published)
	}
	for i, e := range evs {
		if e.Seq != uint64(i+1) {
			t.Fatalf("seq[%d] = %d", i, e.Seq)
		}
		n, _ := e.Notification.Get("n")
		if n.IntVal() != int64(i+1) {
			t.Fatalf("payload order violated at %d: %d", i, n.IntVal())
		}
	}
}

// TestEpochCompleteness verifies the Figure 4 QoS definition for logical
// mobility: dividing the notification stream into epochs at each location
// change, every notification matching the location of its epoch must be
// delivered — "as if flooding were used".
func TestEpochCompleteness(t *testing.T) {
	net, ids := newChain(t, 3, WithProcDelay(time.Hour)) // force max widening
	if err := net.RegisterGraph("fig7", location.FigureSeven()); err != nil {
		t.Fatal(err)
	}
	var got collector
	consumer, err := net.NewClient("C", ids[0], got.handle)
	if err != nil {
		t.Fatal(err)
	}
	producer, err := net.NewClient("P", ids[2], nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := producer.Advertise("adv", filter.MustParse(`svc = "s"`)); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	base := filter.MustNew(
		filter.EQ("svc", message.String("s")),
		filter.EQ("loc", message.String("$myloc")),
	)
	err = consumer.Subscribe(SubSpec{
		ID: "s", Filter: base,
		Loc: &LocSpec{Graph: "fig7", Attr: "loc", Start: "a", Delta: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Settle()

	// Walk the paper's itinerary a -> b -> d. In each epoch, publish one
	// notification per location; exactly the one matching the current
	// location must be delivered — every epoch, no blackout.
	itinerary := location.Itinerary{"a", "b", "d"}
	var want []string
	seq := 0
	for step, loc := range itinerary {
		if step > 0 {
			if err := consumer.SetLocation("s", loc); err != nil {
				t.Fatal(err)
			}
			net.Settle()
		}
		for _, l := range []location.Location{"a", "b", "c", "d"} {
			seq++
			err := producer.Publish(message.New(map[string]message.Value{
				"svc": message.String("s"),
				"loc": message.String(string(l)),
				"i":   message.Int(int64(seq)),
			}))
			if err != nil {
				t.Fatal(err)
			}
			if l == loc {
				want = append(want, string(l))
			}
		}
		net.Settle()
	}

	evs := got.snapshot()
	if len(evs) != len(want) {
		t.Fatalf("delivered %d, want %d (one per epoch)", len(evs), len(want))
	}
	for i, e := range evs {
		l, _ := e.Notification.Get("loc")
		if l.Str() != want[i] {
			t.Errorf("epoch %d delivered loc=%s, want %s", i, l.Str(), want[i])
		}
	}
}

// TestLocDepNoBlackoutUnderLatency is the paper's central logical-mobility
// claim: with ploc widening, a location change takes effect instantly even
// though links have real latency — notifications for the new location were
// already flowing. The baseline GlobalSubUnsub test (package baseline)
// shows the same scenario losing the event.
func TestLocDepNoBlackoutUnderLatency(t *testing.T) {
	const lat = 30 * time.Millisecond
	net := NewNetwork(WithLinkLatency(lat), WithProcDelay(50*time.Millisecond))
	for _, id := range []wire.BrokerID{"x", "y", "z"} {
		net.MustAddBroker(id)
	}
	net.MustConnect("x", "y", -1)
	net.MustConnect("y", "z", -1)
	t.Cleanup(net.Close)
	if err := net.RegisterGraph("fig7", location.FigureSeven()); err != nil {
		t.Fatal(err)
	}

	var got collector
	consumer, err := net.NewClient("C", "x", got.handle)
	if err != nil {
		t.Fatal(err)
	}
	producer, err := net.NewClient("P", "z", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := producer.Advertise("adv", filter.MustParse(`svc = "s"`)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(6 * lat)
	base := filter.MustNew(
		filter.EQ("svc", message.String("s")),
		filter.EQ("loc", message.String("$myloc")),
	)
	err = consumer.Subscribe(SubSpec{
		ID: "s", Filter: base,
		// Delta well below the per-hop delay: the schedule widens every
		// hop, so neighbors of the current location are always covered.
		Loc: &LocSpec{Graph: "fig7", Attr: "loc", Start: "a", Delta: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(8 * lat) // initial subscription propagates

	// Move a -> b and publish for b IMMEDIATELY. The LocUpdate is still
	// in flight, but the widened upstream filters already cover b, so the
	// event arrives — no blackout.
	if err := consumer.SetLocation("s", "b"); err != nil {
		t.Fatal(err)
	}
	if err := producer.Publish(message.New(map[string]message.Value{
		"svc": message.String("s"),
		"loc": message.String("b"),
	})); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "instant post-move delivery", func() bool { return got.len() == 1 })
}

// TestMoveToRejectsLocDep documents the paper's future-work boundary:
// physically roaming a location-dependent subscription is rejected.
func TestMoveToRejectsLocDep(t *testing.T) {
	net, ids := newChain(t, 2)
	if err := net.RegisterGraph("fig7", location.FigureSeven()); err != nil {
		t.Fatal(err)
	}
	c, err := net.NewClient("C", ids[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	err = c.Subscribe(SubSpec{
		ID:     "s",
		Filter: filter.MustParse(`loc = "$myloc"`),
		Loc:    &LocSpec{Graph: "fig7", Attr: "loc", Start: "a", Delta: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MoveTo(ids[1]); err != ErrLocDepMove {
		t.Errorf("MoveTo with locdep sub = %v, want ErrLocDepMove", err)
	}
}

// TestClientAPIErrors covers the client-facing error paths.
func TestClientAPIErrors(t *testing.T) {
	net, ids := newChain(t, 2)
	c, err := net.NewClient("C", ids[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.NewClient("X", "nope", nil); err == nil {
		t.Error("attach at unknown broker should fail")
	}
	f := filter.MustParse(`a = 1`)
	if err := c.Subscribe(SubSpec{ID: "s", Filter: f}); err != nil {
		t.Fatal(err)
	}
	if err := c.Subscribe(SubSpec{ID: "s", Filter: f}); err == nil {
		t.Error("duplicate SubID should fail")
	}
	if err := c.Unsubscribe("ghost"); err == nil {
		t.Error("unsubscribe unknown should fail")
	}
	if err := c.SetLocation("s", "a"); err == nil {
		t.Error("SetLocation on non-locdep sub should fail")
	}
	if _, err := c.Location("s"); err == nil {
		t.Error("Location on non-locdep sub should fail")
	}
	if c.LastSeq("ghost") != 0 {
		t.Error("LastSeq of unknown sub should be 0")
	}
	if c.At() != ids[0] {
		t.Errorf("At = %s", c.At())
	}
	if err := c.Detach(); err != nil {
		t.Fatal(err)
	}
	if c.At() != "" {
		t.Error("At after detach should be empty")
	}
	if err := c.Detach(); err != ErrDetached {
		t.Errorf("double detach = %v", err)
	}
	if err := c.Publish(message.New(nil)); err != ErrDetached {
		t.Errorf("publish while detached = %v", err)
	}
	if err := c.Subscribe(SubSpec{ID: "s2", Filter: f}); err != ErrDetached {
		t.Errorf("subscribe while detached = %v", err)
	}
	if err := c.Advertise("a", f); err != ErrDetached {
		t.Errorf("advertise while detached = %v", err)
	}
	// Unsubscribe of a known sub while detached reports detachment.
	if err := c.Unsubscribe("s"); err != ErrDetached {
		t.Errorf("unsubscribe while detached = %v", err)
	}
}

// TestNetworkTopologyInvariants checks the acyclicity guard and setup
// errors.
func TestNetworkTopologyInvariants(t *testing.T) {
	net := NewNetwork()
	t.Cleanup(net.Close)
	net.MustAddBroker("a")
	net.MustAddBroker("b")
	net.MustAddBroker("c")
	if _, err := net.AddBroker("a"); err == nil {
		t.Error("duplicate broker should fail")
	}
	if err := net.Connect("a", "zz", 0); err == nil {
		t.Error("connect to unknown should fail")
	}
	if err := net.Connect("zz", "a", 0); err == nil {
		t.Error("connect from unknown should fail")
	}
	net.MustConnect("a", "b", 0)
	net.MustConnect("b", "c", 0)
	if err := net.Connect("a", "c", 0); err == nil {
		t.Error("closing a cycle must be rejected (acyclic overlay)")
	}
	if _, err := net.Broker("nope"); err == nil {
		t.Error("unknown broker lookup should fail")
	}
}

// TestNetworkCounters checks that link traffic is categorized and counted.
func TestNetworkCounters(t *testing.T) {
	net, ids := newChain(t, 3)
	var got collector
	consumer, err := net.NewClient("C", ids[0], got.handle)
	if err != nil {
		t.Fatal(err)
	}
	producer, err := net.NewClient("P", ids[2], nil)
	if err != nil {
		t.Fatal(err)
	}
	f := filter.MustParse(`a = 1`)
	if err := consumer.Subscribe(SubSpec{ID: "s", Filter: f}); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	if err := producer.Publish(message.New(map[string]message.Value{"a": message.Int(1)})); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	c := net.Counter()
	if c.Total() == 0 {
		t.Fatal("no messages counted")
	}
	if c.Get(2) == 0 { // CategoryAdmin: the subscription crossing links
		t.Error("no admin messages counted")
	}
	if c.Get(1) != 2 { // CategoryNotification: publish crossed 2 links
		t.Errorf("notification count = %d, want 2", c.Get(1))
	}
}

// TestCloseIsIdempotentAndOpsFail verifies behavior after Close.
func TestCloseIsIdempotentAndOpsFail(t *testing.T) {
	net := NewNetwork()
	net.MustAddBroker("a")
	net.Close()
	net.Close()
	if _, err := net.AddBroker("b"); err != ErrClosed {
		t.Errorf("AddBroker after close = %v", err)
	}
	if err := net.Connect("a", "b", 0); err != ErrClosed {
		t.Errorf("Connect after close = %v", err)
	}
}
