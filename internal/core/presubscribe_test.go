package core

import (
	"testing"

	"repro/internal/filter"
	"repro/internal/message"
	"repro/internal/metrics"
	"repro/internal/wire"
)

// presubTopology builds a star-with-arms overlay where the producer sits
// far from both the consumer's old and new border broker, so that without
// pre-subscription the relocation subscription has several hops to travel.
func presubTopology(t *testing.T) (*Network, []wire.BrokerID) {
	t.Helper()
	net := NewNetwork()
	t.Cleanup(net.Close)
	// old - m1 - hub - m2 - new ;  producer hangs off hub.
	ids := []wire.BrokerID{"old", "m1", "hub", "m2", "new", "prod"}
	for _, id := range ids {
		net.MustAddBroker(id)
	}
	net.MustConnect("old", "m1", 0)
	net.MustConnect("m1", "hub", 0)
	net.MustConnect("hub", "m2", 0)
	net.MustConnect("m2", "new", 0)
	net.MustConnect("hub", "prod", 0)
	return net, ids
}

// runHandoff performs the same roam with and without pre-subscription and
// returns the exact event stream plus the admin traffic spent during the
// move phase.
func runHandoff(t *testing.T, presub bool) (events []Event, moveAdmin uint64) {
	t.Helper()
	net, _ := presubTopology(t)
	var got collector
	consumer, err := net.NewClient("C", "old", got.handle)
	if err != nil {
		t.Fatal(err)
	}
	producer, err := net.NewClient("P", "prod", nil)
	if err != nil {
		t.Fatal(err)
	}
	f := filter.MustParse(`k = "v"`)
	if err := producer.Advertise("adv", f); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	if err := consumer.Subscribe(SubSpec{
		ID: "s", Filter: f, Mobile: true, Presubscribe: presub,
	}); err != nil {
		t.Fatal(err)
	}
	net.Settle()

	pub := func(n int64) {
		t.Helper()
		if err := producer.Publish(message.New(map[string]message.Value{
			"k": message.String("v"), "n": message.Int(n),
		})); err != nil {
			t.Fatal(err)
		}
	}
	pub(1)
	net.Settle()
	if err := consumer.Detach(); err != nil {
		t.Fatal(err)
	}
	pub(2)
	pub(3)
	net.Settle()

	before := net.Counter().Get(metrics.CategoryAdmin)
	if err := consumer.MoveTo("new"); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	moveAdmin = net.Counter().Get(metrics.CategoryAdmin) - before
	pub(4)
	net.Settle()
	return got.snapshot(), moveAdmin
}

// TestPresubscribeHandoff verifies that pre-subscription keeps the
// exactly-once guarantee while spending less subscription traffic at
// handoff time (the junction is the new border broker itself).
func TestPresubscribeHandoff(t *testing.T) {
	plain, plainAdmin := runHandoff(t, false)
	warm, warmAdmin := runHandoff(t, true)

	check := func(name string, evs []Event) {
		t.Helper()
		if len(evs) != 4 {
			t.Fatalf("%s: delivered %d of 4", name, len(evs))
		}
		for i, e := range evs {
			if e.Seq != uint64(i+1) {
				t.Fatalf("%s: seq[%d] = %d", name, i, e.Seq)
			}
		}
	}
	check("plain", plain)
	check("presubscribed", warm)

	// The warm handoff must not spend more admin traffic than the cold
	// one; on this topology it saves the relocation subscription's travel
	// toward the junction.
	if warmAdmin >= plainAdmin {
		t.Errorf("pre-subscription did not reduce handoff admin traffic: warm=%d cold=%d",
			warmAdmin, plainAdmin)
	}
}

// TestPresubscribePlantsEntriesEverywhere checks the propagation policy
// itself: with pre-subscription every broker holds the client entry, even
// off the consumer-producer paths.
func TestPresubscribePlantsEntriesEverywhere(t *testing.T) {
	net, ids := presubTopology(t)
	consumer, err := net.NewClient("C", "old", nil)
	if err != nil {
		t.Fatal(err)
	}
	producer, err := net.NewClient("P", "prod", nil)
	if err != nil {
		t.Fatal(err)
	}
	f := filter.MustParse(`k = "v"`)
	if err := producer.Advertise("adv", f); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	if err := consumer.Subscribe(SubSpec{ID: "s", Filter: f, Presubscribe: true}); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	for _, id := range ids {
		b, err := net.Broker(id)
		if err != nil {
			t.Fatal(err)
		}
		if subs, _ := b.TableSizes(); subs == 0 {
			t.Errorf("broker %s has no entry despite pre-subscription", id)
		}
	}
}
