package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/filter"
	"repro/internal/routing"
	"repro/internal/wire"
)

// TestRepairEquivalenceProperty is the repair-path soundness property of
// the elastic federation layer: crashing a transit broker and repairing
// the overlay (RemoveLink retraction + AddLink reseed through the
// Forwarder.Recompute oracle and the advertisement / per-client
// re-offers) must leave every surviving broker with exactly the routing
// table it would have if the post-repair topology had been built from
// scratch — for all five routing strategies, under random trees and
// random subscription placement. A trailing functional check publishes
// through both networks and compares per-consumer delivery sets, so
// over-subscription that tables alone would miss still fails the test.
func TestRepairEquivalenceProperty(t *testing.T) {
	for _, strat := range routing.Strategies() {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 4; seed++ {
				runRepairEquivalence(t, strat, seed)
			}
		})
	}
}

// repairFixture describes one randomized scenario: a tree, client
// placements, and the victim broker.
type repairFixture struct {
	brokers []wire.BrokerID
	parent  map[wire.BrokerID]wire.BrokerID // tree edges (child -> parent)
	victim  wire.BrokerID

	producerAt wire.BrokerID
	advertise  bool
	consumers  []repairConsumer
}

type repairConsumer struct {
	id     wire.ClientID
	at     wire.BrokerID
	sub    SubSpec
	events *collector
}

func buildRepairFixture(rng *rand.Rand, seed int64) *repairFixture {
	fx := &repairFixture{parent: make(map[wire.BrokerID]wire.BrokerID)}
	n := 6 + rng.Intn(4)
	for i := 0; i < n; i++ {
		id := wire.BrokerID(fmt.Sprintf("b%02d", i+1))
		fx.brokers = append(fx.brokers, id)
		if i > 0 {
			fx.parent[id] = fx.brokers[rng.Intn(i)]
		}
	}
	fx.victim = fx.brokers[rng.Intn(n)]
	fx.advertise = rng.Intn(2) == 0

	survivors := make([]wire.BrokerID, 0, n-1)
	for _, id := range fx.brokers {
		if id != fx.victim {
			survivors = append(survivors, id)
		}
	}
	pick := func() wire.BrokerID { return survivors[rng.Intn(len(survivors))] }
	fx.producerAt = pick()
	pool := []string{
		`type = "quote"`,
		`sym = "A"`,
		`sym = "B"`,
		`type = "quote" && sym = "A"`,
	}
	consumers := 2 + rng.Intn(3)
	for i := 0; i < consumers; i++ {
		fx.consumers = append(fx.consumers, repairConsumer{
			id: wire.ClientID(fmt.Sprintf("c%d", i+1)),
			at: pick(),
			sub: SubSpec{
				ID:     wire.SubID(fmt.Sprintf("s%d", i+1)),
				Filter: filter.MustParse(pool[rng.Intn(len(pool))]),
				Mobile: rng.Intn(2) == 0,
			},
			events: &collector{},
		})
	}
	_ = seed
	return fx
}

// populate attaches the fixture's clients and subscriptions to a network.
func (fx *repairFixture) populate(t *testing.T, net *Network) (producer *Client) {
	t.Helper()
	producer, err := net.NewClient("producer", fx.producerAt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fx.advertise {
		if err := producer.Advertise("adv", filter.MustParse(`type = "quote"`)); err != nil {
			t.Fatal(err)
		}
		net.Settle()
	}
	for i := range fx.consumers {
		c := &fx.consumers[i]
		cl, err := net.NewClient(c.id, c.at, c.events.handle)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Subscribe(c.sub); err != nil {
			t.Fatal(err)
		}
	}
	net.Settle()
	return producer
}

// tables snapshots every broker's subscription table as sorted strings.
func tables(net *Network, brokers []wire.BrokerID) map[wire.BrokerID][]string {
	out := make(map[wire.BrokerID][]string, len(brokers))
	for _, id := range brokers {
		b, err := net.Broker(id)
		if err != nil {
			continue
		}
		var rows []string
		for _, e := range b.SubEntries() {
			rows = append(rows, fmt.Sprintf("%s|%s|%s|%s", e.Filter.ID(), e.Hop, e.Client, e.SubID))
		}
		sort.Strings(rows)
		out[id] = rows
	}
	return out
}

func runRepairEquivalence(t *testing.T, strat routing.Strategy, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed*31 + 7))
	fx := buildRepairFixture(rng, seed)

	// Network A: full tree, then crash + repair.
	netA := NewNetwork(WithStrategy(strat))
	defer netA.Close()
	for _, id := range fx.brokers {
		netA.MustAddBroker(id)
	}
	for child, parent := range fx.parent {
		netA.MustConnect(child, parent, 0)
	}
	prodA := fx.populate(t, netA)
	if err := netA.FailNow(fx.victim); err != nil {
		t.Fatal(err)
	}
	netA.Settle()

	// The repaired topology, straight from the network's edge map.
	netA.mu.Lock()
	repaired := make(map[wire.BrokerID][]wire.BrokerID, len(netA.edges))
	for id, nbs := range netA.edges {
		repaired[id] = append([]wire.BrokerID(nil), nbs...)
	}
	netA.mu.Unlock()

	// Network B: the surviving topology built from scratch.
	netB := NewNetwork(WithStrategy(strat))
	defer netB.Close()
	survivors := make([]wire.BrokerID, 0, len(fx.brokers)-1)
	for _, id := range fx.brokers {
		if id != fx.victim {
			survivors = append(survivors, id)
			netB.MustAddBroker(id)
		}
	}
	type edge struct{ a, b wire.BrokerID }
	var edges []edge
	for a, nbs := range repaired {
		for _, b := range nbs {
			if a < b {
				edges = append(edges, edge{a, b})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})
	for _, e := range edges {
		netB.MustConnect(e.a, e.b, 0)
	}
	// Fresh collectors for network B so delivery sets can be compared.
	fxB := *fx
	fxB.consumers = append([]repairConsumer(nil), fx.consumers...)
	for i := range fxB.consumers {
		fxB.consumers[i].events = &collector{}
	}
	prodB := fxB.populate(t, netB)

	// Property 1: identical routing tables on every survivor.
	gotTables := tables(netA, survivors)
	wantTables := tables(netB, survivors)
	for _, id := range survivors {
		got, want := gotTables[id], wantTables[id]
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("strategy %s seed %d: table mismatch at %s after repair of %s\n repaired:     %v\n from-scratch: %v",
				strat, seed, id, fx.victim, got, want)
		}
	}

	// Property 2: identical delivery sets for fresh publishes.
	preA := make([]int, len(fx.consumers))
	for i := range fx.consumers {
		preA[i] = fx.consumers[i].events.len()
	}
	for _, sym := range []string{"A", "B", "C"} {
		if err := prodA.Publish(stockNotif(sym, 1)); err != nil {
			t.Fatal(err)
		}
		if err := prodB.Publish(stockNotif(sym, 1)); err != nil {
			t.Fatal(err)
		}
	}
	netA.Settle()
	netB.Settle()
	for i := range fx.consumers {
		var gotSyms, wantSyms []string
		for _, e := range fx.consumers[i].events.snapshot()[preA[i]:] {
			s, _ := e.Notification.Get("sym")
			gotSyms = append(gotSyms, s.String())
		}
		for _, e := range fxB.consumers[i].events.snapshot() {
			s, _ := e.Notification.Get("sym")
			wantSyms = append(wantSyms, s.String())
		}
		sort.Strings(gotSyms)
		sort.Strings(wantSyms)
		if fmt.Sprint(gotSyms) != fmt.Sprint(wantSyms) {
			t.Fatalf("strategy %s seed %d: delivery mismatch for %s\n repaired:     %v\n from-scratch: %v",
				strat, seed, fx.consumers[i].id, gotSyms, wantSyms)
		}
	}
}
