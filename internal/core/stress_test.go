package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/filter"
	"repro/internal/location"
	"repro/internal/message"
	"repro/internal/wire"
)

// TestTopologyBuilders checks the convenience constructors.
func TestTopologyBuilders(t *testing.T) {
	net := NewNetwork()
	t.Cleanup(net.Close)

	chain, err := net.BuildChain("c", 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 4 || chain[0] != "c1" || chain[3] != "c4" {
		t.Errorf("chain = %v", chain)
	}
	hub, leaves, err := net.BuildStar("s", 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hub != "s-hub" || len(leaves) != 3 {
		t.Errorf("star = %v, %v", hub, leaves)
	}
	tree, err := net.BuildBinaryTree("t", 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree) != 7 {
		t.Errorf("tree has %d brokers", len(tree))
	}
	if got := TreeLeaves(tree, 2); len(got) != 4 || got[0] != "t3" {
		t.Errorf("leaves = %v", got)
	}
	if _, err := net.BuildChain("c", 0, 0); err == nil {
		t.Error("empty chain should fail")
	}
	if _, err := net.BuildBinaryTree("t", -1, 0); err == nil {
		t.Error("negative depth should fail")
	}
	// Names collide with existing brokers: must fail cleanly.
	if _, err := net.BuildChain("c", 2, 0); err == nil {
		t.Error("duplicate chain should fail")
	}
}

// TestRandomizedRoamingExactlyOnce is a seeded stress test of the
// relocation protocol: a mobile consumer performs a random sequence of
// detach / publish / move cycles over a random tree; delivery must stay
// exactly-once, gapless, and in publish order throughout.
func TestRandomizedRoamingExactlyOnce(t *testing.T) {
	seeds := []int64{1, 7, 42, 1234}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			net := NewNetwork()
			t.Cleanup(net.Close)

			// Random tree over 8 brokers: parent of i is a random earlier
			// broker.
			ids := make([]wire.BrokerID, 8)
			for i := range ids {
				ids[i] = wire.BrokerID(fmt.Sprintf("b%d", i))
				net.MustAddBroker(ids[i])
				if i > 0 {
					net.MustConnect(ids[rng.Intn(i)], ids[i], 0)
				}
			}

			var got collector
			consumer, err := net.NewClient("C", ids[rng.Intn(len(ids))], got.handle)
			if err != nil {
				t.Fatal(err)
			}
			producer, err := net.NewClient("P", ids[rng.Intn(len(ids))], nil)
			if err != nil {
				t.Fatal(err)
			}
			f := filter.MustParse(`k = "v"`)
			if err := producer.Advertise("adv", f); err != nil {
				t.Fatal(err)
			}
			net.Settle()
			if err := consumer.Subscribe(SubSpec{ID: "s", Filter: f, Mobile: true}); err != nil {
				t.Fatal(err)
			}
			net.Settle()

			published := int64(0)
			pub := func(k int) {
				for i := 0; i < k; i++ {
					published++
					err := producer.Publish(message.New(map[string]message.Value{
						"k": message.String("v"),
						"n": message.Int(published),
					}))
					if err != nil {
						t.Fatal(err)
					}
				}
			}

			for round := 0; round < 12; round++ {
				pub(rng.Intn(4))
				net.Settle()
				if rng.Intn(2) == 0 {
					if err := consumer.Detach(); err != nil {
						t.Fatal(err)
					}
					pub(rng.Intn(5))
					net.Settle()
				}
				target := ids[rng.Intn(len(ids))]
				if consumer.At() == target {
					// MoveTo the same broker while attached is a detach +
					// reattach; exercise it occasionally via Detach first.
					if consumer.At() != "" {
						if err := consumer.Detach(); err != nil {
							t.Fatal(err)
						}
					}
				}
				if err := consumer.MoveTo(target); err != nil {
					t.Fatal(err)
				}
				net.Settle()
				pub(rng.Intn(3))
				net.Settle()
			}
			net.Settle()

			evs := got.snapshot()
			if int64(len(evs)) != published {
				t.Fatalf("delivered %d of %d published", len(evs), published)
			}
			for i, e := range evs {
				if e.Seq != uint64(i+1) {
					t.Fatalf("seq gap at %d: %d", i, e.Seq)
				}
				v, _ := e.Notification.Get("n")
				if v.IntVal() != int64(i+1) {
					t.Fatalf("order violated at %d: payload %d", i, v.IntVal())
				}
			}
		})
	}
}

// TestRandomizedLogicalMobility walks a random itinerary on a grid and
// checks per-epoch delivery correctness (every published notification for
// the consumer's settled location arrives; others don't).
func TestRandomizedLogicalMobility(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	net := NewNetwork(WithProcDelay(time.Hour)) // maximal widening
	t.Cleanup(net.Close)
	ids, err := net.BuildChain("b", 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	grid := location.Grid(4, 4)
	if err := net.RegisterGraph("grid", grid); err != nil {
		t.Fatal(err)
	}

	var got collector
	consumer, err := net.NewClient("C", ids[0], got.handle)
	if err != nil {
		t.Fatal(err)
	}
	producer, err := net.NewClient("P", ids[2], nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := producer.Advertise("adv", filter.MustParse(`svc = "s"`)); err != nil {
		t.Fatal(err)
	}
	net.Settle()

	start := location.GridName(0, 0)
	base := filter.MustNew(
		filter.EQ("svc", message.String("s")),
		filter.EQ("loc", message.String("$myloc")),
	)
	err = consumer.Subscribe(SubSpec{
		ID: "s", Filter: base,
		Loc: &LocSpec{Graph: "grid", Attr: "loc", Start: start, Delta: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Settle()

	itinerary := location.RandomWalk(grid, start, 10, rng.Intn)
	var want []location.Location
	cur := start
	seq := 0
	for step, loc := range itinerary {
		if step > 0 && loc != cur {
			if err := consumer.SetLocation("s", loc); err != nil {
				t.Fatal(err)
			}
			cur = loc
			net.Settle()
		}
		// Publish for the current cell and two random other cells.
		cells := []location.Location{cur}
		all := grid.Locations()
		for k := 0; k < 2; k++ {
			cells = append(cells, all[rng.Intn(len(all))])
		}
		for _, cell := range cells {
			seq++
			err := producer.Publish(message.New(map[string]message.Value{
				"svc": message.String("s"),
				"loc": message.String(string(cell)),
				"i":   message.Int(int64(seq)),
			}))
			if err != nil {
				t.Fatal(err)
			}
			if cell == cur {
				want = append(want, cell)
			}
		}
		net.Settle()
	}

	evs := got.snapshot()
	if len(evs) != len(want) {
		t.Fatalf("delivered %d, want %d", len(evs), len(want))
	}
	for i, e := range evs {
		l, _ := e.Notification.Get("loc")
		if location.Location(l.Str()) != want[i] {
			t.Fatalf("delivery %d for %s, want %s", i, l.Str(), want[i])
		}
	}
}

// TestDynamicFilterGeneralization exercises the "dynamic filters"
// generalization sketched in the paper's conclusion: a subscription that
// depends on a function of the client's local state rather than a
// geographic location. The location machinery is state-agnostic — here
// the "movement graph" is a budget ladder and the consumer subscribes to
// "sales I can still afford", adapting as its budget changes one band at
// a time.
func TestDynamicFilterGeneralization(t *testing.T) {
	net := NewNetwork(WithProcDelay(time.Hour))
	t.Cleanup(net.Close)
	ids, err := net.BuildChain("b", 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	// State graph: budget bands 0 … 4, adjacent bands reachable.
	bands := location.Line(5) // l0 … l4
	if err := net.RegisterGraph("budget", bands); err != nil {
		t.Fatal(err)
	}

	var got collector
	consumer, err := net.NewClient("shopper", ids[0], got.handle)
	if err != nil {
		t.Fatal(err)
	}
	producer, err := net.NewClient("shop", ids[2], nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := producer.Advertise("adv", filter.MustParse(`type = "sale"`)); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	base := filter.MustNew(
		filter.EQ("type", message.String("sale")),
		filter.EQ("band", message.String("$myloc")),
	)
	err = consumer.Subscribe(SubSpec{
		ID: "sales", Filter: base,
		Loc: &LocSpec{Graph: "budget", Attr: "band", Start: "l1", Delta: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Settle()

	sale := func(band string) {
		t.Helper()
		if err := producer.Publish(message.New(map[string]message.Value{
			"type": message.String("sale"),
			"band": message.String(band),
		})); err != nil {
			t.Fatal(err)
		}
	}
	sale("l1") // affordable now
	sale("l3") // out of reach
	net.Settle()
	if got.len() != 1 {
		t.Fatalf("band l1: %d deliveries", got.len())
	}
	// Payday: budget moves up one band; the filter follows instantly.
	if err := consumer.SetLocation("sales", "l2"); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	sale("l2")
	sale("l1")
	net.Settle()
	if got.len() != 2 {
		t.Fatalf("band l2: %d deliveries, want 2", got.len())
	}
	// Jumping two bands at once violates the state-change restriction.
	if err := consumer.SetLocation("sales", "l4"); err == nil {
		t.Fatal("two-band jump should be rejected")
	}
}
