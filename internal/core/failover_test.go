package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/filter"
	"repro/internal/message"
	"repro/internal/wire"
)

// quoteFilter matches the stockNotif test notifications.
func quoteFilter() filter.Filter {
	return filter.MustParse(`type = "quote"`)
}

// TestFailNowTransitBrokerPlainSubs kills the middle broker of a chain:
// the surviving ends must re-attach to each other and plain subscriptions
// must flow again across the repaired edge.
func TestFailNowTransitBrokerPlainSubs(t *testing.T) {
	net, ids := newChain(t, 5) // b1 - b2 - b3 - b4 - b5

	var got collector
	consumer, err := net.NewClient("consumer", ids[0], got.handle)
	if err != nil {
		t.Fatal(err)
	}
	producer, err := net.NewClient("producer", ids[4], nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := consumer.Subscribe(SubSpec{ID: "s1", Filter: quoteFilter()}); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	if err := producer.Publish(stockNotif("A", 1)); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	if got.len() != 1 {
		t.Fatalf("pre-failure delivery missing: %d events", got.len())
	}

	if err := net.FailNow(ids[2]); err != nil { // kill b3 (transit)
		t.Fatal(err)
	}
	net.Settle()

	if err := producer.Publish(stockNotif("B", 2)); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	events := got.snapshot()
	if len(events) != 2 {
		t.Fatalf("post-repair delivery missing: %d events (want 2)", len(events))
	}
	// Sequence numbering continues: the subscription never moved.
	if events[1].Seq != events[0].Seq+1 {
		t.Fatalf("sequence gap after repair: %d then %d", events[0].Seq, events[1].Seq)
	}
}

// TestFailNowOrphanedMobileClient kills the border broker of a mobile
// subscriber: the client must fail over to the repair parent and resume
// deliveries after the relocation timeout expires (the crashed broker
// cannot replay).
func TestFailNowOrphanedMobileClient(t *testing.T) {
	net, ids := newChain(t, 4, WithRelocTimeout(50*time.Millisecond))

	var got collector
	consumer, err := net.NewClient("consumer", ids[3], got.handle) // at b4
	if err != nil {
		t.Fatal(err)
	}
	producer, err := net.NewClient("producer", ids[0], nil) // at b1
	if err != nil {
		t.Fatal(err)
	}
	if err := consumer.Subscribe(SubSpec{ID: "m1", Filter: quoteFilter(), Mobile: true}); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	if err := producer.Publish(stockNotif("A", 1)); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	if got.len() != 1 {
		t.Fatalf("pre-failure delivery missing: %d events", got.len())
	}

	if err := net.FailNow(ids[3]); err != nil { // kill the consumer's home b4
		t.Fatal(err)
	}
	net.Settle()
	if at := consumer.At(); at != ids[2] {
		t.Fatalf("consumer failed over to %q, want %q", at, ids[2])
	}

	if err := producer.Publish(stockNotif("B", 2)); err != nil {
		t.Fatal(err)
	}
	// The re-subscription went through the relocation protocol; no replay
	// can arrive, so delivery resumes once RelocTimeout flushes.
	waitFor(t, "post-failover delivery", func() bool {
		net.Settle()
		return got.len() >= 2
	})
	events := got.snapshot()
	last := events[len(events)-1]
	if sym, _ := last.Notification.Get("sym"); sym != message.String("B") {
		t.Fatalf("unexpected post-failover notification: %v", last.Notification)
	}
	// No duplicate of A, and numbering continued past the pre-crash seq.
	if last.Seq <= events[0].Seq {
		t.Fatalf("sequence did not continue: %d then %d", events[0].Seq, last.Seq)
	}
}

// TestFailNowProducerSide kills the producer's border broker: the
// producer must fail over and its advertisement must re-announce so
// advertisement-gated subscriptions keep routing.
func TestFailNowProducerSide(t *testing.T) {
	net, ids := newChain(t, 4)

	var got collector
	consumer, err := net.NewClient("consumer", ids[0], got.handle)
	if err != nil {
		t.Fatal(err)
	}
	producer, err := net.NewClient("producer", ids[3], nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := producer.Advertise("a1", quoteFilter()); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	if err := consumer.Subscribe(SubSpec{ID: "s1", Filter: quoteFilter()}); err != nil {
		t.Fatal(err)
	}
	net.Settle()

	if err := net.FailNow(ids[3]); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	if at := producer.At(); at != ids[2] {
		t.Fatalf("producer failed over to %q, want %q", at, ids[2])
	}
	if err := producer.Publish(stockNotif("C", 3)); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	if got.len() != 1 {
		t.Fatalf("post-failover publish not delivered: %d events", got.len())
	}
}

// TestFailNowStarCenter kills the center of a star: all leaves must
// re-attach under the lowest-ID survivor and remain mutually reachable.
func TestFailNowStarCenter(t *testing.T) {
	net := NewNetwork()
	t.Cleanup(net.Close)
	center := wire.BrokerID("hub")
	net.MustAddBroker(center)
	leaves := []wire.BrokerID{"l1", "l2", "l3", "l4"}
	for _, l := range leaves {
		net.MustAddBroker(l)
		net.MustConnect(center, l, 0)
	}

	var got collector
	consumer, err := net.NewClient("consumer", "l1", got.handle)
	if err != nil {
		t.Fatal(err)
	}
	producer, err := net.NewClient("producer", "l4", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := consumer.Subscribe(SubSpec{ID: "s1", Filter: quoteFilter()}); err != nil {
		t.Fatal(err)
	}
	net.Settle()

	if err := net.FailNow(center); err != nil {
		t.Fatal(err)
	}
	net.Settle()

	if err := producer.Publish(stockNotif("D", 4)); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	if got.len() != 1 {
		t.Fatalf("star repair failed: %d events", got.len())
	}
}

// TestSelfHealingDetectsCrash exercises the full detector path: Kill
// silences the broker's heartbeats, the registry sweeper declares it
// failed, and the repair controller re-wires the overlay — no FailNow.
func TestSelfHealingDetectsCrash(t *testing.T) {
	var (
		mu     sync.Mutex
		events []RepairEvent
	)
	net, ids := newChain(t, 3,
		WithSelfHealing(10*time.Millisecond, 120*time.Millisecond),
		WithRepairObserver(func(e RepairEvent) {
			mu.Lock()
			events = append(events, e)
			mu.Unlock()
		}),
	)

	var got collector
	consumer, err := net.NewClient("consumer", ids[0], got.handle)
	if err != nil {
		t.Fatal(err)
	}
	producer, err := net.NewClient("producer", ids[2], nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := consumer.Subscribe(SubSpec{ID: "s1", Filter: quoteFilter()}); err != nil {
		t.Fatal(err)
	}
	net.Settle()

	if err := net.Kill(ids[1]); err != nil { // transit broker goes dark
		t.Fatal(err)
	}
	waitFor(t, "detector-driven repair", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(events) > 0
	})
	mu.Lock()
	ev := events[0]
	mu.Unlock()
	if ev.Dead != ids[1] {
		t.Fatalf("repair event for %q, want %q", ev.Dead, ids[1])
	}
	if ev.Parent != ids[0] {
		t.Fatalf("repair parent %q, want %q (lowest-ID survivor)", ev.Parent, ids[0])
	}
	if len(ev.Reattached) != 1 || ev.Reattached[0] != ids[2] {
		t.Fatalf("reattached %v, want [%s]", ev.Reattached, ids[2])
	}
	if ev.Err != nil {
		t.Fatalf("repair error: %v", ev.Err)
	}
	if ev.Done.Before(ev.Detected) {
		t.Fatal("repair Done precedes Detected")
	}

	net.Settle()
	if err := producer.Publish(stockNotif("E", 5)); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	if got.len() != 1 {
		t.Fatalf("post-detection delivery missing: %d events", got.len())
	}
}

// TestKillIsolatesWithoutSelfHealing documents Kill's contract on a plain
// network: the broker dies, nothing repairs, and client calls against it
// fail closed.
func TestKillIsolatesWithoutSelfHealing(t *testing.T) {
	net, ids := newChain(t, 2)
	client, err := net.NewClient("c", ids[1], nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Kill(ids[1]); err != nil {
		t.Fatal(err)
	}
	if err := client.Publish(stockNotif("X", 1)); err == nil {
		t.Fatal("publish to a killed broker succeeded")
	}
	if err := net.Kill("absent"); err == nil || !strings.Contains(err.Error(), "unknown broker") {
		t.Fatalf("want unknown-broker error, got %v", err)
	}
}

// TestFailNowLastBroker kills the only broker: its client is left
// detached and repair degrades gracefully.
func TestFailNowLastBroker(t *testing.T) {
	net, ids := newChain(t, 1)
	client, err := net.NewClient("c", ids[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.FailNow(ids[0]); err != nil {
		t.Fatal(err)
	}
	if at := client.At(); at != "" {
		t.Fatalf("client still attached to %q after total failure", at)
	}
	if err := client.Publish(stockNotif("X", 1)); err != ErrDetached {
		t.Fatalf("want ErrDetached, got %v", err)
	}
}
