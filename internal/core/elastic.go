package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/broker"
	"repro/internal/registry"
	"repro/internal/wire"
)

// This file is the elastic-federation layer of the in-process overlay:
// registry-backed membership with heartbeat failure detection, overlay-
// tree repair on broker death, and client failover. The repair path is
// deliberately thin — it only re-wires topology through the existing
// primitives (Broker.RemoveLink retracts the dead hop's routing state,
// Network.Connect / Broker.AddLink re-attach and reseed through the
// Forwarder.Recompute oracle plus the advertisement and per-client
// re-offers), so there is no second reseed code path to keep consistent.

// RepairEvent describes one completed overlay repair after a broker
// failure. Observers registered with WithRepairObserver receive it from
// the repair goroutine (or synchronously from FailNow).
type RepairEvent struct {
	// Dead is the failed broker.
	Dead wire.BrokerID
	// Parent is the surviving neighbor the dead broker's other subtrees
	// and orphaned clients were re-attached to; empty when the dead
	// broker had no surviving neighbors.
	Parent wire.BrokerID
	// Reattached lists the other former neighbors now linked to Parent.
	Reattached []wire.BrokerID
	// Clients lists the orphaned clients that failed over.
	Clients []wire.ClientID
	// Detected is when the failure reached the repair controller; Done is
	// when re-wiring and client failover completed (routing convergence
	// continues asynchronously as the reseed traffic propagates).
	Detected, Done time.Time
	// Err records the first re-wiring error, nil on a clean repair.
	Err error
}

// WithSelfHealing enables the elastic federation layer: every broker is
// registered with an in-process membership registry and heartbeats it at
// the given interval; a broker silent for longer than ttl is declared
// failed and the overlay repairs itself — survivors drop the dead links,
// the orphaned subtrees re-attach under a surviving parent, and orphaned
// clients fail over with their subscriptions replayed.
func WithSelfHealing(heartbeat, ttl time.Duration) NetworkOption {
	return func(c *networkConfig) {
		c.healHeartbeat = heartbeat
		c.healTTL = ttl
	}
}

// WithRepairObserver registers a callback for completed repairs (used by
// the blackout experiment to timestamp detection and reconvergence). The
// callback runs on the repair goroutine and must not call back into the
// Network.
func WithRepairObserver(fn func(RepairEvent)) NetworkOption {
	return func(c *networkConfig) { c.repairObserver = fn }
}

// WithRelocTimeout sets every broker's bound on waiting for a relocation
// replay (broker.Options.RelocTimeout): zero keeps the broker default,
// negative disables the bound. Failover from a crashed border broker
// relies on the timeout — the crashed broker's virtual counterpart cannot
// replay, so the timeout is what un-gates the failed-over subscriber's
// deliveries.
func WithRelocTimeout(d time.Duration) NetworkOption {
	return func(c *networkConfig) { c.relocTimeout = d }
}

// elasticState is the Network-side runtime of the self-healing mode.
type elasticState struct {
	reg      *registry.Memory
	interval time.Duration

	cancelWatch func()
	failures    chan wire.BrokerID
	stop        chan struct{}
	stopOnce    sync.Once
	ctrlDone    chan struct{}

	mu    sync.Mutex
	beats map[wire.BrokerID]chan struct{}
	wg    sync.WaitGroup
}

// startElastic wires the registry, the failure watcher, and the repair
// controller. Called from NewNetwork when self-healing is enabled.
func (n *Network) startElastic() {
	e := &elasticState{
		reg:      registry.NewMemory(registry.MemoryOptions{TTL: n.cfg.healTTL}),
		interval: n.cfg.healHeartbeat,
		failures: make(chan wire.BrokerID, 1024),
		stop:     make(chan struct{}),
		ctrlDone: make(chan struct{}),
		beats:    make(map[wire.BrokerID]chan struct{}),
	}
	// The watcher runs on the registry sweeper goroutine; it must not
	// repair inline (repair takes locks and seconds), so failures funnel
	// into the controller's queue.
	e.cancelWatch, _ = e.reg.Watch(func(ev registry.Event) {
		if ev.Kind != registry.Failed {
			return
		}
		select {
		case e.failures <- ev.Member.ID:
		case <-e.stop:
		}
	})
	go func() {
		defer close(e.ctrlDone)
		for {
			select {
			case <-e.stop:
				return
			case id := <-e.failures:
				n.repairBrokerFailure(id)
			}
		}
	}()
	n.elastic = e
}

// watchBroker registers a broker with the membership and starts its
// heartbeat goroutine. Called from AddBroker.
func (e *elasticState) watchBroker(id wire.BrokerID) {
	_ = e.reg.Register(registry.Member{ID: id})
	stopBeat := make(chan struct{})
	e.mu.Lock()
	e.beats[id] = stopBeat
	e.mu.Unlock()
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		t := time.NewTicker(e.interval)
		defer t.Stop()
		for {
			select {
			case <-stopBeat:
				return
			case <-e.stop:
				return
			case <-t.C:
				_ = e.reg.Heartbeat(id)
			}
		}
	}()
}

// silence stops a broker's heartbeat goroutine (crash simulation: the
// broker goes quiet and the detector notices).
func (e *elasticState) silence(id wire.BrokerID) {
	e.mu.Lock()
	if ch, ok := e.beats[id]; ok {
		close(ch)
		delete(e.beats, id)
	}
	e.mu.Unlock()
}

// shutdown stops the detector, the controller, and every heartbeat.
func (e *elasticState) shutdown() {
	e.stopOnce.Do(func() {
		e.cancelWatch()
		close(e.stop)
		<-e.ctrlDone
		e.wg.Wait()
		_ = e.reg.Close()
	})
}

// Kill crash-stops a broker (Broker.Kill: queued work is discarded, links
// die, nothing is flushed) and silences its heartbeat. With self-healing
// enabled the failure detector notices within the TTL and repairs the
// overlay asynchronously; without it the overlay stays broken — which is
// the point of Kill as a fault-injection primitive. Use FailNow for
// deterministic synchronous repair in tests.
func (n *Network) Kill(id wire.BrokerID) error {
	n.mu.Lock()
	b, ok := n.brokers[id]
	n.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownBroker, id)
	}
	if n.elastic != nil {
		n.elastic.silence(id)
	}
	b.Kill()
	return nil
}

// FailNow crash-stops a broker and synchronously repairs the overlay,
// bypassing heartbeat detection. It works with or without self-healing
// enabled, which makes deterministic repair tests independent of timers.
func (n *Network) FailNow(id wire.BrokerID) error {
	if err := n.Kill(id); err != nil {
		return err
	}
	n.repairBrokerFailure(id)
	return nil
}

// repairBrokerFailure excises a dead broker and re-wires the overlay:
//
//  1. The dead broker leaves the membership and the topology maps.
//  2. Every surviving neighbor drops its link (Broker.RemoveLink — this
//     retracts the dead hop's routing entries and the aggregates they
//     justified, and forgets the per-link propagation dedup so re-offers
//     can happen).
//  3. The lowest-ID surviving neighbor becomes the parent; every other
//     former neighbor re-attaches to it (Network.Connect → AddLink →
//     Forwarder.Recompute reseed + advertisement / per-client re-offers).
//     Because the overlay was a tree, removing the dead node leaves
//     disjoint subtrees, so the new edges cannot close a cycle.
//  4. Orphaned clients fail over to the parent (or the lowest-ID survivor
//     when the dead broker was isolated) and replay their subscriptions.
//
// Safe to call for an already-repaired broker (no-op). Runs on the repair
// controller goroutine, or on the caller's goroutine via FailNow.
func (n *Network) repairBrokerFailure(dead wire.BrokerID) {
	detected := time.Now()
	n.mu.Lock()
	db, ok := n.brokers[dead]
	if !ok || n.closed {
		n.mu.Unlock()
		return
	}
	delete(n.brokers, dead)
	neighbors := append([]wire.BrokerID(nil), n.edges[dead]...)
	delete(n.edges, dead)
	for _, nb := range neighbors {
		kept := n.edges[nb][:0]
		for _, x := range n.edges[nb] {
			if x != dead {
				kept = append(kept, x)
			}
		}
		n.edges[nb] = kept
	}
	survivors := make([]*broker.Broker, 0, len(neighbors))
	for _, nb := range neighbors {
		if b, ok := n.brokers[nb]; ok {
			survivors = append(survivors, b)
		}
	}
	var fallback wire.BrokerID
	for id := range n.brokers {
		if fallback == "" || id < fallback {
			fallback = id
		}
	}
	var orphans []*Client
	for _, c := range n.clients {
		if c.orphanOf(db) {
			orphans = append(orphans, c)
		}
	}
	sort.Slice(orphans, func(i, j int) bool { return orphans[i].ID() < orphans[j].ID() })
	n.mu.Unlock()

	// Make sure the dead broker really is dead (idempotent; FailNow and
	// Kill already did this, a detector-driven repair after a heartbeat
	// false positive does it here).
	db.Kill()
	if n.elastic != nil {
		_ = n.elastic.reg.Deregister(dead)
		n.elastic.silence(dead)
	}

	ev := RepairEvent{Dead: dead, Detected: detected}
	for _, s := range survivors {
		if err := s.RemoveLink(dead); err != nil && ev.Err == nil {
			ev.Err = err
		}
	}
	sort.Slice(neighbors, func(i, j int) bool { return neighbors[i] < neighbors[j] })
	if len(neighbors) > 0 {
		ev.Parent = neighbors[0]
		for _, other := range neighbors[1:] {
			if err := n.Connect(ev.Parent, other, -1); err != nil && ev.Err == nil {
				ev.Err = err
			}
			ev.Reattached = append(ev.Reattached, other)
		}
	}

	target := ev.Parent
	if target == "" {
		target = fallback
	}
	for _, c := range orphans {
		if err := c.failover(target); err != nil && ev.Err == nil {
			ev.Err = err
		}
		ev.Clients = append(ev.Clients, c.ID())
	}
	ev.Done = time.Now()
	if n.cfg.repairObserver != nil {
		n.cfg.repairObserver(ev)
	}
}
