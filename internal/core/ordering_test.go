package core

import (
	"fmt"
	"testing"

	"repro/internal/filter"
	"repro/internal/message"
	"repro/internal/wire"
)

// TestSenderFIFOOrdering verifies the end-to-end sender-FIFO requirement
// of Sections 2.2 and 3.2: for each producer, the consumer observes that
// producer's notifications in publication order, even when several
// producers interleave across different path lengths.
func TestSenderFIFOOrdering(t *testing.T) {
	net := NewNetwork()
	t.Cleanup(net.Close)
	ids, err := net.BuildChain("b", 4, 0)
	if err != nil {
		t.Fatal(err)
	}

	var got collector
	consumer, err := net.NewClient("C", ids[0], got.handle)
	if err != nil {
		t.Fatal(err)
	}
	f := filter.MustParse(`k = "v"`)
	if err := consumer.Subscribe(SubSpec{ID: "s", Filter: f}); err != nil {
		t.Fatal(err)
	}
	net.Settle()

	// Three producers at different distances from the consumer.
	producers := make([]*Client, 3)
	for i, at := range []wire.BrokerID{ids[1], ids[2], ids[3]} {
		p, err := net.NewClient(wire.ClientID(fmt.Sprintf("P%d", i)), at, nil)
		if err != nil {
			t.Fatal(err)
		}
		producers[i] = p
	}

	const perProducer = 20
	for round := 0; round < perProducer; round++ {
		for pi, p := range producers {
			err := p.Publish(message.New(map[string]message.Value{
				"k":   message.String("v"),
				"src": message.Int(int64(pi)),
				"n":   message.Int(int64(round)),
			}))
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	waitFor(t, "all deliveries", func() bool {
		return got.len() == perProducer*len(producers)
	})

	// Per-producer order must be preserved.
	last := map[int64]int64{0: -1, 1: -1, 2: -1}
	for _, e := range got.snapshot() {
		src, _ := e.Notification.Get("src")
		n, _ := e.Notification.Get("n")
		if n.IntVal() != last[src.IntVal()]+1 {
			t.Fatalf("producer %d FIFO violated: got %d after %d",
				src.IntVal(), n.IntVal(), last[src.IntVal()])
		}
		last[src.IntVal()] = n.IntVal()
	}
	// Delivery sequence numbers are strictly increasing without gaps.
	for i, e := range got.snapshot() {
		if e.Seq != uint64(i+1) {
			t.Fatalf("delivery seq gap at %d: %d", i, e.Seq)
		}
	}
}

// TestTwoConsumersIndependentStreams checks that per-subscription sequence
// numbering is independent across consumers and subscriptions.
func TestTwoConsumersIndependentStreams(t *testing.T) {
	net := NewNetwork()
	t.Cleanup(net.Close)
	ids, err := net.BuildChain("b", 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	var gotA, gotB collector
	ca, err := net.NewClient("A", ids[0], gotA.handle)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := net.NewClient("B", ids[1], gotB.handle)
	if err != nil {
		t.Fatal(err)
	}
	producer, err := net.NewClient("P", ids[2], nil)
	if err != nil {
		t.Fatal(err)
	}
	fAll := filter.MustParse(`k = "v"`)
	fEven := filter.MustParse(`k = "v" && n in [0, 1]`)
	if err := ca.Subscribe(SubSpec{ID: "all", Filter: fAll}); err != nil {
		t.Fatal(err)
	}
	if err := cb.Subscribe(SubSpec{ID: "some", Filter: fEven}); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	for i := int64(0); i < 6; i++ {
		err := producer.Publish(message.New(map[string]message.Value{
			"k": message.String("v"),
			"n": message.Int(i),
		}))
		if err != nil {
			t.Fatal(err)
		}
	}
	net.Settle()
	if gotA.len() != 6 {
		t.Errorf("A got %d, want 6", gotA.len())
	}
	if gotB.len() != 2 {
		t.Errorf("B got %d, want 2", gotB.len())
	}
	for i, e := range gotB.snapshot() {
		if e.Seq != uint64(i+1) {
			t.Errorf("B's stream must be numbered independently: %v", e.Seq)
		}
	}
}

// TestOverlappingSubscriptionsOneClient checks that two overlapping
// subscriptions of one client each receive their own stream.
func TestOverlappingSubscriptionsOneClient(t *testing.T) {
	net := NewNetwork()
	t.Cleanup(net.Close)
	ids, err := net.BuildChain("b", 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	var got collector
	c, err := net.NewClient("C", ids[0], got.handle)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Subscribe(SubSpec{ID: "wide", Filter: filter.MustParse(`p in [0, 100]`)}); err != nil {
		t.Fatal(err)
	}
	if err := c.Subscribe(SubSpec{ID: "narrow", Filter: filter.MustParse(`p in [40, 60]`)}); err != nil {
		t.Fatal(err)
	}
	p, err := net.NewClient("P", ids[1], nil)
	if err != nil {
		t.Fatal(err)
	}
	net.Settle()
	if err := p.Publish(message.New(map[string]message.Value{"p": message.Int(50)})); err != nil {
		t.Fatal(err)
	}
	if err := p.Publish(message.New(map[string]message.Value{"p": message.Int(10)})); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	counts := map[wire.SubID]int{}
	for _, e := range got.snapshot() {
		counts[e.SubID]++
	}
	if counts["wide"] != 2 || counts["narrow"] != 1 {
		t.Errorf("per-subscription delivery counts = %v, want wide:2 narrow:1", counts)
	}
}
