// Package core is the public API of the mobility-enabled pub/sub
// middleware: a Network of brokers connected by FIFO links, and Clients
// offering the paper's four primitives — pub, sub, unsub, notify — plus
// the two mobility extensions:
//
//   - MoveTo (physical mobility, Section 4): transparently rebind the
//     client to a different border broker with no lost or duplicated
//     notifications and preserved ordering.
//   - SetLocation (logical mobility, Section 5): location-dependent
//     subscriptions written with the myloc marker follow the client's
//     movements without blackout periods.
package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/broker"
	"repro/internal/location"
	"repro/internal/locfilter"
	"repro/internal/metrics"
	"repro/internal/routing"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Errors returned by Network operations.
var (
	ErrDuplicateBroker = errors.New("core: duplicate broker id")
	ErrUnknownBroker   = errors.New("core: unknown broker")
	ErrCycle           = errors.New("core: link would create a cycle (overlay must stay acyclic)")
	ErrClosed          = errors.New("core: network closed")
)

// NetworkOption configures a Network.
type NetworkOption func(*networkConfig)

type networkConfig struct {
	strategy   routing.Strategy
	defaultLat time.Duration
	procDelay  time.Duration
	maxBuffer  int
	workers    int
	egress     int

	// Elastic-federation settings (see elastic.go).
	healHeartbeat  time.Duration
	healTTL        time.Duration
	relocTimeout   time.Duration
	repairObserver func(RepairEvent)
}

// WithStrategy selects the routing strategy for all brokers (default
// Covering).
func WithStrategy(s routing.Strategy) NetworkOption {
	return func(c *networkConfig) { c.strategy = s }
}

// WithLinkLatency sets the default one-way latency of links created by
// Connect.
func WithLinkLatency(d time.Duration) NetworkOption {
	return func(c *networkConfig) { c.defaultLat = d }
}

// WithProcDelay sets every broker's subscription-processing delay estimate
// δ used by the logical-mobility adaptivity scheme.
func WithProcDelay(d time.Duration) NetworkOption {
	return func(c *networkConfig) { c.procDelay = d }
}

// WithMaxBufferPerSub caps the relocation and virtual-counterpart buffers.
func WithMaxBufferPerSub(n int) NetworkOption {
	return func(c *networkConfig) { c.maxBuffer = n }
}

// WithWorkers sets every broker's publish-matching parallelism (see
// broker.Options.Workers). The default of 0 keeps the serial pipeline;
// delivery sequences are byte-identical for any value.
func WithWorkers(n int) NetworkOption {
	return func(c *networkConfig) { c.workers = n }
}

// WithEgressWriters sets every broker's egress parallelism (see
// broker.Options.EgressWriters). The default of 0 keeps link writes
// inline on each run loop; delivery sequences are byte-identical for any
// value.
func WithEgressWriters(n int) NetworkOption {
	return func(c *networkConfig) { c.egress = n }
}

// Network owns a set of in-process brokers, their links, the shared
// movement-graph registry, and message counters.
type Network struct {
	cfg      networkConfig
	registry *locfilter.Registry
	counter  *metrics.Counter

	// elastic is the self-healing runtime (registry, failure detector,
	// repair controller); nil unless WithSelfHealing was given.
	elastic *elasticState

	mu      sync.Mutex
	brokers map[wire.BrokerID]*broker.Broker
	edges   map[wire.BrokerID][]wire.BrokerID
	clients map[wire.ClientID]*Client
	closed  bool
}

// NewNetwork creates an empty overlay.
func NewNetwork(opts ...NetworkOption) *Network {
	cfg := networkConfig{strategy: routing.Covering}
	for _, o := range opts {
		o(&cfg)
	}
	n := &Network{
		cfg:      cfg,
		registry: locfilter.NewRegistry(),
		counter:  &metrics.Counter{},
		brokers:  make(map[wire.BrokerID]*broker.Broker),
		edges:    make(map[wire.BrokerID][]wire.BrokerID),
		clients:  make(map[wire.ClientID]*Client),
	}
	if cfg.healTTL > 0 {
		n.startElastic()
	}
	return n
}

// Counter returns the network-wide message counter (every message crossing
// a broker-to-broker link is counted by category).
func (n *Network) Counter() *metrics.Counter { return n.counter }

// RegisterGraph registers a shared movement graph under a name; every
// broker resolves location-dependent subscriptions against it.
func (n *Network) RegisterGraph(name string, g *location.Graph) error {
	return n.registry.Register(name, g)
}

// AddBroker creates and starts a broker.
func (n *Network) AddBroker(id wire.BrokerID) (*broker.Broker, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, ok := n.brokers[id]; ok {
		return nil, fmt.Errorf("%w: %s", ErrDuplicateBroker, id)
	}
	b := broker.New(id, broker.Options{
		Strategy:        n.cfg.strategy,
		Registry:        n.registry,
		ProcDelay:       n.cfg.procDelay,
		Counter:         n.counter,
		MaxBufferPerSub: n.cfg.maxBuffer,
		Workers:         n.cfg.workers,
		EgressWriters:   n.cfg.egress,
		RelocTimeout:    n.cfg.relocTimeout,
	})
	b.Start()
	n.brokers[id] = b
	if n.elastic != nil {
		n.elastic.watchBroker(id)
	}
	return b, nil
}

// MustAddBroker is AddBroker that panics on error (setup code).
func (n *Network) MustAddBroker(id wire.BrokerID) *broker.Broker {
	b, err := n.AddBroker(id)
	if err != nil {
		panic(err)
	}
	return b
}

// Broker returns a broker by ID.
func (n *Network) Broker(id wire.BrokerID) (*broker.Broker, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	b, ok := n.brokers[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownBroker, id)
	}
	return b, nil
}

// Connect links two brokers with a FIFO pipe of the given latency
// (overriding the network default when latency >= 0). The overlay must
// remain acyclic; Connect refuses to close a cycle.
func (n *Network) Connect(a, b wire.BrokerID, latency time.Duration) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return ErrClosed
	}
	ba, ok := n.brokers[a]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownBroker, a)
	}
	bb, ok := n.brokers[b]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownBroker, b)
	}
	if n.reachableLocked(a, b) {
		return fmt.Errorf("%w: %s-%s", ErrCycle, a, b)
	}
	if latency < 0 {
		latency = n.cfg.defaultLat
	}
	la, lb := transport.Pipe(
		wire.BrokerHop(a), wire.BrokerHop(b),
		ba, bb,
		transport.WithLatency(latency),
		transport.WithCounter(n.counter),
	)
	if err := ba.AddLink(b, la); err != nil {
		return err
	}
	if err := bb.AddLink(a, lb); err != nil {
		return err
	}
	n.edges[a] = append(n.edges[a], b)
	n.edges[b] = append(n.edges[b], a)
	return nil
}

// MustConnect is Connect that panics on error (setup code).
func (n *Network) MustConnect(a, b wire.BrokerID, latency time.Duration) {
	if err := n.Connect(a, b, latency); err != nil {
		panic(err)
	}
}

// reachableLocked reports whether b is reachable from a over existing
// edges. Callers hold n.mu.
func (n *Network) reachableLocked(a, b wire.BrokerID) bool {
	visited := map[wire.BrokerID]bool{a: true}
	stack := []wire.BrokerID{a}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == b {
			return true
		}
		for _, next := range n.edges[cur] {
			if !visited[next] {
				visited[next] = true
				stack = append(stack, next)
			}
		}
	}
	return false
}

// Close shuts down every broker and client. With self-healing enabled the
// failure detector and repair controller stop first, so teardown is not
// mistaken for a mass failure.
func (n *Network) Close() {
	if n.elastic != nil {
		n.elastic.shutdown()
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	clients := make([]*Client, 0, len(n.clients))
	for _, c := range n.clients {
		clients = append(clients, c)
	}
	brokers := make([]*broker.Broker, 0, len(n.brokers))
	for _, b := range n.brokers {
		brokers = append(brokers, b)
	}
	n.mu.Unlock()

	for _, c := range clients {
		c.close()
	}
	for _, b := range brokers {
		b.Close()
	}
}

// Settle waits briefly for in-flight messages to drain. It is a testing
// convenience for the in-process overlay: with zero-latency links,
// messages propagate synchronously through broker mailboxes, so a few
// round trips through every broker's exec barrier flushes all queues.
func (n *Network) Settle() {
	n.mu.Lock()
	brokers := make([]*broker.Broker, 0, len(n.brokers))
	for _, b := range n.brokers {
		brokers = append(brokers, b)
	}
	n.mu.Unlock()
	// Messages can ping-pong across the diameter of the overlay; flushing
	// every broker's mailbox once per potential hop bounds the drain. The
	// +2 covers client-side queues on both ends.
	rounds := len(brokers) + 2
	for i := 0; i < rounds; i++ {
		for _, b := range brokers {
			b.Barrier()
		}
	}
	// Drain client delivery queues so handler side effects are visible.
	n.mu.Lock()
	clients := make([]*Client, 0, len(n.clients))
	for _, c := range n.clients {
		clients = append(clients, c)
	}
	n.mu.Unlock()
	for _, c := range clients {
		c.Flush()
	}
}
