package core

import (
	"fmt"
	"time"

	"repro/internal/wire"
)

// Topology builders: convenience constructors for the overlay shapes used
// throughout the paper's discussion and this repository's experiments. All
// of them produce acyclic connected overlays.

// BuildChain creates brokers named prefix1 … prefixN connected in a line
// and returns their IDs in order.
func (n *Network) BuildChain(prefix string, count int, latency time.Duration) ([]wire.BrokerID, error) {
	if count < 1 {
		return nil, fmt.Errorf("core: chain needs at least 1 broker, got %d", count)
	}
	ids := make([]wire.BrokerID, count)
	for i := 0; i < count; i++ {
		ids[i] = wire.BrokerID(fmt.Sprintf("%s%d", prefix, i+1))
		if _, err := n.AddBroker(ids[i]); err != nil {
			return nil, err
		}
		if i > 0 {
			if err := n.Connect(ids[i-1], ids[i], latency); err != nil {
				return nil, err
			}
		}
	}
	return ids, nil
}

// BuildStar creates a hub broker with count leaf brokers attached and
// returns (hub, leaves).
func (n *Network) BuildStar(prefix string, count int, latency time.Duration) (wire.BrokerID, []wire.BrokerID, error) {
	hub := wire.BrokerID(prefix + "-hub")
	if _, err := n.AddBroker(hub); err != nil {
		return "", nil, err
	}
	leaves := make([]wire.BrokerID, count)
	for i := 0; i < count; i++ {
		leaves[i] = wire.BrokerID(fmt.Sprintf("%s-leaf%d", prefix, i+1))
		if _, err := n.AddBroker(leaves[i]); err != nil {
			return "", nil, err
		}
		if err := n.Connect(hub, leaves[i], latency); err != nil {
			return "", nil, err
		}
	}
	return hub, leaves, nil
}

// BuildBinaryTree creates a complete binary tree of the given depth
// (depth 0 is a single root). It returns all broker IDs in breadth-first
// order; the leaves are the last 2^depth entries.
func (n *Network) BuildBinaryTree(prefix string, depth int, latency time.Duration) ([]wire.BrokerID, error) {
	if depth < 0 {
		return nil, fmt.Errorf("core: negative tree depth %d", depth)
	}
	total := 1<<(depth+1) - 1
	ids := make([]wire.BrokerID, total)
	for i := 0; i < total; i++ {
		ids[i] = wire.BrokerID(fmt.Sprintf("%s%d", prefix, i))
		if _, err := n.AddBroker(ids[i]); err != nil {
			return nil, err
		}
		if i > 0 {
			parent := (i - 1) / 2
			if err := n.Connect(ids[parent], ids[i], latency); err != nil {
				return nil, err
			}
		}
	}
	return ids, nil
}

// TreeLeaves returns the leaf IDs of a tree built by BuildBinaryTree.
func TreeLeaves(ids []wire.BrokerID, depth int) []wire.BrokerID {
	leafCount := 1 << depth
	return ids[len(ids)-leafCount:]
}
