package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/filter"
	"repro/internal/message"
	"repro/internal/transport"
	"repro/internal/wire"
)

// TestParallelRoamingExactlyOnce re-runs the randomized relocation stress
// workload on a network whose brokers match publishes on parallel worker
// pools (Workers 4) AND write links from sharded egress writers
// (EgressWriters 2), with publish bursts large enough that relay brokers
// actually build multi-publish parallel runs. The exactly-once contract —
// no lost, duplicated, or reordered notification across any sequence of
// detaches and relocations — must hold bit-for-bit, exactly as on the
// serial pipeline: relocation control messages serialize through each
// broker's run loop, the egress drain barrier puts every earlier send on
// the wire before they run, and both fence the publish runs around them.
func TestParallelRoamingExactlyOnce(t *testing.T) {
	seeds := []int64{3, 11, 77}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			net := NewNetwork(WithWorkers(4), WithEgressWriters(2))
			t.Cleanup(net.Close)

			ids := make([]wire.BrokerID, 8)
			for i := range ids {
				ids[i] = wire.BrokerID(fmt.Sprintf("b%d", i))
				net.MustAddBroker(ids[i])
				if i > 0 {
					net.MustConnect(ids[rng.Intn(i)], ids[i], 0)
				}
			}

			var got collector
			consumer, err := net.NewClient("C", ids[rng.Intn(len(ids))], got.handle)
			if err != nil {
				t.Fatal(err)
			}
			producer, err := net.NewClient("P", ids[rng.Intn(len(ids))], nil)
			if err != nil {
				t.Fatal(err)
			}
			f := filter.MustParse(`k = "v"`)
			if err := producer.Advertise("adv", f); err != nil {
				t.Fatal(err)
			}
			net.Settle()
			if err := consumer.Subscribe(SubSpec{ID: "s", Filter: f, Mobile: true}); err != nil {
				t.Fatal(err)
			}
			net.Settle()

			// Link-level noise storm: non-matching publishes injected
			// straight into broker mailboxes from fake client hops, fast
			// enough to form multi-publish batches, so the relocation
			// control flow below runs concurrently with genuinely
			// parallel matching runs on the same brokers. The noise
			// matches no subscription and cannot perturb the
			// exactly-once accounting.
			stop := make(chan struct{})
			var storm sync.WaitGroup
			for s := 0; s < 2; s++ {
				s := s
				storm.Add(1)
				go func() {
					defer storm.Done()
					rr := rand.New(rand.NewSource(seed*100 + int64(s)))
					from := wire.ClientHop(wire.ClientID(fmt.Sprintf("noise%d", s)))
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						b, err := net.Broker(ids[rr.Intn(len(ids))])
						if err != nil {
							return
						}
						n := message.New(map[string]message.Value{
							"k": message.String("noise"),
							"i": message.Int(int64(i)),
						})
						b.Receive(transport.Inbound{From: from, Msg: wire.NewPublish(n)})
					}
				}()
			}
			defer func() {
				close(stop)
				storm.Wait()
			}()

			published := int64(0)
			pub := func(k int) {
				for i := 0; i < k; i++ {
					published++
					err := producer.Publish(message.New(map[string]message.Value{
						"k": message.String("v"),
						"n": message.Int(published),
					}))
					if err != nil {
						t.Fatal(err)
					}
				}
			}

			for round := 0; round < 8; round++ {
				// Bursts well above the parallel dispatch threshold so
				// relaying brokers exercise the worker pools.
				pub(40 + rng.Intn(60))
				net.Settle()
				if rng.Intn(2) == 0 {
					if err := consumer.Detach(); err != nil {
						t.Fatal(err)
					}
					pub(30 + rng.Intn(40))
					net.Settle()
				}
				target := ids[rng.Intn(len(ids))]
				if consumer.At() == target && consumer.At() != "" {
					if err := consumer.Detach(); err != nil {
						t.Fatal(err)
					}
				}
				if err := consumer.MoveTo(target); err != nil {
					t.Fatal(err)
				}
				net.Settle()
				pub(20 + rng.Intn(30))
				net.Settle()
			}
			net.Settle()

			evs := got.snapshot()
			if int64(len(evs)) != published {
				t.Fatalf("delivered %d of %d published", len(evs), published)
			}
			for i, e := range evs {
				if e.Seq != uint64(i+1) {
					t.Fatalf("seq gap at %d: %d", i, e.Seq)
				}
				v, _ := e.Notification.Get("n")
				if v.IntVal() != int64(i+1) {
					t.Fatalf("order violated at %d: payload %d", i, v.IntVal())
				}
			}

			// At least one broker must actually have run parallel
			// matching during the workload.
			var jobs uint64
			for _, id := range ids {
				b, err := net.Broker(id)
				if err != nil {
					t.Fatal(err)
				}
				st := b.Stats()
				if st.Workers != 4 {
					t.Fatalf("broker %s workers = %d", id, st.Workers)
				}
				jobs += st.WorkerJobs
			}
			if jobs == 0 {
				t.Fatal("no broker dispatched a parallel publish run")
			}
		})
	}
}
