package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/filter"
	"repro/internal/location"
	"repro/internal/message"
	"repro/internal/routing"
	"repro/internal/wire"
)

// collector gathers delivered events for assertions.
type collector struct {
	mu     sync.Mutex
	events []Event
}

func (c *collector) handle(e Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, e)
}

func (c *collector) snapshot() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, len(c.events))
	copy(out, c.events)
	return out
}

func (c *collector) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// waitFor polls until cond is true or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func stockNotif(sym string, price int64) message.Notification {
	return message.New(map[string]message.Value{
		"type":  message.String("quote"),
		"sym":   message.String(sym),
		"price": message.Int(price),
	})
}

// newChain builds a linear overlay b1 - b2 - ... - bn.
func newChain(t *testing.T, n int, opts ...NetworkOption) (*Network, []wire.BrokerID) {
	t.Helper()
	net := NewNetwork(opts...)
	ids := make([]wire.BrokerID, n)
	for i := 0; i < n; i++ {
		ids[i] = wire.BrokerID(fmt.Sprintf("b%d", i+1))
		net.MustAddBroker(ids[i])
	}
	for i := 0; i+1 < n; i++ {
		net.MustConnect(ids[i], ids[i+1], 0)
	}
	t.Cleanup(net.Close)
	return net, ids
}

func TestPlainPubSubAcrossChain(t *testing.T) {
	net, ids := newChain(t, 4)

	var got collector
	consumer, err := net.NewClient("consumer", ids[0], got.handle)
	if err != nil {
		t.Fatal(err)
	}
	producer, err := net.NewClient("producer", ids[3], nil)
	if err != nil {
		t.Fatal(err)
	}

	f := filter.MustParse(`type = "quote" && sym = "ACME"`)
	if err := consumer.Subscribe(SubSpec{ID: "s1", Filter: f}); err != nil {
		t.Fatal(err)
	}
	net.Settle()

	if err := producer.Publish(stockNotif("ACME", 101)); err != nil {
		t.Fatal(err)
	}
	if err := producer.Publish(stockNotif("OTHER", 55)); err != nil {
		t.Fatal(err)
	}
	if err := producer.Publish(stockNotif("ACME", 102)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "2 deliveries", func() bool { return got.len() == 2 })

	evs := got.snapshot()
	if evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("bad sequence numbers: %+v", evs)
	}
	for _, e := range evs {
		sym, _ := e.Notification.Get("sym")
		if sym.Str() != "ACME" {
			t.Fatalf("wrong notification delivered: %s", e.Notification)
		}
	}
}

func TestPlainPubSubAllStrategies(t *testing.T) {
	for _, s := range []routing.Strategy{
		routing.Flooding, routing.Simple, routing.Identity, routing.Covering, routing.Merging,
	} {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			net, ids := newChain(t, 3, WithStrategy(s))
			var got collector
			consumer, err := net.NewClient("c", ids[0], got.handle)
			if err != nil {
				t.Fatal(err)
			}
			producer, err := net.NewClient("p", ids[2], nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := consumer.Subscribe(SubSpec{
				ID:     "s1",
				Filter: filter.MustParse(`sym = "ACME"`),
			}); err != nil {
				t.Fatal(err)
			}
			net.Settle()
			if err := producer.Publish(stockNotif("ACME", 1)); err != nil {
				t.Fatal(err)
			}
			if err := producer.Publish(stockNotif("NOPE", 2)); err != nil {
				t.Fatal(err)
			}
			waitFor(t, "1 delivery", func() bool { return got.len() >= 1 })
			net.Settle()
			if got.len() != 1 {
				t.Fatalf("strategy %s: got %d deliveries, want 1", s, got.len())
			}
		})
	}
}

// TestMobileRelocationNoLossNoDup reproduces the Figure 5 scenario: a
// mobile consumer detaches, notifications keep flowing, the consumer
// reattaches at a distant broker, and the relocation protocol delivers
// everything exactly once in order.
func TestMobileRelocationNoLossNoDup(t *testing.T) {
	// Topology (tree):     b2 - b3 - b4
	//                     /           \
	//                   b1             b6   with producer at b3's side: b5-b3
	net := NewNetwork()
	for _, id := range []string{"b1", "b2", "b3", "b4", "b5", "b6"} {
		net.MustAddBroker(wire.BrokerID(id))
	}
	net.MustConnect("b1", "b2", 0)
	net.MustConnect("b2", "b3", 0)
	net.MustConnect("b3", "b4", 0)
	net.MustConnect("b4", "b6", 0)
	net.MustConnect("b3", "b5", 0)
	t.Cleanup(net.Close)

	var got collector
	consumer, err := net.NewClient("C", "b6", got.handle)
	if err != nil {
		t.Fatal(err)
	}
	producer, err := net.NewClient("P", "b5", nil)
	if err != nil {
		t.Fatal(err)
	}
	f := filter.MustParse(`sym = "ACME"`)
	if err := producer.Advertise("adv", f); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	if err := consumer.Subscribe(SubSpec{ID: "s", Filter: f, Mobile: true}); err != nil {
		t.Fatal(err)
	}
	net.Settle()

	// Phase 1: connected at b6.
	for i := int64(1); i <= 3; i++ {
		if err := producer.Publish(stockNotif("ACME", i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "phase-1 deliveries", func() bool { return got.len() == 3 })

	// Phase 2: disconnected; the virtual counterpart at b6 buffers.
	if err := consumer.Detach(); err != nil {
		t.Fatal(err)
	}
	for i := int64(4); i <= 7; i++ {
		if err := producer.Publish(stockNotif("ACME", i)); err != nil {
			t.Fatal(err)
		}
	}
	net.Settle()

	// Phase 3: reattach at b1; relocation must replay 4..7.
	if err := consumer.MoveTo("b1"); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	for i := int64(8); i <= 10; i++ {
		if err := producer.Publish(stockNotif("ACME", i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "all 10 deliveries", func() bool { return got.len() == 10 })
	net.Settle()

	evs := got.snapshot()
	if len(evs) != 10 {
		t.Fatalf("got %d deliveries, want exactly 10 (no duplicates)", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(i+1) {
			t.Fatalf("delivery %d has seq %d (order/gap violation): %+v", i, e.Seq, evs)
		}
		price, _ := e.Notification.Get("price")
		if price.IntVal() != int64(i+1) {
			t.Fatalf("delivery %d carries price %d, want %d", i, price.IntVal(), i+1)
		}
	}
	// The replayed batch is exactly the disconnected-phase traffic.
	for i, e := range evs {
		wantReplay := i >= 3 && i <= 6
		if e.Replayed != wantReplay {
			t.Logf("note: event %d replayed=%v (informational)", i, e.Replayed)
		}
	}
}

// TestLocationDependentSubscription exercises logical mobility on the
// Figure 7 movement graph: the consumer roams a → b → d and receives
// exactly the notifications for its current location, with no blackout.
func TestLocationDependentSubscription(t *testing.T) {
	net, ids := newChain(t, 3, WithProcDelay(50*time.Millisecond))
	if err := net.RegisterGraph("fig7", location.FigureSeven()); err != nil {
		t.Fatal(err)
	}

	var got collector
	consumer, err := net.NewClient("car", ids[0], got.handle)
	if err != nil {
		t.Fatal(err)
	}
	producer, err := net.NewClient("city", ids[2], nil)
	if err != nil {
		t.Fatal(err)
	}
	advFilter := filter.MustParse(`service = "parking"`)
	if err := producer.Advertise("adv", advFilter); err != nil {
		t.Fatal(err)
	}
	net.Settle()

	base := filter.MustNew(
		filter.EQ("service", message.String("parking")),
		filter.EQ("location", message.String("$myloc")),
	)
	err = consumer.Subscribe(SubSpec{
		ID:     "park",
		Filter: base,
		Loc:    &LocSpec{Graph: "fig7", Attr: "location", Start: "a", Delta: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Settle()

	pub := func(loc string) {
		t.Helper()
		n := message.New(map[string]message.Value{
			"service":  message.String("parking"),
			"location": message.String(loc),
		})
		if err := producer.Publish(n); err != nil {
			t.Fatal(err)
		}
	}

	// At location a: only "a" events are delivered.
	pub("a")
	pub("b")
	pub("d")
	waitFor(t, "first delivery", func() bool { return got.len() == 1 })
	net.Settle()
	if got.len() != 1 {
		t.Fatalf("at location a: %d deliveries, want 1", got.len())
	}

	// Move a → b: the client-side filter switches instantly.
	if err := consumer.SetLocation("park", "b"); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	pub("b")
	pub("a")
	waitFor(t, "second delivery", func() bool { return got.len() == 2 })
	net.Settle()
	if got.len() != 2 {
		t.Fatalf("at location b: %d deliveries, want 2", got.len())
	}

	// Illegal move b → c (not adjacent in Figure 7) must be rejected.
	if err := consumer.SetLocation("park", "c"); err == nil {
		t.Fatal("move b->c should be rejected by the movement graph")
	}

	// Move b → d.
	if err := consumer.SetLocation("park", "d"); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	pub("d")
	waitFor(t, "third delivery", func() bool { return got.len() == 3 })

	evs := got.snapshot()
	wantLocs := []string{"a", "b", "d"}
	for i, e := range evs {
		loc, _ := e.Notification.Get("location")
		if loc.Str() != wantLocs[i] {
			t.Fatalf("delivery %d at location %s, want %s", i, loc.Str(), wantLocs[i])
		}
	}
}
