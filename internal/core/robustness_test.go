package core

import (
	"sync"
	"testing"

	"repro/internal/filter"
	"repro/internal/message"
	"repro/internal/wire"
)

// Failure-injection and shutdown robustness: none of these scenarios may
// deadlock, panic, or corrupt delivery streams.

// TestCloseWhileTrafficInFlight shuts the network down while producers are
// actively publishing.
func TestCloseWhileTrafficInFlight(t *testing.T) {
	net := NewNetwork()
	ids, err := net.BuildChain("b", 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	var got collector
	consumer, err := net.NewClient("C", ids[0], got.handle)
	if err != nil {
		t.Fatal(err)
	}
	producer, err := net.NewClient("P", ids[3], nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := consumer.Subscribe(SubSpec{ID: "s", Filter: filter.MustParse(`k = "v"`)}); err != nil {
		t.Fatal(err)
	}
	net.Settle()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		n := message.New(map[string]message.Value{"k": message.String("v")})
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Errors are expected once the network closes under us.
			if err := producer.Publish(n); err != nil {
				return
			}
		}
	}()
	// Let some traffic flow, then pull the plug.
	waitFor(t, "some deliveries", func() bool { return got.len() > 10 })
	net.Close()
	close(stop)
	wg.Wait()

	// Whatever arrived is still a clean gapless prefix.
	for i, e := range got.snapshot() {
		if e.Seq != uint64(i+1) {
			t.Fatalf("delivery stream corrupted at %d: seq %d", i, e.Seq)
		}
	}
}

// TestDetachWhileTrafficInFlight detaches the consumer in the middle of a
// publish burst; the stream must continue gaplessly through the virtual
// counterpart after reattachment.
func TestDetachWhileTrafficInFlight(t *testing.T) {
	net := NewNetwork()
	t.Cleanup(net.Close)
	ids, err := net.BuildChain("b", 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	var got collector
	consumer, err := net.NewClient("C", ids[0], got.handle)
	if err != nil {
		t.Fatal(err)
	}
	producer, err := net.NewClient("P", ids[2], nil)
	if err != nil {
		t.Fatal(err)
	}
	f := filter.MustParse(`k = "v"`)
	if err := producer.Advertise("adv", f); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	if err := consumer.Subscribe(SubSpec{ID: "s", Filter: f, Mobile: true}); err != nil {
		t.Fatal(err)
	}
	net.Settle()

	pub := func(n int64) {
		t.Helper()
		if err := producer.Publish(message.New(map[string]message.Value{
			"k": message.String("v"), "n": message.Int(n),
		})); err != nil {
			t.Fatal(err)
		}
	}
	// Interleave publishes with the detach so some are in flight.
	pub(1)
	pub(2)
	if err := consumer.Detach(); err != nil {
		t.Fatal(err)
	}
	pub(3)
	pub(4)
	net.Settle()
	// Reattach at the same broker: local drain path.
	if err := consumer.MoveTo(ids[0]); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	pub(5)
	waitFor(t, "all 5", func() bool { return got.len() == 5 })
	for i, e := range got.snapshot() {
		if e.Seq != uint64(i+1) {
			t.Fatalf("gap at %d: %d", i, e.Seq)
		}
	}
}

// TestConcurrentClientsHammering runs several clients subscribing,
// publishing, and unsubscribing concurrently against a shared overlay.
func TestConcurrentClientsHammering(t *testing.T) {
	net := NewNetwork()
	t.Cleanup(net.Close)
	ids, err := net.BuildChain("b", 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 6
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := string(rune('A' + w))
			c, err := net.NewClient(wire.ClientID(id), ids[w%len(ids)], func(Event) {})
			if err != nil {
				errs <- err
				return
			}
			f := filter.MustParse(`grp = "` + id + `"`)
			for round := 0; round < 20; round++ {
				if err := c.Subscribe(SubSpec{ID: "s", Filter: f}); err != nil {
					errs <- err
					return
				}
				if err := c.Publish(message.New(map[string]message.Value{
					"grp": message.String(id),
				})); err != nil {
					errs <- err
					return
				}
				if err := c.Unsubscribe("s"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	net.Settle()
	// Tables must be clean after all unsubscribes.
	for _, id := range ids {
		b, err := net.Broker(id)
		if err != nil {
			t.Fatal(err)
		}
		if subs, _ := b.TableSizes(); subs != 0 {
			t.Errorf("broker %s retains %d entries", id, subs)
		}
	}
}
