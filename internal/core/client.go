package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/broker"
	"repro/internal/filter"
	"repro/internal/location"
	"repro/internal/message"
	"repro/internal/wire"
)

// Errors returned by Client operations.
var (
	ErrDetached       = errors.New("core: client is detached")
	ErrUnknownSub     = errors.New("core: unknown subscription")
	ErrLocDepMove     = errors.New("core: physical roaming of location-dependent subscriptions is not supported (paper future work)")
	ErrDuplicateSubID = errors.New("core: duplicate subscription id")
)

// Event is one delivered notification, as seen by a consumer.
type Event struct {
	SubID        wire.SubID
	Seq          uint64
	Notification message.Notification
	// Replayed marks notifications recovered through the relocation
	// protocol rather than the live delivery path.
	Replayed bool
}

// Handler consumes delivered events. It runs on the client's delivery
// goroutine, one event at a time, in delivery order.
type Handler func(Event)

// LocSpec configures a location-dependent subscription (Section 5).
type LocSpec struct {
	// Graph names a movement graph registered with the Network.
	Graph string
	// Attr is the notification attribute holding the event's location.
	Attr string
	// Start is the client's initial location.
	Start location.Location
	// Delta is the client's expected dwell time at one location (the Δ of
	// the adaptivity scheme).
	Delta time.Duration
}

// SubSpec describes one subscription.
type SubSpec struct {
	ID     wire.SubID
	Filter filter.Filter
	// Mobile requests physical-mobility support: the subscription
	// propagates per-client and survives MoveTo with no loss, no
	// duplicates, and preserved order.
	Mobile bool
	// Presubscribe (implies Mobile) plants the subscription at every
	// broker so a future handoff finds its junction at the first hop —
	// the paper's "pre-subscribe at brokers at possible next locations"
	// outlook. Costs broader subscription state for faster handoffs.
	Presubscribe bool
	// Loc, when non-nil, makes the subscription location-dependent.
	Loc *LocSpec
	// Handler receives the deliveries. When nil, the client-level handler
	// passed to NewClient is used.
	Handler Handler
}

// subRecord is the client-side state of one subscription.
type subRecord struct {
	spec    SubSpec
	lastSeq uint64
	loc     location.Location
	// epoch counts relocations of this subscription; brokers use it to
	// tell apart fetch requests from different relocations.
	epoch uint64
}

// Client is a pub/sub client: producer, consumer, or both. A client is
// attached to one border broker at a time and may roam between brokers
// with MoveTo.
type Client struct {
	id      wire.ClientID
	network *Network
	handler Handler

	queue *deliveryQueue

	mu       sync.Mutex
	brokerID wire.BrokerID
	at       *broker.Broker // nil while detached
	subs     map[wire.SubID]*subRecord
	advs     map[wire.SubID]filter.Filter
}

// NewClient creates a client attached to the given broker. The handler
// receives deliveries for subscriptions without their own handler; it may
// be nil if every subscription sets one.
func (n *Network) NewClient(id wire.ClientID, at wire.BrokerID, handler Handler) (*Client, error) {
	b, err := n.Broker(at)
	if err != nil {
		return nil, err
	}
	c := &Client{
		id:      id,
		network: n,
		handler: handler,
		subs:    make(map[wire.SubID]*subRecord),
		advs:    make(map[wire.SubID]filter.Filter),
	}
	c.queue = newDeliveryQueue(c.dispatch)
	if err := b.AttachClient(id, c.queue.push); err != nil {
		c.queue.close()
		return nil, err
	}
	c.mu.Lock()
	c.at = b
	c.brokerID = at
	c.mu.Unlock()

	n.mu.Lock()
	n.clients[id] = c
	n.mu.Unlock()
	return c, nil
}

// ID returns the client's identity.
func (c *Client) ID() wire.ClientID { return c.id }

// At returns the ID of the border broker the client is attached to, or ""
// while detached.
func (c *Client) At() wire.BrokerID {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.at == nil {
		return ""
	}
	return c.brokerID
}

// dispatch runs on the delivery goroutine for every delivered item.
func (c *Client) dispatch(d wire.Deliver) {
	c.mu.Lock()
	rec := c.subs[d.ID]
	var h Handler
	if rec != nil {
		if d.Item.Seq > rec.lastSeq {
			rec.lastSeq = d.Item.Seq
		}
		h = rec.spec.Handler
	}
	if h == nil {
		h = c.handler
	}
	c.mu.Unlock()
	if h != nil {
		h(Event{
			SubID:        d.ID,
			Seq:          d.Item.Seq,
			Notification: d.Item.Notif,
			Replayed:     d.Replayed,
		})
	}
}

// Subscribe registers a subscription per its spec.
func (c *Client) Subscribe(spec SubSpec) error {
	c.mu.Lock()
	b := c.at
	if b == nil {
		c.mu.Unlock()
		return ErrDetached
	}
	if _, dup := c.subs[spec.ID]; dup {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrDuplicateSubID, spec.ID)
	}
	rec := &subRecord{spec: spec}
	if spec.Loc != nil {
		rec.loc = spec.Loc.Start
	}
	c.subs[spec.ID] = rec
	c.mu.Unlock()

	if err := b.Subscribe(c.wireSub(spec, rec)); err != nil {
		c.mu.Lock()
		delete(c.subs, spec.ID)
		c.mu.Unlock()
		return err
	}
	return nil
}

// wireSub converts a spec to the wire form.
func (c *Client) wireSub(spec SubSpec, rec *subRecord) wire.Subscription {
	s := wire.Subscription{
		Filter:       spec.Filter,
		Client:       c.id,
		ID:           spec.ID,
		IsMobile:     spec.Mobile || spec.Presubscribe,
		Presubscribe: spec.Presubscribe,
	}
	if spec.Loc != nil {
		s.LocDependent = true
		s.LocAttr = spec.Loc.Attr
		s.GraphName = spec.Loc.Graph
		s.Loc = rec.loc
		s.Delta = spec.Loc.Delta
	}
	return s
}

// Unsubscribe withdraws a subscription.
func (c *Client) Unsubscribe(id wire.SubID) error {
	c.mu.Lock()
	b := c.at
	_, ok := c.subs[id]
	delete(c.subs, id)
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownSub, id)
	}
	if b == nil {
		return ErrDetached
	}
	return b.Unsubscribe(c.id, id)
}

// Publish injects a notification.
func (c *Client) Publish(n message.Notification) error {
	c.mu.Lock()
	b := c.at
	c.mu.Unlock()
	if b == nil {
		return ErrDetached
	}
	return b.Publish(c.id, n)
}

// Advertise announces the notifications this client will publish.
func (c *Client) Advertise(id wire.SubID, f filter.Filter) error {
	c.mu.Lock()
	b := c.at
	c.advs[id] = f
	c.mu.Unlock()
	if b == nil {
		return ErrDetached
	}
	return b.Advertise(c.id, id, f)
}

// Unadvertise withdraws an advertisement.
func (c *Client) Unadvertise(id wire.SubID) error {
	c.mu.Lock()
	b := c.at
	delete(c.advs, id)
	c.mu.Unlock()
	if b == nil {
		return ErrDetached
	}
	return b.Unadvertise(c.id, id)
}

// SetLocation declares a new location for a location-dependent
// subscription (logical mobility). The move must be a legal step of the
// movement graph.
func (c *Client) SetLocation(id wire.SubID, loc location.Location) error {
	c.mu.Lock()
	b := c.at
	rec, ok := c.subs[id]
	c.mu.Unlock()
	if !ok || rec.spec.Loc == nil {
		return fmt.Errorf("%w: %s", ErrUnknownSub, id)
	}
	if b == nil {
		return ErrDetached
	}
	if err := b.SetLocation(c.id, id, loc); err != nil {
		return err
	}
	c.mu.Lock()
	rec.loc = loc
	c.mu.Unlock()
	return nil
}

// Location returns the current location of a location-dependent
// subscription.
func (c *Client) Location(id wire.SubID) (location.Location, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.subs[id]
	if !ok || rec.spec.Loc == nil {
		return "", fmt.Errorf("%w: %s", ErrUnknownSub, id)
	}
	return rec.loc, nil
}

// LastSeq returns the last delivered sequence number of a subscription.
func (c *Client) LastSeq(id wire.SubID) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if rec, ok := c.subs[id]; ok {
		return rec.lastSeq
	}
	return 0
}

// Detach disconnects the client from its border broker without
// unsubscribing: the broker keeps a virtual counterpart buffering matching
// notifications (physical mobility, disconnected phase).
func (c *Client) Detach() error {
	c.mu.Lock()
	b := c.at
	c.at = nil
	c.mu.Unlock()
	if b == nil {
		return ErrDetached
	}
	return b.DetachClient(c.id)
}

// MoveTo rebinds the client to a different border broker (physical
// mobility). Mobile subscriptions are relocated with the Section 4
// protocol: the client re-issues each subscription together with its last
// received sequence number, and the middleware guarantees gapless,
// duplicate-free, order-preserving delivery. Plain subscriptions are
// re-issued naively (they may miss interim notifications — that is exactly
// the deficit the paper's protocol removes). Location-dependent
// subscriptions cannot roam (paper future work).
func (c *Client) MoveTo(newBroker wire.BrokerID) error {
	c.mu.Lock()
	for _, rec := range c.subs {
		if rec.spec.Loc != nil {
			c.mu.Unlock()
			return ErrLocDepMove
		}
	}
	old := c.at
	c.mu.Unlock()

	if old != nil {
		if err := old.DetachClient(c.id); err != nil {
			return err
		}
	}
	nb, err := c.network.Broker(newBroker)
	if err != nil {
		return err
	}
	if err := nb.AttachClient(c.id, c.queue.push); err != nil {
		return err
	}
	c.mu.Lock()
	c.at = nb
	c.brokerID = newBroker
	type pendingSub struct {
		spec    SubSpec
		lastSeq uint64
		epoch   uint64
	}
	var resubs []pendingSub
	var advs []struct {
		id wire.SubID
		f  filter.Filter
	}
	for _, rec := range c.subs {
		if rec.spec.Mobile || rec.spec.Presubscribe {
			rec.epoch++
		}
		resubs = append(resubs, pendingSub{spec: rec.spec, lastSeq: rec.lastSeq, epoch: rec.epoch})
	}
	for id, f := range c.advs {
		advs = append(advs, struct {
			id wire.SubID
			f  filter.Filter
		}{id, f})
	}
	c.mu.Unlock()

	for _, a := range advs {
		if err := nb.Advertise(c.id, a.id, a.f); err != nil {
			return err
		}
	}
	for _, ps := range resubs {
		s := wire.Subscription{
			Filter:       ps.spec.Filter,
			Client:       c.id,
			ID:           ps.spec.ID,
			IsMobile:     ps.spec.Mobile || ps.spec.Presubscribe,
			Presubscribe: ps.spec.Presubscribe,
		}
		if s.IsMobile {
			s.Relocate = true
			s.LastSeq = ps.lastSeq
			s.RelocEpoch = ps.epoch
		}
		if err := nb.Subscribe(s); err != nil {
			return err
		}
	}
	return nil
}

// orphanOf reports whether the client's border broker is the given (dead)
// broker instance. Compared by pointer so a client that already failed
// over to a same-named replacement is not treated as orphaned twice.
func (c *Client) orphanOf(b *broker.Broker) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.at == b
}

// failover rebinds the client after its border broker crashed: unlike
// MoveTo there is no old broker to detach from (and no virtual
// counterpart left to replay from — notifications the dead broker had
// buffered are lost; the blackout experiment measures that loss). The
// client re-attaches to the surviving broker and replays its state:
// advertisements re-announce, mobile subscriptions re-issue through the
// relocation protocol (carrying LastSeq, so sequence numbering continues
// gap-visible rather than resetting; the broker's RelocTimeout un-gates
// delivery when no replay can come), plain subscriptions re-issue with
// their LastSeq for the same continuity, and location-dependent
// subscriptions re-instantiate at the client's current location. With no
// survivor to fail over to the client is left detached.
func (c *Client) failover(to wire.BrokerID) error {
	if to == "" {
		c.mu.Lock()
		c.at = nil
		c.mu.Unlock()
		return fmt.Errorf("%w: no surviving broker", ErrDetached)
	}
	nb, err := c.network.Broker(to)
	if err != nil {
		return err
	}
	if err := nb.AttachClient(c.id, c.queue.push); err != nil {
		return err
	}
	c.mu.Lock()
	c.at = nb
	c.brokerID = to
	type pendingSub struct {
		spec    SubSpec
		lastSeq uint64
		epoch   uint64
		loc     location.Location
	}
	resubs := make([]pendingSub, 0, len(c.subs))
	for _, rec := range c.subs {
		if rec.spec.Mobile || rec.spec.Presubscribe {
			rec.epoch++
		}
		resubs = append(resubs, pendingSub{spec: rec.spec, lastSeq: rec.lastSeq, epoch: rec.epoch, loc: rec.loc})
	}
	advs := make([]struct {
		id wire.SubID
		f  filter.Filter
	}, 0, len(c.advs))
	for id, f := range c.advs {
		advs = append(advs, struct {
			id wire.SubID
			f  filter.Filter
		}{id, f})
	}
	c.mu.Unlock()

	var firstErr error
	for _, a := range advs {
		if err := nb.Advertise(c.id, a.id, a.f); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, ps := range resubs {
		s := wire.Subscription{
			Filter:       ps.spec.Filter,
			Client:       c.id,
			ID:           ps.spec.ID,
			IsMobile:     ps.spec.Mobile || ps.spec.Presubscribe,
			Presubscribe: ps.spec.Presubscribe,
			LastSeq:      ps.lastSeq,
		}
		switch {
		case ps.spec.Loc != nil:
			s.LocDependent = true
			s.LocAttr = ps.spec.Loc.Attr
			s.GraphName = ps.spec.Loc.Graph
			s.Loc = ps.loc
			s.Delta = ps.spec.Loc.Delta
			s.LastSeq = 0 // locdep numbering restarts (no roaming protocol)
		case s.IsMobile:
			s.Relocate = true
			s.RelocEpoch = ps.epoch
		}
		if err := nb.Subscribe(s); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// close tears the client down (used by Network.Close).
func (c *Client) close() {
	c.mu.Lock()
	b := c.at
	c.at = nil
	c.mu.Unlock()
	if b != nil {
		_ = b.DetachClient(c.id)
	}
	c.queue.close()
}

// Flush blocks until every delivery queued so far has been handed to its
// handler. Useful in tests and examples to make output deterministic.
func (c *Client) Flush() { c.queue.flush() }

// deliveryQueue decouples broker goroutines from user handlers: the broker
// pushes (never blocking), a dedicated goroutine dispatches in order.
type deliveryQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []wire.Deliver
	busy   bool
	closed bool
	done   chan struct{}
}

func newDeliveryQueue(dispatch func(wire.Deliver)) *deliveryQueue {
	q := &deliveryQueue{done: make(chan struct{})}
	q.cond = sync.NewCond(&q.mu)
	go func() {
		defer close(q.done)
		for {
			q.mu.Lock()
			for len(q.items) == 0 && !q.closed {
				q.cond.Wait()
			}
			if len(q.items) == 0 && q.closed {
				q.mu.Unlock()
				return
			}
			d := q.items[0]
			q.items = q.items[1:]
			q.busy = true
			q.mu.Unlock()
			dispatch(d)
			q.mu.Lock()
			q.busy = false
			q.cond.Broadcast()
			q.mu.Unlock()
		}
	}()
	return q
}

func (q *deliveryQueue) push(d wire.Deliver) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.items = append(q.items, d)
	q.cond.Broadcast()
}

// flush waits until the queue is drained and no dispatch is in flight.
func (q *deliveryQueue) flush() {
	q.mu.Lock()
	defer q.mu.Unlock()
	for (len(q.items) > 0 || q.busy) && !q.closed {
		q.cond.Wait()
	}
}

func (q *deliveryQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
	<-q.done
}
