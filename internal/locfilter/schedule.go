package locfilter

import (
	"fmt"
	"strings"
	"time"
)

// This file implements the adaptivity scheme of Section 5.3: deriving the
// widening step sᵢ of each filter Fᵢ along the path from the consumer's
// local broker B₁ toward a producer from
//
//   - Δ, the average time the client remains at one location, and
//   - δᵢ, the time it takes to process a batch of sub/unsub messages
//     between brokers Bᵢ and Bᵢ₊₁.
//
// The rule (Figure 8): walking outward from the consumer, accumulate the
// δᵢ; whenever the running sum exceeds the next unreached multiple of Δ,
// the widening takes one additional step at that hop. Filter F₀
// (client-side filtering at the local broker) is always exact (step 0).
//
// Consequences, matching the paper:
//   - Slow clients (Σδᵢ < Δ): all steps stay at 0 beyond the mandatory
//     widening — the scheme degenerates to the trivial sub/unsub solution.
//   - Fast clients (Δ ≪ δ₁): every hop takes steps and the scheme
//     degenerates to flooding.
//   - The example Δ = 100ms, δ = (120, 50, 50, 20)ms yields steps
//     (0, 1, 1, 2, 2) for (F₀ … F₄), reproducing Table 4 and Figure 8.

// Schedule is the widening step per filter index: Steps[i] is sᵢ, the q
// used for Fᵢ = ploc(x, sᵢ). Steps[0] is always 0.
type Schedule struct {
	Delta time.Duration
	Hops  []time.Duration // δ₁ … δₖ
	Steps []int           // s₀ … sₖ (len(Hops)+1 entries)
}

// ComputeSchedule derives the full widening schedule for a path whose
// per-hop subscription-processing delays are hops = (δ₁ … δₖ). A
// non-positive delta is treated as "client moves infinitely fast" and
// yields one step per hop (flooding-like).
func ComputeSchedule(delta time.Duration, hops []time.Duration) Schedule {
	s := Schedule{Delta: delta, Hops: append([]time.Duration(nil), hops...)}
	s.Steps = make([]int, len(hops)+1)
	state := NewStepState(delta)
	for i, d := range hops {
		state = state.Advance(d)
		s.Steps[i+1] = state.Steps
	}
	return s
}

// StepState is the incremental form of the schedule computation, carried
// inside subscription messages as they propagate hop by hop (each broker
// knows only its own δ, so the recursion state must travel with the
// subscription).
type StepState struct {
	Delta        time.Duration
	CumDelay     time.Duration
	Steps        int
	NextMultiple int // the next multiple of Delta not yet exceeded (1-based)
}

// NewStepState returns the state at the consumer's local broker: zero
// accumulated delay, zero steps.
func NewStepState(delta time.Duration) StepState {
	return StepState{Delta: delta, NextMultiple: 1}
}

// Advance incorporates one more hop with subscription-processing delay d
// and returns the updated state. The paper's rule: "whenever the sum of δᵢ
// results in a value larger than the next multiple of Δ then the value of
// ploc must take a step".
func (s StepState) Advance(d time.Duration) StepState {
	out := s
	out.CumDelay += d
	if out.Delta <= 0 {
		// Degenerate case: the client dwells for no measurable time; every
		// hop must widen.
		out.Steps++
		out.NextMultiple++
		return out
	}
	if out.CumDelay > time.Duration(out.NextMultiple)*out.Delta {
		out.Steps++
		out.NextMultiple++
	}
	return out
}

// EffectiveStep converts the raw recursion value into the widening step a
// non-local broker actually uses. Beyond the consumer's local broker the
// widening is at least 1: "the algorithm always has to provide information
// for 'the next' user location to maintain the semantics of flooding"
// (Section 5.3 / Table 3) — otherwise notifications published during a
// move could never reach the consumer in time.
func EffectiveStep(raw int) int {
	if raw < 1 {
		return 1
	}
	return raw
}

// StepPolicy caps or overrides a schedule, expressing the two trivial
// solutions of Section 3.3 as instantiations of the ploc scheme
// (Table 3).
type StepPolicy uint8

// Step policies.
const (
	// PolicyAdaptive uses the computed schedule unchanged.
	PolicyAdaptive StepPolicy = iota + 1
	// PolicyTrivialSubUnsub caps every non-local step at 1: the system
	// always provides information for "the next" user location only,
	// mirroring a global sub/unsub on every move (Table 3, top).
	PolicyTrivialSubUnsub
	// PolicyFlooding forces every non-local step to the graph diameter, so
	// every filter beyond the local broker accepts the full location
	// universe (Table 3, bottom).
	PolicyFlooding
)

// String returns the policy name.
func (p StepPolicy) String() string {
	switch p {
	case PolicyAdaptive:
		return "adaptive"
	case PolicyTrivialSubUnsub:
		return "trivial-sub-unsub"
	case PolicyFlooding:
		return "flooding"
	default:
		return "invalid"
	}
}

// Apply transforms a raw step value for a non-local hop (index >= 1)
// according to the policy. diameter is the movement graph's diameter (the
// step count at which ploc saturates).
func (p StepPolicy) Apply(rawStep, index, diameter int) int {
	if index == 0 {
		return 0 // F₀ is always exact client-side filtering
	}
	switch p {
	case PolicyTrivialSubUnsub:
		if rawStep > 1 {
			return 1
		}
		if rawStep < 1 {
			return 1 // must cover "the next" location to emulate flooding semantics
		}
		return rawStep
	case PolicyFlooding:
		return diameter
	default:
		return rawStep
	}
}

// String renders the schedule for diagnostics:
// "Δ=100ms δ=[120ms 50ms 50ms 20ms] steps=[0 1 1 2 2]".
func (s Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Δ=%v δ=%v steps=%v", s.Delta, s.Hops, s.Steps)
	return b.String()
}
