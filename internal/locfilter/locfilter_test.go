package locfilter

import (
	"testing"
	"time"

	"repro/internal/filter"
	"repro/internal/location"
	"repro/internal/message"
)

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Lookup("missing"); err == nil {
		t.Error("lookup of unregistered graph should fail")
	}
	if err := r.Register("bad", location.NewGraph()); err == nil {
		t.Error("registering an invalid (empty) graph should fail")
	}
	g := location.FigureSeven()
	if err := r.Register("fig7", g); err != nil {
		t.Fatal(err)
	}
	got, err := r.Lookup("fig7")
	if err != nil || got != g {
		t.Errorf("Lookup = %v, %v", got, err)
	}
}

func TestHasMarker(t *testing.T) {
	base := filter.MustNew(
		filter.EQ("service", message.String("parking")),
		filter.EQ("location", message.String(MarkerMyloc)),
	)
	if !HasMarker(base, "location") {
		t.Error("EQ marker not detected")
	}
	if HasMarker(base, "service") {
		t.Error("marker reported on wrong attribute")
	}
	inSet := filter.MustNew(filter.In("location",
		message.String("a"), message.String(MarkerMyloc)))
	if !HasMarker(inSet, "location") {
		t.Error("In marker not detected")
	}
	plain := filter.MustNew(filter.EQ("location", message.String("a")))
	if HasMarker(plain, "location") {
		t.Error("plain location constraint misreported as marker")
	}
	ranged := filter.MustNew(filter.Range("location", message.String("a"), message.String("z")))
	if HasMarker(ranged, "location") {
		t.Error("range constraint cannot carry a marker")
	}
}

func TestInstantiate(t *testing.T) {
	g := location.FigureSeven()
	base := filter.MustNew(
		filter.EQ("service", message.String("parking")),
		filter.EQ("location", message.String(MarkerMyloc)),
	)
	f0, err := Instantiate(base, "location", g, "a", 0)
	if err != nil {
		t.Fatal(err)
	}
	match := func(loc string) bool {
		return f0.Matches(message.New(map[string]message.Value{
			"service":  message.String("parking"),
			"location": message.String(loc),
		}))
	}
	if !match("a") || match("b") {
		t.Errorf("F0 at a should accept exactly {a}: %s", f0)
	}

	f1, err := Instantiate(base, "location", g, "a", 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, loc := range []string{"a", "b", "c"} {
		if !f1.Matches(message.New(map[string]message.Value{
			"service":  message.String("parking"),
			"location": message.String(loc),
		})) {
			t.Errorf("F1 = ploc(a,1) should accept %s: %s", loc, f1)
		}
	}
	// Wrong service still rejected — the widening only touches location.
	if f1.Matches(message.New(map[string]message.Value{
		"service":  message.String("pizza"),
		"location": message.String("a"),
	})) {
		t.Error("widened filter must keep the other constraints")
	}

	if _, err := Instantiate(base, "location", g, "nowhere", 0); err == nil {
		t.Error("unknown location should fail")
	}
}

func TestMoveDelta(t *testing.T) {
	g := location.FigureSeven()
	// Paper Section 5.2: at t=1 the client moves a -> b; F1 must
	// unsubscribe c and subscribe d.
	d := MoveDelta(g, "a", "b", 1)
	if !d.Removed.Equal(location.NewSet("c")) {
		t.Errorf("removed = %s, want {c}", d.Removed)
	}
	if !d.Added.Equal(location.NewSet("d")) {
		t.Errorf("added = %s, want {d}", d.Added)
	}
	// At t=2 the client moves b -> d; F1 unsubscribes a and subscribes c.
	d = MoveDelta(g, "b", "d", 1)
	if !d.Removed.Equal(location.NewSet("a")) || !d.Added.Equal(location.NewSet("c")) {
		t.Errorf("b->d at step 1: %v", d)
	}
	// At step 2 the sets are saturated: empty delta.
	d = MoveDelta(g, "a", "b", 2)
	if !d.Empty() {
		t.Errorf("saturated delta should be empty, got %v", d)
	}
	if MoveDelta(g, "a", "a", 1).Empty() != true {
		t.Error("no-move delta must be empty")
	}
}

func TestValidMove(t *testing.T) {
	g := location.FigureSeven()
	if !ValidMove(g, "a", "b") || !ValidMove(g, "a", "a") {
		t.Error("legal moves rejected")
	}
	if ValidMove(g, "b", "c") {
		t.Error("b->c is not an edge of Figure 7")
	}
	if ValidMove(g, "zz", "a") || ValidMove(g, "zz", "zz") {
		t.Error("unknown locations cannot move")
	}
}

func TestSetConstraint(t *testing.T) {
	c := SetConstraint("loc", location.NewSet("b", "a"))
	if c.Op != filter.OpIn || len(c.Values) != 2 {
		t.Fatalf("SetConstraint = %s", c)
	}
	if c.Values[0].Str() != "a" || c.Values[1].Str() != "b" {
		t.Errorf("set not canonical: %s", c)
	}
}

func TestComputeSchedulePaperValues(t *testing.T) {
	// Section 5.3: Δ = 100ms, δ = 120, 50, 50, 20 ms -> steps 0,1,1,2,2.
	s := ComputeSchedule(100*time.Millisecond, []time.Duration{
		120 * time.Millisecond, 50 * time.Millisecond,
		50 * time.Millisecond, 20 * time.Millisecond,
	})
	want := []int{0, 1, 1, 2, 2}
	for i, w := range want {
		if s.Steps[i] != w {
			t.Fatalf("Steps = %v, want %v", s.Steps, want)
		}
	}
}

func TestComputeScheduleSlowClient(t *testing.T) {
	// Very slow client: no step ever taken (raw schedule all zero —
	// EffectiveStep then enforces the minimum widening of 1 at use site).
	s := ComputeSchedule(10*time.Second, []time.Duration{
		50 * time.Millisecond, 50 * time.Millisecond, 50 * time.Millisecond,
	})
	for i, st := range s.Steps {
		if st != 0 {
			t.Errorf("slow client step %d = %d, want 0", i, st)
		}
	}
}

func TestComputeScheduleFastClient(t *testing.T) {
	// Client much faster than the network: one step per hop (flooding).
	s := ComputeSchedule(time.Millisecond, []time.Duration{
		time.Second, time.Second, time.Second,
	})
	want := []int{0, 1, 2, 3}
	for i, w := range want {
		if s.Steps[i] != w {
			t.Fatalf("fast client Steps = %v, want %v", s.Steps, want)
		}
	}
}

func TestComputeScheduleZeroDelta(t *testing.T) {
	s := ComputeSchedule(0, []time.Duration{time.Millisecond, time.Millisecond})
	want := []int{0, 1, 2}
	for i, w := range want {
		if s.Steps[i] != w {
			t.Fatalf("zero-delta Steps = %v, want %v", s.Steps, want)
		}
	}
}

func TestStepStateIncrementalMatchesBatch(t *testing.T) {
	delta := 100 * time.Millisecond
	hops := []time.Duration{120 * time.Millisecond, 50 * time.Millisecond,
		50 * time.Millisecond, 20 * time.Millisecond, 300 * time.Millisecond}
	batch := ComputeSchedule(delta, hops)
	state := NewStepState(delta)
	for i, d := range hops {
		state = state.Advance(d)
		if state.Steps != batch.Steps[i+1] {
			t.Fatalf("incremental step %d = %d, batch = %d", i+1, state.Steps, batch.Steps[i+1])
		}
	}
}

func TestEffectiveStep(t *testing.T) {
	tests := []struct{ raw, want int }{
		{-1, 1}, {0, 1}, {1, 1}, {2, 2}, {7, 7},
	}
	for _, tt := range tests {
		if got := EffectiveStep(tt.raw); got != tt.want {
			t.Errorf("EffectiveStep(%d) = %d, want %d", tt.raw, got, tt.want)
		}
	}
}

func TestStepPolicies(t *testing.T) {
	const diameter = 3
	tests := []struct {
		policy StepPolicy
		raw    int
		index  int
		want   int
	}{
		{PolicyAdaptive, 2, 1, 2},
		{PolicyAdaptive, 0, 0, 0},
		{PolicyTrivialSubUnsub, 0, 1, 1},
		{PolicyTrivialSubUnsub, 5, 2, 1},
		{PolicyTrivialSubUnsub, 5, 0, 0},
		{PolicyFlooding, 0, 1, diameter},
		{PolicyFlooding, 9, 3, diameter},
		{PolicyFlooding, 9, 0, 0},
	}
	for _, tt := range tests {
		if got := tt.policy.Apply(tt.raw, tt.index, diameter); got != tt.want {
			t.Errorf("%s.Apply(%d, %d) = %d, want %d", tt.policy, tt.raw, tt.index, got, tt.want)
		}
	}
}

func TestScheduleString(t *testing.T) {
	s := ComputeSchedule(100*time.Millisecond, []time.Duration{120 * time.Millisecond})
	if got := s.String(); got == "" {
		t.Error("empty rendering")
	}
}
