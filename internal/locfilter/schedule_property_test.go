package locfilter

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/location"
)

// TestScheduleMonotoneQuick property-tests the adaptivity schedule: steps
// never decrease along the path and never exceed the hop index (at most
// one step per hop can be taken).
func TestScheduleMonotoneQuick(t *testing.T) {
	f := func(deltaMs uint16, hopsRaw []uint16) bool {
		delta := time.Duration(deltaMs%2000+1) * time.Millisecond
		hops := make([]time.Duration, 0, len(hopsRaw))
		for _, h := range hopsRaw {
			hops = append(hops, time.Duration(h%1000)*time.Millisecond)
		}
		s := ComputeSchedule(delta, hops)
		if len(s.Steps) != len(hops)+1 || s.Steps[0] != 0 {
			return false
		}
		for i := 1; i < len(s.Steps); i++ {
			if s.Steps[i] < s.Steps[i-1] {
				return false // must be nondecreasing
			}
			if s.Steps[i] > s.Steps[i-1]+1 {
				return false // at most one step per hop
			}
			if s.Steps[i] > i {
				return false // cannot exceed the hop index
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TestScheduleStepBoundQuick checks the semantic bound the paper's rule
// implies: the step count at hop i is exactly the number of Δ-multiples
// strictly exceeded by some prefix sum δ₁+…+δⱼ with j ≤ i, counted
// greedily one per hop.
func TestScheduleStepBoundQuick(t *testing.T) {
	f := func(hopsRaw []uint8) bool {
		const deltaMs = 100
		delta := deltaMs * time.Millisecond
		hops := make([]time.Duration, 0, len(hopsRaw))
		for _, h := range hopsRaw {
			hops = append(hops, time.Duration(h)*time.Millisecond)
		}
		s := ComputeSchedule(delta, hops)
		// Re-derive independently.
		steps, next := 0, 1
		cum := time.Duration(0)
		for i, d := range hops {
			cum += d
			if cum > time.Duration(next)*delta {
				steps++
				next++
			}
			if s.Steps[i+1] != steps {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TestMoveDeltaConsistencyQuick property-tests the routing-table delta:
// applying (old set − Removed + Added) must equal the new ploc set, for
// random moves on random graphs.
func TestMoveDeltaConsistencyQuick(t *testing.T) {
	graphs := []*location.Graph{
		location.FigureSeven(),
		location.Grid(3, 3),
		location.Ring(6),
		location.Line(5),
	}
	f := func(gIdx, xIdx, steps, q uint8) bool {
		g := graphs[int(gIdx)%len(graphs)]
		locs := g.Locations()
		x := locs[int(xIdx)%len(locs)]
		// Take up to `steps` random-ish moves to find a y adjacent to x.
		neighbors := g.Neighbors(x)
		y := x
		if len(neighbors) > 0 {
			y = neighbors[int(steps)%len(neighbors)]
		}
		qq := int(q % 5)
		d := MoveDelta(g, x, y, qq)
		oldSet := g.Ploc(x, qq)
		newSet := g.Ploc(y, qq)
		reconstructed := oldSet.Minus(d.Removed).Union(d.Added)
		return reconstructed.Equal(newSet)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
