// Package locfilter implements the logic of location-dependent filters
// (Section 5): the myloc marker, instantiation of subscriptions with
// ploc(x, q) sets, per-hop widening, location-change deltas, and the
// adaptivity scheme of Section 5.3 that derives the widening steps from
// the client dwell time Δ and the per-hop subscription-processing delays
// δᵢ.
//
// The package is pure logic: it has no broker or transport dependencies,
// which makes every rule in it directly unit-testable against the paper's
// Tables 1–4.
package locfilter

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/filter"
	"repro/internal/location"
	"repro/internal/message"
)

// MarkerMyloc is the reserved string value that marks a location
// constraint as location-dependent: a subscription containing
// (location = MarkerMyloc) or (location in {MarkerMyloc}) is rewritten by
// the middleware into ploc-instantiated filters hop by hop.
const MarkerMyloc = "$myloc"

// ErrUnknownGraph is returned when a subscription references a movement
// graph that was never registered.
var ErrUnknownGraph = errors.New("locfilter: unknown movement graph")

// Registry holds the shared, application-defined movement graphs, keyed by
// name. All brokers of a network must agree on the registered graphs; the
// paper treats the set L of locations and the movement restrictions as
// application-level configuration.
type Registry struct {
	mu     sync.RWMutex
	graphs map[string]*location.Graph
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{graphs: make(map[string]*location.Graph)}
}

// Register stores a movement graph under a name, validating it first.
func (r *Registry) Register(name string, g *location.Graph) error {
	if err := g.Validate(); err != nil {
		return fmt.Errorf("locfilter: register %q: %w", name, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.graphs[name] = g
	return nil
}

// Lookup returns the named graph.
func (r *Registry) Lookup(name string) (*location.Graph, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	g, ok := r.graphs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownGraph, name)
	}
	return g, nil
}

// HasMarker reports whether the filter contains a myloc marker on the
// given attribute.
func HasMarker(f filter.Filter, locAttr string) bool {
	for _, c := range f.ConstraintsOn(locAttr) {
		if constraintHasMarker(c) {
			return true
		}
	}
	return false
}

func constraintHasMarker(c filter.Constraint) bool {
	switch c.Op {
	case filter.OpEQ:
		return c.Value.Kind() == message.KindString && c.Value.Str() == MarkerMyloc
	case filter.OpIn:
		for _, v := range c.Values {
			if v.Kind() == message.KindString && v.Str() == MarkerMyloc {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// SetConstraint converts a location set into the membership constraint
// (locAttr in { ... }).
func SetConstraint(locAttr string, s location.Set) filter.Constraint {
	locs := s.Sorted()
	vs := make([]message.Value, len(locs))
	for i, l := range locs {
		vs[i] = message.String(string(l))
	}
	return filter.In(locAttr, vs...)
}

// Instantiate replaces the myloc marker in the base filter with the
// concrete set ploc(x, q). With q = 0 this is the perfect client-side
// filter F₀ = F̃ of Section 5.1.
func Instantiate(base filter.Filter, locAttr string, g *location.Graph, x location.Location, q int) (filter.Filter, error) {
	if !g.Contains(x) {
		return filter.Filter{}, fmt.Errorf("locfilter: location %q not in movement graph", x)
	}
	set := g.Ploc(x, q)
	out, err := base.Replace(SetConstraint(locAttr, set))
	if err != nil {
		return filter.Filter{}, fmt.Errorf("locfilter: instantiate: %w", err)
	}
	return out, nil
}

// Delta describes the routing-table adjustment a broker performs when a
// consumer moves from OldLoc to NewLoc while the broker's widening step is
// q: Removed locations are unsubscribed, Added locations are subscribed
// (Section 5.1: "removing and adding new locations corresponds to
// unsubscribing and subscribing to the corresponding filters").
type Delta struct {
	Removed location.Set
	Added   location.Set
}

// Empty reports whether the move changes nothing at this widening step.
func (d Delta) Empty() bool { return d.Removed.Len() == 0 && d.Added.Len() == 0 }

// MoveDelta computes the ploc difference for a move x → y at widening
// step q.
func MoveDelta(g *location.Graph, x, y location.Location, q int) Delta {
	oldSet := g.Ploc(x, q)
	newSet := g.Ploc(y, q)
	return Delta{
		Removed: oldSet.Minus(newSet),
		Added:   newSet.Minus(oldSet),
	}
}

// ValidMove reports whether a move x → y is allowed by the movement graph
// (one movement step or staying put).
func ValidMove(g *location.Graph, x, y location.Location) bool {
	if x == y {
		return g.Contains(x)
	}
	return g.Ploc(x, 1).Has(y)
}
