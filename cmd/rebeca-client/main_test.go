package main

import (
	"testing"

	"repro/internal/message"
)

func TestParseNotification(t *testing.T) {
	n, err := ParseNotification(`type=quote, sym=ACME, price=120, ratio=0.5, hot=true, label="x y"`)
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name string
		want message.Value
	}{
		{"type", message.String("quote")},
		{"sym", message.String("ACME")},
		{"price", message.Int(120)},
		{"ratio", message.Float(0.5)},
		{"hot", message.Bool(true)},
		{"label", message.String("x y")},
	}
	for _, c := range checks {
		got, ok := n.Get(c.name)
		if !ok || !got.Equal(c.want) {
			t.Errorf("%s = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestParseNotificationErrors(t *testing.T) {
	for _, src := range []string{"", "nokey", "=v", " , "} {
		if _, err := ParseNotification(src); err == nil {
			t.Errorf("ParseNotification(%q) should fail", src)
		}
	}
}

func TestRunFlagValidation(t *testing.T) {
	if err := run([]string{}, nil); err == nil {
		t.Error("missing -id should fail")
	}
	if err := run([]string{"-id", "c", "-zzz"}, nil); err == nil {
		t.Error("bad flag should fail")
	}
	if err := run([]string{"-id", "c", "-broker", "127.0.0.1:1"}, nil); err == nil {
		t.Error("unreachable broker should fail")
	}
}
