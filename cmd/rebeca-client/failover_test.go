package main

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/transport"
	"repro/internal/wire"
)

// clientTestNode is a minimal in-process broker daemon: TCP listener,
// peer/client handshake, link-death retraction — just enough of
// rebeca-broker's accept loop to exercise the client binary against real
// connections.
type clientTestNode struct {
	id wire.BrokerID
	b  *broker.Broker
	ln net.Listener

	mu    sync.Mutex
	links []*transport.TCPLink
}

func startClientTestNode(t *testing.T, id wire.BrokerID) *clientTestNode {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n := &clientTestNode{id: id, b: broker.New(id, broker.Options{}), ln: ln}
	n.b.Start()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			link, err := transport.AcceptTCP(conn, id, n.b)
			if err != nil {
				continue
			}
			n.mu.Lock()
			n.links = append(n.links, link)
			n.mu.Unlock()
			if link.Peer().IsClient() {
				client := link.Peer().Client
				if err := n.b.AttachRemoteClient(client, link); err != nil {
					_ = link.Close()
					continue
				}
				go func() {
					<-link.Done()
					_ = n.b.DetachClient(client)
				}()
				continue
			}
			peer := link.Peer().Broker
			if err := n.b.AddLink(peer, link); err != nil {
				_ = link.Close()
				continue
			}
			go func() {
				<-link.Done()
				_ = n.b.RemoveLink(peer)
			}()
		}
	}()
	t.Cleanup(func() { n.kill() })
	return n
}

func (n *clientTestNode) kill() {
	_ = n.ln.Close()
	n.mu.Lock()
	links := n.links
	n.links = nil
	n.mu.Unlock()
	for _, l := range links {
		_ = l.Close()
	}
	n.b.Close()
}

func (n *clientTestNode) addr() string { return n.ln.Addr().String() }

// connectNodes links a to b the way the daemon's -peer dial does,
// including the death watch.
func connectNodes(t *testing.T, a, b *clientTestNode) {
	t.Helper()
	link, err := transport.DialTCP(b.addr(), a.id, a.b)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.b.AddLink(b.id, link); err != nil {
		t.Fatal(err)
	}
	go func() {
		<-link.Done()
		_ = a.b.RemoveLink(b.id)
	}()
}

// outputFile returns a temp file plus a poller that waits for a line
// containing want.
func outputFile(t *testing.T) (*os.File, func(want string) bool) {
	t.Helper()
	f, err := os.Create(filepath.Join(t.TempDir(), "out.txt"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = f.Close() })
	return f, func(want string) bool {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			data, _ := os.ReadFile(f.Name())
			if strings.Contains(string(data), want) {
				return true
			}
			time.Sleep(10 * time.Millisecond)
		}
		return false
	}
}

// TestClientSkipsDeadBroker: with a failover list the client attaches to
// the first address that answers — a dead first entry is not fatal.
func TestClientSkipsDeadBroker(t *testing.T) {
	node := startClientTestNode(t, "b1")
	out, _ := outputFile(t)

	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-id", "alice",
			"-broker", "127.0.0.1:1," + node.addr(),
			"-subscribe", `type = "quote"`,
			"-expect", "1", "-timeout", "10s",
		}, out)
	}()

	stopPub := producer(t, node.addr())
	defer close(stopPub)
	if err := <-done; err != nil {
		t.Fatalf("consumer: %v", err)
	}
}

// TestClientFailsOverMidStream attaches the consumer to b1 of a b1-b2
// pair, crashes b1 after the first delivery, and requires the remaining
// deliveries to arrive through b2 — the client must redial and replay its
// subscription on its own.
func TestClientFailsOverMidStream(t *testing.T) {
	b1 := startClientTestNode(t, "b1")
	b2 := startClientTestNode(t, "b2")
	connectNodes(t, b2, b1)

	out, saw := outputFile(t)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-id", "alice",
			"-broker", b1.addr() + "," + b2.addr(),
			"-subscribe", `type = "quote"`,
			"-expect", "10", "-timeout", "20s",
		}, out)
	}()

	stopPub := producer(t, b2.addr())
	defer close(stopPub)

	if !saw("#1") {
		t.Fatal("no delivery before the crash")
	}
	b1.kill()
	if err := <-done; err != nil {
		t.Fatalf("consumer after failover: %v", err)
	}
}

// producer attaches a publisher client to addr and publishes quotes every
// 30ms until the returned channel is closed (a steady stream sidesteps
// the race between subscription propagation and the first publish).
func producer(t *testing.T, addr string) chan struct{} {
	t.Helper()
	link, err := transport.DialTCPClient(addr, "ticker", transport.ReceiverFunc(func(transport.Inbound) {}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = link.Close() })
	stop := make(chan struct{})
	go func() {
		for i := 1; ; i++ {
			n, err := ParseNotification(fmt.Sprintf("type=quote,i=%d", i))
			if err != nil {
				return
			}
			_ = link.Send(wire.NewPublish(n))
			select {
			case <-stop:
				return
			case <-time.After(30 * time.Millisecond):
			}
		}
	}()
	return stop
}
