package main

import (
	"flag"
	"os"
	"testing"

	"repro/internal/opsdoc"
)

// TestOperationsFlagTableInSync diffs the rebeca-client flag table in
// OPERATIONS.md against the live flag set: every flag must be documented
// with its exact default and usage string, and nothing documented may
// have gone away. Adding, removing, renaming, or redefaulting a flag
// without updating OPERATIONS.md fails here.
func TestOperationsFlagTableInSync(t *testing.T) {
	md, err := os.ReadFile("../../OPERATIONS.md")
	if err != nil {
		t.Fatal(err)
	}
	documented, err := opsdoc.ParseFlagTable(md, "rebeca-client")
	if err != nil {
		t.Fatal(err)
	}
	fs, _ := newFlagSet()
	live := map[string]opsdoc.Row{}
	fs.VisitAll(func(f *flag.Flag) {
		live[f.Name] = opsdoc.Row{Default: f.DefValue, Usage: f.Usage}
	})
	for name, want := range live {
		got, ok := documented[name]
		if !ok {
			t.Errorf("-%s is not documented in OPERATIONS.md", name)
			continue
		}
		if got != want {
			t.Errorf("-%s drifted:\n  OPERATIONS.md: %+v\n  flag set:      %+v", name, got, want)
		}
	}
	for name := range documented {
		if _, ok := live[name]; !ok {
			t.Errorf("OPERATIONS.md documents -%s, which the binary no longer defines", name)
		}
	}
}
